# Empty dependencies file for bench_ext_wan.
# This may be replaced when dependencies are built.
