file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_wan.dir/bench_ext_wan.cc.o"
  "CMakeFiles/bench_ext_wan.dir/bench_ext_wan.cc.o.d"
  "bench_ext_wan"
  "bench_ext_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
