file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_response_time.dir/bench_table1_response_time.cc.o"
  "CMakeFiles/bench_table1_response_time.dir/bench_table1_response_time.cc.o.d"
  "bench_table1_response_time"
  "bench_table1_response_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
