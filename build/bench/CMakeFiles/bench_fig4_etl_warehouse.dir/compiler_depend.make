# Empty compiler generated dependencies file for bench_fig4_etl_warehouse.
# This may be replaced when dependencies are built.
