file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_etl_warehouse.dir/bench_fig4_etl_warehouse.cc.o"
  "CMakeFiles/bench_fig4_etl_warehouse.dir/bench_fig4_etl_warehouse.cc.o.d"
  "bench_fig4_etl_warehouse"
  "bench_fig4_etl_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_etl_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
