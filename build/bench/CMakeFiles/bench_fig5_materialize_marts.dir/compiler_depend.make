# Empty compiler generated dependencies file for bench_fig5_materialize_marts.
# This may be replaced when dependencies are built.
