file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_materialize_marts.dir/bench_fig5_materialize_marts.cc.o"
  "CMakeFiles/bench_fig5_materialize_marts.dir/bench_fig5_materialize_marts.cc.o.d"
  "bench_fig5_materialize_marts"
  "bench_fig5_materialize_marts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_materialize_marts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
