# Empty compiler generated dependencies file for bench_ablate_staging.
# This may be replaced when dependencies are built.
