file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_staging.dir/bench_ablate_staging.cc.o"
  "CMakeFiles/bench_ablate_staging.dir/bench_ablate_staging.cc.o.d"
  "bench_ablate_staging"
  "bench_ablate_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
