# Empty compiler generated dependencies file for bench_ablate_schema_tracker.
# This may be replaced when dependencies are built.
