
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablate_schema_tracker.cc" "bench/CMakeFiles/bench_ablate_schema_tracker.dir/bench_ablate_schema_tracker.cc.o" "gcc" "bench/CMakeFiles/bench_ablate_schema_tracker.dir/bench_ablate_schema_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/griddb/unity/CMakeFiles/griddb_unity.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/ral/CMakeFiles/griddb_ral.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/engine/CMakeFiles/griddb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/sql/CMakeFiles/griddb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/storage/CMakeFiles/griddb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/net/CMakeFiles/griddb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/xml/CMakeFiles/griddb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/util/CMakeFiles/griddb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
