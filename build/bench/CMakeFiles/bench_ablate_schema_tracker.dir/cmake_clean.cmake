file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_schema_tracker.dir/bench_ablate_schema_tracker.cc.o"
  "CMakeFiles/bench_ablate_schema_tracker.dir/bench_ablate_schema_tracker.cc.o.d"
  "bench_ablate_schema_tracker"
  "bench_ablate_schema_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_schema_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
