# Empty dependencies file for bench_ablate_join.
# This may be replaced when dependencies are built.
