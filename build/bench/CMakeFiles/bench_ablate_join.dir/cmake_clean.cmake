file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_join.dir/bench_ablate_join.cc.o"
  "CMakeFiles/bench_ablate_join.dir/bench_ablate_join.cc.o.d"
  "bench_ablate_join"
  "bench_ablate_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
