file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_parallel_subquery.dir/bench_ablate_parallel_subquery.cc.o"
  "CMakeFiles/bench_ablate_parallel_subquery.dir/bench_ablate_parallel_subquery.cc.o.d"
  "bench_ablate_parallel_subquery"
  "bench_ablate_parallel_subquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_parallel_subquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
