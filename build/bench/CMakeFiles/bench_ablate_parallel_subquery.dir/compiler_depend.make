# Empty compiler generated dependencies file for bench_ablate_parallel_subquery.
# This may be replaced when dependencies are built.
