file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_rls.dir/bench_ablate_rls.cc.o"
  "CMakeFiles/bench_ablate_rls.dir/bench_ablate_rls.cc.o.d"
  "bench_ablate_rls"
  "bench_ablate_rls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_rls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
