# Empty dependencies file for bench_ablate_rls.
# This may be replaced when dependencies are built.
