file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_pushdown.dir/bench_ablate_pushdown.cc.o"
  "CMakeFiles/bench_ablate_pushdown.dir/bench_ablate_pushdown.cc.o.d"
  "bench_ablate_pushdown"
  "bench_ablate_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
