# Empty compiler generated dependencies file for bench_ablate_pushdown.
# This may be replaced when dependencies are built.
