file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_replica_selection.dir/bench_ext_replica_selection.cc.o"
  "CMakeFiles/bench_ext_replica_selection.dir/bench_ext_replica_selection.cc.o.d"
  "bench_ext_replica_selection"
  "bench_ext_replica_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_replica_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
