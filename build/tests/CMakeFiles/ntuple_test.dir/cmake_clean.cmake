file(REMOVE_RECURSE
  "CMakeFiles/ntuple_test.dir/ntuple_test.cc.o"
  "CMakeFiles/ntuple_test.dir/ntuple_test.cc.o.d"
  "ntuple_test"
  "ntuple_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
