# Empty dependencies file for ntuple_test.
# This may be replaced when dependencies are built.
