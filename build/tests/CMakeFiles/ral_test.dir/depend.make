# Empty dependencies file for ral_test.
# This may be replaced when dependencies are built.
