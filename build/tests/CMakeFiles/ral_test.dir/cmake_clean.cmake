file(REMOVE_RECURSE
  "CMakeFiles/ral_test.dir/ral_test.cc.o"
  "CMakeFiles/ral_test.dir/ral_test.cc.o.d"
  "ral_test"
  "ral_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
