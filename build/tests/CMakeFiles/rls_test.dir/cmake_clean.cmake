file(REMOVE_RECURSE
  "CMakeFiles/rls_test.dir/rls_test.cc.o"
  "CMakeFiles/rls_test.dir/rls_test.cc.o.d"
  "rls_test"
  "rls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
