file(REMOVE_RECURSE
  "CMakeFiles/tier_topology_test.dir/tier_topology_test.cc.o"
  "CMakeFiles/tier_topology_test.dir/tier_topology_test.cc.o.d"
  "tier_topology_test"
  "tier_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tier_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
