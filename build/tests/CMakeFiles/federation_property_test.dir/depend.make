# Empty dependencies file for federation_property_test.
# This may be replaced when dependencies are built.
