file(REMOVE_RECURSE
  "CMakeFiles/federation_property_test.dir/federation_property_test.cc.o"
  "CMakeFiles/federation_property_test.dir/federation_property_test.cc.o.d"
  "federation_property_test"
  "federation_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
