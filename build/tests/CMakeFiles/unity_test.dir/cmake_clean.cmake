file(REMOVE_RECURSE
  "CMakeFiles/unity_test.dir/unity_test.cc.o"
  "CMakeFiles/unity_test.dir/unity_test.cc.o.d"
  "unity_test"
  "unity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
