# Empty dependencies file for unity_test.
# This may be replaced when dependencies are built.
