# Empty dependencies file for operator_sweep_test.
# This may be replaced when dependencies are built.
