# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("griddb/util")
subdirs("griddb/xml")
subdirs("griddb/sql")
subdirs("griddb/storage")
subdirs("griddb/engine")
subdirs("griddb/net")
subdirs("griddb/rpc")
subdirs("griddb/rls")
subdirs("griddb/ral")
subdirs("griddb/unity")
subdirs("griddb/warehouse")
subdirs("griddb/ntuple")
subdirs("griddb/core")
