file(REMOVE_RECURSE
  "libgriddb_rls.a"
)
