# Empty dependencies file for griddb_rls.
# This may be replaced when dependencies are built.
