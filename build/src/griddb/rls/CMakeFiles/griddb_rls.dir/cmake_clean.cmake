file(REMOVE_RECURSE
  "CMakeFiles/griddb_rls.dir/rls.cc.o"
  "CMakeFiles/griddb_rls.dir/rls.cc.o.d"
  "libgriddb_rls.a"
  "libgriddb_rls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_rls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
