file(REMOVE_RECURSE
  "CMakeFiles/griddb_net.dir/network.cc.o"
  "CMakeFiles/griddb_net.dir/network.cc.o.d"
  "libgriddb_net.a"
  "libgriddb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
