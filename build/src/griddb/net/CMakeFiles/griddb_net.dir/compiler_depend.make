# Empty compiler generated dependencies file for griddb_net.
# This may be replaced when dependencies are built.
