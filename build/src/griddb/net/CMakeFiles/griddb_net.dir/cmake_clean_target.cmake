file(REMOVE_RECURSE
  "libgriddb_net.a"
)
