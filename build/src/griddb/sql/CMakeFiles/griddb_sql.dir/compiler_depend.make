# Empty compiler generated dependencies file for griddb_sql.
# This may be replaced when dependencies are built.
