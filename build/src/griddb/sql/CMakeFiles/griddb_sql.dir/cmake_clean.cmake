file(REMOVE_RECURSE
  "CMakeFiles/griddb_sql.dir/ast.cc.o"
  "CMakeFiles/griddb_sql.dir/ast.cc.o.d"
  "CMakeFiles/griddb_sql.dir/dialect.cc.o"
  "CMakeFiles/griddb_sql.dir/dialect.cc.o.d"
  "CMakeFiles/griddb_sql.dir/lexer.cc.o"
  "CMakeFiles/griddb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/griddb_sql.dir/parser.cc.o"
  "CMakeFiles/griddb_sql.dir/parser.cc.o.d"
  "CMakeFiles/griddb_sql.dir/render.cc.o"
  "CMakeFiles/griddb_sql.dir/render.cc.o.d"
  "libgriddb_sql.a"
  "libgriddb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
