
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/griddb/sql/ast.cc" "src/griddb/sql/CMakeFiles/griddb_sql.dir/ast.cc.o" "gcc" "src/griddb/sql/CMakeFiles/griddb_sql.dir/ast.cc.o.d"
  "/root/repo/src/griddb/sql/dialect.cc" "src/griddb/sql/CMakeFiles/griddb_sql.dir/dialect.cc.o" "gcc" "src/griddb/sql/CMakeFiles/griddb_sql.dir/dialect.cc.o.d"
  "/root/repo/src/griddb/sql/lexer.cc" "src/griddb/sql/CMakeFiles/griddb_sql.dir/lexer.cc.o" "gcc" "src/griddb/sql/CMakeFiles/griddb_sql.dir/lexer.cc.o.d"
  "/root/repo/src/griddb/sql/parser.cc" "src/griddb/sql/CMakeFiles/griddb_sql.dir/parser.cc.o" "gcc" "src/griddb/sql/CMakeFiles/griddb_sql.dir/parser.cc.o.d"
  "/root/repo/src/griddb/sql/render.cc" "src/griddb/sql/CMakeFiles/griddb_sql.dir/render.cc.o" "gcc" "src/griddb/sql/CMakeFiles/griddb_sql.dir/render.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/griddb/storage/CMakeFiles/griddb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/util/CMakeFiles/griddb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
