file(REMOVE_RECURSE
  "libgriddb_sql.a"
)
