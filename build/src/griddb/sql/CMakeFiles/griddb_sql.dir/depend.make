# Empty dependencies file for griddb_sql.
# This may be replaced when dependencies are built.
