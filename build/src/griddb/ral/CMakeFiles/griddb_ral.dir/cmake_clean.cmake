file(REMOVE_RECURSE
  "CMakeFiles/griddb_ral.dir/catalog.cc.o"
  "CMakeFiles/griddb_ral.dir/catalog.cc.o.d"
  "CMakeFiles/griddb_ral.dir/jdbc.cc.o"
  "CMakeFiles/griddb_ral.dir/jdbc.cc.o.d"
  "CMakeFiles/griddb_ral.dir/pool_ral.cc.o"
  "CMakeFiles/griddb_ral.dir/pool_ral.cc.o.d"
  "libgriddb_ral.a"
  "libgriddb_ral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_ral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
