file(REMOVE_RECURSE
  "libgriddb_ral.a"
)
