# Empty compiler generated dependencies file for griddb_ral.
# This may be replaced when dependencies are built.
