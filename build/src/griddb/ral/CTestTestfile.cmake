# CMake generated Testfile for 
# Source directory: /root/repo/src/griddb/ral
# Build directory: /root/repo/build/src/griddb/ral
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
