# Empty compiler generated dependencies file for griddb_xml.
# This may be replaced when dependencies are built.
