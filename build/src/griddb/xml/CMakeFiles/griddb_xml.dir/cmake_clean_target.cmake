file(REMOVE_RECURSE
  "libgriddb_xml.a"
)
