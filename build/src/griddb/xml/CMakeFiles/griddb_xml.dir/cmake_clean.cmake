file(REMOVE_RECURSE
  "CMakeFiles/griddb_xml.dir/xml.cc.o"
  "CMakeFiles/griddb_xml.dir/xml.cc.o.d"
  "libgriddb_xml.a"
  "libgriddb_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
