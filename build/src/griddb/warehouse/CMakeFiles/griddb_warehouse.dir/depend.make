# Empty dependencies file for griddb_warehouse.
# This may be replaced when dependencies are built.
