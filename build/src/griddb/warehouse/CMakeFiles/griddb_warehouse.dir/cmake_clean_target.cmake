file(REMOVE_RECURSE
  "libgriddb_warehouse.a"
)
