file(REMOVE_RECURSE
  "CMakeFiles/griddb_warehouse.dir/etl.cc.o"
  "CMakeFiles/griddb_warehouse.dir/etl.cc.o.d"
  "CMakeFiles/griddb_warehouse.dir/materialize.cc.o"
  "CMakeFiles/griddb_warehouse.dir/materialize.cc.o.d"
  "CMakeFiles/griddb_warehouse.dir/warehouse.cc.o"
  "CMakeFiles/griddb_warehouse.dir/warehouse.cc.o.d"
  "libgriddb_warehouse.a"
  "libgriddb_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
