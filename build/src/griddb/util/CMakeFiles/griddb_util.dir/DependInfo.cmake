
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/griddb/util/logging.cc" "src/griddb/util/CMakeFiles/griddb_util.dir/logging.cc.o" "gcc" "src/griddb/util/CMakeFiles/griddb_util.dir/logging.cc.o.d"
  "/root/repo/src/griddb/util/md5.cc" "src/griddb/util/CMakeFiles/griddb_util.dir/md5.cc.o" "gcc" "src/griddb/util/CMakeFiles/griddb_util.dir/md5.cc.o.d"
  "/root/repo/src/griddb/util/rng.cc" "src/griddb/util/CMakeFiles/griddb_util.dir/rng.cc.o" "gcc" "src/griddb/util/CMakeFiles/griddb_util.dir/rng.cc.o.d"
  "/root/repo/src/griddb/util/status.cc" "src/griddb/util/CMakeFiles/griddb_util.dir/status.cc.o" "gcc" "src/griddb/util/CMakeFiles/griddb_util.dir/status.cc.o.d"
  "/root/repo/src/griddb/util/strings.cc" "src/griddb/util/CMakeFiles/griddb_util.dir/strings.cc.o" "gcc" "src/griddb/util/CMakeFiles/griddb_util.dir/strings.cc.o.d"
  "/root/repo/src/griddb/util/thread_pool.cc" "src/griddb/util/CMakeFiles/griddb_util.dir/thread_pool.cc.o" "gcc" "src/griddb/util/CMakeFiles/griddb_util.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
