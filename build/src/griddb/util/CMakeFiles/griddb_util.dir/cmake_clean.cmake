file(REMOVE_RECURSE
  "CMakeFiles/griddb_util.dir/logging.cc.o"
  "CMakeFiles/griddb_util.dir/logging.cc.o.d"
  "CMakeFiles/griddb_util.dir/md5.cc.o"
  "CMakeFiles/griddb_util.dir/md5.cc.o.d"
  "CMakeFiles/griddb_util.dir/rng.cc.o"
  "CMakeFiles/griddb_util.dir/rng.cc.o.d"
  "CMakeFiles/griddb_util.dir/status.cc.o"
  "CMakeFiles/griddb_util.dir/status.cc.o.d"
  "CMakeFiles/griddb_util.dir/strings.cc.o"
  "CMakeFiles/griddb_util.dir/strings.cc.o.d"
  "CMakeFiles/griddb_util.dir/thread_pool.cc.o"
  "CMakeFiles/griddb_util.dir/thread_pool.cc.o.d"
  "libgriddb_util.a"
  "libgriddb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
