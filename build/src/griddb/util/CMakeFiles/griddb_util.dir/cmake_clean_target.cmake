file(REMOVE_RECURSE
  "libgriddb_util.a"
)
