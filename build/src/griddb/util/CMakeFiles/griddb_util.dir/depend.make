# Empty dependencies file for griddb_util.
# This may be replaced when dependencies are built.
