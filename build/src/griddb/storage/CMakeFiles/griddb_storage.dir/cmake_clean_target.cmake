file(REMOVE_RECURSE
  "libgriddb_storage.a"
)
