file(REMOVE_RECURSE
  "CMakeFiles/griddb_storage.dir/result_set.cc.o"
  "CMakeFiles/griddb_storage.dir/result_set.cc.o.d"
  "CMakeFiles/griddb_storage.dir/schema.cc.o"
  "CMakeFiles/griddb_storage.dir/schema.cc.o.d"
  "CMakeFiles/griddb_storage.dir/stage_file.cc.o"
  "CMakeFiles/griddb_storage.dir/stage_file.cc.o.d"
  "CMakeFiles/griddb_storage.dir/table.cc.o"
  "CMakeFiles/griddb_storage.dir/table.cc.o.d"
  "CMakeFiles/griddb_storage.dir/value.cc.o"
  "CMakeFiles/griddb_storage.dir/value.cc.o.d"
  "libgriddb_storage.a"
  "libgriddb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
