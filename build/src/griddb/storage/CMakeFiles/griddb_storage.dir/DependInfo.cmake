
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/griddb/storage/result_set.cc" "src/griddb/storage/CMakeFiles/griddb_storage.dir/result_set.cc.o" "gcc" "src/griddb/storage/CMakeFiles/griddb_storage.dir/result_set.cc.o.d"
  "/root/repo/src/griddb/storage/schema.cc" "src/griddb/storage/CMakeFiles/griddb_storage.dir/schema.cc.o" "gcc" "src/griddb/storage/CMakeFiles/griddb_storage.dir/schema.cc.o.d"
  "/root/repo/src/griddb/storage/stage_file.cc" "src/griddb/storage/CMakeFiles/griddb_storage.dir/stage_file.cc.o" "gcc" "src/griddb/storage/CMakeFiles/griddb_storage.dir/stage_file.cc.o.d"
  "/root/repo/src/griddb/storage/table.cc" "src/griddb/storage/CMakeFiles/griddb_storage.dir/table.cc.o" "gcc" "src/griddb/storage/CMakeFiles/griddb_storage.dir/table.cc.o.d"
  "/root/repo/src/griddb/storage/value.cc" "src/griddb/storage/CMakeFiles/griddb_storage.dir/value.cc.o" "gcc" "src/griddb/storage/CMakeFiles/griddb_storage.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/griddb/util/CMakeFiles/griddb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
