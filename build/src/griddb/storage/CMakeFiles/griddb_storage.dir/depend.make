# Empty dependencies file for griddb_storage.
# This may be replaced when dependencies are built.
