# Empty compiler generated dependencies file for griddb_engine.
# This may be replaced when dependencies are built.
