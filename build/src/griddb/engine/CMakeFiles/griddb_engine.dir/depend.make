# Empty dependencies file for griddb_engine.
# This may be replaced when dependencies are built.
