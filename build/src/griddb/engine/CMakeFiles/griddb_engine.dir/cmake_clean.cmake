file(REMOVE_RECURSE
  "CMakeFiles/griddb_engine.dir/database.cc.o"
  "CMakeFiles/griddb_engine.dir/database.cc.o.d"
  "CMakeFiles/griddb_engine.dir/eval.cc.o"
  "CMakeFiles/griddb_engine.dir/eval.cc.o.d"
  "CMakeFiles/griddb_engine.dir/select_executor.cc.o"
  "CMakeFiles/griddb_engine.dir/select_executor.cc.o.d"
  "libgriddb_engine.a"
  "libgriddb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
