file(REMOVE_RECURSE
  "libgriddb_engine.a"
)
