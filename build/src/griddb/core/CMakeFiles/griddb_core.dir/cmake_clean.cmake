file(REMOVE_RECURSE
  "CMakeFiles/griddb_core.dir/data_access_service.cc.o"
  "CMakeFiles/griddb_core.dir/data_access_service.cc.o.d"
  "CMakeFiles/griddb_core.dir/jclarens_server.cc.o"
  "CMakeFiles/griddb_core.dir/jclarens_server.cc.o.d"
  "CMakeFiles/griddb_core.dir/schema_tracker.cc.o"
  "CMakeFiles/griddb_core.dir/schema_tracker.cc.o.d"
  "CMakeFiles/griddb_core.dir/xspec_repository.cc.o"
  "CMakeFiles/griddb_core.dir/xspec_repository.cc.o.d"
  "libgriddb_core.a"
  "libgriddb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
