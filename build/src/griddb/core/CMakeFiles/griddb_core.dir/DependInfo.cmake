
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/griddb/core/data_access_service.cc" "src/griddb/core/CMakeFiles/griddb_core.dir/data_access_service.cc.o" "gcc" "src/griddb/core/CMakeFiles/griddb_core.dir/data_access_service.cc.o.d"
  "/root/repo/src/griddb/core/jclarens_server.cc" "src/griddb/core/CMakeFiles/griddb_core.dir/jclarens_server.cc.o" "gcc" "src/griddb/core/CMakeFiles/griddb_core.dir/jclarens_server.cc.o.d"
  "/root/repo/src/griddb/core/schema_tracker.cc" "src/griddb/core/CMakeFiles/griddb_core.dir/schema_tracker.cc.o" "gcc" "src/griddb/core/CMakeFiles/griddb_core.dir/schema_tracker.cc.o.d"
  "/root/repo/src/griddb/core/xspec_repository.cc" "src/griddb/core/CMakeFiles/griddb_core.dir/xspec_repository.cc.o" "gcc" "src/griddb/core/CMakeFiles/griddb_core.dir/xspec_repository.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/griddb/unity/CMakeFiles/griddb_unity.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/rls/CMakeFiles/griddb_rls.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/ral/CMakeFiles/griddb_ral.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/rpc/CMakeFiles/griddb_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/engine/CMakeFiles/griddb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/sql/CMakeFiles/griddb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/xml/CMakeFiles/griddb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/net/CMakeFiles/griddb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/storage/CMakeFiles/griddb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/griddb/util/CMakeFiles/griddb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
