file(REMOVE_RECURSE
  "libgriddb_core.a"
)
