# Empty dependencies file for griddb_core.
# This may be replaced when dependencies are built.
