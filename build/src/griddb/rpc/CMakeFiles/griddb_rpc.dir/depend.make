# Empty dependencies file for griddb_rpc.
# This may be replaced when dependencies are built.
