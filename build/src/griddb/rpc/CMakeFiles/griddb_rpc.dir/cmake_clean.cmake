file(REMOVE_RECURSE
  "CMakeFiles/griddb_rpc.dir/server.cc.o"
  "CMakeFiles/griddb_rpc.dir/server.cc.o.d"
  "CMakeFiles/griddb_rpc.dir/xmlrpc_value.cc.o"
  "CMakeFiles/griddb_rpc.dir/xmlrpc_value.cc.o.d"
  "libgriddb_rpc.a"
  "libgriddb_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
