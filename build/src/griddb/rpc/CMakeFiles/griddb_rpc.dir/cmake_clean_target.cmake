file(REMOVE_RECURSE
  "libgriddb_rpc.a"
)
