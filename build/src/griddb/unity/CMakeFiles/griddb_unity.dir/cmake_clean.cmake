file(REMOVE_RECURSE
  "CMakeFiles/griddb_unity.dir/dictionary.cc.o"
  "CMakeFiles/griddb_unity.dir/dictionary.cc.o.d"
  "CMakeFiles/griddb_unity.dir/driver.cc.o"
  "CMakeFiles/griddb_unity.dir/driver.cc.o.d"
  "CMakeFiles/griddb_unity.dir/planner.cc.o"
  "CMakeFiles/griddb_unity.dir/planner.cc.o.d"
  "CMakeFiles/griddb_unity.dir/semantic.cc.o"
  "CMakeFiles/griddb_unity.dir/semantic.cc.o.d"
  "CMakeFiles/griddb_unity.dir/xspec.cc.o"
  "CMakeFiles/griddb_unity.dir/xspec.cc.o.d"
  "libgriddb_unity.a"
  "libgriddb_unity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_unity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
