file(REMOVE_RECURSE
  "libgriddb_unity.a"
)
