# Empty dependencies file for griddb_unity.
# This may be replaced when dependencies are built.
