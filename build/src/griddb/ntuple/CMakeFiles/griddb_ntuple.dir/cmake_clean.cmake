file(REMOVE_RECURSE
  "CMakeFiles/griddb_ntuple.dir/histogram.cc.o"
  "CMakeFiles/griddb_ntuple.dir/histogram.cc.o.d"
  "CMakeFiles/griddb_ntuple.dir/ntuple.cc.o"
  "CMakeFiles/griddb_ntuple.dir/ntuple.cc.o.d"
  "libgriddb_ntuple.a"
  "libgriddb_ntuple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddb_ntuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
