# Empty dependencies file for griddb_ntuple.
# This may be replaced when dependencies are built.
