file(REMOVE_RECURSE
  "libgriddb_ntuple.a"
)
