file(REMOVE_RECURSE
  "CMakeFiles/semantic_integration.dir/semantic_integration.cpp.o"
  "CMakeFiles/semantic_integration.dir/semantic_integration.cpp.o.d"
  "semantic_integration"
  "semantic_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
