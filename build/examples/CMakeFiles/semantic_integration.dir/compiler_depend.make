# Empty compiler generated dependencies file for semantic_integration.
# This may be replaced when dependencies are built.
