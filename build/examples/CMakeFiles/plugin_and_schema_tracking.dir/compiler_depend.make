# Empty compiler generated dependencies file for plugin_and_schema_tracking.
# This may be replaced when dependencies are built.
