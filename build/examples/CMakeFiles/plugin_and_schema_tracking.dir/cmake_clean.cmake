file(REMOVE_RECURSE
  "CMakeFiles/plugin_and_schema_tracking.dir/plugin_and_schema_tracking.cpp.o"
  "CMakeFiles/plugin_and_schema_tracking.dir/plugin_and_schema_tracking.cpp.o.d"
  "plugin_and_schema_tracking"
  "plugin_and_schema_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plugin_and_schema_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
