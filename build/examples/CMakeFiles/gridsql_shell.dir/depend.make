# Empty dependencies file for gridsql_shell.
# This may be replaced when dependencies are built.
