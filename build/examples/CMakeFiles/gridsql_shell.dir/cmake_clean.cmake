file(REMOVE_RECURSE
  "CMakeFiles/gridsql_shell.dir/gridsql_shell.cpp.o"
  "CMakeFiles/gridsql_shell.dir/gridsql_shell.cpp.o.d"
  "gridsql_shell"
  "gridsql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
