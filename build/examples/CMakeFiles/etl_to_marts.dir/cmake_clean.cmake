file(REMOVE_RECURSE
  "CMakeFiles/etl_to_marts.dir/etl_to_marts.cpp.o"
  "CMakeFiles/etl_to_marts.dir/etl_to_marts.cpp.o.d"
  "etl_to_marts"
  "etl_to_marts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etl_to_marts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
