# Empty compiler generated dependencies file for etl_to_marts.
# This may be replaced when dependencies are built.
