# Empty compiler generated dependencies file for federated_join_tour.
# This may be replaced when dependencies are built.
