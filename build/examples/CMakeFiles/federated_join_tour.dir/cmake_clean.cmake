file(REMOVE_RECURSE
  "CMakeFiles/federated_join_tour.dir/federated_join_tour.cpp.o"
  "CMakeFiles/federated_join_tour.dir/federated_join_tour.cpp.o.d"
  "federated_join_tour"
  "federated_join_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_join_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
