#!/usr/bin/env bash
# Docs gate: the prose may not reference code or sections that do not
# exist. Three checks over README.md, DESIGN.md, EXPERIMENTS.md and
# docs/*.md:
#
#   1. every `src/griddb/...` path resolves — as a file, a directory,
#      or a source stem (`src/griddb/core/admission` is satisfied by
#      admission.h/admission.cc);
#   2. every explicit `DESIGN.md §N` cross-reference points at an
#      existing `## N.` section of DESIGN.md (bare §N references are
#      NOT checked: inside DESIGN.md they cite the *paper's* sections);
#   3. every relative markdown link target exists on disk.
#
# Run directly or via scripts/check.sh. Exits non-zero listing every
# stale reference.
set -euo pipefail
cd "$(dirname "$0")/.."

docs=(README.md DESIGN.md EXPERIMENTS.md docs/*.md)
fail=0

# --- 1. src/griddb paths ---------------------------------------------------
while IFS=: read -r file path; do
  # Strip sentence-final dots the regex may have swallowed.
  while [[ "$path" == *. ]]; do path="${path%.}"; done
  if [[ -e "$path" ]]; then continue; fi
  # Module-stem reference: src/foo/bar naming bar.{h,cc} or bar/.
  if compgen -G "${path}.*" >/dev/null; then continue; fi
  echo "FAIL: $file references $path which does not exist" >&2
  fail=1
done < <(grep -oHE 'src/griddb/[A-Za-z0-9_./-]+' "${docs[@]}" | sort -u)

# --- 2. DESIGN.md §N cross-references --------------------------------------
while IFS=: read -r file ref; do
  n="${ref##*§}"
  if ! grep -qE "^## ${n}\." DESIGN.md; then
    echo "FAIL: $file references DESIGN.md §$n but DESIGN.md has no '## $n.' section" >&2
    fail=1
  fi
done < <(grep -oHE 'DESIGN\.md (§§|§)[0-9]+' "${docs[@]}" | sort -u)

# --- 3. relative markdown links --------------------------------------------
while IFS=: read -r file target; do
  target="${target#\](}"
  target="${target%)}"
  target="${target%%#*}"              # drop in-page anchors
  [[ -z "$target" ]] && continue      # pure-anchor link
  case "$target" in
    http://*|https://*|mailto:*) continue ;;
  esac
  base="$(dirname "$file")"
  if [[ ! -e "$base/$target" && ! -e "$target" ]]; then
    echo "FAIL: $file links to $target which does not exist" >&2
    fail=1
  fi
done < <(grep -oHE '\]\([^)[:space:]]+\)' "${docs[@]}" | sort -u)

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "docs links gate: all code paths, section references and links resolve"
