#!/usr/bin/env bash
# Docs gate: every metric name registered in src/ must be documented in
# docs/OPERATIONS.md. Registration sites are string literals of the form
# "griddb.<layer>.<name>" passed to MetricsRegistry::Get{Counter,Gauge,
# Histogram}, so a grep over src/ is the authoritative inventory.
#
# Run directly or via scripts/check.sh. Exits non-zero listing every
# undocumented metric.
set -euo pipefail
cd "$(dirname "$0")/.."

catalog=docs/OPERATIONS.md
if [[ ! -f "$catalog" ]]; then
  echo "FAIL: $catalog does not exist" >&2
  exit 1
fi

missing=0
while IFS= read -r name; do
  if ! grep -qF "$name" "$catalog"; then
    echo "FAIL: metric $name is registered in src/ but not documented in $catalog" >&2
    missing=1
  fi
done < <(grep -rhoE '"griddb\.[a-z0-9_.]+"' src | tr -d '"' | sort -u)

if [[ "$missing" -ne 0 ]]; then
  exit 1
fi
echo "metrics docs gate: all registered metric names documented in $catalog"
