#!/usr/bin/env bash
# Tier-1 gate plus the robustness suites under ASan/TSan and the query
# cache perf gate.
#
#   scripts/check.sh            # build + ctest + sanitizers + cache bench
#   scripts/check.sh --fast     # build + full ctest only
#
# The tier-1 contract (ROADMAP.md): `cmake -B build -S . && cmake --build
# build -j && ctest` must pass. On top of that, the fault-injection and
# integrity tests exercise enough pointer-heavy recovery paths (manifest
# rewrites, quarantine swaps, mid-run aborts) that they are worth a
# second run under AddressSanitizer, and the query cache is hammered
# under ThreadSanitizer because it sits on the parallel sub-query
# fan-out. The cache bench is a perf gate: warm repeat queries must stay
# >= 5x faster than cold, and the cold path must stay byte-identical to
# a cache-disabled server (results land in BENCH_query_cache.json).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== docs: metric catalog gate =="
scripts/check_metrics_docs.sh

echo "== docs: link + section reference gate =="
scripts/check_docs_links.sh

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" >/dev/null

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure

echo "== tier-1: ctest under GRIDDB_WIRE=binary =="
# The whole suite doubles as cross-codec conformance: every RPC-backed
# test must pass identically when clients negotiate the binary framing.
GRIDDB_WIRE=binary ctest --test-dir build --output-on-failure

if [[ "${1:-}" == "--fast" ]]; then
  echo "OK (fast mode: sanitizer + bench passes skipped)"
  exit 0
fi

echo "== perf gate: query cache bench =="
./build/bench/bench_ext_query_cache BENCH_query_cache.json

echo "== perf gate: overload / admission control bench =="
./build/bench/bench_ext_overload BENCH_overload.json

echo "== perf gate: tenant isolation bench =="
./build/bench/bench_ext_tenant_isolation BENCH_tenant_isolation.json

echo "== perf gate: batch service bench =="
./build/bench/bench_ext_batch_service BENCH_batch_service.json

echo "== perf gate: vectorized executor bench =="
# Cold 4-way join and the wide-ntuple scan must stay >= 3x faster than
# the retained row-at-a-time reference path, with byte-identical output
# on every shape/batch size (results land in BENCH_vectorized.json).
./build/bench/bench_ext_vectorized BENCH_vectorized.json

echo "== perf gate: wire protocol bench =="
# Over the WAN the binary codec must move >= 3x fewer wire bytes and
# finish the response leg >= 2x faster on the wide-ntuple shape, the
# streamed path must land its first chunk before the full result, and
# fault-free XML-RPC responses must stay byte-identical to the
# tree-writer encoder (results land in BENCH_wire.json).
./build/bench/bench_ext_wan BENCH_wire.json

echo "== crash injection: batch journal recovery sweep =="
# Kill the batch coordinator at every named point of its checkpoint
# protocol (see BatchJobManager::CrashHook) and require restart recovery
# to complete the job byte-identical with no re-executed checkpoints.
# `list` first: the sweep below must name real points, so enumerate them
# and fail loudly if the protocol grew one this list does not cover.
GRIDDB_CRASH_POINT=list ./build/tests/batch_service_test \
  --gtest_filter='*EnvDrivenCrashPointSweep*'
for point in staged:0 staged:3 checkpoint:0 checkpoint:4 checkpoint:6 \
             total:7 terminal:7; do
  echo "-- GRIDDB_CRASH_POINT=$point"
  GRIDDB_CRASH_POINT="$point" ./build/tests/batch_service_test \
    --gtest_filter='*EnvDrivenCrashPointSweep*' >/dev/null
done

echo "== chaos: whole-system seed sweep =="
# Composed storage faults + network faults + coordinator kills against a
# fault-free oracle (bench/chaos_harness.h). The tier-1 ctest pass above
# already ran the bounded tests/chaos_test seeds; the full >= 200 seed
# acceptance sweep is bench_ext_chaos (BENCH_chaos.json). A failing seed
# is printed by the runner — replaying it reproduces the exact schedule.
./build/bench/bench_ext_chaos BENCH_chaos.json >/dev/null

echo "== asan: build robustness suites =="
cmake -B /tmp/griddb_asan -S . -DGRIDDB_SANITIZE=address >/dev/null
cmake --build /tmp/griddb_asan -j"$(nproc)" --target \
  fault_tolerance_test etl_resume_test integrity_test \
  stage_property_test query_cache_test overload_test \
  tenant_isolation_test batch_service_test \
  vectorized_parity_test wire_codec_test \
  fault_fs_test chaos_test >/dev/null

echo "== asan: run =="
# chaos_test is the bounded chaos seed sweep (tests/chaos_test.cc): the
# same whole-system harness as bench_ext_chaos on a handful of seeds, so
# the crash/recover/quarantine paths run under the sanitizer in bounded
# time. A failing seed appears in the gtest SCOPED_TRACE output.
for t in fault_tolerance_test etl_resume_test integrity_test \
         stage_property_test query_cache_test overload_test \
         tenant_isolation_test batch_service_test \
         vectorized_parity_test wire_codec_test \
         fault_fs_test chaos_test; do
  echo "-- $t"
  /tmp/griddb_asan/tests/"$t" >/dev/null
done

echo "== tsan: build + run cache + overload + tenant concurrency suites =="
cmake -B /tmp/griddb_tsan -S . -DGRIDDB_SANITIZE=thread >/dev/null
cmake --build /tmp/griddb_tsan -j"$(nproc)" --target \
  query_cache_test concurrency_test overload_test \
  tenant_isolation_test batch_service_test \
  vectorized_parity_test wire_codec_test chaos_test >/dev/null
for t in query_cache_test concurrency_test overload_test \
         tenant_isolation_test batch_service_test \
         vectorized_parity_test wire_codec_test chaos_test; do
  echo "-- $t"
  /tmp/griddb_tsan/tests/"$t" >/dev/null
done

echo "OK"
