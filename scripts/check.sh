#!/usr/bin/env bash
# Tier-1 gate plus the robustness suites under ASan.
#
#   scripts/check.sh            # build + full ctest + asan fault suites
#   scripts/check.sh --fast     # build + full ctest only
#
# The tier-1 contract (ROADMAP.md): `cmake -B build -S . && cmake --build
# build -j && ctest` must pass. On top of that, the fault-injection and
# integrity tests exercise enough pointer-heavy recovery paths (manifest
# rewrites, quarantine swaps, mid-run aborts) that they are worth a
# second run under AddressSanitizer.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== docs: metric catalog gate =="
scripts/check_metrics_docs.sh

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" >/dev/null

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure

if [[ "${1:-}" == "--fast" ]]; then
  echo "OK (fast mode: sanitizer pass skipped)"
  exit 0
fi

echo "== asan: build robustness suites =="
cmake -B /tmp/griddb_asan -S . -DGRIDDB_SANITIZE=address >/dev/null
cmake --build /tmp/griddb_asan -j"$(nproc)" --target \
  fault_tolerance_test etl_resume_test integrity_test \
  stage_property_test >/dev/null

echo "== asan: run =="
for t in fault_tolerance_test etl_resume_test integrity_test \
         stage_property_test; do
  echo "-- $t"
  /tmp/griddb_asan/tests/"$t" >/dev/null
done

echo "OK"
