#include <gtest/gtest.h>

#include "griddb/unity/semantic.h"

namespace griddb::unity {
namespace {

using storage::DataType;

// ---------- string similarity primitives ----------

TEST(EditSimilarityTest, BasicProperties) {
  EXPECT_DOUBLE_EQ(EditSimilarity("events", "events"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("EVENTS", "events"), 1.0);  // case-blind
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", ""), 0.0);
  EXPECT_NEAR(EditSimilarity("event", "events"), 1.0 - 1.0 / 6.0, 1e-9);
  EXPECT_LT(EditSimilarity("events", "calibration"), 0.3);
}

TEST(EditSimilarityTest, Symmetry) {
  const char* words[] = {"run", "runs", "run_id", "detector", ""};
  for (const char* a : words) {
    for (const char* b : words) {
      EXPECT_DOUBLE_EQ(EditSimilarity(a, b), EditSimilarity(b, a));
    }
  }
}

TEST(TokenSimilarityTest, TokenOverlap) {
  EXPECT_DOUBLE_EQ(TokenSimilarity("run_quality", "quality_of_run"), 2.0 / 3);
  EXPECT_DOUBLE_EQ(TokenSimilarity("event_id", "event_id"), 1.0);
  EXPECT_DOUBLE_EQ(TokenSimilarity("alpha_beta", "gamma_delta"), 0.0);
  EXPECT_DOUBLE_EQ(TokenSimilarity("a_b", "b_a"), 1.0);
}

TEST(NameSimilarityTest, TakesBestSignal) {
  // Token reordering is invisible to edit distance but caught by tokens.
  EXPECT_GT(NameSimilarity("quality_run", "run_quality"), 0.9);
  // Small typos are caught by edit distance, not tokens.
  EXPECT_GT(NameSimilarity("detector", "detecter"), 0.8);
}

// ---------- table comparison ----------

TableBinding MakeBinding(const std::string& db, const std::string& table,
                         std::vector<ColumnBinding> columns) {
  TableBinding binding;
  binding.database_name = db;
  binding.logical = table;
  binding.physical = table;
  binding.connection = "mysql://" + db + "/" + db;
  binding.columns = std::move(columns);
  return binding;
}

TEST(SemanticMatcherTest, IdenticalTablesScoreOne) {
  SemanticMatcher matcher;
  TableBinding a = MakeBinding(
      "db1", "events",
      {{"event_id", "EVENT_ID", DataType::kInt64},
       {"energy", "ENERGY", DataType::kDouble}});
  TableBinding b = MakeBinding(
      "db2", "events",
      {{"event_id", "EVT_ID", DataType::kInt64},
       {"energy", "E", DataType::kDouble}});
  TableSimilarity sim = matcher.Compare(a, b);
  EXPECT_DOUBLE_EQ(sim.name_score, 1.0);
  EXPECT_DOUBLE_EQ(sim.column_score, 1.0);
  EXPECT_DOUBLE_EQ(sim.type_score, 1.0);
  EXPECT_DOUBLE_EQ(sim.score, 1.0);
  ASSERT_EQ(sim.matches.size(), 2u);
}

TEST(SemanticMatcherTest, RenamedVariantStillMatches) {
  SemanticMatcher matcher;
  TableBinding a = MakeBinding(
      "cern", "run_conditions",
      {{"run_id", "", DataType::kInt64},
       {"temperature", "", DataType::kDouble},
       {"pressure", "", DataType::kDouble}});
  TableBinding b = MakeBinding(
      "caltech", "conditions_run",
      {{"run_id", "", DataType::kInt64},
       {"temperature", "", DataType::kDouble},
       {"humidity", "", DataType::kDouble}});
  TableSimilarity sim = matcher.Compare(a, b);
  EXPECT_GT(sim.name_score, 0.9);   // token reorder
  EXPECT_NEAR(sim.column_score, 2.0 / 4.0, 1e-9);  // 2 matched of 4 union
  EXPECT_GT(sim.score, 0.6);
}

TEST(SemanticMatcherTest, UnrelatedTablesScoreLow) {
  SemanticMatcher matcher;
  TableBinding a = MakeBinding("db1", "events",
                               {{"event_id", "", DataType::kInt64},
                                {"energy", "", DataType::kDouble}});
  TableBinding b = MakeBinding("db2", "shift_notes",
                               {{"note", "", DataType::kString},
                                {"author", "", DataType::kString}});
  TableSimilarity sim = matcher.Compare(a, b);
  EXPECT_LT(sim.score, 0.3);
  EXPECT_TRUE(sim.matches.empty());
}

TEST(SemanticMatcherTest, TypeMismatchLowersScore) {
  SemanticMatcher matcher;
  TableBinding a = MakeBinding("db1", "calib",
                               {{"sensor_id", "", DataType::kInt64},
                                {"gain", "", DataType::kDouble}});
  TableBinding numeric_twin = MakeBinding(
      "db2", "calib", {{"sensor_id", "", DataType::kInt64},
                       {"gain", "", DataType::kInt64}});  // int vs double ok
  TableBinding string_twin = MakeBinding(
      "db3", "calib", {{"sensor_id", "", DataType::kString},
                       {"gain", "", DataType::kString}});
  EXPECT_DOUBLE_EQ(matcher.Compare(a, numeric_twin).type_score, 1.0);
  EXPECT_DOUBLE_EQ(matcher.Compare(a, string_twin).type_score, 0.0);
  EXPECT_GT(matcher.Compare(a, numeric_twin).score,
            matcher.Compare(a, string_twin).score);
}

TEST(SemanticMatcherTest, GreedyMatchingIsOneToOne) {
  SemanticMatcher matcher;
  TableBinding a = MakeBinding("db1", "t",
                               {{"run", "", DataType::kInt64},
                                {"run_id", "", DataType::kInt64}});
  TableBinding b = MakeBinding("db2", "t",
                               {{"run_id", "", DataType::kInt64}});
  TableSimilarity sim = matcher.Compare(a, b);
  ASSERT_EQ(sim.matches.size(), 1u);
  EXPECT_EQ(sim.matches[0].column_a, "run_id");  // exact match wins
  EXPECT_DOUBLE_EQ(sim.matches[0].name_score, 1.0);
}

// ---------- dictionary-wide candidate search ----------

TEST(SemanticMatcherTest, FindsCandidatesAcrossDictionary) {
  DataDictionary dict;
  LowerXSpec cern;
  cern.database_name = "cern_db";
  cern.vendor = "oracle";
  cern.tables.push_back(
      {"RUN_CONDITIONS", "run_conditions",
       {{"RUN_ID", "run_id", DataType::kInt64, true, true},
        {"TEMP", "temperature", DataType::kDouble, false, false}}});
  cern.tables.push_back(
      {"EVENTS", "events",
       {{"EVENT_ID", "event_id", DataType::kInt64, true, true},
        {"ENERGY", "energy", DataType::kDouble, false, false}}});
  LowerXSpec caltech;
  caltech.database_name = "caltech_db";
  caltech.vendor = "mysql";
  caltech.tables.push_back(
      {"conditions_run", "conditions_run",
       {{"run_id", "run_id", DataType::kInt64, true, true},
        {"temperature", "temperature", DataType::kDouble, false, false}}});
  caltech.tables.push_back(
      {"shift_notes", "shift_notes",
       {{"note", "note", DataType::kString, false, false}}});

  ASSERT_TRUE(dict.AddDatabase({"cern_db", "oracle://t0/cern_db", "", ""},
                               cern)
                  .ok());
  ASSERT_TRUE(dict.AddDatabase({"caltech_db", "mysql://t2/caltech_db", "", ""},
                               caltech)
                  .ok());

  SemanticMatcher matcher;
  std::vector<TableSimilarity> candidates =
      matcher.FindIntegrationCandidates(dict, 0.6);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].table_a, "conditions_run");
  EXPECT_EQ(candidates[0].table_b, "run_conditions");
  EXPECT_GT(candidates[0].score, 0.8);

  // Lower threshold admits weaker pairs, still ranked best-first.
  std::vector<TableSimilarity> loose =
      matcher.FindIntegrationCandidates(dict, 0.0);
  ASSERT_GE(loose.size(), 2u);
  for (size_t i = 1; i < loose.size(); ++i) {
    EXPECT_GE(loose[i - 1].score, loose[i].score);
  }
}

TEST(SemanticMatcherTest, SameDatabasePairsSkipped) {
  DataDictionary dict;
  LowerXSpec spec;
  spec.database_name = "solo";
  spec.vendor = "mysql";
  spec.tables.push_back(
      {"a_events", "a_events",
       {{"event_id", "event_id", DataType::kInt64, true, true}}});
  spec.tables.push_back(
      {"b_events", "b_events",
       {{"event_id", "event_id", DataType::kInt64, true, true}}});
  ASSERT_TRUE(
      dict.AddDatabase({"solo", "mysql://h/solo", "", ""}, spec).ok());
  SemanticMatcher matcher;
  EXPECT_TRUE(matcher.FindIntegrationCandidates(dict, 0.0).empty());
}

}  // namespace
}  // namespace griddb::unity
