#include <gtest/gtest.h>

#include <thread>

#include "griddb/engine/database.h"
#include "griddb/engine/eval.h"
#include "griddb/engine/select_executor.h"
#include "griddb/sql/parser.h"

namespace griddb::engine {
namespace {

using storage::DataType;
using storage::ResultSet;
using storage::Value;

/// A MySQL-flavoured database preloaded with a small HEP-ish dataset.
std::unique_ptr<Database> MakeEventsDb(sql::Vendor vendor = sql::Vendor::kMySql) {
  auto db_ptr = std::make_unique<Database>("testdb", vendor);
  Database& db = *db_ptr;
  EXPECT_TRUE(db.Execute("CREATE TABLE runs (run_id INT PRIMARY KEY, "
                         "detector VARCHAR(16) NOT NULL)")
                  .ok());
  EXPECT_TRUE(db.Execute("CREATE TABLE events (event_id INT PRIMARY KEY, "
                         "run_id INT, energy DOUBLE, tag VARCHAR(16), "
                         "FOREIGN KEY (run_id) REFERENCES runs (run_id))")
                  .ok());
  EXPECT_TRUE(db.Execute("INSERT INTO runs (run_id, detector) VALUES "
                         "(1, 'ECAL'), (2, 'HCAL'), (3, 'TRACKER')")
                  .ok());
  EXPECT_TRUE(
      db.Execute("INSERT INTO events (event_id, run_id, energy, tag) VALUES "
                 "(10, 1, 45.5, 'muon'), "
                 "(11, 1, 12.0, 'electron'), "
                 "(12, 2, 99.25, 'muon'), "
                 "(13, 2, 7.5, 'photon'), "
                 "(14, 3, 60.0, 'muon'), "
                 "(15, NULL, 5.0, NULL)")
          .ok());
  return db_ptr;
}

TEST(EngineTest, CreateInsertSelect) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute("SELECT event_id, energy FROM events WHERE energy > 40");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->columns[0], "event_id");
}

TEST(EngineTest, SelectStarExpandsAllColumns) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute("SELECT * FROM runs");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->columns, (std::vector<std::string>{"run_id", "detector"}));
  EXPECT_EQ(rs->num_rows(), 3u);
}

TEST(EngineTest, WhereNullComparisonsAreFiltered) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  // run_id IS NULL row: run_id = run_id is NULL there, filtered by WHERE.
  auto rs = db.Execute("SELECT event_id FROM events WHERE run_id = run_id");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 5u);
  auto nulls = db.Execute("SELECT event_id FROM events WHERE run_id IS NULL");
  ASSERT_TRUE(nulls.ok());
  EXPECT_EQ(nulls->num_rows(), 1u);
}

TEST(EngineTest, InnerJoin) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute(
      "SELECT e.event_id, r.detector FROM events e "
      "JOIN runs r ON e.run_id = r.run_id ORDER BY e.event_id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 5u);  // NULL run_id row drops out
  EXPECT_EQ(rs->rows[0][1].AsStringStrict(), "ECAL");
  EXPECT_EQ(rs->rows[4][1].AsStringStrict(), "TRACKER");
}

TEST(EngineTest, LeftJoinPadsWithNulls) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute(
      "SELECT e.event_id, r.detector FROM events e "
      "LEFT JOIN runs r ON e.run_id = r.run_id ORDER BY e.event_id");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), 6u);
  EXPECT_TRUE(rs->rows[5][1].is_null());
}

TEST(EngineTest, CrossJoinCardinality) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute("SELECT * FROM runs CROSS JOIN runs r2");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 9u);
}

TEST(EngineTest, CommaJoinWithWhereActsAsInnerJoin) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute(
      "SELECT e.event_id FROM events e, runs r "
      "WHERE e.run_id = r.run_id AND r.detector = 'ECAL'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 2u);
}

TEST(EngineTest, NonEquiJoinFallsBackToNestedLoop) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute(
      "SELECT e.event_id, r.run_id FROM events e JOIN runs r "
      "ON e.run_id < r.run_id ORDER BY e.event_id, r.run_id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // run 1 events pair with runs 2,3; run 2 events with run 3.
  EXPECT_EQ(rs->num_rows(), 2u * 2 + 2u * 1);
}

TEST(EngineTest, Aggregates) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute(
      "SELECT COUNT(*), COUNT(run_id), COUNT(DISTINCT tag), SUM(energy), "
      "AVG(energy), MIN(energy), MAX(energy) FROM events");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 1u);
  const auto& row = rs->rows[0];
  EXPECT_EQ(row[0].AsInt64Strict(), 6);
  EXPECT_EQ(row[1].AsInt64Strict(), 5);  // NULL run_id not counted
  EXPECT_EQ(row[2].AsInt64Strict(), 3);  // muon, electron, photon
  EXPECT_DOUBLE_EQ(row[3].AsDoubleStrict(), 45.5 + 12 + 99.25 + 7.5 + 60 + 5);
  EXPECT_DOUBLE_EQ(row[5].AsDoubleStrict(), 5.0);
  EXPECT_DOUBLE_EQ(row[6].AsDoubleStrict(), 99.25);
}

TEST(EngineTest, GroupByWithHaving) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute(
      "SELECT tag, COUNT(*) AS n, AVG(energy) AS avg_e FROM events "
      "WHERE tag IS NOT NULL GROUP BY tag HAVING COUNT(*) >= 1 "
      "ORDER BY n DESC, tag");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->rows[0][0].AsStringStrict(), "muon");
  EXPECT_EQ(rs->rows[0][1].AsInt64Strict(), 3);
  EXPECT_NEAR(rs->rows[0][2].AsDoubleStrict(), (45.5 + 99.25 + 60.0) / 3, 1e-9);
}

TEST(EngineTest, AggregateOverEmptyInput) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute("SELECT COUNT(*), SUM(energy) FROM events WHERE 1 = 0");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt64Strict(), 0);
  EXPECT_TRUE(rs->rows[0][1].is_null());
}

TEST(EngineTest, DistinctRemovesDuplicates) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute(
      "SELECT DISTINCT tag FROM events WHERE tag IS NOT NULL ORDER BY tag");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->rows[0][0].AsStringStrict(), "electron");
}

TEST(EngineTest, OrderByMultipleKeysAndPositions) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute("SELECT tag, energy FROM events ORDER BY 1 DESC, 2");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // NULL tag sorts before everything ascending, so last when DESC... NULL
  // sorts first in Compare; DESC puts it last.
  EXPECT_TRUE(rs->rows[5][0].is_null());
  EXPECT_EQ(rs->rows[0][0].AsStringStrict(), "photon");
}

TEST(EngineTest, LimitAndOffset) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute(
      "SELECT event_id FROM events ORDER BY event_id LIMIT 2 OFFSET 1");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_EQ(rs->rows[0][0].AsInt64Strict(), 11);
}

TEST(EngineTest, ScalarFunctions) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute(
      "SELECT UPPER(tag), LENGTH(tag), ROUND(energy, 1), ABS(0 - energy) "
      "FROM events WHERE event_id = 12");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].AsStringStrict(), "MUON");
  EXPECT_EQ(rs->rows[0][1].AsInt64Strict(), 4);
  EXPECT_DOUBLE_EQ(rs->rows[0][2].AsDoubleStrict(), 99.3);
  EXPECT_DOUBLE_EQ(rs->rows[0][3].AsDoubleStrict(), 99.25);
}

TEST(EngineTest, LikePatterns) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute("SELECT tag FROM events WHERE tag LIKE 'mu%'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 3u);
  rs = db.Execute("SELECT tag FROM events WHERE tag LIKE '_hoton'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 1u);
  rs = db.Execute("SELECT tag FROM events WHERE tag NOT LIKE '%o%' "
                  "AND tag IS NOT NULL");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 0u);  // muon, electron, photon all contain 'o'
}

TEST(EngineTest, UpdateAffectsMatchingRows) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  ExecStats stats;
  auto rs =
      db.Execute("UPDATE events SET energy = energy * 2 WHERE tag = 'muon'",
                 &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(stats.rows_affected, 3u);
  auto check = db.Execute("SELECT energy FROM events WHERE event_id = 10");
  EXPECT_DOUBLE_EQ(check->rows[0][0].AsDoubleStrict(), 91.0);
}

TEST(EngineTest, DeleteAffectsMatchingRows) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  ExecStats stats;
  ASSERT_TRUE(db.Execute("DELETE FROM events WHERE energy < 10", &stats).ok());
  EXPECT_EQ(stats.rows_affected, 2u);
  EXPECT_EQ(db.RowCount("events"), 4u);
}

TEST(EngineTest, ViewsExecuteTheirDefinition) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  ASSERT_TRUE(db.Execute("CREATE VIEW muons AS SELECT event_id, energy "
                         "FROM events WHERE tag = 'muon'")
                  .ok());
  auto rs = db.Execute("SELECT COUNT(*) FROM muons");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].AsInt64Strict(), 3);
  // Views are live: new rows appear.
  ASSERT_TRUE(db.Execute("INSERT INTO events (event_id, run_id, energy, tag) "
                         "VALUES (16, 1, 70.0, 'muon')")
                  .ok());
  rs = db.Execute("SELECT COUNT(*) FROM muons");
  EXPECT_EQ(rs->rows[0][0].AsInt64Strict(), 4);
}

TEST(EngineTest, ViewJoinsWithTable) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  ASSERT_TRUE(db.Execute("CREATE VIEW muons AS SELECT event_id, run_id "
                         "FROM events WHERE tag = 'muon'")
                  .ok());
  auto rs = db.Execute(
      "SELECT m.event_id, r.detector FROM muons m JOIN runs r "
      "ON m.run_id = r.run_id ORDER BY m.event_id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 3u);
}

TEST(EngineTest, InsertSelectCopiesRows) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  ASSERT_TRUE(db.Execute("CREATE TABLE event_copy (event_id INT, energy DOUBLE)")
                  .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO event_copy (event_id, energy) "
                         "SELECT event_id, energy FROM events WHERE energy > 40")
                  .ok());
  EXPECT_EQ(db.RowCount("event_copy"), 3u);
}

TEST(EngineTest, DuplicatePrimaryKeyRejected) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto result = db.Execute(
      "INSERT INTO runs (run_id, detector) VALUES (1, 'DUP')");
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

TEST(EngineTest, UnknownTableAndColumnErrors) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  EXPECT_EQ(db.Execute("SELECT * FROM ghosts").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.Execute("SELECT ghost_col FROM events").status().code(),
            StatusCode::kNotFound);
}

TEST(EngineTest, AmbiguousColumnRejected) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto result = db.Execute(
      "SELECT run_id FROM events e JOIN runs r ON e.run_id = r.run_id");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, DuplicateAliasRejected) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto result = db.Execute("SELECT * FROM runs JOIN runs ON 1 = 1");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, DialectEnforcement) {
  Database oracle("ora", sql::Vendor::kOracle);
  ASSERT_TRUE(oracle
                  .Execute("CREATE TABLE t (a NUMBER(19) PRIMARY KEY, "
                           "b VARCHAR2(100))")
                  .ok());
  ASSERT_TRUE(oracle.Execute("INSERT INTO t (a, b) VALUES (1, 'x')").ok());
  // Oracle engine rejects MySQL-isms.
  EXPECT_FALSE(oracle.Execute("SELECT a FROM t LIMIT 1").ok());
  EXPECT_FALSE(oracle.Execute("SELECT `a` FROM t").ok());
  // ... but takes ROWNUM.
  auto rs = oracle.Execute("SELECT a FROM t WHERE ROWNUM <= 1");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 1u);
}

TEST(EngineTest, SystemCatalogsPerVendor) {
  Database oracle("ora", sql::Vendor::kOracle);
  ASSERT_TRUE(oracle.Execute("CREATE TABLE caldata (a INT PRIMARY KEY)").ok());
  auto rs = oracle.Execute("SELECT TABLE_NAME FROM USER_TABLES");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsStringStrict(), "caldata");

  Database my("my", sql::Vendor::kMySql);
  ASSERT_TRUE(my.Execute("CREATE TABLE conditions (a INT)").ok());
  auto cols = my.Execute(
      "SELECT COLUMN_NAME FROM INFORMATION_SCHEMA_COLUMNS "
      "WHERE TABLE_NAME = 'conditions'");
  ASSERT_TRUE(cols.ok()) << cols.status().ToString();
  EXPECT_EQ(cols->num_rows(), 1u);

  Database lite("lite", sql::Vendor::kSqlite);
  ASSERT_TRUE(lite.Execute("CREATE TABLE t (a INT)").ok());
  auto master = lite.Execute("SELECT name FROM sqlite_master");
  ASSERT_TRUE(master.ok()) << master.status().ToString();
  EXPECT_EQ(master->num_rows(), 1u);
}

TEST(EngineTest, IntrospectionApis) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  ASSERT_TRUE(
      db.Execute("CREATE VIEW v AS SELECT event_id FROM events").ok());
  EXPECT_TRUE(db.HasTable("EVENTS"));  // case-insensitive
  EXPECT_FALSE(db.HasTable("v"));
  EXPECT_TRUE(db.HasView("v"));
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"events", "runs"}));
  EXPECT_EQ(db.ViewNames(), std::vector<std::string>{"v"});
  auto schema = db.GetSchema("events");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 4u);
  EXPECT_EQ(schema->foreign_keys().size(), 1u);
  auto view_schema = db.GetSchema("v");
  ASSERT_TRUE(view_schema.ok());
  EXPECT_EQ(view_schema->columns()[0].type, DataType::kInt64);
  auto def = db.GetViewDefinition("v");
  ASSERT_TRUE(def.ok());
  EXPECT_NE(def->find("SELECT"), std::string::npos);
  EXPECT_EQ(db.TotalRows(), 9u);
}

TEST(EngineTest, ArithmeticSemantics) {
  Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t (a) VALUES (7)").ok());
  auto rs = db.Execute(
      "SELECT a + 1, a - 1, a * 2, a / 2, a % 2, -a, a / 0 FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  const auto& row = rs->rows[0];
  EXPECT_EQ(row[0].AsInt64Strict(), 8);
  EXPECT_EQ(row[1].AsInt64Strict(), 6);
  EXPECT_EQ(row[2].AsInt64Strict(), 14);
  EXPECT_DOUBLE_EQ(row[3].AsDoubleStrict(), 3.5);  // non-even int division
  EXPECT_EQ(row[4].AsInt64Strict(), 1);
  EXPECT_EQ(row[5].AsInt64Strict(), -7);
  EXPECT_TRUE(row[6].is_null());  // division by zero -> NULL
}

TEST(EngineTest, ConcatOperatorAndFunction) {
  Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a VARCHAR(8), b INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t (a, b) VALUES ('x', 5)").ok());
  auto rs = db.Execute("SELECT a || '-' || b, CONCAT(a, b, NULL) FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].AsStringStrict(), "x-5");
  EXPECT_EQ(rs->rows[0][1].AsStringStrict(), "x5");
}

TEST(EngineTest, ConcurrentReadsWhileWriting) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto rs = db.Execute("SELECT COUNT(*) FROM events");
        if (!rs.ok()) errors.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    auto result = db.Execute(
        "INSERT INTO events (event_id, run_id, energy, tag) VALUES (" +
        std::to_string(100 + i) + ", 1, 1.0, 'bulk')");
    if (!result.ok()) errors.fetch_add(1);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(db.RowCount("events"), 206u);
}

TEST(MapTableSourceTest, ServesNamedResultSets) {
  MapTableSource source;
  ResultSet rs;
  rs.columns = {"a"};
  rs.rows = {{Value(int64_t{1})}};
  source.Add("part", std::move(rs));
  EXPECT_TRUE(source.GetTable("PART").ok());
  EXPECT_FALSE(source.GetTable("other").ok());

  auto select = sql::ParseSelect("SELECT a FROM part",
                                 sql::Dialect::For(sql::Vendor::kSqlite));
  ASSERT_TRUE(select.ok());
  auto out = ExecuteSelect(**select, source);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 1u);
}

TEST(EngineTest, CaseExpressions) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute(
      "SELECT event_id, "
      "CASE WHEN energy > 50 THEN 'high' WHEN energy > 10 THEN 'mid' "
      "ELSE 'low' END AS band, "
      "CASE tag WHEN 'muon' THEN 1 ELSE 0 END AS is_muon "
      "FROM events ORDER BY event_id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 6u);
  EXPECT_EQ(rs->rows[0][1].AsStringStrict(), "mid");   // 45.5
  EXPECT_EQ(rs->rows[0][2].AsInt64Strict(), 1);        // muon
  EXPECT_EQ(rs->rows[2][1].AsStringStrict(), "high");  // 99.25
  EXPECT_EQ(rs->rows[3][2].AsInt64Strict(), 0);        // photon
  // NULL tag: simple CASE never matches NULL -> ELSE branch.
  EXPECT_EQ(rs->rows[5][2].AsInt64Strict(), 0);
}

TEST(EngineTest, CaseWithoutElseYieldsNull) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  auto rs = db.Execute(
      "SELECT CASE WHEN energy > 1000 THEN 1 END FROM events "
      "WHERE event_id = 10");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows[0][0].is_null());
}

TEST(EngineTest, CaseInsideAggregate) {
  auto db_ptr = MakeEventsDb();
  Database& db = *db_ptr;
  // Conditional counting, the classic CASE idiom.
  auto rs = db.Execute(
      "SELECT SUM(CASE WHEN tag = 'muon' THEN 1 ELSE 0 END) FROM events");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].AsInt64Strict(), 3);
}

TEST(EvalTest, LikeMatcher) {
  EXPECT_TRUE(LikeMatch("muon", "mu%"));
  EXPECT_TRUE(LikeMatch("muon", "%n"));
  EXPECT_TRUE(LikeMatch("muon", "m_o_"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("abc", "%%c"));
  EXPECT_FALSE(LikeMatch("abc", "_"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));  // % in text matches literally via %
}

}  // namespace
}  // namespace griddb::engine
