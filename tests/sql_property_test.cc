// Property suites over the SQL layer and supporting utilities:
//  - render→parse→render reaches a fixpoint in every dialect;
//  - the LIKE matcher agrees with a naive reference implementation on
//    randomized inputs;
//  - Value::Compare is a total preorder consistent with Hash;
//  - MD5 is invariant under arbitrary chunking of the input.
#include <gtest/gtest.h>

#include "griddb/engine/database.h"
#include "griddb/engine/eval.h"
#include "griddb/sql/parser.h"
#include "griddb/sql/render.h"
#include "griddb/util/md5.h"
#include "griddb/util/rng.h"

namespace griddb {
namespace {

using sql::Dialect;
using sql::Vendor;
using storage::Value;

// ---------- render/parse fixpoint, parameterized over dialects ----------

class DialectFixpoint : public ::testing::TestWithParam<Vendor> {};

TEST_P(DialectFixpoint, RenderParseRenderIsFixpoint) {
  const Dialect& dialect = Dialect::For(GetParam());
  // Corpus written in the permissive client dialect.
  const char* corpus[] = {
      "SELECT a FROM t",
      "SELECT DISTINCT a, b AS x FROM t u WHERE a > 1 AND b < 2",
      "SELECT * FROM t WHERE a IN (1, 2, 3) OR b NOT IN (4)",
      "SELECT t.a, u.b FROM t JOIN u ON t.id = u.id LEFT JOIN v "
      "ON u.id = v.id CROSS JOIN w",
      "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 1 "
      "ORDER BY n DESC, a",
      "SELECT a FROM t WHERE b BETWEEN 1 AND 10 AND c LIKE 'x%' "
      "AND d IS NOT NULL",
      "SELECT -a, a + b * c - d / e % f FROM t",
      "SELECT a || '-' || b FROM t WHERE NOT (a = 1)",
      "SELECT UPPER(a), SUBSTR(b, 1, 3), ROUND(c, 2) FROM t",
      "SELECT a FROM t ORDER BY 1 DESC LIMIT 10 OFFSET 5",
      "SELECT COUNT(DISTINCT a) FROM t WHERE 1 = 1",
      "SELECT CASE WHEN a > 1 THEN 'x' WHEN a > 0 THEN 'y' ELSE 'z' END "
      "FROM t",
      "SELECT CASE a WHEN 1 THEN b ELSE c END FROM t",
  };
  const Dialect& client = Dialect::For(Vendor::kSqlite);
  for (const char* query : corpus) {
    auto parsed = sql::ParseSelect(query, client);
    ASSERT_TRUE(parsed.ok()) << query << "\n" << parsed.status().ToString();
    std::string once = sql::RenderSelect(**parsed, dialect);
    auto reparsed = sql::ParseSelect(once, dialect);
    ASSERT_TRUE(reparsed.ok())
        << "dialect " << dialect.name() << " rejected its own rendering:\n"
        << once << "\n" << reparsed.status().ToString();
    std::string twice = sql::RenderSelect(**reparsed, dialect);
    EXPECT_EQ(once, twice) << "not a fixpoint in " << dialect.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllDialects, DialectFixpoint,
                         ::testing::Values(Vendor::kOracle, Vendor::kMySql,
                                           Vendor::kMsSql, Vendor::kSqlite),
                         [](const ::testing::TestParamInfo<Vendor>& info) {
                           return sql::VendorName(info.param);
                         });

// ---------- LIKE vs reference matcher ----------

// Exponential-time but obviously-correct reference.
bool LikeReference(std::string_view text, std::string_view pattern) {
  if (pattern.empty()) return text.empty();
  if (pattern[0] == '%') {
    for (size_t skip = 0; skip <= text.size(); ++skip) {
      if (LikeReference(text.substr(skip), pattern.substr(1))) return true;
    }
    return false;
  }
  if (text.empty()) return false;
  if (pattern[0] == '_' || pattern[0] == text[0]) {
    return LikeReference(text.substr(1), pattern.substr(1));
  }
  return false;
}

TEST(LikePropertyTest, AgreesWithReferenceOnRandomInputs) {
  Rng rng(99);
  const char alphabet[] = {'a', 'b', '%', '_'};
  for (int trial = 0; trial < 3000; ++trial) {
    std::string text, pattern;
    int text_len = static_cast<int>(rng.UniformInt(0, 8));
    int pattern_len = static_cast<int>(rng.UniformInt(0, 6));
    for (int i = 0; i < text_len; ++i) {
      text += alphabet[rng.UniformInt(0, 1)];  // text from {a,b}
    }
    for (int i = 0; i < pattern_len; ++i) {
      pattern += alphabet[rng.UniformInt(0, 3)];  // pattern may use %,_
    }
    EXPECT_EQ(engine::LikeMatch(text, pattern),
              LikeReference(text, pattern))
        << "text='" << text << "' pattern='" << pattern << "'";
  }
}

// ---------- Value ordering properties ----------

Value RandomValue(Rng& rng) {
  switch (rng.UniformInt(0, 4)) {
    case 0: return Value::Null();
    case 1: return Value(rng.UniformInt(-5, 5));
    case 2: return Value(rng.Uniform(-5.0, 5.0));
    case 3: return Value(rng.NextDouble() < 0.5);
    default: {
      std::string s;
      for (int i = 0; i < rng.UniformInt(0, 4); ++i) {
        s += static_cast<char>('a' + rng.UniformInt(0, 3));
      }
      return Value(s);
    }
  }
}

TEST(ValueOrderPropertyTest, TotalPreorder) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    Value a = RandomValue(rng);
    Value b = RandomValue(rng);
    Value c = RandomValue(rng);
    // Antisymmetry of the comparison sign.
    EXPECT_EQ(a.Compare(b) > 0, b.Compare(a) < 0);
    EXPECT_EQ(a.Compare(b) == 0, b.Compare(a) == 0);
    // Reflexivity.
    EXPECT_EQ(a.Compare(a), 0);
    // Transitivity (checked on the <= relation).
    if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
      EXPECT_LE(a.Compare(c), 0)
          << a.ToString() << " " << b.ToString() << " " << c.ToString();
    }
    // Hash consistency with equality.
    if (a.Compare(b) == 0) {
      EXPECT_EQ(a.Hash(), b.Hash())
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(ValueSqlLiteralPropertyTest, LiteralRoundTripsThroughParser) {
  Rng rng(21);
  const Dialect& dialect = Dialect::For(Vendor::kSqlite);
  for (int trial = 0; trial < 500; ++trial) {
    Value v = RandomValue(rng);
    std::string literal = v.ToSqlLiteral();
    auto expr = sql::ParseExpression(literal, dialect);
    ASSERT_TRUE(expr.ok()) << literal;
    // Negative numbers parse as unary minus over a literal; evaluate.
    static const engine::Scope kEmpty;
    static const storage::Row kRow;
    auto value = engine::Eval(**expr, kEmpty, kRow);
    ASSERT_TRUE(value.ok()) << literal;
    EXPECT_EQ(value->is_null(), v.is_null()) << literal;
    if (!v.is_null()) {
      EXPECT_EQ(value->Compare(v), 0)
          << literal << " -> " << value->ToString();
    }
  }
}

// ---------- MD5 chunking invariance ----------

TEST(Md5PropertyTest, ChunkingInvariance) {
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    size_t length = static_cast<size_t>(rng.UniformInt(0, 512));
    std::string data;
    data.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      data += static_cast<char>(rng.UniformInt(0, 255));
    }
    std::string expected = Md5Hex(data);
    Md5 chunked;
    size_t position = 0;
    while (position < data.size()) {
      size_t take = std::min<size_t>(
          data.size() - position,
          static_cast<size_t>(rng.UniformInt(1, 96)));
      chunked.Update(data.data() + position, take);
      position += take;
    }
    EXPECT_EQ(chunked.HexDigest(), expected) << "length " << length;
  }
}

// ---------- engine determinism under dialect round-trip ----------

class CrossDialectExecution : public ::testing::TestWithParam<Vendor> {};

TEST_P(CrossDialectExecution, RoundTrippedQueryGivesSameResult) {
  // A query executed directly must equal the same query after being
  // rendered into a dialect and re-parsed — the transformation the
  // federated driver applies to every sub-query.
  engine::Database db("d", GetParam());
  const Dialect& dialect = db.dialect();
  storage::TableSchema schema(
      "t", {{"a", storage::DataType::kInt64, true, true},
            {"b", storage::DataType::kDouble, false, false},
            {"c", storage::DataType::kString, false, false}});
  ASSERT_TRUE(db.CreateTable(schema).ok());
  Rng rng(31);
  std::vector<storage::Row> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back({Value(int64_t{i}), Value(rng.Gaussian()),
                    Value(std::string(1, static_cast<char>('a' + i % 5)))});
  }
  ASSERT_TRUE(db.InsertRows("t", std::move(rows)).ok());

  const char* corpus[] = {
      "SELECT a, b FROM t WHERE b > 0",
      "SELECT c, COUNT(*) AS n FROM t GROUP BY c ORDER BY n DESC, c",
      "SELECT a FROM t WHERE c IN ('a', 'b') ORDER BY a",
  };
  const Dialect& client = Dialect::For(Vendor::kSqlite);
  for (const char* query : corpus) {
    auto stmt = sql::ParseSelect(query, client);
    ASSERT_TRUE(stmt.ok());
    auto direct = db.ExecuteSelect(**stmt);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();

    std::string rendered = sql::RenderSelect(**stmt, dialect);
    auto round_tripped = db.Execute(rendered);
    ASSERT_TRUE(round_tripped.ok())
        << rendered << "\n" << round_tripped.status().ToString();
    ASSERT_EQ(direct->num_rows(), round_tripped->num_rows()) << rendered;
    for (size_t r = 0; r < direct->num_rows(); ++r) {
      for (size_t col = 0; col < direct->num_columns(); ++col) {
        EXPECT_EQ(direct->rows[r][col].Compare(round_tripped->rows[r][col]),
                  0)
            << rendered;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDialects, CrossDialectExecution,
                         ::testing::Values(Vendor::kOracle, Vendor::kMySql,
                                           Vendor::kMsSql, Vendor::kSqlite),
                         [](const ::testing::TestParamInfo<Vendor>& info) {
                           return sql::VendorName(info.param);
                         });

}  // namespace
}  // namespace griddb
