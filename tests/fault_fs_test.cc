// Storage fault injection (storage/fault_fs) and the durability layers'
// behaviour under it. The first half pins the injector's own contract —
// torn writes persist a prefix and fail, lying fsyncs freeze the durable
// mark that CrashDropUnsynced() later truncates to, ENOSPC windows are
// op-indexed and deterministic, bit flips damage the read not the disk,
// and one seed replays one fate sequence. The second half drives the
// real journal and chunked-stage writers through the injector and checks
// they repair every injected artefact: a torn journal append self-heals
// so the retried record is visible to replay, and a torn stage tail is
// reported with the exact intact length appends can resume from.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "griddb/storage/fault_fs.h"
#include "griddb/storage/stage_file.h"
#include "griddb/util/fs.h"
#include "griddb/util/journal.h"
#include "griddb/util/md5.h"

namespace griddb::storage {
namespace {

class FaultFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("griddb_faultfs_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    fault_ = std::make_unique<FaultFs>(2026);
    prev_ = util::SetFileSystem(fault_.get());
  }

  void TearDown() override {
    util::SetFileSystem(prev_);
    fault_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Raw on-disk bytes, read behind the injector's back.
  std::string DiskBytes(const std::string& path) const {
    auto content = util::FileSystem().ReadFile(path);
    return content.ok() ? *content : std::string("<unreadable>");
  }

  std::filesystem::path dir_;
  std::unique_ptr<FaultFs> fault_;
  util::FileSystem* prev_ = nullptr;
};

// ---------- the injector's own contract ----------

TEST_F(FaultFsTest, PassThroughWhenNoFaultsConfigured) {
  const std::string path = Path("plain");
  ASSERT_TRUE(util::Fs().Append(path, "hello ").ok());
  ASSERT_TRUE(util::Fs().Append(path, "world").ok());
  ASSERT_TRUE(util::Fs().Fsync(path).ok());
  auto content = util::Fs().ReadFile(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello world");
  EXPECT_EQ(fault_->counters().total(), 0u);
  EXPECT_GT(fault_->ops(), 0u);  // operations counted even when honest
}

TEST_F(FaultFsTest, ArmedTornWritePersistsPrefixAndFails) {
  const std::string path = Path("torn");
  fault_->ArmTornWrite(4);
  Status st = util::Fs().Append(path, "0123456789");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(DiskBytes(path), "0123");  // the prefix landed, the tail did not
  EXPECT_EQ(fault_->counters().torn_writes, 1u);
  // One-shot: the retry goes through whole.
  ASSERT_TRUE(util::Fs().Append(path, "retry").ok());
  EXPECT_EQ(DiskBytes(path), "0123retry");
}

TEST_F(FaultFsTest, ArmedEnospcFailsWritesWithoutTouchingDisk) {
  const std::string path = Path("full");
  ASSERT_TRUE(util::Fs().Append(path, "base").ok());
  fault_->ArmEnospc(2);
  for (int attempt = 0; attempt < 2; ++attempt) {
    Status st = util::Fs().Append(path, "more");
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIoError);
    EXPECT_EQ(DiskBytes(path), "base");  // ENOSPC writes nothing
  }
  // Space is back: the next attempt succeeds.
  ASSERT_TRUE(util::Fs().Append(path, "more").ok());
  EXPECT_EQ(DiskBytes(path), "basemore");
  EXPECT_EQ(fault_->counters().enospc, 2u);
}

TEST_F(FaultFsTest, EnospcWindowIsOpIndexedAndEscapable) {
  const std::string path = Path("window");
  // Two write ops' worth of window, starting one op from now: the next
  // append is admitted, the two after it fail, the one after escapes.
  fault_->AddEnospcWindow(fault_->ops() + 1, 2);
  EXPECT_TRUE(util::Fs().Append(path, "a").ok());
  EXPECT_EQ(util::Fs().Append(path, "b").code(), StatusCode::kIoError);
  EXPECT_EQ(util::Fs().Append(path, "c").code(), StatusCode::kIoError);
  EXPECT_TRUE(util::Fs().Append(path, "d").ok());
  EXPECT_EQ(DiskBytes(path), "ad");
  EXPECT_EQ(fault_->counters().enospc, 2u);
}

TEST_F(FaultFsTest, LyingFsyncFreezesDurableMarkUntilCrash) {
  const std::string path = Path("lying");
  ASSERT_TRUE(util::Fs().Append(path, "durable").ok());
  ASSERT_TRUE(util::Fs().Fsync(path).ok());  // honest: 7 bytes safe
  ASSERT_TRUE(util::Fs().Append(path, " volatile").ok());
  fault_->ArmLyingFsync();
  ASSERT_TRUE(util::Fs().Fsync(path).ok());  // lies: returns OK
  EXPECT_EQ(fault_->counters().lying_fsyncs, 1u);
  EXPECT_EQ(DiskBytes(path), "durable volatile");  // still whole pre-crash

  fault_->CrashDropUnsynced();  // the power cut calls the bluff
  EXPECT_EQ(DiskBytes(path), "durable");
  EXPECT_EQ(fault_->counters().crash_dropped_files, 1u);
}

TEST_F(FaultFsTest, HonestFsyncMakesBytesSurviveCrash) {
  const std::string path = Path("honest");
  ASSERT_TRUE(util::Fs().Append(path, "kept").ok());
  ASSERT_TRUE(util::Fs().Fsync(path).ok());
  fault_->CrashDropUnsynced();
  EXPECT_EQ(DiskBytes(path), "kept");
  EXPECT_EQ(fault_->counters().crash_dropped_files, 0u);
}

TEST_F(FaultFsTest, RenameCarriesDurableMarkToTarget) {
  const std::string from = Path("from");
  const std::string to = Path("to");
  // Never fsynced: the file's durable mark stays at its creation size 0.
  ASSERT_TRUE(util::Fs().Append(from, "unsynced").ok());
  ASSERT_TRUE(util::Fs().Rename(from, to).ok());
  fault_->CrashDropUnsynced();
  // The rename moved the name, not the page cache: the bytes die with it.
  EXPECT_EQ(DiskBytes(to), "");
}

TEST_F(FaultFsTest, BitFlipCorruptsTheReadNotTheDisk) {
  const std::string rot = Path("rot");
  const std::string clean = Path("clean");
  const std::string payload = "stable bytes on disk";
  ASSERT_TRUE(util::Fs().Append(rot, payload).ok());
  ASSERT_TRUE(util::Fs().Append(clean, payload).ok());

  FsFaultSpec spec;
  spec.bit_flip_probability = 1.0;
  fault_->SetSpec(spec);
  fault_->SetBitFlipFilter(
      [rot](const std::string& path) { return path == rot; });

  auto flipped = util::Fs().ReadFile(rot);
  ASSERT_TRUE(flipped.ok());
  ASSERT_EQ(flipped->size(), payload.size());
  size_t differing = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    if ((*flipped)[i] != payload[i]) ++differing;
  }
  EXPECT_EQ(differing, 1u);  // exactly one byte rotted
  EXPECT_EQ(fault_->counters().bit_flips, 1u);

  // The filter scopes the rot; the disk never had it.
  auto spared = util::Fs().ReadFile(clean);
  ASSERT_TRUE(spared.ok());
  EXPECT_EQ(*spared, payload);
  fault_->Quiesce();
  auto after = util::Fs().ReadFile(rot);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, payload);
}

TEST_F(FaultFsTest, UnlinkAndRenameFailuresAreInjected) {
  const std::string path = Path("sticky");
  ASSERT_TRUE(util::Fs().Append(path, "x").ok());
  FsFaultSpec spec;
  spec.unlink_fail_probability = 1.0;
  spec.rename_fail_probability = 1.0;
  fault_->SetSpec(spec);
  EXPECT_EQ(util::Fs().Unlink(path).code(), StatusCode::kIoError);
  EXPECT_EQ(DiskBytes(path), "x");  // the failed unlink removed nothing
  EXPECT_EQ(util::Fs().Rename(path, Path("elsewhere")).code(),
            StatusCode::kIoError);
  EXPECT_EQ(DiskBytes(path), "x");
  EXPECT_EQ(fault_->counters().unlink_fails, 1u);
  EXPECT_EQ(fault_->counters().rename_fails, 1u);
  fault_->Quiesce();
  EXPECT_TRUE(util::Fs().Unlink(path).ok());
}

TEST_F(FaultFsTest, PathFilterScopesInjection) {
  fault_->SetPathFilter([](const std::string& path) {
    return path.find("victim") != std::string::npos;
  });
  fault_->ArmEnospc(1);
  // The bystander is outside the filter: its write is admitted and does
  // NOT consume the armed fault.
  EXPECT_TRUE(util::Fs().Append(Path("bystander"), "ok").ok());
  EXPECT_EQ(util::Fs().Append(Path("victim"), "no").code(),
            StatusCode::kIoError);
}

TEST_F(FaultFsTest, SameSeedReplaysTheSameFates) {
  auto run = [this](const std::string& tag) {
    FaultFs fs(777);
    FsFaultSpec spec;
    spec.torn_write_probability = 0.5;
    fs.SetSpec(spec);
    std::vector<bool> fates;
    const std::string path = Path("replay_" + tag);
    for (int i = 0; i < 64; ++i) {
      fates.push_back(fs.Append(path, "record " + std::to_string(i)).ok());
    }
    return std::make_pair(fates, DiskBytes(path));
  };
  auto [fates_a, bytes_a] = run("a");
  auto [fates_b, bytes_b] = run("b");
  EXPECT_EQ(fates_a, fates_b);
  EXPECT_EQ(bytes_a, bytes_b);
  // Sanity: the 50% schedule actually injected both outcomes.
  EXPECT_NE(std::count(fates_a.begin(), fates_a.end(), true), 0);
  EXPECT_NE(std::count(fates_a.begin(), fates_a.end(), false), 0);
}

// ---------- the journal under injected faults ----------

TEST_F(FaultFsTest, JournalTornAppendSelfRepairsSoRetryIsReplayable) {
  // The regression: a torn append leaves partial frame bytes, appends
  // are O_APPEND, so a naive retry lands the acknowledged record beyond
  // the tear — where ReadJournal (which stops at the first undecodable
  // frame) can never see it. Append's failure path must repair the tear
  // in place.
  util::JournalWriter journal(Path("j"));
  ASSERT_TRUE(journal.Append("first").ok());
  fault_->ArmTornWrite(7);
  ASSERT_EQ(journal.Append("second").code(), StatusCode::kIoError);
  ASSERT_TRUE(journal.Append("second").ok());  // the caller's retry

  auto replay = util::ReadJournal(Path("j"));
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->truncated);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0], "first");
  EXPECT_EQ(replay->records[1], "second");
}

TEST_F(FaultFsTest, JournalEnospcAppendWritesNothingAndRetryLands) {
  util::JournalWriter journal(Path("j"));
  ASSERT_TRUE(journal.Append("first").ok());
  fault_->ArmEnospc(1);
  ASSERT_EQ(journal.Append("second").code(), StatusCode::kIoError);
  ASSERT_TRUE(journal.Append("second").ok());
  auto replay = util::ReadJournal(Path("j"));
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->truncated);
  ASSERT_EQ(replay->records.size(), 2u);
}

TEST_F(FaultFsTest, JournalCrashDroppingUnsyncedTailReplaysIntactPrefix) {
  util::JournalWriter journal(Path("j"));
  ASSERT_TRUE(journal.Append("durable").ok());
  fault_->ArmLyingFsync();
  ASSERT_TRUE(journal.Append("claimed but volatile").ok());
  fault_->CrashDropUnsynced();
  auto replay = util::ReadJournal(Path("j"));
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0], "durable");
  // The drop cut at a frame boundary (the lying fsync covered the whole
  // append), so nothing is torn — just honestly missing.
  EXPECT_FALSE(replay->truncated);
}

// ---------- chunked stage files under injected faults ----------

TableSchema StageSchema() {
  return TableSchema("t", {{"id", DataType::kInt64, true, true},
                           {"v", DataType::kString, false, false}});
}

StageChunk MakeChunk(size_t id, const std::string& encoded, size_t rows) {
  StageChunk chunk;
  chunk.id = id;
  chunk.rows = rows;
  chunk.md5 = Md5Hex(encoded);
  return chunk;
}

std::string EncodedRows(size_t chunk, size_t rows) {
  std::vector<Row> block;
  for (size_t r = 0; r < rows; ++r) {
    block.push_back({Value(static_cast<int64_t>(chunk * 100 + r)),
                     Value("row" + std::to_string(r))});
  }
  return EncodeRowBlock(block);
}

TEST_F(FaultFsTest, StageTornTailIsReportedWithIntactLengthAndRepairable) {
  const std::string path = Path("stage");
  const std::string rows0 = EncodedRows(0, 3);
  const std::string rows1 = EncodedRows(1, 3);
  ASSERT_TRUE(
      AppendStageChunk(path, StageSchema(), MakeChunk(0, rows0, 3), rows0)
          .ok());
  fault_->ArmTornWrite(9);  // chunk 1's frame tears mid-header
  ASSERT_EQ(
      AppendStageChunk(path, StageSchema(), MakeChunk(1, rows1, 3), rows1)
          .code(),
      StatusCode::kIoError);

  std::vector<size_t> corrupt;
  StageDamage damage;
  auto staged = ReadChunkedStageFileTolerant(path, &corrupt, &damage);
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  EXPECT_TRUE(damage.torn);
  ASSERT_EQ(staged->chunks.size(), 1u);
  EXPECT_EQ(staged->chunks[0].id, 0u);
  EXPECT_TRUE(corrupt.empty());

  // The repair protocol: truncate to the intact prefix, then append on.
  ASSERT_TRUE(util::Fs().Truncate(path, damage.intact_bytes).ok());
  ASSERT_TRUE(
      AppendStageChunk(path, StageSchema(), MakeChunk(1, rows1, 3), rows1)
          .ok());
  auto whole = ReadChunkedStageFile(path);  // strict reader: no damage left
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  ASSERT_EQ(whole->chunks.size(), 2u);
  EXPECT_EQ(whole->rows[1].size(), 3u);
}

TEST_F(FaultFsTest, StageHeaderTearWipesToEmptySoAppendRewritesSchema) {
  // A fresh stage file's first append carries magic + schema header +
  // frame in one write. Tearing inside the header must report intact=0:
  // repairing to a half-written schema would let later bare frames land
  // under a wrong column count.
  const std::string path = Path("stage");
  const std::string rows0 = EncodedRows(0, 2);
  fault_->ArmTornWrite(11);
  ASSERT_EQ(
      AppendStageChunk(path, StageSchema(), MakeChunk(0, rows0, 2), rows0)
          .code(),
      StatusCode::kIoError);

  std::vector<size_t> corrupt;
  StageDamage damage;
  auto staged = ReadChunkedStageFileTolerant(path, &corrupt, &damage);
  ASSERT_TRUE(staged.ok());
  EXPECT_TRUE(damage.torn);
  EXPECT_EQ(damage.intact_bytes, 0u);
  EXPECT_TRUE(staged->chunks.empty());

  ASSERT_TRUE(util::Fs().Truncate(path, 0).ok());
  // An empty file counts as fresh: the append writes the header again.
  ASSERT_TRUE(
      AppendStageChunk(path, StageSchema(), MakeChunk(0, rows0, 2), rows0)
          .ok());
  auto whole = ReadChunkedStageFile(path);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  ASSERT_EQ(whole->chunks.size(), 1u);
  EXPECT_EQ(whole->schema.columns().size(), 2u);
}

TEST_F(FaultFsTest, StageBitRotIsCaughtByDigestAndQuarantinedById) {
  const std::string path = Path("stage");
  for (size_t c = 0; c < 3; ++c) {
    const std::string rows = EncodedRows(c, 4);
    ASSERT_TRUE(
        AppendStageChunk(path, StageSchema(), MakeChunk(c, rows, 4), rows)
            .ok());
  }
  FsFaultSpec spec;
  spec.bit_flip_probability = 1.0;
  fault_->SetSpec(spec);

  std::vector<size_t> corrupt;
  StageDamage damage;
  auto staged = ReadChunkedStageFileTolerant(path, &corrupt, &damage);
  fault_->SetSpec(FsFaultSpec{});
  // The flip landed somewhere: either inside a chunk's digested row block
  // (that id is quarantined) or in framing/header bytes (reported torn).
  // Nothing may be silently served wrong.
  ASSERT_EQ(fault_->counters().bit_flips, 1u);
  if (staged.ok() && corrupt.empty() && !damage.torn &&
      staged->chunks.size() == 3) {
    // The only way a flipped read decodes with every digest green is a
    // flip in the undigested schema header — which then must show up as
    // a different table or column name, never as silently identical.
    auto clean_now = ReadChunkedStageFile(path);
    ASSERT_TRUE(clean_now.ok());
    bool header_differs = staged->schema.name() != clean_now->schema.name();
    for (size_t c = 0; c < staged->schema.columns().size(); ++c) {
      if (staged->schema.columns()[c].name !=
          clean_now->schema.columns()[c].name) {
        header_differs = true;
      }
    }
    EXPECT_TRUE(header_differs) << "rotted read decoded as fully intact";
  }
  for (size_t id : corrupt) EXPECT_LT(id, 3u);
  // The disk is undamaged: a clean read restores every chunk.
  std::vector<size_t> corrupt_after;
  auto clean = ReadChunkedStageFileTolerant(path, &corrupt_after, nullptr);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(corrupt_after.empty());
  ASSERT_EQ(clean->chunks.size(), 3u);
}

}  // namespace
}  // namespace griddb::storage
