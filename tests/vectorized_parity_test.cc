// Byte-identical parity between the vectorized executor and the retained
// row-at-a-time reference path (DESIGN.md §15).
//
// The contract under test: for every fault-free input, ExecuteSelect
// (vectorized, the default) and ExecuteSelectReferenceRows return
// ResultSets whose columns and cells match exactly — same types, same
// bit patterns for doubles, same row order. When the reference path
// errors, the vectorized path must also error (messages may differ: the
// vectorized path evaluates subexpressions column-major, so with two
// independently failing subexpressions it can surface the other one).
//
// Coverage comes from a seeded random query generator over tables with
// NULLs, mixed-type columns and duplicate join keys, plus deterministic
// edge cases around batch boundaries, empty inputs and HAVING-dropped
// groups, and a threaded leg for the TSan build.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "griddb/engine/select_executor.h"
#include "griddb/sql/parser.h"
#include "griddb/util/rng.h"

namespace griddb::engine {
namespace {

using storage::ResultSet;
using storage::Row;
using storage::Value;

bool ValueExactEq(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  if (a.is_null()) return true;
  switch (a.type()) {
    case storage::DataType::kInt64:
      return a.AsInt64Strict() == b.AsInt64Strict();
    case storage::DataType::kDouble: {
      // Bit-pattern equality: NaN == NaN, but 0.0 != -0.0. This is what
      // "byte-identical on the wire" means for doubles.
      uint64_t ba, bb;
      double da = a.AsDoubleStrict(), db = b.AsDoubleStrict();
      std::memcpy(&ba, &da, sizeof(ba));
      std::memcpy(&bb, &db, sizeof(bb));
      return ba == bb;
    }
    case storage::DataType::kBool:
      return a.AsBoolStrict() == b.AsBoolStrict();
    case storage::DataType::kString:
      return a.AsStringStrict() == b.AsStringStrict();
    default:
      return true;
  }
}

::testing::AssertionResult ResultsIdentical(const ResultSet& ref,
                                            const ResultSet& vec) {
  if (ref.columns != vec.columns) {
    return ::testing::AssertionFailure() << "column names differ";
  }
  if (ref.rows.size() != vec.rows.size()) {
    return ::testing::AssertionFailure()
           << "row count " << ref.rows.size() << " vs " << vec.rows.size();
  }
  for (size_t r = 0; r < ref.rows.size(); ++r) {
    if (ref.rows[r].size() != vec.rows[r].size()) {
      return ::testing::AssertionFailure() << "row " << r << " width differs";
    }
    for (size_t c = 0; c < ref.rows[r].size(); ++c) {
      if (!ValueExactEq(ref.rows[r][c], vec.rows[r][c])) {
        return ::testing::AssertionFailure()
               << "cell (" << r << "," << c << "): "
               << ref.rows[r][c].ToString() << " vs "
               << vec.rows[r][c].ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Runs one SQL text against both executors and checks the contract.
/// Returns true when both succeeded (useful for counting coverage).
bool CheckParity(const std::string& sql_text, const TableSource& source,
                 size_t batch_rows = 1024) {
  auto dialect = sql::Dialect::For(sql::Vendor::kMySql);
  auto stmt = sql::ParseSelect(sql_text, dialect);
  if (!stmt.ok()) return false;  // generator produced unparseable SQL

  Result<ResultSet> ref = ExecuteSelectReferenceRows(**stmt, source);
  ExecOptions opts;
  opts.batch_rows = batch_rows;
  Result<ResultSet> vec = ExecuteSelect(**stmt, source, opts);

  if (ref.ok() != vec.ok()) {
    ADD_FAILURE() << "divergence on: " << sql_text << "\n  reference: "
                  << (ref.ok() ? "ok" : ref.status().ToString())
                  << "\n  vectorized: "
                  << (vec.ok() ? "ok" : vec.status().ToString());
    return false;
  }
  if (!ref.ok()) return false;  // both erroring is allowed
  EXPECT_TRUE(ResultsIdentical(*ref, *vec)) << "query: " << sql_text
                                            << " batch_rows=" << batch_rows;
  return true;
}

// ---------------------------------------------------------------------------
// Fixture data

ResultSet EventsTable(size_t n, Rng& rng) {
  ResultSet rs;
  rs.columns = {"id", "run", "energy", "tag", "flag"};
  rs.rows.reserve(n);
  const char* tags[] = {"muon", "electron", "photon", "tau"};
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.push_back(Value(static_cast<int64_t>(i)));
    row.push_back(rng.NextDouble() < 0.1
                      ? Value::Null()
                      : Value(rng.UniformInt(0, 9)));
    row.push_back(rng.NextDouble() < 0.1 ? Value::Null()
                                         : Value(rng.Uniform(0.0, 100.0)));
    row.push_back(rng.NextDouble() < 0.15
                      ? Value::Null()
                      : Value(std::string(tags[rng.UniformInt(0, 3)])));
    row.push_back(rng.NextDouble() < 0.2 ? Value::Null()
                                         : Value(rng.NextDouble() < 0.5));
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

ResultSet RunsTable(size_t n, Rng& rng) {
  ResultSet rs;
  rs.columns = {"run", "detector", "weight"};
  rs.rows.reserve(n);
  const char* dets[] = {"ECAL", "HCAL", "TRACKER"};
  for (size_t i = 0; i < n; ++i) {
    Row row;
    // Duplicate keys on purpose: several rows share a run id, so joins
    // exercise the multi-match emit order.
    row.push_back(rng.NextDouble() < 0.1 ? Value::Null()
                                         : Value(rng.UniformInt(0, 9)));
    row.push_back(Value(std::string(dets[rng.UniformInt(0, 2)])));
    // Mixed-type column: int64 and double cells interleave, forcing the
    // boxed (Rep::kValue) representation.
    if (rng.NextDouble() < 0.5) {
      row.push_back(Value(rng.UniformInt(-5, 5)));
    } else {
      row.push_back(Value(rng.Uniform(-5.0, 5.0)));
    }
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

MapTableSource MakeSource(size_t events, size_t runs, uint64_t seed) {
  Rng rng(seed);
  MapTableSource source;
  source.Add("events", EventsTable(events, rng));
  source.Add("runs", RunsTable(runs, rng));
  return source;
}

// ---------------------------------------------------------------------------
// Random query generator

class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  std::string Next() {
    joined_ = rng_.NextDouble() < 0.5;
    grouped_ = rng_.NextDouble() < 0.4;
    std::string sql = "SELECT ";
    if (!grouped_ && rng_.NextDouble() < 0.2) sql += "DISTINCT ";
    size_t items = 1 + rng_.UniformInt(0, 2);
    for (size_t i = 0; i < items; ++i) {
      if (i) sql += ", ";
      if (grouped_) {
        sql += Aggregate();
      } else if (rng_.NextDouble() < 0.1) {
        sql += "*";
      } else {
        sql += Expr(2);
        if (rng_.NextDouble() < 0.3) {
          sql += " AS a" + std::to_string(i);
        }
      }
    }
    sql += " FROM events";
    if (joined_) {
      double kind = rng_.NextDouble();
      if (kind < 0.45) {
        sql += " JOIN runs ON events.run = runs.run";
      } else if (kind < 0.8) {
        sql += " LEFT JOIN runs ON events.run = runs.run";
      } else {
        // Non-equi ON: exercises the vectorized nested-loop join.
        sql += " JOIN runs ON events.run > runs.run";
      }
    }
    if (rng_.NextDouble() < 0.6) sql += " WHERE " + Expr(2);
    if (grouped_ && rng_.NextDouble() < 0.8) {
      sql += " GROUP BY " + Expr(1);
      if (rng_.NextDouble() < 0.4) sql += " HAVING " + Aggregate() + " > 1";
    }
    if (rng_.NextDouble() < 0.5) {
      sql += " ORDER BY ";
      if (!grouped_ && rng_.NextDouble() < 0.3) {
        sql += std::to_string(1 + rng_.UniformInt(0, items - 1));
      } else if (grouped_) {
        sql += Aggregate();
      } else {
        sql += Expr(1);
      }
      if (rng_.NextDouble() < 0.5) sql += " DESC";
    }
    if (rng_.NextDouble() < 0.4) {
      sql += " LIMIT " + std::to_string(rng_.UniformInt(0, 40));
      if (rng_.NextDouble() < 0.5) {
        sql += " OFFSET " + std::to_string(rng_.UniformInt(0, 30));
      }
    }
    return sql;
  }

 private:
  std::string Column() {
    static const char* events_cols[] = {"id", "energy", "tag", "flag",
                                        "events.run"};
    static const char* runs_cols[] = {"runs.run", "detector", "weight"};
    if (joined_ && rng_.NextDouble() < 0.4) {
      return runs_cols[rng_.UniformInt(0, 2)];
    }
    return events_cols[rng_.UniformInt(0, 4)];
  }

  std::string Literal() {
    double pick = rng_.NextDouble();
    if (pick < 0.4) return std::to_string(rng_.UniformInt(-5, 20));
    if (pick < 0.6) return std::to_string(rng_.UniformInt(1, 50)) + ".5";
    if (pick < 0.8) return "'muon'";
    return "NULL";
  }

  std::string Aggregate() {
    static const char* fns[] = {"COUNT", "SUM", "AVG", "MIN", "MAX"};
    const char* fn = fns[rng_.UniformInt(0, 4)];
    if (std::string(fn) == "COUNT" && rng_.NextDouble() < 0.4) {
      return "COUNT(*)";
    }
    std::string arg = rng_.NextDouble() < 0.7 ? Column() : Expr(1);
    std::string distinct = rng_.NextDouble() < 0.2 ? "DISTINCT " : "";
    return std::string(fn) + "(" + distinct + arg + ")";
  }

  std::string Expr(int depth) {
    if (depth <= 0 || rng_.NextDouble() < 0.3) {
      return rng_.NextDouble() < 0.7 ? Column() : Literal();
    }
    double pick = rng_.NextDouble();
    if (pick < 0.35) {
      static const char* ops[] = {"+", "-", "*", "/", "%"};
      return "(" + Expr(depth - 1) + " " + ops[rng_.UniformInt(0, 4)] + " " +
             Expr(depth - 1) + ")";
    }
    if (pick < 0.6) {
      static const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
      return "(" + Expr(depth - 1) + " " + ops[rng_.UniformInt(0, 5)] + " " +
             Expr(depth - 1) + ")";
    }
    if (pick < 0.72) {
      const char* op = rng_.NextDouble() < 0.5 ? " AND " : " OR ";
      return "(" + Expr(depth - 1) + op + Expr(depth - 1) + ")";
    }
    if (pick < 0.8) {
      return "(" + Column() + (rng_.NextDouble() < 0.5 ? " IS NULL"
                                                       : " IS NOT NULL") +
             ")";
    }
    if (pick < 0.86) {
      return "(" + Column() + " IN (" + Literal() + ", " + Literal() + "))";
    }
    if (pick < 0.92) {
      return "(" + Column() + " BETWEEN " + Literal() + " AND " + Literal() +
             ")";
    }
    if (pick < 0.96) {
      return "(CASE WHEN " + Expr(depth - 1) + " THEN " + Literal() +
             " ELSE " + Expr(depth - 1) + " END)";
    }
    static const char* fns[] = {"ABS", "LENGTH", "UPPER"};
    return fns[rng_.UniformInt(0, 2)] + ("(" + Expr(depth - 1) + ")");
  }

  Rng rng_;
  bool joined_ = false;
  bool grouped_ = false;
};

// ---------------------------------------------------------------------------
// Randomized sweep

TEST(VectorizedParity, RandomizedQueries) {
  MapTableSource source = MakeSource(197, 41, 0xfeed);
  QueryGen gen(0xbeef);
  size_t both_ok = 0;
  for (int i = 0; i < 400; ++i) {
    if (CheckParity(gen.Next(), source)) ++both_ok;
  }
  // The generator leans on valid shapes; most queries must succeed for
  // the sweep to mean anything.
  EXPECT_GT(both_ok, 200u);
}

TEST(VectorizedParity, RandomizedSmallBatches) {
  // Tiny batch sizes stress chunk-boundary handling in every operator.
  MapTableSource source = MakeSource(83, 17, 0xabba);
  for (size_t batch_rows : {size_t{1}, size_t{3}, size_t{7}}) {
    QueryGen gen(0x1234 + batch_rows);
    for (int i = 0; i < 60; ++i) {
      CheckParity(gen.Next(), source, batch_rows);
    }
  }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases

TEST(VectorizedParity, BatchBoundaryRowCounts) {
  for (size_t n : {size_t{1023}, size_t{1024}, size_t{1025}}) {
    MapTableSource source = MakeSource(n, 11, n);
    CheckParity("SELECT id, energy FROM events WHERE energy > 50", source);
    CheckParity("SELECT COUNT(*), SUM(energy) FROM events", source);
    CheckParity("SELECT * FROM events ORDER BY energy DESC LIMIT 5", source);
    CheckParity("SELECT run, COUNT(*) FROM events GROUP BY run", source);
  }
}

TEST(VectorizedParity, EmptyTable) {
  MapTableSource source;
  ResultSet empty;
  empty.columns = {"id", "x"};
  source.Add("events", empty);
  CheckParity("SELECT id, x FROM events", source);
  CheckParity("SELECT COUNT(*), SUM(x), MIN(x) FROM events", source);
  CheckParity("SELECT id FROM events WHERE x > 3 ORDER BY id LIMIT 4", source);
  CheckParity("SELECT x, COUNT(*) FROM events GROUP BY x HAVING COUNT(*) > 0",
              source);
  // Unknown column over an empty table: the row path never evaluates the
  // projection, so this must NOT error in either path.
  CheckParity("SELECT nope FROM events", source);
}

TEST(VectorizedParity, AllNullColumn) {
  MapTableSource source;
  ResultSet rs;
  rs.columns = {"id", "v"};
  for (int i = 0; i < 10; ++i) {
    rs.rows.push_back({Value(static_cast<int64_t>(i)), Value::Null()});
  }
  source.Add("events", rs);
  CheckParity("SELECT v, v + 1, v IS NULL FROM events", source);
  CheckParity("SELECT COUNT(v), SUM(v), AVG(v) FROM events", source);
  CheckParity("SELECT id FROM events WHERE v > 0", source);
  CheckParity("SELECT id FROM events ORDER BY v, id", source);
}

TEST(VectorizedParity, LimitOffsetEdges) {
  MapTableSource source = MakeSource(50, 7, 0x50);
  CheckParity("SELECT id FROM events LIMIT 0", source);
  CheckParity("SELECT id FROM events LIMIT 5 OFFSET 100", source);
  CheckParity("SELECT id FROM events ORDER BY energy LIMIT 0", source);
  CheckParity("SELECT id FROM events ORDER BY energy LIMIT 3 OFFSET 49",
              source);
  CheckParity("SELECT DISTINCT run FROM events ORDER BY run LIMIT 4", source);
}

TEST(VectorizedParity, MixedTypeColumn) {
  MapTableSource source = MakeSource(60, 30, 0x77);
  // runs.weight interleaves int64 and double cells (boxed representation).
  CheckParity("SELECT weight, weight * 2, weight + 0.5 FROM runs", source);
  CheckParity("SELECT SUM(weight), MIN(weight), MAX(weight) FROM runs",
              source);
  CheckParity("SELECT detector FROM runs WHERE weight > 0 ORDER BY weight",
              source);
}

TEST(VectorizedParity, JoinShapes) {
  MapTableSource source = MakeSource(70, 25, 0x99);
  CheckParity("SELECT events.id, runs.detector FROM events "
              "JOIN runs ON events.run = runs.run",
              source);
  CheckParity("SELECT events.id, runs.detector, runs.weight FROM events "
              "LEFT JOIN runs ON events.run = runs.run",
              source);
  CheckParity("SELECT events.id, runs.run FROM events "
              "JOIN runs ON events.run > runs.run WHERE events.id < 10",
              source);
  CheckParity("SELECT COUNT(*) FROM events, runs", source);
  CheckParity("SELECT events.id FROM events "
              "LEFT JOIN runs ON events.run = runs.run "
              "ORDER BY events.id, runs.weight LIMIT 20",
              source);
}

TEST(VectorizedParity, HavingDropsGroups) {
  MapTableSource source = MakeSource(90, 12, 0x42);
  CheckParity("SELECT run, COUNT(*) FROM events GROUP BY run "
              "HAVING COUNT(*) > 8",
              source);
  CheckParity("SELECT tag, AVG(energy) FROM events GROUP BY tag "
              "HAVING MIN(energy) > 5 ORDER BY 2 DESC",
              source);
  // HAVING that drops every group.
  CheckParity("SELECT run, SUM(energy) FROM events GROUP BY run "
              "HAVING COUNT(*) > 1000",
              source);
}

TEST(VectorizedParity, RaggedRowsFallBackToReference) {
  MapTableSource source;
  ResultSet rs;
  rs.columns = {"a", "b", "c"};
  rs.rows.push_back({Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{3})});
  rs.rows.push_back({Value(int64_t{4}), Value(int64_t{5})});  // narrow
  rs.rows.push_back({Value(int64_t{6}), Value(int64_t{7}), Value(int64_t{8}),
                     Value(int64_t{9})});  // wide
  source.Add("events", rs);
  // Projections that only touch present cells succeed in the row path;
  // the vectorized path must detect the ragged width and defer to it.
  CheckParity("SELECT a, b FROM events", source);
  CheckParity("SELECT a FROM events WHERE a > 1", source);
  CheckParity("SELECT SUM(a) FROM events", source);
  CheckParity("SELECT a, b, c FROM events", source);  // both error
}

TEST(VectorizedParity, ReferencePathOptOut) {
  MapTableSource source = MakeSource(40, 9, 0x7);
  auto stmt = sql::ParseSelect("SELECT id, energy FROM events WHERE run = 3",
                               sql::Dialect::For(sql::Vendor::kMySql));
  ASSERT_TRUE(stmt.ok());
  ExecOptions opts;
  opts.use_vectorized = false;
  auto via_opts = ExecuteSelect(**stmt, source, opts);
  auto direct = ExecuteSelectReferenceRows(**stmt, source);
  ASSERT_TRUE(via_opts.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(ResultsIdentical(*direct, *via_opts));
}

TEST(VectorizedParity, ThreadedMixedQueries) {
  // Shared read-only source, concurrent executors on both paths: the
  // TSan leg of the suite watches this for unsynchronized shared state
  // (e.g. the registered engine metrics).
  MapTableSource source = MakeSource(257, 31, 0x1111);
  std::vector<std::thread> threads;
  threads.reserve(6);
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&source, t] {
      QueryGen gen(0x9000 + static_cast<uint64_t>(t));
      for (int i = 0; i < 40; ++i) {
        CheckParity(gen.Next(), source, t % 2 ? 64 : 1024);
      }
    });
  }
  for (std::thread& th : threads) th.join();
}

}  // namespace
}  // namespace griddb::engine
