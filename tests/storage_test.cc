#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "griddb/storage/result_set.h"
#include "griddb/storage/schema.h"
#include "griddb/storage/stage_file.h"
#include "griddb/storage/table.h"
#include "griddb/storage/value.h"

namespace griddb::storage {
namespace {

// ---------- Value ----------

TEST(ValueTest, TypesAndNull) {
  EXPECT_EQ(Value().type(), DataType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{5}).type(), DataType::kInt64);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("x").type(), DataType::kString);
  EXPECT_EQ(Value(true).type(), DataType::kBool);
}

TEST(ValueTest, NumericCoercionInComparison) {
  EXPECT_EQ(Value(int64_t{1}).Compare(Value(1.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(true).Compare(Value(int64_t{1})), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value(std::string("abc")).Hash());
}

TEST(ValueTest, Coercers) {
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).AsDouble().value(), 4.0);
  EXPECT_EQ(Value(4.0).AsInt64().value(), 4);
  EXPECT_FALSE(Value(4.5).AsInt64().ok());
  EXPECT_FALSE(Value("x").AsDouble().ok());
  EXPECT_TRUE(Value(int64_t{1}).AsBool().value());
  EXPECT_FALSE(Value(0.0).AsBool().value());
}

TEST(ValueTest, ToSqlLiteralQuotesStrings) {
  EXPECT_EQ(Value("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value(int64_t{7}).ToSqlLiteral(), "7");
  EXPECT_EQ(Value().ToSqlLiteral(), "NULL");
}

TEST(ValueTest, FromText) {
  EXPECT_EQ(Value::FromText("42", DataType::kInt64).value().AsInt64Strict(), 42);
  EXPECT_DOUBLE_EQ(Value::FromText("2.5", DataType::kDouble).value().AsDoubleStrict(), 2.5);
  EXPECT_TRUE(Value::FromText("true", DataType::kBool).value().AsBoolStrict());
  EXPECT_EQ(Value::FromText("hi", DataType::kString).value().AsStringStrict(), "hi");
  EXPECT_FALSE(Value::FromText("4x", DataType::kInt64).ok());
}

TEST(ValueTest, WireSizeAccountsPayload) {
  EXPECT_EQ(Value().WireSize(), 1u);
  EXPECT_EQ(Value(int64_t{1}).WireSize(), 9u);
  EXPECT_EQ(Value("abcd").WireSize(), 9u);  // 5 + 4
  Row row = {Value(int64_t{1}), Value("ab")};
  EXPECT_EQ(RowWireSize(row), 4u + 9u + 7u);
}

// ---------- TableSchema ----------

TableSchema EventSchema() {
  return TableSchema(
      "events",
      {{"event_id", DataType::kInt64, true, true},
       {"energy", DataType::kDouble, false, false},
       {"tag", DataType::kString, false, false}});
}

TEST(SchemaTest, ColumnLookupIsCaseInsensitive) {
  TableSchema schema = EventSchema();
  EXPECT_EQ(schema.ColumnIndex("ENERGY"), 1u);
  EXPECT_EQ(schema.ColumnIndex("nope"), std::nullopt);
  EXPECT_NE(schema.FindColumn("Tag"), nullptr);
}

TEST(SchemaTest, PrimaryKeyIndexes) {
  TableSchema schema = EventSchema();
  EXPECT_TRUE(schema.HasPrimaryKey());
  EXPECT_EQ(schema.PrimaryKeyIndexes(), std::vector<size_t>{0});
}

TEST(SchemaTest, ValidateRowChecksArity) {
  TableSchema schema = EventSchema();
  EXPECT_FALSE(schema.ValidateRow({Value(int64_t{1})}).ok());
}

TEST(SchemaTest, ValidateRowChecksNotNull) {
  TableSchema schema = EventSchema();
  EXPECT_FALSE(schema.ValidateRow({Value(), Value(1.0), Value("x")}).ok());
  EXPECT_TRUE(schema.ValidateRow({Value(int64_t{1}), Value(), Value()}).ok());
}

TEST(SchemaTest, ValidateRowChecksTypes) {
  TableSchema schema = EventSchema();
  EXPECT_FALSE(
      schema.ValidateRow({Value("not an int"), Value(1.0), Value("x")}).ok());
  // int into double column is fine.
  EXPECT_TRUE(
      schema.ValidateRow({Value(int64_t{1}), Value(int64_t{5}), Value("x")}).ok());
}

TEST(SchemaTest, CoerceRowConvertsNumerics) {
  TableSchema schema = EventSchema();
  Row row = {Value(int64_t{1}), Value(int64_t{5}), Value("x")};
  ASSERT_TRUE(schema.CoerceRow(row).ok());
  EXPECT_EQ(row[1].type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(row[1].AsDoubleStrict(), 5.0);
}

// ---------- Table ----------

TEST(TableTest, InsertAndScan) {
  Table table(EventSchema());
  ASSERT_TRUE(table.Insert({Value(int64_t{1}), Value(10.5), Value("muon")}).ok());
  ASSERT_TRUE(table.Insert({Value(int64_t{2}), Value(11.5), Value("e")}).ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(table.rows()[0][1].AsDoubleStrict(), 10.5);
}

TEST(TableTest, RejectsDuplicatePrimaryKey) {
  Table table(EventSchema());
  ASSERT_TRUE(table.Insert({Value(int64_t{1}), Value(1.0), Value("a")}).ok());
  Status dup = table.Insert({Value(int64_t{1}), Value(2.0), Value("b")});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, SecondaryIndexLookup) {
  Table table(EventSchema());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table
                    .Insert({Value(int64_t{i}), Value(i * 0.5),
                             Value(i % 2 == 0 ? "even" : "odd")})
                    .ok());
  }
  ASSERT_TRUE(table.CreateIndex("tag").ok());
  EXPECT_TRUE(table.HasIndexOn("tag"));
  EXPECT_EQ(table.Lookup("tag", Value("even")).size(), 50u);
  // Lookup result matches a scan-based lookup on an unindexed column.
  EXPECT_EQ(table.Lookup("event_id", Value(int64_t{7})),
            std::vector<size_t>{7});
}

TEST(TableTest, IndexOnMissingColumnFails) {
  Table table(EventSchema());
  EXPECT_EQ(table.CreateIndex("ghost").code(), StatusCode::kNotFound);
}

TEST(TableTest, UpdateRowReindexes) {
  Table table(EventSchema());
  ASSERT_TRUE(table.Insert({Value(int64_t{1}), Value(1.0), Value("a")}).ok());
  ASSERT_TRUE(table.Insert({Value(int64_t{2}), Value(2.0), Value("b")}).ok());
  ASSERT_TRUE(table.UpdateRow(0, {Value(int64_t{3}), Value(3.0), Value("c")}).ok());
  // Old key is free again; new key is taken.
  EXPECT_TRUE(table.Insert({Value(int64_t{1}), Value(9.0), Value("z")}).ok());
  EXPECT_EQ(table.Insert({Value(int64_t{3}), Value(9.0), Value("z")}).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, UpdateRowToConflictingKeyFails) {
  Table table(EventSchema());
  ASSERT_TRUE(table.Insert({Value(int64_t{1}), Value(1.0), Value("a")}).ok());
  ASSERT_TRUE(table.Insert({Value(int64_t{2}), Value(2.0), Value("b")}).ok());
  EXPECT_FALSE(table.UpdateRow(1, {Value(int64_t{1}), Value(2.0), Value("b")}).ok());
}

TEST(TableTest, DeleteRows) {
  Table table(EventSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.Insert({Value(int64_t{i}), Value(0.0), Value("t")}).ok());
  }
  table.DeleteRows({1, 3, 5});
  EXPECT_EQ(table.num_rows(), 7u);
  // Deleted keys can be reinserted.
  EXPECT_TRUE(table.Insert({Value(int64_t{3}), Value(0.0), Value("t")}).ok());
}

TEST(TableTest, TruncateKeepsSchema) {
  Table table(EventSchema());
  ASSERT_TRUE(table.Insert({Value(int64_t{1}), Value(1.0), Value("a")}).ok());
  table.Truncate();
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_TRUE(table.Insert({Value(int64_t{1}), Value(1.0), Value("a")}).ok());
}

// ---------- ResultSet ----------

TEST(ResultSetTest, ColumnIndexCaseInsensitive) {
  ResultSet rs;
  rs.columns = {"Event_Id", "energy"};
  EXPECT_EQ(rs.ColumnIndex("event_id"), 0);
  EXPECT_EQ(rs.ColumnIndex("ENERGY"), 1);
  EXPECT_EQ(rs.ColumnIndex("ghost"), -1);
}

TEST(ResultSetTest, ToTextRendersTable) {
  ResultSet rs;
  rs.columns = {"id", "name"};
  rs.rows = {{Value(int64_t{1}), Value("alice")},
             {Value(int64_t{2}), Value("bob")}};
  std::string text = rs.ToText();
  EXPECT_NE(text.find("alice"), std::string::npos);
  EXPECT_NE(text.find("| id"), std::string::npos);
}

TEST(ResultSetTest, WireSizeGrowsWithRows) {
  ResultSet small, large;
  small.columns = large.columns = {"x"};
  small.rows = {{Value(int64_t{1})}};
  large.rows = std::vector<Row>(100, {Value(int64_t{1})});
  EXPECT_GT(large.WireSize(), small.WireSize());
}

// ---------- Stage files ----------

TEST(StageFileTest, EncodeDecodeRoundTrip) {
  TableSchema schema = EventSchema();
  std::vector<Row> rows = {
      {Value(int64_t{1}), Value(10.5), Value("has\ttab")},
      {Value(int64_t{2}), Value(), Value("has\nnewline")},
      {Value(int64_t{3}), Value(0.25), Value()},
  };
  std::string encoded = EncodeStage(schema, rows);
  auto decoded = DecodeStage(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->schema.name(), "events");
  ASSERT_EQ(decoded->rows.size(), 3u);
  EXPECT_EQ(decoded->rows[0][2].AsStringStrict(), "has\ttab");
  EXPECT_TRUE(decoded->rows[1][1].is_null());
  EXPECT_TRUE(decoded->rows[2][2].is_null());
  EXPECT_TRUE(decoded->schema.columns()[0].primary_key);
  EXPECT_TRUE(decoded->schema.columns()[0].not_null);
}

TEST(StageFileTest, FileRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "griddb_stage_test.tmp").string();
  TableSchema schema = EventSchema();
  std::vector<Row> rows = {{Value(int64_t{1}), Value(1.0), Value("x")}};
  ASSERT_TRUE(WriteStageFile(path, schema, rows).ok());
  auto loaded = ReadStageFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rows.size(), 1u);
  std::remove(path.c_str());
}

TEST(StageFileTest, RejectsBadMagic) {
  EXPECT_FALSE(DecodeStage("not a stage file").ok());
}

TEST(StageFileTest, RejectsTruncatedRows) {
  TableSchema schema("t", {{"a", DataType::kInt64, false, false}});
  std::string encoded = EncodeStage(schema, {{Value(int64_t{1})}});
  // Claim two rows but provide one.
  std::string lied = encoded;
  size_t pos = lied.find("rows 1");
  ASSERT_NE(pos, std::string::npos);
  lied.replace(pos, 6, "rows 2");
  EXPECT_FALSE(DecodeStage(lied).ok());
}

TEST(StageFileTest, RejectsCellTypeMismatch) {
  std::string buffer =
      "# griddb-stage v1\ntable t\ncolumn a INT64\nrows 1\nnot_an_int\n";
  EXPECT_FALSE(DecodeStage(buffer).ok());
}

TEST(StageFileTest, MissingFileIsNotFound) {
  // Stage I/O goes through the util::FileSystem seam, which types a
  // missing file as kNotFound — recovery paths branch on it (a missing
  // stage file restages from scratch; other I/O errors propagate).
  auto result = ReadStageFile("/nonexistent/griddb.stage");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StageFileTest, EscapeCellRoundTrip) {
  Value original("a\\b\tc\nd\re");
  auto decoded = UnescapeCell(EscapeCell(original), DataType::kString);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->AsStringStrict(), original.AsStringStrict());
}

}  // namespace
}  // namespace griddb::storage
