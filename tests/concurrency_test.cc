// Concurrency stress: many client threads issue a mix of local,
// cross-database and cross-server queries against the same pair of
// JClarens servers while a schema tracker runs in the background. Every
// query must succeed and return exactly the expected rows — no torn
// reads, no lost registrations, no deadlocks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "griddb/core/jclarens_server.h"
#include "griddb/core/schema_tracker.h"

namespace griddb::core {
namespace {

using storage::Value;

class ConcurrencyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* h : {"node-a", "node-b", "rls-host", "client"}) {
      network_.AddHost(h);
    }
    transport_ = std::make_unique<rpc::Transport>(&network_,
                                                  net::ServiceCosts::Default());
    rls_ = std::make_unique<rls::RlsServer>("rls://rls-host:39281/rls",
                                            transport_.get());

    left_ = std::make_unique<engine::Database>("left_db",
                                               sql::Vendor::kMySql);
    right_ = std::make_unique<engine::Database>("right_db",
                                                sql::Vendor::kMsSql);
    ASSERT_TRUE(left_->Execute("CREATE TABLE NUMBERS (N INT PRIMARY KEY, "
                               "SQUARE INT)")
                    .ok());
    ASSERT_TRUE(right_->Execute("CREATE TABLE LABELS (N BIGINT, "
                                "LABEL NVARCHAR(16))")
                    .ok());
    for (int i = 1; i <= 50; ++i) {
      ASSERT_TRUE(left_
                      ->Execute("INSERT INTO NUMBERS (N, SQUARE) VALUES (" +
                                std::to_string(i) + ", " +
                                std::to_string(i * i) + ")")
                      .ok());
      ASSERT_TRUE(right_
                      ->Execute("INSERT INTO LABELS (N, LABEL) VALUES (" +
                                std::to_string(i) + ", '" +
                                (i % 2 == 0 ? "even" : "odd") + "')")
                      .ok());
    }
    ASSERT_TRUE(
        catalog_.Add({"mysql://node-a/left_db", left_.get(), "node-a", "", ""})
            .ok());
    ASSERT_TRUE(catalog_
                    .Add({"mssql://node-b/right_db", right_.get(), "node-b",
                          "", ""})
                    .ok());

    auto make_server = [&](const char* name, const char* host) {
      DataAccessConfig config;
      config.server_name = name;
      config.host = host;
      config.server_url = std::string("clarens://") + host + ":8080/clarens";
      config.rls_url = "rls://rls-host:39281/rls";
      return std::make_unique<JClarensServer>(config, &catalog_,
                                              transport_.get());
    };
    server_a_ = make_server("jc-a", "node-a");
    server_b_ = make_server("jc-b", "node-b");
    ASSERT_TRUE(server_a_->service()
                    .RegisterLiveDatabase("mysql://node-a/left_db", "")
                    .ok());
    ASSERT_TRUE(server_b_->service()
                    .RegisterLiveDatabase("mssql://node-b/right_db", "")
                    .ok());
  }

  net::Network network_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<rls::RlsServer> rls_;
  std::unique_ptr<engine::Database> left_;
  std::unique_ptr<engine::Database> right_;
  ral::DatabaseCatalog catalog_;
  std::unique_ptr<JClarensServer> server_a_;
  std::unique_ptr<JClarensServer> server_b_;
};

TEST_F(ConcurrencyFixture, ParallelMixedQueriesAllSucceed) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;
  std::atomic<int> failures{0};

  auto worker = [&](int thread_id) {
    for (int q = 0; q < kQueriesPerThread; ++q) {
      int kind = (thread_id + q) % 3;
      QueryStats stats;
      if (kind == 0) {
        // Local single-table.
        auto rs = server_a_->service().Query(
            "SELECT n, square FROM numbers WHERE n <= 10", &stats);
        if (!rs.ok() || rs->num_rows() != 10) failures.fetch_add(1);
      } else if (kind == 1) {
        // Cross-server join through the RLS.
        auto rs = server_a_->service().Query(
            "SELECT x.n, y.label FROM numbers x JOIN labels y "
            "ON x.n = y.n WHERE x.n <= 20",
            &stats);
        if (!rs.ok() || rs->num_rows() != 20) failures.fetch_add(1);
      } else {
        // Aggregate issued against the *other* server.
        auto rs = server_b_->service().Query(
            "SELECT label, COUNT(*) AS c FROM labels GROUP BY label",
            &stats);
        if (!rs.ok() || rs->num_rows() != 2) failures.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrencyFixture, QueriesRaceSchemaTrackerSafely) {
  SchemaTracker tracker_a(&server_a_->service());
  SchemaTracker tracker_b(&server_b_->service());
  tracker_a.RunOnceAll();
  tracker_b.RunOnceAll();
  tracker_a.Start(std::chrono::milliseconds(2));
  tracker_b.Start(std::chrono::milliseconds(2));

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto rs = server_a_->service().Query(
            "SELECT COUNT(*) FROM numbers", nullptr);
        if (!rs.ok()) failures.fetch_add(1);
      }
    });
  }
  // Schema evolves underneath the readers.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(left_
                    ->Execute("CREATE TABLE EXTRA_" + std::to_string(i) +
                              " (X INT)")
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  // Let the trackers catch up, then verify the newest table is visible.
  for (int i = 0; i < 300; ++i) {
    if (server_a_->service().driver().dictionary().HasTable("extra_19")) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  tracker_a.Stop();
  tracker_b.Stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(
      server_a_->service().driver().dictionary().HasTable("extra_19"));
  auto rs = server_a_->service().Query("SELECT COUNT(*) FROM extra_19",
                                       nullptr);
  EXPECT_TRUE(rs.ok()) << rs.status().ToString();
}

TEST_F(ConcurrencyFixture, ParallelRemoteQueriesShareOneClient) {
  // All threads hit a table that only server B hosts, forcing server A's
  // cached RpcClient for B to be shared across threads.
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int q = 0; q < 10; ++q) {
        auto rs = server_a_->service().Query(
            "SELECT n FROM labels WHERE label = 'even'", nullptr);
        if (!rs.ok() || rs->num_rows() != 25) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace griddb::core
