// Anti-entropy replica integrity: divergent mart copies are detected by
// content digest, quarantined out of query routing, repaired by
// re-materialization, re-verified and reinstated. Schema epochs make a
// plan built against a stale dictionary fail cleanly and replan.
#include <gtest/gtest.h>

#include <filesystem>

#include "griddb/core/integrity_monitor.h"
#include "griddb/core/jclarens_server.h"
#include "griddb/ntuple/ntuple.h"
#include "griddb/warehouse/materialize.h"

namespace griddb::core {
namespace {

using storage::DataType;
using storage::TableSchema;
using warehouse::DataMart;
using warehouse::DataWarehouse;
using warehouse::EtlCosts;
using warehouse::EtlPipeline;
using warehouse::RefreshView;
using warehouse::StarSchemaSpec;
using warehouse::ViewContentDigest;

std::string IntegrityStagingDir() {
  return (std::filesystem::temp_directory_path() / "griddb_integrity_test")
      .string();
}

struct IntegrityFixture : public ::testing::Test {
  IntegrityFixture()
      : transport(&network, net::ServiceCosts::Default()),
        wh("warehouse", "cern-tier1"),
        mart("mart_lite", sql::Vendor::kSqlite, "caltech-tier2"),
        pipeline(&network, net::ServiceCosts::Default(), EtlCosts::Default(),
                 "cern-tier1", IntegrityStagingDir()) {
    for (const char* h : {"cern-tier1", "caltech-tier2", "client"}) {
      network.AddHost(h);
    }
    std::filesystem::create_directories(IntegrityStagingDir());

    ntuple::GeneratorOptions gen;
    gen.num_events = 120;
    gen.nvar = 6;
    gen.seed = 7;
    ntuple::Ntuple nt = ntuple::GenerateNtuple(gen);
    std::vector<ntuple::RunInfo> runs = ntuple::GenerateRuns(gen);

    StarSchemaSpec star;
    star.fact = ntuple::DenormalizedSchema(nt, "fact_event");
    star.dimensions.push_back(
        {TableSchema("dim_run", {{"run_id", DataType::kInt64, true, true},
                                 {"detector", DataType::kString, true, false}}),
         "run_id"});
    EXPECT_TRUE(wh.DefineStarSchema(star).ok());
    EXPECT_TRUE(
        wh.db().InsertRows("fact_event", ntuple::DenormalizedRows(nt, runs))
            .ok());
    EXPECT_TRUE(
        wh.CreateAnalysisView("v_all",
                              "SELECT event_id, run_id FROM fact_event")
            .ok());
    auto materialized = MaterializeView(wh, "v_all", mart, pipeline);
    EXPECT_TRUE(materialized.ok()) << materialized.status().ToString();

    EXPECT_TRUE(catalog
                    .Add({"sqlite://caltech-tier2/mart_lite", &mart.db(),
                          "caltech-tier2", "", ""})
                    .ok());
    DataAccessConfig config;
    config.server_name = "jclarens-mart";
    config.host = "caltech-tier2";
    config.server_url = "clarens://caltech-tier2:8080/clarens";
    server = std::make_unique<JClarensServer>(config, &catalog, &transport,
                                              &xspec_repo);
    EXPECT_TRUE(
        server->service()
            .RegisterLiveDatabase("sqlite://caltech-tier2/mart_lite", "")
            .ok());
  }

  IntegrityMonitor::ReplicaSpec MartReplica(bool with_repair) {
    IntegrityMonitor::ReplicaSpec spec;
    spec.logical_table = "v_all";
    spec.database_name = "mart_lite";
    spec.reference_digest = [this] { return ViewContentDigest(wh, "v_all"); };
    if (with_repair) {
      spec.repair = [this]() -> Status {
        return RefreshView(wh, "v_all", mart, pipeline).status();
      };
    }
    return spec;
  }

  net::Network network;
  rpc::Transport transport;
  DataWarehouse wh;
  DataMart mart;
  EtlPipeline pipeline;
  ral::DatabaseCatalog catalog;
  XSpecRepository xspec_repo;
  std::unique_ptr<JClarensServer> server;
};

TEST_F(IntegrityFixture, HealthyReplicaPassesSweepUntouched) {
  IntegrityMonitor monitor(&server->service());
  monitor.RegisterReplica(MartReplica(/*with_repair=*/true));
  EXPECT_TRUE(monitor.SweepOnce().ok());
  EXPECT_EQ(monitor.stats().sweeps, 1u);
  EXPECT_EQ(monitor.stats().replicas_checked, 1u);
  EXPECT_EQ(monitor.stats().divergences, 0u);
  EXPECT_EQ(monitor.stats().quarantines, 0u);
  EXPECT_FALSE(server->service().IsQuarantined("mart_lite"));
}

TEST_F(IntegrityFixture, QuarantineBlocksRoutingAndReinstateRestores) {
  auto before = server->service().Query("SELECT event_id FROM v_all", nullptr);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  ASSERT_TRUE(
      server->service().QuarantineDatabase("mart_lite", "operator hold").ok());
  EXPECT_TRUE(server->service().IsQuarantined("mart_lite"));
  ASSERT_EQ(server->service().QuarantinedDatabases().size(), 1u);

  // The planner's replica filter hides the quarantined mart's bindings.
  auto during = server->service().Query("SELECT event_id FROM v_all", nullptr);
  ASSERT_FALSE(during.ok());
  EXPECT_EQ(during.status().code(), StatusCode::kNotFound);
  EXPECT_NE(during.status().message().find("no usable replica"),
            std::string::npos);

  ASSERT_TRUE(server->service().ReinstateDatabase("mart_lite").ok());
  EXPECT_FALSE(server->service().IsQuarantined("mart_lite"));
  auto after = server->service().Query("SELECT event_id FROM v_all", nullptr);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(IntegrityFixture, DivergentReplicaIsQuarantinedRepairedReinstated) {
  // A writer bypasses the ETL path and injects a row into the mart copy.
  ASSERT_TRUE(
      mart.db()
          .Execute("INSERT INTO v_all (EVENT_ID, RUN_ID) VALUES (424242, 1)")
          .ok());
  ASSERT_EQ(mart.db().RowCount("v_all"), 121u);

  IntegrityMonitor monitor(&server->service());
  monitor.RegisterReplica(MartReplica(/*with_repair=*/true));
  auto status = monitor.SweepOnce();
  EXPECT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ(monitor.stats().divergences, 1u);
  EXPECT_EQ(monitor.stats().quarantines, 1u);
  EXPECT_EQ(monitor.stats().repairs, 1u);
  EXPECT_EQ(monitor.stats().repair_failures, 0u);
  EXPECT_EQ(monitor.stats().reinstated, 1u);

  // Repaired, back in routing, digest-equal with the warehouse view.
  EXPECT_FALSE(server->service().IsQuarantined("mart_lite"));
  EXPECT_EQ(mart.db().RowCount("v_all"), 120u);
  auto want = ViewContentDigest(wh, "v_all");
  auto got = mart.db().ContentDigest("v_all");
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*want, *got);
  EXPECT_TRUE(
      server->service().Query("SELECT event_id FROM v_all", nullptr).ok());
}

TEST_F(IntegrityFixture, DivergenceWithoutRepairStaysQuarantined) {
  ASSERT_TRUE(mart.db().Execute("DELETE FROM v_all WHERE run_id = 1").ok());

  IntegrityMonitor monitor(&server->service());
  monitor.RegisterReplica(MartReplica(/*with_repair=*/false));
  auto status = monitor.SweepOnce();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(monitor.stats().quarantines, 1u);
  EXPECT_EQ(monitor.stats().repairs, 0u);
  EXPECT_TRUE(server->service().IsQuarantined("mart_lite"));

  // Queries route away from (here: entirely lose) the divergent replica
  // rather than silently serving bad rows.
  auto rs = server->service().Query("SELECT event_id FROM v_all", nullptr);
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);

  // A later sweep that finds the replica healthy again (out-of-band
  // repair) reinstates it.
  ASSERT_TRUE(RefreshView(wh, "v_all", mart, pipeline).ok());
  EXPECT_TRUE(monitor.SweepOnce().ok());
  EXPECT_EQ(monitor.stats().reinstated, 1u);
  EXPECT_FALSE(server->service().IsQuarantined("mart_lite"));
}

TEST_F(IntegrityFixture, TableDigestIsServedOverRpc) {
  rpc::RpcClient client(&transport, "client",
                        "clarens://caltech-tier2:8080/clarens");
  rpc::XmlRpcArray params;
  params.emplace_back("v_all");
  params.emplace_back("mart_lite");
  auto response = client.Call("dataaccess.tableDigest", std::move(params),
                              nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto want = ViewContentDigest(wh, "v_all");
  ASSERT_TRUE(want.ok());
  EXPECT_EQ((**response->Member("rows")).AsInt().value(),
            static_cast<int64_t>(want->rows));
  EXPECT_EQ((**response->Member("md5")).AsString().value(), want->md5);

  rpc::XmlRpcArray ghost;
  ghost.emplace_back("ghost_table");
  auto missing = client.Call("dataaccess.tableDigest", std::move(ghost),
                             nullptr);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(IntegrityFixture, SchemaEpochChangeMidQueryTriggersOneReplan) {
  // The hook fires in the window between planning and execution — a
  // concurrent schema change lands exactly there. The query must fail
  // its stale plan internally, replan once and still succeed.
  bool fired = false;
  server->service().set_post_plan_hook([this, &fired] {
    if (fired) return;
    fired = true;
    auto lower = server->service().GenerateXSpecFor("mart_lite");
    auto upper = server->service().UpperEntryFor("mart_lite");
    ASSERT_TRUE(lower.ok());
    ASSERT_TRUE(upper.ok());
    EXPECT_TRUE(server->service().ReloadDatabase(*upper, *lower).ok());
  });

  QueryStats stats;
  auto rs = server->service().Query("SELECT event_id FROM v_all", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(fired);
  EXPECT_EQ(stats.replans, 1u);
  EXPECT_EQ(rs->num_rows(), 120u);

  // Stats survive the sparse RPC round-trip.
  QueryStats round = StatsFromRpc(StatsToRpc(stats));
  EXPECT_EQ(round.replans, 1u);
}

TEST_F(IntegrityFixture, XSpecRepositoryEpochAdvancesWithSchemaChanges) {
  EXPECT_EQ(xspec_repo.epoch(), 0u);
  (void)xspec_repo.Put("xspec://a", "<spec v=1/>");
  uint64_t second = xspec_repo.Put("xspec://b", "<spec v=1/>");
  EXPECT_EQ(second, 2u);
  EXPECT_EQ(xspec_repo.epoch(), 2u);
  auto epoch_a = xspec_repo.EpochOf("xspec://a");
  ASSERT_TRUE(epoch_a.ok());
  EXPECT_EQ(*epoch_a, 1u);
  // Re-publishing advances both the repository and the document epoch.
  (void)xspec_repo.Put("xspec://a", "<spec v=2/>");
  EXPECT_EQ(xspec_repo.EpochOf("xspec://a").value(), 3u);
  EXPECT_EQ(xspec_repo.EpochOf("xspec://missing").status().code(),
            StatusCode::kNotFound);
}

TEST(IntegrityStatsCodec, SparseEncodingOmitsZeroCounters) {
  IntegrityStats healthy;
  healthy.sweeps = 3;
  healthy.replicas_checked = 6;
  rpc::XmlRpcValue value = IntegrityStatsToRpc(healthy);
  const rpc::XmlRpcStruct* fields = value.AsStruct().value();
  // An all-healthy report carries no fault keys at all, so its wire form
  // is indistinguishable from a build that predates the fault counters.
  EXPECT_EQ(fields->count("divergences"), 0u);
  EXPECT_EQ(fields->count("quarantines"), 0u);
  EXPECT_EQ(fields->count("repairs"), 0u);
  EXPECT_EQ(fields->count("repair_failures"), 0u);
  EXPECT_EQ(fields->count("reinstated"), 0u);

  IntegrityStats round = IntegrityStatsFromRpc(value);
  EXPECT_EQ(round.sweeps, 3u);
  EXPECT_EQ(round.replicas_checked, 6u);
  EXPECT_EQ(round.divergences, 0u);

  IntegrityStats faulty = healthy;
  faulty.divergences = 1;
  faulty.quarantines = 1;
  IntegrityStats faulty_round = IntegrityStatsFromRpc(IntegrityStatsToRpc(faulty));
  EXPECT_EQ(faulty_round.divergences, 1u);
  EXPECT_EQ(faulty_round.quarantines, 1u);
}

}  // namespace
}  // namespace griddb::core
