// Tier-1 slice of the whole-system chaos harness (bench/chaos_harness.h):
// a bounded seed subset that runs inside the normal test budget, plus the
// deterministic-replay contract. The >= 200 seed acceptance sweep lives
// in bench/bench_ext_chaos.cc; scripts/check.sh runs a bounded sweep of
// this harness under the ASan and TSan legs too.
#include "bench/chaos_harness.h"

#include <filesystem>
#include <string>

#include "gtest/gtest.h"

using namespace griddb;

namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("griddb_chaos_test_" + std::string(
               ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    if (!HasFailure()) std::filesystem::remove_all(dir_);
  }

  bench::ChaosOptions Options(const std::string& leg) {
    bench::ChaosOptions opt;
    opt.scratch_root = (dir_ / leg).string();
    return opt;
  }

  static void ExpectClean(const bench::ChaosReport& report) {
    EXPECT_TRUE(report.ok);
    for (const std::string& violation : report.violations) {
      ADD_FAILURE() << "invariant violated: " << violation;
    }
  }

  std::filesystem::path dir_;
};

// Composed faults: storage + network + coordinator kills. Every invariant
// must hold for each seed; on failure the seed number in the test output
// is the replay handle.
TEST_F(ChaosTest, ComposedFaultSeedsHoldAllInvariants) {
  for (uint64_t seed : {11u, 42u, 2026u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    bench::ChaosReport report =
        bench::RunChaosSeed(seed, Options("seed_" + std::to_string(seed)));
    ExpectClean(report);
  }
}

// ENOSPC-only mode is the graceful-degradation acceptance gate: disk-full
// windows pause jobs (never fail them) and not one durable checkpoint is
// re-executed once space returns.
TEST_F(ChaosTest, EnospcOnlyRunsAreExactlyOnceAndNeverFailJobs) {
  bench::ChaosOptions opt = Options("enospc");
  opt.enospc_only = true;
  // Single-sourced op stream (one worker, no ETL): the op index every
  // write lands on is the same each run, so the seed's ENOSPC windows
  // provably hit batch chunk writes and the io_pauses teeth below can
  // be exact instead of schedule-dependent. The bench's ENOSPC leg
  // covers the concurrent-worker shape across 24 seeds in aggregate.
  opt.batch_workers = 1;
  opt.etl_runs = 0;
  bench::ChaosReport report = bench::RunChaosSeed(7, opt);
  ExpectClean(report);
  EXPECT_EQ(report.crashes, 0u);
  EXPECT_EQ(report.reexecuted_chunks, 0u);
  EXPECT_GE(report.fs_faults.enospc, 1u)
      << "the ENOSPC windows never landed — the gate tested nothing";
  EXPECT_GE(report.io_pauses, 1u)
      << "no job ever paused on the full disk";
}

// The replay contract: the same seed draws the same fault schedule. The
// injected-fault totals are the schedule's fingerprint — byte-identical
// results are already enforced against the oracle inside each run.
TEST_F(ChaosTest, SameSeedReplaysTheSameFaultSchedule) {
  bench::ChaosOptions opt = Options("replay_a");
  opt.enospc_only = true;  // op-indexed windows: fully order-deterministic
  // One job on one worker with no ETL: every file op comes from a single
  // thread in program order, so the op index each write lands on — and
  // therefore which writes the seed's ENOSPC windows hit — is identical
  // run to run. (With concurrent workers the schedule is still seed-
  // derived, but thread interleaving shifts op indices between runs.)
  opt.batch_jobs = 1;
  opt.batch_workers = 1;
  opt.etl_runs = 0;
  bench::ChaosReport first = bench::RunChaosSeed(99, opt);
  ExpectClean(first);
  std::filesystem::remove_all(opt.scratch_root);
  bench::ChaosReport second = bench::RunChaosSeed(99, opt);
  ExpectClean(second);
  EXPECT_EQ(first.fs_faults.enospc, second.fs_faults.enospc);
  EXPECT_EQ(first.io_pauses, second.io_pauses);
}

// A crash-heavy seed must actually crash and recover — otherwise the
// suite could go green while the kill schedule never fires.
TEST_F(ChaosTest, CrashScheduleFiresAndRecovers) {
  bench::ChaosOptions opt = Options("crashy");
  opt.max_crash_kills = 2;
  opt.storage_fault_rate = 0.0;  // isolate the kill/recover machinery
  opt.bit_flip_rate = 0.0;
  opt.net_fault_rate = 0.0;
  bench::ChaosReport report = bench::RunChaosSeed(5, opt);
  ExpectClean(report);
  EXPECT_GE(report.crashes, 1u);
  EXPECT_EQ(report.recoveries, report.crashes);
}

}  // namespace
