// Multi-tier query cache: plan-cache hits skip planning, result-cache
// hits skip execution, and every invalidation edge (content digest
// change, quarantine, schema epoch bump, admin invalidation) forces a
// miss. Stale-while-revalidate serves a last-known-good result only when
// opted in, and the new wire counters stay sparse so cache-cold
// responses are byte-identical to a cache-disabled server.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "griddb/core/jclarens_server.h"
#include "griddb/sql/fingerprint.h"
#include "griddb/sql/parser.h"

namespace griddb::core {
namespace {

using storage::Value;

constexpr char kRlsUrl[] = "rls://rls-host:39281/rls";
constexpr char kServerAUrl[] = "clarens://server-a:8080/clarens";

// ---------- fingerprint unit behaviour ----------

std::string FingerprintOf(const std::string& text) {
  auto stmt = sql::ParseSelect(text, sql::Dialect::For(sql::Vendor::kSqlite));
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return sql::FingerprintSelect(**stmt);
}

TEST(QueryFingerprintTest, NormalizesWhitespaceAndKeywordCase) {
  // Keyword case, whitespace, table-identifier case and WHERE-side column
  // case are insignificant. (Select-item case is NOT: it names the output
  // column in the response header.)
  EXPECT_EQ(FingerprintOf("SELECT id, v FROM events_a WHERE v > 1.0"),
            FingerprintOf("select   id,v   from EVENTS_A  where V > 1.0"));
  EXPECT_NE(FingerprintOf("SELECT id FROM events_a"),
            FingerprintOf("SELECT ID FROM events_a"));
}

TEST(QueryFingerprintTest, DistinguishesDifferentQueries) {
  EXPECT_NE(FingerprintOf("SELECT id FROM events_a WHERE v > 1.0"),
            FingerprintOf("SELECT id FROM events_a WHERE v > 2.0"));
  EXPECT_NE(FingerprintOf("SELECT id FROM events_a"),
            FingerprintOf("SELECT id FROM events_b"));
  EXPECT_NE(FingerprintOf("SELECT id FROM events_a"),
            FingerprintOf("SELECT DISTINCT id FROM events_a"));
}

TEST(QueryFingerprintTest, AliasesAreSignificant) {
  // "v AS x" changes the output schema, so it must change the key.
  EXPECT_NE(FingerprintOf("SELECT v FROM events_a"),
            FingerprintOf("SELECT v AS x FROM events_a"));
}

// ---------- full-stack fixture ----------

// One JClarens server on "server-a" hosting two databases: db_a with
// EVENTS_A (3 rows) and db_ra with SHARED_EVENTS (3 rows), so the same
// server can run single-database queries and a cross-database join.
struct QueryCacheFixture : public ::testing::Test {
  QueryCacheFixture()
      : transport(&network, net::ServiceCosts::Default()),
        db_a("db_a", sql::Vendor::kMySql),
        db_ra("db_ra", sql::Vendor::kMySql) {
    for (const char* h : {"server-a", "rls-host", "client"}) {
      network.AddHost(h);
    }
    rls = std::make_unique<rls::RlsServer>(kRlsUrl, &transport);

    EXPECT_TRUE(db_a.Execute("CREATE TABLE EVENTS_A (ID INT PRIMARY KEY, "
                             "V DOUBLE)")
                    .ok());
    for (const char* row : {"(1, 1.5)", "(2, 2.5)", "(3, 3.5)"}) {
      EXPECT_TRUE(db_a.Execute(std::string("INSERT INTO EVENTS_A (ID, V) "
                                           "VALUES ") +
                               row)
                      .ok());
    }
    EXPECT_TRUE(db_ra.Execute("CREATE TABLE SHARED_EVENTS (ID INT PRIMARY "
                              "KEY, V DOUBLE)")
                    .ok());
    for (const char* row : {"(1, 0.5)", "(2, 1.5)", "(3, 2.5)"}) {
      EXPECT_TRUE(db_ra.Execute(std::string("INSERT INTO SHARED_EVENTS (ID, "
                                            "V) VALUES ") +
                                row)
                      .ok());
    }

    EXPECT_TRUE(
        catalog.Add({"mysql://server-a/db_a", &db_a, "server-a", "", ""}).ok());
    EXPECT_TRUE(
        catalog.Add({"mysql://server-a/db_ra", &db_ra, "server-a", "", ""})
            .ok());
  }

  DataAccessConfig CachedConfig() const {
    DataAccessConfig config;
    config.server_name = "jclarens-a";
    config.host = "server-a";
    config.server_url = kServerAUrl;
    config.rls_url = kRlsUrl;
    config.query_cache = true;
    return config;
  }

  std::unique_ptr<DataAccessService> MakeService(DataAccessConfig config) {
    auto service =
        std::make_unique<DataAccessService>(config, &catalog, &transport);
    EXPECT_TRUE(
        service->RegisterLiveDatabase("mysql://server-a/db_a", "").ok());
    EXPECT_TRUE(
        service->RegisterLiveDatabase("mysql://server-a/db_ra", "").ok());
    return service;
  }

  net::Network network;
  rpc::Transport transport;
  engine::Database db_a;
  engine::Database db_ra;
  ral::DatabaseCatalog catalog;
  std::unique_ptr<rls::RlsServer> rls;
};

constexpr char kEventsQuery[] = "SELECT id, v FROM events_a WHERE v > 2.0";
constexpr char kJoinQuery[] =
    "SELECT events_a.id, shared_events.v FROM events_a JOIN shared_events "
    "ON events_a.id = shared_events.id";

TEST_F(QueryCacheFixture, RepeatQueryHitsResultCache) {
  auto service = MakeService(CachedConfig());

  QueryStats cold;
  auto first = service->Query(kEventsQuery, &cold);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(cold.result_cache_hits, 0u);
  EXPECT_EQ(cold.plan_cache_hits, 0u);
  EXPECT_EQ(first->num_rows(), 2u);
  EXPECT_GE(service->query_cache().result_entries(), 1u);
  EXPECT_GE(service->query_cache().plan_entries(), 1u);

  QueryStats warm;
  auto second = service->Query(kEventsQuery, &warm);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(warm.result_cache_hits, 1u);
  EXPECT_EQ(second->rows, first->rows);
  EXPECT_EQ(second->columns, first->columns);
  // A hit executes nothing: no sub-queries, and replayed shape metadata.
  EXPECT_EQ(warm.pool_ral_subqueries + warm.jdbc_subqueries, 0u);
  EXPECT_EQ(warm.databases, cold.databases);
  EXPECT_EQ(warm.tables, cold.tables);
  EXPECT_FALSE(warm.stale);
  // The warm path skips per-sub-query network work entirely.
  EXPECT_LT(warm.simulated_ms, cold.simulated_ms);

  // A differently-written but canonically identical query also hits.
  QueryStats reworded;
  auto third =
      service->Query("select   id , v   from EVENTS_A where V > 2.0",
                     &reworded);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(reworded.result_cache_hits, 1u);
  EXPECT_EQ(third->rows, first->rows);
}

TEST_F(QueryCacheFixture, PlanCacheHitsEvenWhenResultsCannotBeCached) {
  // A zero-byte result budget disables the result tier; the plan tier
  // must still serve repeat queries without replanning.
  DataAccessConfig config = CachedConfig();
  config.result_cache_bytes = 0;
  auto service = MakeService(config);

  QueryStats cold;
  ASSERT_TRUE(service->Query(kEventsQuery, &cold).ok());
  EXPECT_EQ(cold.plan_cache_hits, 0u);
  EXPECT_EQ(service->query_cache().result_entries(), 0u);

  QueryStats warm;
  auto rs = service->Query(kEventsQuery, &warm);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(warm.plan_cache_hits, 1u);
  EXPECT_EQ(warm.result_cache_hits, 0u);
  EXPECT_EQ(rs->num_rows(), 2u);
  // Execution still ran (the result tier is empty).
  EXPECT_GE(warm.pool_ral_subqueries + warm.jdbc_subqueries, 1u);
}

TEST_F(QueryCacheFixture, DigestChangeInvalidatesResultsButKeepsPlan) {
  auto service = MakeService(CachedConfig());

  // Establish the digest baseline before anything is cached (the
  // integrity monitor does this on its first sweep).
  auto baseline = service->TableDigest("events_a", "db_a");
  ASSERT_TRUE(baseline.ok());
  service->ObserveTableDigest("events_a", baseline->md5);

  QueryStats cold;
  auto first = service->Query(kEventsQuery, &cold);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->num_rows(), 2u);

  // Mutate the table out of band; the next integrity sweep observes a
  // different content digest.
  ASSERT_TRUE(
      db_a.Execute("INSERT INTO EVENTS_A (ID, V) VALUES (4, 4.5)").ok());
  auto changed = service->TableDigest("events_a", "db_a");
  ASSERT_TRUE(changed.ok());
  ASSERT_NE(changed->md5, baseline->md5);
  service->ObserveTableDigest("events_a", changed->md5);

  // The stale cached result must not be served: the query re-executes
  // (result miss) and sees the new row, while the plan is still valid
  // (no schema change) and hits.
  QueryStats after;
  auto second = service->Query(kEventsQuery, &after);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(after.result_cache_hits, 0u);
  EXPECT_EQ(after.plan_cache_hits, 1u);
  EXPECT_EQ(second->num_rows(), 3u);

  // An unchanged digest observation does not invalidate: repeat hits.
  service->ObserveTableDigest("events_a", changed->md5);
  QueryStats warm;
  ASSERT_TRUE(service->Query(kEventsQuery, &warm).ok());
  EXPECT_EQ(warm.result_cache_hits, 1u);
}

TEST_F(QueryCacheFixture, EpochBumpInvalidatesPlansAndResults) {
  auto service = MakeService(CachedConfig());
  QueryStats cold;
  ASSERT_TRUE(service->Query(kEventsQuery, &cold).ok());

  // Re-registering the database bumps the dictionary epoch: both tiers
  // must miss (the result key embeds the epoch; the plan entry is
  // evicted on lookup).
  auto lower = service->GenerateXSpecFor("db_a");
  auto upper = service->UpperEntryFor("db_a");
  ASSERT_TRUE(lower.ok());
  ASSERT_TRUE(upper.ok());
  ASSERT_TRUE(service->ReloadDatabase(*upper, *lower).ok());

  QueryStats after;
  auto rs = service->Query(kEventsQuery, &after);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(after.result_cache_hits, 0u);
  EXPECT_EQ(after.plan_cache_hits, 0u);
  EXPECT_EQ(rs->num_rows(), 2u);
}

TEST_F(QueryCacheFixture, AdminInvalidationDropsTableAndEverything) {
  auto service = MakeService(CachedConfig());
  QueryStats cold;
  ASSERT_TRUE(service->Query(kEventsQuery, &cold).ok());

  // Table-scoped invalidation forces a miss for that table only.
  EXPECT_EQ(service->CacheInvalidate("EVENTS_A"), 1u);
  QueryStats after;
  ASSERT_TRUE(service->Query(kEventsQuery, &after).ok());
  EXPECT_EQ(after.result_cache_hits, 0u);

  // Empty argument drops the whole cache, plans included.
  EXPECT_GT(service->CacheInvalidate(""), 0u);
  EXPECT_EQ(service->query_cache().plan_entries(), 0u);
  EXPECT_EQ(service->query_cache().result_entries(), 0u);
  QueryStats cleared;
  ASSERT_TRUE(service->Query(kEventsQuery, &cleared).ok());
  EXPECT_EQ(cleared.plan_cache_hits, 0u);
  EXPECT_EQ(cleared.result_cache_hits, 0u);
}

TEST_F(QueryCacheFixture, SubqueryCacheReusesUnchangedJoinSide) {
  auto service = MakeService(CachedConfig());

  QueryStats cold;
  auto first = service->Query(kJoinQuery, &cold);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(cold.distributed);
  EXPECT_EQ(cold.subquery_cache_hits, 0u);
  EXPECT_EQ(first->num_rows(), 3u);

  // Invalidate only one side of the join: the whole-query result misses,
  // but the unchanged side's sub-query partial is served from cache.
  EXPECT_GE(service->CacheInvalidate("events_a"), 1u);
  QueryStats after;
  auto second = service->Query(kJoinQuery, &after);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(after.result_cache_hits, 0u);
  EXPECT_EQ(after.subquery_cache_hits, 1u);
  EXPECT_EQ(second->rows, first->rows);
}

TEST_F(QueryCacheFixture, QuarantineInvalidatesCachedResults) {
  auto service = MakeService(CachedConfig());
  QueryStats cold;
  auto first = service->Query("SELECT id, v FROM shared_events", &cold);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Quarantining the hosting database must not leave its rows servable
  // from cache: with no other replica the query now fails instead of
  // silently returning data fetched from the quarantined copy.
  ASSERT_TRUE(service->QuarantineDatabase("db_ra", "test divergence").ok());
  QueryStats after;
  auto second = service->Query("SELECT id, v FROM shared_events", &after);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(after.result_cache_hits, 0u);

  // Reinstating restores service; the routing-generation bump forces a
  // fresh plan rather than reusing one planned around the quarantine.
  ASSERT_TRUE(service->ReinstateDatabase("db_ra").ok());
  QueryStats back;
  auto third = service->Query("SELECT id, v FROM shared_events", &back);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(back.plan_cache_hits, 0u);
  EXPECT_EQ(third->rows, first->rows);
}

TEST_F(QueryCacheFixture, StaleResultServedOnlyWhenOptedIn) {
  // Default: no stale serving — a failed query is a failed query.
  auto strict = MakeService(CachedConfig());
  QueryStats strict_cold;
  ASSERT_TRUE(
      strict->Query("SELECT id, v FROM shared_events", &strict_cold).ok());
  ASSERT_TRUE(strict->QuarantineDatabase("db_ra", "divergence").ok());
  QueryStats strict_after;
  EXPECT_FALSE(
      strict->Query("SELECT id, v FROM shared_events", &strict_after).ok());
  EXPECT_FALSE(strict_after.stale);

  // Opted in: the last known good result comes back, tagged stale.
  DataAccessConfig config = CachedConfig();
  config.serve_stale_results = true;
  auto lenient = MakeService(config);
  QueryStats cold;
  auto first = lenient->Query("SELECT id, v FROM shared_events", &cold);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(lenient->QuarantineDatabase("db_ra", "divergence").ok());
  QueryStats after;
  auto second = lenient->Query("SELECT id, v FROM shared_events", &after);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(after.stale);
  EXPECT_EQ(after.result_cache_hits, 0u);
  EXPECT_EQ(second->rows, first->rows);

  // The stale flag survives the wire (and is sparse: absent when false).
  rpc::XmlRpcValue stale_wire = StatsToRpc(after);
  EXPECT_TRUE(stale_wire.Member("stale").ok());
  EXPECT_TRUE(StatsFromRpc(stale_wire).stale);
  rpc::XmlRpcValue fresh_wire = StatsToRpc(cold);
  EXPECT_FALSE(fresh_wire.Member("stale").ok());
  EXPECT_FALSE(StatsFromRpc(fresh_wire).stale);
}

TEST_F(QueryCacheFixture, CacheCountersRoundTripAndStaySparse) {
  QueryStats stats;
  stats.plan_cache_hits = 2;
  stats.result_cache_hits = 3;
  stats.subquery_cache_hits = 4;
  stats.stale = true;
  QueryStats round = StatsFromRpc(StatsToRpc(stats));
  EXPECT_EQ(round.plan_cache_hits, 2u);
  EXPECT_EQ(round.result_cache_hits, 3u);
  EXPECT_EQ(round.subquery_cache_hits, 4u);
  EXPECT_TRUE(round.stale);

  // Zero counters never reach the wire.
  rpc::XmlRpcValue wire = StatsToRpc(QueryStats{});
  EXPECT_FALSE(wire.Member("plan_cache_hits").ok());
  EXPECT_FALSE(wire.Member("result_cache_hits").ok());
  EXPECT_FALSE(wire.Member("subquery_cache_hits").ok());
  EXPECT_FALSE(wire.Member("stale").ok());
}

TEST_F(QueryCacheFixture, ColdResponsesAreByteIdenticalToCacheDisabled) {
  // Two servers over the same databases, identical except for the cache
  // flag. A fault-free, cache-cold exchange must serialize to the exact
  // same bytes: the cache is invisible until it hits.
  DataAccessConfig off_config = CachedConfig();
  off_config.query_cache = false;
  off_config.rls_url.clear();
  off_config.parallel_subqueries = false;  // serial: deterministic cost
  DataAccessConfig on_config = CachedConfig();
  on_config.rls_url.clear();
  on_config.parallel_subqueries = false;
  // Distinct endpoint so both servers can bind; the wire payloads under
  // comparison never mention the URL.
  on_config.server_url = "clarens://server-a:8081/clarens";
  // Third variant: RBAC + per-tenant admission on, with the anonymous
  // tenant granted everything. A request carrying no <tenant> header maps
  // to the anonymous user and must produce the exact same fault-free
  // bytes — the tenant machinery is invisible until someone is denied or
  // identifies themselves.
  DataAccessConfig tenant_config = CachedConfig();
  tenant_config.query_cache = false;
  tenant_config.rls_url.clear();
  tenant_config.parallel_subqueries = false;
  tenant_config.server_url = "clarens://server-a:8082/clarens";
  tenant_config.rbac = std::make_shared<RbacCatalog>();
  ASSERT_TRUE(tenant_config.rbac->CreateUser(RbacCatalog::kAnonymousTenant)
                  .ok());
  ASSERT_TRUE(tenant_config.rbac
                  ->GrantTable(RbacCatalog::kAnonymousTenant,
                               RbacCatalog::kAllTables)
                  .ok());
  tenant_config.admission.max_concurrent = 8;
  tenant_config.admission.tenant_isolation = true;
  auto server_off = std::make_unique<JClarensServer>(off_config, &catalog,
                                                     &transport);
  auto server_on = std::make_unique<JClarensServer>(on_config, &catalog,
                                                    &transport);
  auto server_tenant = std::make_unique<JClarensServer>(tenant_config,
                                                        &catalog, &transport);
  for (JClarensServer* server :
       {server_off.get(), server_on.get(), server_tenant.get()}) {
    ASSERT_TRUE(
        server->service().RegisterLiveDatabase("mysql://server-a/db_a", "")
            .ok());
    ASSERT_TRUE(
        server->service().RegisterLiveDatabase("mysql://server-a/db_ra", "")
            .ok());
  }

  for (const char* sql : {kEventsQuery, kJoinQuery}) {
    rpc::RpcRequest request;
    request.method = "dataaccess.query";
    request.params.emplace_back(std::string(sql));
    std::string raw = rpc::EncodeRequest(request);
    // The anonymous request itself carries no <tenant> element.
    EXPECT_EQ(raw.find("tenant"), std::string::npos);
    net::Cost cost_off, cost_on, cost_tenant;
    std::string off = server_off->rpc().HandleRaw(raw, "client", &cost_off);
    std::string on = server_on->rpc().HandleRaw(raw, "client", &cost_on);
    std::string tenant =
        server_tenant->rpc().HandleRaw(raw, "client", &cost_tenant);
    EXPECT_EQ(off, on) << "cache-cold response differs for: " << sql;
    EXPECT_EQ(off, tenant) << "tenant-enabled response differs for: " << sql;
    EXPECT_EQ(cost_off.total_ms(), cost_on.total_ms());
    EXPECT_EQ(cost_off.total_ms(), cost_tenant.total_ms());
  }
}

TEST_F(QueryCacheFixture, ConcurrentQueriesAndInvalidationsAreSafe) {
  auto service = MakeService(CachedConfig());
  std::atomic<bool> stop{false};

  std::thread invalidator([&] {
    int round = 0;
    while (!stop.load()) {
      service->CacheInvalidate(round % 3 == 0 ? "" : "events_a");
      service->ObserveTableDigest("events_a",
                                  "digest-" + std::to_string(round % 5));
      ++round;
    }
  });
  std::thread quarantiner([&] {
    while (!stop.load()) {
      (void)service->QuarantineDatabase("db_ra", "hammer");
      (void)service->ReinstateDatabase("db_ra");
    }
  });

  std::vector<std::thread> workers;
  std::atomic<size_t> ok_queries{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 60; ++i) {
        const char* sql = (t + i) % 2 == 0 ? kEventsQuery : kJoinQuery;
        QueryStats stats;
        auto rs = service->Query(sql, &stats);
        // Join queries may legitimately fail while db_ra is quarantined;
        // everything else must succeed.
        if (rs.ok()) ok_queries.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true);
  invalidator.join();
  quarantiner.join();

  EXPECT_GT(ok_queries.load(), 0u);
  (void)service->ReinstateDatabase("db_ra");
  QueryStats stats;
  auto rs = service->Query(kEventsQuery, &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 2u);
}

}  // namespace
}  // namespace griddb::core
