#include <gtest/gtest.h>

#include "griddb/rpc/server.h"
#include "griddb/rpc/xmlrpc_value.h"

namespace griddb::rpc {
namespace {

// ---------- values & codec ----------

TEST(XmlRpcValueTest, ScalarRoundTrip) {
  for (const XmlRpcValue& original :
       {XmlRpcValue(int64_t{-42}), XmlRpcValue(3.25), XmlRpcValue(true),
        XmlRpcValue(false), XmlRpcValue("hello <world> & 'friends'"),
        XmlRpcValue()}) {
    auto node = original.ToXml();
    auto decoded = XmlRpcValue::FromXml(node);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(*decoded == original);
  }
}

TEST(XmlRpcValueTest, NestedArrayAndStruct) {
  XmlRpcStruct inner;
  inner["count"] = int64_t{3};
  inner["ratio"] = 0.5;
  XmlRpcArray array;
  array.emplace_back("first");
  array.emplace_back(std::move(inner));
  XmlRpcValue original((XmlRpcArray(std::move(array))));

  auto decoded = XmlRpcValue::FromXml(original.ToXml());
  ASSERT_TRUE(decoded.ok());
  const XmlRpcArray* items = decoded->AsArray().value();
  ASSERT_EQ(items->size(), 2u);
  EXPECT_EQ((*items)[0].AsString().value(), "first");
  EXPECT_EQ((*items)[1].Member("count").value()->AsInt().value(), 3);
}

TEST(XmlRpcValueTest, TypeAccessorsEnforce) {
  XmlRpcValue v(int64_t{1});
  EXPECT_TRUE(v.AsInt().ok());
  EXPECT_TRUE(v.AsDouble().ok());  // int widens
  EXPECT_FALSE(v.AsString().ok());
  EXPECT_FALSE(v.AsArray().ok());
  EXPECT_FALSE(XmlRpcValue(2.5).AsInt().ok());
}

TEST(XmlRpcValueTest, RequestCodecRoundTrip) {
  RpcRequest request;
  request.method = "dataaccess.query";
  request.session_token = "sess-1-admin";
  request.params.emplace_back("SELECT * FROM events");
  request.params.emplace_back(int64_t{10});

  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->method, "dataaccess.query");
  EXPECT_EQ(decoded->session_token, "sess-1-admin");
  ASSERT_EQ(decoded->params.size(), 2u);
  EXPECT_EQ(decoded->params[0].AsString().value(), "SELECT * FROM events");
}

TEST(XmlRpcValueTest, ResponseCodecSuccessAndFault) {
  auto ok = DecodeResponse(EncodeResponse(XmlRpcValue(int64_t{7})));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->AsInt().value(), 7);

  auto fault = DecodeResponse(EncodeFault(NotFound("no such table")));
  ASSERT_FALSE(fault.ok());
  EXPECT_EQ(fault.status().code(), StatusCode::kNotFound);
  EXPECT_NE(fault.status().message().find("no such table"), std::string::npos);
}

TEST(XmlRpcValueTest, ResultSetRoundTrip) {
  storage::ResultSet rs;
  rs.columns = {"id", "energy", "tag", "flag"};
  rs.rows = {{storage::Value(int64_t{1}), storage::Value(12.5),
              storage::Value("muon"), storage::Value(true)},
             {storage::Value(int64_t{2}), storage::Value::Null(),
              storage::Value::Null(), storage::Value(false)}};
  auto round = RpcToResultSet(ResultSetToRpc(rs));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->columns, rs.columns);
  ASSERT_EQ(round->rows.size(), 2u);
  EXPECT_EQ(round->rows[0][2].AsStringStrict(), "muon");
  EXPECT_TRUE(round->rows[1][1].is_null());
}

// ---------- URL ----------

TEST(UrlTest, ParseForms) {
  auto url = Url::Parse("clarens://cern-tier1:8443/clarens/service");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->scheme, "clarens");
  EXPECT_EQ(url->host, "cern-tier1");
  EXPECT_EQ(url->port, 8443);
  EXPECT_EQ(url->path, "/clarens/service");

  auto defaults = Url::Parse("http://host");
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults->port, 8080);
  EXPECT_EQ(defaults->path, "/");

  EXPECT_FALSE(Url::Parse("no-scheme").ok());
  EXPECT_FALSE(Url::Parse("http://").ok());
  EXPECT_FALSE(Url::Parse("http://host:notaport/x").ok());
}

// ---------- server/client ----------

struct RpcFixture : public ::testing::Test {
  RpcFixture()
      : transport(&network, net::ServiceCosts::Default()),
        server("clarens://server-host:8080/clarens", &transport) {
    network.AddHost("server-host");
    network.AddHost("client-host");
    (void)server.RegisterMethod(
        "math.add",
        [](const XmlRpcArray& params, CallContext& ctx) -> Result<XmlRpcValue> {
          ctx.cost.AddMs(1.0);
          int64_t total = 0;
          for (const XmlRpcValue& p : params) {
            GRIDDB_ASSIGN_OR_RETURN(int64_t v, p.AsInt());
            total += v;
          }
          return XmlRpcValue(total);
        });
    (void)server.RegisterMethod(
        "who.am.i",
        [](const XmlRpcArray&, CallContext& ctx) -> Result<XmlRpcValue> {
          return XmlRpcValue(ctx.authenticated_user);
        });
  }

  net::Network network;
  Transport transport;
  RpcServer server;
};

TEST_F(RpcFixture, BasicCall) {
  RpcClient client(&transport, "client-host",
                   "clarens://server-host:8080/clarens");
  XmlRpcArray params;
  params.emplace_back(int64_t{2});
  params.emplace_back(int64_t{3});
  auto result = client.Call("math.add", std::move(params), nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->AsInt().value(), 5);
}

TEST_F(RpcFixture, UnknownMethodFaults) {
  RpcClient client(&transport, "client-host",
                   "clarens://server-host:8080/clarens");
  auto result = client.Call("no.such.method", {}, nullptr);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(RpcFixture, UnresolvedEndpointIsUnavailable) {
  RpcClient client(&transport, "client-host", "clarens://ghost:8080/x");
  auto result = client.Call("math.add", {}, nullptr);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(RpcFixture, ConnectCostChargedOncePerConnection) {
  RpcClient client(&transport, "client-host",
                   "clarens://server-host:8080/clarens");
  net::Cost first, second;
  ASSERT_TRUE(client.Call("math.add", {}, &first).ok());
  ASSERT_TRUE(client.Call("math.add", {}, &second).ok());
  const double connect = transport.costs().connect_auth_ms;
  EXPECT_GT(first.total_ms(), connect);
  EXPECT_LT(second.total_ms(), connect);  // connection reused
  EXPECT_GT(second.total_ms(), 0.0);      // still pays transfer + handler
}

TEST_F(RpcFixture, ServerSideCostFlowsToCaller) {
  RpcClient client(&transport, "client-host",
                   "clarens://server-host:8080/clarens");
  ASSERT_TRUE(client.Connect(nullptr).ok());
  net::Cost cost;
  ASSERT_TRUE(client.Call("math.add", {}, &cost).ok());
  // handler adds 1.0, server parse adds query_parse_ms.
  EXPECT_GE(cost.total_ms(), 1.0 + transport.costs().query_parse_ms);
}

TEST_F(RpcFixture, AuthRequiredRejectsAnonymous) {
  server.AddUser("cms", "secret");
  RpcClient anonymous(&transport, "client-host",
                      "clarens://server-host:8080/clarens");
  auto result = anonymous.Call("math.add", {}, nullptr);
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(RpcFixture, AuthSucceedsWithCredentials) {
  server.AddUser("cms", "secret");
  RpcClient client(&transport, "client-host",
                   "clarens://server-host:8080/clarens", "cms", "secret");
  auto result = client.Call("who.am.i", {}, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->AsString().value(), "cms");
}

TEST_F(RpcFixture, WrongPasswordRejected) {
  server.AddUser("cms", "secret");
  RpcClient client(&transport, "client-host",
                   "clarens://server-host:8080/clarens", "cms", "wrong");
  auto result = client.Call("who.am.i", {}, nullptr);
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(RpcFixture, SystemListMethods) {
  RpcClient client(&transport, "client-host",
                   "clarens://server-host:8080/clarens");
  auto result = client.Call("system.listMethods", {}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->AsArray().value()->size(), 2u);
}

TEST_F(RpcFixture, DuplicateMethodRegistrationFails) {
  Status dup = server.RegisterMethod(
      "math.add", [](const XmlRpcArray&, CallContext&) -> Result<XmlRpcValue> {
        return XmlRpcValue();
      });
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST_F(RpcFixture, DuplicateBindRejected) {
  net::Cost cost;
  // Binding a second server at the same URL logs and leaves the first.
  RpcServer other("clarens://server-host:8080/clarens", &transport);
  RpcClient client(&transport, "client-host",
                   "clarens://server-host:8080/clarens");
  auto result = client.Call("math.add", {}, &cost);
  EXPECT_TRUE(result.ok());  // original server still serves
}

TEST_F(RpcFixture, LargerPayloadCostsMore) {
  RpcClient client(&transport, "client-host",
                   "clarens://server-host:8080/clarens");
  ASSERT_TRUE(client.Connect(nullptr).ok());
  net::Cost small, large;
  XmlRpcArray one;
  one.emplace_back(int64_t{1});
  ASSERT_TRUE(client.Call("math.add", std::move(one), &small).ok());
  XmlRpcArray many;
  for (int i = 0; i < 500; ++i) many.emplace_back(int64_t{i});
  ASSERT_TRUE(client.Call("math.add", std::move(many), &large).ok());
  EXPECT_GT(large.total_ms(), small.total_ms());
}

}  // namespace
}  // namespace griddb::rpc
