#include <gtest/gtest.h>

#include "griddb/ral/catalog.h"
#include "griddb/ral/jdbc.h"
#include "griddb/ral/pool_ral.h"

namespace griddb::ral {
namespace {

using storage::Value;

TEST(ConnectionStringTest, ParseForms) {
  auto conn = ConnectionString::Parse("oracle://cern-tier1/warehouse");
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(conn->vendor, sql::Vendor::kOracle);
  EXPECT_EQ(conn->host, "cern-tier1");
  EXPECT_EQ(conn->database, "warehouse");

  EXPECT_FALSE(ConnectionString::Parse("warehouse").ok());
  EXPECT_FALSE(ConnectionString::Parse("oracle://hostonly").ok());
  EXPECT_FALSE(ConnectionString::Parse("postgres://h/db").ok());
  EXPECT_FALSE(ConnectionString::Parse("oracle:///db").ok());
}

TEST(PoolSupportTest, MsSqlIsNotPoolSupported) {
  EXPECT_TRUE(IsPoolSupported(sql::Vendor::kOracle));
  EXPECT_TRUE(IsPoolSupported(sql::Vendor::kMySql));
  EXPECT_TRUE(IsPoolSupported(sql::Vendor::kSqlite));
  EXPECT_FALSE(IsPoolSupported(sql::Vendor::kMsSql));
}

struct RalFixture : public ::testing::Test {
  RalFixture()
      : oracle("warehouse", sql::Vendor::kOracle),
        mssql("mart_ms", sql::Vendor::kMsSql) {
    network.AddHost("cern-tier1");
    network.AddHost("caltech-tier2");
    network.AddHost("local");

    EXPECT_TRUE(oracle
                    .Execute("CREATE TABLE caldata (id NUMBER(19) PRIMARY "
                             "KEY, temp BINARY_DOUBLE, sensor VARCHAR2(32))")
                    .ok());
    EXPECT_TRUE(oracle
                    .Execute("INSERT INTO caldata (id, temp, sensor) VALUES "
                             "(1, 21.5, 'ecal_a'), (2, 23.0, 'ecal_b'), "
                             "(3, 19.0, 'hcal_a')")
                    .ok());
    EXPECT_TRUE(
        mssql.Execute("CREATE TABLE conditions (id BIGINT, v FLOAT)").ok());

    EXPECT_TRUE(catalog
                    .Add({"oracle://cern-tier1/warehouse", &oracle,
                          "cern-tier1", "cms", "secret"})
                    .ok());
    EXPECT_TRUE(catalog
                    .Add({"mssql://caltech-tier2/mart_ms", &mssql,
                          "caltech-tier2", "", ""})
                    .ok());
  }

  net::Network network;
  engine::Database oracle;
  engine::Database mssql;
  DatabaseCatalog catalog;
};

TEST_F(RalFixture, CatalogRejectsVendorMismatch) {
  engine::Database lite("x", sql::Vendor::kSqlite);
  EXPECT_FALSE(catalog.Add({"mysql://h/x", &lite, "h", "", ""}).ok());
}

TEST_F(RalFixture, CatalogDuplicateAndRemove) {
  EXPECT_EQ(catalog.Add({"oracle://cern-tier1/warehouse", &oracle,
                         "cern-tier1", "", ""})
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.ConnectionStrings().size(), 2u);
  EXPECT_TRUE(catalog.Remove("mssql://caltech-tier2/mart_ms").ok());
  EXPECT_FALSE(catalog.Find("mssql://caltech-tier2/mart_ms").ok());
}

TEST_F(RalFixture, PoolRalTwoMethodFlow) {
  PoolRal ral(&catalog, &network, net::ServiceCosts::Default(), "local");

  // Method 2 before method 1 fails: no handle.
  auto premature = ral.Execute("oracle://cern-tier1/warehouse", {"id"},
                               {"caldata"}, "");
  EXPECT_EQ(premature.status().code(), StatusCode::kUnavailable);

  // Method 1: initialize the service handle.
  net::Cost connect_cost;
  ASSERT_TRUE(ral.InitHandle("oracle://cern-tier1/warehouse", "cms", "secret",
                             &connect_cost)
                  .ok());
  EXPECT_TRUE(ral.HasHandle("oracle://cern-tier1/warehouse"));
  EXPECT_GE(connect_cost.total_ms(),
            net::ServiceCosts::Default().connect_auth_ms);

  // Method 2: (fields, tables, where) -> 2-D array.
  net::Cost query_cost;
  auto rs = ral.Execute("oracle://cern-tier1/warehouse", {"sensor", "temp"},
                        {"caldata"}, "temp > 20", &query_cost);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->columns, (std::vector<std::string>{"sensor", "temp"}));
  EXPECT_EQ(rs->num_rows(), 2u);
  EXPECT_GT(query_cost.total_ms(), 0.0);
}

TEST_F(RalFixture, PoolRalReinitIsCheapNoOp) {
  PoolRal ral(&catalog, &network, net::ServiceCosts::Default(), "local");
  ASSERT_TRUE(
      ral.InitHandle("oracle://cern-tier1/warehouse", "cms", "secret", nullptr)
          .ok());
  net::Cost again;
  ASSERT_TRUE(
      ral.InitHandle("oracle://cern-tier1/warehouse", "cms", "secret", &again)
          .ok());
  EXPECT_DOUBLE_EQ(again.total_ms(), 0.0);
  EXPECT_EQ(ral.NumHandles(), 1u);
}

TEST_F(RalFixture, PoolRalRejectsBadCredentials) {
  PoolRal ral(&catalog, &network, net::ServiceCosts::Default(), "local");
  EXPECT_EQ(ral.InitHandle("oracle://cern-tier1/warehouse", "cms", "wrong",
                           nullptr)
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(RalFixture, PoolRalRejectsMsSql) {
  PoolRal ral(&catalog, &network, net::ServiceCosts::Default(), "local");
  EXPECT_EQ(
      ral.InitHandle("mssql://caltech-tier2/mart_ms", "", "", nullptr).code(),
      StatusCode::kUnsupported);
}

TEST_F(RalFixture, PoolRalAliasedFieldsAndIntrospection) {
  PoolRal ral(&catalog, &network, net::ServiceCosts::Default(), "local");
  ASSERT_TRUE(
      ral.InitHandle("oracle://cern-tier1/warehouse", "cms", "secret", nullptr)
          .ok());
  auto rs = ral.Execute("oracle://cern-tier1/warehouse",
                        {"sensor AS probe"}, {"caldata"}, "", nullptr);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->columns[0], "probe");

  auto tables = ral.ListTables("oracle://cern-tier1/warehouse");
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(*tables, std::vector<std::string>{"caldata"});
  auto schema = ral.DescribeTable("oracle://cern-tier1/warehouse", "caldata");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 3u);
}

TEST_F(RalFixture, JdbcConnectionRunsVendorDialect) {
  net::Cost cost;
  auto conn = JdbcConnection::Open(&catalog, &network,
                                   net::ServiceCosts::Default(),
                                   "mssql://caltech-tier2/mart_ms", "", "",
                                   "local", &cost);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  ASSERT_TRUE((*conn)
                  ->ExecuteQuery("INSERT INTO conditions (id, v) VALUES "
                                 "(1, 1.5), (2, 2.5), (3, 3.5)",
                                 nullptr)
                  .ok());
  // MS-SQL dialect: TOP works, LIMIT does not.
  auto top = (*conn)->ExecuteQuery("SELECT TOP 2 id FROM conditions", nullptr);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_EQ(top->num_rows(), 2u);
  EXPECT_FALSE(
      (*conn)->ExecuteQuery("SELECT id FROM conditions LIMIT 2", nullptr).ok());
}

TEST_F(RalFixture, JdbcAuthEnforced) {
  auto conn = JdbcConnection::Open(&catalog, &network,
                                   net::ServiceCosts::Default(),
                                   "oracle://cern-tier1/warehouse", "cms",
                                   "nope", "local", nullptr);
  EXPECT_EQ(conn.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(RalFixture, ResultShippingCostScalesWithRows) {
  PoolRal ral(&catalog, &network, net::ServiceCosts::Default(), "local");
  ASSERT_TRUE(
      ral.InitHandle("oracle://cern-tier1/warehouse", "cms", "secret", nullptr)
          .ok());
  net::Cost one_row, all_rows;
  ASSERT_TRUE(ral.Execute("oracle://cern-tier1/warehouse", {"id"},
                          {"caldata"}, "id = 1", &one_row)
                  .ok());
  ASSERT_TRUE(ral.Execute("oracle://cern-tier1/warehouse",
                          {"id", "temp", "sensor"}, {"caldata"}, "", &all_rows)
                  .ok());
  EXPECT_GT(all_rows.total_ms(), one_row.total_ms());
}

}  // namespace
}  // namespace griddb::ral
