#include <gtest/gtest.h>

#include "griddb/net/network.h"

namespace griddb::net {
namespace {

TEST(LinkSpecTest, TransferScalesWithBytes) {
  LinkSpec lan = LinkSpec::Lan100Mbps();
  double one_kb = lan.TransferMs(1024);
  double one_mb = lan.TransferMs(1024 * 1024);
  EXPECT_GT(one_mb, one_kb);
  // 1 MB at ~11.875 MB/s effective is ~88 ms (plus latency).
  EXPECT_NEAR(one_mb, 0.3 + 1024.0 * 1024.0 / (100e6 * 0.95 / 8 / 1000), 1e-6);
}

TEST(LinkSpecTest, LatencyDominatesSmallMessages) {
  LinkSpec wan = LinkSpec::Wan();
  EXPECT_NEAR(wan.TransferMs(0), 45.0, 1e-9);
  EXPECT_GT(wan.TransferMs(1), 45.0);
}

TEST(NetworkTest, HostsAndLinks) {
  Network net;
  net.AddHost("cern-tier1");
  net.AddHost("caltech-tier2");
  EXPECT_TRUE(net.HasHost("cern-tier1"));
  EXPECT_FALSE(net.HasHost("fermilab"));
  EXPECT_EQ(net.Hosts().size(), 2u);

  EXPECT_TRUE(net.SetLink("cern-tier1", "caltech-tier2", LinkSpec::Wan()).ok());
  auto link = net.GetLink("cern-tier1", "caltech-tier2");
  ASSERT_TRUE(link.ok());
  EXPECT_DOUBLE_EQ(link->latency_ms, 45.0);
  // Symmetric.
  auto reverse = net.GetLink("caltech-tier2", "cern-tier1");
  ASSERT_TRUE(reverse.ok());
  EXPECT_DOUBLE_EQ(reverse->latency_ms, 45.0);
}

TEST(NetworkTest, DefaultLinkForUnknownPairs) {
  Network net;
  net.AddHost("a");
  net.AddHost("b");
  auto link = net.GetLink("a", "b");
  ASSERT_TRUE(link.ok());
  EXPECT_DOUBLE_EQ(link->bandwidth_mbps, 100.0);  // LAN default
  net.SetDefaultLink(LinkSpec::Wan());
  EXPECT_DOUBLE_EQ(net.GetLink("a", "b")->bandwidth_mbps, 10.0);
}

TEST(NetworkTest, LoopbackForSameHost) {
  Network net;
  net.AddHost("a");
  auto link = net.GetLink("a", "a");
  ASSERT_TRUE(link.ok());
  EXPECT_LT(link->latency_ms, 0.1);
  EXPECT_GT(link->bandwidth_mbps, 1000.0);
}

TEST(NetworkTest, UnknownHostErrors) {
  Network net;
  net.AddHost("a");
  EXPECT_FALSE(net.GetLink("a", "ghost").ok());
  EXPECT_FALSE(net.SetLink("a", "ghost", LinkSpec::Wan()).ok());
  EXPECT_FALSE(net.TransferMs("ghost", "a", 10).ok());
}

TEST(NetworkTest, RoundTripSumsBothDirections) {
  Network net;
  net.AddHost("a");
  net.AddHost("b");
  double rtt = net.RoundTripMs("a", "b", 1000, 5000).value();
  double forward = net.TransferMs("a", "b", 1000).value();
  double back = net.TransferMs("b", "a", 5000).value();
  EXPECT_DOUBLE_EQ(rtt, forward + back);
}

TEST(CostTest, SequentialAdds) {
  Cost cost;
  cost.AddMs(10);
  cost.AddMs(5.5);
  EXPECT_DOUBLE_EQ(cost.total_ms(), 15.5);
  Cost other;
  other.AddMs(4.5);
  cost.AddSequential(other);
  EXPECT_DOUBLE_EQ(cost.total_ms(), 20.0);
}

TEST(CostTest, ParallelTakesMax) {
  Cost a, b, c;
  a.AddMs(100);
  b.AddMs(250);
  c.AddMs(50);
  Cost total;
  total.AddMs(10);
  total.AddParallel({a, b, c});
  EXPECT_DOUBLE_EQ(total.total_ms(), 260.0);
}

TEST(CostTest, NegativeChargesIgnored) {
  Cost cost;
  cost.AddMs(-5);
  EXPECT_DOUBLE_EQ(cost.total_ms(), 0.0);
}

TEST(ServiceCostsTest, DefaultsCalibratedForTable1) {
  const ServiceCosts& costs = ServiceCosts::Default();
  // The distributed-query penalty must be dominated by connect/auth + RLS,
  // an order of magnitude above the local fast path (38 ms in Table 1).
  EXPECT_GT(costs.connect_auth_ms, 100.0);
  EXPECT_GT(costs.rls_lookup_ms, 30.0);
  EXPECT_LT(costs.db_execute_base_ms + costs.query_parse_ms, 38.0);
}

}  // namespace
}  // namespace griddb::net
