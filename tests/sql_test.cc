#include <gtest/gtest.h>

#include "griddb/sql/ast.h"
#include "griddb/sql/dialect.h"
#include "griddb/sql/lexer.h"
#include "griddb/sql/parser.h"
#include "griddb/sql/render.h"

namespace griddb::sql {
namespace {

const Dialect& Oracle() { return Dialect::For(Vendor::kOracle); }
const Dialect& MySql() { return Dialect::For(Vendor::kMySql); }
const Dialect& MsSql() { return Dialect::For(Vendor::kMsSql); }
const Dialect& Sqlite() { return Dialect::For(Vendor::kSqlite); }

// ---------- lexer ----------

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto tokens = Tokenize("SELECT energy FROM events");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);  // incl. kEnd
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "energy");
  EXPECT_TRUE((*tokens)[2].IsKeyword("FROM"));
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select From WhErE");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
}

TEST(LexerTest, NumberForms) {
  auto tokens = Tokenize("42 3.5 .5 1e3 2.5E-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 3.5);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 0.5);
  EXPECT_DOUBLE_EQ((*tokens)[3].float_value, 1000.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].float_value, 0.025);
}

TEST(LexerTest, StringLiteralsWithEscapedQuote) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, QuotedIdentifierStyles) {
  auto tokens = Tokenize("\"a\" `b` [c]");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].quote, QuoteStyle::kDouble);
  EXPECT_EQ((*tokens)[1].quote, QuoteStyle::kBacktick);
  EXPECT_EQ((*tokens)[2].quote, QuoteStyle::kBracket);
  EXPECT_EQ((*tokens)[2].text, "c");
}

TEST(LexerTest, Comments) {
  auto tokens = Tokenize("SELECT -- trailing\n 1 /* block */ + 2");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[1].int_value, 1);
  EXPECT_TRUE((*tokens)[2].IsOperator("+"));
}

TEST(LexerTest, NotEqualsNormalized) {
  auto tokens = Tokenize("a != b <> c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsOperator("<>"));
  EXPECT_TRUE((*tokens)[3].IsOperator("<>"));
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("SELECT ? FROM t").ok());
}

// ---------- dialect ----------

TEST(DialectTest, VendorNames) {
  EXPECT_STREQ(VendorName(Vendor::kOracle), "oracle");
  EXPECT_EQ(VendorFromName("MySQL").value(), Vendor::kMySql);
  EXPECT_EQ(VendorFromName("sqlserver").value(), Vendor::kMsSql);
  EXPECT_FALSE(VendorFromName("postgres").ok());
}

TEST(DialectTest, QuoteIdentifierOnlyWhenNeeded) {
  EXPECT_EQ(MySql().QuoteIdentifier("energy"), "energy");
  EXPECT_EQ(MySql().QuoteIdentifier("weird col"), "`weird col`");
  EXPECT_EQ(MsSql().QuoteIdentifier("weird col"), "[weird col]");
  EXPECT_EQ(Oracle().QuoteIdentifier("weird col"), "\"weird col\"");
  // Reserved words are quoted.
  EXPECT_EQ(Sqlite().QuoteIdentifier("select"), "\"select\"");
  // Leading digit forces quoting.
  EXPECT_EQ(MySql().QuoteIdentifier("1abc"), "`1abc`");
}

TEST(DialectTest, TypeVocabularyIsVendorSpecific) {
  EXPECT_EQ(Oracle().TypeFromName("VARCHAR2(4000)").value(),
            storage::DataType::kString);
  EXPECT_FALSE(MySql().TypeFromName("VARCHAR2(4000)").ok());
  EXPECT_EQ(MySql().TypeFromName("TINYINT(1)").value(),
            storage::DataType::kInt64);
  EXPECT_EQ(MsSql().TypeFromName("BIT").value(), storage::DataType::kBool);
  EXPECT_EQ(Sqlite().TypeFromName("blob").value(), storage::DataType::kString);
  // Portable core accepted everywhere.
  for (const Dialect* d : {&Oracle(), &MySql(), &MsSql(), &Sqlite()}) {
    EXPECT_EQ(d->TypeFromName("INTEGER").value(), storage::DataType::kInt64);
    EXPECT_EQ(d->TypeFromName("FLOAT").value(), storage::DataType::kDouble);
  }
}

TEST(DialectTest, QuoteAcceptance) {
  EXPECT_TRUE(Oracle().AcceptsQuote(QuoteStyle::kDouble));
  EXPECT_FALSE(Oracle().AcceptsQuote(QuoteStyle::kBacktick));
  EXPECT_TRUE(MySql().AcceptsQuote(QuoteStyle::kBacktick));
  EXPECT_FALSE(MySql().AcceptsQuote(QuoteStyle::kBracket));
  EXPECT_TRUE(Sqlite().AcceptsQuote(QuoteStyle::kBracket));
}

// ---------- parser: SELECT ----------

TEST(ParserTest, SimpleSelect) {
  auto select = ParseSelect("SELECT a, b FROM t WHERE a > 5", Sqlite());
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ((*select)->items.size(), 2u);
  EXPECT_EQ((*select)->from[0].table, "t");
  ASSERT_NE((*select)->where, nullptr);
}

TEST(ParserTest, SelectStarAndQualifiedStar) {
  auto select = ParseSelect("SELECT *, t.* FROM t", Sqlite());
  ASSERT_TRUE(select.ok());
  EXPECT_EQ((*select)->items[0].expr->kind, Expr::Kind::kStar);
  EXPECT_EQ((*select)->items[1].expr->column_ref.table, "t");
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto select = ParseSelect("SELECT a AS x, b y FROM t u", Sqlite());
  ASSERT_TRUE(select.ok());
  EXPECT_EQ((*select)->items[0].alias, "x");
  EXPECT_EQ((*select)->items[1].alias, "y");
  EXPECT_EQ((*select)->from[0].alias, "u");
  EXPECT_EQ((*select)->from[0].EffectiveName(), "u");
}

TEST(ParserTest, JoinForms) {
  auto select = ParseSelect(
      "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y "
      "CROSS JOIN d",
      Sqlite());
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  ASSERT_EQ((*select)->joins.size(), 3u);
  EXPECT_EQ((*select)->joins[0].type, JoinType::kInner);
  EXPECT_EQ((*select)->joins[1].type, JoinType::kLeft);
  EXPECT_EQ((*select)->joins[2].type, JoinType::kCross);
  EXPECT_EQ((*select)->joins[2].on, nullptr);
  EXPECT_EQ((*select)->AllTables().size(), 4u);
}

TEST(ParserTest, CommaJoinList) {
  auto select = ParseSelect("SELECT * FROM a, b, c", Sqlite());
  ASSERT_TRUE(select.ok());
  EXPECT_EQ((*select)->from.size(), 3u);
}

TEST(ParserTest, GroupByHavingOrderBy) {
  auto select = ParseSelect(
      "SELECT tag, COUNT(*) AS n FROM events GROUP BY tag "
      "HAVING COUNT(*) > 2 ORDER BY n DESC, tag",
      Sqlite());
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ((*select)->group_by.size(), 1u);
  ASSERT_NE((*select)->having, nullptr);
  ASSERT_EQ((*select)->order_by.size(), 2u);
  EXPECT_FALSE((*select)->order_by[0].ascending);
  EXPECT_TRUE((*select)->order_by[1].ascending);
}

TEST(ParserTest, PredicateForms) {
  auto select = ParseSelect(
      "SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT IN (4) "
      "AND c BETWEEN 1 AND 10 AND d NOT BETWEEN 2 AND 3 "
      "AND e LIKE 'x%' AND f NOT LIKE '_y' AND g IS NULL AND h IS NOT NULL",
      Sqlite());
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  std::vector<const Expr*> conjuncts = SplitConjuncts((*select)->where.get());
  EXPECT_EQ(conjuncts.size(), 8u);
  EXPECT_EQ(conjuncts[0]->kind, Expr::Kind::kIn);
  EXPECT_TRUE(conjuncts[1]->negated);
  EXPECT_EQ(conjuncts[2]->kind, Expr::Kind::kBetween);
  EXPECT_EQ(conjuncts[4]->kind, Expr::Kind::kLike);
  EXPECT_EQ(conjuncts[6]->kind, Expr::Kind::kIsNull);
  EXPECT_TRUE(conjuncts[7]->negated);
}

TEST(ParserTest, OperatorPrecedence) {
  // 1 + 2 * 3 = 7, not 9.
  auto expr = ParseExpression("1 + 2 * 3", Sqlite());
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->binary_op, BinaryOp::kAdd);
  EXPECT_EQ((*expr)->children[1]->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, AndBindsTighterThanOr) {
  auto expr = ParseExpression("a OR b AND c", Sqlite());
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->binary_op, BinaryOp::kOr);
  EXPECT_EQ((*expr)->children[1]->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, FunctionCalls) {
  auto expr = ParseExpression("COUNT(DISTINCT tag)", Sqlite());
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, Expr::Kind::kFunction);
  EXPECT_EQ((*expr)->function_name, "COUNT");
  EXPECT_TRUE((*expr)->distinct_arg);
}

// ---------- parser: dialect-specific limits ----------

TEST(ParserTest, LimitOffsetOnlyInMySqlAndSqlite) {
  EXPECT_TRUE(ParseSelect("SELECT a FROM t LIMIT 5 OFFSET 2", MySql()).ok());
  EXPECT_TRUE(ParseSelect("SELECT a FROM t LIMIT 5", Sqlite()).ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT 5", Oracle()).ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT 5", MsSql()).ok());
  auto select = ParseSelect("SELECT a FROM t LIMIT 5 OFFSET 2", MySql());
  EXPECT_EQ((*select)->limit, 5);
  EXPECT_EQ((*select)->offset, 2);
}

TEST(ParserTest, TopOnlyInMsSql) {
  auto select = ParseSelect("SELECT TOP 3 a FROM t", MsSql());
  ASSERT_TRUE(select.ok());
  EXPECT_EQ((*select)->limit, 3);
  EXPECT_FALSE(ParseSelect("SELECT TOP 3 a FROM t", MySql()).ok());
  EXPECT_FALSE(ParseSelect("SELECT TOP 3 a FROM t", Oracle()).ok());
}

TEST(ParserTest, RownumOnlyInOracle) {
  auto select =
      ParseSelect("SELECT a FROM t WHERE a > 2 AND ROWNUM <= 7", Oracle());
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ((*select)->limit, 7);
  // The ROWNUM conjunct is removed from WHERE.
  std::vector<const Expr*> conjuncts = SplitConjuncts((*select)->where.get());
  EXPECT_EQ(conjuncts.size(), 1u);
  EXPECT_FALSE(
      ParseSelect("SELECT a FROM t WHERE ROWNUM <= 7", MySql()).ok());
}

TEST(ParserTest, RownumStrictLessThan) {
  auto select = ParseSelect("SELECT a FROM t WHERE ROWNUM < 4", Oracle());
  ASSERT_TRUE(select.ok());
  EXPECT_EQ((*select)->limit, 3);
  EXPECT_EQ((*select)->where, nullptr);
}

TEST(ParserTest, UnsupportedRownumUsageRejected) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE ROWNUM = 3", Oracle()).ok());
  EXPECT_FALSE(
      ParseSelect("SELECT a FROM t WHERE ROWNUM + 1 < 3", Oracle()).ok());
}

TEST(ParserTest, QuotedIdentifierAcceptanceByDialect) {
  EXPECT_TRUE(ParseSelect("SELECT `a` FROM `t`", MySql()).ok());
  EXPECT_FALSE(ParseSelect("SELECT `a` FROM `t`", Oracle()).ok());
  EXPECT_TRUE(ParseSelect("SELECT [a] FROM [t]", MsSql()).ok());
  EXPECT_FALSE(ParseSelect("SELECT [a] FROM [t]", MySql()).ok());
  EXPECT_TRUE(ParseSelect("SELECT \"a\" FROM \"t\"", Oracle()).ok());
}

// ---------- parser: DDL / DML ----------

TEST(ParserTest, CreateTable) {
  auto stmt = ParseStatement(
      "CREATE TABLE events (event_id BIGINT PRIMARY KEY, energy DOUBLE, "
      "tag VARCHAR(32) NOT NULL, run_id INT, "
      "FOREIGN KEY (run_id) REFERENCES runs (id))",
      MySql());
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& create = *std::get<std::unique_ptr<CreateTableStmt>>(*stmt);
  EXPECT_EQ(create.table, "events");
  ASSERT_EQ(create.columns.size(), 4u);
  EXPECT_TRUE(create.columns[0].primary_key);
  EXPECT_TRUE(create.columns[2].not_null);
  EXPECT_EQ(create.columns[2].type_name, "VARCHAR(32)");
  ASSERT_EQ(create.foreign_keys.size(), 1u);
  EXPECT_EQ(create.foreign_keys[0].referenced_table, "runs");
}

TEST(ParserTest, CreateTableIfNotExistsAndTableLevelPk) {
  auto stmt = ParseStatement(
      "CREATE TABLE IF NOT EXISTS t (a INT, b INT, PRIMARY KEY (a, b))",
      Sqlite());
  ASSERT_TRUE(stmt.ok());
  const auto& create = *std::get<std::unique_ptr<CreateTableStmt>>(*stmt);
  EXPECT_TRUE(create.if_not_exists);
  EXPECT_EQ(create.primary_key.size(), 2u);
}

TEST(ParserTest, CreateView) {
  auto stmt =
      ParseStatement("CREATE VIEW v AS SELECT a FROM t WHERE a > 1", Sqlite());
  ASSERT_TRUE(stmt.ok());
  const auto& view = *std::get<std::unique_ptr<CreateViewStmt>>(*stmt);
  EXPECT_EQ(view.view, "v");
  ASSERT_NE(view.select, nullptr);
}

TEST(ParserTest, InsertValuesMultiRow) {
  auto stmt = ParseStatement(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')", Sqlite());
  ASSERT_TRUE(stmt.ok());
  const auto& insert = *std::get<std::unique_ptr<InsertStmt>>(*stmt);
  EXPECT_EQ(insert.columns.size(), 2u);
  EXPECT_EQ(insert.rows.size(), 2u);
}

TEST(ParserTest, InsertSelect) {
  auto stmt = ParseStatement("INSERT INTO t SELECT a, b FROM s", Sqlite());
  ASSERT_TRUE(stmt.ok());
  const auto& insert = *std::get<std::unique_ptr<InsertStmt>>(*stmt);
  ASSERT_NE(insert.select, nullptr);
}

TEST(ParserTest, UpdateDeleteDrop) {
  EXPECT_TRUE(
      ParseStatement("UPDATE t SET a = a + 1, b = 'x' WHERE a < 3", Sqlite()).ok());
  EXPECT_TRUE(ParseStatement("DELETE FROM t WHERE a = 1", Sqlite()).ok());
  EXPECT_TRUE(ParseStatement("DROP TABLE IF EXISTS t", Sqlite()).ok());
  auto drop = ParseStatement("DROP VIEW v", Sqlite());
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(std::get<std::unique_ptr<DropStmt>>(*drop)->target,
            DropStmt::Target::kView);
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(ParseSelect("SELECT a FROM t;", Sqlite()).ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t garbage garbage", Sqlite()).ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t; SELECT b FROM u", Sqlite()).ok());
}

TEST(ParserTest, SearchedCaseExpression) {
  auto result = ParseSelect(
      "SELECT CASE WHEN a > 1 THEN 'big' WHEN a > 0 THEN 'small' "
      "ELSE 'neg' END FROM t",
      Sqlite());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Expr& expr = *(*result)->items[0].expr;
  EXPECT_EQ(expr.kind, Expr::Kind::kCase);
  EXPECT_FALSE(expr.case_has_operand);
  EXPECT_TRUE(expr.case_has_else);
  EXPECT_EQ(expr.children.size(), 5u);  // 2x (when,then) + else
}

TEST(ParserTest, SimpleCaseExpression) {
  auto result = ParseSelect(
      "SELECT CASE tag WHEN 'muon' THEN 1 WHEN 'electron' THEN 2 END FROM t",
      Sqlite());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Expr& expr = *(*result)->items[0].expr;
  EXPECT_TRUE(expr.case_has_operand);
  EXPECT_FALSE(expr.case_has_else);
  EXPECT_EQ(expr.children.size(), 5u);  // operand + 2x (when,then)
}

TEST(ParserTest, CaseErrors) {
  EXPECT_FALSE(ParseSelect("SELECT CASE END FROM t", Sqlite()).ok());
  EXPECT_FALSE(
      ParseSelect("SELECT CASE WHEN a THEN 1 FROM t", Sqlite()).ok());
  EXPECT_FALSE(ParseSelect("SELECT CASE a THEN 1 END FROM t", Sqlite()).ok());
}

TEST(RenderTest, CaseRoundTrips) {
  for (const char* query :
       {"SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END AS label FROM t",
        "SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t"}) {
    auto parsed = ParseSelect(query, Sqlite());
    ASSERT_TRUE(parsed.ok()) << query;
    std::string rendered = RenderSelect(**parsed, Sqlite());
    auto reparsed = ParseSelect(rendered, Sqlite());
    ASSERT_TRUE(reparsed.ok()) << rendered;
    EXPECT_EQ(RenderSelect(**reparsed, Sqlite()), rendered);
  }
}

// ---------- render ----------

TEST(RenderTest, SelectRoundTripsThroughParser) {
  const char* query =
      "SELECT a, SUM(b) AS total FROM t JOIN u ON t.id = u.id "
      "WHERE a > 1 GROUP BY a HAVING SUM(b) > 10 ORDER BY total DESC";
  auto parsed = ParseSelect(query, Sqlite());
  ASSERT_TRUE(parsed.ok());
  std::string rendered = RenderSelect(**parsed, Sqlite());
  auto reparsed = ParseSelect(rendered, Sqlite());
  ASSERT_TRUE(reparsed.ok()) << "rendered: " << rendered << "\n"
                             << reparsed.status().ToString();
  EXPECT_EQ(RenderSelect(**reparsed, Sqlite()), rendered);
}

TEST(RenderTest, LimitRenderedPerDialect) {
  auto parsed = ParseSelect("SELECT a FROM t LIMIT 10", Sqlite());
  ASSERT_TRUE(parsed.ok());
  const SelectStmt& stmt = **parsed;
  EXPECT_NE(RenderSelect(stmt, MySql()).find("LIMIT 10"), std::string::npos);
  EXPECT_NE(RenderSelect(stmt, MsSql()).find("SELECT TOP 10"),
            std::string::npos);
  EXPECT_NE(RenderSelect(stmt, Oracle()).find("ROWNUM <= 10"),
            std::string::npos);
}

TEST(RenderTest, RownumCombinesWithExistingWhere) {
  auto parsed = ParseSelect("SELECT a FROM t WHERE a > 1 LIMIT 5", MySql());
  ASSERT_TRUE(parsed.ok());
  std::string oracle_text = RenderSelect(**parsed, Oracle());
  // Both the predicate and the ROWNUM clause survive, and Oracle reparses it.
  EXPECT_NE(oracle_text.find("ROWNUM <= 5"), std::string::npos);
  auto reparsed = ParseSelect(oracle_text, Oracle());
  ASSERT_TRUE(reparsed.ok()) << oracle_text;
  EXPECT_EQ((*reparsed)->limit, 5);
  ASSERT_NE((*reparsed)->where, nullptr);
}

TEST(RenderTest, EachDialectReparsesItsOwnRendering) {
  const char* query =
      "SELECT t.a, u.b FROM t JOIN u ON t.id = u.id WHERE t.a BETWEEN 1 AND 9 "
      "ORDER BY t.a LIMIT 4";
  auto canonical = ParseSelect(query, Sqlite());
  ASSERT_TRUE(canonical.ok());
  for (Vendor vendor : {Vendor::kOracle, Vendor::kMySql, Vendor::kMsSql,
                        Vendor::kSqlite}) {
    const Dialect& dialect = Dialect::For(vendor);
    std::string rendered = RenderSelect(**canonical, dialect);
    auto reparsed = ParseSelect(rendered, dialect);
    EXPECT_TRUE(reparsed.ok()) << dialect.name() << ": " << rendered << "\n"
                               << reparsed.status().ToString();
    if (reparsed.ok()) {
      EXPECT_EQ((*reparsed)->limit, 4);
    }
  }
}

TEST(RenderTest, IdentifierQuotingPerDialect) {
  auto parsed = ParseSelect("SELECT \"weird col\" FROM \"my table\"", Sqlite());
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(RenderSelect(**parsed, MySql()).find("`weird col`"),
            std::string::npos);
  EXPECT_NE(RenderSelect(**parsed, MsSql()).find("[weird col]"),
            std::string::npos);
  EXPECT_NE(RenderSelect(**parsed, Oracle()).find("\"weird col\""),
            std::string::npos);
}

TEST(RenderTest, InsertAndCreateTable) {
  auto create = ParseStatement(
      "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(10))", MySql());
  ASSERT_TRUE(create.ok());
  std::string ddl = RenderCreateTable(
      *std::get<std::unique_ptr<CreateTableStmt>>(*create), MySql());
  EXPECT_TRUE(ParseStatement(ddl, MySql()).ok()) << ddl;

  auto insert =
      ParseStatement("INSERT INTO t (a, b) VALUES (1, 'it''s')", MySql());
  ASSERT_TRUE(insert.ok());
  std::string dml =
      RenderInsert(*std::get<std::unique_ptr<InsertStmt>>(*insert), MySql());
  EXPECT_TRUE(ParseStatement(dml, MySql()).ok()) << dml;
}

// ---------- AST helpers ----------

TEST(AstTest, ConjunctionOfAndSplit) {
  std::vector<ExprPtr> preds;
  preds.push_back(MakeBinary(BinaryOp::kGt, MakeColumn("", "a"),
                             MakeLiteral(storage::Value(int64_t{1}))));
  preds.push_back(MakeBinary(BinaryOp::kLt, MakeColumn("", "a"),
                             MakeLiteral(storage::Value(int64_t{9}))));
  ExprPtr conj = ConjunctionOf(std::move(preds));
  ASSERT_NE(conj, nullptr);
  EXPECT_EQ(SplitConjuncts(conj.get()).size(), 2u);
  EXPECT_EQ(ConjunctionOf({}), nullptr);
}

TEST(AstTest, CollectColumnRefs) {
  auto expr = ParseExpression("t.a + u.b * 2 - f(c)", Sqlite());
  ASSERT_TRUE(expr.ok());
  std::vector<const ColumnRef*> refs;
  CollectColumnRefs(**expr, refs);
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0]->ToString(), "t.a");
  EXPECT_EQ(refs[2]->ToString(), "c");
}

TEST(AstTest, SelectCloneIsDeep) {
  auto parsed = ParseSelect(
      "SELECT a AS x FROM t JOIN u ON t.id = u.id WHERE a > 1 "
      "GROUP BY a HAVING COUNT(*) > 0 ORDER BY x LIMIT 3",
      Sqlite());
  ASSERT_TRUE(parsed.ok());
  auto clone = (*parsed)->Clone();
  std::string original = RenderSelect(**parsed, Sqlite());
  std::string copied = RenderSelect(*clone, Sqlite());
  EXPECT_EQ(original, copied);
  // Mutating the clone does not affect the original.
  clone->limit = 99;
  EXPECT_EQ(RenderSelect(**parsed, Sqlite()), original);
}

}  // namespace
}  // namespace griddb::sql
