#include <gtest/gtest.h>

#include "griddb/xml/xml.h"

namespace griddb::xml {
namespace {

TEST(XmlParseTest, SimpleElement) {
  auto doc = Parse("<root/>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ((*doc)->name, "root");
  EXPECT_TRUE((*doc)->children.empty());
}

TEST(XmlParseTest, TextContent) {
  auto doc = Parse("<greeting>hello world</greeting>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->text, "hello world");
}

TEST(XmlParseTest, Attributes) {
  auto doc = Parse(R"(<db name="cern_tier1" vendor='oracle'/>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->Attribute("name"), "cern_tier1");
  EXPECT_EQ((*doc)->Attribute("vendor"), "oracle");
  EXPECT_TRUE((*doc)->HasAttribute("name"));
  EXPECT_FALSE((*doc)->HasAttribute("missing"));
  EXPECT_EQ((*doc)->Attribute("missing"), "");
}

TEST(XmlParseTest, NestedChildren) {
  auto doc = Parse(
      "<database><table name=\"t1\"/><table name=\"t2\"/>"
      "<owner>cms</owner></database>");
  ASSERT_TRUE(doc.ok());
  const Node& root = **doc;
  EXPECT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.Children("table").size(), 2u);
  EXPECT_EQ(root.ChildText("owner"), "cms");
  EXPECT_EQ(root.ChildText("absent", "dflt"), "dflt");
  ASSERT_NE(root.Child("table"), nullptr);
  EXPECT_EQ(root.Child("table")->Attribute("name"), "t1");
  EXPECT_EQ(root.Child("nope"), nullptr);
}

TEST(XmlParseTest, DeclarationAndComments) {
  auto doc = Parse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!-- prolog comment -->\n"
      "<root><!-- inner --><x>1</x></root>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->ChildText("x"), "1");
}

TEST(XmlParseTest, EntityDecoding) {
  auto doc = Parse("<v a=\"&lt;&gt;&amp;&quot;&apos;\">&lt;tag&gt;</v>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->Attribute("a"), "<>&\"'");
  EXPECT_EQ((*doc)->text, "<tag>");
}

TEST(XmlParseTest, NumericCharacterReferences) {
  auto doc = Parse("<v>&#65;&#x42;</v>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->text, "AB");
}

TEST(XmlParseTest, Cdata) {
  auto doc = Parse("<q><![CDATA[a < b && c]]></q>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->text, "a < b && c");
}

TEST(XmlParseTest, RejectsMismatchedTags) {
  EXPECT_FALSE(Parse("<a><b></a></b>").ok());
}

TEST(XmlParseTest, RejectsUnterminated) {
  EXPECT_FALSE(Parse("<a>").ok());
  EXPECT_FALSE(Parse("<a attr=>").ok());
  EXPECT_FALSE(Parse("<a attr=\"x>").ok());
}

TEST(XmlParseTest, RejectsTrailingContent) {
  EXPECT_FALSE(Parse("<a/><b/>").ok());
}

TEST(XmlParseTest, RejectsUnknownEntity) {
  EXPECT_FALSE(Parse("<a>&nbsp;</a>").ok());
}

TEST(XmlParseTest, ErrorsCarryLineNumbers) {
  auto result = Parse("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
}

TEST(XmlWriteTest, RoundTrip) {
  Node root("upperXSpec");
  root.attributes["version"] = "1.0";
  Node& db = root.AddChild("database");
  db.attributes["name"] = "tier2_mysql";
  db.attributes["driver"] = "mysql";
  db.AddTextChild("url", "mysql://caltech/marts?user=cms");
  root.AddTextChild("note", "a < b & c");

  std::string text = Write(root);
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Node& copy = **parsed;
  EXPECT_EQ(copy.name, "upperXSpec");
  EXPECT_EQ(copy.Attribute("version"), "1.0");
  ASSERT_NE(copy.Child("database"), nullptr);
  EXPECT_EQ(copy.Child("database")->ChildText("url"),
            "mysql://caltech/marts?user=cms");
  EXPECT_EQ(copy.ChildText("note"), "a < b & c");
}

TEST(XmlWriteTest, EscapesSpecials) {
  EXPECT_EQ(Escape("<a b=\"c\">&'"), "&lt;a b=&quot;c&quot;&gt;&amp;&apos;");
}

TEST(XmlWriteTest, CompactMode) {
  Node root("r");
  root.AddTextChild("x", "1");
  WriteOptions options;
  options.pretty = false;
  options.declaration = false;
  EXPECT_EQ(Write(root, options), "<r><x>1</x></r>");
}

TEST(XmlNodeTest, CloneIsDeep) {
  Node root("a");
  root.AddTextChild("b", "1");
  auto copy = root.Clone();
  root.children[0]->text = "2";
  EXPECT_EQ(copy->ChildText("b"), "1");
}

TEST(XmlParseTest, WhitespaceOnlyTextIsTrimmed) {
  auto doc = Parse("<a>\n  <b>x</b>\n</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->text, "");
}

}  // namespace
}  // namespace griddb::xml
