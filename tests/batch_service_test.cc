// Crash-safe asynchronous batch-query service: a submitted job survives
// a coordinator kill at ANY point of its checkpoint protocol and, after
// restart recovery, completes byte-identical to an uninterrupted run
// with zero duplicated sub-query work past the last durable checkpoint.
// Also covered: the RPC surface (batchSubmit/Poll/Cancel/Fetch), tenant
// visibility and scratch-mart RBAC, cancel durability, terminal-state
// stability across restarts, torn journal tails, and follow-up queries
// over materialized results.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "griddb/core/jclarens_server.h"
#include "griddb/core/rbac.h"
#include "griddb/storage/fault_fs.h"
#include "griddb/storage/result_set.h"
#include "griddb/storage/stage_file.h"
#include "griddb/util/fs.h"
#include "griddb/util/journal.h"
#include "griddb/util/rng.h"

namespace griddb::core {
namespace {

constexpr char kServerUrl[] = "clarens://server-a:8080/clarens";
constexpr int kEventRows = 200;

/// Canonical bytes of a result set, for byte-identity assertions.
std::string Canonical(const storage::ResultSet& rs) {
  std::string out;
  for (const std::string& column : rs.columns) out += column + "|";
  out += "\n";
  out += storage::EncodeRowBlock(rs.rows);
  return out;
}

/// Checkpoint records per chunk id in an on-disk journal, for `job`.
/// The crash-recovery invariant reads straight off this map: every chunk
/// id appearing EXACTLY once means no durable progress was re-executed
/// and no lost progress was re-run more than once.
std::map<size_t, int> CheckpointCounts(const std::string& journal_dir,
                                       uint64_t job) {
  std::map<size_t, int> counts;
  auto replay = util::ReadJournal(journal_dir + "/batch_jobs.journal");
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  if (!replay.ok()) return counts;
  for (const std::string& record : replay->records) {
    std::istringstream in(record);
    std::string kind;
    std::getline(in, kind);
    if (kind != "checkpoint") continue;
    uint64_t id = 0;
    size_t chunk = 0;
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream fields(line);
      std::string key;
      fields >> key;
      if (key == "id") fields >> id;
      if (key == "chunk") fields >> chunk;
    }
    if (id == job) ++counts[chunk];
  }
  return counts;
}

/// One coordinator plus its source database. MakeServer() destroys the
/// JClarensServer (killing the batch manager exactly where SimulateCrash
/// froze it) and builds a fresh one over the same journal directory, so
/// the new incarnation sees only what a real process restart would: the
/// on-disk journal and stage files.
class BatchServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("griddb_batch_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);

    transport_ = std::make_unique<rpc::Transport>(&network_,
                                                  net::ServiceCosts::Default());
    for (const char* h : {"server-a", "client"}) network_.AddHost(h);

    db_ = std::make_unique<engine::Database>("db_a", sql::Vendor::kMySql);
    ASSERT_TRUE(db_->Execute("CREATE TABLE EVENTS (ID INT PRIMARY KEY, "
                             "V DOUBLE)")
                    .ok());
    for (int i = 1; i <= kEventRows; ++i) {
      ASSERT_TRUE(db_->Execute("INSERT INTO EVENTS (ID, V) VALUES (" +
                               std::to_string(i) + ", " +
                               std::to_string(i * 0.5) + ")")
                      .ok());
    }
    ASSERT_TRUE(
        catalog_.Add({"mysql://server-a/db_a", db_.get(), "server-a", "", ""})
            .ok());

    rbac_ = std::make_shared<RbacCatalog>();
    ASSERT_TRUE(rbac_->CreateUser(RbacCatalog::kAnonymousTenant).ok());
    ASSERT_TRUE(rbac_->GrantTable(RbacCatalog::kAnonymousTenant,
                                  RbacCatalog::kAllTables)
                    .ok());
    ASSERT_TRUE(rbac_->CreateUser("atlas").ok());
    ASSERT_TRUE(rbac_->GrantTable("atlas", "events").ok());
    ASSERT_TRUE(rbac_->CreateUser("cms").ok());

    MakeServer();
  }

  void TearDown() override {
    server_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  BatchConfig BatchDefaults() const {
    BatchConfig batch;
    batch.journal_dir = (dir_ / "batch").string();
    batch.chunk_rows = 32;
    batch.workers = 2;
    batch.autostart = false;  // registered databases come first
    return batch;
  }

  void MakeServer(BatchConfig batch = {}) {
    if (batch.journal_dir.empty()) batch = BatchDefaults();
    DataAccessConfig config;
    config.server_name = "jclarens-a";
    config.host = "server-a";
    config.server_url = kServerUrl;
    config.rbac = rbac_;
    server_.reset();  // old incarnation dies before the new one opens
    server_ = std::make_unique<JClarensServer>(config, &catalog_,
                                               transport_.get(), nullptr,
                                               std::move(batch));
    ASSERT_TRUE(
        server_->service().RegisterLiveDatabase("mysql://server-a/db_a", "")
            .ok());
    ASSERT_NE(server_->batch(), nullptr);
    server_->batch()->Start();
  }

  void Restart() { MakeServer(); }

  BatchJobManager& batch() { return *server_->batch(); }

  /// All pages of a done job, concatenated.
  storage::ResultSet FetchAll(const std::string& tenant, uint64_t id) {
    storage::ResultSet all;
    for (size_t page = 0;; ++page) {
      auto rs = batch().Fetch(tenant, id, page);
      EXPECT_TRUE(rs.ok()) << rs.status().ToString();
      if (!rs.ok()) break;
      if (all.columns.empty()) all.columns = rs->columns;
      if (rs->rows.empty()) break;
      for (auto& row : rs->rows) all.rows.push_back(std::move(row));
    }
    return all;
  }

  std::string JournalDir() const { return (dir_ / "batch").string(); }
  std::string JournalPath() const {
    return JournalDir() + "/batch_jobs.journal";
  }

  std::filesystem::path dir_;
  net::Network network_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<engine::Database> db_;
  ral::DatabaseCatalog catalog_;
  std::shared_ptr<RbacCatalog> rbac_;
  std::unique_ptr<JClarensServer> server_;
};

// ---------- happy path ----------

TEST_F(BatchServiceFixture, PageableScanRunsToDoneAndFetchesAllPages) {
  auto id = batch().Submit("atlas", "SELECT ID, V FROM EVENTS");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));

  auto info = batch().Poll("atlas", *id);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->state, BatchJobState::kDone) << info->error;
  EXPECT_EQ(info->rows, static_cast<size_t>(kEventRows));
  EXPECT_TRUE(info->total_known);
  // 200 rows at 32/chunk = 7 chunks (6 full + 1 partial).
  EXPECT_EQ(info->total_chunks, 7u);
  EXPECT_FALSE(info->recovered);
  EXPECT_EQ(info->result_table, "batch_" + std::to_string(*id));
  EXPECT_EQ(info->scratch_mart, "scratch_atlas");

  storage::ResultSet all = FetchAll("atlas", *id);
  EXPECT_EQ(all.rows.size(), static_cast<size_t>(kEventRows));

  // The materialized result matches the interactive answer bytes.
  QueryContext ctx;
  ctx.tenant = "atlas";
  auto direct = server_->service().Query("SELECT ID, V FROM EVENTS", nullptr,
                                         0, "", std::move(ctx));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(storage::EncodeRowBlock(all.rows),
            storage::EncodeRowBlock(direct->rows));

  // Every chunk checkpointed exactly once on the undisturbed path too.
  std::map<size_t, int> counts = CheckpointCounts(JournalDir(), *id);
  EXPECT_EQ(counts.size(), 7u);
  for (const auto& [chunk, count] : counts) {
    EXPECT_EQ(count, 1) << "chunk " << chunk;
  }
}

TEST_F(BatchServiceFixture, RpcSurfaceSubmitPollFetchRoundTrip) {
  rpc::RpcClient client(transport_.get(), "client", kServerUrl);
  client.set_tenant("atlas");
  net::Cost cost;

  rpc::XmlRpcArray submit_params;
  submit_params.emplace_back(std::string("SELECT ID, V FROM EVENTS"));
  auto submitted = client.Call("dataaccess.batchSubmit", submit_params, &cost);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto id = submitted->AsInt();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(batch().WaitForTerminal(static_cast<uint64_t>(*id), 30.0));

  rpc::XmlRpcArray poll_params;
  poll_params.emplace_back(*id);
  auto polled = client.Call("dataaccess.batchPoll", poll_params, &cost);
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  auto poll_struct = polled->AsStruct();
  ASSERT_TRUE(poll_struct.ok());
  EXPECT_EQ((*poll_struct)->at("state").AsString().value_or(""), "done");
  EXPECT_EQ((*poll_struct)->at("rows").AsInt().value_or(0), kEventRows);

  rpc::XmlRpcArray fetch_params;
  fetch_params.emplace_back(*id);
  fetch_params.emplace_back(int64_t{0});
  auto fetched = client.Call("dataaccess.batchFetch", fetch_params, &cost);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  auto fetch_struct = fetched->AsStruct();
  ASSERT_TRUE(fetch_struct.ok());
  EXPECT_EQ((*fetch_struct)->at("rows").AsInt().value_or(0), kEventRows);

  // A wrong id answers NotFound across the wire, same as in-process.
  rpc::XmlRpcArray bogus;
  bogus.emplace_back(int64_t{999});
  auto missing = client.Call("dataaccess.batchPoll", bogus, &cost);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(BatchServiceFixture, NonPageableAggregateMaterializes) {
  // COUNT() cannot be paged with LIMIT/OFFSET; it runs single-shot and
  // is chunked only at materialization time.
  auto id = batch().Submit("atlas", "SELECT COUNT(ID) AS N FROM EVENTS");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
  auto info = batch().Poll("atlas", *id);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->state, BatchJobState::kDone) << info->error;
  EXPECT_EQ(info->rows, 1u);
  storage::ResultSet all = FetchAll("atlas", *id);
  ASSERT_EQ(all.rows.size(), 1u);
  ASSERT_EQ(all.rows[0].size(), 1u);
  EXPECT_EQ(all.rows[0][0].AsInt64().value_or(0), kEventRows);
}

TEST_F(BatchServiceFixture, EmptyResultStillMaterializesSchema) {
  auto id = batch().Submit("atlas", "SELECT ID, V FROM EVENTS WHERE ID < 0");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
  auto info = batch().Poll("atlas", *id);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->state, BatchJobState::kDone) << info->error;
  EXPECT_EQ(info->rows, 0u);
  auto page = batch().Fetch("atlas", *id, 0);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->rows.size(), 0u);
  EXPECT_EQ(page->columns.size(), 2u);  // schema survived an empty scan
}

TEST_F(BatchServiceFixture, ResultTableIsQueryableAsSourceTable) {
  auto id = batch().Submit("atlas", "SELECT ID, V FROM EVENTS");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
  ASSERT_EQ(batch().Poll("atlas", *id)->state, BatchJobState::kDone);

  // Follow-up interactive query over the scratch table, same tenant.
  QueryContext ctx;
  ctx.tenant = "atlas";
  auto rs = server_->service().Query(
      "SELECT ID FROM batch_" + std::to_string(*id) + " WHERE ID <= 5",
      nullptr, 0, "", std::move(ctx));
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 5u);

  // Another tenant holds no grant on the scratch mart.
  QueryContext other;
  other.tenant = "cms";
  auto denied = server_->service().Query(
      "SELECT ID FROM batch_" + std::to_string(*id), nullptr, 0, "",
      std::move(other));
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
}

// ---------- tenant visibility / RBAC ----------

TEST_F(BatchServiceFixture, JobsAreInvisibleAcrossTenants) {
  auto id = batch().Submit("atlas", "SELECT ID FROM EVENTS");
  ASSERT_TRUE(id.ok());
  // Another tenant's probes behave as if the job does not exist.
  EXPECT_EQ(batch().Poll("cms", *id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(batch().Cancel("cms", *id).code(), StatusCode::kNotFound);
  EXPECT_EQ(batch().Fetch("cms", *id, 0).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
}

TEST_F(BatchServiceFixture, RbacDeniesUngrantedSourceTables) {
  // "cms" exists but holds no grant on EVENTS: the sub-query fails at
  // plan time with a permanent denial, which fails the job (permission
  // errors are not retryable).
  auto id = batch().Submit("cms", "SELECT ID FROM EVENTS");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
  auto info = batch().Poll("cms", *id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, BatchJobState::kFailed);
  EXPECT_NE(info->error.find("PERMISSION_DENIED"), std::string::npos)
      << info->error;
}

// ---------- cancel semantics ----------

TEST_F(BatchServiceFixture, CancelIsDurableAndTerminalStatesAreStable) {
  auto id = batch().Submit("atlas", "SELECT ID, V FROM EVENTS");
  ASSERT_TRUE(id.ok());
  Status cancelled = batch().Cancel("atlas", *id);
  // Either we caught it before/while running (cancel lands) or it had
  // already finished (terminal stability refuses the cancel).
  if (cancelled.ok()) {
    ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
    auto info = batch().Poll("atlas", *id);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->state, BatchJobState::kCancelled);
    // Cancelling again is a FailedPrecondition, not a state change.
    EXPECT_EQ(batch().Cancel("atlas", *id).code(),
              StatusCode::kFailedPrecondition);
    // Fetch on a cancelled job is refused.
    EXPECT_EQ(batch().Fetch("atlas", *id, 0).status().code(),
              StatusCode::kFailedPrecondition);
    // The cancellation is durable: a restart replays it as cancelled.
    Restart();
    auto after = batch().Poll("atlas", *id);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->state, BatchJobState::kCancelled);
    EXPECT_FALSE(after->recovered);
  } else {
    EXPECT_EQ(cancelled.code(), StatusCode::kFailedPrecondition);
  }
}

TEST_F(BatchServiceFixture, SubmitRejectsUnparseableSqlWithoutJournaling) {
  auto id = batch().Submit("atlas", "SELEC nonsense FROM");
  ASSERT_FALSE(id.ok());
  // Nothing journaled: a restart sees no trace of the rejected submit.
  auto replay = util::ReadJournal(JournalPath());
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
}

TEST_F(BatchServiceFixture, SubmitRejectsTenantWithControlCharacters) {
  // The submit record carries the tenant on a newline-delimited field
  // line; an embedded newline would shift the record's framing on
  // replay (mis-scoping the job, swallowing the sql field). Rejected
  // before anything reaches the journal.
  auto id = batch().Submit("atlas\nsql SELECT 1", "SELECT ID FROM EVENTS");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
  auto replay = util::ReadJournal(JournalPath());
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
}

TEST_F(BatchServiceFixture, FetchPageWhoseOffsetWouldWrapIsEmpty) {
  auto id = batch().Submit("atlas", "SELECT ID, V FROM EVENTS");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
  ASSERT_EQ(batch().Poll("atlas", *id)->state, BatchJobState::kDone);
  // A hostile page makes OFFSET = page * fetch_page_rows wrap size_t
  // and alias a small offset; the contract says any page past the end
  // returns the empty row set, never real rows.
  auto page =
      batch().Fetch("atlas", *id, std::numeric_limits<size_t>::max());
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_TRUE(page->rows.empty());
}

// ---------- shutdown semantics ----------

TEST_F(BatchServiceFixture, StopReturnsRunningJobToQueueAndResumeCompletes) {
  // Slow every checkpoint so the scan is provably mid-flight when
  // Stop() lands; Stop() must return after at most one chunk — not the
  // rest of the scan — and leave the job queued with no terminal
  // record, resuming from its durable prefix on the next Start().
  batch().set_crash_hook([](const char* point, uint64_t, size_t) {
    if (std::string(point) == "checkpoint") {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  auto id = batch().Submit("atlas", "SELECT ID, V FROM EVENTS");
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 30000; ++i) {
    auto info = batch().Poll("atlas", *id);
    ASSERT_TRUE(info.ok());
    if (info->chunks_done >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto stop_begin = std::chrono::steady_clock::now();
  batch().Stop();
  const double stop_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - stop_begin)
          .count();
  // 7 chunks at >=100ms each: waiting out the whole scan would take
  // >=600ms more. One chunk boundary plus join slack is plenty.
  EXPECT_LT(stop_ms, 400.0) << "Stop() waited out the running scan";

  auto info = batch().Poll("atlas", *id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, BatchJobState::kQueued);
  EXPECT_GE(info->chunks_done, 1u);
  EXPECT_LT(info->chunks_done, 7u);

  // No terminal record was journaled by the interrupted run.
  auto replay = util::ReadJournal(JournalPath());
  ASSERT_TRUE(replay.ok());
  for (const std::string& record : replay->records) {
    EXPECT_NE(record.substr(0, 6), "state\n") << record;
  }

  batch().set_crash_hook({});  // full speed for the resume
  batch().Start();
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
  auto done = batch().Poll("atlas", *id);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->state, BatchJobState::kDone) << done->error;
  EXPECT_EQ(FetchAll("atlas", *id).rows.size(),
            static_cast<size_t>(kEventRows));
  // The durable prefix was not re-executed: one checkpoint per chunk.
  std::map<size_t, int> counts = CheckpointCounts(JournalDir(), *id);
  EXPECT_EQ(counts.size(), 7u);
  for (const auto& [chunk, count] : counts) {
    EXPECT_EQ(count, 1) << "chunk " << chunk;
  }
}

// ---------- crash / restart recovery ----------

struct CrashCase {
  std::string point;
  size_t chunk;
};

class BatchCrashFixture : public BatchServiceFixture {
 protected:
  /// Byte-canonical result of an uninterrupted run of `sql` (computed in
  /// a disposable journal dir so it does not disturb later crash dirs).
  std::string Baseline(const std::string& sql) {
    BatchConfig alt = BatchDefaults();
    alt.journal_dir = (dir_ / "baseline").string();
    MakeServer(alt);
    auto id = batch().Submit("atlas", sql);
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(batch().WaitForTerminal(*id, 30.0));
    EXPECT_EQ(batch().Poll("atlas", *id)->state, BatchJobState::kDone);
    return Canonical(FetchAll("atlas", *id));
  }

  /// Submits `sql` with a hook that kills the manager at `cc`, and waits
  /// for the kill to land. Returns the job id (0 on failure).
  uint64_t SubmitAndCrash(const std::string& sql, const CrashCase& cc) {
    BatchJobManager* manager = server_->batch();
    manager->set_crash_hook(
        [manager, cc](const char* point, uint64_t, size_t chunk) {
          if (cc.point == point && chunk == cc.chunk) {
            manager->SimulateCrash();
          }
        });
    auto id = manager->Submit("atlas", sql);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    for (int i = 0; i < 30000 && !manager->crashed(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(manager->crashed())
        << "crash point never fired: " << cc.point << ":" << cc.chunk;
    return id.value_or(0);
  }

  /// The full crash → restart → recover → verify cycle.
  void CrashAndRecover(const std::string& sql, const CrashCase& cc,
                       const std::string& baseline) {
    SCOPED_TRACE("crash at " + cc.point + ":" + std::to_string(cc.chunk));
    BatchConfig fresh = BatchDefaults();
    fresh.journal_dir =
        (dir_ / ("crash_" + cc.point + "_" + std::to_string(cc.chunk)))
            .string();
    MakeServer(fresh);
    const uint64_t id = SubmitAndCrash(sql, cc);
    ASSERT_NE(id, 0u);

    // How much progress was durable at the kill.
    std::map<size_t, int> before = CheckpointCounts(fresh.journal_dir, id);
    for (const auto& [chunk, count] : before) {
      EXPECT_EQ(count, 1) << "chunk " << chunk << " pre-restart";
    }

    // "Process restart": tear down, rebuild over the same journal dir.
    MakeServer(fresh);
    auto info = batch().Poll("atlas", id);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    if (!IsTerminal(info->state)) {
      EXPECT_TRUE(info->recovered);
      ASSERT_TRUE(batch().WaitForTerminal(id, 30.0));
      info = batch().Poll("atlas", id);
      ASSERT_TRUE(info.ok());
    }
    ASSERT_EQ(info->state, BatchJobState::kDone) << info->error;

    // 1. Byte-identity with the uninterrupted run.
    EXPECT_EQ(Canonical(FetchAll("atlas", id)), baseline);

    // 2. Zero duplicated sub-query work after the last durable
    //    checkpoint: every chunk has EXACTLY one checkpoint record in
    //    the final journal — durable progress was never re-executed,
    //    lost progress was re-run exactly once.
    std::map<size_t, int> after = CheckpointCounts(fresh.journal_dir, id);
    EXPECT_EQ(after.size(), info->total_chunks);
    for (const auto& [chunk, count] : after) {
      EXPECT_EQ(count, 1) << "chunk " << chunk << " checkpointed " << count
                          << " times";
    }
    // The durable prefix is still there, untouched by the re-run.
    for (const auto& [chunk, count] : before) {
      (void)count;
      EXPECT_EQ(after.count(chunk), 1u)
          << "durable chunk " << chunk << " missing after recovery";
    }

    // 3. Terminal state is stable across ANOTHER restart, and the
    //    rebuilt scratch table still serves identical bytes.
    MakeServer(fresh);
    auto again = batch().Poll("atlas", id);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->state, BatchJobState::kDone);
    EXPECT_EQ(Canonical(FetchAll("atlas", id)), baseline);
  }
};

TEST_F(BatchCrashFixture, KilledMidScanRecoversByteIdenticalAtEveryPoint) {
  const std::string sql = "SELECT ID, V FROM EVENTS";
  const std::string baseline = Baseline(sql);
  ASSERT_FALSE(baseline.empty());

  // Randomized checkpoint boundaries under a deterministic seed (the
  // scan has 7 chunks, ids 0..6), plus the protocol edges.
  Rng rng(20260809);
  std::vector<CrashCase> cases = {
      {"staged", static_cast<size_t>(rng.UniformInt(0, 6))},
      {"checkpoint", static_cast<size_t>(rng.UniformInt(0, 6))},
      {"checkpoint", static_cast<size_t>(rng.UniformInt(0, 6))},
      {"checkpoint", 0},  // nothing durable but the first chunk
      {"staged", 6},      // last chunk staged, never journaled
      {"total", 7},       // scan complete, terminal record lost
  };
  for (const CrashCase& cc : cases) {
    CrashAndRecover(sql, cc, baseline);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(BatchCrashFixture, CrashAfterTerminalRecordKeepsJobDone) {
  const std::string sql = "SELECT ID, V FROM EVENTS";
  const std::string baseline = Baseline(sql);

  BatchConfig fresh = BatchDefaults();
  fresh.journal_dir = (dir_ / "crash_terminal").string();
  MakeServer(fresh);
  BatchJobManager* manager = server_->batch();
  manager->set_crash_hook([manager](const char* point, uint64_t, size_t) {
    if (std::string(point) == "terminal") manager->SimulateCrash();
  });
  auto id = manager->Submit("atlas", sql);
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 30000 && !manager->crashed(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(manager->crashed());

  MakeServer(fresh);
  auto info = batch().Poll("atlas", *id);
  ASSERT_TRUE(info.ok());
  // The terminal record was durable before the kill: recovery replays
  // the job as done (not re-enqueued) and rebuilds its scratch table.
  EXPECT_EQ(info->state, BatchJobState::kDone);
  EXPECT_FALSE(info->recovered);
  EXPECT_EQ(Canonical(FetchAll("atlas", *id)), baseline);
}

TEST_F(BatchCrashFixture, NonPageableCrashMidMaterializationRecovers) {
  // ORDER BY makes the statement non-pageable: it runs single-shot and
  // chunks at materialization. A crash mid-materialization re-runs the
  // (deterministic) query and re-stages from the first missing chunk.
  const std::string sql = "SELECT ID, V FROM EVENTS ORDER BY ID DESC";
  const std::string baseline = Baseline(sql);
  ASSERT_FALSE(baseline.empty());
  CrashAndRecover(sql, {"checkpoint", 3}, baseline);
}

TEST_F(BatchCrashFixture, TornJournalTailIsDroppedOnRecovery) {
  auto id = batch().Submit("atlas", "SELECT ID, V FROM EVENTS");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
  ASSERT_EQ(batch().Poll("atlas", *id)->state, BatchJobState::kDone);
  server_.reset();  // close the journal descriptor

  // A crash mid-append leaves a torn frame at the tail; everything
  // before it must replay. Simulate with a truncated frame header.
  {
    std::ofstream out(JournalPath(), std::ios::binary | std::ios::app);
    out << "rec 9999 md5 0123456";  // torn header, no payload
  }
  Restart();
  auto info = batch().Poll("atlas", *id);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->state, BatchJobState::kDone);
  EXPECT_EQ(FetchAll("atlas", *id).rows.size(),
            static_cast<size_t>(kEventRows));
}

TEST_F(BatchCrashFixture, RecordsAppendedAfterTornTailRepairSurviveRestart) {
  // Recovery must TRUNCATE a torn tail, not merely skip it: the journal
  // is O_APPEND, so without the repair every record written after the
  // tear (acknowledged submits, checkpoints, terminal states) lands
  // beyond it, where the next replay — which stops at the first
  // undecodable frame — silently drops them. A durable job id must
  // never vanish after a second crash.
  auto first = batch().Submit("atlas", "SELECT ID, V FROM EVENTS");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(batch().WaitForTerminal(*first, 30.0));
  ASSERT_EQ(batch().Poll("atlas", *first)->state, BatchJobState::kDone);
  server_.reset();  // close the journal descriptor

  {
    std::ofstream out(JournalPath(), std::ios::binary | std::ios::app);
    out << "rec 9999 md5 0123456";  // crash mid-append: torn frame
  }
  Restart();  // recovery truncates the journal back to the intact prefix
  ASSERT_EQ(batch().Poll("atlas", *first)->state, BatchJobState::kDone);

  // Durable work AFTER the repaired tear.
  auto second = batch().Submit("atlas", "SELECT ID FROM EVENTS WHERE ID <= 10");
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(batch().WaitForTerminal(*second, 30.0));
  ASSERT_EQ(batch().Poll("atlas", *second)->state, BatchJobState::kDone);

  // The second restart is the regression: pre-repair, job two's every
  // record sat beyond the tear and the job ceased to exist here.
  Restart();
  auto info = batch().Poll("atlas", *second);
  ASSERT_TRUE(info.ok()) << "durable job vanished after a second restart: "
                         << info.status().ToString();
  EXPECT_EQ(info->state, BatchJobState::kDone);
  EXPECT_EQ(FetchAll("atlas", *second).rows.size(), 10u);
  EXPECT_EQ(batch().Poll("atlas", *first)->state, BatchJobState::kDone);

  // And the journal itself is whole again: no torn frame left behind.
  auto replay = util::ReadJournal(JournalPath());
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->truncated);
}

TEST_F(BatchCrashFixture, RecoverIsGuardedAgainstDoubleReplay) {
  auto id = batch().Submit("atlas", "SELECT ID FROM EVENTS");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
  // Recover() is a construction-time event; replaying over live state
  // would double every job. The guard refuses.
  Status again = batch().Recover();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  // State is untouched by the refused replay.
  auto info = batch().Poll("atlas", *id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, BatchJobState::kDone);
}

// The CI crash sweep: scripts/check.sh sets GRIDDB_CRASH_POINT to
// "<point>:<chunk>" and reruns just this test, sweeping the kill across
// protocol points without recompiling. GRIDDB_CRASH_POINT=list instead
// prints every registered crash-point name, one per line — the discovery
// mode chaos schedules and scripts/check.sh use so their sweep lists
// cannot drift from the code. Unset, the test is skipped (the fixed
// matrix above already runs in-process).
TEST_F(BatchCrashFixture, EnvDrivenCrashPointSweep) {
  const char* env = std::getenv("GRIDDB_CRASH_POINT");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "GRIDDB_CRASH_POINT not set";
  }
  const std::string spec(env);
  if (spec == "list") {
    const std::vector<std::string>& names = BatchJobManager::CrashPointNames();
    ASSERT_FALSE(names.empty());
    for (const std::string& name : names) {
      std::printf("crash-point %s\n", name.c_str());
    }
    // The enumeration is the registry the firing assertion checks
    // against, so every point this very test file sweeps must be in it.
    for (const char* swept : {"staged", "checkpoint", "total", "terminal"}) {
      EXPECT_NE(std::find(names.begin(), names.end(), swept), names.end())
          << "swept crash point '" << swept << "' is not enumerated";
    }
    return;
  }
  const size_t colon = spec.find(':');
  ASSERT_NE(colon, std::string::npos)
      << "want <point>:<chunk> or 'list', got " << spec;
  CrashCase cc;
  cc.point = spec.substr(0, colon);
  cc.chunk = static_cast<size_t>(std::stoul(spec.substr(colon + 1)));

  const std::string sql = "SELECT ID, V FROM EVENTS";
  const std::string baseline = Baseline(sql);
  ASSERT_FALSE(baseline.empty());
  CrashAndRecover(sql, cc, baseline);
}

// ---------- graceful degradation under storage faults ----------

/// Crash fixture plus a storage fault injector scoped (by path filter) to
/// this test's journal directory, installed for the test's whole life.
class BatchStorageFaultFixture : public BatchCrashFixture {
 protected:
  void SetUp() override {
    BatchCrashFixture::SetUp();
    fault_ = std::make_unique<storage::FaultFs>(20260809);
    const std::string scope = (dir_ / "batch").string();
    fault_->SetPathFilter([scope](const std::string& path) {
      return path.rfind(scope, 0) == 0;
    });
    prev_ = util::SetFileSystem(fault_.get());
  }

  void TearDown() override {
    util::SetFileSystem(prev_);
    fault_.reset();
    BatchCrashFixture::TearDown();
  }

  std::unique_ptr<storage::FaultFs> fault_;
  util::FileSystem* prev_ = nullptr;
};

TEST_F(BatchStorageFaultFixture, EnospcMidCheckpointPausesNeverFailsAndResumesExactlyOnce) {
  // The acceptance contract for disk-full degradation: an ENOSPC window
  // opening mid-checkpoint must leave the job paused in a retryable
  // queued state (never kFailed), and once space returns the job must
  // complete with every durable checkpoint written EXACTLY once — the
  // pause re-executed no journaled work.
  const std::string sql = "SELECT ID, V FROM EVENTS";
  const std::string baseline = Baseline(sql);
  ASSERT_FALSE(baseline.empty());

  BatchConfig cfg = BatchDefaults();
  cfg.io_retry_backoff_ms = 2.0;  // keep the pause loop fast under test
  MakeServer(cfg);

  // Open the window just before chunk 3's journal checkpoint: the stage
  // frame is durable, the checkpoint append hits ENOSPC. Armed once; the
  // paused retry re-stages chunk 3 and must find space back.
  std::atomic<bool> armed{false};
  storage::FaultFs* fault = fault_.get();
  batch().set_crash_hook(
      [fault, &armed](const char* point, uint64_t, size_t chunk) {
        if (std::string(point) == "staged" && chunk == 3 &&
            !armed.exchange(true)) {
          fault->ArmEnospc(1);
        }
      });

  auto id = batch().Submit("atlas", sql);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
  auto info = batch().Poll("atlas", *id);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->state, BatchJobState::kDone) << info->error;
  EXPECT_GE(info->io_pauses, 1u) << "the ENOSPC window never paused the job";
  EXPECT_EQ(fault_->counters().enospc, 1u);
  EXPECT_EQ(Canonical(FetchAll("atlas", *id)), baseline);

  // Exactly-once: the window produced zero re-executed durable
  // checkpoints (chunk 3 was never durably checkpointed before the
  // pause, so its re-run lands its one and only record).
  std::map<size_t, int> counts = CheckpointCounts(JournalDir(), *id);
  EXPECT_EQ(counts.size(), 7u);
  for (const auto& [chunk, count] : counts) {
    EXPECT_EQ(count, 1) << "chunk " << chunk << " checkpointed " << count
                        << " times across an ENOSPC pause";
  }
}

TEST_F(BatchStorageFaultFixture, EnospcOnTerminalRecordPausesAndRetriesWithoutRerunningChunks) {
  // The nastiest spot: every chunk is checkpointed, only the kDone
  // terminal append hits the full disk. Failing the job would discard a
  // finished result; the manager must park it and retry the one append.
  const std::string sql = "SELECT ID, V FROM EVENTS";
  const std::string baseline = Baseline(sql);

  BatchConfig cfg = BatchDefaults();
  cfg.io_retry_backoff_ms = 2.0;
  MakeServer(cfg);

  std::atomic<bool> armed{false};
  storage::FaultFs* fault = fault_.get();
  batch().set_crash_hook(
      [fault, &armed](const char* point, uint64_t, size_t chunk) {
        if (std::string(point) == "total" && chunk == 7 &&
            !armed.exchange(true)) {
          fault->ArmEnospc(1);  // the very next journal append is kDone
        }
      });

  auto id = batch().Submit("atlas", sql);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(batch().WaitForTerminal(*id, 30.0));
  auto info = batch().Poll("atlas", *id);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->state, BatchJobState::kDone) << info->error;
  EXPECT_GE(info->io_pauses, 1u);
  EXPECT_EQ(Canonical(FetchAll("atlas", *id)), baseline);
  // The parked retry restored the checkpointed chunks and re-attempted
  // only the terminal append: still exactly one checkpoint per chunk.
  std::map<size_t, int> counts = CheckpointCounts(JournalDir(), *id);
  EXPECT_EQ(counts.size(), 7u);
  for (const auto& [chunk, count] : counts) {
    EXPECT_EQ(count, 1) << "chunk " << chunk;
  }
}

TEST_F(BatchStorageFaultFixture, BitRottedStageChunkIsReStagedWithCorrectBytes) {
  // Media rot under a committed stage frame: the job is killed mid-scan,
  // a byte in the durable stage file flips while the coordinator is
  // down, and the restarted incarnation must detect the damaged frame by
  // digest, re-stage from it, and still complete byte-identical.
  const std::string sql = "SELECT ID, V FROM EVENTS";
  const std::string baseline = Baseline(sql);
  ASSERT_FALSE(baseline.empty());

  BatchConfig fresh = BatchDefaults();
  fresh.journal_dir = (dir_ / "batch").string();
  MakeServer(fresh);
  const uint64_t id = SubmitAndCrash(sql, {"checkpoint", 4});
  ASSERT_NE(id, 0u);

  // Rot one byte in the middle of the stage file while "down". Whether
  // it lands in a row block (digest quarantine) or framing (torn-tail
  // repair), recovery must converge to the same bytes.
  const std::string stage_path =
      fresh.journal_dir + "/job_" + std::to_string(id) + ".stage";
  {
    auto content = util::Fs().ReadFile(stage_path);
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    ASSERT_GT(content->size(), 64u);
    std::string rotted = *content;
    rotted[rotted.size() / 2] ^= 0x20;
    ASSERT_TRUE(util::Fs().WriteTruncate(stage_path, rotted).ok());
  }

  MakeServer(fresh);
  auto info = batch().Poll("atlas", id);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(batch().WaitForTerminal(id, 30.0));
  info = batch().Poll("atlas", id);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->state, BatchJobState::kDone) << info->error;
  EXPECT_EQ(Canonical(FetchAll("atlas", id)), baseline);

  // Rot forces legitimate re-execution of the damaged suffix, so the
  // per-chunk guarantee weakens to at-least-once — but the journal must
  // cover every chunk and another restart must serve identical bytes
  // (the re-staged frames, not the rotted ones, win).
  std::map<size_t, int> counts = CheckpointCounts(fresh.journal_dir, id);
  ASSERT_TRUE(batch().Poll("atlas", id)->total_known);
  EXPECT_EQ(counts.size(), batch().Poll("atlas", id)->total_chunks);
  MakeServer(fresh);
  EXPECT_EQ(batch().Poll("atlas", id)->state, BatchJobState::kDone);
  EXPECT_EQ(Canonical(FetchAll("atlas", id)), baseline);
}

}  // namespace
}  // namespace griddb::core
