#include <gtest/gtest.h>

#include <cmath>

#include "griddb/ntuple/histogram.h"
#include "griddb/ntuple/ntuple.h"
#include "griddb/util/rng.h"

namespace griddb::ntuple {
namespace {

using storage::Value;

TEST(NtupleTest, AppendValidatesArity) {
  Ntuple nt({"a", "b"});
  EXPECT_TRUE(nt.Append(1, {1.0, 2.0}).ok());
  EXPECT_FALSE(nt.Append(1, {1.0}).ok());
  EXPECT_EQ(nt.num_events(), 1u);
  EXPECT_EQ(nt.events()[0].event_id, 1);
}

TEST(NtupleTest, VariableIndexCaseInsensitive) {
  Ntuple nt({"e_total", "PT"});
  EXPECT_EQ(nt.VariableIndex("E_TOTAL"), 0);
  EXPECT_EQ(nt.VariableIndex("pt"), 1);
  EXPECT_EQ(nt.VariableIndex("ghost"), -1);
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions options;
  options.num_events = 50;
  options.seed = 7;
  Ntuple a = GenerateNtuple(options);
  Ntuple b = GenerateNtuple(options);
  ASSERT_EQ(a.num_events(), b.num_events());
  for (size_t e = 0; e < a.num_events(); ++e) {
    EXPECT_EQ(a.events()[e].run_id, b.events()[e].run_id);
    for (size_t v = 0; v < a.nvar(); ++v) {
      EXPECT_DOUBLE_EQ(a.events()[e].values[v], b.events()[e].values[v]);
    }
  }
}

TEST(GeneratorTest, PhysicsVariableRanges) {
  GeneratorOptions options;
  options.num_events = 5000;
  options.seed = 11;
  Ntuple nt = GenerateNtuple(options);
  int pt_idx = nt.VariableIndex("pt");
  int phi_idx = nt.VariableIndex("phi");
  int charge_idx = nt.VariableIndex("charge");
  int mass_idx = nt.VariableIndex("mass");
  double mass_sum = 0;
  for (const NtupleEvent& event : nt.events()) {
    EXPECT_GE(event.values[static_cast<size_t>(pt_idx)], 0.0);
    EXPECT_GE(event.values[static_cast<size_t>(phi_idx)], -M_PI);
    EXPECT_LT(event.values[static_cast<size_t>(phi_idx)], M_PI);
    double q = event.values[static_cast<size_t>(charge_idx)];
    EXPECT_TRUE(q == 1.0 || q == -1.0);
    mass_sum += event.values[static_cast<size_t>(mass_idx)];
  }
  EXPECT_NEAR(mass_sum / 5000.0, 91.0, 1.0);  // Z-ish mass peak
}

TEST(GeneratorTest, NvarExtension) {
  GeneratorOptions options;
  options.num_events = 10;
  options.nvar = 20;
  Ntuple nt = GenerateNtuple(options);
  EXPECT_EQ(nt.nvar(), 20u);
  EXPECT_EQ(nt.variables()[8], "var_8");
  EXPECT_EQ(nt.variables()[19], "var_19");
}

TEST(GeneratorTest, RunIdsWithinRange) {
  GeneratorOptions options;
  options.num_events = 500;
  options.num_runs = 3;
  Ntuple nt = GenerateNtuple(options);
  for (const NtupleEvent& event : nt.events()) {
    EXPECT_GE(event.run_id, 1);
    EXPECT_LE(event.run_id, 3);
  }
  EXPECT_EQ(GenerateRuns(options).size(), 3u);
}

TEST(RelationalTest, NormalizedLoadRowCounts) {
  GeneratorOptions options;
  options.num_events = 100;
  options.nvar = 10;
  Ntuple nt = GenerateNtuple(options);
  std::vector<RunInfo> runs = GenerateRuns(options);

  engine::Database db("src", sql::Vendor::kMySql);
  ASSERT_TRUE(CreateNormalizedSchema(db).ok());
  ASSERT_TRUE(LoadNormalized(nt, runs, db).ok());
  EXPECT_EQ(db.RowCount("events"), 100u);
  EXPECT_EQ(db.RowCount("event_values"), 1000u);
  EXPECT_EQ(db.RowCount("variables"), 10u);
  EXPECT_EQ(db.RowCount("runs"), runs.size());

  // The normalized form reconstructs a variable by join.
  auto rs = db.Execute(
      "SELECT COUNT(*) FROM event_values ev JOIN variables v "
      "ON ev.var_id = v.var_id WHERE v.name = 'pt'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].AsInt64Strict(), 100);
}

TEST(RelationalTest, PrefixSupportsMultipleDatasets) {
  engine::Database db("src", sql::Vendor::kMySql);
  ASSERT_TRUE(CreateNormalizedSchema(db, "cms_").ok());
  ASSERT_TRUE(CreateNormalizedSchema(db, "atlas_").ok());
  EXPECT_TRUE(db.HasTable("cms_events"));
  EXPECT_TRUE(db.HasTable("atlas_events"));
}

TEST(RelationalTest, DenormalizedSchemaAndRows) {
  GeneratorOptions options;
  options.num_events = 20;
  Ntuple nt = GenerateNtuple(options);
  std::vector<RunInfo> runs = GenerateRuns(options);

  storage::TableSchema schema = DenormalizedSchema(nt, "fact_event");
  EXPECT_EQ(schema.num_columns(), 3 + nt.nvar());
  EXPECT_TRUE(schema.columns()[0].primary_key);

  std::vector<storage::Row> rows = DenormalizedRows(nt, runs);
  ASSERT_EQ(rows.size(), 20u);
  for (const storage::Row& row : rows) {
    EXPECT_TRUE(schema.ValidateRow(row).ok());
    EXPECT_FALSE(row[2].is_null());  // detector resolved from run
  }
}

// ---------- histograms ----------

TEST(HistogramTest, FillAndStats) {
  Histogram1D hist("pt", 10, 0.0, 100.0);
  hist.Fill(5.0);
  hist.Fill(15.0);
  hist.Fill(15.5);
  hist.Fill(-1.0);   // underflow
  hist.Fill(100.0);  // overflow boundary (>= hi)
  EXPECT_DOUBLE_EQ(hist.entries(), 3.0);
  EXPECT_DOUBLE_EQ(hist.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(hist.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(hist.BinContent(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.BinContent(1), 2.0);
  EXPECT_NEAR(hist.Mean(), (5.0 + 15.0 + 15.5) / 3, 1e-9);
  EXPECT_DOUBLE_EQ(hist.BinCenter(0), 5.0);
  EXPECT_DOUBLE_EQ(hist.MaxBinContent(), 2.0);
}

TEST(HistogramTest, WeightedFills) {
  Histogram1D hist("w", 2, 0.0, 2.0);
  hist.Fill(0.5, 2.5);
  hist.Fill(1.5, 0.5);
  EXPECT_DOUBLE_EQ(hist.BinContent(0), 2.5);
  EXPECT_DOUBLE_EQ(hist.entries(), 3.0);
}

TEST(HistogramTest, GaussianMoments) {
  Histogram1D hist("gauss", 100, -5.0, 5.0);
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) hist.Fill(rng.Gaussian(0.5, 1.0));
  EXPECT_NEAR(hist.Mean(), 0.5, 0.05);
  EXPECT_NEAR(hist.StdDev(), 1.0, 0.05);
}

TEST(HistogramTest, AsciiRendering) {
  Histogram1D hist("demo", 3, 0.0, 3.0);
  hist.Fill(0.5);
  hist.Fill(1.5);
  hist.Fill(1.6);
  std::string text = hist.ToAscii(20);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Histogram2DTest, FillAndRead) {
  Histogram2D hist("eta_phi", 4, -2.0, 2.0, 4, -2.0, 2.0);
  hist.Fill(-1.5, -1.5);
  hist.Fill(1.5, 1.5);
  hist.Fill(1.5, 1.5);
  hist.Fill(9.0, 0.0);  // out of range, dropped
  EXPECT_DOUBLE_EQ(hist.entries(), 3.0);
  EXPECT_DOUBLE_EQ(hist.BinContent(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(hist.BinContent(3, 3), 2.0);
}

TEST(HistogramTest, FillFromResultSet) {
  storage::ResultSet rs;
  rs.columns = {"event_id", "pt"};
  rs.rows = {{Value(int64_t{1}), Value(10.0)},
             {Value(int64_t{2}), Value(20.0)},
             {Value(int64_t{3}), Value::Null()},
             {Value(int64_t{4}), Value(int64_t{30})}};
  Histogram1D hist("pt", 4, 0.0, 40.0);
  ASSERT_TRUE(FillFromResultSet(hist, rs, "pt").ok());
  EXPECT_DOUBLE_EQ(hist.entries(), 3.0);  // NULL skipped
  EXPECT_DOUBLE_EQ(hist.BinContent(1), 1.0);
  EXPECT_EQ(FillFromResultSet(hist, rs, "ghost").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace griddb::ntuple
