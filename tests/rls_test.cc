#include <gtest/gtest.h>

#include "griddb/rls/rls.h"

namespace griddb::rls {
namespace {

struct RlsFixture : public ::testing::Test {
  RlsFixture()
      : transport(&network, net::ServiceCosts::Default()),
        server("rls://rls-host:39281/rls", &transport) {
    network.AddHost("rls-host");
    network.AddHost("tier1");
    network.AddHost("tier2");
  }

  net::Network network;
  rpc::Transport transport;
  RlsServer server;
};

TEST_F(RlsFixture, PublishAndLookupDirect) {
  ASSERT_TRUE(server.Publish("fact_event", "clarens://tier1:8080/c").ok());
  ASSERT_TRUE(server.Publish("fact_event", "clarens://tier2:8080/c").ok());
  ASSERT_TRUE(server.Publish("runs", "clarens://tier1:8080/c").ok());
  auto urls = server.Lookup("fact_event");
  EXPECT_EQ(urls.size(), 2u);
  EXPECT_EQ(server.Lookup("ghost").size(), 0u);
  EXPECT_EQ(server.NumMappings(), 3u);
}

TEST_F(RlsFixture, LookupIsCaseInsensitive) {
  ASSERT_TRUE(server.Publish("Fact_Event", "clarens://tier1:8080/c").ok());
  EXPECT_EQ(server.Lookup("FACT_EVENT").size(), 1u);
}

TEST_F(RlsFixture, PublishValidatesUrl) {
  EXPECT_FALSE(server.Publish("t", "not a url").ok());
  EXPECT_FALSE(server.Publish("", "clarens://tier1:8080/c").ok());
}

TEST_F(RlsFixture, PublishIsIdempotentPerPair) {
  ASSERT_TRUE(server.Publish("t", "clarens://tier1:8080/c").ok());
  ASSERT_TRUE(server.Publish("t", "clarens://tier1:8080/c").ok());
  EXPECT_EQ(server.Lookup("t").size(), 1u);
}

TEST_F(RlsFixture, Unpublish) {
  ASSERT_TRUE(server.Publish("t", "clarens://tier1:8080/c").ok());
  EXPECT_TRUE(server.Unpublish("t", "clarens://tier1:8080/c").ok());
  EXPECT_EQ(server.Lookup("t").size(), 0u);
  EXPECT_EQ(server.Unpublish("t", "clarens://tier1:8080/c").code(),
            StatusCode::kNotFound);
}

TEST_F(RlsFixture, ClientPublishLookupOverRpc) {
  RlsClient client(&transport, "tier1", "rls://rls-host:39281/rls");
  net::Cost cost;
  ASSERT_TRUE(
      client.Publish("fact_event", "clarens://tier1:8080/c", &cost).ok());
  ASSERT_TRUE(
      client.PublishAll({"runs", "events"}, "clarens://tier1:8080/c", &cost)
          .ok());

  auto urls = client.Lookup("runs", &cost);
  ASSERT_TRUE(urls.ok()) << urls.status().ToString();
  ASSERT_EQ(urls->size(), 1u);
  EXPECT_EQ((*urls)[0], "clarens://tier1:8080/c");

  ASSERT_TRUE(client.Unpublish("runs", "clarens://tier1:8080/c", &cost).ok());
  EXPECT_EQ(client.Lookup("runs", &cost)->size(), 0u);
}

TEST_F(RlsFixture, LookupChargesRlsCost) {
  RlsClient client(&transport, "tier1", "rls://rls-host:39281/rls");
  ASSERT_TRUE(client.Publish("t", "clarens://tier1:8080/c", nullptr).ok());
  net::Cost cost;
  ASSERT_TRUE(client.Lookup("t", &cost).ok());
  EXPECT_GE(cost.total_ms(), transport.costs().rls_lookup_ms);
}

TEST_F(RlsFixture, DumpListsAllMappings) {
  ASSERT_TRUE(server.Publish("b", "clarens://tier2:8080/c").ok());
  ASSERT_TRUE(server.Publish("a", "clarens://tier1:8080/c").ok());
  auto dump = server.Dump();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[0].first, "a");  // sorted by logical name
}

}  // namespace
}  // namespace griddb::rls
