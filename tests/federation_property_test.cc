// Property suite: the federation layer is semantically transparent.
//
// The same dataset is loaded twice — once into a single reference engine,
// once split table-by-table across several vendor-heterogeneous marts —
// and a corpus of logical queries runs against both. The merged federated
// result must equal the reference result cell for cell, for every mart
// count, vendor assignment and driver mode (parallel/serial, pushdown
// on/off). This is the paper's core correctness claim: "the (potentially)
// large number of databases at the backend [is] transparent to the user".
#include <gtest/gtest.h>

#include "griddb/unity/driver.h"
#include "griddb/unity/xspec.h"
#include "griddb/util/rng.h"

namespace griddb::unity {
namespace {

using storage::DataType;
using storage::ResultSet;
using storage::Row;
using storage::TableSchema;
using storage::Value;

// Deterministic dataset: events / runs / quality, with NULLs sprinkled in.
struct Dataset {
  TableSchema events{"events",
                     {{"event_id", DataType::kInt64, true, true},
                      {"run_id", DataType::kInt64, false, false},
                      {"energy", DataType::kDouble, false, false},
                      {"tag", DataType::kString, false, false}}};
  TableSchema runs{"runs",
                   {{"run_id", DataType::kInt64, true, true},
                    {"detector", DataType::kString, true, false}}};
  TableSchema quality{"quality",
                      {{"run_id", DataType::kInt64, false, false},
                       {"grade", DataType::kString, false, false},
                       {"score", DataType::kDouble, false, false}}};
  std::vector<Row> event_rows;
  std::vector<Row> run_rows;
  std::vector<Row> quality_rows;

  static Dataset Make(uint64_t seed, size_t n_events) {
    Dataset d;
    Rng rng(seed);
    const char* tags[] = {"muon", "electron", "photon", "jet"};
    const char* detectors[] = {"ECAL", "HCAL", "TRACKER"};
    const char* grades[] = {"GOLD", "SILVER", "BAD"};
    for (int r = 1; r <= 3; ++r) {
      d.run_rows.push_back({Value(int64_t{r}), Value(detectors[r - 1])});
      d.quality_rows.push_back(
          {Value(int64_t{r}), Value(grades[rng.UniformInt(0, 2)]),
           Value(rng.Uniform(0.0, 1.0))});
    }
    // One quality row with NULL run_id exercises join NULL semantics.
    d.quality_rows.push_back({Value::Null(), Value("UNKNOWN"), Value(0.0)});
    for (size_t e = 1; e <= n_events; ++e) {
      Value run = rng.NextDouble() < 0.1
                      ? Value::Null()
                      : Value(rng.UniformInt(1, 3));
      Value tag = rng.NextDouble() < 0.1
                      ? Value::Null()
                      : Value(tags[rng.UniformInt(0, 3)]);
      d.event_rows.push_back({Value(static_cast<int64_t>(e)), run,
                              Value(rng.Exponential(1.0 / 20.0)), tag});
    }
    return d;
  }
};

void LoadInto(engine::Database& db, const TableSchema& schema,
              const std::vector<Row>& rows) {
  ASSERT_TRUE(db.CreateTable(schema).ok());
  ASSERT_TRUE(db.InsertRows(schema.name(), std::vector<Row>(rows)).ok());
}

/// Sorts rows lexicographically so unordered results compare canonically.
void Canonicalize(ResultSet& rs) {
  std::sort(rs.rows.begin(), rs.rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int cmp = a[i].Compare(b[i]);
      if (cmp != 0) return cmp < 0;
    }
    return a.size() < b.size();
  });
}

void ExpectSameResults(const ResultSet& expected, const ResultSet& actual,
                       const std::string& query) {
  ASSERT_EQ(expected.num_columns(), actual.num_columns()) << query;
  ASSERT_EQ(expected.num_rows(), actual.num_rows()) << query;
  for (size_t r = 0; r < expected.num_rows(); ++r) {
    for (size_t c = 0; c < expected.num_columns(); ++c) {
      const Value& e = expected.rows[r][c];
      const Value& a = actual.rows[r][c];
      ASSERT_EQ(e.is_null(), a.is_null())
          << query << " row " << r << " col " << c;
      if (e.is_null()) continue;
      if (e.type() == DataType::kDouble || a.type() == DataType::kDouble) {
        ASSERT_NEAR(e.AsDouble().value(), a.AsDouble().value(), 1e-9)
            << query << " row " << r << " col " << c;
      } else {
        ASSERT_EQ(e.Compare(a), 0) << query << " row " << r << " col " << c
                                   << ": " << e.ToString() << " vs "
                                   << a.ToString();
      }
    }
  }
}

const char* kQueryCorpus[] = {
    // Single table, filters and functions.
    "SELECT event_id, energy FROM events WHERE energy > 15",
    "SELECT event_id FROM events WHERE tag IS NULL",
    "SELECT event_id, UPPER(tag) AS utag FROM events WHERE tag IS NOT NULL",
    "SELECT event_id FROM events WHERE tag IN ('muon', 'photon') "
    "AND energy BETWEEN 5 AND 50",
    "SELECT event_id FROM events WHERE tag LIKE 'mu%' OR tag LIKE '%ton'",
    "SELECT DISTINCT tag FROM events WHERE tag IS NOT NULL",
    // Aggregates.
    "SELECT COUNT(*), COUNT(run_id), COUNT(DISTINCT tag) FROM events",
    "SELECT tag, COUNT(*) AS n, AVG(energy) AS avg_e, MIN(energy), "
    "MAX(energy) FROM events WHERE tag IS NOT NULL GROUP BY tag "
    "HAVING COUNT(*) > 1",
    // Two-table joins.
    "SELECT e.event_id, r.detector FROM events e JOIN runs r "
    "ON e.run_id = r.run_id WHERE e.energy > 10",
    "SELECT e.event_id, r.detector FROM events e LEFT JOIN runs r "
    "ON e.run_id = r.run_id",
    "SELECT r.detector, COUNT(*) AS n FROM events e JOIN runs r "
    "ON e.run_id = r.run_id GROUP BY r.detector",
    // Three-table joins with mixed predicates.
    "SELECT e.event_id, r.detector, q.grade FROM events e "
    "JOIN runs r ON e.run_id = r.run_id "
    "JOIN quality q ON r.run_id = q.run_id "
    "WHERE q.grade <> 'BAD' AND e.energy > 5",
    "SELECT q.grade, COUNT(*) AS n, SUM(e.energy) AS total "
    "FROM events e JOIN quality q ON e.run_id = q.run_id "
    "GROUP BY q.grade",
    // Cross join with filter (comma syntax).
    "SELECT e.event_id FROM events e, runs r "
    "WHERE e.run_id = r.run_id AND r.detector = 'ECAL'",
    // Ordered + limited (deterministic because of unique key).
    "SELECT event_id, energy FROM events ORDER BY energy DESC, event_id "
    "LIMIT 7",
    "SELECT event_id FROM events ORDER BY event_id LIMIT 5 OFFSET 3",
    // Expression projection.
    "SELECT event_id, energy * 2 + 1 AS scaled FROM events "
    "WHERE event_id <= 10",
    // LEFT JOIN with NULL-sensitive predicates on the nullable side —
    // regression for the unsound-pushdown case (pushing q.grade IS NULL
    // into the fetch would change the merge's NULL padding).
    "SELECT e.event_id FROM events e LEFT JOIN quality q "
    "ON e.run_id = q.run_id WHERE q.grade IS NULL",
    "SELECT e.event_id, q.grade FROM events e LEFT JOIN quality q "
    "ON e.run_id = q.run_id WHERE q.grade = 'GOLD' OR q.grade IS NULL",
    "SELECT e.event_id FROM events e LEFT JOIN quality q "
    "ON e.run_id = q.run_id WHERE q.score IS NOT NULL AND e.energy > 5",
    // CASE expressions, scalar and inside aggregates.
    "SELECT event_id, CASE WHEN energy > 20 THEN 'hot' ELSE 'cold' END "
    "AS band FROM events WHERE event_id <= 15",
    "SELECT r.detector, SUM(CASE WHEN e.energy > 20 THEN 1 ELSE 0 END) "
    "AS hot FROM events e JOIN runs r ON e.run_id = r.run_id "
    "GROUP BY r.detector",
};

struct FederationParam {
  int layout;          // which table->mart assignment
  bool parallel;
  bool projection_pushdown;
  bool predicate_pushdown;
};

class FederationTransparency
    : public ::testing::TestWithParam<FederationParam> {};

TEST_P(FederationTransparency, FederatedEqualsReference) {
  const FederationParam& param = GetParam();
  Dataset data = Dataset::Make(1234, 60);

  // Reference: everything in one SQLite engine.
  engine::Database reference("reference", sql::Vendor::kSqlite);
  LoadInto(reference, data.events, data.event_rows);
  LoadInto(reference, data.runs, data.run_rows);
  LoadInto(reference, data.quality, data.quality_rows);

  // Federation: tables assigned to marts per layout.
  // layout 0: all three in one MySQL mart (single-database fast path).
  // layout 1: events|runs+quality across MySQL/MS-SQL.
  // layout 2: one table per mart across MySQL/MS-SQL/Oracle.
  net::Network network;
  for (const char* h : {"h1", "h2", "h3", "local"}) network.AddHost(h);
  ral::DatabaseCatalog catalog;
  std::vector<std::unique_ptr<engine::Database>> marts;

  auto new_mart = [&](const char* name, sql::Vendor vendor,
                      const char* host) -> engine::Database& {
    marts.push_back(std::make_unique<engine::Database>(name, vendor));
    std::string conn = std::string(sql::VendorName(vendor)) + "://" + host +
                       "/" + name;
    EXPECT_TRUE(catalog.Add({conn, marts.back().get(), host, "", ""}).ok());
    return *marts.back();
  };

  if (param.layout == 0) {
    engine::Database& m = new_mart("m1", sql::Vendor::kMySql, "h1");
    LoadInto(m, data.events, data.event_rows);
    LoadInto(m, data.runs, data.run_rows);
    LoadInto(m, data.quality, data.quality_rows);
  } else if (param.layout == 1) {
    engine::Database& m1 = new_mart("m1", sql::Vendor::kMySql, "h1");
    engine::Database& m2 = new_mart("m2", sql::Vendor::kMsSql, "h2");
    LoadInto(m1, data.events, data.event_rows);
    LoadInto(m2, data.runs, data.run_rows);
    LoadInto(m2, data.quality, data.quality_rows);
  } else {
    engine::Database& m1 = new_mart("m1", sql::Vendor::kMySql, "h1");
    engine::Database& m2 = new_mart("m2", sql::Vendor::kMsSql, "h2");
    engine::Database& m3 = new_mart("m3", sql::Vendor::kOracle, "h3");
    LoadInto(m1, data.events, data.event_rows);
    LoadInto(m2, data.runs, data.run_rows);
    LoadInto(m3, data.quality, data.quality_rows);
  }

  UnityDriverOptions options;
  options.enhanced = true;
  options.parallel_subqueries = param.parallel;
  options.projection_pushdown = param.projection_pushdown;
  options.predicate_pushdown = param.predicate_pushdown;
  options.client_host = "local";
  UnityDriver driver(&catalog, &network, net::ServiceCosts::Default(),
                     options);
  for (const auto& mart : marts) {
    std::string conn = std::string(sql::VendorName(mart->vendor())) +
                       "://h" + std::to_string((&mart - &marts[0]) + 1) + "/" +
                       mart->name();
    ASSERT_TRUE(driver
                    .AddDatabase({mart->name(), conn, "jdbc", ""},
                                 GenerateXSpec(*mart))
                    .ok());
  }

  for (const char* query : kQueryCorpus) {
    auto expected = reference.Execute(query);
    ASSERT_TRUE(expected.ok()) << query << "\n"
                               << expected.status().ToString();
    auto actual = driver.Query(query, nullptr);
    ASSERT_TRUE(actual.ok()) << query << "\n" << actual.status().ToString();

    ResultSet e = std::move(*expected);
    ResultSet a = std::move(*actual);
    // Canonicalize row order unless the query itself orders.
    if (std::string(query).find("ORDER BY") == std::string::npos) {
      Canonicalize(e);
      Canonicalize(a);
    }
    ExpectSameResults(e, a, query);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndModes, FederationTransparency,
    ::testing::Values(
        FederationParam{0, true, true, true},
        FederationParam{1, true, true, true},
        FederationParam{1, false, true, true},
        FederationParam{1, true, false, true},
        FederationParam{1, true, true, false},
        FederationParam{1, true, false, false},
        FederationParam{2, true, true, true},
        FederationParam{2, false, false, false}),
    [](const ::testing::TestParamInfo<FederationParam>& info) {
      const FederationParam& p = info.param;
      return "layout" + std::to_string(p.layout) +
             (p.parallel ? "_par" : "_ser") +
             (p.projection_pushdown ? "_proj" : "_noproj") +
             (p.predicate_pushdown ? "_pred" : "_nopred");
    });

}  // namespace
}  // namespace griddb::unity
