// Whole-system integration: the complete figure-1 pipeline, end to end.
//
//   normalized sources --ETL--> warehouse --views--> marts
//   marts --register--> two JClarens servers + RLS
//   client --XML-RPC--> federated queries
//
// Correctness criterion: any analysis query answered by the federation
// over the materialized marts must equal the same query answered directly
// by the warehouse (the marts are complete materializations here), and
// the JAS-style histograms built from both must be identical.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "griddb/core/jclarens_server.h"
#include "griddb/ntuple/histogram.h"
#include "griddb/ntuple/ntuple.h"
#include "griddb/warehouse/materialize.h"

namespace griddb {
namespace {

using storage::ResultSet;
using storage::Row;
using storage::Value;

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* h : {"src", "tier1", "tier2a", "tier2b", "rls-host",
                          "client"}) {
      network_.AddHost(h);
    }
    transport_ = std::make_unique<rpc::Transport>(&network_,
                                                  net::ServiceCosts::Default());
    rls_ = std::make_unique<rls::RlsServer>("rls://rls-host:39281/rls",
                                            transport_.get());

    // ---- stage 0: normalized source -----------------------------------
    ntuple::GeneratorOptions gen;
    gen.num_events = 2000;
    gen.nvar = 8;
    gen.seed = 77;
    nt_ = std::make_unique<ntuple::Ntuple>(ntuple::GenerateNtuple(gen));
    runs_ = ntuple::GenerateRuns(gen);
    source_ = std::make_unique<engine::Database>("src_db",
                                                 sql::Vendor::kMySql);
    ASSERT_TRUE(ntuple::CreateNormalizedSchema(*source_).ok());
    ASSERT_TRUE(ntuple::LoadNormalized(*nt_, runs_, *source_).ok());

    // ---- stage 1: ETL into the warehouse ------------------------------
    wh_ = std::make_unique<warehouse::DataWarehouse>("wh", "tier1");
    warehouse::StarSchemaSpec star;
    star.fact = ntuple::DenormalizedSchema(*nt_, "fact_event");
    star.dimensions.push_back(
        {storage::TableSchema(
             "dim_run",
             {{"run_id", storage::DataType::kInt64, true, true},
              {"detector", storage::DataType::kString, true, false}}),
         "run_id"});
    ASSERT_TRUE(wh_->DefineStarSchema(star).ok());
    for (const ntuple::RunInfo& run : runs_) {
      ASSERT_TRUE(wh_->db()
                      .InsertRows("dim_run", {{Value(run.run_id),
                                               Value(run.detector)}})
                      .ok());
    }

    pipeline_ = std::make_unique<warehouse::EtlPipeline>(
        &network_, net::ServiceCosts::Default(),
        warehouse::EtlCosts::Default(), "tier1",
        (std::filesystem::temp_directory_path() / "griddb_pipeline_test")
            .string());

    std::map<int64_t, const ntuple::NtupleEvent*> by_id;
    for (const ntuple::NtupleEvent& e : nt_->events()) by_id[e.event_id] = &e;
    std::map<int64_t, std::string> detector;
    for (const ntuple::RunInfo& r : runs_) detector[r.run_id] = r.detector;

    warehouse::EtlPipeline::Job job;
    job.source = source_.get();
    job.source_host = "src";
    job.extract_sql = "SELECT event_id, run_id FROM events";
    job.target = &wh_->db();
    job.target_host = "tier1";
    job.target_table = "fact_event";
    job.transform = [by_id, detector](const Row& row) -> Result<Row> {
      GRIDDB_ASSIGN_OR_RETURN(int64_t event_id, row[0].AsInt64());
      GRIDDB_ASSIGN_OR_RETURN(int64_t run_id, row[1].AsInt64());
      Row out = {Value(event_id), Value(run_id),
                 Value(detector.at(run_id))};
      for (double v : by_id.at(event_id)->values) out.push_back(Value(v));
      return out;
    };
    auto stage1 = pipeline_->Run(job);
    ASSERT_TRUE(stage1.ok()) << stage1.status().ToString();
    ASSERT_EQ(stage1->rows, 2000u);

    // ---- stage 2: views materialized into two marts --------------------
    ASSERT_TRUE(wh_->CreateAnalysisView(
                      "v_events",
                      "SELECT event_id, run_id, detector, e_total, pt, eta, "
                      "mass FROM fact_event")
                    .ok());
    ASSERT_TRUE(wh_->CreateAnalysisView(
                      "v_runs", "SELECT run_id, detector FROM dim_run")
                    .ok());

    mart_a_ = std::make_unique<warehouse::DataMart>("mart_a",
                                                    sql::Vendor::kMySql,
                                                    "tier2a");
    mart_b_ = std::make_unique<warehouse::DataMart>("mart_b",
                                                    sql::Vendor::kMsSql,
                                                    "tier2b");
    ASSERT_TRUE(
        warehouse::MaterializeView(*wh_, "v_events", *mart_a_, *pipeline_)
            .ok());
    ASSERT_TRUE(
        warehouse::MaterializeView(*wh_, "v_runs", *mart_b_, *pipeline_)
            .ok());

    // ---- servers: one per tier-2 site ----------------------------------
    ASSERT_TRUE(catalog_
                    .Add({"mysql://tier2a/mart_a", &mart_a_->db(), "tier2a",
                          "", ""})
                    .ok());
    ASSERT_TRUE(catalog_
                    .Add({"mssql://tier2b/mart_b", &mart_b_->db(), "tier2b",
                          "", ""})
                    .ok());

    auto make_server = [&](const char* name, const char* host) {
      core::DataAccessConfig config;
      config.server_name = name;
      config.host = host;
      config.server_url = std::string("clarens://") + host + ":8080/clarens";
      config.rls_url = "rls://rls-host:39281/rls";
      return std::make_unique<core::JClarensServer>(config, &catalog_,
                                                    transport_.get());
    };
    server_a_ = make_server("jc-a", "tier2a");
    server_b_ = make_server("jc-b", "tier2b");
    ASSERT_TRUE(server_a_->service()
                    .RegisterLiveDatabase("mysql://tier2a/mart_a", "")
                    .ok());
    ASSERT_TRUE(server_b_->service()
                    .RegisterLiveDatabase("mssql://tier2b/mart_b", "")
                    .ok());
  }

  /// The same query answered by the warehouse directly (fact tables) and
  /// by the federation (materialized marts, across two servers).
  void ExpectFederationMatchesWarehouse(const std::string& mart_query,
                                        const std::string& warehouse_query) {
    auto expected = wh_->db().Execute(warehouse_query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    core::QueryStats stats;
    auto actual = server_a_->service().Query(mart_query, &stats);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(expected->num_rows(), actual->num_rows()) << mart_query;
    for (size_t r = 0; r < expected->num_rows(); ++r) {
      for (size_t c = 0; c < expected->num_columns(); ++c) {
        const Value& e = expected->rows[r][c];
        const Value& a = actual->rows[r][c];
        if (e.type() == storage::DataType::kDouble) {
          ASSERT_NEAR(e.AsDoubleStrict(), a.AsDouble().value(), 1e-9);
        } else {
          ASSERT_EQ(e.Compare(a), 0)
              << mart_query << " row " << r << " col " << c;
        }
      }
    }
  }

  net::Network network_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<rls::RlsServer> rls_;
  std::unique_ptr<ntuple::Ntuple> nt_;
  std::vector<ntuple::RunInfo> runs_;
  std::unique_ptr<engine::Database> source_;
  std::unique_ptr<warehouse::DataWarehouse> wh_;
  std::unique_ptr<warehouse::EtlPipeline> pipeline_;
  std::unique_ptr<warehouse::DataMart> mart_a_;
  std::unique_ptr<warehouse::DataMart> mart_b_;
  ral::DatabaseCatalog catalog_;
  std::unique_ptr<core::JClarensServer> server_a_;
  std::unique_ptr<core::JClarensServer> server_b_;
};

TEST_F(PipelineTest, EtlPreservedEveryRow) {
  EXPECT_EQ(wh_->db().RowCount("fact_event"), 2000u);
  EXPECT_EQ(mart_a_->db().RowCount("v_events"), 2000u);
  EXPECT_EQ(mart_b_->db().RowCount("v_runs"), runs_.size());
  // Spot-check a value survived normalization -> ETL -> materialization.
  auto original = nt_->events()[42];
  auto rs = mart_a_->db().Execute(
      "SELECT e_total FROM v_events WHERE event_id = " +
      std::to_string(original.event_id));
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_NEAR(rs->rows[0][0].AsDoubleStrict(), original.values[0], 1e-9);
}

TEST_F(PipelineTest, SingleMartQueriesMatchWarehouse) {
  ExpectFederationMatchesWarehouse(
      "SELECT event_id, e_total FROM v_events WHERE e_total > 50 "
      "ORDER BY event_id",
      "SELECT event_id, e_total FROM fact_event WHERE e_total > 50 "
      "ORDER BY event_id");
}

TEST_F(PipelineTest, CrossServerJoinMatchesWarehouse) {
  // v_events is on server A, v_runs on server B: RLS + forwarding.
  ExpectFederationMatchesWarehouse(
      "SELECT r.detector, COUNT(*) AS n, AVG(e.pt) AS avg_pt "
      "FROM v_events e JOIN v_runs r ON e.run_id = r.run_id "
      "GROUP BY r.detector ORDER BY r.detector",
      "SELECT d.detector, COUNT(*) AS n, AVG(f.pt) AS avg_pt "
      "FROM fact_event f JOIN dim_run d ON f.run_id = d.run_id "
      "GROUP BY d.detector ORDER BY d.detector");
}

TEST_F(PipelineTest, HistogramsIdenticalThroughEitherPath) {
  auto wh_rows = wh_->db().Execute("SELECT mass FROM fact_event");
  ASSERT_TRUE(wh_rows.ok());
  auto fed_rows =
      server_b_->service().Query("SELECT mass FROM v_events", nullptr);
  ASSERT_TRUE(fed_rows.ok()) << fed_rows.status().ToString();

  ntuple::Histogram1D direct("mass", 40, 50.0, 130.0);
  ntuple::Histogram1D federated("mass", 40, 50.0, 130.0);
  ASSERT_TRUE(ntuple::FillFromResultSet(direct, *wh_rows, "mass").ok());
  ASSERT_TRUE(ntuple::FillFromResultSet(federated, *fed_rows, "mass").ok());
  ASSERT_EQ(direct.entries(), federated.entries());
  for (int bin = 0; bin < direct.nbins(); ++bin) {
    EXPECT_DOUBLE_EQ(direct.BinContent(bin), federated.BinContent(bin))
        << "bin " << bin;
  }
}

TEST_F(PipelineTest, RefreshPropagatesNewWarehouseRows) {
  ntuple::GeneratorOptions more;
  more.num_events = 100;
  more.seed = 99;
  more.first_event_id = 100001;
  ntuple::Ntuple extra = ntuple::GenerateNtuple(more);
  ASSERT_TRUE(wh_->db()
                  .InsertRows("fact_event",
                              ntuple::DenormalizedRows(
                                  extra, ntuple::GenerateRuns(more)))
                  .ok());
  ASSERT_TRUE(
      warehouse::RefreshView(*wh_, "v_events", *mart_a_, *pipeline_).ok());
  auto rs = server_a_->service().Query("SELECT COUNT(*) FROM v_events",
                                       nullptr);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt64Strict(), 2100);
}

TEST_F(PipelineTest, EndToEndOverTheWire) {
  rpc::RpcClient client(transport_.get(), "client",
                        "clarens://tier2a:8080/clarens");
  rpc::XmlRpcArray params;
  params.emplace_back(
      "SELECT e.event_id, r.detector FROM v_events e "
      "JOIN v_runs r ON e.run_id = r.run_id WHERE e.pt > 60 "
      "ORDER BY e.event_id");
  net::Cost cost;
  auto response = client.Call("dataaccess.query", std::move(params), &cost);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto rs = rpc::RpcToResultSet(**response->Member("result"));
  ASSERT_TRUE(rs.ok());
  core::QueryStats stats = core::StatsFromRpc(**response->Member("stats"));
  EXPECT_TRUE(stats.used_rls);
  EXPECT_EQ(stats.servers_contacted, 2u);
  EXPECT_GT(cost.total_ms(), stats.simulated_ms);
  auto direct = wh_->db().Execute(
      "SELECT event_id FROM fact_event WHERE pt > 60");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(rs->num_rows(), direct->num_rows());
}

}  // namespace
}  // namespace griddb
