// Property-style tests for the stage-file cell escaping and the chunked
// (v2) stage format: every string a producer can emit must round-trip
// byte-exactly, and the NULL marker must never be confusable with data
// that happens to look like it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "griddb/storage/digest.h"
#include "griddb/storage/stage_file.h"
#include "griddb/util/md5.h"

namespace griddb::storage {
namespace {

Result<Value> RoundTrip(const Value& value, DataType type) {
  return UnescapeCell(EscapeCell(value), type);
}

// Deterministic pseudo-random byte stream (xorshift64*); no global
// entropy so failures reproduce exactly.
struct Rng {
  uint64_t state = 0x9e3779b97f4a7c15ull;
  uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }
};

TEST(StageEscaping, NullMarkerIsDistinctFromLiteralBackslashN) {
  // A NULL cell encodes as the two bytes \N ...
  EXPECT_EQ(EscapeCell(Value::Null()), "\\N");
  // ... while a *string* holding backslash-N escapes its backslash, so
  // the two are unambiguous on the wire.
  Value literal(std::string("\\N"));
  std::string escaped = EscapeCell(literal);
  EXPECT_NE(escaped, "\\N");

  auto back = RoundTrip(literal, DataType::kString);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->is_null());
  EXPECT_EQ(back->AsStringStrict(), "\\N");

  auto null_back = UnescapeCell("\\N", DataType::kString);
  ASSERT_TRUE(null_back.ok());
  EXPECT_TRUE(null_back->is_null());
}

TEST(StageEscaping, EmptyStringIsNotNull) {
  Value empty(std::string(""));
  std::string escaped = EscapeCell(empty);
  auto back = UnescapeCell(escaped, DataType::kString);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->is_null());
  EXPECT_EQ(back->AsStringStrict(), "");
}

TEST(StageEscaping, StructuralCharactersNeverSurviveEscaping) {
  // Tabs separate cells and newlines separate rows: an escaped cell must
  // contain neither, whatever the input.
  const std::string nasty_inputs[] = {
      "\t", "\n", "\r", "\r\n", "a\tb", "line1\nline2", "ends with tab\t",
      "\nstarts with newline", "\\", "\\\\", "\\t", "\\n",
      std::string("embedded\0null", 13), "mixed\t\n\r\\N\\here",
  };
  for (const std::string& input : nasty_inputs) {
    std::string escaped = EscapeCell(Value(input));
    EXPECT_EQ(escaped.find('\t'), std::string::npos) << "input: " << input;
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << "input: " << input;
    auto back = RoundTrip(Value(input), DataType::kString);
    ASSERT_TRUE(back.ok()) << "input: " << input;
    EXPECT_EQ(back->AsStringStrict(), input) << "escaped as: " << escaped;
  }
}

TEST(StageEscaping, RandomStringsRoundTripByteExactly) {
  Rng rng;
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    size_t length = rng.Next() % 40;
    for (size_t i = 0; i < length; ++i) {
      // Bias toward the interesting bytes: separators, backslash, 'N'.
      const char interesting[] = {'\t', '\n', '\r', '\\', 'N', ' '};
      uint64_t roll = rng.Next();
      if (roll % 3 == 0) {
        input.push_back(interesting[roll % sizeof(interesting)]);
      } else {
        input.push_back(static_cast<char>(roll % 256));
      }
    }
    auto back = RoundTrip(Value(input), DataType::kString);
    ASSERT_TRUE(back.ok()) << "trial " << trial;
    EXPECT_EQ(back->AsStringStrict(), input) << "trial " << trial;
  }
}

TEST(StageEscaping, NonStringTypesRoundTripThroughTheirColumnType) {
  auto i = RoundTrip(Value(int64_t{-9007199254740993}), DataType::kInt64);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->AsInt64Strict(), -9007199254740993);

  auto d = RoundTrip(Value(2.5), DataType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->AsDoubleStrict(), 2.5);

  auto b = RoundTrip(Value(true), DataType::kBool);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->AsBoolStrict());

  // NULL round-trips as NULL under every column type.
  for (DataType type : {DataType::kInt64, DataType::kDouble,
                        DataType::kString, DataType::kBool}) {
    auto n = RoundTrip(Value::Null(), type);
    ASSERT_TRUE(n.ok());
    EXPECT_TRUE(n->is_null());
  }
}

TEST(StageEscaping, RowsOfHostileStringsSurviveAFullStageFile) {
  TableSchema schema("hostile",
                     {{"id", DataType::kInt64, true, true},
                      {"payload", DataType::kString, false, false}});
  std::vector<Row> rows;
  rows.push_back({Value(int64_t{1}), Value(std::string("tab\there"))});
  rows.push_back({Value(int64_t{2}), Value(std::string("line\nbreak"))});
  rows.push_back({Value(int64_t{3}), Value(std::string("\\N"))});
  rows.push_back({Value(int64_t{4}), Value::Null()});
  rows.push_back({Value(int64_t{5}), Value(std::string(""))});
  rows.push_back({Value(int64_t{6}), Value(std::string("\r\\\t\n mix"))});

  auto decoded = DecodeStage(EncodeStage(schema, rows));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->rows.size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(decoded->rows[r].size(), 2u);
    EXPECT_TRUE(decoded->rows[r][1].is_null() == rows[r][1].is_null());
    if (!rows[r][1].is_null()) {
      EXPECT_EQ(decoded->rows[r][1].AsStringStrict(),
                rows[r][1].AsStringStrict())
          << "row " << r;
    }
  }
}

struct ChunkedStageFile : public ::testing::Test {
  ChunkedStageFile() {
    dir_ = (std::filesystem::temp_directory_path() / "griddb_stage_prop_test")
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    schema_ = TableSchema("t", {{"id", DataType::kInt64, true, true},
                                {"s", DataType::kString, false, false}});
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  Status Append(const std::string& path, size_t id,
                const std::vector<Row>& rows) {
    std::string block = EncodeRowBlock(rows);
    StageChunk chunk;
    chunk.id = id;
    chunk.rows = rows.size();
    chunk.md5 = Md5Hex(block);
    return AppendStageChunk(path, schema_, chunk, block);
  }

  std::string dir_;
  TableSchema schema_;
};

TEST_F(ChunkedStageFile, LastFrameForAChunkIdWins) {
  const std::string path = Path("supersede.stage");
  std::vector<Row> original = {{Value(int64_t{1}), Value("old")}};
  std::vector<Row> replacement = {{Value(int64_t{1}), Value("new")},
                                  {Value(int64_t{2}), Value("extra")}};
  ASSERT_TRUE(Append(path, 0, original).ok());
  ASSERT_TRUE(Append(path, 1, original).ok());
  // Chunk 0 is re-staged (e.g. after corruption): appended again.
  ASSERT_TRUE(Append(path, 0, replacement).ok());

  auto stage = ReadChunkedStageFile(path);
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  ASSERT_EQ(stage->chunks.size(), 2u);
  ASSERT_EQ(stage->chunks[0].id, 0u);
  EXPECT_EQ(stage->chunks[0].rows, 2u);
  EXPECT_EQ(stage->rows[0][0][1].AsStringStrict(), "new");
}

TEST_F(ChunkedStageFile, TolerantReaderReportsOnlyTheDamagedChunk) {
  const std::string path = Path("tolerant.stage");
  ASSERT_TRUE(Append(path, 0, {{Value(int64_t{1}), Value("aaaa")}}).ok());
  ASSERT_TRUE(Append(path, 1, {{Value(int64_t{2}), Value("bbbb")}}).ok());
  ASSERT_TRUE(Append(path, 2, {{Value(int64_t{3}), Value("cccc")}}).ok());

  // Flip payload bytes inside chunk 1's row line.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  size_t pos = content.find("bbbb");
  ASSERT_NE(pos, std::string::npos);
  content.replace(pos, 4, "XXXX");
  std::ofstream(path, std::ios::binary | std::ios::trunc) << content;

  // The strict reader refuses the whole file...
  EXPECT_EQ(ReadChunkedStageFile(path).status().code(),
            StatusCode::kCorruption);

  // ...the tolerant reader returns the intact chunks and names the bad one.
  std::vector<size_t> corrupt;
  auto stage = ReadChunkedStageFileTolerant(path, &corrupt);
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  ASSERT_EQ(corrupt.size(), 1u);
  EXPECT_EQ(corrupt[0], 1u);
  ASSERT_EQ(stage->chunks.size(), 2u);
  EXPECT_EQ(stage->chunks[0].id, 0u);
  EXPECT_EQ(stage->chunks[1].id, 2u);

  // A re-staged (appended) good frame heals the file: nothing corrupt.
  ASSERT_TRUE(Append(path, 1, {{Value(int64_t{2}), Value("bbbb")}}).ok());
  corrupt.clear();
  auto healed = ReadChunkedStageFileTolerant(path, &corrupt);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(corrupt.empty());
  EXPECT_EQ(healed->chunks.size(), 3u);
}

TEST_F(ChunkedStageFile, RottedHeaderIsDetectedNotSilentlyServed) {
  const std::string path = Path("header_rot.stage");
  ASSERT_TRUE(Append(path, 0, {{Value(int64_t{1}), Value("aaaa")}}).ok());

  // Flip the case of a column NAME in the schema header. Frame digests
  // cover row blocks only, and "column S STRING" still parses — without
  // the header digest this silently renamed the column in every table
  // rebuilt from the file (found by the chaos sweep as a served batch
  // result whose header differed from the oracle by exactly one bit).
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  size_t pos = content.find("column s ");
  ASSERT_NE(pos, std::string::npos);
  content.replace(pos, 9, "column S ");
  std::ofstream(path, std::ios::binary | std::ios::trunc) << content;

  // Strict reader: refused outright.
  EXPECT_EQ(ReadChunkedStageFile(path).status().code(),
            StatusCode::kCorruption);

  // Tolerant reader: a rotted header poisons everything after it, so it
  // reports a tear at byte zero — the caller truncates the file away and
  // re-stages from the source, exactly like an unreadable file.
  std::vector<size_t> corrupt;
  StageDamage damage;
  auto stage = ReadChunkedStageFileTolerant(path, &corrupt, &damage);
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  EXPECT_TRUE(damage.torn);
  EXPECT_EQ(damage.intact_bytes, 0u);
  EXPECT_TRUE(stage->chunks.empty());
}

TEST_F(ChunkedStageFile, LegacyHeaderWithoutDigestLineStillReads) {
  // A file from a writer predating the header_md5 line must stay
  // readable: the digest is verified when present, not required.
  const std::string path = Path("legacy.stage");
  std::vector<Row> rows = {{Value(int64_t{7}), Value("x")}};
  std::string block = EncodeRowBlock(rows);
  std::string content =
      "# griddb-stage v2\n"
      "table t\n"
      "column id INT64 pk notnull\n"
      "column s STRING\n";
  content += "chunk 0 rows 1 md5 " + Md5Hex(block) + "\n" + block;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << content;

  auto stage = ReadChunkedStageFile(path);
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  ASSERT_EQ(stage->chunks.size(), 1u);
  EXPECT_EQ(stage->rows[0][0][1].AsStringStrict(), "x");
}

TEST_F(ChunkedStageFile, ChunkDigestsComposeWithTheTableDigest) {
  // Staging rows in chunks and digesting the reassembled rows must agree
  // with digesting the original rows directly — in any order.
  std::vector<Row> all = {
      {Value(int64_t{1}), Value("x")},
      {Value(int64_t{2}), Value::Null()},
      {Value(int64_t{3}), Value(std::string("y\tz"))},
  };
  const std::string path = Path("digest.stage");
  ASSERT_TRUE(Append(path, 0, {all[2], all[0]}).ok());
  ASSERT_TRUE(Append(path, 1, {all[1]}).ok());

  auto stage = ReadChunkedStageFile(path);
  ASSERT_TRUE(stage.ok());
  std::vector<Row> reassembled;
  for (const auto& chunk_rows : stage->rows) {
    reassembled.insert(reassembled.end(), chunk_rows.begin(),
                       chunk_rows.end());
  }
  EXPECT_EQ(DigestRows(reassembled), DigestRows(all));
}

TEST_F(ChunkedStageFile, ManifestRoundTripsAndRenameReplaceIsAtomic) {
  StageManifest manifest;
  manifest.total_chunks = 4;
  manifest.committed.push_back({0, 32, "00112233445566778899aabbccddeeff"});
  manifest.committed.push_back({2, 17, "ffeeddccbbaa99887766554433221100"});
  manifest.loaded.push_back(0);

  auto decoded = DecodeManifest(EncodeManifest(manifest));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->total_chunks, 4u);
  ASSERT_EQ(decoded->committed.size(), 2u);
  EXPECT_EQ(decoded->committed[1].id, 2u);
  EXPECT_EQ(decoded->committed[1].rows, 17u);
  EXPECT_NE(decoded->FindCommitted(2), nullptr);
  EXPECT_EQ(decoded->FindCommitted(1), nullptr);
  EXPECT_TRUE(decoded->IsLoaded(0));
  EXPECT_FALSE(decoded->IsLoaded(2));

  // Overwriting an existing manifest goes through temp+rename: the file
  // is always a complete manifest, and no temp file is left behind.
  const std::string path = Path("run.manifest");
  ASSERT_TRUE(WriteManifestFile(path, manifest).ok());
  manifest.loaded.push_back(2);
  ASSERT_TRUE(WriteManifestFile(path, manifest).ok());
  auto reread = ReadManifestFile(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_TRUE(reread->IsLoaded(2));
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);  // just run.manifest; the temp was renamed away
}

}  // namespace
}  // namespace griddb::storage
