#include <gtest/gtest.h>

#include <filesystem>

#include "griddb/ntuple/ntuple.h"
#include "griddb/warehouse/etl.h"
#include "griddb/warehouse/materialize.h"
#include "griddb/warehouse/warehouse.h"

namespace griddb::warehouse {
namespace {

using storage::DataType;
using storage::TableSchema;
using storage::Value;

std::string StagingDir() {
  return (std::filesystem::temp_directory_path() / "griddb_etl_test").string();
}

struct EtlFixture : public ::testing::Test {
  EtlFixture()
      : source("src_mysql", sql::Vendor::kMySql),
        wh("warehouse", "cern-tier1"),
        mart("mart_lite", sql::Vendor::kSqlite, "caltech-tier2"),
        pipeline(&network, net::ServiceCosts::Default(), EtlCosts::Default(),
                 "cern-tier1", StagingDir()) {
    network.AddHost("cern-tier1");
    network.AddHost("caltech-tier2");
    network.AddHost("src-host");

    // Normalized ntuple source.
    ntuple::GeneratorOptions gen;
    gen.num_events = 200;
    gen.nvar = 8;
    gen.seed = 42;
    nt_ = std::make_unique<ntuple::Ntuple>(
        ntuple::GenerateNtuple(gen));
    runs_ = ntuple::GenerateRuns(gen);
    EXPECT_TRUE(ntuple::CreateNormalizedSchema(source).ok());
    EXPECT_TRUE(ntuple::LoadNormalized(*nt_, runs_, source).ok());

    // Denormalized star target in the warehouse.
    StarSchemaSpec star;
    star.fact = ntuple::DenormalizedSchema(*nt_, "fact_event");
    star.dimensions.push_back(
        {TableSchema("dim_run", {{"run_id", DataType::kInt64, true, true},
                                 {"detector", DataType::kString, true, false}}),
         "run_id"});
    EXPECT_TRUE(wh.DefineStarSchema(star).ok());
  }

  net::Network network;
  engine::Database source;
  DataWarehouse wh;
  DataMart mart;
  EtlPipeline pipeline;
  std::unique_ptr<ntuple::Ntuple> nt_;
  std::vector<ntuple::RunInfo> runs_;
};

TEST_F(EtlFixture, StarSchemaMaterializesWithForeignKeys) {
  EXPECT_TRUE(wh.db().HasTable("fact_event"));
  EXPECT_TRUE(wh.db().HasTable("dim_run"));
  auto schema = wh.db().GetSchema("fact_event");
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->foreign_keys().size(), 1u);
  EXPECT_EQ(schema->foreign_keys()[0].referenced_table, "dim_run");
}

TEST_F(EtlFixture, DirectFactLoadViaDenormalizedRows) {
  ASSERT_TRUE(wh.db()
                  .InsertRows("fact_event",
                              ntuple::DenormalizedRows(*nt_, runs_))
                  .ok());
  EXPECT_EQ(wh.db().RowCount("fact_event"), 200u);
}

TEST_F(EtlFixture, Stage1EtlThroughTempFile) {
  // The paper's stage 1: extract from the normalized source, denormalize,
  // stage, load into the warehouse. Here the extract query already does
  // the denormalization join for one variable subset.
  EtlPipeline::Job job;
  job.source = &source;
  job.source_host = "src-host";
  job.extract_sql =
      "SELECT e.event_id, e.run_id, r.detector FROM events e "
      "JOIN runs r ON e.run_id = r.run_id";
  job.target = &wh.db();
  job.target_host = "cern-tier1";
  job.target_table = "event_index";
  job.create_target = true;
  auto stats = pipeline.Run(job);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows, 200u);
  EXPECT_GT(stats->staged_bytes, 0u);
  EXPECT_GT(stats->extract_ms, 0.0);
  EXPECT_GT(stats->load_ms, 0.0);
  EXPECT_EQ(wh.db().RowCount("event_index"), 200u);
}

TEST_F(EtlFixture, LoadCurveSitsAboveExtractCurve) {
  // Figure 4/5 shape: for the same bytes, loading is slower than
  // extraction (insert per-row + commit overheads).
  EtlPipeline::Job job;
  job.source = &source;
  job.source_host = "src-host";
  job.extract_sql = "SELECT event_id, run_id FROM events";
  job.target = &wh.db();
  job.target_host = "cern-tier1";
  job.target_table = "ids";
  job.create_target = true;
  auto stats = pipeline.Run(job);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->load_ms, 0.6 * stats->extract_ms);
}

TEST_F(EtlFixture, TransformDenormalizesDuringExtraction) {
  EtlPipeline::Job job;
  job.source = &source;
  job.source_host = "src-host";
  job.extract_sql = "SELECT event_id, run_id FROM events";
  job.target = &wh.db();
  job.target_host = "cern-tier1";
  job.target_table = "event_flagged";
  job.create_target = true;
  job.transform = [](const storage::Row& row) -> Result<storage::Row> {
    storage::Row out = row;
    GRIDDB_ASSIGN_OR_RETURN(int64_t run, row[1].AsInt64());
    out.push_back(Value(run % 2 == 0 ? "even" : "odd"));
    return out;
  };
  auto stats = pipeline.Run(job);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto rs = wh.db().Execute("SELECT COUNT(*) FROM event_flagged "
                            "WHERE ROWNUM <= 100000");
  ASSERT_TRUE(rs.ok());
  auto sample =
      wh.db().Execute("SELECT * FROM event_flagged WHERE ROWNUM <= 1");
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->num_columns(), 3u);
}

TEST_F(EtlFixture, MissingTargetTableFailsWithoutCreateFlag) {
  EtlPipeline::Job job;
  job.source = &source;
  job.source_host = "src-host";
  job.extract_sql = "SELECT event_id FROM events";
  job.target = &wh.db();
  job.target_host = "cern-tier1";
  job.target_table = "nonexistent";
  auto stats = pipeline.Run(job);
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST_F(EtlFixture, DirectStreamingIsFasterThanStaging) {
  EtlPipeline::Job job;
  job.source = &source;
  job.source_host = "src-host";
  job.extract_sql = "SELECT event_id, run_id FROM events";
  job.target = &wh.db();
  job.target_host = "cern-tier1";
  job.target_table = "staged_copy";
  job.create_target = true;
  auto staged = pipeline.Run(job);
  ASSERT_TRUE(staged.ok());

  job.target_table = "direct_copy";
  auto direct = pipeline.RunDirect(job);
  ASSERT_TRUE(direct.ok());

  EXPECT_EQ(staged->rows, direct->rows);
  EXPECT_LT(direct->total_ms(), staged->total_ms());
  EXPECT_EQ(wh.db().RowCount("direct_copy"), 200u);
}

TEST_F(EtlFixture, ViewsAndMaterializationIntoMart) {
  ASSERT_TRUE(wh.db()
                  .InsertRows("fact_event",
                              ntuple::DenormalizedRows(*nt_, runs_))
                  .ok());
  ASSERT_TRUE(wh.CreateAnalysisView(
                    "v_high_energy",
                    "SELECT event_id, run_id, e_total, pt FROM fact_event "
                    "WHERE e_total > 20")
                  .ok());

  auto stats = MaterializeView(wh, "v_high_energy", mart, pipeline);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->rows, 0u);
  EXPECT_TRUE(mart.db().HasTable("v_high_energy"));
  EXPECT_EQ(mart.db().RowCount("v_high_energy"), stats->rows);

  // The mart copy is queryable in the mart's own dialect (SQLite).
  auto rs = mart.db().Execute("SELECT COUNT(*) FROM v_high_energy LIMIT 1");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(static_cast<size_t>(rs->rows[0][0].AsInt64Strict()), stats->rows);
}

TEST_F(EtlFixture, MaterializeUnknownViewFails) {
  EXPECT_EQ(MaterializeView(wh, "ghost_view", mart, pipeline).status().code(),
            StatusCode::kNotFound);
}

TEST_F(EtlFixture, RefreshReplacesMartCopy) {
  ASSERT_TRUE(wh.db()
                  .InsertRows("fact_event",
                              ntuple::DenormalizedRows(*nt_, runs_))
                  .ok());
  ASSERT_TRUE(
      wh.CreateAnalysisView("v_all", "SELECT event_id FROM fact_event").ok());
  ASSERT_TRUE(MaterializeView(wh, "v_all", mart, pipeline).ok());
  size_t before = mart.db().RowCount("v_all");

  // New rows arrive in the warehouse; refresh picks them up.
  ntuple::GeneratorOptions more;
  more.num_events = 50;
  more.seed = 77;
  more.first_event_id = 10001;
  ntuple::Ntuple extra = ntuple::GenerateNtuple(more);
  ASSERT_TRUE(
      wh.db()
          .InsertRows("fact_event",
                      ntuple::DenormalizedRows(extra, ntuple::GenerateRuns(more)))
          .ok());
  auto stats = RefreshView(wh, "v_all", mart, pipeline);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(mart.db().RowCount("v_all"), before + 50);
}

TEST_F(EtlFixture, EtlTimeGrowsWithDataSize) {
  EtlPipeline::Job job;
  job.source = &source;
  job.source_host = "src-host";
  job.target = &wh.db();
  job.target_host = "cern-tier1";
  job.create_target = true;

  job.extract_sql = "SELECT event_id, var_id, value FROM event_values "
                    "WHERE event_id <= 20";
  job.target_table = "small_copy";
  auto small = pipeline.Run(job);
  ASSERT_TRUE(small.ok());

  job.extract_sql = "SELECT event_id, var_id, value FROM event_values";
  job.target_table = "large_copy";
  auto large = pipeline.Run(job);
  ASSERT_TRUE(large.ok());

  EXPECT_GT(large->staged_bytes, small->staged_bytes);
  EXPECT_GT(large->extract_ms, small->extract_ms);
  EXPECT_GT(large->load_ms, small->load_ms);
}

}  // namespace
}  // namespace griddb::warehouse
