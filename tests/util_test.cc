#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <vector>

#include "griddb/util/journal.h"
#include "griddb/util/logging.h"
#include "griddb/util/md5.h"
#include "griddb/util/rng.h"
#include "griddb/util/status.h"
#include "griddb/util/stopwatch.h"
#include "griddb/util/strings.h"
#include "griddb/util/thread_pool.h"

namespace griddb {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("table 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table 'x'");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: table 'x'");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFound("a"), NotFound("a"));
  EXPECT_FALSE(NotFound("a") == NotFound("b"));
  EXPECT_FALSE(NotFound("a") == InvalidArgument("a"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kPermissionDenied,
        StatusCode::kUnavailable, StatusCode::kInternal,
        StatusCode::kUnsupported, StatusCode::kTimeout}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  GRIDDB_ASSIGN_OR_RETURN(int half, Half(v));
  GRIDDB_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(5).ok());
}

// ---------- strings ----------

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("HeLLo_123"), "hello_123");
  EXPECT_EQ(ToUpper("HeLLo_123"), "HELLO_123");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_TRUE(EndsWith("hello", "llo"));
  EXPECT_FALSE(EndsWith("hello", "hel"));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  std::vector<std::string> parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitTrimmedDropsEmpties) {
  std::vector<std::string> parts = SplitTrimmed(" a , , b ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a'b'c", "'", "''"), "a''b''c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringsTest, ParseInt64RejectsPartial) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64("  7 ", &v));
  EXPECT_FALSE(ParseInt64("7x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25e2", &v));
  EXPECT_DOUBLE_EQ(v, 325.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
}

// ---------- MD5 (RFC 1321 test vectors) ----------

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5Hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5Hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5Hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5Hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5Hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5Hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5Hex("1234567890123456789012345678901234567890123456789012345678"
                   "9012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  Md5 hasher;
  hasher.Update("mess");
  hasher.Update("age ");
  hasher.Update("digest");
  EXPECT_EQ(hasher.HexDigest(), Md5Hex("message digest"));
}

TEST(Md5Test, BlockBoundaries) {
  // Lengths around the 64-byte block / 56-byte padding boundary.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    std::string data(len, 'x');
    Md5 incremental;
    for (char c : data) incremental.Update(&c, 1);
    EXPECT_EQ(incremental.HexDigest(), Md5Hex(data)) << "len=" << len;
  }
}

// ---------- RNG ----------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

// ---------- Logger ----------

TEST(LoggerTest, ThresholdFilters) {
  Logger& logger = Logger::Instance();
  logger.set_to_stderr(false);
  logger.set_threshold(LogLevel::kWarn);
  logger.ClearTail();
  GRIDDB_LOG(Debug) << "dropped";
  GRIDDB_LOG(Error) << "kept " << 42;
  auto tail = logger.Tail();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], "[ERROR] kept 42");
}

// ---------- Stopwatch ----------

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  double t0 = sw.ElapsedMs();
  EXPECT_GE(t0, 0.0);
  // Monotonic.
  EXPECT_GE(sw.ElapsedMs(), t0);
}

// ---------- journal (crash-consistent append log) ----------

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("griddb_journal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "test.journal").string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string ReadRaw() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  void WriteRaw(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(JournalTest, MissingFileIsEmptyJournal) {
  auto replay = util::ReadJournal(path_);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->records.empty());
  EXPECT_FALSE(replay->truncated);
}

TEST_F(JournalTest, RoundTripsRecordsInOrderIncludingNewlines) {
  util::JournalWriter writer(path_);
  std::vector<std::string> payloads = {
      "submit\nid 1\nsql SELECT 1",  // embedded newlines
      "",                            // empty payload is a valid record
      std::string("\0binary\xff", 8),
      "plain"};
  for (const std::string& p : payloads) {
    ASSERT_TRUE(writer.Append(p).ok());
  }
  auto replay = util::ReadJournal(path_);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->truncated);
  ASSERT_EQ(replay->records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(replay->records[i], payloads[i]) << "record " << i;
  }
}

TEST_F(JournalTest, BadMagicIsCorruption) {
  WriteRaw("not a journal\nrec 5 md5 x\nhello\n");
  auto replay = util::ReadJournal(path_);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
}

// The core crash property: truncating the file at ANY byte boundary
// (what a crash mid-append leaves behind) yields the longest intact
// record prefix, flagged truncated — never an error, never a mangled
// record, never a record from past the cut.
TEST_F(JournalTest, EveryTruncationPointYieldsIntactPrefix) {
  util::JournalWriter writer(path_);
  std::vector<std::string> payloads;
  Rng rng(20260809);
  for (int i = 0; i < 6; ++i) {
    std::string p = "record " + std::to_string(i) + "\n";
    const int64_t extra = rng.UniformInt(0, 39);
    for (int64_t j = 0; j < extra; ++j) {
      p += static_cast<char>(rng.UniformInt(0, 255));
    }
    payloads.push_back(p);
    ASSERT_TRUE(writer.Append(p).ok());
  }
  writer.Close();
  const std::string full = ReadRaw();

  // Frame boundaries: the byte offsets at which exactly k records are
  // complete (magic + k frames).
  std::vector<size_t> boundaries;
  {
    size_t off = std::string("griddb-journal v1\n").size();
    boundaries.push_back(off);
    for (const std::string& p : payloads) {
      off += std::string("rec ").size() + std::to_string(p.size()).size() +
             std::string(" md5 ").size() + 32 + 1 + p.size() + 1;
      boundaries.push_back(off);
    }
    ASSERT_EQ(off, full.size());
  }

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteRaw(full.substr(0, cut));
    auto replay = util::ReadJournal(path_);
    if (cut < boundaries.front()) {
      // Inside the magic header: the very first append was torn by a
      // crash. An empty journal with a torn tail, never an error —
      // recovery must be able to repair and continue from it.
      ASSERT_TRUE(replay.ok()) << "cut at " << cut;
      EXPECT_TRUE(replay->records.empty());
      EXPECT_EQ(replay->truncated, cut != 0) << "cut at " << cut;
      EXPECT_EQ(replay->intact_bytes, 0u) << "cut at " << cut;
      continue;
    }
    ASSERT_TRUE(replay.ok()) << "cut at " << cut << ": "
                             << replay.status().ToString();
    // Number of fully intact records at this cut.
    size_t intact = 0;
    while (intact + 1 < boundaries.size() && boundaries[intact + 1] <= cut) {
      ++intact;
    }
    EXPECT_EQ(replay->records.size(), intact) << "cut at " << cut;
    EXPECT_EQ(replay->truncated, cut != boundaries[intact])
        << "cut at " << cut;
    // The reported intact prefix is exactly the last frame boundary:
    // truncating there and appending must yield a journal whose replay
    // is prefix + the new record (the torn-tail repair contract).
    EXPECT_EQ(replay->intact_bytes, boundaries[intact]) << "cut at " << cut;
    for (size_t i = 0; i < replay->records.size(); ++i) {
      EXPECT_EQ(replay->records[i], payloads[i]);
    }
  }
}

// The repair half of the torn-tail story: truncate to the reported
// intact prefix, append, and the replay sees prefix + new record — at
// EVERY cut point, including cuts inside the magic header. Without the
// repair, an O_APPEND write after the torn bytes is unreachable by
// replay (it stops at the tear), silently losing the new record.
TEST_F(JournalTest, TruncateToIntactPrefixMakesAppendsReplayableAgain) {
  util::JournalWriter writer(path_);
  ASSERT_TRUE(writer.Append("first").ok());
  ASSERT_TRUE(writer.Append("second").ok());
  writer.Close();
  const std::string full = ReadRaw();

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteRaw(full.substr(0, cut));
    auto torn = util::ReadJournal(path_);
    ASSERT_TRUE(torn.ok()) << "cut at " << cut;
    const std::vector<std::string> prefix = torn->records;

    util::JournalWriter repair(path_);
    ASSERT_TRUE(repair.TruncateTo(torn->intact_bytes).ok())
        << "cut at " << cut;
    ASSERT_TRUE(repair.Append("appended after repair").ok());
    repair.Close();

    auto replay = util::ReadJournal(path_);
    ASSERT_TRUE(replay.ok()) << "cut at " << cut;
    EXPECT_FALSE(replay->truncated) << "cut at " << cut;
    ASSERT_EQ(replay->records.size(), prefix.size() + 1) << "cut at " << cut;
    for (size_t i = 0; i < prefix.size(); ++i) {
      EXPECT_EQ(replay->records[i], prefix[i]);
    }
    EXPECT_EQ(replay->records.back(), "appended after repair");
  }
}

// Flipping any single byte of the LAST record's frame must not produce a
// wrong record: the tail is dropped (digest or header mismatch) and the
// prefix survives. Damage confined to the tail is exactly what a torn
// append can leave.
TEST_F(JournalTest, CorruptTailByteDropsOnlyTheTail) {
  util::JournalWriter writer(path_);
  ASSERT_TRUE(writer.Append("first record").ok());
  ASSERT_TRUE(writer.Append("second record").ok());
  writer.Close();
  const std::string full = ReadRaw();
  // Locate the start of the second frame.
  const std::string needle = "rec 13 md5 ";
  const size_t second = full.rfind(needle);
  ASSERT_NE(second, std::string::npos);

  for (size_t i = second; i < full.size(); ++i) {
    std::string damaged = full;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x5a);
    WriteRaw(damaged);
    auto replay = util::ReadJournal(path_);
    ASSERT_TRUE(replay.ok()) << "flip at " << i;
    ASSERT_GE(replay->records.size(), 1u) << "flip at " << i;
    EXPECT_EQ(replay->records[0], "first record");
    if (replay->records.size() == 2) {
      // A flip that decodes to a valid record must be byte-identical
      // (can only happen if the flip landed in trailing framing bytes
      // that still parse — the digest guarantees payload integrity).
      EXPECT_EQ(replay->records[1], "second record");
    } else {
      EXPECT_TRUE(replay->truncated) << "flip at " << i;
    }
  }
}

TEST_F(JournalTest, AtomicWriteFileReplacesWholeContent) {
  const std::string target = (dir_ / "manifest.txt").string();
  ASSERT_TRUE(util::AtomicWriteFile(target, "version 1\n").ok());
  ASSERT_TRUE(util::AtomicWriteFile(target, "version 2, longer\n").ok());
  std::ifstream in(target, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "version 2, longer\n");
  // No temp file litter.
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));
}

TEST_F(JournalTest, AppendAfterReopenContinuesTheLog) {
  {
    util::JournalWriter writer(path_);
    ASSERT_TRUE(writer.Append("before restart").ok());
  }  // destroyed = process exit
  {
    util::JournalWriter writer(path_);
    ASSERT_TRUE(writer.Append("after restart").ok());
  }
  auto replay = util::ReadJournal(path_);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0], "before restart");
  EXPECT_EQ(replay->records[1], "after restart");
}

}  // namespace
}  // namespace griddb
