#include <gtest/gtest.h>

#include "griddb/core/jclarens_server.h"
#include "griddb/core/schema_tracker.h"
#include "griddb/ntuple/histogram.h"
#include "griddb/unity/xspec.h"

namespace griddb::core {
namespace {

using storage::Value;

/// The paper's testbed shape (§5.2): two JClarens servers on a 100 Mbps
/// LAN, a central RLS, databases split between MS-SQL and MySQL.
struct GridFixture : public ::testing::Test {
  GridFixture()
      : transport(&network, net::ServiceCosts::Default()),
        my1("my1", sql::Vendor::kMySql),
        my2("my2", sql::Vendor::kMySql),
        ms1("ms1", sql::Vendor::kMsSql),
        ms2("ms2", sql::Vendor::kMsSql) {
    for (const char* host : {"server-a", "server-b", "rls-host", "client"}) {
      network.AddHost(host);
    }
    rls = std::make_unique<rls::RlsServer>("rls://rls-host:39281/rls",
                                           &transport);

    // Server A hosts: my1 (events), ms1 (runs).
    Seed(&my1, "CREATE TABLE EVENTS (EVENT_ID INT PRIMARY KEY, RUN_ID INT, "
               "ENERGY DOUBLE, TAG VARCHAR(16))");
    Seed(&my1, "INSERT INTO EVENTS (EVENT_ID, RUN_ID, ENERGY, TAG) VALUES "
               "(10, 1, 45.5, 'muon'), (11, 1, 12.0, 'electron'), "
               "(12, 2, 99.25, 'muon'), (13, 2, 7.5, 'photon'), "
               "(14, 3, 60.0, 'muon')");
    Seed(&ms1, "CREATE TABLE RUNS (RUN_ID BIGINT, DETECTOR NVARCHAR(16))");
    Seed(&ms1, "INSERT INTO RUNS (RUN_ID, DETECTOR) VALUES (1, 'ECAL'), "
               "(2, 'HCAL'), (3, 'TRACKER')");

    // Server B hosts: my2 (calibration), ms2 (conditions).
    Seed(&my2, "CREATE TABLE CALIB (SENSOR_ID INT PRIMARY KEY, RUN_ID INT, "
               "GAIN DOUBLE)");
    Seed(&my2, "INSERT INTO CALIB (SENSOR_ID, RUN_ID, GAIN) VALUES "
               "(100, 1, 1.02), (101, 2, 0.98), (102, 3, 1.10)");
    Seed(&ms2, "CREATE TABLE CONDITIONS (COND_ID BIGINT, RUN_ID BIGINT, "
               "TEMPERATURE FLOAT)");
    Seed(&ms2, "INSERT INTO CONDITIONS (COND_ID, RUN_ID, TEMPERATURE) VALUES "
               "(1, 1, 21.5), (2, 2, 22.0), (3, 3, 19.5)");

    EXPECT_TRUE(catalog.Add({"mysql://server-a/my1", &my1, "server-a", "", ""})
                    .ok());
    EXPECT_TRUE(catalog.Add({"mssql://server-a/ms1", &ms1, "server-a", "", ""})
                    .ok());
    EXPECT_TRUE(catalog.Add({"mysql://server-b/my2", &my2, "server-b", "", ""})
                    .ok());
    EXPECT_TRUE(catalog.Add({"mssql://server-b/ms2", &ms2, "server-b", "", ""})
                    .ok());

    DataAccessConfig config_a;
    config_a.server_name = "jclarens-a";
    config_a.host = "server-a";
    config_a.server_url = "clarens://server-a:8080/clarens";
    config_a.rls_url = "rls://rls-host:39281/rls";
    server_a = std::make_unique<JClarensServer>(config_a, &catalog, &transport,
                                                &xspec_repo);

    DataAccessConfig config_b = config_a;
    config_b.server_name = "jclarens-b";
    config_b.host = "server-b";
    config_b.server_url = "clarens://server-b:8080/clarens";
    server_b = std::make_unique<JClarensServer>(config_b, &catalog, &transport,
                                                &xspec_repo);

    EXPECT_TRUE(
        server_a->service().RegisterLiveDatabase("mysql://server-a/my1", "")
            .ok());
    EXPECT_TRUE(
        server_a->service().RegisterLiveDatabase("mssql://server-a/ms1", "")
            .ok());
    EXPECT_TRUE(
        server_b->service().RegisterLiveDatabase("mysql://server-b/my2", "")
            .ok());
    EXPECT_TRUE(
        server_b->service().RegisterLiveDatabase("mssql://server-b/ms2", "")
            .ok());
  }

  static void Seed(engine::Database* db, const std::string& sql) {
    auto result = db->Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }

  net::Network network;
  rpc::Transport transport;
  engine::Database my1, my2, ms1, ms2;
  ral::DatabaseCatalog catalog;
  XSpecRepository xspec_repo;
  std::unique_ptr<rls::RlsServer> rls;
  std::unique_ptr<JClarensServer> server_a;
  std::unique_ptr<JClarensServer> server_b;
};

// ---------- local queries ----------

TEST_F(GridFixture, LocalSingleTableQuery) {
  QueryStats stats;
  auto rs = server_a->service().Query(
      "SELECT event_id, energy FROM events WHERE energy > 40", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 3u);
  EXPECT_FALSE(stats.distributed);
  EXPECT_FALSE(stats.used_rls);
  EXPECT_EQ(stats.servers_contacted, 1u);
  EXPECT_EQ(stats.databases, 1u);
  EXPECT_EQ(stats.tables, 1u);
  EXPECT_GT(stats.simulated_ms, 0.0);
  // MySQL is POOL-supported and the query fits the RAL form.
  EXPECT_EQ(stats.pool_ral_subqueries, 1u);
  EXPECT_EQ(stats.jdbc_subqueries, 0u);
}

TEST_F(GridFixture, ComplexLocalQueryFallsBackToJdbc) {
  QueryStats stats;
  auto rs = server_a->service().Query(
      "SELECT tag, COUNT(*) AS n FROM events GROUP BY tag ORDER BY n DESC",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(stats.jdbc_subqueries, 1u);
  EXPECT_EQ(stats.pool_ral_subqueries, 0u);
}

TEST_F(GridFixture, LocalCrossDatabaseJoinRoutesBothPaths) {
  QueryStats stats;
  auto rs = server_a->service().Query(
      "SELECT e.event_id, r.detector FROM events e JOIN runs r "
      "ON e.run_id = r.run_id ORDER BY e.event_id",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 5u);
  EXPECT_TRUE(stats.distributed);
  EXPECT_EQ(stats.databases, 2u);
  EXPECT_EQ(stats.servers_contacted, 1u);
  // events -> MySQL (POOL path), runs -> MS-SQL (JDBC path).
  EXPECT_EQ(stats.pool_ral_subqueries, 1u);
  EXPECT_EQ(stats.jdbc_subqueries, 1u);
}

TEST_F(GridFixture, DistributedQueryCostsAnOrderOfMagnitudeMore) {
  QueryStats local, distributed;
  ASSERT_TRUE(server_a->service()
                  .Query("SELECT event_id FROM events WHERE event_id = 10",
                         &local)
                  .ok());
  ASSERT_TRUE(server_a->service()
                  .Query("SELECT e.event_id, r.detector FROM events e "
                         "JOIN runs r ON e.run_id = r.run_id",
                         &distributed)
                  .ok());
  // Table 1: 38 ms vs 487.5 ms — the distributed query is ~10x slower
  // because of connect/auth and integration.
  EXPECT_GT(distributed.simulated_ms, 5 * local.simulated_ms);
}

// ---------- RLS-mediated remote queries ----------

TEST_F(GridFixture, RemoteTableViaRlsForwardsWholeQuery) {
  QueryStats stats;
  // calib lives only on server B; server A must discover it via RLS.
  auto rs = server_a->service().Query(
      "SELECT sensor_id, gain FROM calib WHERE gain > 1.0", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 2u);
  EXPECT_TRUE(stats.used_rls);
  EXPECT_EQ(stats.servers_contacted, 2u);
  EXPECT_GE(stats.simulated_ms, transport.costs().rls_lookup_ms);
}

TEST_F(GridFixture, MixedLocalRemoteJoin) {
  QueryStats stats;
  // events on A, conditions on B: join spans servers.
  auto rs = server_a->service().Query(
      "SELECT e.event_id, c.temperature FROM events e JOIN conditions c "
      "ON e.run_id = c.run_id WHERE e.energy > 40 ORDER BY e.event_id",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_DOUBLE_EQ(rs->rows[0][1].AsDoubleStrict(), 21.5);
  EXPECT_TRUE(stats.used_rls);
  EXPECT_TRUE(stats.distributed);
  EXPECT_EQ(stats.servers_contacted, 2u);
}

TEST_F(GridFixture, FourTablesAcrossTwoServers) {
  QueryStats stats;
  auto rs = server_a->service().Query(
      "SELECT e.event_id, r.detector, c.temperature, k.gain "
      "FROM events e JOIN runs r ON e.run_id = r.run_id "
      "JOIN conditions c ON e.run_id = c.run_id "
      "JOIN calib k ON e.run_id = k.run_id "
      "ORDER BY e.event_id",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 5u);
  EXPECT_EQ(stats.tables, 4u);
  EXPECT_EQ(stats.servers_contacted, 2u);
  EXPECT_TRUE(stats.distributed);
}

TEST_F(GridFixture, UnknownTableEverywhereFails) {
  QueryStats stats;
  auto rs = server_a->service().Query("SELECT x FROM ghost_table", &stats);
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(stats.used_rls);
}

// ---------- the web-service interface ----------

TEST_F(GridFixture, QueryThroughWebServiceInterface) {
  rpc::RpcClient client(&transport, "client",
                        "clarens://server-a:8080/clarens");
  rpc::XmlRpcArray params;
  params.emplace_back("SELECT event_id, tag FROM events ORDER BY event_id");
  net::Cost cost;
  auto response = client.Call("dataaccess.query", std::move(params), &cost);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto rs = rpc::RpcToResultSet(**response->Member("result"));
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 5u);
  QueryStats stats = StatsFromRpc(**response->Member("stats"));
  EXPECT_EQ(stats.rows, 5u);
  // Client-side cost covers connect + transfer + the service's work.
  EXPECT_GT(cost.total_ms(), stats.simulated_ms);
}

TEST_F(GridFixture, ListAndDescribeTablesOverRpc) {
  rpc::RpcClient client(&transport, "client",
                        "clarens://server-a:8080/clarens");
  auto tables = client.Call("dataaccess.listTables", {}, nullptr);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->AsArray().value()->size(), 2u);  // events, runs

  rpc::XmlRpcArray params;
  params.emplace_back("events");
  auto description = client.Call("dataaccess.describeTable",
                                 std::move(params), nullptr);
  ASSERT_TRUE(description.ok()) << description.status().ToString();
  auto columns = description->Member("columns");
  ASSERT_TRUE(columns.ok());
  EXPECT_EQ((*columns)->AsArray().value()->size(), 4u);
}

TEST_F(GridFixture, ExplainOverRpc) {
  rpc::RpcClient client(&transport, "client",
                        "clarens://server-a:8080/clarens");
  rpc::XmlRpcArray params;
  params.emplace_back("SELECT e.event_id, r.detector FROM events e "
                      "JOIN runs r ON e.run_id = r.run_id");
  auto plan = client.Call("dataaccess.explain", std::move(params), nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = plan->AsString().value();
  EXPECT_NE(text.find("federated plan"), std::string::npos);

  rpc::XmlRpcArray remote_params;
  remote_params.emplace_back("SELECT gain FROM calib");
  auto remote_plan = client.Call("dataaccess.explain",
                                 std::move(remote_params), nullptr);
  ASSERT_TRUE(remote_plan.ok());
  EXPECT_NE(remote_plan->AsString().value().find("RLS"), std::string::npos);
}

TEST_F(GridFixture, JasStyleHistogramFromQuery) {
  // What the paper's Java Analysis Studio plug-in does: query, then
  // histogram a returned column.
  auto rs = server_a->service().Query("SELECT energy FROM events", nullptr);
  ASSERT_TRUE(rs.ok());
  ntuple::Histogram1D hist("energy", 10, 0.0, 100.0);
  ASSERT_TRUE(ntuple::FillFromResultSet(hist, *rs, "energy").ok());
  EXPECT_DOUBLE_EQ(hist.entries(), 5.0);
}

// ---------- plug-in databases (§4.10) ----------

TEST_F(GridFixture, PluginDatabaseAtRuntime) {
  // A brand-new SQLite mart appears at runtime.
  engine::Database lite("lite1", sql::Vendor::kSqlite);
  ASSERT_TRUE(
      lite.Execute("CREATE TABLE LUMI (BLOCK_ID INTEGER PRIMARY KEY, "
                   "LUMINOSITY REAL)")
          .ok());
  ASSERT_TRUE(lite.Execute("INSERT INTO LUMI (BLOCK_ID, LUMINOSITY) VALUES "
                           "(1, 0.5), (2, 0.8)")
                  .ok());
  ASSERT_TRUE(
      catalog.Add({"sqlite://server-a/lite1", &lite, "server-a", "", ""}).ok());

  // Its XSpec is published at a URL; the server downloads and registers it.
  xspec_repo.Put("http://tools.cern.ch/xspec/lite1.xspec",
                 unity::GenerateXSpec(lite).ToXml());
  rpc::RpcClient client(&transport, "client",
                        "clarens://server-a:8080/clarens");
  rpc::XmlRpcArray params;
  params.emplace_back("http://tools.cern.ch/xspec/lite1.xspec");
  params.emplace_back("sqlite-jdbc");
  params.emplace_back("sqlite://server-a/lite1");
  auto response = client.Call("dataaccess.pluginDatabase", std::move(params),
                              nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // The new table is immediately queryable, locally and from server B.
  auto local = server_a->service().Query("SELECT COUNT(*) FROM lumi", nullptr);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  EXPECT_EQ(local->rows[0][0].AsInt64Strict(), 2);

  QueryStats stats;
  auto remote = server_b->service().Query(
      "SELECT block_id FROM lumi WHERE luminosity > 0.6", &stats);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->num_rows(), 1u);
  EXPECT_TRUE(stats.used_rls);
}

// ---------- schema tracking (§4.9) ----------

TEST_F(GridFixture, SchemaTrackerDetectsChangesBySizeAndMd5) {
  SchemaTracker tracker(&server_a->service());
  // First pass establishes baselines; nothing "changes".
  EXPECT_EQ(tracker.RunOnceAll(), 0u);

  // No change -> no reload.
  auto unchanged = tracker.CheckOnce("my1");
  ASSERT_TRUE(unchanged.ok()) << unchanged.status().ToString();
  EXPECT_FALSE(*unchanged);

  // Schema evolves behind the middleware's back.
  ASSERT_TRUE(my1.Execute("CREATE TABLE NEWTAB (X INT)").ok());
  auto changed = tracker.CheckOnce("my1");
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(*changed);
  EXPECT_EQ(tracker.changes_applied(), 1u);

  // The new table is queryable without restarting anything.
  auto rs = server_a->service().Query("SELECT COUNT(*) FROM newtab", nullptr);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  // And server B can reach it via RLS (republication happened).
  auto remote = server_b->service().Query("SELECT COUNT(*) FROM newtab",
                                          nullptr);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
}

TEST_F(GridFixture, SchemaTrackerEqualSizeDifferentContent) {
  SchemaTracker tracker(&server_a->service());
  EXPECT_EQ(tracker.RunOnceAll(), 0u);
  // Rename a column to a same-length name: XSpec size stays identical, so
  // only the md5 comparison can catch it.
  ASSERT_TRUE(my1.Execute("CREATE TABLE AB (X1 INT)").ok());
  ASSERT_TRUE(tracker.CheckOnce("my1").value());
  ASSERT_TRUE(my1.Execute("DROP TABLE AB").ok());
  ASSERT_TRUE(my1.Execute("CREATE TABLE AB (X2 INT)").ok());
  auto changed = tracker.CheckOnce("my1");
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(*changed);
}

TEST_F(GridFixture, SchemaTrackerBackgroundThread) {
  SchemaTracker tracker(&server_a->service());
  EXPECT_EQ(tracker.RunOnceAll(), 0u);
  tracker.Start(std::chrono::milliseconds(5));
  EXPECT_TRUE(tracker.running());
  ASSERT_TRUE(my1.Execute("CREATE TABLE BGTAB (X INT)").ok());
  // Wait (bounded) for the background thread to pick the change up.
  for (int i = 0; i < 200 && tracker.changes_applied() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  tracker.Stop();
  EXPECT_FALSE(tracker.running());
  EXPECT_GE(tracker.changes_applied(), 1u);
}

// ---------- registration management ----------

TEST_F(GridFixture, UnregisterRemovesRlsPublication) {
  ASSERT_TRUE(server_b->service().UnregisterDatabase("my2").ok());
  QueryStats stats;
  auto rs = server_a->service().Query("SELECT sensor_id FROM calib", &stats);
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
}

TEST_F(GridFixture, RegisteredDatabaseBookkeeping) {
  auto dbs = server_a->service().RegisteredDatabases();
  EXPECT_EQ(dbs.size(), 2u);
  auto upper = server_a->service().UpperEntryFor("my1");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(upper->url, "mysql://server-a/my1");
  EXPECT_FALSE(server_a->service().UpperEntryFor("ghost").ok());
  auto tables = server_a->service().LocalTables();
  EXPECT_EQ(tables, (std::vector<std::string>{"events", "runs"}));
}

}  // namespace
}  // namespace griddb::core
