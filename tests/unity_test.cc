#include <gtest/gtest.h>

#include "griddb/unity/dictionary.h"
#include "griddb/unity/driver.h"
#include "griddb/unity/planner.h"
#include "griddb/unity/xspec.h"
#include "griddb/sql/render.h"

namespace griddb::unity {
namespace {

using storage::DataType;
using storage::Value;

// ---------- XSpec ----------

TEST(XSpecTest, GenerateFromLiveDatabase) {
  engine::Database db("srcdb", sql::Vendor::kMySql);
  ASSERT_TRUE(db.Execute("CREATE TABLE Runs (Run_Id INT PRIMARY KEY, "
                         "Detector VARCHAR(16) NOT NULL)")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE Events (Event_Id INT PRIMARY KEY, "
                         "Run_Id INT, FOREIGN KEY (Run_Id) REFERENCES "
                         "Runs (Run_Id))")
                  .ok());
  LowerXSpec spec = GenerateXSpec(db);
  EXPECT_EQ(spec.database_name, "srcdb");
  EXPECT_EQ(spec.vendor, "mysql");
  ASSERT_EQ(spec.tables.size(), 2u);
  // Logical names are lower-cased physical names.
  const XSpecTable* events = spec.FindTableByLogical("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->physical_name, "Events");
  EXPECT_EQ(events->columns[0].logical_name, "event_id");
  EXPECT_TRUE(events->columns[0].primary_key);
  ASSERT_EQ(spec.relationships.size(), 1u);
  EXPECT_EQ(spec.relationships[0].to_table, "Runs");
}

TEST(XSpecTest, LowerXmlRoundTrip) {
  engine::Database db("srcdb", sql::Vendor::kOracle);
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A NUMBER(19) PRIMARY KEY, "
                         "B VARCHAR2(100), C BINARY_DOUBLE NOT NULL)")
                  .ok());
  LowerXSpec spec = GenerateXSpec(db);
  auto round = LowerXSpec::FromXml(spec.ToXml());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->database_name, spec.database_name);
  ASSERT_EQ(round->tables.size(), 1u);
  EXPECT_EQ(round->tables[0].columns.size(), 3u);
  EXPECT_EQ(round->tables[0].columns[2].type, DataType::kDouble);
  EXPECT_TRUE(round->tables[0].columns[2].not_null);
}

TEST(XSpecTest, UpperXmlRoundTrip) {
  UpperXSpec upper;
  upper.entries.push_back({"mart1", "mysql://caltech/mart1", "mysql-jdbc",
                           "mart1.xspec"});
  upper.entries.push_back({"mart2", "mssql://caltech/mart2", "mssql-jdbc",
                           "mart2.xspec"});
  auto round = UpperXSpec::FromXml(upper.ToXml());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->entries.size(), 2u);
  EXPECT_EQ(round->entries[1].url, "mssql://caltech/mart2");
  EXPECT_EQ(round->entries[1].lower_spec, "mart2.xspec");
}

TEST(XSpecTest, ViewsExportedAsTables) {
  engine::Database db("w", sql::Vendor::kOracle);
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A NUMBER(19) PRIMARY KEY)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T (A) VALUES (1)").ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW V AS SELECT A FROM T").ok());
  LowerXSpec spec = GenerateXSpec(db);
  EXPECT_NE(spec.FindTableByLogical("v"), nullptr);
}

// ---------- dictionary ----------

LowerXSpec TwoTableSpec(const std::string& db_name) {
  LowerXSpec spec;
  spec.database_name = db_name;
  spec.vendor = "mysql";
  XSpecTable runs;
  runs.physical_name = "RUNS";
  runs.logical_name = "runs";
  runs.columns = {{"RUN_ID", "run_id", DataType::kInt64, true, true},
                  {"DETECTOR", "detector", DataType::kString, false, false}};
  XSpecTable events;
  events.physical_name = "EVENTS";
  events.logical_name = "events";
  events.columns = {{"EVENT_ID", "event_id", DataType::kInt64, true, true},
                    {"RUN_ID", "run_id", DataType::kInt64, false, false},
                    {"ENERGY", "energy", DataType::kDouble, false, false}};
  spec.tables = {runs, events};
  return spec;
}

TEST(DictionaryTest, AddLocateRemove) {
  DataDictionary dict;
  UpperXSpecEntry upper{"db1", "mysql://h1/db1", "jdbc", "db1.xspec"};
  ASSERT_TRUE(dict.AddDatabase(upper, TwoTableSpec("db1")).ok());
  EXPECT_TRUE(dict.HasDatabase("db1"));
  EXPECT_TRUE(dict.HasTable("EVENTS"));  // case-insensitive
  auto locations = dict.Locate("events");
  ASSERT_EQ(locations.size(), 1u);
  EXPECT_EQ(locations[0].physical, "EVENTS");
  EXPECT_EQ(locations[0].connection, "mysql://h1/db1");
  ASSERT_NE(locations[0].FindLogicalColumn("energy"), nullptr);
  EXPECT_EQ(locations[0].FindLogicalColumn("energy")->physical, "ENERGY");

  EXPECT_EQ(dict.AddDatabase(upper, TwoTableSpec("db1")).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(dict.RemoveDatabase("db1").ok());
  EXPECT_FALSE(dict.HasTable("events"));
}

TEST(DictionaryTest, ReplicasAccumulate) {
  DataDictionary dict;
  ASSERT_TRUE(dict.AddDatabase({"db1", "mysql://h1/db1", "jdbc", ""},
                               TwoTableSpec("db1"))
                  .ok());
  ASSERT_TRUE(dict.AddDatabase({"db2", "mysql://h2/db2", "jdbc", ""},
                               TwoTableSpec("db2"))
                  .ok());
  EXPECT_EQ(dict.Locate("events").size(), 2u);
  EXPECT_EQ(dict.DatabaseNames().size(), 2u);
}

TEST(DictionaryTest, ReplaceSwapsSchema) {
  DataDictionary dict;
  UpperXSpecEntry upper{"db1", "mysql://h1/db1", "jdbc", ""};
  ASSERT_TRUE(dict.AddDatabase(upper, TwoTableSpec("db1")).ok());
  LowerXSpec smaller = TwoTableSpec("db1");
  smaller.tables.pop_back();  // drop events
  ASSERT_TRUE(dict.ReplaceDatabase(upper, smaller).ok());
  EXPECT_TRUE(dict.HasTable("runs"));
  EXPECT_FALSE(dict.HasTable("events"));
}

// ---------- fixture: a two-mart federation ----------

struct FederationFixture : public ::testing::Test {
  FederationFixture()
      : mysql_mart("mart_my", sql::Vendor::kMySql),
        mssql_mart("mart_ms", sql::Vendor::kMsSql) {
    network.AddHost("caltech-tier2");
    network.AddHost("cern-tier1");
    network.AddHost("local");

    // MySQL mart holds EVENTS (physical upper-case names to force the
    // logical->physical mapping to do real work).
    EXPECT_TRUE(mysql_mart
                    .Execute("CREATE TABLE EVENTS (EVENT_ID INT PRIMARY KEY, "
                             "RUN_ID INT, ENERGY DOUBLE, TAG VARCHAR(16))")
                    .ok());
    EXPECT_TRUE(
        mysql_mart
            .Execute("INSERT INTO EVENTS (EVENT_ID, RUN_ID, ENERGY, TAG) "
                     "VALUES (10, 1, 45.5, 'muon'), (11, 1, 12.0, "
                     "'electron'), (12, 2, 99.25, 'muon'), (13, 2, 7.5, "
                     "'photon'), (14, 3, 60.0, 'muon')")
            .ok());

    // MS-SQL mart holds RUNS.
    EXPECT_TRUE(mssql_mart
                    .Execute("CREATE TABLE RUNS (RUN_ID BIGINT, "
                             "DETECTOR NVARCHAR(16))")
                    .ok());
    EXPECT_TRUE(mssql_mart
                    .Execute("INSERT INTO RUNS (RUN_ID, DETECTOR) VALUES "
                             "(1, 'ECAL'), (2, 'HCAL'), (3, 'TRACKER')")
                    .ok());

    EXPECT_TRUE(catalog
                    .Add({"mysql://caltech-tier2/mart_my", &mysql_mart,
                          "caltech-tier2", "", ""})
                    .ok());
    EXPECT_TRUE(catalog
                    .Add({"mssql://cern-tier1/mart_ms", &mssql_mart,
                          "cern-tier1", "", ""})
                    .ok());
  }

  std::unique_ptr<UnityDriver> MakeDriver(bool enhanced,
                                          bool parallel = true) {
    UnityDriverOptions options;
    options.enhanced = enhanced;
    options.parallel_subqueries = parallel;
    options.client_host = "local";
    auto driver = std::make_unique<UnityDriver>(
        &catalog, &network, net::ServiceCosts::Default(), options);
    EXPECT_TRUE(driver
                    ->AddDatabase({"mart_my", "mysql://caltech-tier2/mart_my",
                                   "mysql-jdbc", ""},
                                  GenerateXSpec(mysql_mart))
                    .ok());
    EXPECT_TRUE(driver
                    ->AddDatabase({"mart_ms", "mssql://cern-tier1/mart_ms",
                                   "mssql-jdbc", ""},
                                  GenerateXSpec(mssql_mart))
                    .ok());
    return driver;
  }

  net::Network network;
  engine::Database mysql_mart;
  engine::Database mssql_mart;
  ral::DatabaseCatalog catalog;
};

// ---------- planner ----------

TEST_F(FederationFixture, SingleDatabasePlanRewritesPhysicalNames) {
  auto driver_ptr = MakeDriver(true);
  UnityDriver& driver = *driver_ptr;
  auto plan = driver.Plan("SELECT event_id, energy FROM events "
                          "WHERE energy > 40 ORDER BY energy DESC LIMIT 2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->single_database);
  EXPECT_EQ(plan->connection, "mysql://caltech-tier2/mart_my");
  std::string rendered = sql::RenderSelect(
      *plan->direct_stmt, sql::Dialect::For(sql::Vendor::kMySql));
  EXPECT_NE(rendered.find("EVENTS"), std::string::npos);
  EXPECT_NE(rendered.find("ENERGY"), std::string::npos);
  EXPECT_NE(rendered.find("LIMIT 2"), std::string::npos);
}

TEST_F(FederationFixture, MultiDatabasePlanDecomposes) {
  auto driver_ptr = MakeDriver(true);
  UnityDriver& driver = *driver_ptr;
  auto plan = driver.Plan(
      "SELECT e.event_id, r.detector FROM events e JOIN runs r "
      "ON e.run_id = r.run_id WHERE e.energy > 40 AND r.detector = 'ECAL'");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->single_database);
  ASSERT_EQ(plan->subqueries.size(), 2u);

  const SubQuery& events_sub = plan->subqueries[0];
  EXPECT_EQ(events_sub.effective_name, "e");
  EXPECT_EQ(events_sub.table.physical, "EVENTS");
  // Projection pushdown: only event_id, run_id, energy are referenced.
  EXPECT_EQ(events_sub.fields.size(), 3u);
  // Predicate pushdown, physical names.
  ASSERT_NE(events_sub.where, nullptr);
  std::string where_text = events_sub.WhereString(
      sql::Dialect::For(sql::Vendor::kMySql));
  EXPECT_NE(where_text.find("ENERGY"), std::string::npos);

  const SubQuery& runs_sub = plan->subqueries[1];
  ASSERT_NE(runs_sub.where, nullptr);
  EXPECT_NE(runs_sub
                .WhereString(sql::Dialect::For(sql::Vendor::kMsSql))
                .find("DETECTOR"),
            std::string::npos);
}

TEST_F(FederationFixture, PlannerErrors) {
  auto driver_ptr = MakeDriver(true);
  UnityDriver& driver = *driver_ptr;
  EXPECT_EQ(driver.Plan("SELECT x FROM ghost_table").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(driver.Plan("SELECT ghost_col FROM events").status().code(),
            StatusCode::kNotFound);
  // run_id exists in both tables -> ambiguous unqualified.
  EXPECT_EQ(driver.Plan("SELECT run_id FROM events e JOIN runs r "
                        "ON e.run_id = r.run_id")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      driver.Plan("SELECT e.event_id FROM events e JOIN events e ON 1 = 1")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST_F(FederationFixture, BaselineDriverRefusesCrossDatabaseJoins) {
  auto baseline_ptr = MakeDriver(false);
  UnityDriver& baseline = *baseline_ptr;
  auto plan = baseline.Plan(
      "SELECT e.event_id, r.detector FROM events e JOIN runs r "
      "ON e.run_id = r.run_id");
  EXPECT_EQ(plan.status().code(), StatusCode::kUnsupported);
  // Single-database queries still work in the baseline.
  EXPECT_TRUE(baseline.Plan("SELECT event_id FROM events").ok());
}

// ---------- driver execution ----------

TEST_F(FederationFixture, SingleDatabaseQuery) {
  auto driver_ptr = MakeDriver(true);
  UnityDriver& driver = *driver_ptr;
  net::Cost cost;
  auto rs = driver.Query(
      "SELECT event_id, energy FROM events WHERE tag = 'muon' "
      "ORDER BY energy DESC",
      &cost);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->columns, (std::vector<std::string>{"event_id", "energy"}));
  EXPECT_DOUBLE_EQ(rs->rows[0][1].AsDoubleStrict(), 99.25);
  EXPECT_GT(cost.total_ms(), 0.0);
}

TEST_F(FederationFixture, SelectStarKeepsLogicalColumnNames) {
  auto driver_ptr = MakeDriver(true);
  UnityDriver& driver = *driver_ptr;
  auto rs = driver.Query("SELECT * FROM runs", nullptr);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->columns, (std::vector<std::string>{"run_id", "detector"}));
}

TEST_F(FederationFixture, CrossDatabaseJoin) {
  auto driver_ptr = MakeDriver(true);
  UnityDriver& driver = *driver_ptr;
  net::Cost cost;
  auto rs = driver.Query(
      "SELECT e.event_id, e.energy, r.detector FROM events e JOIN runs r "
      "ON e.run_id = r.run_id WHERE e.energy > 10 ORDER BY e.event_id",
      &cost);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 4u);
  EXPECT_EQ(rs->rows[0][2].AsStringStrict(), "ECAL");
  EXPECT_EQ(rs->rows[3][2].AsStringStrict(), "TRACKER");
}

TEST_F(FederationFixture, CrossDatabaseAggregate) {
  auto driver_ptr = MakeDriver(true);
  UnityDriver& driver = *driver_ptr;
  auto rs = driver.Query(
      "SELECT r.detector, COUNT(*) AS n, AVG(e.energy) AS avg_e "
      "FROM events e JOIN runs r ON e.run_id = r.run_id "
      "GROUP BY r.detector ORDER BY n DESC, r.detector",
      nullptr);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->rows[0][0].AsStringStrict(), "ECAL");
  EXPECT_EQ(rs->rows[0][1].AsInt64Strict(), 2);
}

TEST_F(FederationFixture, ParallelAndSerialAgree) {
  auto parallel_ptr = MakeDriver(true, true);
  auto serial_ptr = MakeDriver(true, false);
  UnityDriver& parallel = *parallel_ptr;
  UnityDriver& serial = *serial_ptr;
  const char* query =
      "SELECT e.event_id, r.detector FROM events e JOIN runs r "
      "ON e.run_id = r.run_id ORDER BY e.event_id";
  net::Cost parallel_cost, serial_cost;
  auto a = parallel.Query(query, &parallel_cost);
  auto b = serial.Query(query, &serial_cost);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t r = 0; r < a->num_rows(); ++r) {
    for (size_t c = 0; c < a->columns.size(); ++c) {
      EXPECT_EQ(a->rows[r][c].Compare(b->rows[r][c]), 0);
    }
  }
  // Parallel fan-out is strictly cheaper on the simulated clock: branches
  // overlap instead of summing.
  EXPECT_LT(parallel_cost.total_ms(), serial_cost.total_ms());
}

TEST_F(FederationFixture, ReplicaSelectionPrefersLocalHost) {
  // Replicate RUNS into the MySQL mart as well.
  ASSERT_TRUE(mysql_mart
                  .Execute("CREATE TABLE RUNS (RUN_ID INT, "
                           "DETECTOR VARCHAR(16))")
                  .ok());
  ASSERT_TRUE(mysql_mart
                  .Execute("INSERT INTO RUNS (RUN_ID, DETECTOR) VALUES "
                           "(1, 'ECAL'), (2, 'HCAL'), (3, 'TRACKER')")
                  .ok());
  UnityDriverOptions options;
  options.enhanced = true;
  options.client_host = "caltech-tier2";  // same host as the MySQL mart
  UnityDriver driver(&catalog, &network, net::ServiceCosts::Default(),
                     options);
  ASSERT_TRUE(driver
                  .AddDatabase({"mart_my", "mysql://caltech-tier2/mart_my",
                                "mysql-jdbc", ""},
                               GenerateXSpec(mysql_mart))
                  .ok());
  ASSERT_TRUE(driver
                  .AddDatabase({"mart_ms", "mssql://cern-tier1/mart_ms",
                                "mssql-jdbc", ""},
                               GenerateXSpec(mssql_mart))
                  .ok());
  auto plan = driver.Plan("SELECT run_id FROM runs");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->connection, "mysql://caltech-tier2/mart_my");
  // And a join now resolves to one database entirely.
  auto join_plan = driver.Plan(
      "SELECT e.event_id FROM events e JOIN runs r ON e.run_id = r.run_id");
  ASSERT_TRUE(join_plan.ok());
  EXPECT_TRUE(join_plan->single_database);
}

TEST_F(FederationFixture, CountStarAcrossTwoDatabases) {
  auto driver_ptr = MakeDriver(true);
  UnityDriver& driver = *driver_ptr;
  auto rs = driver.Query(
      "SELECT COUNT(*) FROM events e JOIN runs r ON e.run_id = r.run_id",
      nullptr);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].AsInt64Strict(), 5);
}

TEST_F(FederationFixture, DescribePlanShowsBothShapes) {
  auto driver_ptr = MakeDriver(true);
  UnityDriver& driver = *driver_ptr;
  auto single = driver.Plan("SELECT event_id FROM events");
  ASSERT_TRUE(single.ok());
  std::string text = DescribePlan(*single);
  EXPECT_NE(text.find("single-database plan"), std::string::npos);
  EXPECT_NE(text.find("mysql://caltech-tier2/mart_my"), std::string::npos);

  auto multi = driver.Plan(
      "SELECT e.event_id, r.detector FROM events e JOIN runs r "
      "ON e.run_id = r.run_id");
  ASSERT_TRUE(multi.ok());
  text = DescribePlan(*multi);
  EXPECT_NE(text.find("federated plan, 2 sub-queries"), std::string::npos);
  EXPECT_NE(text.find("[merge @ middleware]"), std::string::npos);
  EXPECT_NE(text.find("mssql"), std::string::npos);
}

TEST_F(FederationFixture, SubQueryRenderUsesTargetDialect) {
  auto driver_ptr = MakeDriver(true);
  UnityDriver& driver = *driver_ptr;
  auto plan = driver.Plan(
      "SELECT e.event_id, r.detector FROM events e JOIN runs r "
      "ON e.run_id = r.run_id WHERE r.detector LIKE 'E%'");
  ASSERT_TRUE(plan.ok());
  const SubQuery& runs_sub = plan->subqueries[1];
  std::string mssql_text =
      runs_sub.RenderSql(sql::Dialect::For(sql::Vendor::kMsSql));
  // Valid in the MS-SQL parser.
  EXPECT_TRUE(sql::ParseSelect(mssql_text,
                               sql::Dialect::For(sql::Vendor::kMsSql))
                  .ok())
      << mssql_text;
}

}  // namespace
}  // namespace griddb::unity
