// Fault-injection and recovery across the stack: retry policies rescuing
// transient outages, replica failover, the per-peer circuit breaker,
// partial results, and the guarantee that every injected fault resolves
// to a precise Status within a bounded virtual-clock budget.
#include <gtest/gtest.h>

#include <memory>

#include "griddb/core/jclarens_server.h"
#include "griddb/net/fault.h"

namespace griddb::core {
namespace {

using storage::Value;

constexpr char kRlsUrl[] = "rls://rls-host:39281/rls";
constexpr char kServerAUrl[] = "clarens://server-a:8080/clarens";
constexpr char kServerBUrl[] = "clarens://server-b:8080/clarens";
constexpr double kForever = 1e12;

// ---------- FaultPlan unit behaviour ----------

TEST(FaultPlanTest, SameSeedSameFateSequence) {
  net::LinkFaultSpec spec;
  spec.drop_probability = 0.3;
  spec.corrupt_probability = 0.2;
  spec.delay_probability = 0.3;
  spec.delay_ms = 7.0;

  net::FaultPlan first(42);
  net::FaultPlan second(42);
  first.SetDefaultLinkFaults(spec);
  second.SetDefaultLinkFaults(spec);
  for (int i = 0; i < 200; ++i) {
    double delay_a = 0, delay_b = 0;
    EXPECT_EQ(first.DrawMessageFate("x", "y", &delay_a),
              second.DrawMessageFate("x", "y", &delay_b));
    EXPECT_EQ(delay_a, delay_b);
  }
}

TEST(FaultPlanTest, NoPlanMeansExactBaselineTransfer) {
  net::Network network;
  network.AddHost("x");
  network.AddHost("y");
  EXPECT_FALSE(network.HasFaultPlan());
  auto baseline = network.TransferMs("x", "y", 4096);
  auto wire = network.WireTransferMs("x", "y", 4096);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(*wire, *baseline);  // bit-identical: no fault-layer cost
  EXPECT_EQ(network.fault_counters().total(), 0u);
}

TEST(FaultPlanTest, DownWindowFollowsVirtualClock) {
  net::Network network;
  network.AddHost("x");
  network.AddHost("y");
  auto plan = std::make_shared<net::FaultPlan>(1);
  plan->AddDownWindow("y", 100.0, 200.0);
  network.InstallFaultPlan(plan);

  EXPECT_TRUE(network.WireTransferMs("x", "y", 10).ok());
  network.AdvanceClockMs(150.0);
  auto during = network.WireTransferMs("x", "y", 10);
  EXPECT_EQ(during.status().code(), StatusCode::kUnavailable);
  network.AdvanceClockMs(100.0);
  EXPECT_TRUE(network.WireTransferMs("x", "y", 10).ok());
  EXPECT_EQ(network.fault_counters().host_down, 1u);
}

// ---------- full-stack fixture ----------

struct FaultToleranceFixture : public ::testing::Test {
  FaultToleranceFixture()
      : transport(&network, net::ServiceCosts::Default()),
        db_a("db_a", sql::Vendor::kMySql),
        db_b("db_b", sql::Vendor::kMySql),
        db_ra("db_ra", sql::Vendor::kMySql),
        db_rb("db_rb", sql::Vendor::kMySql) {
    for (const char* h : {"server-a", "server-b", "rls-host", "client"}) {
      network.AddHost(h);
    }
    rls = std::make_unique<rls::RlsServer>(kRlsUrl, &transport);

    EXPECT_TRUE(db_a.Execute("CREATE TABLE EVENTS_A (ID INT PRIMARY KEY, "
                             "V DOUBLE)")
                    .ok());
    for (const char* row : {"(1, 1.5)", "(2, 2.5)", "(3, 3.5)"}) {
      EXPECT_TRUE(db_a.Execute(std::string("INSERT INTO EVENTS_A (ID, V) "
                                           "VALUES ") +
                               row)
                      .ok());
    }
    EXPECT_TRUE(db_b.Execute("CREATE TABLE EVENTS_B (ID INT PRIMARY KEY, "
                             "V DOUBLE)")
                    .ok());
    for (const char* row : {"(1, 10.5)", "(2, 20.5)"}) {
      EXPECT_TRUE(db_b.Execute(std::string("INSERT INTO EVENTS_B (ID, V) "
                                           "VALUES ") +
                               row)
                      .ok());
    }
    // Two replicas of the same logical table, one per server.
    for (engine::Database* db : {&db_ra, &db_rb}) {
      EXPECT_TRUE(db->Execute("CREATE TABLE SHARED_EVENTS (ID INT PRIMARY "
                              "KEY, V DOUBLE)")
                      .ok());
      for (const char* row : {"(1, 0.5)", "(2, 1.5)", "(3, 2.5)"}) {
        EXPECT_TRUE(db->Execute(std::string("INSERT INTO SHARED_EVENTS (ID, "
                                            "V) VALUES ") +
                                row)
                        .ok());
      }
    }

    EXPECT_TRUE(
        catalog.Add({"mysql://server-a/db_a", &db_a, "server-a", "", ""}).ok());
    EXPECT_TRUE(
        catalog.Add({"mysql://server-b/db_b", &db_b, "server-b", "", ""}).ok());
    EXPECT_TRUE(
        catalog.Add({"mysql://server-a/db_ra", &db_ra, "server-a", "", ""})
            .ok());
    EXPECT_TRUE(
        catalog.Add({"mysql://server-b/db_rb", &db_rb, "server-b", "", ""})
            .ok());

    DataAccessConfig config_a;
    config_a.server_name = "jclarens-a";
    config_a.host = "server-a";
    config_a.server_url = kServerAUrl;
    config_a.rls_url = kRlsUrl;
    server_a = std::make_unique<JClarensServer>(config_a, &catalog, &transport);
    EXPECT_TRUE(
        server_a->service().RegisterLiveDatabase("mysql://server-a/db_a", "")
            .ok());
    EXPECT_TRUE(
        server_a->service().RegisterLiveDatabase("mysql://server-a/db_ra", "")
            .ok());

    DataAccessConfig config_b;
    config_b.server_name = "jclarens-b";
    config_b.host = "server-b";
    config_b.server_url = kServerBUrl;
    config_b.rls_url = kRlsUrl;
    server_b = std::make_unique<JClarensServer>(config_b, &catalog, &transport);
    EXPECT_TRUE(
        server_b->service().RegisterLiveDatabase("mysql://server-b/db_b", "")
            .ok());
    EXPECT_TRUE(
        server_b->service().RegisterLiveDatabase("mysql://server-b/db_rb", "")
            .ok());
  }

  /// A query-only JClarens node on `client` with no local databases; every
  /// table resolves through the RLS and is fetched remotely.
  DataAccessConfig CoordinatorConfig() const {
    DataAccessConfig config;
    config.server_name = "coordinator";
    config.host = "client";
    config.rls_url = kRlsUrl;
    return config;
  }

  net::Network network;
  rpc::Transport transport;
  engine::Database db_a;
  engine::Database db_b;
  engine::Database db_ra;
  engine::Database db_rb;
  ral::DatabaseCatalog catalog;
  std::unique_ptr<rls::RlsServer> rls;
  std::unique_ptr<JClarensServer> server_a;
  std::unique_ptr<JClarensServer> server_b;
};

TEST_F(FaultToleranceFixture, RetriesAndFailoverRescueTransientOutage) {
  // Replica A is down for good; replica B recovers 150 virtual ms from
  // now. Without retries both replicas fail immediately. With retries the
  // backoff schedule against A advances the virtual clock past B's
  // recovery, so the failover attempt lands on a healthy server.
  auto plan = std::make_shared<net::FaultPlan>(7);
  const double t0 = network.NowMs();
  plan->AddDownWindow("server-a", 0, kForever);
  plan->AddDownWindow("server-b", 0, t0 + 150.0);
  network.InstallFaultPlan(plan);

  DataAccessConfig config = CoordinatorConfig();
  DataAccessService no_retries(config, &catalog, &transport);
  QueryStats fail_stats;
  auto failed = no_retries.Query("SELECT id, v FROM shared_events",
                                 &fail_stats);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);

  config.retry_policy = rpc::RetryPolicy::Default();
  DataAccessService with_retries(config, &catalog, &transport);
  QueryStats stats;
  auto rs = with_retries.Query("SELECT id, v FROM shared_events", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 3u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.failovers, 0u);
  EXPECT_GT(network.fault_counters().host_down, 0u);
}

TEST_F(FaultToleranceFixture, FailoverPicksSurvivingReplica) {
  auto plan = std::make_shared<net::FaultPlan>(7);
  plan->AddDownWindow("server-a", 0, kForever);
  network.InstallFaultPlan(plan);

  DataAccessService coordinator(CoordinatorConfig(), &catalog, &transport);
  QueryStats stats;
  auto rs = coordinator.Query("SELECT id, v FROM shared_events", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.retries, 0u);  // RetryPolicy::None: failover alone
}

TEST_F(FaultToleranceFixture, CircuitBreakerStopsHammeringAndRecovers) {
  auto plan = std::make_shared<net::FaultPlan>(7);
  const double t0 = network.NowMs();
  plan->AddDownWindow("server-a", 0, t0 + 600.0);
  network.InstallFaultPlan(plan);

  DataAccessConfig config = CoordinatorConfig();
  config.breaker_failure_threshold = 2;
  config.breaker_cooldown_ms = 400.0;
  DataAccessService coordinator(config, &catalog, &transport);

  // events_a only exists on server-a: two failures trip the breaker.
  QueryStats s1, s2, s3, s4;
  EXPECT_FALSE(coordinator.Query("SELECT id FROM events_a", &s1).ok());
  EXPECT_FALSE(coordinator.Query("SELECT id FROM events_a", &s2).ok());
  const size_t down_hits = network.fault_counters().host_down;

  // Third query: the open breaker skips the peer without touching the
  // network, and the query still fails with a precise status.
  auto skipped = coordinator.Query("SELECT id FROM events_a", &s3);
  ASSERT_FALSE(skipped.ok());
  EXPECT_EQ(skipped.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(s3.breaker_skips, 1u);
  EXPECT_EQ(network.fault_counters().host_down, down_hits);

  // Past the cooldown (and the outage) the half-open probe succeeds and
  // the breaker closes again.
  network.AdvanceClockMs(1000.0);
  auto rs = coordinator.Query("SELECT id FROM events_a", &s4);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(s4.breaker_skips, 0u);
}

TEST_F(FaultToleranceFixture, PartialResultsReportFailedLocalMart) {
  // One service, two marts on different hosts; the mart host for
  // events_b dies. Partial mode returns the healthy mart's rows
  // NULL-padded plus an error report naming exactly the failed sub-query.
  DataAccessConfig config;
  config.server_name = "marts";
  config.host = "client";
  config.partial_results = true;
  DataAccessService service(config, &catalog, &transport);
  ASSERT_TRUE(service.RegisterLiveDatabase("mysql://server-a/db_a", "").ok());
  ASSERT_TRUE(service.RegisterLiveDatabase("mysql://server-b/db_b", "").ok());

  auto plan = std::make_shared<net::FaultPlan>(7);
  plan->AddDownWindow("server-b", 0, kForever);
  network.InstallFaultPlan(plan);

  QueryStats stats;
  auto rs = service.Query(
      "SELECT events_a.id, events_b.v FROM events_a LEFT JOIN events_b "
      "ON events_b.id = events_a.id",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 3u);
  const int v = rs->ColumnIndex("v");
  ASSERT_GE(v, 0);
  for (const storage::Row& row : rs->rows) {
    EXPECT_TRUE(row[static_cast<size_t>(v)].is_null());
  }
  EXPECT_EQ(stats.subqueries_failed, 1u);
  ASSERT_EQ(stats.subquery_errors.size(), 1u);
  EXPECT_NE(stats.subquery_errors[0].find("events_b"), std::string::npos);
  EXPECT_EQ(stats.subquery_errors[0].find("events_a"), std::string::npos);
}

TEST_F(FaultToleranceFixture, PartialResultsReportFailedRemoteFetch) {
  auto plan = std::make_shared<net::FaultPlan>(7);
  plan->AddDownWindow("server-b", 0, kForever);
  network.InstallFaultPlan(plan);

  DataAccessConfig config = CoordinatorConfig();
  config.partial_results = true;
  DataAccessService coordinator(config, &catalog, &transport);
  QueryStats stats;
  auto rs = coordinator.Query(
      "SELECT events_a.id, events_a.v, events_b.v AS bv FROM events_a "
      "LEFT JOIN events_b ON events_b.id = events_a.id",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 3u);
  const int bv = rs->ColumnIndex("bv");
  ASSERT_GE(bv, 0);
  for (const storage::Row& row : rs->rows) {
    EXPECT_TRUE(row[static_cast<size_t>(bv)].is_null());
  }
  EXPECT_EQ(stats.subqueries_failed, 1u);
  ASSERT_EQ(stats.subquery_errors.size(), 1u);
  EXPECT_NE(stats.subquery_errors[0].find("events_b"), std::string::npos);
}

TEST_F(FaultToleranceFixture, LostMessagesFailWithinBoundedVirtualTime) {
  // Every message on the coordinator -> server-a link is lost. Each
  // attempt must burn exactly its deadline budget, so the whole query
  // resolves (as kTimeout) in attempts * deadline plus backoffs — never
  // hangs, never spins unbounded.
  auto plan = std::make_shared<net::FaultPlan>(7);
  net::LinkFaultSpec all_lost;
  all_lost.drop_probability = 1.0;
  plan->SetLinkFaults("client", "server-a", all_lost);
  network.InstallFaultPlan(plan);

  DataAccessConfig config = CoordinatorConfig();
  config.retry_policy.max_attempts = 3;
  config.retry_policy.attempt_timeout_ms = 1000.0;
  config.retry_policy.initial_backoff_ms = 50.0;
  DataAccessService coordinator(config, &catalog, &transport);

  const double t0 = network.NowMs();
  QueryStats stats;
  auto rs = coordinator.Query("SELECT id FROM events_a", &stats);
  const double elapsed = network.NowMs() - t0;

  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(network.fault_counters().drops, 3u);
  EXPECT_GE(elapsed, 3000.0);  // three full attempt budgets were waited out
  EXPECT_LE(elapsed, 3600.0);  // ... plus backoffs and the RLS lookup only
}

TEST_F(FaultToleranceFixture, UnknownHostTransferIsNotFoundAndNotRetried) {
  // An endpoint bound to a host the network has never heard of: the
  // transfer fails with kNotFound naming the host, and the client must
  // not burn retry attempts on it (permanent, not transient).
  rpc::RpcServer phantom("clarens://mystery:8080/clarens", &transport);
  (void)phantom.RegisterMethod(
      "ping", [](const rpc::XmlRpcArray&,
                 rpc::CallContext&) -> Result<rpc::XmlRpcValue> {
        return rpc::XmlRpcValue(true);
      });

  rpc::RpcClient client(&transport, "client", "clarens://mystery:8080/clarens");
  client.set_retry_policy(rpc::RetryPolicy::Default());
  rpc::CallStats call_stats;
  auto result = client.Call("ping", {}, nullptr, 0, "", &call_stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("mystery"), std::string::npos);
  EXPECT_EQ(call_stats.attempts, 1);
  EXPECT_EQ(call_stats.retries, 0);
}

TEST_F(FaultToleranceFixture, RlsCacheServesRepeatsAndInvalidatesOnFailure) {
  DataAccessConfig config = CoordinatorConfig();
  config.rls_cache = true;
  DataAccessService coordinator(config, &catalog, &transport);

  QueryStats stats;
  ASSERT_TRUE(coordinator.Query("SELECT id FROM events_a", &stats).ok());
  double first_ms = stats.simulated_ms;
  QueryStats repeat_stats;
  ASSERT_TRUE(coordinator.Query("SELECT id FROM events_a", &repeat_stats).ok());
  // The repeat query answers the lookup from cache: strictly cheaper.
  EXPECT_LT(repeat_stats.simulated_ms, first_ms);

  // When the cached server fails, the mapping is invalidated so the next
  // query re-consults the catalog (and still succeeds via failover).
  auto plan = std::make_shared<net::FaultPlan>(7);
  plan->AddDownWindow("server-a", 0, kForever);
  network.InstallFaultPlan(plan);
  QueryStats failover_stats;
  auto rs = coordinator.Query("SELECT id, v FROM shared_events",
                              &failover_stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(failover_stats.failovers, 1u);
  QueryStats dead_stats;
  EXPECT_FALSE(coordinator.Query("SELECT id FROM events_a", &dead_stats).ok());
}

}  // namespace
}  // namespace griddb::core
