// Failure injection across the stack: wrong credentials, stale RLS
// mappings, forwarding loops, malformed XSpec plug-ins, vanished servers,
// and corrupted staging files. The system must fail with a precise
// Status — never hang, crash or return partial data silently.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "griddb/core/jclarens_server.h"
#include "griddb/warehouse/etl.h"

namespace griddb::core {
namespace {

using storage::Value;

struct FailureFixture : public ::testing::Test {
  FailureFixture()
      : transport(&network, net::ServiceCosts::Default()),
        open_db("open_db", sql::Vendor::kMySql),
        locked_db("locked_db", sql::Vendor::kOracle) {
    for (const char* h : {"server-a", "server-b", "rls-host", "client"}) {
      network.AddHost(h);
    }
    rls = std::make_unique<rls::RlsServer>("rls://rls-host:39281/rls",
                                           &transport);

    EXPECT_TRUE(open_db
                    .Execute("CREATE TABLE PUBLIC_DATA (ID INT PRIMARY KEY, "
                             "V DOUBLE)")
                    .ok());
    EXPECT_TRUE(
        open_db.Execute("INSERT INTO PUBLIC_DATA (ID, V) VALUES (1, 1.5)")
            .ok());
    EXPECT_TRUE(locked_db
                    .Execute("CREATE TABLE SECRET_DATA (ID NUMBER(19) "
                             "PRIMARY KEY)")
                    .ok());

    EXPECT_TRUE(
        catalog.Add({"mysql://server-a/open_db", &open_db, "server-a", "", ""})
            .ok());
    EXPECT_TRUE(catalog
                    .Add({"oracle://server-a/locked_db", &locked_db,
                          "server-a", "admin", "hunter2"})
                    .ok());

    DataAccessConfig config;
    config.server_name = "jclarens-a";
    config.host = "server-a";
    config.server_url = "clarens://server-a:8080/clarens";
    config.rls_url = "rls://rls-host:39281/rls";
    server_a = std::make_unique<JClarensServer>(config, &catalog, &transport,
                                                &xspec_repo);
  }

  net::Network network;
  rpc::Transport transport;
  engine::Database open_db;
  engine::Database locked_db;
  ral::DatabaseCatalog catalog;
  XSpecRepository xspec_repo;
  std::unique_ptr<rls::RlsServer> rls;
  std::unique_ptr<JClarensServer> server_a;
};

TEST_F(FailureFixture, WrongDatabaseCredentialsSurfaceAtQueryTime) {
  // Registration with the wrong (empty) credentials succeeds — the schema
  // metadata is readable — but the first query must fail cleanly.
  ASSERT_TRUE(server_a->service()
                  .RegisterLiveDatabase("oracle://server-a/locked_db", "")
                  .ok());
  auto rs = server_a->service().Query("SELECT id FROM secret_data", nullptr);
  EXPECT_EQ(rs.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FailureFixture, CorrectCredentialsWork) {
  DataAccessConfig config;
  config.server_name = "jclarens-auth";
  config.host = "server-a";
  config.server_url = "clarens://server-a:9090/clarens";
  config.db_user = "admin";
  config.db_password = "hunter2";
  JClarensServer with_creds(config, &catalog, &transport);
  ASSERT_TRUE(with_creds.service()
                  .RegisterLiveDatabase("oracle://server-a/locked_db", "")
                  .ok());
  auto rs = with_creds.service().Query("SELECT COUNT(*) FROM secret_data",
                                       nullptr);
  EXPECT_TRUE(rs.ok()) << rs.status().ToString();
}

TEST_F(FailureFixture, StaleRlsMappingToDeadServerIsUnavailable) {
  // The RLS claims ghost_table lives on a server that no longer exists.
  ASSERT_TRUE(
      rls->Publish("ghost_table", "clarens://server-b:8080/clarens").ok());
  QueryStats stats;
  auto rs = server_a->service().Query("SELECT x FROM ghost_table", &stats);
  EXPECT_EQ(rs.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(stats.used_rls);
}

TEST_F(FailureFixture, FailoverToLiveReplicaWhenFirstServerIsDead) {
  // ghost_table is published on a dead server AND on a live one hosting
  // it; the data access layer must skip the dead endpoint and succeed.
  ASSERT_TRUE(server_a->service()
                  .RegisterLiveDatabase("mysql://server-a/open_db", "")
                  .ok());
  DataAccessConfig config_b;
  config_b.server_name = "jclarens-b";
  config_b.host = "server-b";
  config_b.server_url = "clarens://server-b:8080/clarens";
  config_b.rls_url = "rls://rls-host:39281/rls";
  JClarensServer server_b(config_b, &catalog, &transport, &xspec_repo);

  // The dead server sorts first lexicographically, so naive first-URL
  // selection would hit it.
  ASSERT_TRUE(
      rls->Publish("public_data", "clarens://server-a-dead:8080/clarens")
          .ok());

  QueryStats stats;
  auto rs = server_b.service().Query("SELECT id FROM public_data", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 1u);
  EXPECT_TRUE(stats.used_rls);
}

TEST_F(FailureFixture, MutualRlsReferralTerminatesInsteadOfLooping) {
  // Both servers are told (stale RLS data) that the other one hosts the
  // table; forwarding must terminate at the depth guard, not ping-pong.
  DataAccessConfig config_b;
  config_b.server_name = "jclarens-b";
  config_b.host = "server-b";
  config_b.server_url = "clarens://server-b:8080/clarens";
  config_b.rls_url = "rls://rls-host:39281/rls";
  JClarensServer server_b(config_b, &catalog, &transport, &xspec_repo);

  ASSERT_TRUE(
      rls->Publish("phantom", "clarens://server-a:8080/clarens").ok());
  ASSERT_TRUE(
      rls->Publish("phantom", "clarens://server-b:8080/clarens").ok());

  auto rs = server_a->service().Query("SELECT x FROM phantom", nullptr);
  EXPECT_FALSE(rs.ok());
  // The depth guard trips with a distinct code and names the servers in
  // the forwarding loop so operators can fix the RLS mapping.
  EXPECT_EQ(rs.status().code(), StatusCode::kFailedPrecondition)
      << rs.status().ToString();
  EXPECT_NE(rs.status().message().find("server-a"), std::string::npos);
  EXPECT_NE(rs.status().message().find("server-b"), std::string::npos);
}

TEST_F(FailureFixture, MalformedXSpecPluginRejected) {
  xspec_repo.Put("http://bad/xspec", "<xspec database='oops'");  // truncated
  rpc::RpcClient client(&transport, "client",
                        "clarens://server-a:8080/clarens");
  rpc::XmlRpcArray params;
  params.emplace_back("http://bad/xspec");
  params.emplace_back("jdbc");
  params.emplace_back("mysql://server-a/open_db");
  auto result = client.Call("dataaccess.pluginDatabase", std::move(params),
                            nullptr);
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST_F(FailureFixture, PluginFromMissingUrlRejected) {
  rpc::RpcClient client(&transport, "client",
                        "clarens://server-a:8080/clarens");
  rpc::XmlRpcArray params;
  params.emplace_back("http://nowhere/none.xspec");
  params.emplace_back("jdbc");
  params.emplace_back("mysql://server-a/open_db");
  auto result = client.Call("dataaccess.pluginDatabase", std::move(params),
                            nullptr);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(FailureFixture, DoubleRegistrationRejected) {
  ASSERT_TRUE(server_a->service()
                  .RegisterLiveDatabase("mysql://server-a/open_db", "")
                  .ok());
  EXPECT_EQ(server_a->service()
                .RegisterLiveDatabase("mysql://server-a/open_db", "")
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(FailureFixture, QueryAfterUnregisterFails) {
  ASSERT_TRUE(server_a->service()
                  .RegisterLiveDatabase("mysql://server-a/open_db", "")
                  .ok());
  ASSERT_TRUE(
      server_a->service().Query("SELECT id FROM public_data", nullptr).ok());
  ASSERT_TRUE(server_a->service().UnregisterDatabase("open_db").ok());
  auto rs = server_a->service().Query("SELECT id FROM public_data", nullptr);
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
}

TEST_F(FailureFixture, UnknownConnectionStringAtRegistration) {
  EXPECT_EQ(server_a->service()
                .RegisterLiveDatabase("mysql://server-a/no_such_db", "")
                .code(),
            StatusCode::kNotFound);
}

TEST_F(FailureFixture, MalformedSqlReturnsParseError) {
  ASSERT_TRUE(server_a->service()
                  .RegisterLiveDatabase("mysql://server-a/open_db", "")
                  .ok());
  auto rs = server_a->service().Query("SELEC id FRM public_data", nullptr);
  EXPECT_EQ(rs.status().code(), StatusCode::kParseError);
  // DML through the read-only query interface is rejected too.
  auto dml = server_a->service().Query("DELETE FROM public_data", nullptr);
  EXPECT_FALSE(dml.ok());
}

TEST_F(FailureFixture, RpcFaultCodesSurviveTheWire) {
  ASSERT_TRUE(server_a->service()
                  .RegisterLiveDatabase("mysql://server-a/open_db", "")
                  .ok());
  rpc::RpcClient client(&transport, "client",
                        "clarens://server-a:8080/clarens");
  rpc::XmlRpcArray params;
  params.emplace_back("SELECT nope FROM public_data");
  auto result = client.Call("dataaccess.query", std::move(params), nullptr);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("nope"), std::string::npos);
}

TEST_F(FailureFixture, ServerDestructionUnbindsEndpoint) {
  {
    DataAccessConfig config;
    config.server_name = "ephemeral";
    config.host = "server-b";
    config.server_url = "clarens://server-b:7070/clarens";
    JClarensServer ephemeral(config, &catalog, &transport);
    rpc::RpcClient client(&transport, "client",
                          "clarens://server-b:7070/clarens");
    EXPECT_TRUE(client.Call("dataaccess.listTables", {}, nullptr).ok());
  }
  rpc::RpcClient client(&transport, "client",
                        "clarens://server-b:7070/clarens");
  EXPECT_EQ(client.Call("dataaccess.listTables", {}, nullptr).status().code(),
            StatusCode::kUnavailable);
}

TEST(EtlFailureTest, CorruptedStageFileDetected) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "griddb_fail_etl").string();
  std::filesystem::create_directories(dir);
  std::string path = dir + "/corrupt.griddb";
  storage::TableSchema schema(
      "t", {{"a", storage::DataType::kInt64, false, false}});
  ASSERT_TRUE(
      storage::WriteStageFile(path, schema, {{Value(int64_t{1})}}).ok());
  // Flip bytes in the payload area.
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(-2, std::ios::end);
    file.put('x');
  }
  auto loaded = storage::ReadStageFile(path);
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove(path);
}

TEST(EtlFailureTest, TransformErrorAbortsRun) {
  net::Network network;
  network.AddHost("h");
  engine::Database source("s", sql::Vendor::kMySql);
  engine::Database target("t", sql::Vendor::kMySql);
  ASSERT_TRUE(source.Execute("CREATE TABLE d (a INT)").ok());
  ASSERT_TRUE(source.Execute("INSERT INTO d (a) VALUES (1), (2), (3)").ok());
  warehouse::EtlPipeline pipeline(
      &network, net::ServiceCosts::Default(), warehouse::EtlCosts::Default(),
      "h", (std::filesystem::temp_directory_path() / "griddb_fail_t").string());
  warehouse::EtlPipeline::Job job;
  job.source = &source;
  job.source_host = "h";
  job.extract_sql = "SELECT a FROM d";
  job.target = &target;
  job.target_host = "h";
  job.target_table = "out";
  job.create_target = true;
  job.transform = [](const storage::Row& row) -> Result<storage::Row> {
    if (row[0].AsInt64Strict() == 2) {
      return Internal("poison row");
    }
    return row;
  };
  auto stats = pipeline.Run(job);
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
  // Nothing was loaded (extraction aborted before the load hop).
  EXPECT_FALSE(target.HasTable("out"));
}

TEST(NetworkFailureTest, UnknownHostsFailEverywhere) {
  net::Network network;
  network.AddHost("known");
  rpc::Transport transport(&network, net::ServiceCosts::Default());
  // Server binds on an unknown host: calls fail at transfer accounting.
  rpc::RpcServer server("clarens://mystery:8080/x", &transport);
  (void)server.RegisterMethod(
      "ping", [](const rpc::XmlRpcArray&, rpc::CallContext&)
                  -> Result<rpc::XmlRpcValue> { return rpc::XmlRpcValue(1); });
  rpc::RpcClient client(&transport, "known", "clarens://mystery:8080/x");
  net::Cost cost;
  auto result = client.Call("ping", {}, &cost);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace griddb::core
