// Parameterized sweep over every comparison operator × operand-type
// combination: the engine's WHERE filtering must agree with a reference
// predicate computed directly over the same data, including NULL rows
// (which SQL comparison semantics always exclude).
#include <gtest/gtest.h>

#include <functional>

#include "griddb/engine/database.h"
#include "griddb/util/rng.h"

namespace griddb::engine {
namespace {

using storage::DataType;
using storage::Value;

struct OperatorCase {
  const char* name;
  const char* sql_operator;
  std::function<bool(int)> reference;  // against the int column, rhs = 5
};

class ComparisonSweep : public ::testing::TestWithParam<OperatorCase> {};

TEST_P(ComparisonSweep, IntColumnAgainstLiteral) {
  const OperatorCase& oc = GetParam();
  Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)").ok());
  // Values -3..12 plus NULLs (NULL rows never satisfy any comparison).
  int expected = 0;
  int key = 0;
  for (int v = -3; v <= 12; ++v) {
    ASSERT_TRUE(db.Execute("INSERT INTO t (k, v) VALUES (" +
                           std::to_string(key++) + ", " + std::to_string(v) +
                           ")")
                    .ok());
    if (oc.reference(v)) ++expected;
  }
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(db.Execute("INSERT INTO t (k, v) VALUES (" +
                           std::to_string(key++) + ", NULL)")
                    .ok());
  }
  auto rs = db.Execute(std::string("SELECT k FROM t WHERE v ") +
                       oc.sql_operator + " 5");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), static_cast<size_t>(expected)) << oc.sql_operator;
}

TEST_P(ComparisonSweep, DoubleColumnCoercesSymmetrically) {
  const OperatorCase& oc = GetParam();
  Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (k INT PRIMARY KEY, v REAL)").ok());
  int expected = 0;
  for (int v = -3; v <= 12; ++v) {
    ASSERT_TRUE(db.Execute("INSERT INTO t (k, v) VALUES (" +
                           std::to_string(v + 3) + ", " + std::to_string(v) +
                           ".0)")
                    .ok());
    if (oc.reference(v)) ++expected;
  }
  // Integer literal against a DOUBLE column: coercion must not change the
  // predicate's meaning.
  auto rs = db.Execute(std::string("SELECT k FROM t WHERE v ") +
                       oc.sql_operator + " 5");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), static_cast<size_t>(expected));
  // And the float form selects the same rows.
  auto rs_float = db.Execute(std::string("SELECT k FROM t WHERE v ") +
                             oc.sql_operator + " 5.0");
  ASSERT_TRUE(rs_float.ok());
  EXPECT_EQ(rs_float->num_rows(), rs->num_rows());
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, ComparisonSweep,
    ::testing::Values(
        OperatorCase{"eq", "=", [](int v) { return v == 5; }},
        OperatorCase{"ne", "<>", [](int v) { return v != 5; }},
        OperatorCase{"lt", "<", [](int v) { return v < 5; }},
        OperatorCase{"le", "<=", [](int v) { return v <= 5; }},
        OperatorCase{"gt", ">", [](int v) { return v > 5; }},
        OperatorCase{"ge", ">=", [](int v) { return v >= 5; }}),
    [](const ::testing::TestParamInfo<OperatorCase>& info) {
      return info.param.name;
    });

// ---------- aggregate sweep over the same dataset ----------

struct AggregateCase {
  const char* name;
  const char* expression;
  double expected;  // over values 1..10
};

class AggregateSweep : public ::testing::TestWithParam<AggregateCase> {};

TEST_P(AggregateSweep, MatchesClosedForm) {
  const AggregateCase& ac = GetParam();
  Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (v INT)").ok());
  for (int v = 1; v <= 10; ++v) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO t (v) VALUES (" + std::to_string(v) + ")")
            .ok());
  }
  // One NULL that every aggregate except COUNT(*) must skip.
  ASSERT_TRUE(db.Execute("INSERT INTO t (v) VALUES (NULL)").ok());
  auto rs = db.Execute(std::string("SELECT ") + ac.expression + " FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_NEAR(rs->rows[0][0].AsDouble().value(), ac.expected, 1e-9)
      << ac.expression;
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, AggregateSweep,
    ::testing::Values(
        AggregateCase{"count_star", "COUNT(*)", 11.0},
        AggregateCase{"count_v", "COUNT(v)", 10.0},
        AggregateCase{"count_distinct", "COUNT(DISTINCT v)", 10.0},
        AggregateCase{"sum", "SUM(v)", 55.0},
        AggregateCase{"avg", "AVG(v)", 5.5},
        AggregateCase{"min", "MIN(v)", 1.0},
        AggregateCase{"max", "MAX(v)", 10.0},
        AggregateCase{"sum_of_squares", "SUM(v * v)", 385.0},
        AggregateCase{"conditional_count",
                      "SUM(CASE WHEN v > 5 THEN 1 ELSE 0 END)", 5.0}),
    [](const ::testing::TestParamInfo<AggregateCase>& info) {
      return info.param.name;
    });

// ---------- cross-vendor DDL sweep ----------

class VendorDdlSweep : public ::testing::TestWithParam<sql::Vendor> {};

TEST_P(VendorDdlSweep, NativeTypeVocabularyRoundTrips) {
  Database db("d", GetParam());
  const sql::Dialect& dialect = db.dialect();
  // Build DDL from the dialect's own preferred type names.
  std::string ddl = "CREATE TABLE t (i " +
                    dialect.TypeNameFor(DataType::kInt64) + " PRIMARY KEY, " +
                    "d " + dialect.TypeNameFor(DataType::kDouble) + ", " +
                    "s " + dialect.TypeNameFor(DataType::kString) + ", " +
                    "b " + dialect.TypeNameFor(DataType::kBool) + ")";
  ASSERT_TRUE(db.Execute(ddl).ok()) << ddl;
  auto schema = db.GetSchema("t");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->columns()[0].type, DataType::kInt64);
  EXPECT_EQ(schema->columns()[1].type, DataType::kDouble);
  EXPECT_EQ(schema->columns()[2].type, DataType::kString);
  // Oracle has no boolean; NUMBER(1) resolves to integer there.
  if (GetParam() != sql::Vendor::kOracle &&
      GetParam() != sql::Vendor::kMySql) {
    EXPECT_EQ(schema->columns()[3].type, DataType::kBool);
  }
  ASSERT_TRUE(
      db.Execute("INSERT INTO t (i, d, s, b) VALUES (1, 2.5, 'x', TRUE)")
          .ok());
  EXPECT_EQ(db.RowCount("t"), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllVendors, VendorDdlSweep,
                         ::testing::Values(sql::Vendor::kOracle,
                                           sql::Vendor::kMySql,
                                           sql::Vendor::kMsSql,
                                           sql::Vendor::kSqlite),
                         [](const ::testing::TestParamInfo<sql::Vendor>& info) {
                           return sql::VendorName(info.param);
                         });

}  // namespace
}  // namespace griddb::engine
