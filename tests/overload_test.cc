// Overload protection: end-to-end deadlines shrink hop by hop and cancel
// sibling sub-queries when they expire mid-flight, admission control
// sheds excess load fast with a machine-readable retry-after hint, the
// bounded worker queue exerts backpressure, and nothing a cancelled or
// deadline-truncated execution produced ever enters the result cache.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

#include "griddb/core/jclarens_server.h"
#include "griddb/engine/select_executor.h"
#include "griddb/net/fault.h"
#include "griddb/sql/parser.h"
#include "griddb/util/thread_pool.h"

namespace griddb::core {
namespace {

using storage::Value;

constexpr char kRlsUrl[] = "rls://rls-host:39281/rls";
constexpr char kServerAUrl[] = "clarens://server-a:8080/clarens";
constexpr char kServerBUrl[] = "clarens://server-b:8080/clarens";

// ---------- CancelToken unit behaviour ----------

TEST(CancelTokenTest, InertTokenIsFreeAndNeverCancels) {
  CancelToken token;
  EXPECT_FALSE(token.active());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
  token.Cancel();  // no-op on an inert token
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(std::isinf(token.remaining_ms()));
}

TEST(CancelTokenTest, DeadlineExpiryLatchesAcrossCopies) {
  double now = 0;
  CancelToken token = CancelToken::WithBudget([&now] { return now; }, 100.0);
  CancelToken sibling = token;  // same shared state
  EXPECT_TRUE(token.Check().ok());
  EXPECT_DOUBLE_EQ(token.remaining_ms(), 100.0);

  now = 100.0;  // the deadline instant counts as expired
  Status first = sibling.Check();
  EXPECT_EQ(first.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(sibling.cancelled());
  EXPECT_TRUE(token.cancelled());

  // Latched: winding the clock back cannot revive the query.
  now = 0;
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(token.remaining_ms(), 100.0);  // clock says so, latch wins
}

TEST(CancelTokenTest, TightenBudgetTakesMinimum) {
  double now = 0;
  auto clock = [&now] { return now; };
  CancelToken token = CancelToken::WithBudget(clock, 500.0);
  token.TightenBudget(clock, 200.0);
  EXPECT_DOUBLE_EQ(token.remaining_ms(), 200.0);
  token.TightenBudget(clock, 800.0);  // looser: no-op
  EXPECT_DOUBLE_EQ(token.remaining_ms(), 200.0);
}

TEST(CancelTokenTest, FirstCancelReasonWins) {
  CancelToken token = CancelToken::Cancellable();
  EXPECT_FALSE(token.has_deadline());
  token.Cancel(Status(StatusCode::kDeadlineExceeded, "first"));
  token.Cancel(Status(StatusCode::kDeadlineExceeded, "second"));
  EXPECT_EQ(token.Check().message(), "first");
}

TEST(CancelTokenTest, RemainingNeverNegative) {
  double now = 300.0;
  CancelToken token = CancelToken::WithBudget([&now] { return now; }, 100.0);
  now = 900.0;
  EXPECT_DOUBLE_EQ(token.remaining_ms(), 0.0);
}

// ---------- bounded thread-pool queue ----------

// Occupies the pool's single worker until `release` is fulfilled.
struct WorkerGate {
  std::promise<void> release;
  std::shared_future<void> gate{release.get_future().share()};
  std::promise<void> running;

  std::future<void> Occupy(ThreadPool& pool) {
    auto fut = pool.Submit([this] {
      running.set_value();
      gate.wait();
    });
    running.get_future().wait();
    return fut;
  }
};

TEST(ThreadPoolOverloadTest, RejectOverflowBreaksPromise) {
  ThreadPoolOptions options;
  options.max_queue = 1;
  options.overflow = ThreadPoolOptions::Overflow::kReject;
  ThreadPool pool(1, options);
  WorkerGate worker;
  auto busy = worker.Occupy(pool);

  auto queued = pool.Submit([] {});    // fills the one queue slot
  auto rejected = pool.Submit([] {});  // overflow: refused immediately
  EXPECT_EQ(pool.rejected_count(), 1u);
  EXPECT_THROW(rejected.get(), std::future_error);

  worker.release.set_value();
  busy.get();
  queued.get();  // accepted work still ran
}

TEST(ThreadPoolOverloadTest, BlockOverflowWaitsForSpace) {
  ThreadPoolOptions options;
  options.max_queue = 1;
  options.overflow = ThreadPoolOptions::Overflow::kBlock;
  ThreadPool pool(1, options);
  WorkerGate worker;
  auto busy = worker.Occupy(pool);
  auto queued = pool.Submit([] {});

  std::atomic<bool> submitted{false};
  std::future<void> third;
  std::thread submitter([&] {
    third = pool.Submit([] {});
    submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(submitted.load());  // backpressure: Submit is blocked

  worker.release.set_value();
  submitter.join();
  EXPECT_TRUE(submitted.load());
  EXPECT_EQ(pool.rejected_count(), 0u);
  busy.get();
  queued.get();
  third.get();
}

TEST(ThreadPoolOverloadTest, ShutdownDrainsAcceptedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) {
      (void)pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolOverloadTest, DefaultOptionsKeepUnboundedQueue) {
  ThreadPool pool(1);
  WorkerGate worker;
  auto busy = worker.Occupy(pool);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(pool.Submit([] {}));
  EXPECT_EQ(pool.rejected_count(), 0u);
  EXPECT_GE(pool.queue_depth(), 63u);
  worker.release.set_value();
  busy.get();
  for (auto& fut : futures) fut.get();
}

// ---------- retry plumbing for shed responses ----------

TEST(RetryPlumbingTest, ShedIsRetryableSpentBudgetIsNot) {
  EXPECT_TRUE(rpc::IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(rpc::IsRetryable(StatusCode::kDeadlineExceeded));
}

TEST(RetryPlumbingTest, RetryAfterHintParsing) {
  EXPECT_DOUBLE_EQ(rpc::RetryAfterHintMs("server overloaded; "
                                         "retry_after_ms=120"),
                   120.0);
  EXPECT_DOUBLE_EQ(rpc::RetryAfterHintMs("retry_after_ms=62.5 (queue full)"),
                   62.5);
  EXPECT_DOUBLE_EQ(rpc::RetryAfterHintMs("no hint here"), 0.0);
  EXPECT_DOUBLE_EQ(rpc::RetryAfterHintMs("retry_after_ms=abc"), 0.0);
}

TEST(RetryPlumbingTest, DeadlineRidesSparselyOnTheWire) {
  rpc::RpcRequest request;
  request.method = "dataaccess.query";
  request.params.emplace_back(std::string("SELECT 1"));

  std::string bare = rpc::EncodeRequest(request);
  EXPECT_EQ(bare.find("deadlineMs"), std::string::npos);

  request.deadline_ms = 123.5;
  std::string with_deadline = rpc::EncodeRequest(request);
  EXPECT_NE(with_deadline.find("deadlineMs"), std::string::npos);

  auto decoded = rpc::DecodeRequest(with_deadline);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_DOUBLE_EQ(decoded->deadline_ms, 123.5);
  auto decoded_bare = rpc::DecodeRequest(bare);
  ASSERT_TRUE(decoded_bare.ok());
  EXPECT_DOUBLE_EQ(decoded_bare->deadline_ms, 0.0);
}

TEST(RetryPlumbingTest, CancelledSubqueriesStatIsSparse) {
  QueryStats stats;
  auto bare = StatsToRpc(stats);
  auto bare_struct = bare.AsStruct();
  ASSERT_TRUE(bare_struct.ok());
  EXPECT_EQ((*bare_struct)->count("cancelled_subqueries"), 0u);

  stats.cancelled_subqueries = 3;
  auto round_trip = StatsFromRpc(StatsToRpc(stats));
  EXPECT_EQ(round_trip.cancelled_subqueries, 3u);
}

// ---------- AdmissionController unit behaviour ----------

TEST(AdmissionControllerTest, DisabledConfigAdmitsEverything) {
  AdmissionConfig config;  // max_concurrent = 0: disabled
  AdmissionController controller(config);
  std::vector<AdmissionController::Ticket> tickets;
  for (int i = 0; i < 32; ++i) {
    auto ticket = controller.Admit(QueryPriority::kInteractive);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(std::move(*ticket));
  }
  EXPECT_EQ(controller.in_flight(), 0u);  // disabled controller counts nothing
}

TEST(AdmissionControllerTest, ShedsWithParseableRetryAfterHint) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.retry_after_ms = 77.0;
  AdmissionController controller(config);

  auto held = controller.Admit(QueryPriority::kInteractive);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(controller.in_flight(), 1u);

  auto shed = controller.Admit(QueryPriority::kInteractive);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(rpc::IsRetryable(shed.status().code()));
  EXPECT_DOUBLE_EQ(rpc::RetryAfterHintMs(shed.status().message()), 77.0);

  held->Release();
  EXPECT_EQ(controller.in_flight(), 0u);
  EXPECT_TRUE(controller.Admit(QueryPriority::kInteractive).ok());
}

TEST(AdmissionControllerTest, InteractiveReserveShedsScansFirst) {
  AdmissionConfig config;
  config.max_concurrent = 2;
  config.interactive_reserve = 1;
  AdmissionController controller(config);

  // An idle server serves a scan (one unreserved slot exists)...
  auto scan = controller.Admit(QueryPriority::kScan);
  ASSERT_TRUE(scan.ok());
  // ...but the next scan would eat into the interactive reserve: shed.
  auto second_scan = controller.Admit(QueryPriority::kScan);
  ASSERT_FALSE(second_scan.ok());
  EXPECT_EQ(second_scan.status().code(), StatusCode::kResourceExhausted);
  // Interactive traffic still fits in the reserved slot.
  auto interactive = controller.Admit(QueryPriority::kInteractive);
  EXPECT_TRUE(interactive.ok());
}

TEST(AdmissionControllerTest, ReserveCoveringAllSlotsMakesScansUnservable) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.interactive_reserve = 1;
  AdmissionController controller(config);
  auto scan = controller.Admit(QueryPriority::kScan);
  ASSERT_FALSE(scan.ok());  // shed even on an idle server
  EXPECT_EQ(scan.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(controller.Admit(QueryPriority::kInteractive).ok());
}

TEST(AdmissionControllerTest, QueuedWaiterAdmittedWhenSlotFrees) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queued = 1;
  AdmissionController controller(config);

  auto held = controller.Admit(QueryPriority::kInteractive);
  ASSERT_TRUE(held.ok());
  std::thread waiter([&] {
    auto ticket = controller.Admit(QueryPriority::kInteractive);
    EXPECT_TRUE(ticket.ok());
  });
  while (controller.queued() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // With the queue slot taken, further arrivals are shed immediately.
  auto shed = controller.Admit(QueryPriority::kInteractive);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);

  held->Release();  // wakes the queued waiter
  waiter.join();    // the waiter's ticket was granted, then released
  EXPECT_EQ(controller.queued(), 0u);
  EXPECT_EQ(controller.in_flight(), 0u);
}

TEST(AdmissionControllerTest, CancellationAbortsQueuedWait) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queued = 1;
  AdmissionController controller(config);

  auto held = controller.Admit(QueryPriority::kInteractive);
  ASSERT_TRUE(held.ok());
  CancelToken token = CancelToken::Cancellable();
  Status waited = Status::Ok();
  std::thread waiter([&] {
    auto ticket = controller.Admit(QueryPriority::kInteractive, &token);
    waited = ticket.status();
  });
  while (controller.queued() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  token.Cancel();
  waiter.join();
  EXPECT_EQ(waited.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(waited.message(), "query cancelled");
  EXPECT_EQ(controller.queued(), 0u);
  EXPECT_EQ(controller.in_flight(), 1u);  // the held slot was never granted
}

TEST(AdmissionControllerTest, MergeMemoryBudgetBoundsConcurrentPressure) {
  AdmissionConfig config;
  config.max_concurrent = 4;
  config.merge_memory_budget_bytes = 1000;
  AdmissionController controller(config);

  auto first = controller.ReserveMergeMemory(600);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(controller.merge_memory_bytes(), 600u);

  auto second = controller.ReserveMergeMemory(600);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("retry_after_ms="),
            std::string::npos);

  first->Release();
  EXPECT_EQ(controller.merge_memory_bytes(), 0u);
  // A lone oversized merge is still served: the budget bounds concurrent
  // pressure, not the biggest query an operator may run.
  auto oversized = controller.ReserveMergeMemory(50000);
  EXPECT_TRUE(oversized.ok());
  // ...but while it holds memory, everything else is shed.
  auto crowded = controller.ReserveMergeMemory(10);
  EXPECT_EQ(crowded.status().code(), StatusCode::kResourceExhausted);
}

// ---------- deadline propagation over raw RPC ----------

struct DeadlinePropagationFixture : public ::testing::Test {
  DeadlinePropagationFixture()
      : transport(&network, net::ServiceCosts::Default()),
        server_b("clarens://b:8080/x", &transport),
        server_c("clarens://c:8080/x", &transport) {
    for (const char* h : {"a", "b", "c"}) network.AddHost(h);
    (void)server_c.RegisterMethod(
        "echo.budget",
        [](const rpc::XmlRpcArray&,
           rpc::CallContext& ctx) -> Result<rpc::XmlRpcValue> {
          return rpc::XmlRpcValue(ctx.deadline_budget_ms);
        });
    (void)server_b.RegisterMethod(
        "hop",
        [](const rpc::XmlRpcArray&,
           rpc::CallContext& ctx) -> Result<rpc::XmlRpcValue> {
          // A real server derives its token from the wire budget, does
          // some work, and forwards; the nested call stamps what is left.
          net::Network* net_ptr = ctx.transport->network();
          CancelToken token;
          if (ctx.deadline_budget_ms > 0) {
            token = CancelToken::WithBudget(
                [net_ptr] { return net_ptr->NowMs(); }, ctx.deadline_budget_ms);
          }
          net_ptr->AdvanceClockMs(10.0);  // simulated server-side work
          rpc::RpcClient inner(ctx.transport, "b", "clarens://c:8080/x");
          GRIDDB_ASSIGN_OR_RETURN(
              rpc::XmlRpcValue nested,
              inner.Call("echo.budget", {}, &ctx.cost, 0, "", nullptr,
                         token.active() ? &token : nullptr));
          GRIDDB_ASSIGN_OR_RETURN(double inner_budget, nested.AsDouble());
          rpc::XmlRpcStruct out;
          out["received"] = ctx.deadline_budget_ms;
          out["inner"] = inner_budget;
          return rpc::XmlRpcValue(std::move(out));
        });
  }

  net::Network network;
  rpc::Transport transport;
  rpc::RpcServer server_b;
  rpc::RpcServer server_c;
};

TEST_F(DeadlinePropagationFixture, BudgetShrinksHopByHop) {
  rpc::RpcClient client(&transport, "a", "clarens://b:8080/x");
  CancelToken token = CancelToken::WithBudget(
      [this] { return network.NowMs(); }, 1000.0);
  network.AdvanceClockMs(7.0);  // client-side work before the call

  net::Cost cost;
  auto reply = client.Call("hop", {}, &cost, 0, "", nullptr, &token);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto reply_struct = reply->AsStruct();
  ASSERT_TRUE(reply_struct.ok());
  auto received = (*reply_struct)->at("received").AsDouble();
  auto inner = (*reply_struct)->at("inner").AsDouble();
  ASSERT_TRUE(received.ok());
  ASSERT_TRUE(inner.ok());

  // Hop 1 sees the budget minus the client's 7 ms; hop 2 sees at least
  // 10 ms less again (server-b's work, plus its request-leg latency).
  EXPECT_LE(*received, 993.0 + 1e-9);
  EXPECT_GT(*received, 900.0);
  EXPECT_LE(*inner, *received - 10.0 + 1e-9);
  EXPECT_GT(*inner, 800.0);
}

TEST_F(DeadlinePropagationFixture, ExhaustedBudgetTimesOutThenFailsFast) {
  // Every message on the a<->b link is delayed past the whole budget, so
  // the attempt aborts mid-leg, charging exactly the remaining budget.
  auto plan = std::make_shared<net::FaultPlan>(5);
  net::LinkFaultSpec slow;
  slow.delay_probability = 1.0;
  slow.delay_ms = 500.0;
  plan->SetLinkFaults("a", "b", slow);
  network.InstallFaultPlan(plan);

  rpc::RpcClient client(&transport, "a", "clarens://b:8080/x");
  CancelToken token = CancelToken::WithBudget(
      [this] { return network.NowMs(); }, 200.0);
  const double t0 = network.NowMs();

  net::Cost cost;
  rpc::CallStats first_stats;
  auto timed_out = client.Call("hop", {}, &cost, 0, "", &first_stats, &token);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(first_stats.attempts, 1);
  // The abort charges the attempt to its deadline, never past it.
  EXPECT_NEAR(network.NowMs() - t0, 200.0, 1e-6);

  // The budget is spent: the next call on the same token fails fast at
  // the between-attempts checkpoint without touching the wire.
  rpc::CallStats second_stats;
  auto dead = client.Call("hop", {}, &cost, 0, "", &second_stats, &token);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(second_stats.attempts, 0);
  EXPECT_NEAR(network.NowMs() - t0, 200.0, 1e-6);  // no time spent
}

TEST_F(DeadlinePropagationFixture, OverallTimeoutStopsRetrying) {
  auto plan = std::make_shared<net::FaultPlan>(5);
  plan->AddDownWindow("b", 0, 1e12);
  network.InstallFaultPlan(plan);

  rpc::RpcClient client(&transport, "a", "clarens://b:8080/x");
  rpc::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.attempt_timeout_ms = 50.0;
  // Budget for the one-time connect charge (150 ms) plus two-ish backoff
  // waits, but nowhere near the 10 configured attempts.
  policy.overall_timeout_ms = 500.0;
  client.set_retry_policy(policy);

  const double t0 = network.NowMs();
  net::Cost cost;
  rpc::CallStats stats;
  auto result = client.Call("hop", {}, &cost, 0, "", &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // The overall budget bounds attempts PLUS backoff: far fewer than the
  // 10 configured attempts fit, and the call never outlives the budget.
  EXPECT_GE(stats.attempts, 2);
  EXPECT_LT(stats.attempts, policy.max_attempts);
  EXPECT_EQ(stats.retries, stats.attempts - 1);
  EXPECT_LE(network.NowMs() - t0, policy.overall_timeout_ms + 1e-6);
}

// ---------- full-stack fixture ----------

// server-a hosts EVENTS_A (db_a) and SHARED_EVENTS (db_ra); server-b
// hosts EVENTS_B. A coordinator on "client" owns nothing and fetches
// everything through the RLS.
struct OverloadFixture : public ::testing::Test {
  OverloadFixture()
      : transport(&network, net::ServiceCosts::Default()),
        db_a("db_a", sql::Vendor::kMySql),
        db_b("db_b", sql::Vendor::kMySql),
        db_ra("db_ra", sql::Vendor::kMySql) {
    for (const char* h : {"server-a", "server-b", "rls-host", "client"}) {
      network.AddHost(h);
    }
    rls = std::make_unique<rls::RlsServer>(kRlsUrl, &transport);

    EXPECT_TRUE(db_a.Execute("CREATE TABLE EVENTS_A (ID INT PRIMARY KEY, "
                             "V DOUBLE)")
                    .ok());
    for (const char* row : {"(1, 1.5)", "(2, 2.5)", "(3, 3.5)"}) {
      EXPECT_TRUE(db_a.Execute(std::string("INSERT INTO EVENTS_A (ID, V) "
                                           "VALUES ") +
                               row)
                      .ok());
    }
    EXPECT_TRUE(db_b.Execute("CREATE TABLE EVENTS_B (ID INT PRIMARY KEY, "
                             "V DOUBLE)")
                    .ok());
    for (const char* row : {"(1, 10.5)", "(2, 20.5)"}) {
      EXPECT_TRUE(db_b.Execute(std::string("INSERT INTO EVENTS_B (ID, V) "
                                           "VALUES ") +
                               row)
                      .ok());
    }
    EXPECT_TRUE(db_ra.Execute("CREATE TABLE SHARED_EVENTS (ID INT PRIMARY "
                              "KEY, V DOUBLE)")
                    .ok());
    for (const char* row : {"(1, 0.5)", "(2, 1.5)", "(3, 2.5)"}) {
      EXPECT_TRUE(db_ra.Execute(std::string("INSERT INTO SHARED_EVENTS (ID, "
                                            "V) VALUES ") +
                                row)
                      .ok());
    }

    EXPECT_TRUE(
        catalog.Add({"mysql://server-a/db_a", &db_a, "server-a", "", ""}).ok());
    EXPECT_TRUE(
        catalog.Add({"mysql://server-b/db_b", &db_b, "server-b", "", ""}).ok());
    EXPECT_TRUE(
        catalog.Add({"mysql://server-a/db_ra", &db_ra, "server-a", "", ""})
            .ok());

    DataAccessConfig config_a;
    config_a.server_name = "jclarens-a";
    config_a.host = "server-a";
    config_a.server_url = kServerAUrl;
    config_a.rls_url = kRlsUrl;
    server_a = std::make_unique<JClarensServer>(config_a, &catalog, &transport);
    EXPECT_TRUE(
        server_a->service().RegisterLiveDatabase("mysql://server-a/db_a", "")
            .ok());

    DataAccessConfig config_b;
    config_b.server_name = "jclarens-b";
    config_b.host = "server-b";
    config_b.server_url = kServerBUrl;
    config_b.rls_url = kRlsUrl;
    server_b = std::make_unique<JClarensServer>(config_b, &catalog, &transport);
    EXPECT_TRUE(
        server_b->service().RegisterLiveDatabase("mysql://server-b/db_b", "")
            .ok());
  }

  /// A query-only JClarens node on `client` with no local databases.
  DataAccessConfig CoordinatorConfig() const {
    DataAccessConfig config;
    config.server_name = "coordinator";
    config.host = "client";
    config.rls_url = kRlsUrl;
    return config;
  }

  /// A service with local databases on server-a (no RPC binding), so
  /// tests can drive admission / cancellation without wire traffic.
  std::unique_ptr<DataAccessService> LocalService(DataAccessConfig config) {
    config.server_name = "local";
    config.host = "server-a";
    config.rls_url = kRlsUrl;
    auto service =
        std::make_unique<DataAccessService>(config, &catalog, &transport);
    EXPECT_TRUE(
        service->RegisterLiveDatabase("mysql://server-a/db_a", "").ok());
    EXPECT_TRUE(
        service->RegisterLiveDatabase("mysql://server-a/db_ra", "").ok());
    return service;
  }

  net::Network network;
  rpc::Transport transport;
  engine::Database db_a;
  engine::Database db_b;
  engine::Database db_ra;
  ral::DatabaseCatalog catalog;
  std::unique_ptr<rls::RlsServer> rls;
  std::unique_ptr<JClarensServer> server_a;
  std::unique_ptr<JClarensServer> server_b;
};

// Blocks the first query at the post-plan seam until released; later
// queries pass through untouched.
struct PlanLatch {
  std::mutex mu;
  std::condition_variable cv;
  bool planned = false;
  bool released = false;
  std::atomic<int> uses{0};

  void Install(DataAccessService& service) {
    service.set_post_plan_hook([this] {
      if (uses.fetch_add(1) != 0) return;
      std::unique_lock<std::mutex> lock(mu);
      planned = true;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
    });
  }
  void AwaitPlanned() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return planned; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

TEST_F(OverloadFixture, DeadlineExpiryMidForwardCancelsSiblingFetch) {
  // Every message between the coordinator and server-a is delayed past
  // what the budget can absorb: the events_a fetch times out, eating the
  // whole budget. The sibling events_b fetch then observes the expired
  // deadline at its pre-flight checkpoint and is cancelled without ever
  // contacting server-b — partial_results alone would have substituted
  // the timeout, so the kDeadlineExceeded proves the token cancelled it.
  auto plan = std::make_shared<net::FaultPlan>(11);
  net::LinkFaultSpec slow;
  slow.delay_probability = 1.0;
  slow.delay_ms = 400.0;
  plan->SetLinkFaults("client", "server-a", slow);
  network.InstallFaultPlan(plan);

  DataAccessConfig config = CoordinatorConfig();
  config.partial_results = true;
  config.default_deadline_ms = 700.0;
  DataAccessService coordinator(config, &catalog, &transport);

  const double t0 = network.NowMs();
  QueryStats stats;
  auto rs = coordinator.Query(
      "SELECT events_a.id, events_b.id FROM events_a, events_b", &stats);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
  const double elapsed = network.NowMs() - t0;
  // The timed-out attempt is charged exactly to the deadline; the
  // cancelled sibling spends nothing.
  EXPECT_GE(elapsed, 400.0);
  EXPECT_LE(elapsed, config.default_deadline_ms + 1.0);
  EXPECT_GE(network.fault_counters().delays, 1u);
}

TEST_F(OverloadFixture, PartialOnDeadlineReturnsTruncatedResultUncached) {
  auto plan = std::make_shared<net::FaultPlan>(11);
  net::LinkFaultSpec slow;
  slow.delay_probability = 1.0;
  slow.delay_ms = 400.0;
  plan->SetLinkFaults("client", "server-a", slow);
  network.InstallFaultPlan(plan);

  DataAccessConfig config = CoordinatorConfig();
  config.partial_results = true;
  config.partial_on_deadline = true;  // opt in to truncated responses
  config.query_cache = true;
  config.default_deadline_ms = 700.0;
  DataAccessService coordinator(config, &catalog, &transport);

  QueryStats stats;
  auto rs = coordinator.Query(
      "SELECT events_a.id, events_b.id FROM events_a, events_b", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_GE(stats.subqueries_failed, 1u);
  EXPECT_FALSE(stats.subquery_errors.empty());
  // A deadline-truncated execution must never seed the result cache.
  EXPECT_EQ(coordinator.query_cache().result_entries(), 0u);
}

TEST_F(OverloadFixture, AdmissionShedsAtServiceEntry) {
  DataAccessConfig config;
  config.admission.max_concurrent = 1;
  config.admission.retry_after_ms = 99.0;
  auto service = LocalService(config);

  PlanLatch latch;
  latch.Install(*service);
  std::thread holder([&] {
    auto rs = service->Query("SELECT id FROM events_a");
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
  });
  latch.AwaitPlanned();  // the slot is now held mid-execution

  // The reject path runs no planning, no parsing, no query work: the
  // arrival is turned away at the door with the retry-after hint.
  auto shed = service->Query("SELECT id FROM events_a");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(rpc::RetryAfterHintMs(shed.status().message()), 99.0);

  latch.Release();
  holder.join();
  // With the slot free again the same query is served.
  EXPECT_TRUE(service->Query("SELECT id FROM events_a").ok());
}

TEST_F(OverloadFixture, ScanPriorityShedsBeforeInteractiveOverRpc) {
  // A separate JClarens endpoint whose admission reserve covers every
  // slot: scan-class requests are shed at the door, interactive ones are
  // served — and the kResourceExhausted fault survives the wire.
  DataAccessConfig config;
  config.server_name = "jclarens-reserved";
  config.host = "server-a";
  config.server_url = "clarens://server-a:9090/clarens";
  config.rls_url = kRlsUrl;
  config.admission.max_concurrent = 1;
  config.admission.interactive_reserve = 1;
  JClarensServer reserved(config, &catalog, &transport);
  ASSERT_TRUE(
      reserved.service().RegisterLiveDatabase("mysql://server-a/db_a", "")
          .ok());

  rpc::RpcClient client(&transport, "client",
                        "clarens://server-a:9090/clarens");
  net::Cost cost;
  rpc::XmlRpcArray scan_params;
  scan_params.emplace_back(std::string("SELECT id FROM events_a"));
  scan_params.emplace_back(std::string("scan"));
  auto shed = client.Call("dataaccess.query", scan_params, &cost);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(rpc::RetryAfterHintMs(shed.status().message()), 0.0);

  rpc::XmlRpcArray interactive_params;
  interactive_params.emplace_back(std::string("SELECT id FROM events_a"));
  auto served = client.Call("dataaccess.query", interactive_params, &cost);
  EXPECT_TRUE(served.ok()) << served.status().ToString();
}

TEST_F(OverloadFixture, ClientAbortCancelsSiblingSubqueries) {
  DataAccessConfig config;
  auto service = LocalService(config);

  PlanLatch latch;
  latch.Install(*service);

  CancelToken token = CancelToken::Cancellable();
  Status outcome = Status::Ok();
  std::thread runner([&] {
    QueryContext qctx;
    qctx.cancel = token;
    auto rs = service->Query(
        "SELECT events_a.id, shared_events.id FROM events_a, shared_events",
        nullptr, 0, "", qctx);
    outcome = rs.status();
  });
  latch.AwaitPlanned();  // plan built, fan-out about to start
  token.Cancel();        // client abort races the fan-out
  latch.Release();
  runner.join();

  // Caught at the last pre-execution cancellation point: no sub-query
  // branch ever started work on behalf of the aborted client.
  EXPECT_EQ(outcome.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(outcome.message(), "query cancelled");
}

TEST_F(OverloadFixture, CancellationRacesCompletionSafely) {
  // TSan target: Cancel() from the main thread races the fan-out worker
  // threads' Check() calls. Either outcome (clean rows or a cancelled
  // query) is correct; what must hold is the absence of data races and a
  // precise status when the cancellation wins.
  DataAccessConfig config;
  auto service = LocalService(config);
  for (int i = 0; i < 8; ++i) {
    CancelToken token = CancelToken::Cancellable();
    Status outcome = Status::Ok();
    std::thread runner([&] {
      QueryContext qctx;
      qctx.cancel = token;
      auto rs = service->Query(
          "SELECT events_a.id, shared_events.id FROM events_a, shared_events",
          nullptr, 0, "", qctx);
      outcome = rs.status();
    });
    if (i % 2 == 0) std::this_thread::yield();
    token.Cancel();
    runner.join();
    EXPECT_TRUE(outcome.ok() ||
                outcome.code() == StatusCode::kDeadlineExceeded)
        << outcome.ToString();
  }
}

// ---------- executor batch-granularity cancellation ----------

TEST(ExecutorCancellationTest, CancelledTokenStopsLargeScanMidBatch) {
  // The executor consults the token once per row batch, so a scan large
  // enough to cross a batch boundary stops instead of running to
  // completion — the mechanism that lets one branch's deadline expiry
  // cancel a sibling's runaway join.
  storage::ResultSet big;
  big.columns = {"id"};
  for (int i = 0; i < 4096; ++i) big.rows.push_back({Value(i)});
  engine::MapTableSource source;
  source.Add("big", std::move(big));

  auto stmt =
      sql::ParseSelect("SELECT id FROM big WHERE id >= 0",
                       sql::Dialect::For(sql::Vendor::kSqlite));
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  auto clean = engine::ExecuteSelect(**stmt, source);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->num_rows(), 4096u);

  CancelToken token = CancelToken::Cancellable();
  token.Cancel();
  auto cancelled = engine::ExecuteSelect(**stmt, source, &token);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kDeadlineExceeded);
}

// ---------- the cache never serves a cancelled execution ----------

TEST(QueryCacheGuardTest, NonCacheableResultsAreRefused) {
  cache::QueryCache cache;
  auto rows = std::make_shared<storage::ResultSet>();
  rows->columns = {"id"};
  rows->rows.push_back({Value(1)});

  cache::ResultMeta truncated;
  truncated.non_cacheable = true;
  cache.InsertResult("key", "fp", 1, {"events_a"}, rows, truncated);
  EXPECT_EQ(cache.result_entries(), 0u);
  EXPECT_FALSE(cache.LookupResult("key"));
  // Not even the stale-while-revalidate path may see it.
  EXPECT_FALSE(cache.LastKnownGood("fp", 1));

  cache::ResultMeta clean;
  cache.InsertResult("key", "fp", 1, {"events_a"}, rows, clean);
  EXPECT_EQ(cache.result_entries(), 1u);
  EXPECT_TRUE(cache.LookupResult("key"));
}

TEST_F(OverloadFixture, PreCancelledQueryNeverSeedsTheCache) {
  DataAccessConfig config;
  config.query_cache = true;
  auto service = LocalService(config);

  QueryContext qctx;
  qctx.cancel = CancelToken::Cancellable();
  qctx.cancel.Cancel();
  auto rs = service->Query("SELECT id FROM events_a", nullptr, 0, "", qctx);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service->query_cache().result_entries(), 0u);

  // The same query run cleanly is cached as usual.
  ASSERT_TRUE(service->Query("SELECT id FROM events_a").ok());
  EXPECT_EQ(service->query_cache().result_entries(), 1u);
}

}  // namespace
}  // namespace griddb::core
