// Unit tests for the observability module (src/griddb/obs/): metrics
// registry semantics, histogram bucketing and merging, the
// allocation-free fast path, and tracer span parenting — including
// cross-thread fan-out and the Import/TakeTrace wire round-trip.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "griddb/obs/metrics.h"
#include "griddb/obs/trace.h"

// Counting global operator new so the fast-path test can assert zero
// allocations. The counter only ever increases; tests read the delta.
static std::atomic<uint64_t> g_news{0};

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace griddb::obs {
namespace {

TEST(MetricsTest, HistogramBucketing) {
  Histogram h;
  h.Observe(0.5);   // bucket 0 (<= 1ms)
  h.Observe(1.0);   // bucket 0 (bounds are inclusive)
  h.Observe(1.5);   // bucket 1 (<= 2ms)
  h.Observe(30);    // bucket 5 (<= 50ms)
  h.Observe(9e299); // overflow bucket
  HistogramData data = h.Data();
  EXPECT_EQ(data.count, 5u);
  EXPECT_DOUBLE_EQ(data.sum, 0.5 + 1.0 + 1.5 + 30 + 9e299);
  EXPECT_EQ(data.buckets[0], 2u);
  EXPECT_EQ(data.buckets[1], 1u);
  EXPECT_EQ(data.buckets[5], 1u);
  EXPECT_EQ(data.buckets[kLatencyBuckets - 1], 1u);
}

TEST(MetricsTest, HistogramQuantiles) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Data().ApproxQuantileMs(0.5), 0);  // empty
  for (int i = 0; i < 90; ++i) h.Observe(0.5);  // bucket 0 (upper 1ms)
  for (int i = 0; i < 10; ++i) h.Observe(800);  // bucket 9 (upper 1000ms)
  HistogramData data = h.Data();
  EXPECT_DOUBLE_EQ(data.ApproxQuantileMs(0.5), 1);
  EXPECT_DOUBLE_EQ(data.ApproxQuantileMs(0.99), 1000);
  EXPECT_DOUBLE_EQ(data.mean(), (90 * 0.5 + 10 * 800) / 100.0);
}

TEST(MetricsTest, HistogramMerge) {
  Histogram a, b;
  a.Observe(1);
  a.Observe(100);
  b.Observe(100);
  b.Observe(3000);
  HistogramData merged = a.Data();
  merged.Merge(b.Data());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_DOUBLE_EQ(merged.sum, 1 + 100 + 100 + 3000);
  EXPECT_EQ(merged.buckets[0], 1u);
  EXPECT_EQ(merged.buckets[6], 2u);   // 100ms bucket, both sides
  EXPECT_EQ(merged.buckets[11], 1u);  // 3000ms lands in <= 5000ms
}

TEST(MetricsTest, RegistryReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("test.counter");
  Counter* c2 = registry.GetCounter("test.counter");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1, c2);  // same instrument on re-registration
  c1->Add(3);
  EXPECT_EQ(c2->value(), 3u);

  // A name registers as exactly one kind.
  EXPECT_EQ(registry.GetGauge("test.counter"), nullptr);
  EXPECT_EQ(registry.GetHistogram("test.counter"), nullptr);
  ASSERT_NE(registry.GetGauge("test.gauge"), nullptr);
  EXPECT_EQ(registry.GetCounter("test.gauge"), nullptr);

  // Reset zeroes values but keeps handles valid.
  registry.Reset();
  EXPECT_EQ(c1->value(), 0u);
  c1->Add(1);
  EXPECT_EQ(registry.Snapshot().counters.at("test.counter"), 1u);
}

TEST(MetricsTest, SnapshotMergeSemantics) {
  MetricsRegistry a, b;
  a.GetCounter("c")->Add(2);
  b.GetCounter("c")->Add(5);
  a.GetGauge("g")->Set(1.0);
  b.GetGauge("g")->Set(7.0);
  a.GetHistogram("h")->Observe(10);
  b.GetHistogram("h")->Observe(20);
  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("c"), 7u);     // counters add
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 7.0);  // gauges last-wins
  EXPECT_EQ(merged.histograms.at("h").count, 2u);
}

TEST(MetricsTest, FastPathDoesNotAllocate) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("alloc.test.counter");
  Histogram* histogram = registry.GetHistogram("alloc.test.histogram");
  Gauge* gauge = registry.GetGauge("alloc.test.gauge");
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(histogram, nullptr);
  ASSERT_NE(gauge, nullptr);
  const uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    counter->Add(1);
    gauge->Set(static_cast<double>(i));
    histogram->Observe(static_cast<double>(i % 97));
  }
  const uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(counter->value(), 10000u);
  EXPECT_EQ(histogram->count(), 10000u);
}

TEST(MetricsTest, DefaultRegistryHoldsBuiltInInstruments) {
  // Touching a built-in accessor name must round-trip through the
  // process-wide registry (instrumented modules register lazily, so only
  // assert the registry serves the name consistently).
  Counter* c = MetricsRegistry::Default().GetCounter("griddb.test.probe");
  ASSERT_NE(c, nullptr);
  c->Add(1);
  EXPECT_GE(MetricsRegistry::Default().Snapshot().counters.at(
                "griddb.test.probe"),
            1u);
}

TEST(TraceTest, DisabledTracerIsInert) {
  Tracer tracer;  // disabled by default
  Span span = tracer.StartSpan("noop");
  EXPECT_FALSE(span.active());
  EXPECT_FALSE(span.context().valid());
  span.AddAttr("k", "v");
  span.SetError("ignored");
  span.End();
  EXPECT_EQ(tracer.finished_count(), 0u);
  EXPECT_FALSE(tracer.CurrentContext().valid());
}

TEST(TraceTest, SeededIdsAreDeterministic) {
  auto run = [](uint64_t seed) {
    Tracer tracer(seed);
    tracer.set_enabled(true);
    std::vector<uint64_t> ids;
    {
      Span root = tracer.StartSpan("root");
      Span child = tracer.StartSpan("child");
      ids.push_back(root.context().trace_id);
      ids.push_back(root.context().span_id);
      ids.push_back(child.context().span_id);
    }
    return ids;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(TraceTest, ImplicitNestingRecordsParentage) {
  Tracer tracer(100);
  tracer.set_enabled(true);
  uint64_t root_span = 0, child_span = 0;
  {
    Span root = tracer.StartSpan("query");
    root_span = root.context().span_id;
    {
      Span child = tracer.StartSpan("plan");
      child_span = child.context().span_id;
      EXPECT_EQ(child.context().trace_id, root.context().trace_id);
    }
    // After the child ends the root is innermost again.
    EXPECT_EQ(tracer.CurrentContext().span_id, root_span);
  }
  std::vector<SpanRecord> finished = tracer.Finished();
  ASSERT_EQ(finished.size(), 2u);  // child finishes first
  EXPECT_EQ(finished[0].name, "plan");
  EXPECT_EQ(finished[0].parent_span_id, root_span);
  EXPECT_EQ(finished[1].name, "query");
  EXPECT_EQ(finished[1].parent_span_id, 0u);
  EXPECT_EQ(finished[0].span_id, child_span);
}

TEST(TraceTest, TracersDoNotCrossParent) {
  // Two tracers on one thread (a client and a server sharing the
  // simulated network's call stack): the server's span must not parent
  // into the client's live span implicitly.
  Tracer client(1), server(1000);
  client.set_enabled(true);
  server.set_enabled(true);
  Span outer = client.StartSpan("client.call");
  Span inner = server.StartSpan("server.handle");
  EXPECT_NE(inner.context().trace_id, outer.context().trace_id);
  inner.End();
  // The client's span is still innermost for its own tracer.
  EXPECT_EQ(client.CurrentContext().span_id, outer.context().span_id);
  outer.End();
  ASSERT_EQ(server.Finished().size(), 1u);
  EXPECT_EQ(server.Finished()[0].parent_span_id, 0u);
}

TEST(TraceTest, CrossThreadParentingViaExplicitContext) {
  Tracer tracer(7);
  tracer.set_enabled(true);
  Span root = tracer.StartSpan("fanout");
  const SpanContext parent = tracer.CurrentContext();
  constexpr int kWorkers = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kWorkers; ++i) {
    threads.emplace_back([&tracer, parent] {
      Span child = tracer.StartSpanUnder("subquery", parent);
      EXPECT_TRUE(child.active());
      child.AddAttr("worker", "x");
    });
  }
  for (auto& t : threads) t.join();
  root.End();
  std::vector<SpanRecord> finished = tracer.Finished();
  ASSERT_EQ(finished.size(), kWorkers + 1u);
  std::vector<uint64_t> seen_ids;
  for (const SpanRecord& record : finished) {
    EXPECT_EQ(record.trace_id, parent.trace_id);
    if (record.name == "subquery") {
      EXPECT_EQ(record.parent_span_id, parent.span_id);
    }
    seen_ids.push_back(record.span_id);
  }
  std::sort(seen_ids.begin(), seen_ids.end());
  EXPECT_EQ(std::adjacent_find(seen_ids.begin(), seen_ids.end()),
            seen_ids.end())
      << "span ids must be unique across threads";
}

TEST(TraceTest, ImportAndTakeTraceRoundTrip) {
  Tracer local(5), remote(500);
  local.set_enabled(true);
  remote.set_enabled(true);

  Span root = local.StartSpan("dataaccess.forward");
  const SpanContext wire = root.context();

  // Remote continues the trace from the wire context, does work, and
  // ships the finished subtree back.
  {
    Span handler = remote.StartSpanUnder("dataaccess.query.remote", wire);
    Span nested = remote.StartSpan("unity.plan");
  }
  std::vector<SpanRecord> shipped = remote.TakeTrace(wire.trace_id);
  ASSERT_EQ(shipped.size(), 2u);
  EXPECT_EQ(remote.finished_count(), 0u);  // TakeTrace is destructive
  // A second take (a client retry) returns nothing — no duplicates.
  EXPECT_TRUE(remote.TakeTrace(wire.trace_id).empty());

  for (SpanRecord& record : shipped) local.Import(std::move(record));
  root.End();

  std::vector<SpanRecord> all = local.Finished();
  ASSERT_EQ(all.size(), 3u);
  for (const SpanRecord& record : all) {
    EXPECT_EQ(record.trace_id, wire.trace_id);
  }
  std::string tree = local.FormatTrace(wire.trace_id);
  EXPECT_NE(tree.find("dataaccess.forward"), std::string::npos);
  EXPECT_NE(tree.find("dataaccess.query.remote"), std::string::npos);
  EXPECT_NE(tree.find("unity.plan"), std::string::npos);
  // The remote handler renders as a child (indented under the root).
  EXPECT_LT(tree.find("dataaccess.forward"),
            tree.find("dataaccess.query.remote"));
}

TEST(TraceTest, TakeTraceLeavesOtherTracesIntact) {
  Tracer tracer(9);
  tracer.set_enabled(true);
  uint64_t first_trace = 0;
  {
    Span a = tracer.StartSpan("a");
    first_trace = a.context().trace_id;
  }
  {
    Span b = tracer.StartSpan("b");
  }
  ASSERT_EQ(tracer.finished_count(), 2u);
  std::vector<SpanRecord> taken = tracer.TakeTrace(first_trace);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].name, "a");
  ASSERT_EQ(tracer.finished_count(), 1u);
  EXPECT_EQ(tracer.Finished()[0].name, "b");
}

TEST(TraceTest, FinishedBufferEvictsOldest) {
  Tracer tracer(11);
  tracer.set_enabled(true);
  constexpr size_t kSpans = 9000;  // past the 8192 cap
  for (size_t i = 0; i < kSpans; ++i) {
    Span span = tracer.StartSpan("tick");
    span.End();
  }
  EXPECT_EQ(tracer.finished_count(), 8192u);
  EXPECT_EQ(tracer.dropped_count(), kSpans - 8192u);
  tracer.Clear();
  EXPECT_EQ(tracer.finished_count(), 0u);
  EXPECT_EQ(tracer.dropped_count(), 0u);
}

TEST(TraceTest, InjectedClockStampsSpans) {
  double now = 100;
  Tracer tracer(13);
  tracer.set_enabled(true);
  tracer.set_clock([&now] { return now; });
  Span span = tracer.StartSpan("timed");
  now = 142.5;
  span.End();
  ASSERT_EQ(tracer.finished_count(), 1u);
  const SpanRecord record = tracer.Finished()[0];
  EXPECT_DOUBLE_EQ(record.start_ms, 100);
  EXPECT_DOUBLE_EQ(record.duration_ms, 42.5);
}

TEST(TraceTest, ErrorAndAttrsSurviveToRecordAndRendering) {
  Tracer tracer(17);
  tracer.set_enabled(true);
  uint64_t trace_id = 0;
  {
    Span span = tracer.StartSpan("rpc.call");
    trace_id = span.context().trace_id;
    span.AddAttr("method", "dataaccess.query");
    span.SetError("Unavailable: host down");
  }
  const SpanRecord record = tracer.Finished()[0];
  EXPECT_TRUE(record.error);
  EXPECT_EQ(record.note, "Unavailable: host down");
  ASSERT_EQ(record.attrs.size(), 1u);
  EXPECT_EQ(record.attrs[0].first, "method");
  std::string tree = tracer.FormatTrace(trace_id);
  EXPECT_NE(tree.find("ERROR(Unavailable: host down)"), std::string::npos);
  EXPECT_NE(tree.find("method=dataaccess.query"), std::string::npos);
}

}  // namespace
}  // namespace griddb::obs
