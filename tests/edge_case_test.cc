// Edge cases across modules that the per-module suites don't reach:
// empty inputs, boundary limits, defaulting behaviour, view-on-view
// stacking, RPC URL normalization, stats round-trips, tracker bookkeeping.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "griddb/core/jclarens_server.h"
#include "griddb/core/schema_tracker.h"
#include "griddb/warehouse/etl.h"

namespace griddb {
namespace {

using storage::DataType;
using storage::Value;

// ---------- engine edges ----------

TEST(EngineEdgeTest, ViewsStackOnViews) {
  engine::Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, b INT)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO t (a, b) VALUES (1, 10), (2, 20), (3, 30)")
          .ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW v1 AS SELECT a, b FROM t WHERE a > 1")
                  .ok());
  ASSERT_TRUE(
      db.Execute("CREATE VIEW v2 AS SELECT b FROM v1 WHERE b < 30").ok());
  auto rs = db.Execute("SELECT * FROM v2");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt64Strict(), 20);
}

TEST(EngineEdgeTest, DropViewThenRecreate) {
  engine::Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW v AS SELECT a FROM t").ok());
  ASSERT_TRUE(db.Execute("DROP VIEW v").ok());
  EXPECT_FALSE(db.HasView("v"));
  ASSERT_TRUE(db.Execute("CREATE VIEW v AS SELECT a + 1 FROM t").ok());
}

TEST(EngineEdgeTest, InsertPartialColumnsDefaultsToNull) {
  engine::Database db("d", sql::Vendor::kMySql);
  ASSERT_TRUE(
      db.Execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(8), c DOUBLE)")
          .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t (a) VALUES (1)").ok());
  auto rs = db.Execute("SELECT a, b, c FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows[0][1].is_null());
  EXPECT_TRUE(rs->rows[0][2].is_null());
}

TEST(EngineEdgeTest, InsertCoercesIntLiteralIntoDoubleColumn) {
  engine::Database db("d", sql::Vendor::kMySql);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x DOUBLE)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t (x) VALUES (7)").ok());
  auto rs = db.Execute("SELECT x FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].type(), DataType::kDouble);
}

TEST(EngineEdgeTest, LimitZeroAndOffsetPastEnd) {
  engine::Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t (a) VALUES (1), (2)").ok());
  EXPECT_EQ(db.Execute("SELECT a FROM t LIMIT 0")->num_rows(), 0u);
  EXPECT_EQ(db.Execute("SELECT a FROM t LIMIT 5 OFFSET 10")->num_rows(), 0u);
}

TEST(EngineEdgeTest, HavingWithoutGroupOrAggregateRejected) {
  engine::Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  EXPECT_EQ(db.Execute("SELECT a FROM t HAVING a > 1").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineEdgeTest, GroupByExpressionKeys) {
  engine::Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO t (a) VALUES (1), (2), (3), (4), (5)").ok());
  auto rs = db.Execute(
      "SELECT a % 2 AS parity, COUNT(*) FROM t GROUP BY a % 2 "
      "ORDER BY parity");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_EQ(rs->rows[0][1].AsInt64Strict(), 2);  // evens: 2, 4
  EXPECT_EQ(rs->rows[1][1].AsInt64Strict(), 3);  // odds: 1, 3, 5
}

TEST(EngineEdgeTest, NullsGroupTogether) {
  engine::Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a VARCHAR(4))").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO t (a) VALUES (NULL), (NULL), ('x')").ok());
  auto rs = db.Execute("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_TRUE(rs->rows[0][0].is_null());  // NULL sorts first
  EXPECT_EQ(rs->rows[0][1].AsInt64Strict(), 2);
}

TEST(EngineEdgeTest, EmptyTableAggregatesAndJoins) {
  engine::Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE empty1 (a INT)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE empty2 (a INT)").ok());
  auto agg = db.Execute("SELECT COUNT(*), MAX(a) FROM empty1");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->rows[0][0].AsInt64Strict(), 0);
  EXPECT_TRUE(agg->rows[0][1].is_null());
  auto join = db.Execute(
      "SELECT e1.a FROM empty1 e1 JOIN empty2 e2 ON e1.a = e2.a");
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->num_rows(), 0u);
}

TEST(EngineEdgeTest, ViewsAreReadOnly) {
  // Paper 4.2: views exist "to provide read-only access for scientific
  // analysis"; every DML form against a view is rejected explicitly.
  engine::Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t (a) VALUES (1)").ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW v AS SELECT a FROM t").ok());
  for (const char* dml :
       {"INSERT INTO v (a) VALUES (2)", "UPDATE v SET a = 3",
        "DELETE FROM v"}) {
    auto result = db.Execute(dml);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << dml;
    EXPECT_NE(result.status().message().find("read-only view"),
              std::string::npos)
        << dml;
  }
  EXPECT_EQ(db.RowCount("t"), 1u);
}

TEST(EngineEdgeTest, ExtendedScalarFunctions) {
  engine::Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (s VARCHAR(32), x DOUBLE)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO t (s, x) VALUES ('  padded  ', -4.0)").ok());
  auto rs = db.Execute(
      "SELECT TRIM(s), LTRIM(s), RTRIM(s), REPLACE(s, 'pad', 'POD'), "
      "INSTR(s, 'pad'), SIGN(x), EXP(0), LN(1), NULLIF(1, 1), "
      "IFNULL(NULL, 42) FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  const auto& row = rs->rows[0];
  EXPECT_EQ(row[0].AsStringStrict(), "padded");
  EXPECT_EQ(row[1].AsStringStrict(), "padded  ");
  EXPECT_EQ(row[2].AsStringStrict(), "  padded");
  EXPECT_EQ(row[3].AsStringStrict(), "  PODded  ");
  EXPECT_EQ(row[4].AsInt64Strict(), 3);
  EXPECT_EQ(row[5].AsInt64Strict(), -1);
  EXPECT_DOUBLE_EQ(row[6].AsDoubleStrict(), 1.0);
  EXPECT_DOUBLE_EQ(row[7].AsDoubleStrict(), 0.0);
  EXPECT_TRUE(row[8].is_null());
  EXPECT_EQ(row[9].AsInt64Strict(), 42);
}

TEST(EngineEdgeTest, LogOfNonPositiveIsNull) {
  engine::Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x DOUBLE)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t (x) VALUES (0.0)").ok());
  auto rs = db.Execute("SELECT LN(x), LOG(-1.0) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows[0][0].is_null());
  EXPECT_TRUE(rs->rows[0][1].is_null());
}

// ---------- rpc edges ----------

TEST(RpcEdgeTest, UrlNormalizationMatchesVariants) {
  net::Network network;
  network.AddHost("h");
  rpc::Transport transport(&network, net::ServiceCosts::Default());
  rpc::RpcServer server("clarens://h:8080/clarens", &transport);
  (void)server.RegisterMethod(
      "ping", [](const rpc::XmlRpcArray&, rpc::CallContext&)
                  -> Result<rpc::XmlRpcValue> { return rpc::XmlRpcValue(1); });
  // Trailing slash and explicit default port resolve to the same endpoint.
  for (const char* variant :
       {"clarens://h:8080/clarens/", "clarens://h:8080/clarens"}) {
    rpc::RpcClient client(&transport, "h", variant);
    EXPECT_TRUE(client.Call("ping", {}, nullptr).ok()) << variant;
  }
}

TEST(RpcEdgeTest, EmptyValueAndEmptyContainers) {
  rpc::XmlRpcValue nil;
  auto round = rpc::XmlRpcValue::FromXml(nil.ToXml());
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->is_empty());

  rpc::XmlRpcValue empty_array((rpc::XmlRpcArray()));
  round = rpc::XmlRpcValue::FromXml(empty_array.ToXml());
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->is_array());
  EXPECT_TRUE(round->AsArray().value()->empty());

  rpc::XmlRpcValue empty_struct((rpc::XmlRpcStruct()));
  round = rpc::XmlRpcValue::FromXml(empty_struct.ToXml());
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->is_struct());
}

TEST(RpcEdgeTest, EmptyResultSetRoundTrips) {
  storage::ResultSet rs;
  rs.columns = {"only_header"};
  auto round = rpc::RpcToResultSet(rpc::ResultSetToRpc(rs));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->columns, rs.columns);
  EXPECT_TRUE(round->rows.empty());
}

TEST(RpcEdgeTest, StatsRoundTripThroughRpcStruct) {
  core::QueryStats stats;
  stats.simulated_ms = 123.5;
  stats.distributed = true;
  stats.used_rls = true;
  stats.servers_contacted = 2;
  stats.databases = 3;
  stats.tables = 4;
  stats.rows = 99;
  stats.pool_ral_subqueries = 2;
  stats.jdbc_subqueries = 1;
  core::QueryStats round = core::StatsFromRpc(core::StatsToRpc(stats));
  EXPECT_DOUBLE_EQ(round.simulated_ms, 123.5);
  EXPECT_TRUE(round.distributed);
  EXPECT_TRUE(round.used_rls);
  EXPECT_EQ(round.servers_contacted, 2u);
  EXPECT_EQ(round.databases, 3u);
  EXPECT_EQ(round.tables, 4u);
  EXPECT_EQ(round.rows, 99u);
  EXPECT_EQ(round.pool_ral_subqueries, 2u);
  EXPECT_EQ(round.jdbc_subqueries, 1u);
}

// ---------- net edges ----------

TEST(NetEdgeTest, ParallelOverEmptyBranchListIsFree) {
  net::Cost cost;
  cost.AddMs(5);
  cost.AddParallel({});
  EXPECT_DOUBLE_EQ(cost.total_ms(), 5.0);
}

// ---------- storage edges ----------

TEST(StorageEdgeTest, ResultSetToTextTruncates) {
  storage::ResultSet rs;
  rs.columns = {"x"};
  for (int i = 0; i < 30; ++i) rs.rows.push_back({Value(int64_t{i})});
  std::string text = rs.ToText(10);
  EXPECT_NE(text.find("(20 more rows)"), std::string::npos);
}

TEST(StorageEdgeTest, StageFileWithZeroRows) {
  storage::TableSchema schema("t", {{"a", DataType::kInt64, false, false}});
  auto decoded = storage::DecodeStage(storage::EncodeStage(schema, {}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->rows.empty());
  EXPECT_EQ(decoded->schema.name(), "t");
}

// ---------- core / XSpec repository edges ----------

TEST(XSpecRepositoryTest, FileUrlReadsFilesystem) {
  core::XSpecRepository repo;
  std::string path =
      (std::filesystem::temp_directory_path() / "griddb_repo_test.xspec")
          .string();
  {
    std::ofstream out(path);
    out << "<xspec database='d' vendor='mysql'/>";
  }
  auto content = repo.Fetch("file://" + path);
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_NE(content->find("xspec"), std::string::npos);
  EXPECT_FALSE(repo.Fetch("file:///nonexistent/nope.xspec").ok());
  std::filesystem::remove(path);
}

TEST(XSpecRepositoryTest, HttpUrlsServeRegisteredDocuments) {
  core::XSpecRepository repo;
  EXPECT_FALSE(repo.Has("http://x/y"));
  repo.Put("http://x/y", "payload");
  EXPECT_TRUE(repo.Has("http://x/y"));
  EXPECT_EQ(repo.Fetch("http://x/y").value(), "payload");
  // Overwrite.
  repo.Put("http://x/y", "updated");
  EXPECT_EQ(repo.Fetch("http://x/y").value(), "updated");
}

// ---------- schema tracker edges ----------

TEST(SchemaTrackerEdgeTest, CheckOnUnregisteredDatabaseFails) {
  net::Network network;
  network.AddHost("h");
  rpc::Transport transport(&network, net::ServiceCosts::Default());
  ral::DatabaseCatalog catalog;
  core::DataAccessConfig config;
  config.host = "h";
  config.server_url = "clarens://h:8080/c";
  core::JClarensServer server(config, &catalog, &transport);
  core::SchemaTracker tracker(&server.service());
  EXPECT_EQ(tracker.CheckOnce("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(tracker.RunOnceAll(), 0u);
  EXPECT_EQ(tracker.checks_run(), 1u);
}

TEST(SchemaTrackerEdgeTest, StartStopIdempotent) {
  net::Network network;
  network.AddHost("h");
  rpc::Transport transport(&network, net::ServiceCosts::Default());
  ral::DatabaseCatalog catalog;
  core::DataAccessConfig config;
  config.host = "h";
  config.server_url = "clarens://h:8081/c";
  core::JClarensServer server(config, &catalog, &transport);
  core::SchemaTracker tracker(&server.service());
  tracker.Start(std::chrono::milliseconds(50));
  tracker.Start(std::chrono::milliseconds(50));  // restart while running
  EXPECT_TRUE(tracker.running());
  tracker.Stop();
  tracker.Stop();  // double stop is harmless
  EXPECT_FALSE(tracker.running());
}

// ---------- ETL job validation ----------

TEST(EtlEdgeTest, MissingEndpointsRejected) {
  net::Network network;
  network.AddHost("h");
  warehouse::EtlPipeline pipeline(
      &network, net::ServiceCosts::Default(), warehouse::EtlCosts::Default(),
      "h", (std::filesystem::temp_directory_path() / "griddb_edge").string());
  warehouse::EtlPipeline::Job job;  // no source/target
  EXPECT_EQ(pipeline.Run(job).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace griddb
