// Multi-tenant isolation: RBAC grants enforced at plan time (an
// unauthorized query fails fast with a permanent kPermissionDenied
// before any RPC fans out, and cache hits re-check the requesting
// tenant's grants), tenant identity rides the wire hop by hop in the
// sparse <tenant> header, and the admission controller's per-tenant
// lanes drain under a deficit-round-robin scheduler that keeps one
// tenant's storm from starving the others.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "griddb/core/jclarens_server.h"
#include "griddb/core/rbac.h"
#include "griddb/engine/select_executor.h"
#include "griddb/obs/metrics.h"
#include "griddb/sql/parser.h"

namespace griddb::core {
namespace {

constexpr char kRlsUrl[] = "rls://rls-host:39281/rls";
constexpr char kServerAUrl[] = "clarens://server-a:8080/clarens";

uint64_t CounterValue(const char* name) {
  const auto snapshot = obs::MetricsRegistry::Default().Snapshot();
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

std::vector<std::string> NoMarts(const std::string&) { return {}; }

// ---------- RbacCatalog unit behaviour ----------

TEST(RbacCatalogTest, UnknownTenantIsDeniedOutright) {
  RbacCatalog rbac;
  Status denied = rbac.CheckSelect("alice", {"events_a"}, NoMarts);
  EXPECT_EQ(denied.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(denied.message().find("not a known user"), std::string::npos);
  // The empty tenant maps to the anonymous user, which must be created
  // (and granted) explicitly before anonymous traffic passes.
  Status anon = rbac.CheckSelect("", {"events_a"}, NoMarts);
  EXPECT_EQ(anon.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(anon.message().find(RbacCatalog::kAnonymousTenant),
            std::string::npos);
  ASSERT_TRUE(rbac.CreateUser(RbacCatalog::kAnonymousTenant).ok());
  ASSERT_TRUE(rbac.GrantTable(RbacCatalog::kAnonymousTenant,
                              RbacCatalog::kAllTables)
                  .ok());
  EXPECT_TRUE(rbac.CheckSelect("", {"events_a"}, NoMarts).ok());
}

TEST(RbacCatalogTest, TableGrantsAreCaseInsensitiveAndRevocable) {
  RbacCatalog rbac;
  ASSERT_TRUE(rbac.CreateUser("alice").ok());
  ASSERT_TRUE(rbac.GrantTable("alice", "EVENTS_A").ok());  // stored lower-case
  EXPECT_TRUE(rbac.CheckSelect("alice", {"events_a"}, NoMarts).ok());

  Status denied = rbac.CheckSelect("alice", {"events_a", "events_b"}, NoMarts);
  EXPECT_EQ(denied.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(denied.message().find("events_b"), std::string::npos);

  ASSERT_TRUE(rbac.RevokeTable("alice", "events_a").ok());
  EXPECT_EQ(rbac.CheckSelect("alice", {"events_a"}, NoMarts).code(),
            StatusCode::kPermissionDenied);

  // The wildcard covers everything, including tables that do not exist.
  ASSERT_TRUE(rbac.GrantTable("alice", RbacCatalog::kAllTables).ok());
  EXPECT_TRUE(
      rbac.CheckSelect("alice", {"events_a", "no_such_table"}, NoMarts).ok());
}

TEST(RbacCatalogTest, RoleInheritanceIsTransitive) {
  RbacCatalog rbac;
  ASSERT_TRUE(rbac.CreateRole("public").ok());
  ASSERT_TRUE(rbac.CreateRole("cms").ok());
  ASSERT_TRUE(rbac.CreateUser("bob").ok());
  ASSERT_TRUE(rbac.GrantTable("public", "events_a").ok());
  ASSERT_TRUE(rbac.AssignRole("cms", "public").ok());
  ASSERT_TRUE(rbac.AssignRole("bob", "cms").ok());
  // bob -> cms -> public -> events_a
  EXPECT_TRUE(rbac.CheckSelect("bob", {"events_a"}, NoMarts).ok());

  ASSERT_TRUE(rbac.RevokeRole("cms", "public").ok());
  EXPECT_EQ(rbac.CheckSelect("bob", {"events_a"}, NoMarts).code(),
            StatusCode::kPermissionDenied);
}

TEST(RbacCatalogTest, MartGrantCoversHostedTables) {
  RbacCatalog rbac;
  ASSERT_TRUE(rbac.CreateUser("carol").ok());
  ASSERT_TRUE(rbac.GrantMart("carol", "db_a").ok());
  auto marts_of = [](const std::string& table) -> std::vector<std::string> {
    if (table == "events_a") return {"db_a"};
    return {};
  };
  EXPECT_TRUE(rbac.CheckSelect("carol", {"events_a"}, marts_of).ok());
  EXPECT_EQ(rbac.CheckSelect("carol", {"events_b"}, marts_of).code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(rbac.RevokeMart("carol", "db_a").ok());
  EXPECT_EQ(rbac.CheckSelect("carol", {"events_a"}, marts_of).code(),
            StatusCode::kPermissionDenied);
}

TEST(RbacCatalogTest, MembershipCyclesAreRejected) {
  RbacCatalog rbac;
  ASSERT_TRUE(rbac.CreateRole("r1").ok());
  ASSERT_TRUE(rbac.CreateRole("r2").ok());
  ASSERT_TRUE(rbac.AssignRole("r1", "r2").ok());
  Status cycle = rbac.AssignRole("r2", "r1");
  EXPECT_EQ(cycle.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(cycle.message().find("cycle"), std::string::npos);
  // Self-membership is the degenerate cycle.
  EXPECT_EQ(rbac.AssignRole("r1", "r1").code(), StatusCode::kInvalidArgument);
}

TEST(RbacCatalogTest, DdlValidatesGrantees) {
  RbacCatalog rbac;
  ASSERT_TRUE(rbac.CreateUser("dave").ok());
  EXPECT_EQ(rbac.CreateUser("dave").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(rbac.CreateRole("dave").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(rbac.GrantTable("ghost", "events_a").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(rbac.RevokeTable("dave", "events_a").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(rbac.AssignRole("dave", "no_role").code(), StatusCode::kNotFound);

  const uint64_t before = rbac.generation();
  ASSERT_TRUE(rbac.GrantTable("dave", "events_a").ok());
  EXPECT_GT(rbac.generation(), before);  // every DDL republishes a snapshot

  ASSERT_TRUE(rbac.DropUser("dave").ok());
  EXPECT_EQ(rbac.CheckSelect("dave", {"events_a"}, NoMarts).code(),
            StatusCode::kPermissionDenied);
}

// Concurrent grant DDL against a hot check path: the copy-on-write
// snapshot swap means readers never block on (or observe half of) a
// mutation. Run under TSan, this is the data-race probe for the
// two-level locking scheme.
TEST(RbacCatalogTest, ConcurrentDdlNeverBlocksOrTearsChecks) {
  RbacCatalog rbac;
  ASSERT_TRUE(rbac.CreateUser("alice").ok());
  ASSERT_TRUE(rbac.CreateRole("analyst").ok());
  ASSERT_TRUE(rbac.AssignRole("alice", "analyst").ok());
  ASSERT_TRUE(rbac.GrantTable("alice", "stable_table").ok());

  std::atomic<bool> stop{false};
  std::thread ddl([&] {
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(rbac.GrantTable("analyst", "flapping_table").ok());
      EXPECT_TRUE(rbac.RevokeTable("analyst", "flapping_table").ok());
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        // The stable grant must hold through every republish; the
        // flapping one may be either way but must never tear.
        EXPECT_TRUE(rbac.CheckSelect("alice", {"stable_table"}, NoMarts).ok());
        Status flapping =
            rbac.CheckSelect("alice", {"flapping_table"}, NoMarts);
        EXPECT_TRUE(flapping.ok() ||
                    flapping.code() == StatusCode::kPermissionDenied);
      }
    });
  }
  ddl.join();
  for (auto& reader : readers) reader.join();
}

// ---------- tenant identity on the wire ----------

TEST(TenantWireTest, TenantRidesSparselyOnTheWire) {
  rpc::RpcRequest request;
  request.method = "dataaccess.query";
  request.params.emplace_back(std::string("SELECT 1"));

  std::string bare = rpc::EncodeRequest(request);
  EXPECT_EQ(bare.find("<tenant>"), std::string::npos);

  request.tenant = "atlas";
  std::string with_tenant = rpc::EncodeRequest(request);
  EXPECT_NE(with_tenant.find("<tenant>atlas</tenant>"), std::string::npos);

  auto decoded = rpc::DecodeRequest(with_tenant);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->tenant, "atlas");
  auto decoded_bare = rpc::DecodeRequest(bare);
  ASSERT_TRUE(decoded_bare.ok());
  EXPECT_EQ(decoded_bare->tenant, "");
}

TEST(TenantWireTest, PermissionDeniedIsPermanent) {
  EXPECT_FALSE(rpc::IsRetryable(StatusCode::kPermissionDenied));
}

// On an authenticated server the tenant identity is bound to the session
// user: the <tenant> wire header cannot impersonate another community.
TEST(TenantWireTest, SessionBindsTenantAgainstImpersonation) {
  net::Network network;
  network.AddHost("auth-host");
  network.AddHost("client");
  rpc::Transport transport(&network, net::ServiceCosts::Default());
  const char* url = "clarens://auth-host:8080/clarens";
  rpc::RpcServer server(url, &transport);
  server.AddUser("alice", "pw", "atlas");  // alice acts for tenant atlas
  server.AddUser("bob", "pw");             // no binding: tenant = user name
  ASSERT_TRUE(server
                  .RegisterMethod("echoTenant",
                                  [](const rpc::XmlRpcArray&,
                                     rpc::CallContext& ctx)
                                      -> Result<rpc::XmlRpcValue> {
                                    return rpc::XmlRpcValue(ctx.tenant);
                                  })
                  .ok());

  rpc::RpcClient alice(&transport, "client", url, "alice", "pw");
  net::Cost cost;
  // No header: the session's bound tenant is adopted.
  auto adopted = alice.Call("echoTenant", {}, &cost);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_EQ(adopted->AsString().value(), "atlas");
  // A header agreeing with the binding is fine.
  auto agreeing =
      alice.Call("echoTenant", {}, &cost, 0, "", nullptr, nullptr, "atlas");
  ASSERT_TRUE(agreeing.ok()) << agreeing.status().ToString();
  EXPECT_EQ(agreeing->AsString().value(), "atlas");
  // Impersonating another tenant is rejected before dispatch.
  auto spoofed =
      alice.Call("echoTenant", {}, &cost, 0, "", nullptr, nullptr, "cms");
  ASSERT_FALSE(spoofed.ok());
  EXPECT_EQ(spoofed.status().code(), StatusCode::kPermissionDenied);
  EXPECT_NE(spoofed.status().message().find("cms"), std::string::npos);
  EXPECT_NE(spoofed.status().message().find("alice"), std::string::npos);
  // A server-to-server forward (forward_depth > 0, set in-process by the
  // forwarding server) relays the original requester's tenant verbatim:
  // the edge server already enforced the binding.
  auto forwarded =
      alice.Call("echoTenant", {}, &cost, 1, "", nullptr, nullptr, "cms");
  ASSERT_TRUE(forwarded.ok()) << forwarded.status().ToString();
  EXPECT_EQ(forwarded->AsString().value(), "cms");

  // Without an explicit binding the user name doubles as the tenant.
  rpc::RpcClient bob(&transport, "client", url, "bob", "pw");
  auto bob_tenant = bob.Call("echoTenant", {}, &cost);
  ASSERT_TRUE(bob_tenant.ok()) << bob_tenant.status().ToString();
  EXPECT_EQ(bob_tenant->AsString().value(), "bob");
}

// ---------- full-stack fixture ----------

// server-a hosts EVENTS_A (db_a); server-b hosts EVENTS_B. Both servers
// share one federation-wide RBAC catalog: anonymous may read everything
// (so untenanted traffic keeps working), "atlas" holds table grants,
// "cms" exists but holds nothing.
struct TenantIsolationFixture : public ::testing::Test {
  TenantIsolationFixture()
      : transport(&network, net::ServiceCosts::Default()),
        db_a("db_a", sql::Vendor::kMySql),
        db_b("db_b", sql::Vendor::kMySql),
        rbac(std::make_shared<RbacCatalog>()) {
    for (const char* h : {"server-a", "server-b", "rls-host", "client"}) {
      network.AddHost(h);
    }
    rls = std::make_unique<rls::RlsServer>(kRlsUrl, &transport);

    EXPECT_TRUE(db_a.Execute("CREATE TABLE EVENTS_A (ID INT PRIMARY KEY, "
                             "V DOUBLE)")
                    .ok());
    for (const char* row : {"(1, 1.5)", "(2, 2.5)", "(3, 3.5)"}) {
      EXPECT_TRUE(db_a.Execute(std::string("INSERT INTO EVENTS_A (ID, V) "
                                           "VALUES ") +
                               row)
                      .ok());
    }
    EXPECT_TRUE(db_b.Execute("CREATE TABLE EVENTS_B (ID INT PRIMARY KEY, "
                             "V DOUBLE)")
                    .ok());
    for (const char* row : {"(1, 10.5)", "(2, 20.5)"}) {
      EXPECT_TRUE(db_b.Execute(std::string("INSERT INTO EVENTS_B (ID, V) "
                                           "VALUES ") +
                               row)
                      .ok());
    }

    EXPECT_TRUE(
        catalog.Add({"mysql://server-a/db_a", &db_a, "server-a", "", ""}).ok());
    EXPECT_TRUE(
        catalog.Add({"mysql://server-b/db_b", &db_b, "server-b", "", ""}).ok());

    EXPECT_TRUE(rbac->CreateUser(RbacCatalog::kAnonymousTenant).ok());
    EXPECT_TRUE(
        rbac->GrantTable(RbacCatalog::kAnonymousTenant, RbacCatalog::kAllTables)
            .ok());
    EXPECT_TRUE(rbac->CreateUser("atlas").ok());
    EXPECT_TRUE(rbac->GrantTable("atlas", "events_a").ok());
    EXPECT_TRUE(rbac->GrantTable("atlas", "events_b").ok());
    EXPECT_TRUE(rbac->CreateUser("cms").ok());

    DataAccessConfig config_a;
    config_a.server_name = "jclarens-a";
    config_a.host = "server-a";
    config_a.server_url = kServerAUrl;
    config_a.rls_url = kRlsUrl;
    config_a.rbac = rbac;
    server_a = std::make_unique<JClarensServer>(config_a, &catalog, &transport);
    EXPECT_TRUE(
        server_a->service().RegisterLiveDatabase("mysql://server-a/db_a", "")
            .ok());

    DataAccessConfig config_b;
    config_b.server_name = "jclarens-b";
    config_b.host = "server-b";
    config_b.server_url = "clarens://server-b:8080/clarens";
    config_b.rls_url = kRlsUrl;
    config_b.rbac = rbac;
    server_b = std::make_unique<JClarensServer>(config_b, &catalog, &transport);
    EXPECT_TRUE(
        server_b->service().RegisterLiveDatabase("mysql://server-b/db_b", "")
            .ok());
  }

  /// A query-only coordinator on `client` that owns no databases.
  DataAccessConfig CoordinatorConfig() const {
    DataAccessConfig config;
    config.server_name = "coordinator";
    config.host = "client";
    config.rls_url = kRlsUrl;
    return config;
  }

  net::Network network;
  rpc::Transport transport;
  engine::Database db_a;
  engine::Database db_b;
  ral::DatabaseCatalog catalog;
  std::shared_ptr<RbacCatalog> rbac;
  std::unique_ptr<rls::RlsServer> rls;
  std::unique_ptr<JClarensServer> server_a;
  std::unique_ptr<JClarensServer> server_b;
};

TEST_F(TenantIsolationFixture, UnauthorizedQueryFailsFastWithoutRpcFanout) {
  DataAccessConfig config = CoordinatorConfig();
  config.rbac = rbac;
  DataAccessService coordinator(config, &catalog, &transport);

  const uint64_t calls_before = CounterValue("griddb.rpc.client.calls");
  const uint64_t forwards_before = CounterValue("griddb.core.forwards");

  QueryContext ctx;
  ctx.tenant = "cms";
  QueryStats stats;
  auto rs = coordinator.Query("SELECT id FROM events_a", &stats, 0, "",
                              std::move(ctx));
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kPermissionDenied);
  EXPECT_NE(rs.status().message().find("cms"), std::string::npos);
  EXPECT_NE(rs.status().message().find("events_a"), std::string::npos);
  // Fail-fast means fail-cheap: the denial happened at plan time, before
  // the RLS lookup and before any sub-query RPC left this host.
  EXPECT_EQ(CounterValue("griddb.rpc.client.calls"), calls_before);
  EXPECT_EQ(CounterValue("griddb.core.forwards"), forwards_before);

  // The same query under a granted tenant flows all the way through.
  QueryContext granted;
  granted.tenant = "atlas";
  auto ok = coordinator.Query("SELECT id FROM events_a", &stats, 0, "",
                              std::move(granted));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->num_rows(), 3u);
  EXPECT_GT(CounterValue("griddb.rpc.client.calls"), calls_before);
}

TEST_F(TenantIsolationFixture, TenantPropagatesHopByHopToRemoteEnforcement) {
  // The coordinator itself carries no RBAC catalog: the only enforcement
  // point is server-b, so a denial proves the tenant identity crossed
  // the wire with the forwarded sub-query.
  DataAccessService coordinator(CoordinatorConfig(), &catalog, &transport);

  QueryContext cms;
  cms.tenant = "cms";
  auto denied =
      coordinator.Query("SELECT id FROM events_b", nullptr, 0, "",
                        std::move(cms));
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  EXPECT_NE(denied.status().message().find("cms"), std::string::npos);

  QueryContext atlas;
  atlas.tenant = "atlas";
  auto ok = coordinator.Query("SELECT id FROM events_b", nullptr, 0, "",
                              std::move(atlas));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->num_rows(), 2u);
}

TEST_F(TenantIsolationFixture, RpcHandlerAdoptsWireTenant) {
  rpc::RpcClient client(&transport, "client", kServerAUrl);
  rpc::XmlRpcArray params;
  params.emplace_back(std::string("SELECT id FROM events_a"));

  client.set_tenant("cms");
  net::Cost cost;
  auto denied = client.Call("dataaccess.query", params, &cost);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  EXPECT_NE(denied.status().message().find("cms"), std::string::npos);

  // A per-call tenant overrides the client-wide default (one cached
  // client per server is shared by every tenant's fan-out).
  auto ok = client.Call("dataaccess.query", params, &cost, 0, "", nullptr,
                        nullptr, "atlas");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();

  // No tenant at all = the anonymous user, granted everything here.
  client.set_tenant("");
  auto anon = client.Call("dataaccess.query", params, &cost);
  EXPECT_TRUE(anon.ok()) << anon.status().ToString();
}

TEST_F(TenantIsolationFixture, PermissionDeniedIsNotRetried) {
  rpc::RpcClient client(&transport, "client", kServerAUrl);
  client.set_retry_policy(rpc::RetryPolicy::Default());
  client.set_tenant("cms");
  rpc::XmlRpcArray params;
  params.emplace_back(std::string("SELECT id FROM events_a"));

  net::Cost cost;
  rpc::CallStats stats;
  auto denied = client.Call("dataaccess.query", params, &cost, 0, "", &stats);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  // Permanent: exactly one attempt, no backoff burned, and the stats
  // record that the retry loop stopped on a non-retryable status.
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_TRUE(stats.non_retryable);
}

TEST_F(TenantIsolationFixture, CacheHitRechecksGrantsAndRevocationSticks) {
  DataAccessConfig config;
  config.server_name = "local";
  config.host = "server-a";
  config.rls_url = kRlsUrl;
  config.query_cache = true;
  config.rbac = rbac;
  DataAccessService service(config, &catalog, &transport);
  ASSERT_TRUE(service.RegisterLiveDatabase("mysql://server-a/db_a", "").ok());

  ASSERT_TRUE(rbac->CreateUser("alice").ok());
  ASSERT_TRUE(rbac->GrantTable("alice", "events_a").ok());
  ASSERT_TRUE(rbac->CreateUser("bob").ok());

  const char* query = "SELECT id, v FROM events_a";

  // alice executes and seeds the result cache.
  QueryContext alice;
  alice.tenant = "alice";
  QueryStats warm_stats;
  auto warm = service.Query(query, &warm_stats, 0, "", std::move(alice));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(service.query_cache().result_entries(), 1u);

  // bob lacks the grant: the byte-identical repeat query must NOT be
  // served from alice's cached result.
  QueryContext bob;
  bob.tenant = "bob";
  auto denied = service.Query(query, nullptr, 0, "", std::move(bob));
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);

  // Granting bob makes the very next request eligible — and it IS the
  // cached result (no restart, no cache flush).
  ASSERT_TRUE(rbac->GrantTable("bob", "events_a").ok());
  QueryContext bob_granted;
  bob_granted.tenant = "bob";
  QueryStats hit_stats;
  auto served = service.Query(query, &hit_stats, 0, "",
                              std::move(bob_granted));
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(hit_stats.result_cache_hits, 1u);
  EXPECT_EQ(served->num_rows(), warm->num_rows());

  // Revocation takes effect on the next request, cached result or not.
  ASSERT_TRUE(rbac->RevokeTable("bob", "events_a").ok());
  QueryContext bob_revoked;
  bob_revoked.tenant = "bob";
  auto revoked = service.Query(query, nullptr, 0, "", std::move(bob_revoked));
  ASSERT_FALSE(revoked.ok());
  EXPECT_EQ(revoked.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(TenantIsolationFixture, RbacGatesLaneCreationForUnknownTenants) {
  DataAccessConfig config;
  config.server_name = "gated";
  config.host = "server-a";
  config.rls_url = kRlsUrl;
  config.rbac = rbac;
  config.admission.max_concurrent = 4;
  config.admission.tenant_isolation = true;
  DataAccessService service(config, &catalog, &transport);
  ASSERT_TRUE(service.RegisterLiveDatabase("mysql://server-a/db_a", "").ok());

  // A flood of distinct made-up tenant names: every query is denied at
  // plan time, and none of the names earns a permanent admission lane.
  for (int i = 0; i < 8; ++i) {
    QueryContext ctx;
    ctx.tenant = "intruder-" + std::to_string(i);
    auto denied = service.Query("SELECT id FROM events_a", nullptr, 0, "",
                                std::move(ctx));
    ASSERT_FALSE(denied.ok());
    EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  }
  // Only the shared default lane materialized for the unknown names.
  for (const auto& lane : service.admission().lane_stats()) {
    EXPECT_TRUE(lane.tenant.empty()) << lane.tenant;
  }
  EXPECT_LE(service.admission().lane_stats().size(), 1u);

  // A catalog-known tenant still gets its own lane.
  QueryContext atlas;
  atlas.tenant = "atlas";
  auto ok = service.Query("SELECT id FROM events_a", nullptr, 0, "",
                          std::move(atlas));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  bool atlas_lane = false;
  for (const auto& lane : service.admission().lane_stats()) {
    if (lane.tenant == "atlas") atlas_lane = true;
  }
  EXPECT_TRUE(atlas_lane);
}

TEST_F(TenantIsolationFixture, TenantStatsRpcExposesLanes) {
  DataAccessConfig config;
  config.server_name = "jclarens-t";
  config.host = "server-a";
  config.server_url = "clarens://server-a:8083/clarens";
  config.rls_url = kRlsUrl;
  config.admission.max_concurrent = 4;
  config.admission.tenant_isolation = true;
  TenantQuota quota;
  quota.tenant = "atlas";
  quota.weight = 2.0;
  quota.min_reserved = 1;
  config.admission.tenant_quotas.push_back(quota);
  JClarensServer server(config, &catalog, &transport);

  rpc::RpcClient client(&transport, "client", config.server_url);
  net::Cost cost;
  auto reply = client.Call("dataaccess.tenantStats", {}, &cost);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto lanes = reply->AsArray();
  ASSERT_TRUE(lanes.ok());
  bool found = false;
  for (const rpc::XmlRpcValue& lane : **lanes) {
    auto fields = lane.AsStruct();
    ASSERT_TRUE(fields.ok());
    auto tenant = (*fields)->at("tenant").AsString();
    ASSERT_TRUE(tenant.ok());
    if (*tenant != "atlas") continue;
    found = true;
    auto weight = (*fields)->at("weight").AsDouble();
    ASSERT_TRUE(weight.ok());
    EXPECT_DOUBLE_EQ(*weight, 2.0);
    auto reserved = (*fields)->at("min_reserved").AsInt();
    ASSERT_TRUE(reserved.ok());
    EXPECT_EQ(*reserved, 1);
  }
  EXPECT_TRUE(found);
}

// ---------- per-tenant admission lanes ----------

TEST(TenantAdmissionTest, LaneQueueOverflowShedsOnlyThatTenant) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queued = 1;
  config.tenant_isolation = true;
  TenantQuota cms;
  cms.tenant = "cms";
  cms.retry_after_ms = 42.0;
  config.tenant_quotas.push_back(cms);
  AdmissionController controller(config);

  auto held = controller.Admit(QueryPriority::kInteractive, nullptr, "cms");
  ASSERT_TRUE(held.ok());
  std::thread cms_waiter([&] {
    auto ticket = controller.Admit(QueryPriority::kInteractive, nullptr,
                                   "cms");
    EXPECT_TRUE(ticket.ok());
  });
  while (controller.queued() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // cms's own lane queue is full: the next cms arrival is shed, with the
  // tenant named and its private retry-after hint attached.
  auto shed = controller.Admit(QueryPriority::kInteractive, nullptr, "cms");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("tenant 'cms'"), std::string::npos);
  EXPECT_DOUBLE_EQ(rpc::RetryAfterHintMs(shed.status().message()), 42.0);

  // atlas still has its own (empty) queue: it waits instead of shedding.
  std::thread atlas_waiter([&] {
    auto ticket = controller.Admit(QueryPriority::kInteractive, nullptr,
                                   "atlas");
    EXPECT_TRUE(ticket.ok());
  });
  while (controller.queued() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  held->Release();
  cms_waiter.join();
  atlas_waiter.join();
  EXPECT_EQ(controller.queued(), 0u);
  EXPECT_EQ(controller.in_flight(), 0u);
}

TEST(TenantAdmissionTest, MinReservedIsNextSlotPriorityNotIdleSlots) {
  AdmissionConfig config;
  config.max_concurrent = 2;
  config.max_queued = 4;
  config.tenant_isolation = true;
  TenantQuota atlas;
  atlas.tenant = "atlas";
  atlas.min_reserved = 1;
  config.tenant_quotas.push_back(atlas);
  AdmissionController controller(config);

  // Work conservation: with atlas idle, cms may fill every slot — the
  // reservation never holds a slot empty.
  auto cms_one = controller.Admit(QueryPriority::kInteractive, nullptr, "cms");
  auto cms_two = controller.Admit(QueryPriority::kInteractive, nullptr, "cms");
  ASSERT_TRUE(cms_one.ok());
  ASSERT_TRUE(cms_two.ok());

  std::atomic<bool> atlas_got{false};
  std::atomic<bool> cms_got{false};
  std::atomic<bool> release_atlas{false};
  std::thread atlas_waiter([&] {
    auto ticket = controller.Admit(QueryPriority::kInteractive, nullptr,
                                   "atlas");
    EXPECT_TRUE(ticket.ok());
    atlas_got.store(true);
    while (!release_atlas.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread cms_waiter([&] {
    auto ticket = controller.Admit(QueryPriority::kInteractive, nullptr,
                                   "cms");
    EXPECT_TRUE(ticket.ok());
    cms_got.store(true);
  });
  while (controller.queued() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The first freed slot must go to atlas (queued demand below its
  // reservation), even though cms queued first.
  cms_one->Release();
  while (!atlas_got.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(cms_got.load());

  // With atlas's reservation met, the next freed slot goes to cms.
  cms_two->Release();
  cms_waiter.join();
  EXPECT_TRUE(cms_got.load());
  release_atlas.store(true);
  atlas_waiter.join();
  EXPECT_EQ(controller.in_flight(), 0u);
}

// Property test for the deficit-round-robin scheduler: randomized
// arrival order, a weight-2 and a weight-1 lane, and a batch of
// cancelled waiters in a third lane. Invariants: every live waiter is
// eventually granted (no starvation), a single circulating slot drains
// the whole backlog (work conservation), cancellations leave the queues
// clean, and while both lanes are backlogged the grant shares track the
// 2:1 weights. Runs under TSan in scripts/check.sh.
TEST(TenantAdmissionTest, DrrDrainsWeightProportionallyWithoutStarvation) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queued = 64;
  config.tenant_isolation = true;
  TenantQuota atlas;
  atlas.tenant = "atlas";
  atlas.weight = 2.0;
  TenantQuota cms;
  cms.tenant = "cms";
  cms.weight = 1.0;
  config.tenant_quotas = {atlas, cms};
  AdmissionController controller(config);

  // Hold the only slot so every arrival queues behind it.
  auto seed = controller.Admit(QueryPriority::kInteractive, nullptr, "seed");
  ASSERT_TRUE(seed.ok());

  std::vector<std::string> arrivals;
  for (int i = 0; i < 20; ++i) arrivals.push_back("atlas");
  for (int i = 0; i < 20; ++i) arrivals.push_back("cms");
  std::mt19937 rng(20260808);
  std::shuffle(arrivals.begin(), arrivals.end(), rng);

  // With max_concurrent = 1, a granted thread records its tenant before
  // its ticket releases the slot, so `order` is the exact grant order.
  std::mutex order_mu;
  std::vector<std::string> order;
  std::vector<std::thread> threads;
  for (const std::string& tenant : arrivals) {
    threads.emplace_back([&controller, &order_mu, &order, tenant] {
      auto ticket =
          controller.Admit(QueryPriority::kInteractive, nullptr, tenant);
      EXPECT_TRUE(ticket.ok());
      if (ticket.ok()) {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(tenant);
      }
    });
  }
  // A third lane whose waiters are all cancelled while queued: they must
  // leave their lane cleanly and never consume a grant.
  CancelToken babar_cancel = CancelToken::Cancellable();
  std::vector<std::thread> cancelled;
  for (int i = 0; i < 6; ++i) {
    cancelled.emplace_back([&controller, &babar_cancel] {
      auto ticket = controller.Admit(QueryPriority::kInteractive,
                                     &babar_cancel, "babar");
      EXPECT_FALSE(ticket.ok());
    });
  }
  while (controller.queued() < 46) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  babar_cancel.Cancel();
  for (auto& thread : cancelled) thread.join();
  EXPECT_EQ(controller.queued(), 40u);

  seed->Release();
  for (auto& thread : threads) thread.join();

  // No starvation + work conservation: one slot drained all 40.
  ASSERT_EQ(order.size(), 40u);
  EXPECT_EQ(controller.queued(), 0u);
  EXPECT_EQ(controller.in_flight(), 0u);

  // While both lanes were backlogged (guaranteed for the first 18 grants
  // given 20 waiters each), atlas's share must track its weight: the
  // ideal DRR schedule gives exactly 12 of 18.
  size_t atlas_grants = 0;
  for (size_t i = 0; i < 18; ++i) {
    if (order[i] == "atlas") ++atlas_grants;
  }
  EXPECT_GE(atlas_grants, 10u);
  EXPECT_LE(atlas_grants, 14u);

  // Lane accounting survived the churn: every live waiter admitted
  // exactly once, babar admitted none.
  for (const auto& lane : controller.lane_stats()) {
    if (lane.tenant == "atlas" || lane.tenant == "cms") {
      EXPECT_EQ(lane.admitted, 20u) << lane.tenant;
      EXPECT_EQ(lane.queued, 0u) << lane.tenant;
    }
    if (lane.tenant == "babar") {
      EXPECT_EQ(lane.admitted, 0u);
      EXPECT_EQ(lane.queued, 0u);
    }
  }
}

// With a known_tenant gate, attacker-minted tenant strings share the
// default lane instead of each growing permanent scheduler state.
TEST(TenantAdmissionTest, UnknownTenantsShareTheDefaultLane) {
  AdmissionConfig config;
  config.max_concurrent = 4;
  config.max_queued = 4;
  config.tenant_isolation = true;
  TenantQuota atlas;
  atlas.tenant = "atlas";
  config.tenant_quotas.push_back(atlas);
  config.known_tenant = [](const std::string& tenant) {
    return tenant == "atlas" || tenant == "cms";
  };
  AdmissionController controller(config);

  std::vector<AdmissionController::Ticket> held;
  for (int i = 0; i < 3; ++i) {
    auto ticket = controller.Admit(QueryPriority::kInteractive, nullptr,
                                   "rando-" + std::to_string(i));
    ASSERT_TRUE(ticket.ok());
    held.push_back(std::move(*ticket));
  }
  // Three unknown tenants produced one shared default lane, not three.
  auto stats = controller.lane_stats();
  ASSERT_EQ(stats.size(), 2u);  // "" (default) + "atlas" (configured)
  for (const auto& lane : stats) {
    if (lane.tenant.empty()) {
      EXPECT_EQ(lane.in_flight, 3u);
      EXPECT_EQ(lane.admitted, 3u);
    } else {
      EXPECT_EQ(lane.tenant, "atlas");
    }
  }
  // The ticket releases balance the lane actually charged (the default
  // lane), not the unknown name it was requested under.
  held.clear();
  for (const auto& lane : controller.lane_stats()) {
    EXPECT_EQ(lane.in_flight, 0u) << lane.tenant;
  }
  EXPECT_EQ(controller.in_flight(), 0u);

  // A tenant the gate recognizes still earns its own lane on demand.
  auto cms = controller.Admit(QueryPriority::kInteractive, nullptr, "cms");
  ASSERT_TRUE(cms.ok());
  EXPECT_EQ(controller.lane_stats().size(), 3u);

  // The per-tenant merge budget path resolves through the same gate.
  auto lease = controller.ReserveMergeMemory(100, "rando-99");
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(controller.lane_stats().size(), 3u);
}

// A lane whose weight is below one slot per rotation must still drain
// while a slot sits free: the dispatch pass recharges credit-starved
// backlogged lanes instead of waiting for unrelated traffic to trigger
// the next dispatch.
TEST(TenantAdmissionTest, FractionalWeightLaneDrainsBesideFreeSlot) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queued = 4;
  config.tenant_isolation = true;
  TenantQuota slow;
  slow.tenant = "slow";
  slow.weight = 0.02;  // clamps to kMinWeight = 1/64 of a slot per visit
  config.tenant_quotas.push_back(slow);
  AdmissionController controller(config);

  auto held = controller.Admit(QueryPriority::kInteractive, nullptr, "atlas");
  ASSERT_TRUE(held.ok());

  std::atomic<bool> granted{false};
  // The waiter carries a cancel token only so a regression cannot hang
  // the suite; it is never cancelled unless the deadline below trips.
  CancelToken guard = CancelToken::Cancellable();
  std::thread waiter([&] {
    auto ticket = controller.Admit(QueryPriority::kInteractive, &guard,
                                   "slow");
    if (ticket.ok()) granted.store(true);
  });
  while (controller.queued() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Releasing the only slot is the LAST admission event: the freed slot
  // must reach the fractional-weight waiter within this one dispatch.
  held->Release();
  for (int i = 0; i < 2000 && !granted.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  guard.Cancel();
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(controller.queued(), 0u);
  EXPECT_EQ(controller.in_flight(), 0u);
}

// The background batch lane: admitted strictly from idle capacity (never
// queued), capped below the non-reserved slots, shed the moment any
// foreground demand is waiting, and handing capacity back per release.
TEST(TenantAdmissionTest, BatchLaneUsesIdleCapacityAndYieldsUnderLoad) {
  AdmissionConfig config;
  config.max_concurrent = 4;
  config.max_queued = 4;
  config.interactive_reserve = 2;
  config.batch_slots = 0;  // derive: half of the 2 non-reserved slots = 1
  AdmissionController controller(config);

  // Idle server: one batch slot available, the second is over the cap.
  auto batch1 = controller.Admit(QueryPriority::kBatch, nullptr, "night");
  ASSERT_TRUE(batch1.ok());
  EXPECT_EQ(controller.batch_in_flight(), 1u);
  auto batch2 = controller.Admit(QueryPriority::kBatch, nullptr, "night");
  ASSERT_FALSE(batch2.ok());
  EXPECT_EQ(batch2.status().code(), StatusCode::kResourceExhausted);
  // Sheds are hints, not errors: the message carries a retry-after.
  EXPECT_GT(rpc::RetryAfterHintMs(batch2.status().message()), 0.0);

  // Releasing hands the capacity back immediately.
  batch1->Release();
  EXPECT_EQ(controller.batch_in_flight(), 0u);
  auto batch3 = controller.Admit(QueryPriority::kBatch, nullptr, "night");
  ASSERT_TRUE(batch3.ok());

  // The interactive reserve is untouchable even while batch runs.
  std::vector<AdmissionController::Ticket> interactive;
  for (int i = 0; i < 3; ++i) {
    auto ticket =
        controller.Admit(QueryPriority::kInteractive, nullptr, "atlas");
    ASSERT_TRUE(ticket.ok()) << i;
    interactive.push_back(std::move(*ticket));
  }
  // 3 interactive + 1 batch = max_concurrent; a queued interactive waiter
  // must make the NEXT batch request shed even after batch capacity
  // frees, because foreground demand outranks background fill.
  CancelToken guard = CancelToken::Cancellable();
  std::thread waiter([&] {
    auto ticket =
        controller.Admit(QueryPriority::kInteractive, &guard, "atlas");
    (void)ticket;
  });
  while (controller.queued() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  batch3->Release();
  auto shed_for_foreground =
      controller.Admit(QueryPriority::kBatch, nullptr, "night");
  EXPECT_FALSE(shed_for_foreground.ok());
  guard.Cancel();
  waiter.join();
  for (auto& t : interactive) t.Release();
  EXPECT_EQ(controller.in_flight(), 0u);
  EXPECT_EQ(controller.batch_in_flight(), 0u);
}

// Regression: a cancelled waiter must return any DRR deficit credit its
// grant charged to the lane IMMEDIATELY (before the redispatch it
// triggers), not on a later dispatch pass — under backlog a taxed lane
// would otherwise hand its next slot to the competing lane and drift off
// its weight. The storm below drives both cancellation exits (cancelled
// while queued, and the grant/cancel race) while two uncancelled lanes
// keep the slot contended; afterwards the drain must be complete, the
// accounting exact, and the uncancelled lanes' shares on weight.
TEST(TenantAdmissionTest, CancelUnderBacklogKeepsLaneCreditAndFairness) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queued = 64;
  config.tenant_isolation = true;
  for (const char* tenant : {"atlas", "cms", "storm"}) {
    TenantQuota quota;
    quota.tenant = tenant;
    quota.weight = 1.0;
    config.tenant_quotas.push_back(quota);
  }
  AdmissionController controller(config);

  auto seed = controller.Admit(QueryPriority::kInteractive, nullptr, "seed");
  ASSERT_TRUE(seed.ok());

  // Two steady lanes, 12 waiters each; one storm lane whose 8 waiters all
  // share a token that is cancelled while the backlog drains.
  std::mutex order_mu;
  std::vector<std::string> order;
  std::vector<std::thread> steady;
  for (int i = 0; i < 24; ++i) {
    const std::string tenant = (i % 2 == 0) ? "atlas" : "cms";
    steady.emplace_back([&controller, &order_mu, &order, tenant] {
      auto ticket =
          controller.Admit(QueryPriority::kInteractive, nullptr, tenant);
      EXPECT_TRUE(ticket.ok());
      if (ticket.ok()) {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(tenant);
      }
    });
  }
  CancelToken storm_cancel = CancelToken::Cancellable();
  std::atomic<int> storm_granted{0};
  std::vector<std::thread> storm;
  for (int i = 0; i < 8; ++i) {
    storm.emplace_back([&controller, &storm_cancel, &storm_granted] {
      auto ticket = controller.Admit(QueryPriority::kInteractive,
                                     &storm_cancel, "storm");
      // A storm waiter either loses the race (cancelled) or wins a grant
      // before the cancel lands; both are legal, leaks are not.
      if (ticket.ok()) storm_granted.fetch_add(1);
    });
  }
  while (controller.queued() < 32) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Start the drain, then cancel the storm mid-drain so cancellations
  // interleave with grants instead of all resolving while queued.
  seed->Release();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  storm_cancel.Cancel();
  for (auto& t : storm) t.join();
  for (auto& t : steady) t.join();

  // Complete drain, exact accounting: nothing queued, nothing in flight,
  // every steady waiter admitted exactly once.
  ASSERT_EQ(order.size(), 24u);
  EXPECT_EQ(controller.queued(), 0u);
  EXPECT_EQ(controller.in_flight(), 0u);
  for (const auto& lane : controller.lane_stats()) {
    if (lane.tenant == "atlas" || lane.tenant == "cms") {
      EXPECT_EQ(lane.admitted, 12u) << lane.tenant;
      EXPECT_EQ(lane.queued, 0u) << lane.tenant;
    }
    if (lane.tenant == "storm") {
      EXPECT_EQ(lane.admitted, static_cast<size_t>(storm_granted.load()));
      EXPECT_EQ(lane.queued, 0u);
    }
  }
  // Equal weights: while both steady lanes were backlogged (the first 20
  // grants, with 12 waiters each), neither lane's share may collapse. A
  // leaked credit per storm cancellation would tax whichever lane the
  // grant had charged and skew this window.
  size_t atlas_early = 0;
  const size_t window = std::min<size_t>(order.size(), 20);
  for (size_t i = 0; i < window; ++i) {
    if (order[i] == "atlas") ++atlas_early;
  }
  EXPECT_GE(atlas_early, window / 2 - 4);
  EXPECT_LE(atlas_early, window / 2 + 4);
}

TEST(TenantAdmissionTest, PerTenantMergeMemoryBudget) {
  AdmissionConfig config;
  config.max_concurrent = 4;
  config.tenant_isolation = true;
  TenantQuota cms;
  cms.tenant = "cms";
  cms.merge_memory_budget_bytes = 1000;
  config.tenant_quotas.push_back(cms);
  AdmissionController controller(config);

  auto first = controller.ReserveMergeMemory(600, "cms");
  ASSERT_TRUE(first.ok());
  auto second = controller.ReserveMergeMemory(600, "cms");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("tenant 'cms'"),
            std::string::npos);

  // Another tenant's merges are untouched by cms's budget (no global
  // budget is configured here).
  auto other = controller.ReserveMergeMemory(600, "atlas");
  EXPECT_TRUE(other.ok());

  // The lone-oversized exemption applies per lane too.
  first->Release();
  auto oversized = controller.ReserveMergeMemory(5000, "cms");
  EXPECT_TRUE(oversized.ok());
  auto crowded = controller.ReserveMergeMemory(10, "cms");
  EXPECT_EQ(crowded.status().code(), StatusCode::kResourceExhausted);
}

TEST(TenantAdmissionTest, LegacySingleLaneIgnoresTenants) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  AdmissionController controller(config);  // tenant_isolation off

  auto held = controller.Admit(QueryPriority::kInteractive, nullptr, "atlas");
  ASSERT_TRUE(held.ok());
  auto shed = controller.Admit(QueryPriority::kInteractive, nullptr, "cms");
  ASSERT_FALSE(shed.ok());  // one shared lane: tenants contend together
  EXPECT_EQ(shed.status().message().find("tenant"), std::string::npos);
  EXPECT_TRUE(controller.lane_stats().empty());
}

}  // namespace
}  // namespace griddb::core
