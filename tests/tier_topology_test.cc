// The LHC computing-model hierarchy (paper §2, §4.8): "This can also
// potentially enable us to achieve a hierarchical database hosting
// service in parallel with the tiered topology of the LHC Computing
// Model."
//
// Three JClarens servers at Tier-0 (CERN), Tier-1 and Tier-2 host
// disjoint databases; data "flows down" via view materialization; queries
// issued at the edge are resolved via RLS across tiers, including the
// depth-2 case where the Tier-2 server's query triggers forwarding that
// itself fans out.
#include <gtest/gtest.h>

#include "griddb/core/jclarens_server.h"

namespace griddb::core {
namespace {

using storage::Value;

class TierTopologyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* h : {"tier0", "tier1", "tier2", "rls-host", "user"}) {
      network_.AddHost(h);
    }
    // Links degrade down the hierarchy: T0-T1 fast LAN, T1-T2 WAN-ish.
    network_.SetDefaultLink(net::LinkSpec::Lan100Mbps());
    transport_ = std::make_unique<rpc::Transport>(&network_,
                                                  net::ServiceCosts::Default());
    (void)network_.SetLink("tier1", "tier2", net::LinkSpec::Wan());
    (void)network_.SetLink("tier0", "tier2", net::LinkSpec::Wan());
    rls_ = std::make_unique<rls::RlsServer>("rls://rls-host:39281/rls",
                                            transport_.get());

    // Tier-0: master conditions data (Oracle).
    t0_db_ = std::make_unique<engine::Database>("t0_cond",
                                                sql::Vendor::kOracle);
    ASSERT_TRUE(t0_db_
                    ->Execute("CREATE TABLE MASTER_RUNS (RUN_ID NUMBER(19) "
                              "PRIMARY KEY, DETECTOR VARCHAR2(16), "
                              "YEAR NUMBER(19))")
                    .ok());
    ASSERT_TRUE(t0_db_
                    ->Execute("INSERT INTO MASTER_RUNS (RUN_ID, DETECTOR, "
                              "YEAR) VALUES (1, 'ECAL', 2005), "
                              "(2, 'HCAL', 2005), (3, 'TRACKER', 2004)")
                    .ok());

    // Tier-1: reconstructed event summaries (MySQL).
    t1_db_ = std::make_unique<engine::Database>("t1_events",
                                                sql::Vendor::kMySql);
    ASSERT_TRUE(t1_db_
                    ->Execute("CREATE TABLE RECO_EVENTS (EVENT_ID INT "
                              "PRIMARY KEY, RUN_ID INT, QUALITY DOUBLE)")
                    .ok());
    ASSERT_TRUE(t1_db_
                    ->Execute("INSERT INTO RECO_EVENTS (EVENT_ID, RUN_ID, "
                              "QUALITY) VALUES (10, 1, 0.9), (11, 1, 0.4), "
                              "(12, 2, 0.8), (13, 3, 0.95)")
                    .ok());

    // Tier-2: the physicist's local skim (SQLite).
    t2_db_ = std::make_unique<engine::Database>("t2_skim",
                                                sql::Vendor::kSqlite);
    ASSERT_TRUE(
        t2_db_->Execute("CREATE TABLE MY_SELECTION (EVENT_ID INTEGER "
                        "PRIMARY KEY, WEIGHT REAL)")
            .ok());
    ASSERT_TRUE(t2_db_
                    ->Execute("INSERT INTO MY_SELECTION (EVENT_ID, WEIGHT) "
                              "VALUES (10, 1.5), (12, 0.7), (13, 1.1)")
                    .ok());

    ASSERT_TRUE(
        catalog_.Add({"oracle://tier0/t0_cond", t0_db_.get(), "tier0", "", ""})
            .ok());
    ASSERT_TRUE(
        catalog_.Add({"mysql://tier1/t1_events", t1_db_.get(), "tier1", "", ""})
            .ok());
    ASSERT_TRUE(
        catalog_.Add({"sqlite://tier2/t2_skim", t2_db_.get(), "tier2", "", ""})
            .ok());

    auto make_server = [&](const char* name, const char* host) {
      DataAccessConfig config;
      config.server_name = name;
      config.host = host;
      config.server_url = std::string("clarens://") + host + ":8080/clarens";
      config.rls_url = "rls://rls-host:39281/rls";
      return std::make_unique<JClarensServer>(config, &catalog_,
                                              transport_.get());
    };
    t0_ = make_server("jc-tier0", "tier0");
    t1_ = make_server("jc-tier1", "tier1");
    t2_ = make_server("jc-tier2", "tier2");
    ASSERT_TRUE(
        t0_->service().RegisterLiveDatabase("oracle://tier0/t0_cond", "").ok());
    ASSERT_TRUE(
        t1_->service().RegisterLiveDatabase("mysql://tier1/t1_events", "").ok());
    ASSERT_TRUE(
        t2_->service().RegisterLiveDatabase("sqlite://tier2/t2_skim", "").ok());
  }

  net::Network network_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<rls::RlsServer> rls_;
  std::unique_ptr<engine::Database> t0_db_, t1_db_, t2_db_;
  ral::DatabaseCatalog catalog_;
  std::unique_ptr<JClarensServer> t0_, t1_, t2_;
};

TEST_F(TierTopologyFixture, EdgeQuerySpansAllThreeTiers) {
  // Issued at Tier-2, touching tables on every tier.
  QueryStats stats;
  auto rs = t2_->service().Query(
      "SELECT s.event_id, s.weight, e.quality, r.detector "
      "FROM my_selection s "
      "JOIN reco_events e ON s.event_id = e.event_id "
      "JOIN master_runs r ON e.run_id = r.run_id "
      "ORDER BY s.event_id",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->rows[0][3].AsStringStrict(), "ECAL");
  EXPECT_EQ(rs->rows[2][3].AsStringStrict(), "TRACKER");
  EXPECT_TRUE(stats.used_rls);
  EXPECT_EQ(stats.servers_contacted, 3u);  // T2 + T1 + T0
}

TEST_F(TierTopologyFixture, WholeForwardingUpTheHierarchy) {
  // A Tier-2 query over Tier-0 data only: forwarded wholesale to Tier-0.
  QueryStats stats;
  auto rs = t2_->service().Query(
      "SELECT detector FROM master_runs WHERE year = 2005 ORDER BY detector",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_EQ(stats.servers_contacted, 2u);
  EXPECT_TRUE(stats.used_rls);
}

TEST_F(TierTopologyFixture, WanLinksMakeEdgeQueriesSlower) {
  // The same Tier-0-only query from Tier-1 (LAN to T0) vs Tier-2 (WAN).
  QueryStats from_t1, from_t2;
  ASSERT_TRUE(t1_->service()
                  .Query("SELECT detector FROM master_runs", &from_t1)
                  .ok());
  ASSERT_TRUE(t2_->service()
                  .Query("SELECT detector FROM master_runs", &from_t2)
                  .ok());
  EXPECT_GT(from_t2.simulated_ms, from_t1.simulated_ms);
}

TEST_F(TierTopologyFixture, MaterializationPullsDataDownTheTiers) {
  // Tier-2 materializes the events it cares about locally (the paper's
  // mart philosophy), after which the same join needs one fewer tier.
  auto event_copy = t1_db_->Execute(
      "SELECT EVENT_ID, RUN_ID, QUALITY FROM RECO_EVENTS");
  ASSERT_TRUE(event_copy.ok());
  ASSERT_TRUE(t2_db_
                  ->Execute("CREATE TABLE reco_cache (event_id INTEGER, "
                            "run_id INTEGER, quality REAL)")
                  .ok());
  ASSERT_TRUE(
      t2_db_->InsertRows("reco_cache", std::move(event_copy->rows)).ok());
  // Re-register so the new table is published (plug-in style refresh).
  ASSERT_TRUE(t2_->service().UnregisterDatabase("t2_skim").ok());
  ASSERT_TRUE(
      t2_->service().RegisterLiveDatabase("sqlite://tier2/t2_skim", "").ok());

  QueryStats stats;
  auto rs = t2_->service().Query(
      "SELECT s.event_id, e.quality FROM my_selection s "
      "JOIN reco_cache e ON s.event_id = e.event_id ORDER BY s.event_id",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 3u);
  EXPECT_FALSE(stats.used_rls);  // fully local now
  EXPECT_EQ(stats.servers_contacted, 1u);
}

}  // namespace
}  // namespace griddb::core
