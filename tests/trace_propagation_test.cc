// Distributed-trace propagation through the XML-RPC wire: a federated
// query forwarded via the RLS to a remote JClarens server must continue
// the caller's trace (remote child spans ship back and stitch into one
// connected tree), injected faults must not corrupt or duplicate spans,
// and untraced traffic must stay byte-identical on the wire.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "griddb/core/jclarens_server.h"
#include "griddb/net/fault.h"
#include "griddb/obs/metrics.h"

namespace griddb::core {
namespace {

constexpr char kRlsUrl[] = "rls://rls-host:39281/rls";
constexpr char kServerAUrl[] = "clarens://server-a:8080/clarens";
constexpr char kServerBUrl[] = "clarens://server-b:8080/clarens";

// Two JClarens servers (each owning one database plus one replica of a
// shared table) behind a central RLS, and a query-only coordinator on
// the client host — the fault_tolerance_test topology with tracing on.
struct TracePropagationFixture : public ::testing::Test {
  TracePropagationFixture()
      : transport(&network, net::ServiceCosts::Default()),
        db_a("db_a", sql::Vendor::kMySql),
        db_b("db_b", sql::Vendor::kMySql),
        db_ra("db_ra", sql::Vendor::kMySql),
        db_rb("db_rb", sql::Vendor::kMySql) {
    for (const char* h : {"server-a", "server-b", "rls-host", "client"}) {
      network.AddHost(h);
    }
    rls = std::make_unique<rls::RlsServer>(kRlsUrl, &transport);

    EXPECT_TRUE(db_a.Execute("CREATE TABLE EVENTS_A (ID INT PRIMARY KEY, "
                             "V DOUBLE)")
                    .ok());
    for (const char* row : {"(1, 1.5)", "(2, 2.5)", "(3, 3.5)"}) {
      EXPECT_TRUE(db_a.Execute(std::string("INSERT INTO EVENTS_A (ID, V) "
                                           "VALUES ") +
                               row)
                      .ok());
    }
    EXPECT_TRUE(db_b.Execute("CREATE TABLE EVENTS_B (ID INT PRIMARY KEY, "
                             "V DOUBLE)")
                    .ok());
    for (const char* row : {"(1, 10.5)", "(2, 20.5)"}) {
      EXPECT_TRUE(db_b.Execute(std::string("INSERT INTO EVENTS_B (ID, V) "
                                           "VALUES ") +
                               row)
                      .ok());
    }
    for (engine::Database* db : {&db_ra, &db_rb}) {
      EXPECT_TRUE(db->Execute("CREATE TABLE SHARED_EVENTS (ID INT PRIMARY "
                              "KEY, V DOUBLE)")
                      .ok());
      for (const char* row : {"(1, 0.5)", "(2, 1.5)", "(3, 2.5)"}) {
        EXPECT_TRUE(db->Execute(std::string("INSERT INTO SHARED_EVENTS (ID, "
                                            "V) VALUES ") +
                                row)
                        .ok());
      }
    }

    EXPECT_TRUE(
        catalog.Add({"mysql://server-a/db_a", &db_a, "server-a", "", ""}).ok());
    EXPECT_TRUE(
        catalog.Add({"mysql://server-b/db_b", &db_b, "server-b", "", ""}).ok());
    EXPECT_TRUE(
        catalog.Add({"mysql://server-a/db_ra", &db_ra, "server-a", "", ""})
            .ok());
    EXPECT_TRUE(
        catalog.Add({"mysql://server-b/db_rb", &db_rb, "server-b", "", ""})
            .ok());

    DataAccessConfig config_a;
    config_a.server_name = "jclarens-a";
    config_a.host = "server-a";
    config_a.server_url = kServerAUrl;
    config_a.rls_url = kRlsUrl;
    config_a.tracing = true;
    server_a = std::make_unique<JClarensServer>(config_a, &catalog, &transport);
    EXPECT_TRUE(
        server_a->service().RegisterLiveDatabase("mysql://server-a/db_a", "")
            .ok());
    EXPECT_TRUE(
        server_a->service().RegisterLiveDatabase("mysql://server-a/db_ra", "")
            .ok());

    DataAccessConfig config_b;
    config_b.server_name = "jclarens-b";
    config_b.host = "server-b";
    config_b.server_url = kServerBUrl;
    config_b.rls_url = kRlsUrl;
    config_b.tracing = true;
    server_b = std::make_unique<JClarensServer>(config_b, &catalog, &transport);
    EXPECT_TRUE(
        server_b->service().RegisterLiveDatabase("mysql://server-b/db_b", "")
            .ok());
    EXPECT_TRUE(
        server_b->service().RegisterLiveDatabase("mysql://server-b/db_rb", "")
            .ok());
  }

  /// Query-only traced coordinator on the client host: every table
  /// resolves through the RLS and is fetched by forwarding.
  DataAccessConfig CoordinatorConfig() const {
    DataAccessConfig config;
    config.server_name = "coordinator";
    config.host = "client";
    config.rls_url = kRlsUrl;
    config.tracing = true;
    config.trace_seed = 0xC0FFEE;
    return config;
  }

  /// True when every span's parent is either 0 (a root) or another span
  /// in the same set — i.e. the trace forms connected trees.
  static void ExpectConnected(const std::vector<obs::SpanRecord>& spans) {
    std::set<uint64_t> ids;
    for (const obs::SpanRecord& span : spans) ids.insert(span.span_id);
    EXPECT_EQ(ids.size(), spans.size()) << "span ids must be unique";
    for (const obs::SpanRecord& span : spans) {
      if (span.parent_span_id == 0) continue;
      EXPECT_TRUE(ids.count(span.parent_span_id))
          << "dangling parent for span " << span.name;
    }
  }

  static const obs::SpanRecord* Find(const std::vector<obs::SpanRecord>& spans,
                                     const std::string& name) {
    for (const obs::SpanRecord& span : spans) {
      if (span.name == name) return &span;
    }
    return nullptr;
  }

  static const obs::SpanRecord* FindById(
      const std::vector<obs::SpanRecord>& spans, uint64_t span_id) {
    for (const obs::SpanRecord& span : spans) {
      if (span.span_id == span_id) return &span;
    }
    return nullptr;
  }

  net::Network network;
  rpc::Transport transport;
  engine::Database db_a;
  engine::Database db_b;
  engine::Database db_ra;
  engine::Database db_rb;
  ral::DatabaseCatalog catalog;
  std::unique_ptr<rls::RlsServer> rls;
  std::unique_ptr<JClarensServer> server_a;
  std::unique_ptr<JClarensServer> server_b;
};

TEST_F(TracePropagationFixture, ForwardedQueryYieldsOneConnectedTrace) {
  // Drop the spans the servers recorded while publishing their tables to
  // the RLS during setup, so the post-query count isolates this query.
  server_a->service().tracer().Clear();
  server_b->service().tracer().Clear();

  DataAccessService coordinator(CoordinatorConfig(), &catalog, &transport);
  QueryStats stats;
  auto rs = coordinator.Query("SELECT id, v FROM events_a", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 3u);

  std::vector<obs::SpanRecord> spans = coordinator.tracer().Finished();
  ASSERT_FALSE(spans.empty());
  // One trace with one root — the coordinator's own query span (the
  // remote's "dataaccess.query" is imported too, but it has a parent).
  const obs::SpanRecord* root = nullptr;
  for (const obs::SpanRecord& span : spans) {
    if (span.parent_span_id == 0) {
      EXPECT_EQ(root, nullptr) << "more than one root span";
      root = &span;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "dataaccess.query");
  for (const obs::SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, root->trace_id) << span.name;
  }
  ExpectConnected(spans);

  // The remote subtree came back over the wire: the handler span parents
  // under the forward's rpc.call and carries the producing host; the
  // remote service's own spans nest beneath it.
  const obs::SpanRecord* remote = Find(spans, "dataaccess.query.remote");
  ASSERT_NE(remote, nullptr) << coordinator.tracer().FormatTrace(
      root->trace_id);
  EXPECT_EQ(remote->host, "server-a");
  const obs::SpanRecord* call = FindById(spans, remote->parent_span_id);
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->name, "rpc.call");
  const obs::SpanRecord* forward = FindById(spans, call->parent_span_id);
  ASSERT_NE(forward, nullptr);
  EXPECT_EQ(forward->name, "dataaccess.forward");
  EXPECT_EQ(forward->parent_span_id, root->span_id);
  // The coordinator opens its own (failing) unity.plan before consulting
  // the RLS, so look specifically for the remote server's planning span.
  const obs::SpanRecord* remote_plan = nullptr;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "unity.plan" && span.host == "server-a") {
      remote_plan = &span;
    }
  }
  ASSERT_NE(remote_plan, nullptr);

  // The server shipped (not kept) the subtree — nothing remains there.
  EXPECT_EQ(server_a->service().tracer().finished_count(), 0u);

  // The rendered tree shows the cross-host nesting.
  std::string tree = coordinator.tracer().FormatTrace(root->trace_id);
  EXPECT_NE(tree.find("dataaccess.query.remote @server-a"),
            std::string::npos)
      << tree;
}

TEST_F(TracePropagationFixture, FaultyNetworkDoesNotCorruptOrLeakSpans) {
  // Drops and delays on every link; retries rescue the queries. Spans
  // must survive with unique ids and resolvable parents — a response
  // dropped after the server handled it must not produce duplicate or
  // stale remote spans on the next attempt.
  auto plan = std::make_shared<net::FaultPlan>(17);
  net::LinkFaultSpec faults;
  faults.drop_probability = 0.15;
  faults.delay_probability = 0.3;
  faults.delay_ms = 20.0;
  plan->SetDefaultLinkFaults(faults);
  network.InstallFaultPlan(plan);

  DataAccessConfig config = CoordinatorConfig();
  config.retry_policy = rpc::RetryPolicy::Default();
  DataAccessService coordinator(config, &catalog, &transport);

  size_t ok_queries = 0, retries = 0;
  for (int i = 0; i < 8; ++i) {
    QueryStats stats;
    auto rs = coordinator.Query("SELECT id, v FROM events_a", &stats);
    if (rs.ok()) {
      ++ok_queries;
      EXPECT_EQ(rs->num_rows(), 3u);
    }
    retries += stats.retries;
  }
  EXPECT_GT(ok_queries, 0u);

  std::vector<obs::SpanRecord> spans = coordinator.tracer().Finished();
  ASSERT_FALSE(spans.empty());
  ExpectConnected(spans);
  // Remote spans that made it back stay inside their own trace: group by
  // trace id and check each group has exactly one root.
  std::map<uint64_t, size_t> roots_per_trace;
  for (const obs::SpanRecord& span : spans) {
    if (span.parent_span_id == 0) ++roots_per_trace[span.trace_id];
  }
  for (const auto& [trace_id, roots] : roots_per_trace) {
    EXPECT_EQ(roots, 1u) << "trace " << trace_id;
  }
}

TEST_F(TracePropagationFixture, UntracedCoordinatorProducesNoSpans) {
  // Traced servers + untraced client: no trace context rides the request,
  // so the handler opens no remote span and the response carries no
  // "spans" member to import. The request wire bytes carry no
  // <traceContext> element (fault-free output stays byte-identical).
  DataAccessConfig config = CoordinatorConfig();
  config.tracing = false;
  DataAccessService coordinator(config, &catalog, &transport);
  QueryStats stats;
  auto rs = coordinator.Query("SELECT id, v FROM events_a", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(coordinator.tracer().finished_count(), 0u);
}

TEST_F(TracePropagationFixture, TraceContextEncodesSparsely) {
  rpc::RpcRequest request;
  request.method = "dataaccess.query";
  request.params.emplace_back(std::string("SELECT 1"));
  const std::string untraced = rpc::EncodeRequest(request);
  EXPECT_EQ(untraced.find("traceContext"), std::string::npos);

  request.trace_id = 0xabc;
  request.parent_span_id = 0xdef;
  const std::string traced = rpc::EncodeRequest(request);
  EXPECT_NE(traced.find("traceContext"), std::string::npos);
  auto decoded = rpc::DecodeRequest(traced);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->trace_id, 0xabcu);
  EXPECT_EQ(decoded->parent_span_id, 0xdefu);

  auto round = rpc::DecodeRequest(untraced);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->trace_id, 0u);
  EXPECT_EQ(round->parent_span_id, 0u);
}

TEST_F(TracePropagationFixture, SlowQueryThresholdCountsAndDumps) {
  obs::Counter* slow =
      obs::MetricsRegistry::Default().GetCounter("griddb.core.slow_queries");
  ASSERT_NE(slow, nullptr);
  const uint64_t before = slow->value();

  DataAccessConfig config = CoordinatorConfig();
  config.slow_query_ms = 0.001;  // every remote query exceeds this
  DataAccessService coordinator(config, &catalog, &transport);
  QueryStats stats;
  auto rs = coordinator.Query("SELECT id, v FROM events_a", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_GT(slow->value(), before);
}

TEST_F(TracePropagationFixture, MetricsRpcServesSnapshot) {
  // Drive one traced query, then fetch the metrics endpoint like an
  // operator would and check the counters that must have moved.
  DataAccessService coordinator(CoordinatorConfig(), &catalog, &transport);
  QueryStats stats;
  ASSERT_TRUE(coordinator.Query("SELECT id, v FROM events_a", &stats).ok());

  rpc::RpcClient client(&transport, "client", kServerAUrl);
  net::Cost cost;
  auto response = client.Call("dataaccess.metrics", {}, &cost);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto counters = response->Member("counters");
  ASSERT_TRUE(counters.ok());
  auto queries = (*counters)->Member("griddb.core.queries");
  ASSERT_TRUE(queries.ok());
  auto value = (*queries)->AsInt();
  ASSERT_TRUE(value.ok());
  EXPECT_GT(*value, 0);
  auto histograms = response->Member("histograms");
  ASSERT_TRUE(histograms.ok());
  EXPECT_TRUE((*histograms)->Member("griddb.core.query_ms").ok());
}

}  // namespace
}  // namespace griddb::core
