// Robustness: hostile and randomized inputs must produce a Status, never
// a crash, hang or assertion — the web-service interface is exposed to
// arbitrary clients ("all kinds of (simple and) complex clients", §1).
#include <gtest/gtest.h>

#include "griddb/engine/database.h"
#include "griddb/rpc/xmlrpc_value.h"
#include "griddb/sql/parser.h"
#include "griddb/unity/xspec.h"
#include "griddb/util/rng.h"
#include "griddb/xml/xml.h"

namespace griddb {
namespace {

// ---------- SQL parser under token soup ----------

TEST(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  const char* fragments[] = {
      "SELECT", "FROM",  "WHERE", "JOIN",  "ON",    "GROUP",  "BY",
      "ORDER",  "LIMIT", "AND",   "OR",    "NOT",   "IN",     "BETWEEN",
      "LIKE",   "IS",    "NULL",  "CASE",  "WHEN",  "THEN",   "END",
      "t",      "a",     "b",     "42",    "3.5",   "'str'",  "(",
      ")",      ",",     ".",     "*",     "=",     "<>",     "<",
      ">",      "+",     "-",     "/",     "%",     "||",     ";",
      "\"q\"",  "`q`",   "[q]",   "AS",    "COUNT", "DISTINCT"};
  Rng rng(4242);
  const sql::Dialect& dialect = sql::Dialect::For(sql::Vendor::kSqlite);
  int parsed_ok = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::string soup;
    int length = static_cast<int>(rng.UniformInt(1, 24));
    for (int i = 0; i < length; ++i) {
      soup += fragments[rng.UniformInt(
          0, static_cast<int64_t>(std::size(fragments)) - 1)];
      soup += ' ';
    }
    auto result = sql::ParseStatement(soup, dialect);
    if (result.ok()) ++parsed_ok;  // rare but legitimate
  }
  // The point is reaching this line; a handful of soups happen to be SQL.
  SUCCEED() << parsed_ok << " random soups were valid SQL";
}

TEST(ParserRobustnessTest, PathologicalInputs) {
  const sql::Dialect& dialect = sql::Dialect::For(sql::Vendor::kSqlite);
  // Deep parenthesis nesting parses (recursion bounded by input length).
  std::string deep = "SELECT ";
  for (int i = 0; i < 200; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < 200; ++i) deep += ")";
  deep += " FROM t";
  EXPECT_TRUE(sql::ParseSelect(deep, dialect).ok());

  for (const char* evil : {
           "", ";", ";;;", "SELECT", "SELECT FROM", "SELECT * FROM",
           "SELECT * FROM t WHERE", "SELECT * FROM t GROUP BY",
           "SELECT * FROM t ORDER", "INSERT INTO", "CREATE TABLE t",
           "CREATE TABLE t ()", "SELECT (((", "SELECT ) FROM t",
           "SELECT 'unterminated FROM t", "SELECT \x01\x02 FROM t",
           "SELECT a FROM t WHERE a = ", "SELECT a b c d e FROM t",
       }) {
    auto result = sql::ParseStatement(evil, dialect);
    EXPECT_FALSE(result.ok()) << "accepted: " << evil;
  }
}

TEST(ParserRobustnessTest, RandomBytesNeverCrashLexer) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    int length = static_cast<int>(rng.UniformInt(0, 64));
    for (int i = 0; i < length; ++i) {
      bytes += static_cast<char>(rng.UniformInt(1, 255));
    }
    (void)sql::Tokenize(bytes);  // must return, ok or error
  }
  SUCCEED();
}

// ---------- XML parser under random bytes ----------

TEST(XmlRobustnessTest, RandomBytesNeverCrash) {
  Rng rng(13);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    int length = static_cast<int>(rng.UniformInt(0, 96));
    for (int i = 0; i < length; ++i) {
      // Bias toward XML-ish characters to reach deeper parser states.
      int c = static_cast<int>(rng.UniformInt(0, 9));
      switch (c) {
        case 0: bytes += '<'; break;
        case 1: bytes += '>'; break;
        case 2: bytes += '/'; break;
        case 3: bytes += '"'; break;
        case 4: bytes += '&'; break;
        case 5: bytes += '='; break;
        default: bytes += static_cast<char>('a' + rng.UniformInt(0, 25));
      }
    }
    (void)xml::Parse(bytes);
  }
  SUCCEED();
}

TEST(XmlRobustnessTest, DeepNestingParses) {
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += "<n>";
  deep += "x";
  for (int i = 0; i < 300; ++i) deep += "</n>";
  auto result = xml::Parse(deep);
  EXPECT_TRUE(result.ok());
}

// ---------- XML-RPC decoding of hostile documents ----------

TEST(RpcRobustnessTest, HostileRpcDocumentsRejectedCleanly) {
  for (const char* evil : {
           "<methodResponse/>",
           "<methodResponse><params/></methodResponse>",
           "<methodResponse><params><param/></params></methodResponse>",
           "<methodResponse><fault/></methodResponse>",
           "<methodCall/>",
           "<methodCall><methodName></methodName></methodCall>",
           "<wrong/>",
           "<methodCall><methodName>x</methodName><params><param>"
           "<value><i4>notanint</i4></value></param></params></methodCall>",
           "<methodCall><methodName>x</methodName><params><param>"
           "<value><array/></value></param></params></methodCall>",
           "<methodCall><methodName>x</methodName><params><param>"
           "<value><struct><member/></struct></value></param></params>"
           "</methodCall>",
       }) {
    // One of request/response decoding must reject it; neither crashes.
    auto request = rpc::DecodeRequest(evil);
    auto response = rpc::DecodeResponse(evil);
    EXPECT_TRUE(!request.ok() || !response.ok()) << evil;
  }
}

// ---------- XSpec documents ----------

TEST(XSpecRobustnessTest, HostileXSpecsRejected) {
  for (const char* evil : {
           "<xspec/>",  // missing database attribute
           "<xspec database='d'><table/></xspec>",  // table without name
           "<xspec database='d'><table name='t'>"
           "<column type='integer'/></table></xspec>",  // column w/o name
           "<xspec database='d'><table name='t'>"
           "<column name='c' type='quux'/></table></xspec>",  // bad type
           "<upperXSpec><database/></upperXSpec>",  // entry w/o name/url
       }) {
    bool lower_ok = unity::LowerXSpec::FromXml(evil).ok();
    bool upper_ok = unity::UpperXSpec::FromXml(evil).ok();
    EXPECT_FALSE(lower_ok && upper_ok) << evil;
    if (std::string(evil).find("upperXSpec") == std::string::npos) {
      EXPECT_FALSE(lower_ok) << evil;
    } else {
      EXPECT_FALSE(upper_ok) << evil;
    }
  }
}

// ---------- engine under adversarial statements ----------

TEST(EngineRobustnessTest, AdversarialStatementsReturnStatus) {
  engine::Database db("d", sql::Vendor::kSqlite);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, s TEXT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t (a, s) VALUES (1, 'x')").ok());
  for (const char* evil : {
           "SELECT a FROM t WHERE s > 5 AND UPPER(a) = 1",  // type mix is OK
           "SELECT SUM(s) FROM t",               // SUM over strings
           "SELECT COUNT(*) FROM t GROUP BY nonexistent",
           "SELECT a, COUNT(*) FROM t",          // mixed agg/non-agg: lenient
           "INSERT INTO t (a, s) VALUES (UPPER('x'))",  // arity mismatch
           "UPDATE t SET nonexistent = 1",
           "DELETE FROM nonexistent",
           "SELECT ghost.a FROM t",
       }) {
    auto result = db.Execute(evil);
    (void)result;  // ok or clean error; must not crash
  }
  // The table is still intact and queryable afterwards.
  auto rs = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt64Strict(), 1);
}

}  // namespace
}  // namespace griddb
