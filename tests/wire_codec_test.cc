// Negotiated binary wire protocol (rpc/wire.h, DESIGN.md §16): codec
// round trips over randomized typed/null/ragged batches, the frame
// digest catching injected corruption (and RetryPolicy recovering),
// the capability handshake falling back to XML-RPC in every
// non-negotiated cell, chunked streaming reassembly, and the guard
// that fault-free XML-RPC responses stay byte-identical to the
// pre-binary tree-writer encoder.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "griddb/core/jclarens_server.h"
#include "griddb/net/fault.h"
#include "griddb/obs/metrics.h"
#include "griddb/rpc/server.h"
#include "griddb/rpc/wire.h"
#include "griddb/util/rng.h"
#include "griddb/xml/xml.h"

namespace griddb::rpc {
namespace {

using storage::DataType;
using storage::ResultSet;
using storage::Row;
using storage::Value;

// ---------- capability strings ----------

TEST(WireCapsTest, StringRoundTrip) {
  EXPECT_EQ(wire::CapsToString(0), "");
  EXPECT_EQ(wire::CapsToString(wire::kCapBinary), "binary");
  EXPECT_EQ(wire::CapsToString(wire::kAllCaps), "binary,lz4,stream");
  for (uint32_t caps : {0u, uint32_t{wire::kCapBinary},
                        wire::kCapBinary | wire::kCapStream, wire::kAllCaps}) {
    EXPECT_EQ(wire::CapsFromString(wire::CapsToString(caps)), caps);
  }
}

TEST(WireCapsTest, UnknownWordsIgnoredForForwardCompat) {
  EXPECT_EQ(wire::CapsFromString("binary,zstd9,telepathy,stream"),
            wire::kCapBinary | wire::kCapStream);
  // Sub-capabilities mean nothing without the binary framing itself.
  EXPECT_EQ(wire::CapsFromString("lz4,stream"), 0u);
  EXPECT_EQ(wire::CapsFromString("telepathy"), 0u);
  EXPECT_EQ(wire::CapsFromString(""), 0u);
}

TEST(WireCapsTest, EnvToggle) {
  ::unsetenv("GRIDDB_WIRE");
  EXPECT_EQ(wire::EnvWirePreference(), 0u);
  ::setenv("GRIDDB_WIRE", "xmlrpc", 1);
  EXPECT_EQ(wire::EnvWirePreference(), 0u);
  ::setenv("GRIDDB_WIRE", "binary", 1);
  EXPECT_EQ(wire::EnvWirePreference(), wire::kAllCaps);
  ::unsetenv("GRIDDB_WIRE");
}

// ---------- block compression ----------

TEST(BlockCompressTest, RoundTripsCompressibleAndRandomInputs) {
  Rng rng(11);
  std::vector<std::string> inputs;
  inputs.push_back("");
  inputs.push_back("x");
  inputs.push_back(std::string(4096, 'a'));
  std::string repeated;
  for (int i = 0; i < 200; ++i) repeated += "event_id,e_total,pt;";
  inputs.push_back(repeated);
  for (size_t trial = 0; trial < 20; ++trial) {
    std::string random_bytes;
    size_t n = static_cast<size_t>(rng.UniformInt(0, 2000));
    random_bytes.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Mix a skewed alphabet (match-friendly) with raw bytes.
      random_bytes.push_back(trial % 2 == 0
                                 ? static_cast<char>(rng.UniformInt(0, 255))
                                 : static_cast<char>('a' + rng.UniformInt(0, 3)));
    }
    inputs.push_back(std::move(random_bytes));
  }

  for (const std::string& in : inputs) {
    std::string packed;
    wire::BlockCompress(in, &packed);
    auto out = wire::BlockDecompress(packed, in.size());
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(*out, in);
  }
}

TEST(BlockCompressTest, ShrinksRedundantPayloads) {
  std::string in;
  for (int i = 0; i < 500; ++i) in += "the quick brown fox ";
  std::string packed;
  wire::BlockCompress(in, &packed);
  EXPECT_LT(packed.size(), in.size() / 4);
}

TEST(BlockCompressTest, DamagedInputFailsInsteadOfOverreading) {
  std::string in;
  for (int i = 0; i < 100; ++i) in += "abcdabcdabcd";
  std::string packed;
  wire::BlockCompress(in, &packed);
  ASSERT_FALSE(packed.empty());

  // Truncation, wrong raw_len, and flipped bytes must all fail cleanly.
  auto truncated = wire::BlockDecompress(
      std::string_view(packed).substr(0, packed.size() / 2), in.size());
  EXPECT_FALSE(truncated.ok());
  auto short_raw = wire::BlockDecompress(packed, in.size() - 1);
  EXPECT_FALSE(short_raw.ok());
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::string damaged = packed;
    damaged[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(damaged.size()) - 1))] ^= '\x5a';
    auto out = wire::BlockDecompress(damaged, in.size());
    if (out.ok()) EXPECT_NE(*out, in) << "damage must not masquerade";
    // (Either a clean failure or a different payload; the frame digest
    // above this layer is what guarantees detection end to end.)
  }
}

// ---------- frames ----------

TEST(FrameTest, RoundTripAndDigestCheck) {
  std::string payload;
  for (int i = 0; i < 64; ++i) payload += "columnar payload ";
  std::string raw;
  wire::AppendFrame(wire::FrameKind::kStreamChunk, 3, payload, true, &raw);
  ASSERT_TRUE(wire::LooksBinary(raw));

  auto spans = wire::SplitFrames(raw);
  ASSERT_TRUE(spans.ok());
  ASSERT_EQ(spans->size(), 1u);
  auto frame = wire::ParseFrame(
      std::string_view(raw).substr((*spans)[0].first, (*spans)[0].second));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->kind, wire::FrameKind::kStreamChunk);
  EXPECT_EQ(frame->seq, 3u);
  EXPECT_TRUE(frame->compressed);  // repetitive payload compresses
  EXPECT_EQ(frame->payload, payload);
}

TEST(FrameTest, EveryFlippedByteIsDetected) {
  std::string payload = "short uncompressible \x01\x02\x03 payload";
  std::string raw;
  wire::AppendFrame(wire::FrameKind::kWhole, 0, payload, false, &raw);
  for (size_t pos = 0; pos < raw.size(); ++pos) {
    std::string damaged = raw;
    damaged[pos] ^= '\xa5';
    auto frame = wire::ParseFrame(damaged);
    EXPECT_FALSE(frame.ok()) << "flip at byte " << pos << " undetected";
    if (!frame.ok()) {
      EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(FrameTest, SplitFramesRejectsTruncationAndTrailingGarbage) {
  std::string raw;
  wire::AppendFrame(wire::FrameKind::kWhole, 0, "abc", false, &raw);
  EXPECT_TRUE(wire::SplitFrames(raw).ok());
  EXPECT_FALSE(wire::SplitFrames("").ok());
  EXPECT_FALSE(
      wire::SplitFrames(std::string_view(raw).substr(0, raw.size() - 1)).ok());
  EXPECT_FALSE(wire::SplitFrames(raw + "x").ok());
}

// ---------- TLV value codec ----------

XmlRpcValue TlvRoundTrip(const XmlRpcValue& value) {
  std::string buf;
  wire::EncodeValue(value, &buf);
  size_t offset = 0;
  auto decoded = wire::DecodeValue(buf, &offset);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(offset, buf.size());
  return decoded.ok() ? *decoded : XmlRpcValue();
}

TEST(TlvCodecTest, ScalarsAndNesting) {
  XmlRpcStruct inner;
  inner["count"] = int64_t{-1234567890123};
  inner["ratio"] = 0.125;
  inner["label"] = std::string("nested <xml> & \xc3\xa9 text");
  XmlRpcArray array;
  array.emplace_back(true);
  array.emplace_back(false);
  array.emplace_back();  // nil
  array.emplace_back(std::move(inner));
  XmlRpcValue original((XmlRpcArray(std::move(array))));
  EXPECT_TRUE(TlvRoundTrip(original) == original);
}

ResultSet RandomResultSet(Rng& rng, bool allow_ragged) {
  ResultSet rs;
  size_t num_cols = static_cast<size_t>(rng.UniformInt(1, 6));
  for (size_t c = 0; c < num_cols; ++c) rs.columns.push_back("c" + std::to_string(c));
  // Per-column value kind: 0 int, 1 double, 2 bool, 3 string, 4 mixed.
  std::vector<int> kinds;
  for (size_t c = 0; c < num_cols; ++c) {
    kinds.push_back(static_cast<int>(rng.UniformInt(0, 4)));
  }
  size_t num_rows = static_cast<size_t>(rng.UniformInt(0, 40));
  for (size_t r = 0; r < num_rows; ++r) {
    Row row;
    size_t cells = num_cols;
    if (allow_ragged && rng.NextDouble() < 0.1 && num_cols > 1) {
      cells = static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(num_cols)));
    }
    for (size_t c = 0; c < cells; ++c) {
      if (rng.NextDouble() < 0.2) {
        row.push_back(Value::Null());
        continue;
      }
      int kind = kinds[c] == 4 ? static_cast<int>(rng.UniformInt(0, 3)) : kinds[c];
      switch (kind) {
        case 0: row.push_back(Value(rng.UniformInt(-1'000'000, 1'000'000))); break;
        case 1: row.push_back(Value(rng.Gaussian(0, 100))); break;
        case 2: row.push_back(Value(rng.NextDouble() < 0.5)); break;
        default: {
          std::string s;
          size_t n = static_cast<size_t>(rng.UniformInt(0, 24));
          for (size_t i = 0; i < n; ++i) {
            s.push_back(static_cast<char>(rng.UniformInt(1, 255)));
          }
          row.push_back(Value(std::move(s)));
        }
      }
    }
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

TEST(TlvCodecTest, RandomizedResultSetRoundTrips) {
  Rng rng(2005);
  for (int trial = 0; trial < 60; ++trial) {
    ResultSet rs = RandomResultSet(rng, /*allow_ragged=*/trial % 3 == 0);
    ResultSet expected = rs;
    XmlRpcValue value = ResultSetToRpc(std::move(rs));
    XmlRpcValue decoded = TlvRoundTrip(value);
    auto back = RpcToResultSet(decoded);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->columns, expected.columns) << "trial " << trial;
    ASSERT_EQ(back->rows.size(), expected.rows.size()) << "trial " << trial;
    for (size_t r = 0; r < expected.rows.size(); ++r) {
      EXPECT_EQ(back->rows[r], expected.rows[r]) << "trial " << trial
                                                 << " row " << r;
    }
  }
}

TEST(ColumnarBlockTest, RaggedRowsRefuseTheColumnarLayout) {
  ResultSet rs;
  rs.columns = {"a", "b"};
  rs.rows = {{Value(int64_t{1}), Value(2.0)}, {Value(int64_t{3})}};
  std::string buf;
  Status status = wire::EncodeRowsColumnar(rs, 0, rs.rows.size(), &buf);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ColumnarBlockTest, RandomizedRectangularRoundTrips) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    ResultSet rs = RandomResultSet(rng, /*allow_ragged=*/false);
    std::string buf;
    ASSERT_TRUE(wire::EncodeRowsColumnar(rs, 0, rs.rows.size(), &buf).ok());
    size_t offset = 0;
    std::vector<Row> rows;
    ASSERT_TRUE(
        wire::DecodeRowsColumnar(buf, &offset, rs.columns.size(), &rows).ok());
    EXPECT_EQ(offset, buf.size());
    ASSERT_EQ(rows.size(), rs.rows.size()) << "trial " << trial;
    for (size_t r = 0; r < rows.size(); ++r) {
      EXPECT_EQ(rows[r], rs.rows[r]) << "trial " << trial << " row " << r;
    }
  }
}

// ---------- framed response codec (whole + streamed) ----------

ResultSet WideResultSet(size_t rows) {
  ResultSet rs;
  rs.columns = {"event_id", "detector", "e_total"};
  for (size_t r = 0; r < rows; ++r) {
    rs.rows.push_back({Value(static_cast<int64_t>(r)),
                       r % 7 == 0 ? Value::Null() : Value("ECAL"),
                       Value(0.5 * static_cast<double>(r))});
  }
  return rs;
}

Result<XmlRpcValue> DecodeFramed(const std::string& raw,
                                 std::vector<Row>* streamed_rows,
                                 size_t* chunks) {
  GRIDDB_ASSIGN_OR_RETURN(auto spans, wire::SplitFrames(raw));
  wire::ResponseDecoder decoder;
  std::vector<Row> rows;
  if (chunks != nullptr) *chunks = 0;
  for (const auto& [offset, length] : spans) {
    GRIDDB_ASSIGN_OR_RETURN(
        wire::Frame frame,
        wire::ParseFrame(std::string_view(raw).substr(offset, length)));
    ResultSet chunk;
    bool is_chunk = false;
    GRIDDB_RETURN_IF_ERROR(decoder.Consume(std::move(frame), &chunk, &is_chunk));
    if (is_chunk) {
      if (chunks != nullptr) ++*chunks;
      rows.insert(rows.end(), std::make_move_iterator(chunk.rows.begin()),
                  std::make_move_iterator(chunk.rows.end()));
    }
  }
  if (!decoder.done()) return Corruption("stream ended without trailer");
  if (streamed_rows != nullptr) *streamed_rows = rows;
  return decoder.Finish(/*attach_rows=*/true, std::move(rows));
}

TEST(BinaryResponseTest, WholeFrameRoundTrip) {
  ResultSet rs = WideResultSet(50);
  ResultSet expected = rs;
  XmlRpcStruct out;
  out["rows"] = static_cast<int64_t>(rs.rows.size());
  out["result"] = ResultSetToRpc(std::move(rs));
  XmlRpcValue value(std::move(out));

  // chunk_rows 1024 > 50 rows: a single kWhole frame.
  std::string raw = wire::EncodeBinaryResponse(value, wire::kAllCaps, 1024, 0);
  size_t chunks = 0;
  auto decoded = DecodeFramed(raw, nullptr, &chunks);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(chunks, 0u);
  auto back = RpcToResultSet(*decoded->Member("result").value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows, expected.rows);
  EXPECT_EQ(decoded->Member("rows").value()->AsInt().value(), 50);
}

TEST(BinaryResponseTest, StreamedChunksReassembleInOrder) {
  ResultSet rs = WideResultSet(237);
  ResultSet expected = rs;
  XmlRpcStruct out;
  out["result"] = ResultSetToRpc(std::move(rs));
  XmlRpcValue value(std::move(out));

  std::string raw = wire::EncodeBinaryResponse(value, wire::kAllCaps, 50, 0);
  std::vector<Row> streamed;
  size_t chunks = 0;
  auto decoded = DecodeFramed(raw, &streamed, &chunks);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(chunks, 5u);  // ceil(237 / 50)
  ASSERT_EQ(streamed.size(), expected.rows.size());
  auto back = RpcToResultSet(*decoded->Member("result").value());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->rows.size(), expected.rows.size());
  for (size_t r = 0; r < expected.rows.size(); ++r) {
    EXPECT_EQ(back->rows[r], expected.rows[r]) << "row " << r;
  }
}

TEST(BinaryResponseTest, WithoutStreamCapEverythingIsOneFrame) {
  ResultSet rs = WideResultSet(237);
  XmlRpcStruct out;
  out["result"] = ResultSetToRpc(std::move(rs));
  XmlRpcValue value(std::move(out));
  std::string raw = wire::EncodeBinaryResponse(
      value, wire::kCapBinary | wire::kCapLz4, 50, 0);
  auto spans = wire::SplitFrames(raw);
  ASSERT_TRUE(spans.ok());
  EXPECT_EQ(spans->size(), 1u);
}

TEST(BinaryResponseTest, TruncatedStreamIsNotDone) {
  ResultSet rs = WideResultSet(237);
  XmlRpcStruct out;
  out["result"] = ResultSetToRpc(std::move(rs));
  std::string raw =
      wire::EncodeBinaryResponse(XmlRpcValue(std::move(out)), wire::kAllCaps,
                                 50, 0);
  auto spans = wire::SplitFrames(raw);
  ASSERT_TRUE(spans.ok());
  ASSERT_GT(spans->size(), 2u);
  wire::ResponseDecoder decoder;
  // Feed everything but the trailer: the decoder must not report done.
  for (size_t i = 0; i + 1 < spans->size(); ++i) {
    auto frame = wire::ParseFrame(
        std::string_view(raw).substr((*spans)[i].first, (*spans)[i].second));
    ASSERT_TRUE(frame.ok());
    ResultSet chunk;
    bool is_chunk = false;
    ASSERT_TRUE(decoder.Consume(std::move(*frame), &chunk, &is_chunk).ok());
  }
  EXPECT_FALSE(decoder.done());
}

TEST(BinaryResponseTest, SharedResultSetEmbeddedTwiceStreamsOnce) {
  // A response struct can embed the SAME ResultSetPtr in two members
  // (sharing is O(1) by design). Only the first occurrence may become
  // the stream stub — a second stub would be rejected by the decoder
  // and make the response permanently undecodable.
  auto rs = std::make_shared<ResultSet>(WideResultSet(237));
  ResultSet expected = *rs;
  XmlRpcStruct out;
  out["result"] = XmlRpcValue(rs);
  out["alias"] = XmlRpcValue(rs);
  XmlRpcValue value(std::move(out));

  std::string raw = wire::EncodeBinaryResponse(value, wire::kAllCaps, 50, 0);
  std::vector<Row> streamed;
  size_t chunks = 0;
  auto decoded = DecodeFramed(raw, &streamed, &chunks);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(chunks, 5u);  // ceil(237 / 50): the set streamed exactly once.
  for (const char* key : {"alias", "result"}) {
    auto member = decoded->Member(key);
    ASSERT_TRUE(member.ok()) << key;
    const storage::ResultSet* back = (*member)->result_set();
    ASSERT_NE(back, nullptr) << key;
    ASSERT_EQ(back->rows.size(), expected.rows.size()) << key;
    EXPECT_EQ(back->rows, expected.rows) << key;
  }
}

TEST(ColumnarBlockTest, HugeRowCountInTinyFrameRejectsBeforeExpanding) {
  // Crafted payloads (past the digest, so this is decode hardening, not
  // transit integrity) declaring 2^28 rows in a handful of bytes must
  // fail on the byte-plausibility bound, not drive ~268M appends.
  auto varint = [](uint64_t v, std::string* out) {
    while (v >= 0x80) {
      out->push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    out->push_back(static_cast<char>(v));
  };
  auto header = [&](std::string* out) {
    out->push_back(8);  // kTagResultSet
    varint(1, out);     // one column...
    varint(1, out);
    out->push_back('a');  // ...named "a"
    out->push_back(0);    // columnar layout
    varint(uint64_t{1} << 28, out);  // nrows = kMaxDecodeCount
  };

  // (a) An int64 column with no payload behind the declared row count.
  std::string int_col;
  header(&int_col);
  int_col.push_back(1);  // kColInt64
  varint(0, &int_col);   // null_count = 0
  size_t offset = 0;
  auto decoded = wire::DecodeValue(int_col, &offset);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("row count"), std::string::npos)
      << decoded.status().ToString();

  // (b) An all-null column: one byte regardless of row count, so there
  // is no payload to anchor against — the fixed cell ceiling applies.
  std::string null_col;
  header(&null_col);
  null_col.push_back(0);  // kColAllNull
  offset = 0;
  decoded = wire::DecodeValue(null_col, &offset);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("all-null"), std::string::npos)
      << decoded.status().ToString();

  // A genuinely all-null result set of sane size still round trips.
  ResultSet all_null;
  all_null.columns = {"a", "b"};
  for (int r = 0; r < 100; ++r) {
    all_null.rows.push_back({Value::Null(), Value::Null()});
  }
  ResultSet expected = all_null;
  std::string encoded;
  wire::EncodeValue(ResultSetToRpc(std::move(all_null)), &encoded);
  offset = 0;
  decoded = wire::DecodeValue(encoded, &offset);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const storage::ResultSet* back = decoded->result_set();
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->rows, expected.rows);
}

// ---------- XML-RPC byte-identity guard ----------

TEST(ByteIdentityTest, FastPathMatchesTreeWriterExactly) {
  // The pre-binary encoder, verbatim: generic XML writer over a
  // methodResponse tree. EncodeResponse (and the native result-set
  // value variant) must keep producing these exact bytes.
  auto tree_writer = [](const XmlRpcValue& value) {
    xml::Node root("methodResponse");
    xml::Node& param = root.AddChild("params").AddChild("param");
    param.children.push_back(std::make_unique<xml::Node>(value.ToXml()));
    xml::WriteOptions options;
    options.pretty = false;
    return xml::Write(root, options);
  };

  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    ResultSet rs = RandomResultSet(rng, /*allow_ragged=*/trial % 4 == 0);
    XmlRpcStruct out;
    out["rows"] = static_cast<int64_t>(rs.rows.size());
    out["result"] = ResultSetToRpc(ResultSet(rs));
    XmlRpcValue value(std::move(out));
    EXPECT_EQ(EncodeResponse(value), tree_writer(value)) << "trial " << trial;
  }

  // Scalars and strings needing escapes take the same fast path.
  for (const XmlRpcValue& v :
       {XmlRpcValue(int64_t{-7}), XmlRpcValue(2.5), XmlRpcValue(true),
        XmlRpcValue("a <b> & \"c\" 'd'"), XmlRpcValue()}) {
    EXPECT_EQ(EncodeResponse(v), tree_writer(v));
  }
}

// ---------- handshake + end-to-end over the simulated wire ----------

struct WireRpcFixture : public ::testing::Test {
  WireRpcFixture()
      : transport(&network, net::ServiceCosts::Default()),
        server("clarens://server-host:8080/clarens", &transport) {
    network.AddHost("server-host");
    network.AddHost("client-host");
    (void)server.RegisterMethod(
        "data.fetch",
        [this](const XmlRpcArray& params, CallContext& ctx)
            -> Result<XmlRpcValue> {
          (void)ctx;
          GRIDDB_ASSIGN_OR_RETURN(int64_t rows, params.at(0).AsInt());
          XmlRpcStruct out;
          out["rows"] = rows;
          out["result"] = ResultSetToRpc(WideResultSet(
              static_cast<size_t>(rows)));
          return XmlRpcValue(std::move(out));
        });
  }

  std::unique_ptr<RpcClient> MakeClient(uint32_t preference) {
    auto client = std::make_unique<RpcClient>(
        &transport, "client-host", "clarens://server-host:8080/clarens");
    client->set_wire_preference(preference);
    return client;
  }

  Result<ResultSet> Fetch(RpcClient& client, int64_t rows,
                          CallStats* stats = nullptr) {
    XmlRpcArray params;
    params.emplace_back(rows);
    GRIDDB_ASSIGN_OR_RETURN(
        XmlRpcValue response,
        client.Call("data.fetch", std::move(params), nullptr, 0, "", stats));
    GRIDDB_ASSIGN_OR_RETURN(const XmlRpcValue* member,
                            response.Member("result"));
    return RpcToResultSet(*member);
  }

  net::Network network;
  Transport transport;
  RpcServer server;
};

TEST_F(WireRpcFixture, HandshakeMatrixFallsBackWherever) {
  struct Cell {
    uint32_t client_pref;
    uint32_t server_caps;
    uint32_t expect;
  };
  const Cell cells[] = {
      {0, wire::kAllCaps, 0},                      // legacy client
      {wire::kAllCaps, 0, 0},                      // legacy server
      {wire::kAllCaps, wire::kAllCaps, wire::kAllCaps},
      {wire::kCapBinary, wire::kAllCaps, wire::kCapBinary},
      {wire::kAllCaps, wire::kCapBinary | wire::kCapLz4,
       wire::kCapBinary | wire::kCapLz4},          // server without streaming
      {0, 0, 0},
  };
  for (const Cell& cell : cells) {
    server.set_wire_caps(cell.server_caps);
    std::unique_ptr<RpcClient> client = MakeClient(cell.client_pref);
    auto rs = Fetch(*client, 100);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs->rows.size(), 100u);
    EXPECT_EQ(client->negotiated_caps(), cell.expect)
        << "pref " << cell.client_pref << " caps " << cell.server_caps;
  }
  server.set_wire_caps(wire::kAllCaps);
}

TEST_F(WireRpcFixture, CrossCodecResultsAreEqual) {
  std::unique_ptr<RpcClient> xml_client = MakeClient(0);
  std::unique_ptr<RpcClient> bin_client = MakeClient(wire::kAllCaps);
  for (int64_t rows : {0, 3, 1000, 3000}) {  // 3000 crosses the chunk size
    CallStats xml_stats, bin_stats;
    auto via_xml = Fetch(*xml_client, rows, &xml_stats);
    auto via_bin = Fetch(*bin_client, rows, &bin_stats);
    ASSERT_TRUE(via_xml.ok()) << via_xml.status().ToString();
    ASSERT_TRUE(via_bin.ok()) << via_bin.status().ToString();
    EXPECT_EQ(via_xml->columns, via_bin->columns);
    EXPECT_EQ(via_xml->rows, via_bin->rows) << rows << " rows";
    if (rows > 0) {
      EXPECT_LT(bin_stats.response_bytes, xml_stats.response_bytes);
    }
    if (rows > 1024) {
      EXPECT_GT(bin_stats.streamed_chunks, 1);
      EXPECT_GE(bin_stats.first_chunk_ms, 0.0);
    } else {
      EXPECT_EQ(bin_stats.streamed_chunks, 0);
      EXPECT_LT(bin_stats.first_chunk_ms, 0.0);
    }
  }
}

TEST_F(WireRpcFixture, FaultsStayXmlAndDecodeOnBinaryClients) {
  std::unique_ptr<RpcClient> bin_client = MakeClient(wire::kAllCaps);
  auto result = bin_client->Call("no.such.method", {}, nullptr);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(WireRpcFixture, CorruptFrameDetectedAndRetried) {
  // The fate stream is seeded and a streamed response draws one fate
  // per frame, so scan seeds for a run where the plan damages at least
  // one *binary frame* (the griddb.wire.corrupt_frames digest counter
  // moves) and the retry budget still recovers the call — then hold the
  // recovered result to the server's rows.
  obs::Counter* corrupt_frames =
      obs::MetricsRegistry::Default().GetCounter("griddb.wire.corrupt_frames");
  bool recovered = false;
  for (uint64_t seed = 1; seed <= 64 && !recovered; ++seed) {
    auto plan = std::make_shared<net::FaultPlan>(seed);
    net::LinkFaultSpec spec;
    spec.corrupt_probability = 0.1;
    plan->SetLinkFaults("client-host", "server-host", spec);
    network.InstallFaultPlan(plan);

    std::unique_ptr<RpcClient> client = MakeClient(wire::kAllCaps);
    RetryPolicy policy = RetryPolicy::Default();
    policy.max_attempts = 8;
    client->set_retry_policy(policy);
    const uint64_t frames_before = corrupt_frames->value();
    CallStats stats;
    auto rs = Fetch(*client, 3000, &stats);
    if (!rs.ok() || stats.retries == 0 ||
        corrupt_frames->value() == frames_before) {
      continue;
    }
    recovered = true;
    ASSERT_EQ(rs->rows.size(), 3000u);
    // The delivered rows are the server's rows, not the damaged ones.
    EXPECT_EQ(rs->rows[1234][0], Value(int64_t{1234}));
    EXPECT_GT(network.fault_counters().corruptions, 0u);
  }
  EXPECT_TRUE(recovered)
      << "no seed in [1, 64] both damaged a frame and recovered";
}

TEST_F(WireRpcFixture, CorruptionWithoutRetriesSurfacesPrecisely) {
  auto plan = std::make_shared<net::FaultPlan>(3);
  net::LinkFaultSpec spec;
  spec.corrupt_probability = 1.0;
  plan->SetLinkFaults("client-host", "server-host", spec);
  network.InstallFaultPlan(plan);

  std::unique_ptr<RpcClient> client = MakeClient(wire::kAllCaps);
  auto rs = Fetch(*client, 2000);
  ASSERT_FALSE(rs.ok());
  EXPECT_TRUE(rs.status().code() == StatusCode::kCorruption ||
              rs.status().code() == StatusCode::kUnavailable)
      << rs.status().ToString();
}

// ---------- the data-access fan-out over both codecs ----------

struct WireFanoutFixture : public ::testing::Test {
  WireFanoutFixture()
      : transport(&network, net::ServiceCosts::Default()),
        db_remote("db_remote", sql::Vendor::kMySql) {
    for (const char* h : {"server-a", "server-b", "rls-host", "client"}) {
      network.AddHost(h);
    }
    rls = std::make_unique<rls::RlsServer>("rls://rls-host:39281/rls",
                                           &transport);
    EXPECT_TRUE(db_remote.Execute("CREATE TABLE WIDE_EVENTS (ID INT PRIMARY "
                                  "KEY, E DOUBLE, TAG VARCHAR(16))")
                    .ok());
    for (int i = 0; i < 2000; ++i) {
      EXPECT_TRUE(
          db_remote
              .Execute("INSERT INTO WIDE_EVENTS (ID, E, TAG) VALUES (" +
                       std::to_string(i) + ", " + std::to_string(i) + ".5, " +
                       (i % 9 == 0 ? std::string("NULL")
                                   : "'tag" + std::to_string(i % 4) + "'") +
                       ")")
              .ok());
    }
    EXPECT_TRUE(catalog
                    .Add({"mysql://server-b/db_remote", &db_remote, "server-b",
                          "", ""})
                    .ok());
    core::DataAccessConfig config_b;
    config_b.server_name = "jclarens-b";
    config_b.host = "server-b";
    config_b.server_url = "clarens://server-b:8080/clarens";
    config_b.rls_url = "rls://rls-host:39281/rls";
    server_b = std::make_unique<core::JClarensServer>(config_b, &catalog,
                                                      &transport);
    EXPECT_TRUE(server_b->service()
                    .RegisterLiveDatabase("mysql://server-b/db_remote", "")
                    .ok());
  }

  /// A query-only coordinator on `client`; WIDE_EVENTS resolves through
  /// the RLS and is fetched remotely from server-b over `wire_protocol`.
  std::unique_ptr<core::DataAccessService> Coordinator(
      const std::string& wire_protocol) {
    core::DataAccessConfig config;
    config.server_name = "coordinator";
    config.host = "client";
    config.rls_url = "rls://rls-host:39281/rls";
    config.wire_protocol = wire_protocol;
    return std::make_unique<core::DataAccessService>(config, &catalog,
                                                     &transport);
  }

  net::Network network;
  rpc::Transport transport;
  engine::Database db_remote;
  ral::DatabaseCatalog catalog;
  std::unique_ptr<rls::RlsServer> rls;
  std::unique_ptr<core::JClarensServer> server_b;
};

TEST_F(WireFanoutFixture, RemoteFetchMatchesAcrossCodecsAndStreams) {
  auto via_xml = Coordinator("xmlrpc");
  auto via_bin = Coordinator("binary");
  const std::string sql = "SELECT id, e, tag FROM wide_events";
  auto xml_rs = via_xml->Query(sql);
  auto bin_rs = via_bin->Query(sql);
  ASSERT_TRUE(xml_rs.ok()) << xml_rs.status().ToString();
  ASSERT_TRUE(bin_rs.ok()) << bin_rs.status().ToString();
  ASSERT_EQ(xml_rs->num_rows(), 2000u);
  ASSERT_EQ(bin_rs->num_rows(), 2000u);
  EXPECT_EQ(xml_rs->columns, bin_rs->columns);
  for (size_t r = 0; r < xml_rs->rows.size(); ++r) {
    ASSERT_EQ(xml_rs->rows[r], bin_rs->rows[r]) << "row " << r;
  }
  // 2000 rows crossed the 1024-row chunk threshold: the streamed path
  // recorded a first-chunk latency.
  EXPECT_GT(obs::MetricsRegistry::Default()
                .GetHistogram("griddb.wire.stream_first_chunk_ms")
                ->count(),
            0u);
}

TEST_F(WireFanoutFixture, StreamedFetchSurvivesInjectedCorruption) {
  auto plan = std::make_shared<net::FaultPlan>(13);
  net::LinkFaultSpec spec;
  spec.corrupt_probability = 0.25;
  plan->SetLinkFaults("client", "server-b", spec);
  network.InstallFaultPlan(plan);

  core::DataAccessConfig config;
  config.server_name = "coordinator";
  config.host = "client";
  config.rls_url = "rls://rls-host:39281/rls";
  config.wire_protocol = "binary";
  config.retry_policy = rpc::RetryPolicy::Default();
  core::DataAccessService coordinator(config, &catalog, &transport);

  auto rs = coordinator.Query("SELECT id, e, tag FROM wide_events");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 2000u);
  EXPECT_GT(network.fault_counters().corruptions, 0u);
}

}  // namespace
}  // namespace griddb::rpc
