// Crash-consistent resumable ETL: chunked staging with a manifest
// journal, resume after a mid-transfer down-window, corrupt-chunk
// re-staging, chunk-registry dedupe, and the staging-file leak guard.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "griddb/net/fault.h"
#include "griddb/ntuple/ntuple.h"
#include "griddb/obs/metrics.h"
#include "griddb/warehouse/etl.h"
#include "griddb/warehouse/warehouse.h"

namespace griddb::warehouse {
namespace {

using storage::DataType;
using storage::TableSchema;
using storage::Value;

std::string ResumeStagingDir() {
  return (std::filesystem::temp_directory_path() / "griddb_etl_resume_test")
      .string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

double ReadDiskMs(size_t bytes) {
  // Mirrors EtlCosts::Default().disk_read_mbps (480 megabits/s).
  return static_cast<double>(bytes) / (480.0 * 1e6 / 8.0 / 1000.0);
}

struct EtlResumeFixture : public ::testing::Test {
  EtlResumeFixture()
      : source("src_mysql", sql::Vendor::kMySql),
        wh("warehouse", "cern-tier1"),
        pipeline(&network, net::ServiceCosts::Default(), EtlCosts::Default(),
                 "cern-tier1", ResumeStagingDir()) {
    network.AddHost("cern-tier1");
    network.AddHost("caltech-tier2");
    network.AddHost("src-host");
    std::filesystem::remove_all(ResumeStagingDir());
    std::filesystem::create_directories(ResumeStagingDir());

    ntuple::GeneratorOptions gen;
    gen.num_events = 200;
    gen.nvar = 8;
    gen.seed = 42;
    nt_ = std::make_unique<ntuple::Ntuple>(ntuple::GenerateNtuple(gen));
    runs_ = ntuple::GenerateRuns(gen);
    EXPECT_TRUE(ntuple::CreateNormalizedSchema(source).ok());
    EXPECT_TRUE(ntuple::LoadNormalized(*nt_, runs_, source).ok());
  }

  EtlPipeline::Job MakeJob(engine::Database* target,
                           const std::string& target_host,
                           const std::string& target_table) {
    EtlPipeline::Job job;
    job.source = &source;
    job.source_host = "src-host";
    job.extract_sql =
        "SELECT e.event_id, e.run_id, r.detector FROM events e "
        "JOIN runs r ON e.run_id = r.run_id";
    job.target = target;
    job.target_host = target_host;
    job.target_table = target_table;
    job.create_target = true;
    return job;
  }

  bool StagingDirEmpty() {
    return std::filesystem::is_empty(ResumeStagingDir());
  }

  net::Network network;
  engine::Database source;
  DataWarehouse wh;
  EtlPipeline pipeline;
  std::unique_ptr<ntuple::Ntuple> nt_;
  std::vector<ntuple::RunInfo> runs_;
};

TEST_F(EtlResumeFixture, HealthyResumableRunMatchesPlainRun) {
  engine::Database mart("mart_lite", sql::Vendor::kSqlite);

  auto plain = pipeline.Run(MakeJob(&wh.db(), "cern-tier1", "evt_plain"));
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  EtlPipeline::ResumeOptions opts;
  opts.run_id = "run-healthy";
  opts.chunk_rows = 32;
  auto stats = pipeline.RunResumable(
      MakeJob(&mart, "caltech-tier2", "evt_resumable"), opts);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->resumed);
  EXPECT_EQ(stats->chunks_total, 7u);  // ceil(200 / 32)
  EXPECT_EQ(stats->chunks_committed, 7u);
  EXPECT_EQ(stats->chunks_loaded, 7u);
  EXPECT_EQ(stats->chunks_deduped, 0u);
  EXPECT_EQ(stats->rows, 200u);
  EXPECT_EQ(mart.RowCount("evt_resumable"), 200u);

  // Same content as the plain two-hop run, order notwithstanding.
  auto plain_digest = wh.db().ContentDigest("evt_plain");
  auto resumable_digest = mart.ContentDigest("evt_resumable");
  ASSERT_TRUE(plain_digest.ok());
  ASSERT_TRUE(resumable_digest.ok());
  EXPECT_EQ(*plain_digest, *resumable_digest);

  // Success removes the stage file and manifest.
  EXPECT_FALSE(std::filesystem::exists(ResumeStagingDir() +
                                       "/run-healthy.stage"));
  EXPECT_FALSE(std::filesystem::exists(ResumeStagingDir() +
                                       "/run-healthy.manifest"));
}

TEST_F(EtlResumeFixture, ResumesAfterMidLoadDownWindowWithoutDuplicates) {
  engine::Database mart("mart_lite", sql::Vendor::kSqlite);
  EtlPipeline::ResumeOptions opts;
  opts.run_id = "run-window";
  opts.chunk_rows = 32;
  const std::string stage_path = ResumeStagingDir() + "/run-window.stage";
  const std::string manifest_path =
      ResumeStagingDir() + "/run-window.manifest";

  // Attempt 1: the target host is down for the whole run. Staging
  // (source -> etl) completes; the first load transfer fails.
  auto plan = std::make_shared<net::FaultPlan>();
  plan->AddDownWindow("caltech-tier2", 0.0, 1e9);
  network.InstallFaultPlan(plan);
  auto attempt1 = pipeline.RunResumable(
      MakeJob(&mart, "caltech-tier2", "evt_win"), opts);
  ASSERT_FALSE(attempt1.ok());
  EXPECT_EQ(attempt1.status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(std::filesystem::exists(stage_path));
  ASSERT_TRUE(std::filesystem::exists(manifest_path));
  auto manifest1 = storage::ReadManifestFile(manifest_path);
  ASSERT_TRUE(manifest1.ok());
  EXPECT_EQ(manifest1->total_chunks, 7u);
  EXPECT_EQ(manifest1->committed.size(), 7u);
  EXPECT_TRUE(manifest1->loaded.empty());

  // Attempt 2: a down-window opening right after the first chunk's load
  // transfer interrupts the run mid-load.
  auto staged = storage::ReadChunkedStageFile(stage_path);
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  size_t chunk0_bytes = storage::EncodeRowBlock(staged->rows[0]).size();
  auto wire = network.TransferMs("cern-tier1", "caltech-tier2", chunk0_bytes);
  ASSERT_TRUE(wire.ok());
  double window_start = network.NowMs() + ReadDiskMs(chunk0_bytes) + *wire +
                        0.001;
  auto plan2 = std::make_shared<net::FaultPlan>();
  plan2->AddDownWindow("caltech-tier2", window_start, 1e9);
  network.InstallFaultPlan(plan2);
  auto attempt2 = pipeline.RunResumable(
      MakeJob(&mart, "caltech-tier2", "evt_win"), opts);
  ASSERT_FALSE(attempt2.ok());
  EXPECT_EQ(attempt2.status().code(), StatusCode::kUnavailable);
  auto manifest2 = storage::ReadManifestFile(manifest_path);
  ASSERT_TRUE(manifest2.ok());
  ASSERT_EQ(manifest2->loaded.size(), 1u);  // exactly chunk 0 got through
  EXPECT_EQ(mart.RowCount("evt_win"), 32u);

  // Attempt 3: fault cleared; the run resumes from the manifest, loads
  // only the remaining chunks, and produces a digest-equal copy with
  // zero duplicate rows.
  network.InstallFaultPlan(nullptr);
  auto attempt3 = pipeline.RunResumable(
      MakeJob(&mart, "caltech-tier2", "evt_win"), opts);
  ASSERT_TRUE(attempt3.ok()) << attempt3.status().ToString();
  EXPECT_TRUE(attempt3->resumed);
  EXPECT_EQ(attempt3->chunks_recovered, 7u);
  EXPECT_EQ(attempt3->chunks_committed, 0u);
  EXPECT_EQ(attempt3->chunks_loaded, 6u);
  EXPECT_EQ(attempt3->chunks_deduped, 0u);
  EXPECT_EQ(mart.RowCount("evt_win"), 200u);

  auto reference = pipeline.Run(MakeJob(&wh.db(), "cern-tier1", "evt_ref"));
  ASSERT_TRUE(reference.ok());
  auto want = wh.db().ContentDigest("evt_ref");
  auto got = mart.ContentDigest("evt_win");
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*want, *got);
  EXPECT_FALSE(std::filesystem::exists(stage_path));
  EXPECT_FALSE(std::filesystem::exists(manifest_path));
}

TEST_F(EtlResumeFixture, CorruptChunkIsEvictedAndRestaged) {
  engine::Database mart("mart_lite", sql::Vendor::kSqlite);
  EtlPipeline::ResumeOptions opts;
  opts.run_id = "run-corrupt";
  opts.chunk_rows = 32;
  const std::string stage_path = ResumeStagingDir() + "/run-corrupt.stage";
  const std::string manifest_path =
      ResumeStagingDir() + "/run-corrupt.manifest";

  // Stage everything but load nothing (target down).
  auto plan = std::make_shared<net::FaultPlan>();
  plan->AddDownWindow("caltech-tier2", 0.0, 1e9);
  network.InstallFaultPlan(plan);
  auto attempt1 = pipeline.RunResumable(
      MakeJob(&mart, "caltech-tier2", "evt_cor"), opts);
  ASSERT_FALSE(attempt1.ok());
  network.InstallFaultPlan(nullptr);

  // Flip one digit inside chunk 1's first row line (structure intact:
  // no tabs or newlines touched), so its frame digest no longer matches.
  std::string content = ReadFile(stage_path);
  size_t frame = content.find("\nchunk 1 ");
  ASSERT_NE(frame, std::string::npos);
  size_t line_start = content.find('\n', frame + 1);
  ASSERT_NE(line_start, std::string::npos);
  size_t digit = content.find_first_of("0123456789", line_start + 1);
  ASSERT_NE(digit, std::string::npos);
  content[digit] = content[digit] == '9' ? '0' : '9';
  WriteFile(stage_path, content);
  const uint64_t quarantined_before =
      obs::MetricsRegistry::Default()
          .GetCounter("griddb.warehouse.etl.chunks_quarantined")
          ->value();

  // The next run reconciles the manifest against the on-disk frames
  // BEFORE loading: the damaged chunk is quarantined (evicted from the
  // committed set), re-staged in the same run — the appended frame
  // supersedes the rotted one — and the run completes with the full,
  // correct content. No second retry needed.
  auto attempt2 = pipeline.RunResumable(
      MakeJob(&mart, "caltech-tier2", "evt_cor"), opts);
  ASSERT_TRUE(attempt2.ok()) << attempt2.status().ToString();
  EXPECT_TRUE(attempt2->resumed);
  EXPECT_EQ(attempt2->chunks_recovered, 6u);  // chunk 1 no longer counts
  EXPECT_EQ(attempt2->chunks_committed, 1u);  // the re-staged chunk 1
  EXPECT_EQ(attempt2->chunks_loaded, 7u);
  EXPECT_EQ(mart.RowCount("evt_cor"), 200u);
  EXPECT_GE(obs::MetricsRegistry::Default()
                    .GetCounter("griddb.warehouse.etl.chunks_quarantined")
                    ->value(),
            quarantined_before + 1);

  auto reference = pipeline.Run(MakeJob(&wh.db(), "cern-tier1", "evt_ref2"));
  ASSERT_TRUE(reference.ok());
  auto want = wh.db().ContentDigest("evt_ref2");
  auto got = mart.ContentDigest("evt_cor");
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*want, *got);
}

TEST_F(EtlResumeFixture, ChunkRegistryDedupesWhenManifestLosesLoadMarks) {
  engine::Database mart("mart_lite", sql::Vendor::kSqlite);
  EtlPipeline::ResumeOptions opts;
  opts.run_id = "run-dedupe";
  opts.chunk_rows = 32;
  const std::string manifest_path =
      ResumeStagingDir() + "/run-dedupe.manifest";

  // Interrupt mid-load exactly as in the down-window test, then simulate
  // a crash between the chunk's insert and its manifest update by
  // erasing the manifest's loaded marks. The target's chunk registry is
  // the dedupe authority, so the resume must NOT re-insert chunk 0.
  auto plan = std::make_shared<net::FaultPlan>();
  plan->AddDownWindow("caltech-tier2", 0.0, 1e9);
  network.InstallFaultPlan(plan);
  ASSERT_FALSE(pipeline
                   .RunResumable(MakeJob(&mart, "caltech-tier2", "evt_dp"),
                                 opts)
                   .ok());
  const std::string stage_path = ResumeStagingDir() + "/run-dedupe.stage";
  auto staged = storage::ReadChunkedStageFile(stage_path);
  ASSERT_TRUE(staged.ok());
  size_t chunk0_bytes = storage::EncodeRowBlock(staged->rows[0]).size();
  auto wire = network.TransferMs("cern-tier1", "caltech-tier2", chunk0_bytes);
  ASSERT_TRUE(wire.ok());
  auto plan2 = std::make_shared<net::FaultPlan>();
  plan2->AddDownWindow("caltech-tier2",
                       network.NowMs() + ReadDiskMs(chunk0_bytes) + *wire +
                           0.001,
                       1e9);
  network.InstallFaultPlan(plan2);
  ASSERT_FALSE(pipeline
                   .RunResumable(MakeJob(&mart, "caltech-tier2", "evt_dp"),
                                 opts)
                   .ok());
  network.InstallFaultPlan(nullptr);
  ASSERT_EQ(mart.RowCount("evt_dp"), 32u);

  auto manifest = storage::ReadManifestFile(manifest_path);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->loaded.size(), 1u);
  manifest->loaded.clear();
  ASSERT_TRUE(storage::WriteManifestFile(manifest_path, *manifest).ok());

  auto resumed = pipeline.RunResumable(
      MakeJob(&mart, "caltech-tier2", "evt_dp"), opts);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->chunks_deduped, 1u);
  EXPECT_EQ(resumed->chunks_loaded, 6u);
  EXPECT_EQ(mart.RowCount("evt_dp"), 200u);  // zero duplicate rows
}

TEST_F(EtlResumeFixture, FailedPlainRunLeavesNoStagingFileBehind) {
  engine::Database mart("mart_lite", sql::Vendor::kSqlite);
  ASSERT_TRUE(StagingDirEmpty());
  EtlPipeline::Job job = MakeJob(&mart, "caltech-tier2", "evt_missing");
  job.create_target = false;  // load fails: target table does not exist
  auto stats = pipeline.Run(job);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(StagingDirEmpty());  // the leak guard removed the stage file
}

TEST_F(EtlResumeFixture, SourceRowCountChangeFailsThePendingRun) {
  engine::Database mart("mart_lite", sql::Vendor::kSqlite);
  EtlPipeline::ResumeOptions opts;
  opts.run_id = "run-shifted";
  opts.chunk_rows = 32;
  auto plan = std::make_shared<net::FaultPlan>();
  plan->AddDownWindow("caltech-tier2", 0.0, 1e9);
  network.InstallFaultPlan(plan);
  ASSERT_FALSE(pipeline
                   .RunResumable(MakeJob(&mart, "caltech-tier2", "evt_sh"),
                                 opts)
                   .ok());
  network.InstallFaultPlan(nullptr);

  // The source grows between runs: the chunk boundaries no longer line
  // up with the manifest, which must be detected, not guessed at.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(source
                    .Execute("INSERT INTO events (EVENT_ID, RUN_ID) VALUES (" +
                             std::to_string(100001 + i) + ", 1)")
                    .ok());
  }
  auto resumed = pipeline.RunResumable(
      MakeJob(&mart, "caltech-tier2", "evt_sh"), opts);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace griddb::warehouse
