// Figure 6 (paper §5.2): Response time versus number of rows requested.
//
// "Increasing the number of rows from 21 to 2551 only increases the
//  response time from about 300 to 700 ms" — a linear trend whose slope
// is dominated by per-row serialization/shipping, with a large fixed base
// (RLS lookup + remote connect) because the ntuple data is requested
// through the web-service interface from the server that does not host
// it locally.
#include <cstdio>

#include "bench/testbed.h"
#include "griddb/util/stopwatch.h"

using namespace griddb;

int main() {
  std::printf("=== Figure 6: response time vs rows requested ===\n");
  std::printf("building testbed...\n");
  auto bed = bench::Testbed::Build();
  std::printf("testbed ready: %zu tables, %zu rows\n\n", bed->total_tables,
              bed->total_rows);

  rpc::RpcClient client(&bed->transport, "client",
                        "clarens://pentium4-a:8080/clarens");
  (void)client.Call("dataaccess.listTables", {}, nullptr);

  // The paper's endpoints: 21 -> ~300 ms, 2551 -> ~700 ms.
  const int row_counts[] = {21, 115, 450, 1024, 1800, 2551};

  std::printf("%-10s %16s %12s %14s\n", "rows", "measured (ms)", "cpu (ms)",
              "paper anchor");
  double first_ms = 0, last_ms = 0;
  for (int n : row_counts) {
    // Ntuple rows from the server-B-hosted table, via server A.
    std::string sql =
        "SELECT event_id, e_total, pt, eta, phi FROM ntuple_my_b1 LIMIT " +
        std::to_string(n);
    net::Cost cost;
    Stopwatch wall;
    rpc::XmlRpcArray params;
    params.emplace_back(sql);
    auto response = client.Call("dataaccess.query", std::move(params), &cost);
    if (!response.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    auto rs = rpc::RpcToResultSet(**response->Member("result"));
    if (!rs.ok() || rs->num_rows() != static_cast<size_t>(n)) {
      std::fprintf(stderr, "unexpected row count\n");
      return 1;
    }
    const char* anchor = n == 21 ? "~300 ms" : (n == 2551 ? "~700 ms" : "");
    std::printf("%-10d %16.1f %12.2f %14s\n", n, cost.total_ms(),
                wall.ElapsedMs(), anchor);
    if (n == 21) first_ms = cost.total_ms();
    if (n == 2551) last_ms = cost.total_ms();
  }

  std::printf("\nslope: %.3f ms/row (paper: ~%.3f ms/row); "
              "growth factor %.2fx (paper: ~2.3x)\n",
              (last_ms - first_ms) / (2551 - 21),
              (700.0 - 300.0) / (2551 - 21), last_ms / first_ms);
  return 0;
}
