// Table 1 (paper §5.2): Query Response Time.
//
//   | # Clarens servers | Distributed | Response time | # tables |
//   |         1         |     No      |     38 ms     |    1     |
//   |         1         |     Yes     |    487.5 ms   |    2     |
//   |         2         |     Yes     |     594 ms    |    4     |
//
// Reproduced on the simulated testbed: response time is the virtual-clock
// cost of one client call against server A over a warm Clarens session.
// The distributed rows pay decomposition + fresh per-database
// connect/auth (+ RLS lookup and forwarding for the two-server row),
// which is what the paper attributes the >10x penalty to.
#include <cstdio>

#include "bench/testbed.h"
#include "griddb/util/stopwatch.h"

using namespace griddb;

namespace {

struct Measurement {
  double simulated_ms = 0;
  double real_ms = 0;
  core::QueryStats stats;
};

Measurement MeasureQuery(rpc::RpcClient& client, const std::string& sql,
                         int repetitions = 5) {
  Measurement m;
  for (int i = 0; i < repetitions; ++i) {
    net::Cost cost;
    Stopwatch wall;
    rpc::XmlRpcArray params;
    params.emplace_back(sql);
    auto response = client.Call("dataaccess.query", std::move(params), &cost);
    if (!response.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   response.status().ToString().c_str());
      std::exit(1);
    }
    m.real_ms += wall.ElapsedMs();
    m.simulated_ms += cost.total_ms();
    m.stats = core::StatsFromRpc(**response->Member("stats"));
  }
  m.simulated_ms /= repetitions;
  m.real_ms /= repetitions;
  return m;
}

}  // namespace

int main() {
  std::printf("=== Table 1: Query Response Time ===\n");
  std::printf("building testbed (2 servers, 6 databases, ~80k rows, ~1700 "
              "tables)...\n");
  Stopwatch build_watch;
  auto bed = bench::Testbed::Build();
  std::printf("testbed ready in %.1f s: %zu tables, %zu rows\n\n",
              build_watch.ElapsedSeconds(), bed->total_tables,
              bed->total_rows);

  rpc::RpcClient client(&bed->transport, "client",
                        "clarens://pentium4-a:8080/clarens");
  // Warm the Clarens session (the paper's client is already connected).
  (void)client.Call("dataaccess.listTables", {}, nullptr);

  struct Row {
    const char* servers;
    const char* distributed;
    int tables;
    double paper_ms;
    std::string sql;
  };
  const Row rows[3] = {
      {"1", "No", 1, 38.0, "SELECT id, value FROM chunk_my_a1_0"},
      {"1", "Yes", 2, 487.5,
       "SELECT a.id, a.value, b.value FROM chunk_my_a1_0 a "
       "JOIN chunk_ms_a1_0 b ON a.id = b.id"},
      {"2", "Yes", 4, 594.0,
       "SELECT a.id, a.value, b.value, c.value, d.value "
       "FROM chunk_my_a1_0 a JOIN chunk_ms_a1_0 b ON a.id = b.id "
       "JOIN chunk_my_b1_0 c ON a.id = c.id "
       "JOIN chunk_ms_b1_0 d ON a.id = d.id"},
  };

  std::printf("%-8s %-12s %-8s %14s %14s %10s\n", "servers", "distributed",
              "tables", "paper (ms)", "measured (ms)", "cpu (ms)");
  for (const Row& row : rows) {
    Measurement m = MeasureQuery(client, row.sql);
    std::printf("%-8s %-12s %-8d %14.1f %14.1f %10.2f\n", row.servers,
                row.distributed, row.tables, row.paper_ms, m.simulated_ms,
                m.real_ms);
    if ((row.distributed[0] == 'Y') != m.stats.distributed ||
        static_cast<size_t>(row.tables) != m.stats.tables) {
      std::fprintf(stderr, "scenario mismatch: distributed=%d tables=%zu\n",
                   m.stats.distributed, m.stats.tables);
      return 1;
    }
  }
  Measurement local = MeasureQuery(client, rows[0].sql);
  Measurement dist = MeasureQuery(client, rows[1].sql);
  std::printf("\nshape check: distributed/local ratio paper=%.1fx measured=%.1fx\n",
              487.5 / 38.0, dist.simulated_ms / local.simulated_ms);
  return 0;
}
