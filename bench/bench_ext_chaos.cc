// Extension: whole-system chaos acceptance sweep (bench/chaos_harness.h).
//
// Runs the seeded chaos scenario — mixed interactive/batch/ETL/DDL
// workload under composed storage faults, network faults and coordinator
// kills — across a sweep of seeds, checking the full invariant set after
// every run (see the harness header for the list). Two legs:
//
//   composed — >= 200 seeds with all three fault layers on. Gate: every
//       seed green. A red seed prints its number: rerunning the binary
//       (or tests/chaos_test with that seed) replays the identical fault
//       schedule, which is the whole point of seeded injection.
//
//   enospc   — a slice of seeds in ENOSPC-only mode. Gates: zero failed
//       jobs, zero re-executed durable checkpoints, >= 1 injected
//       disk-full fault actually absorbed (the window must land).
//
// Emits machine-readable BENCH_chaos.json (path = argv[1]).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/chaos_harness.h"

using namespace griddb;

namespace {

constexpr uint64_t kComposedSeeds = 200;
constexpr uint64_t kEnospcSeeds = 24;

struct SweepResult {
  uint64_t seeds = 0;
  uint64_t failed = 0;
  std::vector<uint64_t> failing_seeds;
  size_t crashes = 0;
  size_t recoveries = 0;
  size_t resubmits = 0;
  size_t io_pauses = 0;
  size_t reexecuted_chunks = 0;
  size_t fs_faults = 0;
  size_t enospc_hits = 0;
  size_t net_faults = 0;
  double wall_ms = 0;
};

SweepResult RunSweep(const char* name, uint64_t first_seed, uint64_t count,
                     bool enospc_only, const std::string& root) {
  SweepResult out;
  for (uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    bench::ChaosOptions opt;
    opt.enospc_only = enospc_only;
    opt.scratch_root = root + "/" + name + "_" + std::to_string(seed);
    bench::ChaosReport report = bench::RunChaosSeed(seed, opt);
    ++out.seeds;
    out.crashes += report.crashes;
    out.recoveries += report.recoveries;
    out.resubmits += report.resubmits;
    out.io_pauses += report.io_pauses;
    out.reexecuted_chunks += report.reexecuted_chunks;
    out.fs_faults += report.fs_faults.total();
    out.enospc_hits += report.fs_faults.enospc;
    out.net_faults += report.net_faults.total();
    out.wall_ms += report.wall_ms;
    if (!report.ok) {
      ++out.failed;
      out.failing_seeds.push_back(seed);
      std::fprintf(stderr, "CHAOS FAIL leg=%s seed=%llu (replay with this "
                           "seed to reproduce the schedule)\n",
                   name, static_cast<unsigned long long>(seed));
      for (const std::string& violation : report.violations) {
        std::fprintf(stderr, "  violation: %s\n", violation.c_str());
      }
    } else {
      std::filesystem::remove_all(opt.scratch_root);
    }
    if ((seed - first_seed + 1) % 25 == 0) {
      std::fprintf(stderr, "[%s] %llu/%llu seeds, %llu failed\n", name,
                   static_cast<unsigned long long>(seed - first_seed + 1),
                   static_cast<unsigned long long>(count),
                   static_cast<unsigned long long>(out.failed));
    }
  }
  return out;
}

void EmitJson(std::FILE* out, const SweepResult& composed,
              const SweepResult& enospc, bool pass) {
  auto sweep = [&](const char* name, const SweepResult& s, bool last) {
    std::fprintf(out,
                 "  \"%s\": {\n"
                 "    \"seeds\": %llu,\n"
                 "    \"failed\": %llu,\n"
                 "    \"crashes\": %zu,\n"
                 "    \"recoveries\": %zu,\n"
                 "    \"resubmits\": %zu,\n"
                 "    \"io_pauses\": %zu,\n"
                 "    \"reexecuted_chunks\": %zu,\n"
                 "    \"fs_faults\": %zu,\n"
                 "    \"enospc_hits\": %zu,\n"
                 "    \"net_faults\": %zu,\n"
                 "    \"wall_ms\": %.1f,\n"
                 "    \"failing_seeds\": [",
                 name, static_cast<unsigned long long>(s.seeds),
                 static_cast<unsigned long long>(s.failed), s.crashes,
                 s.recoveries, s.resubmits, s.io_pauses, s.reexecuted_chunks,
                 s.fs_faults, s.enospc_hits, s.net_faults, s.wall_ms);
    for (size_t i = 0; i < s.failing_seeds.size(); ++i) {
      std::fprintf(out, "%s%llu", i ? ", " : "",
                   static_cast<unsigned long long>(s.failing_seeds[i]));
    }
    std::fprintf(out, "]\n  }%s\n", last ? "" : ",");
  };
  std::fprintf(out, "{\n  \"bench\": \"chaos\",\n");
  sweep("composed", composed, false);
  sweep("enospc", enospc, false);
  std::fprintf(out, "  \"pass\": %s\n}\n", pass ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root = "/tmp/griddb_bench_chaos";
  std::filesystem::remove_all(root);

  SweepResult composed =
      RunSweep("composed", 1, kComposedSeeds, /*enospc_only=*/false, root);
  SweepResult enospc =
      RunSweep("enospc", 1001, kEnospcSeeds, /*enospc_only=*/true, root);

  bool pass = composed.failed == 0 && enospc.failed == 0;
  // The gates must have teeth: a sweep where no fault ever fired proves
  // nothing, and the ENOSPC leg exists to show pauses, not luck.
  if (composed.fs_faults == 0 || composed.crashes == 0 ||
      composed.net_faults == 0) {
    std::fprintf(stderr, "FAIL: composed sweep injected no faults "
                         "(fs=%zu crashes=%zu net=%zu)\n",
                 composed.fs_faults, composed.crashes, composed.net_faults);
    pass = false;
  }
  if (enospc.enospc_hits == 0 || enospc.io_pauses == 0) {
    std::fprintf(stderr, "FAIL: enospc sweep never hit a full disk "
                         "(hits=%zu pauses=%zu)\n",
                 enospc.enospc_hits, enospc.io_pauses);
    pass = false;
  }
  if (enospc.reexecuted_chunks != 0) {
    std::fprintf(stderr, "FAIL: enospc sweep re-executed %zu checkpoints\n",
                 enospc.reexecuted_chunks);
    pass = false;
  }

  EmitJson(stdout, composed, enospc, pass);
  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      EmitJson(f, composed, enospc, pass);
      std::fclose(f);
    }
  }
  if (pass) std::filesystem::remove_all(root);
  return pass ? 0 : 1;
}
