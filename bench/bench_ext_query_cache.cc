// Extension: multi-tier query cache on the paper's Table 1 query mix.
//
// Runs the Table 1 queries (plus the Fig 6-style scan) against a
// cache-enabled testbed and compares the client-observed virtual-clock
// latency of the first (cold) pass against repeat (warm) passes served
// from the result cache. Acceptance (see EXPERIMENTS.md):
//   - median warm speedup across the mix >= 5x;
//   - cache-disabled parity: a cache-on cold pass costs the same as a
//     cache-off server (the cache must be invisible until it hits);
//   - a content-digest change and a schema-epoch bump each force a miss.
// Emits machine-readable BENCH_query_cache.json (path = argv[1]) so the
// perf trajectory is tracked from this PR on.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench/testbed.h"
#include "griddb/util/stopwatch.h"

using namespace griddb;

namespace {

// The three Table 1 queries plus the row-heavy Fig 6-style scan.
const char* kQueries[4] = {
    "SELECT id, value FROM chunk_my_a1_0",
    "SELECT a.id, a.value, b.value FROM chunk_my_a1_0 a "
    "JOIN chunk_ms_a1_0 b ON a.id = b.id",
    "SELECT a.id, a.value, b.value, c.value, d.value "
    "FROM chunk_my_a1_0 a JOIN chunk_ms_a1_0 b ON a.id = b.id "
    "JOIN chunk_my_b1_0 c ON a.id = c.id "
    "JOIN chunk_ms_b1_0 d ON a.id = d.id",
    "SELECT * FROM ntuple_my_a1",
};
const char* kQueryLabels[4] = {"chunk_scan", "join_2way", "join_4way",
                               "ntuple_scan"};

// Warm-up queries: same databases (so connect/auth is paid up front),
// different tables (so the measured mix still runs cache-cold).
const char* kWarmupQueries[4] = {
    "SELECT id FROM chunk_my_a1_1",
    "SELECT id FROM chunk_ms_a1_1",
    "SELECT id FROM chunk_my_b1_1",
    "SELECT id FROM chunk_ms_b1_1",
};

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2;
}

struct MixCosts {
  double per_query_ms[4] = {0, 0, 0, 0};
  double total_ms = 0;
  double real_ms = 0;
};

// One pass over the mix through the client RPC path, per-query virtual
// cost recorded separately.
MixCosts RunMixOnce(rpc::RpcClient& client) {
  MixCosts costs;
  Stopwatch wall;
  for (int q = 0; q < 4; ++q) {
    rpc::XmlRpcArray params;
    params.emplace_back(std::string(kQueries[q]));
    net::Cost cost;
    auto response = client.Call("dataaccess.query", std::move(params), &cost);
    if (!response.ok()) {
      std::fprintf(stderr, "query '%s' failed: %s\n", kQueryLabels[q],
                   response.status().ToString().c_str());
      std::exit(1);
    }
    costs.per_query_ms[q] = cost.total_ms();
    costs.total_ms += cost.total_ms();
  }
  costs.real_ms = wall.ElapsedMs();
  return costs;
}

void WarmUp(rpc::RpcClient& client) {
  (void)client.Call("dataaccess.listTables", {}, nullptr);
  for (const char* sql : kWarmupQueries) {
    rpc::XmlRpcArray params;
    params.emplace_back(std::string(sql));
    auto response = client.Call("dataaccess.query", std::move(params), nullptr);
    if (!response.ok()) {
      std::fprintf(stderr, "warm-up query failed: %s\n",
                   response.status().ToString().c_str());
      std::exit(1);
    }
  }
}

// Same wobble bound as bench_ext_trace_overhead: encoded double lengths
// and the parallel fan-out interleaving move totals by fractions of a
// millisecond between runs; a real parity break is orders larger.
constexpr double kParityToleranceMs = 2.0;

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_query_cache.json";
  constexpr int kWarmIterations = 7;

  std::printf("=== Extension: multi-tier query cache on the Table 1 mix "
              "===\n");

  bench::TestbedOptions cached_options;
  cached_options.main_table_rows = 20000;
  cached_options.query_cache = true;
  std::printf("building cache-enabled testbed...\n");
  auto bed = bench::Testbed::Build(cached_options);
  rpc::RpcClient client(&bed->transport, "client",
                        "clarens://pentium4-a:8080/clarens");
  WarmUp(client);

  // Observe digest baselines before anything is cached, mirroring the
  // integrity monitor's first sweep (a later change then invalidates).
  core::DataAccessService& service_a = bed->server_a->service();
  auto baseline = service_a.TableDigest("chunk_my_a1_0", "my_a1");
  if (!baseline.ok()) {
    std::fprintf(stderr, "digest failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  service_a.ObserveTableDigest("chunk_my_a1_0", baseline->md5);

  std::printf("running cold pass + %d warm passes...\n", kWarmIterations);
  MixCosts cold = RunMixOnce(client);
  std::vector<MixCosts> warm_passes;
  for (int i = 0; i < kWarmIterations; ++i) {
    warm_passes.push_back(RunMixOnce(client));
  }

  double warm_ms[4];
  double speedup[4];
  std::vector<double> speedups;
  std::printf("\n%-12s %14s %14s %10s\n", "query", "cold (ms)", "warm (ms)",
              "speedup");
  for (int q = 0; q < 4; ++q) {
    std::vector<double> samples;
    for (const MixCosts& pass : warm_passes) {
      samples.push_back(pass.per_query_ms[q]);
    }
    warm_ms[q] = Median(samples);
    speedup[q] = warm_ms[q] > 0 ? cold.per_query_ms[q] / warm_ms[q]
                                : std::numeric_limits<double>::infinity();
    speedups.push_back(speedup[q]);
    std::printf("%-12s %14.3f %14.3f %9.1fx\n", kQueryLabels[q],
                cold.per_query_ms[q], warm_ms[q], speedup[q]);
  }
  const double median_speedup = Median(speedups);
  std::printf("%-12s %40.1fx\n", "median", median_speedup);

  // Parity: an identically-seeded cache-off testbed must see the same
  // cold-pass virtual cost (cache-cold responses are byte-identical, so
  // costs can differ only by the encoded-double wobble).
  std::printf("\nbuilding cache-disabled testbed for the parity check...\n");
  bench::TestbedOptions off_options = cached_options;
  off_options.query_cache = false;
  auto off_bed = bench::Testbed::Build(off_options);
  rpc::RpcClient off_client(&off_bed->transport, "client",
                            "clarens://pentium4-a:8080/clarens");
  WarmUp(off_client);
  MixCosts off_cold = RunMixOnce(off_client);
  const double parity_delta = std::abs(off_cold.total_ms - cold.total_ms);
  std::printf("cache-off cold: %.3f ms, cache-on cold: %.3f ms "
              "(delta %.3f ms)\n",
              off_cold.total_ms, cold.total_ms, parity_delta);

  // Invalidation: a content-digest change forces the next query to
  // re-execute and see the new row.
  core::QueryStats stats;
  bool digest_miss = false;
  {
    engine::Database* my_a1 = bed->databases[0].get();
    if (!my_a1->Execute("INSERT INTO chunk_my_a1_0 (id, value) "
                        "VALUES (100, 0.5)")
             .ok()) {
      std::fprintf(stderr, "mutation failed\n");
      return 1;
    }
    auto changed = service_a.TableDigest("chunk_my_a1_0", "my_a1");
    if (!changed.ok() || changed->md5 == baseline->md5) {
      std::fprintf(stderr, "digest did not change after mutation\n");
      return 1;
    }
    service_a.ObserveTableDigest("chunk_my_a1_0", changed->md5);
    auto rs = service_a.Query(kQueries[0], &stats);
    digest_miss = rs.ok() && stats.result_cache_hits == 0 &&
                  rs->num_rows() == cached_options.chunk_rows + 1;
    std::printf("digest change: %s (result_cache_hits=%zu, rows=%zu)\n",
                digest_miss ? "miss as required" : "STILL SERVED FROM CACHE",
                static_cast<size_t>(stats.result_cache_hits),
                rs.ok() ? static_cast<size_t>(rs->num_rows()) : 0);
  }

  // Invalidation: a schema-epoch bump (database re-registration) drops
  // both the plan and the result tiers.
  bool epoch_miss = false;
  {
    core::QueryStats warm_stats;
    auto warm_rs = service_a.Query(kQueries[0], &warm_stats);
    auto lower = service_a.GenerateXSpecFor("my_a1");
    auto upper = service_a.UpperEntryFor("my_a1");
    if (!warm_rs.ok() || warm_stats.result_cache_hits != 1 || !lower.ok() ||
        !upper.ok() || !service_a.ReloadDatabase(*upper, *lower).ok()) {
      std::fprintf(stderr, "epoch bump setup failed\n");
      return 1;
    }
    core::QueryStats after;
    auto rs = service_a.Query(kQueries[0], &after);
    epoch_miss = rs.ok() && after.result_cache_hits == 0 &&
                 after.plan_cache_hits == 0;
    std::printf("epoch bump:    %s (result_cache_hits=%zu, "
                "plan_cache_hits=%zu)\n",
                epoch_miss ? "miss as required" : "STILL SERVED FROM CACHE",
                static_cast<size_t>(after.result_cache_hits),
                static_cast<size_t>(after.plan_cache_hits));
  }

  bool ok = true;
  if (median_speedup < 5.0) {
    std::fprintf(stderr, "FAIL: median warm speedup %.2fx < 5x\n",
                 median_speedup);
    ok = false;
  }
  if (parity_delta > kParityToleranceMs) {
    std::fprintf(stderr,
                 "FAIL: cache-on cold pass differs from cache-off by "
                 "%.3f ms > %.1f ms — the cold path is no longer "
                 "invisible\n",
                 parity_delta, kParityToleranceMs);
    ok = false;
  }
  if (!digest_miss) {
    std::fprintf(stderr, "FAIL: digest change did not invalidate\n");
    ok = false;
  }
  if (!epoch_miss) {
    std::fprintf(stderr, "FAIL: epoch bump did not invalidate\n");
    ok = false;
  }

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"query_cache\",\n");
    std::fprintf(f, "  \"queries\": [\n");
    for (int q = 0; q < 4; ++q) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"cold_ms\": %.6f, "
                   "\"warm_ms\": %.6f, \"speedup\": %.3f}%s\n",
                   kQueryLabels[q], cold.per_query_ms[q], warm_ms[q],
                   speedup[q], q + 1 < 4 ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"median_speedup\": %.3f,\n", median_speedup);
    std::fprintf(f, "  \"cold_total_ms\": %.6f,\n", cold.total_ms);
    std::fprintf(f, "  \"cache_off_total_ms\": %.6f,\n", off_cold.total_ms);
    std::fprintf(f, "  \"parity_delta_ms\": %.6f,\n", parity_delta);
    std::fprintf(f, "  \"cold_real_ms\": %.3f,\n", cold.real_ms);
    std::fprintf(f, "  \"digest_change_forces_miss\": %s,\n",
                 digest_miss ? "true" : "false");
    std::fprintf(f, "  \"epoch_bump_forces_miss\": %s,\n",
                 epoch_miss ? "true" : "false");
    std::fprintf(f, "  \"pass\": %s\n}\n", ok ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
    ok = false;
  }

  std::printf(ok ? "\nPASS\n" : "\nFAIL\n");
  return ok ? 0 : 1;
}
