// Ablation A5: schema-tracker cost (real CPU time, google-benchmark).
//
// §4.9's tracker periodically regenerates each database's XSpec and
// compares size, then MD5. This measures the per-check cost as the
// schema grows, plus the MD5 hashing alone, so an operator can pick a
// sensible tracking interval for a 1700-table federation.
#include <benchmark/benchmark.h>

#include "griddb/unity/xspec.h"
#include "griddb/util/md5.h"

using namespace griddb;

namespace {

std::unique_ptr<engine::Database> MakeWideDb(int tables) {
  auto db = std::make_unique<engine::Database>("tracked",
                                               sql::Vendor::kMySql);
  for (int t = 0; t < tables; ++t) {
    storage::TableSchema schema(
        "table_" + std::to_string(t),
        {{"id", storage::DataType::kInt64, true, true},
         {"payload", storage::DataType::kString, false, false},
         {"value", storage::DataType::kDouble, false, false}});
    if (!db->CreateTable(std::move(schema)).ok()) std::abort();
  }
  return db;
}

void BM_XSpecGeneration(benchmark::State& state) {
  auto db = MakeWideDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    unity::LowerXSpec spec = unity::GenerateXSpec(*db);
    benchmark::DoNotOptimize(spec.tables.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XSpecGeneration)->Arg(10)->Arg(100)->Arg(300)->Arg(1000);

void BM_FullCheck_GenerateSerializeHash(benchmark::State& state) {
  auto db = MakeWideDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    unity::LowerXSpec spec = unity::GenerateXSpec(*db);
    std::string xml = spec.ToXml();
    std::string digest = Md5Hex(xml);
    benchmark::DoNotOptimize(digest.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullCheck_GenerateSerializeHash)
    ->Arg(10)
    ->Arg(100)
    ->Arg(300)
    ->Arg(1000);

void BM_Md5OfXSpec(benchmark::State& state) {
  auto db = MakeWideDb(static_cast<int>(state.range(0)));
  std::string xml = unity::GenerateXSpec(*db).ToXml();
  for (auto _ : state) {
    std::string digest = Md5Hex(xml);
    benchmark::DoNotOptimize(digest.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(
                              unity::GenerateXSpec(*db).ToXml().size()));
}
BENCHMARK(BM_Md5OfXSpec)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
