// Ablation A1: temporary-file staging vs direct streaming.
//
// §5.1: "the use of the temporary staging file during the process is a
// performance bottleneck, and we are working on a cleaner way of loading
// the warehouse directly from the normalized databases." This bench
// quantifies what that future-work change would buy at several sizes.
#include <cstdio>

#include "bench/etl_common.h"

using namespace griddb;

int main() {
  std::printf("=== Ablation A1: staged (prototype) vs direct streaming ===\n");
  net::Network network;
  for (const char* h : {"src-host", "cern-tier1"}) network.AddHost(h);

  const size_t event_counts[] = {5000, 20000, 80000};
  std::printf("%-10s %12s %12s %10s\n", "events", "staged (s)", "direct (s)",
              "speedup");
  bool direct_wins = true;
  for (size_t n : event_counts) {
    bench::EtlWorkload w = bench::MakeEtlWorkload(n);
    warehouse::EtlPipeline pipeline(
        &network, net::ServiceCosts::Default(), warehouse::EtlCosts::Default(),
        "cern-tier1", "/tmp/griddb_bench_a1");
    warehouse::EtlPipeline::Job job;
    job.source = w.source.get();
    job.source_host = "src-host";
    job.extract_sql = "SELECT event_id, run_id FROM events";
    job.target = &w.wh->db();
    job.target_host = "cern-tier1";
    job.target_table = "fact_event";
    job.transform = w.MakeDenormalizer();

    auto staged = pipeline.Run(job);
    if (!staged.ok()) {
      std::fprintf(stderr, "staged run failed: %s\n",
                   staged.status().ToString().c_str());
      return 1;
    }
    // Fresh warehouse for the direct variant (avoid PK clashes).
    bench::EtlWorkload w2 = bench::MakeEtlWorkload(n);
    job.source = w2.source.get();
    job.target = &w2.wh->db();
    job.transform = w2.MakeDenormalizer();
    auto direct = pipeline.RunDirect(job);
    if (!direct.ok()) {
      std::fprintf(stderr, "direct run failed: %s\n",
                   direct.status().ToString().c_str());
      return 1;
    }
    double speedup = staged->total_ms() / direct->total_ms();
    std::printf("%-10zu %12.3f %12.3f %9.2fx\n", n, staged->total_ms() / 1000,
                direct->total_ms() / 1000, speedup);
    if (speedup <= 1.0) direct_wins = false;
  }
  std::printf("\nshape check: direct streaming faster at every size: %s\n",
              direct_wins ? "yes" : "NO");
  return direct_wins ? 0 : 1;
}
