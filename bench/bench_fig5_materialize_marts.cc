// Figure 5 (paper §5.1): Views extracted from the data warehouse and
// materialized into data marts.
//
// Same two-curve shape as Figure 4, one stage further down the pipeline:
// the lower curve is extraction of the view's rows from the warehouse
// into the temporary file, the upper curve is loading the file into the
// mart over the LAN.
#include <cstdio>

#include "bench/etl_common.h"
#include "griddb/util/stopwatch.h"

using namespace griddb;

int main() {
  std::printf("=== Figure 5: warehouse views -> data marts ===\n");
  net::Network network;
  for (const char* h : {"src-host", "cern-tier1", "caltech-tier2"}) {
    network.AddHost(h);
  }
  network.SetDefaultLink(net::LinkSpec::Lan100Mbps());

  // One populated warehouse; views of growing size materialized to marts.
  const size_t total_events = 80000;
  bench::EtlWorkload w = bench::MakeEtlWorkload(total_events);
  if (!w.wh->db()
           .InsertRows("fact_event", ntuple::DenormalizedRows(w.nt, w.runs))
           .ok()) {
    std::fprintf(stderr, "warehouse load failed\n");
    return 1;
  }

  warehouse::EtlPipeline pipeline(
      &network, net::ServiceCosts::Default(), warehouse::EtlCosts::Default(),
      "cern-tier1", "/tmp/griddb_bench_fig5");

  const size_t view_sizes[] = {2000, 5000, 10000, 20000, 40000, 80000};

  std::printf("%-10s %10s %14s %12s %12s %10s\n", "rows", "size (MB)",
              "extract (s)", "load (s)", "total (s)", "cpu (ms)");
  bool load_above = true, monotone = true;
  double prev_total = 0;
  for (size_t n : view_sizes) {
    std::string view_name = "v_subset_" + std::to_string(n);
    if (!w.wh->CreateAnalysisView(
                view_name, "SELECT * FROM fact_event WHERE event_id <= " +
                               std::to_string(n))
             .ok()) {
      std::fprintf(stderr, "view creation failed\n");
      return 1;
    }
    // Alternate mart vendors like the prototype (MySQL / SQLite tiers).
    warehouse::DataMart mart("mart_" + std::to_string(n),
                             n % 2 == 0 ? sql::Vendor::kMySql
                                        : sql::Vendor::kSqlite,
                             "caltech-tier2");
    Stopwatch wall;
    auto stats = warehouse::MaterializeView(*w.wh, view_name, mart, pipeline);
    if (!stats.ok()) {
      std::fprintf(stderr, "materialization failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    double mb = static_cast<double>(stats->staged_bytes) / 1e6;
    std::printf("%-10zu %10.2f %14.3f %12.3f %12.3f %10.1f\n", stats->rows,
                mb, stats->extract_ms / 1000.0, stats->load_ms / 1000.0,
                stats->total_ms() / 1000.0, wall.ElapsedMs());
    if (stats->load_ms <= stats->extract_ms * 0.9) load_above = false;
    if (stats->total_ms() < prev_total) monotone = false;
    prev_total = stats->total_ms();
  }
  std::printf("\nshape check: load curve above extract curve: %s; "
              "time monotone in size: %s\n",
              load_above ? "yes" : "NO", monotone ? "yes" : "NO");
  return (load_above && monotone) ? 0 : 1;
}
