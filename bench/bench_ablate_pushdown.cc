// Ablation A7: projection + predicate pushdown vs fetch-whole-tables.
//
// The paper's §3 critique of baseline Unity: "if there is a lot of data
// to be fetched for a query, the memory becomes overloaded" — because the
// driver pulls entire tables to the middleware before joining. This bench
// measures the bytes each mart ships to the middleware and the simulated
// time for the same join under four pushdown settings.
#include <cstdio>

#include "griddb/ntuple/ntuple.h"
#include "griddb/unity/driver.h"

using namespace griddb;

namespace {

struct Shipment {
  size_t bytes = 0;
  double simulated_ms = 0;
};

Shipment Measure(ral::DatabaseCatalog* catalog, net::Network* network,
                 bool projection, bool predicate,
                 const std::vector<engine::Database*>& marts,
                 const std::string& query) {
  unity::UnityDriverOptions options;
  options.enhanced = true;
  options.projection_pushdown = projection;
  options.predicate_pushdown = predicate;
  options.client_host = "middleware";
  unity::UnityDriver driver(catalog, network, net::ServiceCosts::Default(),
                            options);
  for (engine::Database* mart : marts) {
    std::string conn = std::string(sql::VendorName(mart->vendor())) +
                       "://backend/" + mart->name();
    if (!driver
             .AddDatabase({mart->name(), conn, "jdbc", ""},
                          unity::GenerateXSpec(*mart))
             .ok()) {
      std::abort();
    }
  }

  auto plan = driver.Plan(query);
  if (!plan.ok() || plan->single_database) {
    std::fprintf(stderr, "unexpected plan\n");
    std::exit(1);
  }
  Shipment shipment;
  net::Cost cost;
  for (const unity::SubQuery& sub : plan->subqueries) {
    auto partial = driver.ExecuteSubQuery(sub, &cost);
    if (!partial.ok()) {
      std::fprintf(stderr, "sub-query failed: %s\n",
                   partial.status().ToString().c_str());
      std::exit(1);
    }
    shipment.bytes += partial->WireSize();
  }
  shipment.simulated_ms = cost.total_ms();
  return shipment;
}

}  // namespace

int main() {
  std::printf("=== Ablation A7: projection/predicate pushdown vs "
              "fetch-everything ===\n");
  net::Network network;
  network.AddHost("backend");
  network.AddHost("middleware");

  // Wide ntuple table (20 variables) in one mart, runs in another; the
  // query touches 2 of 23 columns and 1/4 of the rows.
  ntuple::GeneratorOptions gen;
  gen.num_events = 20000;
  gen.nvar = 20;
  ntuple::Ntuple nt = ntuple::GenerateNtuple(gen);
  std::vector<ntuple::RunInfo> runs = ntuple::GenerateRuns(gen);

  engine::Database events_mart("wide_events", sql::Vendor::kMySql);
  if (!events_mart.CreateTable(ntuple::DenormalizedSchema(nt, "ntuple")).ok() ||
      !events_mart.InsertRows("ntuple", ntuple::DenormalizedRows(nt, runs))
           .ok()) {
    return 1;
  }
  engine::Database runs_mart("runs_mart", sql::Vendor::kMsSql);
  storage::TableSchema run_schema(
      "runs", {{"run_id", storage::DataType::kInt64, true, true},
               {"detector", storage::DataType::kString, true, false}});
  if (!runs_mart.CreateTable(run_schema).ok()) return 1;
  for (const ntuple::RunInfo& run : runs) {
    if (!runs_mart
             .InsertRows("runs", {{storage::Value(run.run_id),
                                   storage::Value(run.detector)}})
             .ok()) {
      return 1;
    }
  }

  ral::DatabaseCatalog catalog;
  if (!catalog.Add({"mysql://backend/wide_events", &events_mart, "backend",
                    "", ""})
           .ok() ||
      !catalog.Add({"mssql://backend/runs_mart", &runs_mart, "backend", "",
                    ""})
           .ok()) {
    return 1;
  }

  const std::string query =
      "SELECT e.pt, r.detector FROM ntuple e JOIN runs r "
      "ON e.run_id = r.run_id WHERE e.run_id = 1";

  struct Mode {
    const char* label;
    bool projection, predicate;
  };
  const Mode modes[] = {
      {"none (baseline Unity)", false, false},
      {"predicate only", false, true},
      {"projection only", true, false},
      {"both (enhanced driver)", true, true},
  };

  std::printf("%-26s %14s %14s\n", "pushdown", "shipped (MB)",
              "simulated (ms)");
  double baseline_bytes = 0, both_bytes = 0;
  std::vector<engine::Database*> marts = {&events_mart, &runs_mart};
  for (const Mode& mode : modes) {
    Shipment s = Measure(&catalog, &network, mode.projection, mode.predicate,
                         marts, query);
    std::printf("%-26s %14.2f %14.1f\n", mode.label, s.bytes / 1e6,
                s.simulated_ms);
    if (!mode.projection && !mode.predicate) baseline_bytes = s.bytes;
    if (mode.projection && mode.predicate) both_bytes = s.bytes;
  }
  double reduction = baseline_bytes / both_bytes;
  std::printf("\nbytes shipped reduced %.0fx by full pushdown\n", reduction);
  bool shape_ok = reduction > 10;
  std::printf("shape check: pushdown cuts shipment by >10x on wide "
              "tables: %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
