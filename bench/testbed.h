// The paper's §5.2 testbed, reproduced on the simulated network.
//
// "The tests were carried out on a 100 Mbps Ethernet LAN over two
//  single-processor Intel Pentium IV machines ... A Clarens server (with
//  the data access service installed) was installed on each of the
//  machines. The two servers were configured to host a total of 6
//  databases, with a total of nearly 80,000 rows and 1700 tables. The
//  databases were equally shared between a Microsoft SQL Server on
//  Windows 2000, and a MySQL database server."
//
// Testbed::Build creates exactly that: hosts "pentium4-a" (1.8 GHz box)
// and "pentium4-b" (2.4 GHz box) on a 100 Mbps LAN, six databases (3
// MySQL + 3 MS-SQL, split across the two hosts), ~1700 small ntuple
// chunk tables plus the main ntuple tables totalling ~80,000 rows, one
// JClarens server per host, and a central RLS.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "griddb/core/jclarens_server.h"
#include "griddb/core/schema_tracker.h"
#include "griddb/ntuple/ntuple.h"
#include "griddb/util/rng.h"
#include "griddb/util/strings.h"

namespace griddb::bench {

struct TestbedOptions {
  size_t main_table_rows = 70000;  ///< Rows in the six main ntuple tables.
  size_t chunk_tables = 1694;      ///< Small per-chunk tables (6 main tables
                                   ///< bring the total to ~1700).
  size_t chunk_rows = 6;           ///< Rows per chunk table (~80k total).
  bool enhanced_driver = true;
  bool parallel_subqueries = true;
  uint64_t seed = 2005;
  /// Fault tolerance knobs applied to both JClarens servers (defaults
  /// keep the paper-calibrated fail-fast behaviour).
  rpc::RetryPolicy retry_policy = rpc::RetryPolicy::None();
  bool partial_results = false;
  /// Server-side tracing on both JClarens servers (obs/). Off keeps the
  /// paper benches byte-identical on the wire.
  bool tracing = false;
  /// Slow-query span-dump threshold (virtual ms); <= 0 disables.
  double slow_query_ms = 0;
  /// Multi-tier query cache on both JClarens servers. Off keeps the
  /// paper benches byte-identical on the wire.
  bool query_cache = false;
  bool serve_stale_results = false;
  /// Overload protection on both JClarens servers: admission bounds,
  /// per-query entry deadline, bounded fan-out queue. Defaults off — the
  /// paper benches see the seed behaviour.
  core::AdmissionConfig admission;
  double default_deadline_ms = 0;
  bool partial_on_deadline = false;
  size_t worker_queue_limit = 0;
  /// Wire codec the servers' outbound sub-query RPCs ask for ("" = the
  /// GRIDDB_WIRE env default, "binary", "xmlrpc"); see rpc/wire.h. The
  /// paper benches leave it "" with the env unset — plain XML-RPC.
  std::string wire_protocol;
  /// Flow-control window for streamed binary responses.
  size_t stream_window = 4;
  /// RBAC grant catalog shared by both JClarens servers (one
  /// federation-wide grant set). Null — the default — disables RBAC.
  std::shared_ptr<core::RbacCatalog> rbac;
  /// Batch-query service on server A (core/batch). Disabled — the
  /// default — unless journal_dir is set. Build() registers databases
  /// after the servers exist, so benches should set autostart = false
  /// and call server_a->batch()->Start() once Build() returns.
  core::BatchConfig batch;
};

class Testbed {
 public:
  static std::unique_ptr<Testbed> Build(const TestbedOptions& options = {});

  net::Network network;
  rpc::Transport transport{&network, net::ServiceCosts::Default()};
  ral::DatabaseCatalog catalog;
  core::XSpecRepository xspec_repo;
  std::unique_ptr<rls::RlsServer> rls;
  std::vector<std::unique_ptr<engine::Database>> databases;
  std::unique_ptr<core::JClarensServer> server_a;  // pentium4-a
  std::unique_ptr<core::JClarensServer> server_b;  // pentium4-b

  size_t total_rows = 0;
  size_t total_tables = 0;

 private:
  Testbed() = default;
};

inline std::unique_ptr<Testbed> Testbed::Build(const TestbedOptions& options) {
  std::unique_ptr<Testbed> bed(new Testbed());
  bed->network.AddHost("pentium4-a");
  bed->network.AddHost("pentium4-b");
  bed->network.AddHost("rls-host");
  bed->network.AddHost("client");
  bed->network.SetDefaultLink(net::LinkSpec::Lan100Mbps());
  bed->rls = std::make_unique<rls::RlsServer>("rls://rls-host:39281/rls",
                                              &bed->transport);

  // Six databases: my_a1, my_a2, ms_a1 on host A; my_b1, ms_b1, ms_b2 on
  // host B (3 MySQL + 3 MS-SQL overall, "equally shared").
  struct DbSpec {
    const char* name;
    sql::Vendor vendor;
    const char* host;
  };
  const DbSpec specs[6] = {
      {"my_a1", sql::Vendor::kMySql, "pentium4-a"},
      {"my_a2", sql::Vendor::kMySql, "pentium4-a"},
      {"ms_a1", sql::Vendor::kMsSql, "pentium4-a"},
      {"my_b1", sql::Vendor::kMySql, "pentium4-b"},
      {"ms_b1", sql::Vendor::kMsSql, "pentium4-b"},
      {"ms_b2", sql::Vendor::kMsSql, "pentium4-b"},
  };

  // Main ntuple tables: one per database, sharing the generated dataset
  // split six ways. Table i is named ntuple_<db>.
  ntuple::GeneratorOptions gen;
  gen.num_events = options.main_table_rows;
  gen.nvar = 8;
  gen.seed = options.seed;
  ntuple::Ntuple nt = ntuple::GenerateNtuple(gen);
  std::vector<ntuple::RunInfo> runs = ntuple::GenerateRuns(gen);
  std::vector<storage::Row> all_rows = ntuple::DenormalizedRows(nt, runs);

  Rng rng(options.seed ^ 0xabcdef);
  for (size_t d = 0; d < 6; ++d) {
    auto db = std::make_unique<engine::Database>(specs[d].name,
                                                 specs[d].vendor);
    std::string table_name = std::string("ntuple_") + specs[d].name;
    storage::TableSchema schema = ntuple::DenormalizedSchema(nt, table_name);
    if (!db->CreateTable(schema).ok()) std::abort();
    std::vector<storage::Row> slice;
    for (size_t r = d; r < all_rows.size(); r += 6) {
      slice.push_back(all_rows[r]);
    }
    bed->total_rows += slice.size();
    if (!db->InsertRows(table_name, std::move(slice)).ok()) std::abort();
    ++bed->total_tables;

    // A runs dimension in one MS-SQL database per host, so a same-host
    // cross-database (and cross-vendor) join is possible: runs_a lives in
    // ms_a1, runs_b in ms_b1.
    if (d == 2 || d == 4) {
      storage::TableSchema run_schema(
          d == 2 ? "runs_a" : "runs_b",
          {{"run_id", storage::DataType::kInt64, true, true},
           {"detector", storage::DataType::kString, true, false}});
      if (!db->CreateTable(run_schema).ok()) std::abort();
      std::vector<storage::Row> run_rows;
      for (const ntuple::RunInfo& run : runs) {
        run_rows.push_back({storage::Value(run.run_id),
                            storage::Value(run.detector)});
        ++bed->total_rows;
      }
      if (!db->InsertRows(run_schema.name(), std::move(run_rows)).ok()) {
        std::abort();
      }
      ++bed->total_tables;
    }

    // Chunk tables: the bulk of the "1700 tables" — small per-dataset
    // calibration chunks spread over the six databases.
    size_t chunks_here = options.chunk_tables / 6 +
                         (d < options.chunk_tables % 6 ? 1 : 0);
    for (size_t c = 0; c < chunks_here; ++c) {
      std::string chunk_name =
          "chunk_" + std::string(specs[d].name) + "_" + std::to_string(c);
      storage::TableSchema chunk_schema(
          chunk_name, {{"id", storage::DataType::kInt64, true, true},
                       {"value", storage::DataType::kDouble, false, false}});
      if (!db->CreateTable(chunk_schema).ok()) std::abort();
      std::vector<storage::Row> chunk_rows;
      for (size_t r = 0; r < options.chunk_rows; ++r) {
        chunk_rows.push_back({storage::Value(static_cast<int64_t>(r)),
                              storage::Value(rng.Gaussian())});
      }
      bed->total_rows += chunk_rows.size();
      if (!db->InsertRows(chunk_name, std::move(chunk_rows)).ok()) {
        std::abort();
      }
      ++bed->total_tables;
    }

    std::string conn = std::string(sql::VendorName(specs[d].vendor)) + "://" +
                       specs[d].host + "/" + specs[d].name;
    if (!bed->catalog.Add({conn, db.get(), specs[d].host, "", ""}).ok()) {
      std::abort();
    }
    bed->databases.push_back(std::move(db));
  }

  auto make_server = [&](const char* name, const char* host) {
    core::DataAccessConfig config;
    config.server_name = name;
    config.host = host;
    config.server_url = std::string("clarens://") + host + ":8080/clarens";
    config.rls_url = "rls://rls-host:39281/rls";
    config.enhanced_driver = options.enhanced_driver;
    config.parallel_subqueries = options.parallel_subqueries;
    config.retry_policy = options.retry_policy;
    config.partial_results = options.partial_results;
    config.tracing = options.tracing;
    config.slow_query_ms = options.slow_query_ms;
    config.query_cache = options.query_cache;
    config.serve_stale_results = options.serve_stale_results;
    config.admission = options.admission;
    config.default_deadline_ms = options.default_deadline_ms;
    config.partial_on_deadline = options.partial_on_deadline;
    config.worker_queue_limit = options.worker_queue_limit;
    config.wire_protocol = options.wire_protocol;
    config.stream_window = options.stream_window;
    config.rbac = options.rbac;
    // The batch service runs on server A only (one journal per server;
    // benches drive a single coordinator).
    core::BatchConfig batch;
    if (std::string(host) == "pentium4-a") batch = options.batch;
    return std::make_unique<core::JClarensServer>(config, &bed->catalog,
                                                  &bed->transport,
                                                  &bed->xspec_repo,
                                                  std::move(batch));
  };
  bed->server_a = make_server("jclarens-a", "pentium4-a");
  bed->server_b = make_server("jclarens-b", "pentium4-b");

  for (size_t d = 0; d < 6; ++d) {
    std::string conn = std::string(sql::VendorName(specs[d].vendor)) + "://" +
                       specs[d].host + "/" + specs[d].name;
    core::JClarensServer* server =
        std::string(specs[d].host) == "pentium4-a" ? bed->server_a.get()
                                                   : bed->server_b.get();
    if (!server->service().RegisterLiveDatabase(conn, "").ok()) std::abort();
  }
  return bed;
}

}  // namespace griddb::bench
