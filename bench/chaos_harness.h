// Deterministic whole-system chaos harness (the storage-fault companion
// to net::FaultPlan).
//
// One seed drives one complete scenario: a coordinator + marts testbed
// runs a mixed workload — interactive queries, batch jobs, resumable ETL
// runs, RBAC grant flips — while three fault layers compose on top of it:
//
//   storage   storage::FaultFs installed over the util::FileSystem seam:
//             torn writes, lying fsyncs, op-indexed ENOSPC windows, read
//             bit flips (scoped to stage files), rename/unlink failures;
//   network   net::FaultPlan on the testbed LAN: message drops, detected
//             corruptions, delays on every server-to-server sub-query;
//   crashes   seeded kills of the batch coordinator at named checkpoint-
//             protocol points (SimulateCrash), each followed by a page-
//             cache drop (CrashDropUnsynced) and a journal recovery.
//
// Every fault fate is drawn from RNG streams keyed on the seed and the
// operation order, so a failing seed replays: rerun the same seed and the
// same schedule unfolds. After the workload drains, injection is turned
// off (Quiesce) and the run is checked against a fault-free oracle pass
// of the same workload:
//
//   - every batch job reaches kDone (storage faults pause, never fail)
//     and its paged result is byte-identical to the oracle's;
//   - checkpoints are exactly-once in ENOSPC-only runs and at-least-once
//     with full coverage when crashes/lying fsyncs are in play;
//   - the job journal replays cleanly with no torn tail left behind;
//   - interactive results (served through the result cache) are byte-
//     identical to the cache-less oracle;
//   - RBAC never leaks: a never-granted tenant is denied on every probe,
//     and grant/revoke flips take effect exactly when issued;
//   - ETL target content matches the oracle digest and the staging
//     directory drains to empty (no orphaned stage/manifest/tmp files);
//   - the batch directory holds only the journal and stage files of jobs
//     the harness actually submitted (no orphans).
//
// Used by tests/chaos_test.cc (a bounded seed subset in the tier-1 suite,
// also under the ASan/TSan legs) and bench/bench_ext_chaos.cc (the >= 200
// seed acceptance sweep). Progress metrics are published under
// griddb.chaos.* (see docs/OPERATIONS.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/testbed.h"
#include "griddb/core/batch/batch_service.h"
#include "griddb/core/rbac.h"
#include "griddb/net/fault.h"
#include "griddb/obs/metrics.h"
#include "griddb/storage/fault_fs.h"
#include "griddb/storage/stage_file.h"
#include "griddb/util/fs.h"
#include "griddb/util/journal.h"
#include "griddb/util/stopwatch.h"
#include "griddb/warehouse/etl.h"

namespace griddb::bench {

struct ChaosOptions {
  /// Testbed sizing — small enough that one seed runs in well under a
  /// second fault-free; the chaos pass adds backoff waits on top.
  size_t main_table_rows = 1200;
  size_t chunk_tables = 12;

  /// Workload mix per seed.
  size_t batch_jobs = 3;
  size_t interactive_queries = 6;
  size_t grant_flips = 4;
  size_t etl_runs = 2;
  size_t batch_chunk_rows = 48;
  /// Worker threads in the batch coordinator. 1 makes the coordinator's
  /// file-op sequence deterministic (no cross-worker interleaving), which
  /// the seed-replay test needs to compare realized fault counts.
  size_t batch_workers = 2;

  /// Fault intensity. Probabilities are per-operation; kills are whole-
  /// coordinator crashes at seeded checkpoint-protocol points.
  double storage_fault_rate = 0.02;  ///< torn / lying / rename / unlink.
  double bit_flip_rate = 0.04;       ///< Stage-file reads only.
  double net_fault_rate = 0.02;      ///< Drop and corrupt, each.
  size_t max_crash_kills = 2;

  /// ENOSPC-only mode: no other storage faults, no net faults, no kills —
  /// the acceptance gate that a full disk pauses jobs without failing
  /// them and without re-executing a single durable checkpoint.
  bool enospc_only = false;

  /// Scratch root for this seed's journal/stage/staging dirs. Created by
  /// the harness; the caller removes it (after a failure it holds the
  /// evidence: journal, stage files, manifests).
  std::string scratch_root = "/tmp/griddb_chaos";

  /// Wall-clock ceiling for the chaos pass (the oracle pass is fast).
  double timeout_sec = 120.0;
};

struct ChaosReport {
  bool ok = true;
  std::vector<std::string> violations;

  size_t crashes = 0;      ///< Coordinator kills fired.
  size_t recoveries = 0;   ///< Successful journal recoveries after kills.
  size_t resubmits = 0;    ///< Jobs whose submit record a crash swallowed.
  size_t io_pauses = 0;    ///< Storage-fault pauses absorbed by jobs.
  size_t reexecuted_chunks = 0;  ///< Checkpoints journaled more than once.
  storage::FsFaultCounters fs_faults;
  net::FaultCounters net_faults;
  double wall_ms = 0;

  void Violation(std::string what) {
    ok = false;
    violations.push_back(std::move(what));
    obs::MetricsRegistry::Default()
        .GetCounter("griddb.chaos.violations")
        ->Add();
  }
};

namespace chaos_detail {

/// The per-seed workload: fixed SQL texts so the oracle and chaos passes
/// run the identical mix. Thresholds are seeded so different seeds stress
/// different predicates and row volumes.
struct ChaosWorkload {
  std::vector<std::string> batch_sql;
  std::vector<std::string> interactive_sql;
};

inline ChaosWorkload MakeWorkload(uint64_t seed, const ChaosOptions& opt) {
  ChaosWorkload w;
  Rng rng(seed ^ 0xc4a05u);
  // Pageable full-table scans over both hosts: my_a2/ms_a1 are local to
  // the coordinator, my_b1/ms_b2 fan sub-queries across the faulty LAN.
  const char* scans[4] = {"SELECT * FROM ntuple_my_a2",
                          "SELECT * FROM ntuple_my_b1",
                          "SELECT * FROM ntuple_ms_b2",
                          "SELECT * FROM ntuple_ms_a1"};
  for (size_t i = 0; i < opt.batch_jobs; ++i) {
    w.batch_sql.push_back(scans[rng.UniformInt(0, 3)]);
  }
  for (size_t i = 0; i < opt.interactive_queries; ++i) {
    std::ostringstream sql;
    double cut = 0.05 * static_cast<double>(rng.UniformInt(1, 12));
    switch (rng.UniformInt(0, 2)) {
      case 0:
        sql << "SELECT COUNT(*) AS n, AVG(pt) AS avg_pt FROM ntuple_my_b1"
            << " WHERE pt > " << cut;
        break;
      case 1:
        sql << "SELECT COUNT(*) AS n, MAX(e_total) AS max_e"
            << " FROM ntuple_ms_b2 WHERE pt > " << cut;
        break;
      default:
        sql << "SELECT COUNT(*) AS n, AVG(e_total) AS avg_e"
            << " FROM ntuple_my_a1 WHERE pt > " << cut;
        break;
    }
    w.interactive_sql.push_back(sql.str());
  }
  return w;
}

/// Canonical bytes of a result set: header + the stage-file row codec.
inline std::string Canonical(const storage::ResultSet& rs) {
  std::string out;
  for (const std::string& column : rs.columns) out += column + "|";
  out += "\n";
  out += storage::EncodeRowBlock(rs.rows);
  return out;
}

/// Whole materialized batch result via the paged fetch surface.
inline Result<std::string> FetchAll(core::BatchJobManager& mgr,
                                    const std::string& tenant, uint64_t id) {
  std::string out;
  for (size_t page = 0;; ++page) {
    auto rs = mgr.Fetch(tenant, id, page);
    if (!rs.ok()) return rs.status();
    if (page == 0) {
      for (const std::string& column : rs->columns) out += column + "|";
      out += "\n";
    }
    if (rs->rows.empty()) break;
    out += storage::EncodeRowBlock(rs->rows);
  }
  return out;
}

/// Checkpoint-record count per chunk id for `job` in the on-disk journal.
inline Result<std::map<size_t, int>> CheckpointCounts(
    const std::string& journal_path, uint64_t job) {
  std::map<size_t, int> counts;
  auto replay = util::ReadJournal(journal_path);
  if (!replay.ok()) return replay.status();
  for (const std::string& record : replay->records) {
    std::istringstream in(record);
    std::string kind;
    std::getline(in, kind);
    if (kind != "checkpoint") continue;
    uint64_t id = 0;
    size_t chunk = 0;
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream fields(line);
      std::string key;
      fields >> key;
      if (key == "id") fields >> id;
      if (key == "chunk") fields >> chunk;
    }
    if (id == job) ++counts[chunk];
  }
  return counts;
}

inline std::shared_ptr<core::RbacCatalog> MakeRbac() {
  auto rbac = std::make_shared<core::RbacCatalog>();
  (void)rbac->CreateUser("physicist");
  (void)rbac->GrantTable("physicist", core::RbacCatalog::kAllTables);
  (void)rbac->CreateUser("flipper");
  (void)rbac->CreateUser("intruder");
  return rbac;
}

inline TestbedOptions MakeBedOptions(
    uint64_t seed, const ChaosOptions& opt, bool chaos_pass,
    std::shared_ptr<core::RbacCatalog> rbac) {
  TestbedOptions bed_opt;
  bed_opt.main_table_rows = opt.main_table_rows;
  bed_opt.chunk_tables = opt.chunk_tables;
  bed_opt.seed = 2005;  // Same dataset for every seed; faults vary instead.
  bed_opt.rbac = std::move(rbac);
  // The chaos pass serves interactive queries through the result cache
  // (the byte-identity and RBAC-flip invariants must hold through it);
  // the oracle pass stays cache-less so it cannot mask a cache bug.
  bed_opt.query_cache = chaos_pass;
  if (chaos_pass) {
    // Generous transient-fault retries: the invariant is that retried
    // queries converge to the oracle bytes, not that no retry happens.
    bed_opt.retry_policy.max_attempts = 8;
    bed_opt.retry_policy.initial_backoff_ms = 1.0;
    bed_opt.retry_policy.max_backoff_ms = 50.0;
  }
  (void)seed;
  return bed_opt;
}

inline core::BatchConfig MakeBatchConfig(const ChaosOptions& opt,
                                         const std::string& dir) {
  core::BatchConfig cfg;
  cfg.journal_dir = dir;
  cfg.chunk_rows = opt.batch_chunk_rows;
  cfg.workers = opt.batch_workers;
  cfg.autostart = false;
  cfg.io_retry_backoff_ms = 2.0;
  cfg.retry.max_attempts = 8;
  cfg.retry.initial_backoff_ms = 1.0;
  cfg.retry.max_backoff_ms = 50.0;
  return cfg;
}

inline warehouse::EtlPipeline::Job MakeEtlJob(Testbed& bed,
                                              engine::Database* target) {
  warehouse::EtlPipeline::Job job;
  job.source = bed.databases[0].get();  // my_a1 on pentium4-a
  job.source_host = "pentium4-a";
  job.extract_sql = "SELECT * FROM ntuple_my_a1";
  job.target = target;
  job.target_host = "pentium4-b";
  job.target_table = "chaos_target";
  job.create_target = true;
  return job;
}

/// Oracle pass: the same workload with no faults installed. Returns the
/// expected bytes/digest the chaos pass must converge to.
struct ChaosOracle {
  std::vector<std::string> batch;
  std::vector<std::string> interactive;
  storage::TableDigest etl;
  bool ok = true;
  std::string error;
};

inline ChaosOracle RunOracle(uint64_t seed, const ChaosOptions& opt,
                             const ChaosWorkload& workload) {
  ChaosOracle oracle;
  auto fail = [&](const std::string& what) {
    oracle.ok = false;
    oracle.error = what;
    return oracle;
  };

  auto bed = Testbed::Build(
      MakeBedOptions(seed, opt, /*chaos_pass=*/false, MakeRbac()));
  const std::string dir = opt.scratch_root + "/oracle";
  std::filesystem::create_directories(dir + "/batch");
  std::filesystem::create_directories(dir + "/staging");

  core::BatchJobManager mgr(&bed->server_a->service(), &bed->catalog,
                            MakeBatchConfig(opt, dir + "/batch"));
  if (Status st = mgr.Recover(); !st.ok()) {
    return fail("oracle recover: " + st.ToString());
  }
  mgr.Start();
  std::vector<uint64_t> ids;
  for (const std::string& sql : workload.batch_sql) {
    auto id = mgr.Submit("physicist", sql);
    if (!id.ok()) return fail("oracle submit: " + id.status().ToString());
    ids.push_back(*id);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!mgr.WaitForTerminal(ids[i], 120.0)) {
      return fail("oracle batch job timed out");
    }
    auto bytes = FetchAll(mgr, "physicist", ids[i]);
    if (!bytes.ok()) return fail("oracle fetch: " + bytes.status().ToString());
    oracle.batch.push_back(*bytes);
  }

  for (const std::string& sql : workload.interactive_sql) {
    QueryContext ctx;
    ctx.tenant = "physicist";
    auto rs = bed->server_a->service().Query(sql, nullptr, 0, "", ctx);
    if (!rs.ok()) return fail("oracle query: " + rs.status().ToString());
    oracle.interactive.push_back(Canonical(*rs));
  }

  engine::Database mart("chaos_mart", sql::Vendor::kMySql);
  warehouse::EtlPipeline etl(&bed->network, net::ServiceCosts::Default(),
                             warehouse::EtlCosts::Default(), "pentium4-a",
                             dir + "/staging");
  for (size_t i = 0; i < opt.etl_runs; ++i) {
    warehouse::EtlPipeline::ResumeOptions ropt;
    ropt.run_id = "chaos_run_" + std::to_string(i);
    ropt.chunk_rows = 96;
    auto stats = etl.RunResumable(MakeEtlJob(*bed, &mart), ropt);
    if (!stats.ok()) return fail("oracle etl: " + stats.status().ToString());
  }
  if (opt.etl_runs > 0) {
    auto digest = mart.ContentDigest("chaos_target");
    if (!digest.ok()) {
      return fail("oracle digest: " + digest.status().ToString());
    }
    oracle.etl = *digest;
  }
  mgr.Stop();
  return oracle;
}

/// Seeded kill schedule: fire SimulateCrash after the Nth hook visit to a
/// named checkpoint-protocol point. One shared countdown list; hooks fire
/// on worker threads, the restart dance runs on the harness thread.
struct KillSchedule {
  struct Kill {
    std::string point;
    int countdown = 0;  ///< Matching hook visits before the kill fires.
  };
  std::mutex mu;
  std::vector<Kill> pending;

  void Install(core::BatchJobManager* mgr) {
    mgr->set_crash_hook([this, mgr](const char* point, uint64_t, size_t) {
      std::lock_guard<std::mutex> lock(mu);
      if (pending.empty()) return;
      if (pending.front().point != point) return;
      if (--pending.front().countdown > 0) return;
      pending.erase(pending.begin());
      mgr->SimulateCrash();
    });
  }
};

}  // namespace chaos_detail

/// Runs one complete chaos scenario for `seed`: oracle pass, chaos pass,
/// quiesce, invariant checks. The report lists every violated invariant;
/// `report.ok` is the pass/fail verdict for the seed.
inline ChaosReport RunChaosSeed(uint64_t seed, const ChaosOptions& opt) {
  using namespace chaos_detail;
  ChaosReport report;
  Stopwatch wall;
  obs::MetricsRegistry::Default().GetCounter("griddb.chaos.seeds")
      ->Add();
  auto chaos_counter = [](const char* name) {
    return obs::MetricsRegistry::Default().GetCounter(name);
  };

  const ChaosWorkload workload = MakeWorkload(seed, opt);
  const ChaosOracle oracle = RunOracle(seed, opt, workload);
  if (!oracle.ok) {
    // The oracle is fault-free: a failure here is a harness/config bug,
    // not a robustness finding — fail loudly either way.
    report.Violation("oracle pass failed: " + oracle.error);
    report.wall_ms = wall.ElapsedMs();
    return report;
  }

  // ---- chaos pass ----
  auto rbac = MakeRbac();
  auto bed = Testbed::Build(
      MakeBedOptions(seed, opt, /*chaos_pass=*/true, rbac));
  const std::string dir = opt.scratch_root + "/chaos";
  const std::string batch_dir = dir + "/batch";
  const std::string staging_dir = dir + "/staging";
  std::filesystem::create_directories(batch_dir);
  std::filesystem::create_directories(staging_dir);

  // Storage faults: scoped to this pass's scratch tree; bit flips only on
  // stage files (the digest-quarantine path) — the journal's tear repair
  // is exercised by torn writes + crash drops instead, so a flipped
  // journal *read* cannot silently drop acked records and muddy the
  // exactly-once accounting.
  Rng rng(seed);
  auto fault_fs = std::make_unique<storage::FaultFs>(seed);
  fault_fs->SetPathFilter([dir](const std::string& path) {
    return path.rfind(dir, 0) == 0;
  });
  fault_fs->SetBitFlipFilter([](const std::string& path) {
    return path.size() >= 6 &&
           path.compare(path.size() - 6, 6, ".stage") == 0;
  });
  storage::FsFaultSpec spec;
  if (!opt.enospc_only) {
    spec.torn_write_probability = opt.storage_fault_rate;
    spec.lying_fsync_probability = opt.storage_fault_rate;
    spec.bit_flip_probability = opt.bit_flip_rate;
    spec.rename_fail_probability = opt.storage_fault_rate;
    spec.unlink_fail_probability = opt.storage_fault_rate;
  }
  fault_fs->SetSpec(spec);
  // Disk-full windows in op space (deterministic and escapable): one or
  // two per seed, landing inside the batch checkpoint stream.
  const int windows = opt.enospc_only ? 2 : 1;
  for (int w = 0; w < windows; ++w) {
    fault_fs->AddEnospcWindow(
        static_cast<uint64_t>(rng.UniformInt(10, 120)) +
            static_cast<uint64_t>(w) * 150,
        static_cast<uint64_t>(rng.UniformInt(2, 6)));
  }
  util::FileSystem* prev_fs = util::SetFileSystem(fault_fs.get());

  // Network faults on every LAN link (sub-queries, RLS lookups).
  if (!opt.enospc_only && opt.net_fault_rate > 0) {
    auto plan = std::make_shared<net::FaultPlan>(seed ^ 0x9e77u);
    net::LinkFaultSpec link;
    link.drop_probability = opt.net_fault_rate;
    link.corrupt_probability = opt.net_fault_rate;
    link.delay_probability = 0.05;
    link.delay_ms = 3.0;
    plan->SetDefaultLinkFaults(link);
    bed->network.InstallFaultPlan(plan);
  }

  // Crash-kill schedule over the protocol's own named points.
  KillSchedule kills;
  if (!opt.enospc_only && opt.max_crash_kills > 0) {
    const auto& points = core::BatchJobManager::CrashPointNames();
    size_t n = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(opt.max_crash_kills)));
    for (size_t k = 0; k < n; ++k) {
      KillSchedule::Kill kill;
      kill.point = points[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(points.size()) - 1))];
      kill.countdown = static_cast<int>(rng.UniformInt(2, 14));
      kills.pending.push_back(kill);
    }
  }

  auto mgr = std::make_unique<core::BatchJobManager>(
      &bed->server_a->service(), &bed->catalog,
      MakeBatchConfig(opt, batch_dir));
  kills.Install(mgr.get());
  (void)mgr->Recover();
  mgr->Start();

  // Submit the batch mix. Submit is durable-or-error; storage faults can
  // reject it, so retry (the disk "coming back" is part of the story).
  std::vector<uint64_t> ids(workload.batch_sql.size(), 0);
  std::set<uint64_t> all_ids_ever;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(opt.timeout_sec);
  auto submit = [&](size_t slot) -> bool {
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (mgr->crashed()) return false;
      auto id = mgr->Submit("physicist", workload.batch_sql[slot]);
      if (id.ok()) {
        ids[slot] = *id;
        all_ids_ever.insert(*id);
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  };
  // The restart dance: what an operator's supervisor does after a power
  // cut — drop unsynced page cache, start a fresh coordinator over the
  // same journal dir, recover, resume.
  auto restart = [&] {
    mgr.reset();  // joins the crashed workers
    fault_fs->CrashDropUnsynced();
    ++report.crashes;
    chaos_counter("griddb.chaos.crashes")->Add();
    mgr = std::make_unique<core::BatchJobManager>(
        &bed->server_a->service(), &bed->catalog,
        MakeBatchConfig(opt, batch_dir));
    kills.Install(mgr.get());
    Status recovered = Status::Ok();
    for (int attempt = 0; attempt < 50; ++attempt) {
      recovered = mgr->Recover();
      if (recovered.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!recovered.ok()) {
      report.Violation("recover failed after crash: " +
                       recovered.ToString());
      return;
    }
    ++report.recoveries;
    chaos_counter("griddb.chaos.recoveries")->Add();
    mgr->Start();
    // A submit acked just before the kill can be gone if its journal
    // record rode a lying fsync: detect and resubmit — the client-side
    // half of the durability contract.
    for (size_t slot = 0; slot < ids.size(); ++slot) {
      if (ids[slot] == 0) continue;
      auto info = mgr->Poll("physicist", ids[slot]);
      if (!info.ok() && info.status().code() == StatusCode::kNotFound) {
        ids[slot] = 0;
        ++report.resubmits;
        chaos_counter("griddb.chaos.resubmits")->Add();
      }
    }
  };
  for (size_t slot = 0; slot < ids.size(); ++slot) {
    if (!submit(slot) && mgr->crashed()) restart();
  }

  // Resumable ETL runs ride alongside the batch lane through the same
  // faulty filesystem and LAN. Each attempt that fails resumes from its
  // own manifest; crashed coordinators are restarted between attempts.
  engine::Database mart("chaos_mart", sql::Vendor::kMySql);
  warehouse::EtlPipeline etl(&bed->network, net::ServiceCosts::Default(),
                             warehouse::EtlCosts::Default(), "pentium4-a",
                             staging_dir);
  std::vector<bool> etl_done(opt.etl_runs, false);
  auto etl_attempt = [&](size_t run) {
    warehouse::EtlPipeline::ResumeOptions ropt;
    ropt.run_id = "chaos_run_" + std::to_string(run);
    ropt.chunk_rows = 96;
    return etl.RunResumable(MakeEtlJob(*bed, &mart), ropt);
  };
  for (size_t run = 0; run < opt.etl_runs; ++run) {
    for (int attempt = 0; attempt < 10 && !etl_done[run]; ++attempt) {
      etl_done[run] = etl_attempt(run).ok();
      if (mgr->crashed()) restart();
    }
  }

  // Drain: interleave interactive traffic, grant flips and intruder
  // probes with polling the batch lane to terminal, restarting the
  // coordinator whenever a scheduled kill fires.
  std::vector<std::string> interactive(workload.interactive_sql.size());
  std::vector<bool> interactive_ok(workload.interactive_sql.size(), false);
  size_t next_query = 0;
  size_t flips_left = opt.grant_flips;
  bool flipper_granted = false;
  auto& service = bed->server_a->service();
  auto probe = [&](const std::string& tenant, const std::string& sql) {
    QueryContext ctx;
    ctx.tenant = tenant;
    return service.Query(sql, nullptr, 0, "", ctx);
  };
  bool timed_out = false;
  while (true) {
    if (std::chrono::steady_clock::now() > deadline) {
      timed_out = true;
      report.Violation("chaos pass exceeded timeout_sec");
      break;
    }
    if (mgr->crashed()) restart();
    bool all_terminal = true;
    for (size_t slot = 0; slot < ids.size(); ++slot) {
      if (ids[slot] == 0) {
        all_terminal = false;
        if (!submit(slot)) continue;
      }
      auto info = mgr->Poll("physicist", ids[slot]);
      if (!info.ok() || !core::IsTerminal(info->state)) all_terminal = false;
    }
    // One interactive query per lap, transient failures deferred to the
    // post-quiesce sweep (the invariant is convergence, not zero noise).
    if (next_query < workload.interactive_sql.size()) {
      auto rs = probe("physicist", workload.interactive_sql[next_query]);
      if (rs.ok()) {
        interactive[next_query] = Canonical(*rs);
        interactive_ok[next_query] = true;
      }
      ++next_query;
    }
    // Grant flips: RBAC is authoritative the moment the DDL returns, no
    // matter what storage/network chaos is in flight — and no cached
    // result may outlive a revoke.
    if (flips_left > 0) {
      if (flipper_granted) {
        (void)rbac->RevokeTable("flipper", "chunk_my_a1_0");
      } else {
        (void)rbac->GrantTable("flipper", "chunk_my_a1_0");
      }
      flipper_granted = !flipper_granted;
      --flips_left;
      auto rs = probe("flipper", "SELECT id FROM chunk_my_a1_0");
      if (flipper_granted && rs.status().code() ==
                                 StatusCode::kPermissionDenied) {
        report.Violation("rbac: granted tenant denied");
      }
      if (!flipper_granted && rs.ok()) {
        report.Violation("rbac: revoked tenant served (leak)");
      }
    }
    auto intruder = probe("intruder", "SELECT pt FROM ntuple_my_a1");
    if (intruder.ok()) {
      report.Violation("rbac: never-granted tenant served (leak)");
    }
    if (all_terminal && next_query >= workload.interactive_sql.size() &&
        flips_left == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // ---- quiesce: all injection off, drain to steady state ----
  fault_fs->Quiesce();
  // Uninstalling the plan resets the network's fault counters, so bank
  // them first — the sweep gates on faults having actually fired.
  report.net_faults = bed->network.fault_counters();
  bed->network.InstallFaultPlan(nullptr);
  if (mgr->crashed()) restart();
  if (!timed_out) {
    for (size_t slot = 0; slot < ids.size(); ++slot) {
      if (ids[slot] == 0 && !submit(slot)) {
        report.Violation("submit never succeeded post-quiesce");
      }
      if (ids[slot] != 0 && !mgr->WaitForTerminal(ids[slot], 60.0)) {
        report.Violation("batch job not terminal post-quiesce");
      }
    }
  }

  // ---- invariants ----
  const std::string journal_path = batch_dir + "/batch_jobs.journal";
  for (size_t slot = 0; slot < ids.size() && !timed_out; ++slot) {
    if (ids[slot] == 0) continue;
    auto info = mgr->Poll("physicist", ids[slot]);
    if (!info.ok()) {
      report.Violation("post-quiesce poll failed: " +
                       info.status().ToString());
      continue;
    }
    report.io_pauses += info->io_pauses;
    if (info->state != core::BatchJobState::kDone) {
      report.Violation(std::string("job ended ") +
                       core::BatchJobStateName(info->state) +
                       " (faults must pause, never fail)");
      continue;
    }
    auto bytes = FetchAll(*mgr, "physicist", ids[slot]);
    if (!bytes.ok()) {
      report.Violation("batch fetch failed post-quiesce: " +
                       bytes.status().ToString());
    } else if (*bytes != oracle.batch[slot]) {
      // Name the first divergent byte: equal-length mismatches are
      // usually a row permutation or a single damaged cell, and the
      // excerpt tells which without re-running the seed under a
      // debugger.
      size_t at = 0;
      while (at < bytes->size() && at < oracle.batch[slot].size() &&
             (*bytes)[at] == oracle.batch[slot][at]) {
        ++at;
      }
      auto excerpt = [at](const std::string& s) {
        const size_t from = at < 20 ? 0 : at - 20;
        std::string out;
        for (char c : s.substr(from, 60)) {
          out += (c == '\n' || c == '\t') ? '.' : c;
        }
        return out;
      };
      std::ostringstream what;
      what << "batch result differs from fault-free oracle (job "
           << ids[slot] << ": got " << bytes->size() << " bytes, oracle "
           << oracle.batch[slot].size() << "; first diff at byte " << at
           << ": got \"" << excerpt(*bytes) << "\" oracle \""
           << excerpt(oracle.batch[slot]) << "\")";
      report.Violation(what.str());
    }
    auto counts = CheckpointCounts(journal_path, ids[slot]);
    if (!counts.ok()) {
      report.Violation("journal unreadable: " + counts.status().ToString());
      continue;
    }
    if (counts->size() != info->chunks_done) {
      report.Violation("checkpoint coverage incomplete");
    }
    for (const auto& [chunk, count] : *counts) {
      if (count < 1) report.Violation("chunk with zero checkpoints");
      if (count > 1) {
        report.reexecuted_chunks += static_cast<size_t>(count - 1);
      }
    }
  }
  if (opt.enospc_only && report.reexecuted_chunks > 0) {
    report.Violation("ENOSPC-only run re-executed durable checkpoints");
  }
  if (opt.enospc_only && report.resubmits > 0) {
    report.Violation("ENOSPC-only run lost a submitted job");
  }

  // Journal replays cleanly: tears are repaired in-line (failed Append)
  // or at recovery, so a quiesced system never leaves one behind.
  if (auto replay = util::ReadJournal(journal_path); !replay.ok()) {
    report.Violation("final journal read failed: " +
                     replay.status().ToString());
  } else if (replay->truncated) {
    report.Violation("final journal has a torn tail");
  }

  // Interactive convergence: every query answers post-quiesce with the
  // oracle's exact bytes (through the result cache).
  for (size_t q = 0; q < workload.interactive_sql.size() && !timed_out;
       ++q) {
    auto rs = probe("physicist", workload.interactive_sql[q]);
    if (!rs.ok()) {
      report.Violation("interactive query failed post-quiesce: " +
                       rs.status().ToString());
      continue;
    }
    if (Canonical(*rs) != oracle.interactive[q]) {
      report.Violation("interactive result differs from oracle");
    }
    if (interactive_ok[q] && interactive[q] != oracle.interactive[q]) {
      report.Violation("mid-chaos interactive result differed from oracle");
    }
  }
  if (auto final_intruder = probe("intruder", "SELECT pt FROM ntuple_my_a1");
      final_intruder.status().code() != StatusCode::kPermissionDenied) {
    report.Violation("rbac: intruder not denied post-quiesce");
  }

  // ETL: finish every run faultlessly (idempotent — already-loaded chunks
  // dedupe via the target's chunk registry), then the mart must match the
  // oracle digest and the staging directory must be fully drained.
  for (size_t run = 0; run < opt.etl_runs; ++run) {
    auto stats = etl_attempt(run);
    if (!stats.ok()) {
      report.Violation("etl run failed post-quiesce: " +
                       stats.status().ToString());
    }
  }
  if (opt.etl_runs > 0) {
    if (auto digest = mart.ContentDigest("chaos_target");
        !digest.ok() || !(*digest == oracle.etl)) {
      report.Violation("etl mart content differs from oracle");
    }
  }
  {
    std::vector<std::string> leftovers;
    for (const auto& entry :
         std::filesystem::directory_iterator(staging_dir)) {
      leftovers.push_back(entry.path().filename().string());
    }
    if (!leftovers.empty()) {
      std::string what = "etl staging dir not drained:";
      for (const std::string& name : leftovers) what += " " + name;
      report.Violation(what);
    }
  }

  // Batch dir holds exactly the journal plus stage files of jobs this
  // harness submitted — an unknown file is a leak (tmp droppings, stage
  // files orphaned past recovery).
  for (const auto& entry : std::filesystem::directory_iterator(batch_dir)) {
    const std::string name = entry.path().filename().string();
    if (name == "batch_jobs.journal") continue;
    bool known = false;
    for (uint64_t id : all_ids_ever) {
      if (name == "job_" + std::to_string(id) + ".stage") {
        known = true;
        break;
      }
    }
    if (!known) report.Violation("orphaned file in batch dir: " + name);
  }

  mgr->Stop();
  report.fs_faults = fault_fs->counters();
  mgr.reset();
  bed.reset();
  util::SetFileSystem(prev_fs);
  report.wall_ms = wall.ElapsedMs();
  return report;
}

}  // namespace griddb::bench
