// Extension: restart-from-zero vs resume-from-checkpoint ETL recovery.
//
// A source -> mart transfer is interrupted by a target-host down-window
// that opens at a swept fraction of the run (early = during staging,
// late = most chunks already loaded). After the outage the job is rerun
// two ways: RESTART drops everything (fresh target, fresh run id, full
// re-stage + re-load), RESUME reruns with the same run id, so the
// manifest skips already-staged chunks and the target's chunk registry
// skips already-applied ones. The table reports the simulated cost of
// the recovery run for both strategies; the later the failure, the more
// work the checkpoint saves, while restart pays the full price every
// time.
#include <cstdio>
#include <filesystem>
#include <memory>

#include "bench/etl_common.h"
#include "griddb/net/fault.h"

using namespace griddb;

namespace {

constexpr char kStagingDir[] = "/tmp/griddb_bench_etl_resume";
constexpr size_t kEvents = 20000;
constexpr size_t kChunkRows = 1024;

struct Attempt {
  bool ok = false;
  warehouse::EtlStats stats;  ///< Valid when ok.
};

Attempt RunOnce(warehouse::EtlPipeline& pipeline,
                const bench::EtlWorkload& w, engine::Database* target,
                const std::string& run_id) {
  warehouse::EtlPipeline::Job job;
  job.source = w.source.get();
  job.source_host = "src-host";
  job.extract_sql = "SELECT event_id, run_id FROM events";
  job.target = target;
  job.target_host = "caltech-tier2";
  job.target_table = "fact_copy";
  job.create_target = true;
  job.transform = w.MakeDenormalizer();
  warehouse::EtlPipeline::ResumeOptions opts;
  opts.run_id = run_id;
  opts.chunk_rows = kChunkRows;
  Attempt attempt;
  auto stats = pipeline.RunResumable(job, opts);
  attempt.ok = stats.ok();
  if (stats.ok()) attempt.stats = *stats;
  return attempt;
}

}  // namespace

int main() {
  std::printf("=== Extension: ETL recovery, restart vs resume ===\n");
  std::printf("(%zu events, %zu rows/chunk, fault = target down-window "
              "opening at a fraction of the healthy run)\n\n",
              kEvents, kChunkRows);

  std::filesystem::remove_all(kStagingDir);
  const bench::EtlWorkload w = bench::MakeEtlWorkload(kEvents);

  // Healthy reference run: fixes the virtual-clock span of the job, which
  // the sweep's window placement is a fraction of.
  net::Network probe_net;
  for (const char* h : {"src-host", "cern-tier1", "caltech-tier2"}) {
    probe_net.AddHost(h);
  }
  probe_net.SetDefaultLink(net::LinkSpec::Lan100Mbps());
  warehouse::EtlPipeline probe_pipeline(
      &probe_net, net::ServiceCosts::Default(), warehouse::EtlCosts::Default(),
      "cern-tier1", kStagingDir);
  double clock_before = probe_net.NowMs();
  engine::Database probe_target("mart", sql::Vendor::kSqlite);
  Attempt healthy = RunOnce(probe_pipeline, w, &probe_target, "probe");
  if (!healthy.ok) {
    std::fprintf(stderr, "healthy reference run failed\n");
    return 1;
  }
  const double healthy_span = probe_net.NowMs() - clock_before;
  const size_t total_chunks = healthy.stats.chunks_total;
  std::printf("healthy run: %.1f simulated ms, %zu chunks, %.2f MB staged\n\n",
              healthy.stats.total_ms(), total_chunks,
              static_cast<double>(healthy.stats.staged_bytes) / 1e6);

  std::printf("%-10s %14s %14s %10s %12s %12s\n", "kill at", "restart (ms)",
              "resume (ms)", "saved", "recovered", "deduped");

  const double fractions[] = {0.15, 0.35, 0.55, 0.75, 0.85};
  bool resume_never_worse = true;
  double prev_resume = -1;
  bool savings_grow = true;
  for (double f : fractions) {
    // --- attempt 1 under fault, once per strategy ---------------------
    auto attempt_under_fault = [&](net::Network& network,
                                   warehouse::EtlPipeline& pipeline,
                                   engine::Database* target,
                                   const std::string& run_id) {
      auto plan = std::make_shared<net::FaultPlan>();
      plan->AddDownWindow("caltech-tier2", network.NowMs() + f * healthy_span,
                          1e18);
      network.InstallFaultPlan(plan);
      Attempt first = RunOnce(pipeline, w, target, run_id);
      network.InstallFaultPlan(nullptr);
      return first;
    };

    // RESTART: recovery discards the partial target and the run's
    // staging artifacts, then pays for the whole job again.
    net::Network restart_net;
    for (const char* h : {"src-host", "cern-tier1", "caltech-tier2"}) {
      restart_net.AddHost(h);
    }
    restart_net.SetDefaultLink(net::LinkSpec::Lan100Mbps());
    warehouse::EtlPipeline restart_pipeline(
        &restart_net, net::ServiceCosts::Default(),
        warehouse::EtlCosts::Default(), "cern-tier1", kStagingDir);
    auto broken = std::make_unique<engine::Database>("mart",
                                                     sql::Vendor::kSqlite);
    Attempt failed = attempt_under_fault(restart_net, restart_pipeline,
                                         broken.get(), "restart-" +
                                             std::to_string(int(f * 100)));
    if (failed.ok) {
      std::printf("%-10.2f window opened after the run finished; skipped\n",
                  f);
      continue;
    }
    auto fresh = std::make_unique<engine::Database>("mart",
                                                    sql::Vendor::kSqlite);
    Attempt restart = RunOnce(restart_pipeline, w, fresh.get(),
                              "restart2-" + std::to_string(int(f * 100)));

    // RESUME: same run id, same target; manifest + chunk registry carry
    // the checkpoint.
    net::Network resume_net;
    for (const char* h : {"src-host", "cern-tier1", "caltech-tier2"}) {
      resume_net.AddHost(h);
    }
    resume_net.SetDefaultLink(net::LinkSpec::Lan100Mbps());
    warehouse::EtlPipeline resume_pipeline(
        &resume_net, net::ServiceCosts::Default(),
        warehouse::EtlCosts::Default(), "cern-tier1", kStagingDir);
    engine::Database resumed_target("mart", sql::Vendor::kSqlite);
    const std::string resume_id = "resume-" + std::to_string(int(f * 100));
    Attempt failed2 = attempt_under_fault(resume_net, resume_pipeline,
                                          &resumed_target, resume_id);
    Attempt resume = RunOnce(resume_pipeline, w, &resumed_target, resume_id);

    if (!restart.ok || !resume.ok || failed2.ok) {
      std::fprintf(stderr, "recovery run failed at fraction %.2f\n", f);
      return 1;
    }
    if (resumed_target.RowCount("fact_copy") !=
        fresh->RowCount("fact_copy")) {
      std::fprintf(stderr, "row-count divergence at fraction %.2f\n", f);
      return 1;
    }
    double saved = restart.stats.total_ms() - resume.stats.total_ms();
    std::printf("%-10.2f %14.1f %14.1f %9.1f%% %12zu %12zu\n", f,
                restart.stats.total_ms(), resume.stats.total_ms(),
                100.0 * saved / restart.stats.total_ms(),
                resume.stats.chunks_recovered, resume.stats.chunks_deduped);
    if (resume.stats.total_ms() > restart.stats.total_ms() * 1.001) {
      resume_never_worse = false;
    }
    if (prev_resume >= 0 && resume.stats.total_ms() > prev_resume * 1.05) {
      savings_grow = false;  // later kills must not cost more to resume
    }
    prev_resume = resume.stats.total_ms();
  }

  std::filesystem::remove_all(kStagingDir);
  std::printf("\nshape check: resume never costlier than restart: %s; "
              "resume cost non-increasing with later kills: %s\n",
              resume_never_worse ? "yes" : "NO", savings_grow ? "yes" : "NO");
  return (resume_never_worse && savings_grow) ? 0 : 1;
}
