// Shared setup for the Figure 4/5 ETL benches: normalized ntuple sources,
// an Oracle warehouse with the denormalized star schema, and the
// denormalizing row transform the extraction applies.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "griddb/ntuple/ntuple.h"
#include "griddb/warehouse/etl.h"
#include "griddb/warehouse/materialize.h"
#include "griddb/warehouse/warehouse.h"

namespace griddb::bench {

struct EtlWorkload {
  std::unique_ptr<engine::Database> source;     // normalized MySQL source
  std::unique_ptr<warehouse::DataWarehouse> wh; // Oracle star schema
  ntuple::Ntuple nt{std::vector<std::string>{}};
  std::vector<ntuple::RunInfo> runs;

  /// Denormalizing transform: (event_id, run_id) -> the wide fact row,
  /// looking the variables and detector up in memory (the T of ETL).
  warehouse::RowTransform MakeDenormalizer() const {
    std::map<int64_t, const ntuple::NtupleEvent*> by_id;
    for (const ntuple::NtupleEvent& event : nt.events()) {
      by_id[event.event_id] = &event;
    }
    std::map<int64_t, std::string> detector;
    for (const ntuple::RunInfo& run : runs) detector[run.run_id] = run.detector;
    return [by_id, detector](const storage::Row& row)
               -> Result<storage::Row> {
      GRIDDB_ASSIGN_OR_RETURN(int64_t event_id, row[0].AsInt64());
      GRIDDB_ASSIGN_OR_RETURN(int64_t run_id, row[1].AsInt64());
      auto it = by_id.find(event_id);
      if (it == by_id.end()) {
        return NotFound("event " + std::to_string(event_id) +
                        " missing from ntuple");
      }
      storage::Row out;
      out.reserve(3 + it->second->values.size());
      out.push_back(storage::Value(event_id));
      out.push_back(storage::Value(run_id));
      auto det = detector.find(run_id);
      out.push_back(det == detector.end()
                        ? storage::Value::Null()
                        : storage::Value(det->second));
      for (double v : it->second->values) out.push_back(storage::Value(v));
      return out;
    };
  }
};

inline EtlWorkload MakeEtlWorkload(size_t num_events, uint64_t seed = 2005) {
  EtlWorkload w;
  ntuple::GeneratorOptions gen;
  gen.num_events = num_events;
  gen.nvar = 8;
  gen.seed = seed;
  w.nt = ntuple::GenerateNtuple(gen);
  w.runs = ntuple::GenerateRuns(gen);
  w.source = std::make_unique<engine::Database>("src_mysql",
                                                sql::Vendor::kMySql);
  if (!ntuple::CreateNormalizedSchema(*w.source).ok()) std::abort();
  if (!ntuple::LoadNormalized(w.nt, w.runs, *w.source).ok()) std::abort();
  w.wh = std::make_unique<warehouse::DataWarehouse>("warehouse", "cern-tier1");
  warehouse::StarSchemaSpec star;
  star.fact = ntuple::DenormalizedSchema(w.nt, "fact_event");
  star.dimensions.push_back(
      {storage::TableSchema(
           "dim_run", {{"run_id", storage::DataType::kInt64, true, true},
                       {"detector", storage::DataType::kString, true, false}}),
       "run_id"});
  if (!w.wh->DefineStarSchema(star).ok()) std::abort();
  return w;
}

}  // namespace griddb::bench
