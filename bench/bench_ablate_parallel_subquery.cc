// Ablation A2: parallel vs serial sub-query execution.
//
// The paper's driver enhancement over baseline Unity runs the decomposed
// sub-queries concurrently. This bench compares the two modes on the same
// federation as the number of involved databases grows; the parallel
// advantage should widen with the fan-out.
#include <cstdio>

#include "bench/testbed.h"

using namespace griddb;

namespace {

double Measure(core::JClarensServer& server, const std::string& sql) {
  core::QueryStats stats;
  auto rs = server.service().Query(sql, &stats);
  if (!rs.ok()) {
    std::fprintf(stderr, "query failed: %s\n", rs.status().ToString().c_str());
    std::exit(1);
  }
  return stats.simulated_ms;
}

std::string JoinOverChunks(int k) {
  // k chunk tables, one per database, joined on id. All six databases are
  // locally registered on server A in the serial/parallel comparison, so
  // this isolates sub-query execution without RLS effects.
  const char* chunks[] = {"chunk_my_a1_0", "chunk_ms_a1_0", "chunk_my_a2_0",
                          "chunk_my_b1_0", "chunk_ms_b1_0", "chunk_ms_b2_0"};
  std::string sql = "SELECT t0.id FROM ";
  sql += chunks[0];
  sql += " t0";
  for (int i = 1; i < k; ++i) {
    sql += " JOIN " + std::string(chunks[i]) + " t" + std::to_string(i) +
           " ON t0.id = t" + std::to_string(i) + ".id";
  }
  return sql;
}

std::unique_ptr<bench::Testbed> BuildAllLocal(bool parallel) {
  bench::TestbedOptions options;
  options.main_table_rows = 6000;  // smaller: this bench probes fan-out
  options.chunk_tables = 60;
  options.parallel_subqueries = parallel;
  auto bed = bench::Testbed::Build(options);
  // Register *all* databases with server A so fan-out stays single-server.
  for (const auto& db : bed->databases) {
    std::string host = db->name().find("_a") != std::string::npos
                           ? "pentium4-a"
                           : "pentium4-b";
    std::string conn = std::string(sql::VendorName(db->vendor())) + "://" +
                       host + "/" + db->name();
    if (db->name().find("_b") != std::string::npos) {
      (void)bed->server_a->service().RegisterLiveDatabase(conn, "");
    }
  }
  return bed;
}

}  // namespace

int main() {
  std::printf("=== Ablation A2: parallel vs serial sub-queries ===\n");
  auto parallel_bed = BuildAllLocal(true);
  auto serial_bed = BuildAllLocal(false);

  std::printf("%-12s %14s %14s %10s\n", "databases", "serial (ms)",
              "parallel (ms)", "speedup");
  bool widening = true;
  double prev_speedup = 0;
  for (int k = 2; k <= 6; ++k) {
    std::string sql = JoinOverChunks(k);
    double serial_ms = Measure(*serial_bed->server_a, sql);
    double parallel_ms = Measure(*parallel_bed->server_a, sql);
    double speedup = serial_ms / parallel_ms;
    std::printf("%-12d %14.1f %14.1f %9.2fx\n", k, serial_ms, parallel_ms,
                speedup);
    if (speedup < prev_speedup - 0.05) widening = false;
    prev_speedup = speedup;
  }
  std::printf("\nshape check: parallel speedup non-decreasing with fan-out: "
              "%s\n",
              widening ? "yes" : "NO");
  return widening ? 0 : 1;
}
