// Extension: fault tolerance under injected network faults.
//
// The paper's testbed assumed a healthy 100 Mbps LAN; a grid deployment
// does not get that luxury. This bench sweeps a per-message fault
// probability over the 2-server / 6-database testbed and measures what
// the retry + failover machinery buys: success rate, p50/p99 simulated
// response time, and the mean number of retries spent per query.
//
// Faults are drawn from a seeded plan (deterministic per sweep point):
// the budget p splits 40% dropped messages, 40% corrupted messages and
// 20% delayed messages (+5 simulated ms). The 0% row doubles as the
// zero-cost check: with no faults firing, the numbers match the
// fault-free Table-1 testbed.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/testbed.h"
#include "griddb/util/stopwatch.h"

using namespace griddb;

namespace {

constexpr int kQueriesPerLevel = 50;

// The Table-1 two-server row: a 4-table join that crosses both hosts, so
// every leg (client->A, A->RLS, A->B, mart shipments) sees the faults.
constexpr char kQuery[] =
    "SELECT a.id, a.value, b.value, c.value, d.value "
    "FROM chunk_my_a1_0 a JOIN chunk_ms_a1_0 b ON a.id = b.id "
    "JOIN chunk_my_b1_0 c ON a.id = c.id "
    "JOIN chunk_ms_b1_0 d ON a.id = d.id";

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  index = std::min(index, sorted.size() - 1);
  return sorted[index];
}

}  // namespace

int main() {
  std::printf("=== Extension: fault tolerance under injected faults ===\n");
  bench::TestbedOptions options;
  options.retry_policy.max_attempts = 4;
  options.retry_policy.attempt_timeout_ms = 5000.0;
  std::printf("building testbed (2 servers, 6 databases)...\n");
  Stopwatch build_watch;
  auto bed = bench::Testbed::Build(options);
  std::printf("testbed ready in %.1f s: %zu tables, %zu rows\n",
              build_watch.ElapsedSeconds(), bed->total_tables, bed->total_rows);
  std::printf("retry policy: %d attempts, %.0f ms attempt deadline, "
              "%.0f ms initial backoff\n\n",
              options.retry_policy.max_attempts,
              options.retry_policy.attempt_timeout_ms,
              options.retry_policy.initial_backoff_ms);

  rpc::RpcClient client(&bed->transport, "client",
                        "clarens://pentium4-a:8080/clarens");
  client.set_retry_policy(options.retry_policy);
  (void)client.Call("dataaccess.listTables", {}, nullptr);

  std::printf("%-8s %9s %12s %12s %14s %8s %8s\n", "fault%", "success",
              "p50 (ms)", "p99 (ms)", "retries/query", "drops", "corrupt");
  for (int level = 0; level <= 30; level += 5) {
    const double p = static_cast<double>(level) / 100.0;
    auto plan = std::make_shared<net::FaultPlan>(2005 + level);
    net::LinkFaultSpec spec;
    spec.drop_probability = 0.4 * p;
    spec.corrupt_probability = 0.4 * p;
    spec.delay_probability = 0.2 * p;
    spec.delay_ms = 5.0;
    plan->SetDefaultLinkFaults(spec);
    bed->network.InstallFaultPlan(plan);  // resets injection counters

    int successes = 0;
    size_t retries = 0;
    std::vector<double> times;
    for (int i = 0; i < kQueriesPerLevel; ++i) {
      net::Cost cost;
      rpc::CallStats call_stats;
      rpc::XmlRpcArray params;
      params.emplace_back(kQuery);
      auto response = client.Call("dataaccess.query", std::move(params),
                                  &cost, 0, "", &call_stats);
      retries += static_cast<size_t>(call_stats.retries);
      if (!response.ok()) continue;
      ++successes;
      times.push_back(cost.total_ms());
      auto stats_member = response->Member("stats");
      if (stats_member.ok()) {
        retries += core::StatsFromRpc(**stats_member).retries;
      }
    }
    std::sort(times.begin(), times.end());
    net::FaultCounters counters = bed->network.fault_counters();
    std::printf("%-8d %8.0f%% %12.1f %12.1f %14.2f %8zu %8zu\n", level,
                100.0 * successes / kQueriesPerLevel, Percentile(times, 0.50),
                Percentile(times, 0.99),
                static_cast<double>(retries) / kQueriesPerLevel,
                counters.drops, counters.corruptions);
  }
  std::printf("\nnote: the 0%% row is the fault-free baseline — it must "
              "match the Table-1 two-server response time.\n");
  return 0;
}
