// Figure 4 (paper §5.1): Data extracted from source databases and loaded
// into the data warehouse.
//
// Two curves vs transferred data size: the lower one is extraction
// (source query + denormalizing transform + write to the temporary
// staging file), the upper one is loading (read the staging file, ship to
// the warehouse over the 100 Mbps LAN, insert + commit). Both are linear
// in the byte volume; loading sits above extraction because of the
// per-row insert and commit overheads — the same two-line shape the
// paper plots.
#include <cstdio>

#include "bench/etl_common.h"
#include "griddb/util/stopwatch.h"

using namespace griddb;

int main() {
  std::printf("=== Figure 4: source -> warehouse ETL (staged) ===\n");
  net::Network network;
  for (const char* h : {"src-host", "cern-tier1"}) network.AddHost(h);
  network.SetDefaultLink(net::LinkSpec::Lan100Mbps());

  const size_t event_counts[] = {2000, 5000, 10000, 20000, 40000, 80000};

  std::printf("%-10s %10s %14s %12s %12s %10s\n", "events", "size (MB)",
              "extract (s)", "load (s)", "total (s)", "cpu (ms)");
  double prev_extract = 0, prev_mb = 0;
  bool monotone = true, load_above = true;
  for (size_t n : event_counts) {
    bench::EtlWorkload w = bench::MakeEtlWorkload(n);
    warehouse::EtlPipeline pipeline(
        &network, net::ServiceCosts::Default(), warehouse::EtlCosts::Default(),
        "cern-tier1", "/tmp/griddb_bench_fig4");

    warehouse::EtlPipeline::Job job;
    job.source = w.source.get();
    job.source_host = "src-host";
    job.extract_sql = "SELECT event_id, run_id FROM events";
    job.target = &w.wh->db();
    job.target_host = "cern-tier1";
    job.target_table = "fact_event";
    job.transform = w.MakeDenormalizer();

    Stopwatch wall;
    auto stats = pipeline.Run(job);
    if (!stats.ok()) {
      std::fprintf(stderr, "ETL failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    double mb = static_cast<double>(stats->staged_bytes) / 1e6;
    std::printf("%-10zu %10.2f %14.3f %12.3f %12.3f %10.1f\n", n, mb,
                stats->extract_ms / 1000.0, stats->load_ms / 1000.0,
                stats->total_ms() / 1000.0, wall.ElapsedMs());
    if (stats->load_ms <= stats->extract_ms * 0.9) load_above = false;
    if (mb > prev_mb && stats->extract_ms < prev_extract) monotone = false;
    prev_extract = stats->extract_ms;
    prev_mb = mb;
  }
  std::printf("\nshape check: load curve above extract curve: %s; "
              "time monotone in size: %s\n",
              load_above ? "yes" : "NO", monotone ? "yes" : "NO");
  return (load_above && monotone) ? 0 : 1;
}
