// Extension: multi-tenant isolation under an antagonist scan storm.
//
// Two tenants share one admission-enabled testbed server: "atlas" (the
// victim) runs a closed loop of interactive aggregations, while "cms"
// (the antagonist) floods the server with scan-class queries from 6x as
// many threads. Three scenarios are measured:
//
//   solo    — the victim alone (baseline);
//   iso_on  — victim + antagonist with per-tenant lanes (weighted DRR,
//             victim min-reserved slots);
//   iso_off — victim + antagonist on the PR 5 single shared lane.
//
// Like the overload bench, serve cost is measured as per-thread CPU
// time: the whole federation is simulated inside one process, so on an
// oversubscribed host wall-clock victim latency measures the kernel
// dividing cores among 14 bench threads — contention the admission
// scheduler does not control. Per-query CPU time is the faithful proxy
// for what isolation promises: the antagonist must not add WORK to a
// victim query (shed-absorbing retry loops, re-offered requests). Wall
// clock is still compared between iso_on and iso_off, where the thread
// mix is identical.
//
// Acceptance (see EXPERIMENTS.md):
//   - with isolation ON the victim's per-query CPU stays within 1.5x of
//     solo and it is NEVER shed — its private lane absorbs the storm
//     (on an unloaded multi-core host its wall-clock goodput also lands
//     within ~10% of solo; both ratios are reported in the JSON);
//   - with isolation OFF the same storm leaks into the victim as sheds,
//     and its wall-clock goodput is materially worse than with
//     isolation ON — the lanes, not the slots, provide the protection;
//   - the antagonist still makes progress in its own lane (the
//     scheduler is work-conserving, not a static partition);
//   - the victim never sees an error other than a hinted shed.
// Emits machine-readable BENCH_tenant_isolation.json (path = argv[1]).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/testbed.h"
#include "griddb/util/stopwatch.h"

using namespace griddb;

namespace {

// Same shape as the overload bench: a real scan + aggregation inside the
// ticketed execution window, a one-row response on the wire.
const char* kWorkload =
    "SELECT COUNT(*) AS n, AVG(pt) AS avg_pt, MAX(e_total) AS max_e "
    "FROM ntuple_my_a1 WHERE pt > 0.1";

constexpr size_t kSlots = 4;   // admission.max_concurrent
constexpr size_t kQueue = 4;   // admission.max_queued (per lane when on)
constexpr size_t kVictimThreads = 2;
constexpr int kVictimQueries = 30;  // per victim thread, retried until served
constexpr size_t kAntagonistThreads = 12;
constexpr int kMaxRetries = 200;

// Per-thread CPU milliseconds consumed so far (scheduler-independent).
double ThreadCpuMs() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(values.size()));
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

struct Scenario {
  std::string name;
  size_t victim_served = 0;
  size_t victim_sheds = 0;   // hinted rejects absorbed by the retry loop
  size_t victim_errors = 0;  // anything that is not served or properly shed
  double victim_goodput_qps = 0;
  double victim_real_ms_p50 = 0;
  double victim_real_ms_p99 = 0;
  double victim_cpu_ms_p50 = 0;  // per served query, incl. its retries
  size_t antagonist_served = 0;
  size_t antagonist_sheds = 0;
  double wall_ms = 0;
};

Scenario RunScenario(bench::Testbed& bed, const std::string& name,
                     bool with_antagonist) {
  Scenario out;
  out.name = name;

  std::atomic<bool> stop{false};
  std::atomic<size_t> ant_served{0};
  std::atomic<size_t> ant_sheds{0};
  std::vector<std::thread> antagonists;
  if (with_antagonist) {
    for (size_t t = 0; t < kAntagonistThreads; ++t) {
      antagonists.emplace_back([&] {
        rpc::RpcClient client(&bed.transport, "client",
                              "clarens://pentium4-a:8080/clarens");
        client.set_tenant("cms");
        while (!stop.load()) {
          rpc::XmlRpcArray params;
          params.emplace_back(std::string(kWorkload));
          params.emplace_back(std::string("scan"));
          auto response =
              client.Call("dataaccess.query", std::move(params), nullptr);
          if (response.ok()) {
            ant_served.fetch_add(1);
          } else {
            ant_sheds.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
      });
    }
  }

  std::mutex mu;
  std::vector<double> real_ms;
  std::vector<double> cpu_ms;
  std::atomic<size_t> victim_served{0};
  std::atomic<size_t> victim_sheds{0};
  std::atomic<size_t> victim_errors{0};

  Stopwatch wall;
  std::vector<std::thread> victims;
  for (size_t t = 0; t < kVictimThreads; ++t) {
    victims.emplace_back([&] {
      rpc::RpcClient client(&bed.transport, "client",
                            "clarens://pentium4-a:8080/clarens");
      client.set_tenant("atlas");
      std::vector<double> local_real, local_cpu;
      for (int q = 0; q < kVictimQueries; ++q) {
        // Closed loop with retry-until-served: shed absorption shows up
        // as added latency AND added CPU, so both metrics reflect
        // everything the antagonist costs this query.
        Stopwatch call;
        const double cpu_before = ThreadCpuMs();
        bool served = false;
        for (int attempt = 0; attempt < kMaxRetries && !served; ++attempt) {
          rpc::XmlRpcArray params;
          params.emplace_back(std::string(kWorkload));
          auto response =
              client.Call("dataaccess.query", std::move(params), nullptr);
          if (response.ok()) {
            served = true;
          } else if (response.status().code() ==
                         StatusCode::kResourceExhausted &&
                     rpc::RetryAfterHintMs(response.status().message()) > 0) {
            victim_sheds.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          } else {
            victim_errors.fetch_add(1);
            std::fprintf(stderr, "victim failure: %s\n",
                         response.status().ToString().c_str());
            break;
          }
        }
        if (served) {
          victim_served.fetch_add(1);
          local_real.push_back(call.ElapsedMs());
          local_cpu.push_back(ThreadCpuMs() - cpu_before);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      real_ms.insert(real_ms.end(), local_real.begin(), local_real.end());
      cpu_ms.insert(cpu_ms.end(), local_cpu.begin(), local_cpu.end());
    });
  }
  for (std::thread& victim : victims) victim.join();
  out.wall_ms = wall.ElapsedMs();
  stop.store(true);
  for (std::thread& antagonist : antagonists) antagonist.join();

  out.victim_served = victim_served.load();
  out.victim_sheds = victim_sheds.load();
  out.victim_errors = victim_errors.load();
  out.victim_goodput_qps =
      out.wall_ms > 0 ? out.victim_served / (out.wall_ms / 1000.0) : 0;
  out.victim_real_ms_p50 = Percentile(real_ms, 0.50);
  out.victim_real_ms_p99 = Percentile(real_ms, 0.99);
  out.victim_cpu_ms_p50 = Percentile(cpu_ms, 0.50);
  out.antagonist_served = ant_served.load();
  out.antagonist_sheds = ant_sheds.load();
  return out;
}

std::unique_ptr<bench::Testbed> BuildBed(bool tenant_isolation) {
  bench::TestbedOptions options;
  options.main_table_rows = 60000;  // 10,000 rows in the aggregated table
  options.chunk_tables = 60;
  options.admission.max_concurrent = kSlots;
  options.admission.max_queued = kQueue;
  options.admission.retry_after_ms = 50.0;
  if (tenant_isolation) {
    options.admission.tenant_isolation = true;
    core::TenantQuota atlas;
    atlas.tenant = "atlas";
    atlas.weight = 3.0;
    atlas.min_reserved = 2;
    core::TenantQuota cms;
    cms.tenant = "cms";
    cms.weight = 1.0;
    options.admission.tenant_quotas = {atlas, cms};
  }
  // RBAC is live on the hot path (plan-time checks run per query); both
  // tenants hold wildcard grants, so the bench measures scheduling, not
  // denials.
  options.rbac = std::make_shared<core::RbacCatalog>();
  for (const char* user :
       {core::RbacCatalog::kAnonymousTenant, "atlas", "cms"}) {
    if (!options.rbac->CreateUser(user).ok()) std::abort();
    if (!options.rbac->GrantTable(user, core::RbacCatalog::kAllTables).ok()) {
      std::abort();
    }
  }
  return bench::Testbed::Build(options);
}

void PrintScenario(const Scenario& s) {
  std::printf("%-8s victim: served=%zu sheds=%zu errors=%zu "
              "goodput=%.1f q/s p50=%.2f ms p99=%.2f ms cpu_p50=%.3f ms | "
              "antagonist: served=%zu sheds=%zu\n",
              s.name.c_str(), s.victim_served, s.victim_sheds,
              s.victim_errors, s.victim_goodput_qps, s.victim_real_ms_p50,
              s.victim_real_ms_p99, s.victim_cpu_ms_p50, s.antagonist_served,
              s.antagonist_sheds);
}

void WriteScenario(FILE* f, const Scenario& s, const char* suffix) {
  std::fprintf(f,
               "    {\"scenario\": \"%s\", \"victim_served\": %zu, "
               "\"victim_sheds\": %zu, \"victim_errors\": %zu, "
               "\"victim_goodput_qps\": %.2f, \"victim_real_ms_p50\": %.3f, "
               "\"victim_real_ms_p99\": %.3f, \"victim_cpu_ms_p50\": %.4f, "
               "\"antagonist_served\": %zu, \"antagonist_sheds\": %zu, "
               "\"wall_ms\": %.1f}%s\n",
               s.name.c_str(), s.victim_served, s.victim_sheds,
               s.victim_errors, s.victim_goodput_qps, s.victim_real_ms_p50,
               s.victim_real_ms_p99, s.victim_cpu_ms_p50, s.antagonist_served,
               s.antagonist_sheds, s.wall_ms, suffix);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_tenant_isolation.json";

  std::printf("=== Extension: per-tenant isolation vs an antagonist scan "
              "storm ===\n");
  std::printf("building testbeds (%zu slots, %zu queue, victim %zux%d "
              "queries, antagonist %zu threads)...\n",
              kSlots, kQueue, kVictimThreads, kVictimQueries,
              kAntagonistThreads);
  auto bed_on = BuildBed(/*tenant_isolation=*/true);
  auto bed_off = BuildBed(/*tenant_isolation=*/false);

  Scenario solo = RunScenario(*bed_on, "solo", /*with_antagonist=*/false);
  PrintScenario(solo);
  Scenario iso_on = RunScenario(*bed_on, "iso_on", /*with_antagonist=*/true);
  PrintScenario(iso_on);
  Scenario iso_off =
      RunScenario(*bed_off, "iso_off", /*with_antagonist=*/true);
  PrintScenario(iso_off);

  // Per-lane accounting from the server under isolation.
  for (const auto& lane : bed_on->server_a->service().admission().lane_stats()) {
    std::printf("lane '%s': weight=%.2f min_reserved=%zu admitted=%llu "
                "shed=%llu\n",
                lane.tenant.empty() ? "anonymous" : lane.tenant.c_str(),
                lane.weight, lane.min_reserved,
                static_cast<unsigned long long>(lane.admitted),
                static_cast<unsigned long long>(lane.shed));
  }

  const double cpu_ratio_on =
      solo.victim_cpu_ms_p50 > 0
          ? iso_on.victim_cpu_ms_p50 / solo.victim_cpu_ms_p50
          : 0;
  const double goodput_ratio_on =
      solo.victim_goodput_qps > 0
          ? iso_on.victim_goodput_qps / solo.victim_goodput_qps
          : 0;
  const double goodput_on_vs_off =
      iso_off.victim_goodput_qps > 0
          ? iso_on.victim_goodput_qps / iso_off.victim_goodput_qps
          : 0;

  std::printf("\nvictim per-query cpu: solo=%.3f ms, iso_on=%.3f ms "
              "(%.2fx)\n",
              solo.victim_cpu_ms_p50, iso_on.victim_cpu_ms_p50,
              cpu_ratio_on);
  std::printf("victim goodput: solo=%.1f q/s, iso_on=%.1f q/s (%.0f%% — "
              "wall-clock, depressed by core oversubscription), "
              "iso_off=%.1f q/s (on/off = %.1fx)\n",
              solo.victim_goodput_qps, iso_on.victim_goodput_qps,
              goodput_ratio_on * 100, iso_off.victim_goodput_qps,
              goodput_on_vs_off);

  bool ok = true;
  if (cpu_ratio_on > 1.5) {
    std::fprintf(stderr,
                 "FAIL: victim per-query cpu under isolation is %.2fx solo "
                 "(> 1.5x) — the antagonist is adding work to victim "
                 "queries\n",
                 cpu_ratio_on);
    ok = false;
  }
  if (iso_on.victim_sheds > 0) {
    std::fprintf(stderr,
                 "FAIL: victim was shed %zu times under isolation — the "
                 "antagonist's storm leaked into the victim's lane\n",
                 iso_on.victim_sheds);
    ok = false;
  }
  if (iso_off.victim_sheds == 0) {
    std::fprintf(stderr,
                 "FAIL: victim was never shed with isolation OFF — the "
                 "antagonist is not actually saturating the shared lane, "
                 "so the comparison is vacuous\n");
    ok = false;
  }
  if (iso_on.antagonist_served == 0) {
    std::fprintf(stderr, "FAIL: antagonist served nothing under isolation — "
                         "the scheduler is starving its lane, not bounding "
                         "it\n");
    ok = false;
  }
  if (goodput_on_vs_off < 1.2) {
    std::fprintf(stderr,
                 "FAIL: isolation on (%.1f q/s) is not materially better "
                 "than off (%.1f q/s)\n",
                 iso_on.victim_goodput_qps, iso_off.victim_goodput_qps);
    ok = false;
  }
  if (iso_on.victim_errors + iso_off.victim_errors + solo.victim_errors > 0) {
    std::fprintf(stderr, "FAIL: victim saw non-shed errors\n");
    ok = false;
  }
  const size_t expected =
      kVictimThreads * static_cast<size_t>(kVictimQueries);
  if (iso_on.victim_served < expected) {
    std::fprintf(stderr,
                 "FAIL: victim completed %zu of %zu queries under "
                 "isolation — retries exhausted\n",
                 iso_on.victim_served, expected);
    ok = false;
  }

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"tenant_isolation\",\n");
    std::fprintf(f, "  \"slots\": %zu,\n  \"queue\": %zu,\n", kSlots, kQueue);
    std::fprintf(f, "  \"victim_threads\": %zu,\n  \"antagonist_threads\": "
                 "%zu,\n",
                 kVictimThreads, kAntagonistThreads);
    std::fprintf(f, "  \"scenarios\": [\n");
    WriteScenario(f, solo, ",");
    WriteScenario(f, iso_on, ",");
    WriteScenario(f, iso_off, "");
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"victim_cpu_ratio_on\": %.4f,\n", cpu_ratio_on);
    std::fprintf(f, "  \"victim_goodput_ratio_on\": %.4f,\n",
                 goodput_ratio_on);
    std::fprintf(f, "  \"victim_goodput_on_vs_off\": %.4f,\n",
                 goodput_on_vs_off);
    std::fprintf(f, "  \"pass\": %s\n}\n", ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    ok = false;
  }

  return ok ? 0 : 1;
}
