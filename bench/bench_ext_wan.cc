// Extension (paper §6 future work): "we will be testing the system for
// query distribution on geographically distributed databases in order to
// measure its performance over wide area networks."
//
// The Table-1 scenarios re-run with the inter-server link swapped from
// the 100 Mbps LAN to a transatlantic WAN (45 ms one-way, 10 Mbps), for
// three result sizes. Shape expectations: the local row is untouched;
// the one-server distributed row barely moves (no WAN crossing); the
// two-server row absorbs the WAN round trips, and its penalty grows with
// the rows shipped.
#include <cstdio>

#include "bench/testbed.h"

using namespace griddb;

namespace {

double Measure(bench::Testbed& bed, const std::string& sql) {
  rpc::RpcClient client(&bed.transport, "client",
                        "clarens://pentium4-a:8080/clarens");
  (void)client.Call("dataaccess.listTables", {}, nullptr);  // warm session
  net::Cost cost;
  rpc::XmlRpcArray params;
  params.emplace_back(sql);
  auto response = client.Call("dataaccess.query", std::move(params), &cost);
  if (!response.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 response.status().ToString().c_str());
    std::exit(1);
  }
  return cost.total_ms();
}

}  // namespace

int main() {
  std::printf("=== Extension: distributed queries over a WAN ===\n");
  bench::TestbedOptions options;
  options.main_table_rows = 30000;
  options.chunk_tables = 60;

  struct Scenario {
    const char* label;
    std::string sql;
  };
  const Scenario scenarios[] = {
      {"local, 1 table", "SELECT id, value FROM chunk_my_a1_0"},
      {"distributed, 1 server",
       "SELECT a.id, b.value FROM chunk_my_a1_0 a "
       "JOIN chunk_ms_a1_0 b ON a.id = b.id"},
      {"distributed, 2 servers",
       "SELECT a.id, c.value FROM chunk_my_a1_0 a "
       "JOIN chunk_my_b1_0 c ON a.id = c.id"},
      {"2 servers, 1000 ntuple rows",
       "SELECT event_id, e_total, pt FROM ntuple_my_b1 LIMIT 1000"},
  };

  // LAN baseline.
  auto lan = bench::Testbed::Build(options);
  // WAN variant: pentium4-a <-> pentium4-b and a <-> rls cross the ocean.
  auto wan = bench::Testbed::Build(options);
  (void)wan->network.SetLink("pentium4-a", "pentium4-b", net::LinkSpec::Wan());
  (void)wan->network.SetLink("pentium4-a", "rls-host", net::LinkSpec::Wan());

  std::printf("%-30s %12s %12s %10s\n", "scenario", "LAN (ms)", "WAN (ms)",
              "penalty");
  double penalties[4];
  int i = 0;
  for (const Scenario& s : scenarios) {
    double lan_ms = Measure(*lan, s.sql);
    double wan_ms = Measure(*wan, s.sql);
    penalties[i++] = wan_ms / lan_ms;
    std::printf("%-30s %12.1f %12.1f %9.2fx\n", s.label, lan_ms, wan_ms,
                wan_ms / lan_ms);
  }

  bool shape_ok = penalties[0] < 1.05 &&   // local untouched
                  penalties[1] < 1.05 &&   // same-host distribution untouched
                  penalties[2] > 1.05 &&   // cross-server pays the WAN
                  penalties[3] > penalties[2];  // and more with more rows
  std::printf("\nshape check: WAN penalty only on cross-server paths and "
              "growing with shipped rows: %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
