// Extension (paper §6 future work): "we will be testing the system for
// query distribution on geographically distributed databases in order to
// measure its performance over wide area networks."
//
// Two parts:
//
//  1. Shape check — the Table-1 scenarios re-run with the inter-server
//     link swapped from the 100 Mbps LAN to a transatlantic WAN (45 ms
//     one-way, 10 Mbps). The local row is untouched; the one-server
//     distributed row barely moves (no WAN crossing); the two-server row
//     absorbs the WAN round trips, and its penalty grows with the rows
//     shipped.
//
//  2. Codec sweep — the client itself moves across the WAN and pulls a
//     wide ntuple result at increasing LIMIT sizes over both wire
//     codecs (plain XML-RPC vs the negotiated binary frames from
//     rpc/wire.h), producing a transfer-time-vs-bytes curve in the
//     spirit of Fig 4. Gates: the binary codec moves >= 3x fewer wire
//     bytes and finishes the response leg >= 2x faster on the largest
//     shape, the streamed path delivers its first chunk before the full
//     result lands, and fault-free XML-RPC responses stay byte-identical
//     to the pre-binary tree-writer encoder. Results land in
//     BENCH_wire.json (or argv[1]).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/testbed.h"
#include "griddb/rpc/wire.h"
#include "griddb/xml/xml.h"

using namespace griddb;

namespace {

double Measure(bench::Testbed& bed, const std::string& sql) {
  rpc::RpcClient client(&bed.transport, "client",
                        "clarens://pentium4-a:8080/clarens");
  (void)client.Call("dataaccess.listTables", {}, nullptr);  // warm session
  net::Cost cost;
  rpc::XmlRpcArray params;
  params.emplace_back(sql);
  auto response = client.Call("dataaccess.query", std::move(params), &cost);
  if (!response.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 response.status().ToString().c_str());
    std::exit(1);
  }
  return cost.total_ms();
}

// One sweep point: the same wide query over one codec.
struct CodecRun {
  double total_ms = 0;
  size_t response_bytes = 0;
  double transfer_ms = 0;
  int streamed_chunks = 0;
  double first_chunk_ms = -1;
};

CodecRun RunQuery(rpc::RpcClient& client, const std::string& sql) {
  net::Cost cost;
  rpc::CallStats stats;
  rpc::XmlRpcArray params;
  params.emplace_back(sql);
  auto response = client.Call("dataaccess.query", std::move(params), &cost, 0,
                              "", &stats);
  if (!response.ok()) {
    std::fprintf(stderr, "sweep query failed: %s\n",
                 response.status().ToString().c_str());
    std::exit(1);
  }
  CodecRun run;
  run.total_ms = cost.total_ms();
  run.response_bytes = stats.response_bytes;
  run.transfer_ms = stats.response_transfer_ms;
  run.streamed_chunks = stats.streamed_chunks;
  run.first_chunk_ms = stats.first_chunk_ms;
  return run;
}

// The pre-binary encoder, verbatim: a methodResponse tree serialized by
// the generic XML writer. The byte-identity gate holds today's fast-path
// EncodeResponse (and the native result-set value variant) to this.
std::string TreeWriterResponse(const rpc::XmlRpcValue& value) {
  xml::Node root("methodResponse");
  xml::Node& param = root.AddChild("params").AddChild("param");
  param.children.push_back(std::make_unique<xml::Node>(value.ToXml()));
  xml::WriteOptions options;
  options.pretty = false;
  return xml::Write(root, options);
}

// The pre-binary result-set conversion, verbatim: explicit
// struct{columns, rows} rather than the native variant.
rpc::XmlRpcValue ClassicResultSetToRpc(const storage::ResultSet& rs) {
  rpc::XmlRpcArray columns;
  for (const std::string& c : rs.columns) columns.emplace_back(c);
  rpc::XmlRpcArray rows;
  for (const storage::Row& row : rs.rows) {
    rpc::XmlRpcArray cells;
    for (const storage::Value& cell : row) {
      switch (cell.type()) {
        case storage::DataType::kNull: cells.emplace_back(); break;
        case storage::DataType::kInt64:
          cells.emplace_back(cell.AsInt64Strict());
          break;
        case storage::DataType::kDouble:
          cells.emplace_back(cell.AsDoubleStrict());
          break;
        case storage::DataType::kBool:
          cells.emplace_back(cell.AsBoolStrict());
          break;
        case storage::DataType::kString:
          cells.emplace_back(cell.AsStringStrict());
          break;
      }
    }
    rows.emplace_back(std::move(cells));
  }
  rpc::XmlRpcStruct out;
  out["columns"] = std::move(columns);
  out["rows"] = std::move(rows);
  return out;
}

bool XmlByteIdentity() {
  // Representative fault-free response: mixed types, nulls, and strings
  // that exercise both the escape fast path and the slow path.
  storage::ResultSet rs;
  rs.columns = {"event_id", "detector", "e_total", "tagged", "note"};
  rs.rows.push_back({storage::Value(int64_t{41}), storage::Value("ECAL"),
                     storage::Value(12.625), storage::Value(true),
                     storage::Value("plain ascii")});
  rs.rows.push_back({storage::Value(int64_t{-7}), storage::Value::Null(),
                     storage::Value(-0.5), storage::Value(false),
                     storage::Value("needs <escaping> & \"quotes\"")});
  rs.rows.push_back({storage::Value(int64_t{0}), storage::Value("MUON_CH"),
                     storage::Value::Null(), storage::Value::Null(),
                     storage::Value("")});

  rpc::XmlRpcStruct native_struct;
  native_struct["rows"] = static_cast<int64_t>(rs.rows.size());
  native_struct["result"] = rpc::ResultSetToRpc(storage::ResultSet(rs));
  rpc::XmlRpcValue native(std::move(native_struct));

  rpc::XmlRpcStruct classic_struct;
  classic_struct["rows"] = static_cast<int64_t>(rs.rows.size());
  classic_struct["result"] = ClassicResultSetToRpc(rs);
  rpc::XmlRpcValue classic(std::move(classic_struct));

  return rpc::EncodeResponse(native) == TreeWriterResponse(classic) &&
         rpc::EncodeResponse(classic) == TreeWriterResponse(classic);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_wire.json";

  std::printf("=== Extension: distributed queries over a WAN ===\n");
  bench::TestbedOptions options;
  options.main_table_rows = 30000;
  options.chunk_tables = 60;

  struct Scenario {
    const char* label;
    std::string sql;
  };
  const Scenario scenarios[] = {
      {"local, 1 table", "SELECT id, value FROM chunk_my_a1_0"},
      {"distributed, 1 server",
       "SELECT a.id, b.value FROM chunk_my_a1_0 a "
       "JOIN chunk_ms_a1_0 b ON a.id = b.id"},
      {"distributed, 2 servers",
       "SELECT a.id, c.value FROM chunk_my_a1_0 a "
       "JOIN chunk_my_b1_0 c ON a.id = c.id"},
      {"2 servers, 1000 ntuple rows",
       "SELECT event_id, e_total, pt FROM ntuple_my_b1 LIMIT 1000"},
  };

  // LAN baseline.
  auto lan = bench::Testbed::Build(options);
  // WAN variant: pentium4-a <-> pentium4-b and a <-> rls cross the ocean.
  auto wan = bench::Testbed::Build(options);
  (void)wan->network.SetLink("pentium4-a", "pentium4-b", net::LinkSpec::Wan());
  (void)wan->network.SetLink("pentium4-a", "rls-host", net::LinkSpec::Wan());

  std::printf("%-30s %12s %12s %10s\n", "scenario", "LAN (ms)", "WAN (ms)",
              "penalty");
  double penalties[4];
  int i = 0;
  for (const Scenario& s : scenarios) {
    double lan_ms = Measure(*lan, s.sql);
    double wan_ms = Measure(*wan, s.sql);
    penalties[i++] = wan_ms / lan_ms;
    std::printf("%-30s %12.1f %12.1f %9.2fx\n", s.label, lan_ms, wan_ms,
                wan_ms / lan_ms);
  }

  bool shape_ok = penalties[0] < 1.05 &&   // local untouched
                  penalties[1] < 1.05 &&   // same-host distribution untouched
                  penalties[2] > 1.05 &&   // cross-server pays the WAN
                  penalties[3] > penalties[2];  // and more with more rows
  std::printf("\nshape check: WAN penalty only on cross-server paths and "
              "growing with shipped rows: %s\n",
              shape_ok ? "yes" : "NO");

  // ---- Part 2: wire-codec sweep over the WAN client link ----
  //
  // The client sits across the ocean from pentium4-a and pulls the wide
  // ntuple shape (11 columns: 2 ints, a string, 8 doubles) at growing
  // LIMIT sizes, once per codec. Sizes above the 1024-row chunk
  // threshold stream over the flow-control window.
  std::printf("\n=== Wire codec sweep (client across the WAN) ===\n");
  auto sweep = bench::Testbed::Build(options);
  (void)sweep->network.SetLink("client", "pentium4-a", net::LinkSpec::Wan());

  rpc::RpcClient xml_client(&sweep->transport, "client",
                            "clarens://pentium4-a:8080/clarens");
  xml_client.set_wire_preference(0);
  rpc::RpcClient bin_client(&sweep->transport, "client",
                            "clarens://pentium4-a:8080/clarens");
  bin_client.set_wire_preference(rpc::wire::kAllCaps);
  (void)xml_client.Call("dataaccess.listTables", {}, nullptr);  // warm
  (void)bin_client.Call("dataaccess.listTables", {}, nullptr);

  const size_t kSweep[] = {100, 500, 1000, 2500, 5000};
  struct Point {
    size_t rows;
    CodecRun xml;
    CodecRun bin;
  };
  std::vector<Point> points;
  std::printf("%8s %12s %12s %8s %12s %12s %8s %7s %11s\n", "rows",
              "xml bytes", "xml xfer ms", "", "bin bytes", "bin xfer ms",
              "chunks", "ratio", "1st chunk");
  for (size_t n : kSweep) {
    std::string sql =
        "SELECT event_id, run_id, detector, e_total, pt, eta, phi, nhits, "
        "charge, chi2, mass FROM ntuple_my_a1 LIMIT " + std::to_string(n);
    Point p;
    p.rows = n;
    p.xml = RunQuery(xml_client, sql);
    p.bin = RunQuery(bin_client, sql);
    std::printf("%8zu %12zu %12.1f %8s %12zu %12.1f %8d %6.2fx %11.1f\n", n,
                p.xml.response_bytes, p.xml.transfer_ms, "->",
                p.bin.response_bytes, p.bin.transfer_ms, p.bin.streamed_chunks,
                static_cast<double>(p.xml.response_bytes) /
                    static_cast<double>(p.bin.response_bytes),
                p.bin.first_chunk_ms);
    points.push_back(p);
  }

  // Gates evaluate on the largest (wide-ntuple) point.
  const Point& top = points.back();
  double bytes_ratio = static_cast<double>(top.xml.response_bytes) /
                       static_cast<double>(top.bin.response_bytes);
  double transfer_ratio = top.xml.transfer_ms / top.bin.transfer_ms;
  bool bytes_ok = bytes_ratio >= 3.0;
  bool transfer_ok = transfer_ratio >= 2.0;
  bool stream_ok = top.bin.streamed_chunks > 1 && top.bin.first_chunk_ms >= 0 &&
                   top.bin.first_chunk_ms < top.bin.total_ms;
  bool identity_ok = XmlByteIdentity();

  std::printf("\nwire bytes: binary %.2fx smaller (gate >= 3x): %s\n",
              bytes_ratio, bytes_ok ? "yes" : "NO");
  std::printf("transfer time: binary %.2fx faster (gate >= 2x): %s\n",
              transfer_ratio, transfer_ok ? "yes" : "NO");
  std::printf("streaming: first chunk at %.1f ms vs %.1f ms full result: %s\n",
              top.bin.first_chunk_ms, top.bin.total_ms,
              stream_ok ? "yes" : "NO");
  std::printf("XML-RPC responses byte-identical to the tree writer: %s\n",
              identity_ok ? "yes" : "NO");

  bool pass = shape_ok && bytes_ok && transfer_ok && stream_ok && identity_ok;

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"wire\",\n");
  std::fprintf(f, "  \"shape_ok\": %s,\n", shape_ok ? "true" : "false");
  std::fprintf(f, "  \"sweep\": [\n");
  for (size_t p = 0; p < points.size(); ++p) {
    const Point& pt = points[p];
    std::fprintf(
        f,
        "    {\"rows\": %zu, \"xml_bytes\": %zu, \"xml_transfer_ms\": %.3f, "
        "\"xml_total_ms\": %.3f, \"bin_bytes\": %zu, "
        "\"bin_transfer_ms\": %.3f, \"bin_total_ms\": %.3f, "
        "\"streamed_chunks\": %d, \"first_chunk_ms\": %.3f}%s\n",
        pt.rows, pt.xml.response_bytes, pt.xml.transfer_ms, pt.xml.total_ms,
        pt.bin.response_bytes, pt.bin.transfer_ms, pt.bin.total_ms,
        pt.bin.streamed_chunks, pt.bin.first_chunk_ms,
        p + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"bytes_ratio\": %.3f,\n", bytes_ratio);
  std::fprintf(f, "  \"transfer_ratio\": %.3f,\n", transfer_ratio);
  std::fprintf(f, "  \"first_chunk_ms\": %.3f,\n", top.bin.first_chunk_ms);
  std::fprintf(f, "  \"full_result_ms\": %.3f,\n", top.bin.total_ms);
  std::fprintf(f, "  \"xml_byte_identical\": %s,\n",
               identity_ok ? "true" : "false");
  std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());

  return pass ? 0 : 1;
}
