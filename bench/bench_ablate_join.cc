// Ablation A4: middleware join strategies (real CPU time,
// google-benchmark).
//
// The merge step joins partial results fetched from different marts. The
// executor uses a hash join for single-equality predicates and falls back
// to a nested loop otherwise; this measures what that choice is worth at
// the row counts the testbed produces.
#include <benchmark/benchmark.h>

#include "griddb/engine/select_executor.h"
#include "griddb/sql/parser.h"
#include "griddb/util/rng.h"

using namespace griddb;

namespace {

engine::MapTableSource MakeSource(int64_t rows) {
  Rng rng(7);
  storage::ResultSet left, right;
  left.columns = {"id", "x"};
  right.columns = {"id", "y"};
  for (int64_t i = 0; i < rows; ++i) {
    left.rows.push_back({storage::Value(i), storage::Value(rng.Gaussian())});
    right.rows.push_back(
        {storage::Value(rows - 1 - i), storage::Value(rng.Gaussian())});
  }
  engine::MapTableSource source;
  source.Add("l", std::move(left));
  source.Add("r", std::move(right));
  return source;
}

const sql::Dialect& D() { return sql::Dialect::For(sql::Vendor::kSqlite); }

void BM_HashEquiJoin(benchmark::State& state) {
  engine::MapTableSource source = MakeSource(state.range(0));
  auto stmt = sql::ParseSelect(
      "SELECT l.id, r.y FROM l JOIN r ON l.id = r.id", D());
  for (auto _ : state) {
    auto rs = engine::ExecuteSelect(**stmt, source);
    if (!rs.ok() || rs->num_rows() != static_cast<size_t>(state.range(0))) {
      state.SkipWithError("join produced wrong result");
      return;
    }
    benchmark::DoNotOptimize(rs->rows.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashEquiJoin)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_NestedLoopJoin(benchmark::State& state) {
  engine::MapTableSource source = MakeSource(state.range(0));
  // `l.id = r.id + 0` defeats the equi-join detection, forcing the
  // nested-loop path over the same data.
  auto stmt = sql::ParseSelect(
      "SELECT l.id, r.y FROM l JOIN r ON l.id = r.id + 0", D());
  for (auto _ : state) {
    auto rs = engine::ExecuteSelect(**stmt, source);
    if (!rs.ok() || rs->num_rows() != static_cast<size_t>(state.range(0))) {
      state.SkipWithError("join produced wrong result");
      return;
    }
    benchmark::DoNotOptimize(rs->rows.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NestedLoopJoin)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MergeAggregate(benchmark::State& state) {
  engine::MapTableSource source = MakeSource(state.range(0));
  auto stmt = sql::ParseSelect(
      "SELECT COUNT(*), AVG(l.x) FROM l JOIN r ON l.id = r.id", D());
  for (auto _ : state) {
    auto rs = engine::ExecuteSelect(**stmt, source);
    if (!rs.ok()) {
      state.SkipWithError("aggregate failed");
      return;
    }
    benchmark::DoNotOptimize(rs->rows.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MergeAggregate)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
