// Extension: vectorized columnar executor vs the row-at-a-time reference.
//
// Measures real CPU time (not the simulation's virtual clock — the
// executor never touches the network) for the Fig 4-6 query shapes:
// the chunk scan, a filtered scan, the Table 1 4-way equi join, a grouped
// aggregate, and the Fig 6-style wide-ntuple scan. The vectorized path is
// swept across batch sizes 1..4096 to show where batching pays; the
// reference path (ExecuteSelectReferenceRows) is the baseline — it is the
// executor every result was produced by before this change.
//
// Acceptance (wired into scripts/check.sh, see EXPERIMENTS.md):
//   - cold 4-way join >= 3x faster vectorized (default 1024-row batches);
//   - ntuple-style scan >= 3x faster;
//   - byte-identical outputs on every shape/batch size (verified here on
//     top of the dedicated parity suite).
// Emits BENCH_vectorized.json (path = argv[1]).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "griddb/engine/select_executor.h"
#include "griddb/sql/parser.h"
#include "griddb/util/rng.h"
#include "griddb/util/stopwatch.h"

using namespace griddb;

namespace {

using engine::ExecOptions;
using engine::MapTableSource;
using storage::ResultSet;
using storage::Row;
using storage::Value;

constexpr size_t kChunkRows = 20000;
constexpr size_t kNtupleRows = 4000;
constexpr size_t kNtupleCols = 120;

// (id, value) chunk tables in the testbed's shape, one per mart, with ids
// shuffled out of phase so the joins do real hash probing.
ResultSet ChunkTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  ResultSet rs;
  rs.columns = {"id", "value"};
  rs.rows.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    rs.rows.push_back({Value(static_cast<int64_t>(i)),
                       Value(rng.Uniform(0.0, 1000.0))});
  }
  // Shuffle so probe order != build order.
  for (size_t i = rows; i > 1; --i) {
    size_t j = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(rs.rows[i - 1], rs.rows[j]);
  }
  return rs;
}

// Fig 6-style wide ntuple: many double attributes per event.
ResultSet NtupleTable(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  ResultSet rs;
  rs.columns.reserve(cols);
  rs.columns.push_back("event_id");
  for (size_t c = 1; c < cols; ++c) {
    rs.columns.push_back("attr" + std::to_string(c));
  }
  rs.rows.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.reserve(cols);
    row.push_back(Value(static_cast<int64_t>(r)));
    for (size_t c = 1; c < cols; ++c) {
      row.push_back(Value(rng.Uniform(-1.0, 1.0)));
    }
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

struct Shape {
  const char* name;
  const char* sql;
};

const Shape kShapes[] = {
    {"scan", "SELECT id, value FROM chunk_a"},
    {"filter", "SELECT id, value FROM chunk_a WHERE value > 500.0"},
    {"join_4way",
     "SELECT a.id, a.value, b.value, c.value, d.value FROM chunk_a a "
     "JOIN chunk_b b ON a.id = b.id JOIN chunk_c c ON a.id = c.id "
     "JOIN chunk_d d ON a.id = d.id"},
    {"aggregate",
     "SELECT COUNT(*), SUM(a.value), AVG(b.value) FROM chunk_a a "
     "JOIN chunk_b b ON a.id = b.id WHERE a.value > 250.0"},
    {"ntuple_scan", "SELECT * FROM ntuple"},
};
constexpr size_t kNumShapes = sizeof(kShapes) / sizeof(kShapes[0]);

const size_t kBatchSizes[] = {1, 4, 16, 64, 256, 1024, 4096};
constexpr size_t kNumBatchSizes = sizeof(kBatchSizes) / sizeof(kBatchSizes[0]);
constexpr size_t kDefaultBatchIndex = 5;  // 1024

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  size_t n = values.size();
  return n % 2 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2;
}

bool SameResult(const ResultSet& a, const ResultSet& b) {
  if (a.columns != b.columns || a.rows.size() != b.rows.size()) return false;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (a.rows[r].size() != b.rows[r].size()) return false;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      const Value& x = a.rows[r][c];
      const Value& y = b.rows[r][c];
      if (x.type() != y.type()) return false;
      if (!x.is_null() && x.Compare(y) != 0) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_vectorized.json";
  constexpr int kIterations = 5;

  std::printf("=== Extension: vectorized executor vs row-at-a-time "
              "reference ===\n");
  std::printf("building tables (%zu-row chunks, %zux%zu ntuple)...\n",
              kChunkRows, kNtupleRows, kNtupleCols);

  MapTableSource source;
  source.Add("chunk_a", ChunkTable(kChunkRows, 1));
  source.Add("chunk_b", ChunkTable(kChunkRows, 2));
  source.Add("chunk_c", ChunkTable(kChunkRows, 3));
  source.Add("chunk_d", ChunkTable(kChunkRows, 4));
  source.Add("ntuple", NtupleTable(kNtupleRows, kNtupleCols, 5));

  auto dialect = sql::Dialect::For(sql::Vendor::kMySql);
  double ref_ms[kNumShapes] = {};
  double vec_ms[kNumShapes][kNumBatchSizes] = {};
  bool identical = true;

  for (size_t s = 0; s < kNumShapes; ++s) {
    auto stmt = sql::ParseSelect(kShapes[s].sql, dialect);
    if (!stmt.ok()) {
      std::fprintf(stderr, "parse failed for %s: %s\n", kShapes[s].name,
                   stmt.status().ToString().c_str());
      return 1;
    }

    // Reference baseline: median of cold runs.
    ResultSet ref_out;
    {
      std::vector<double> times;
      for (int it = 0; it < kIterations; ++it) {
        Stopwatch sw;
        auto rs = engine::ExecuteSelectReferenceRows(**stmt, source);
        if (!rs.ok()) {
          std::fprintf(stderr, "reference %s failed: %s\n", kShapes[s].name,
                       rs.status().ToString().c_str());
          return 1;
        }
        times.push_back(sw.ElapsedMs());
        ref_out = std::move(*rs);
      }
      ref_ms[s] = Median(std::move(times));
    }

    for (size_t b = 0; b < kNumBatchSizes; ++b) {
      ExecOptions opts;
      opts.batch_rows = kBatchSizes[b];
      std::vector<double> times;
      for (int it = 0; it < kIterations; ++it) {
        Stopwatch sw;
        auto rs = engine::ExecuteSelect(**stmt, source, opts);
        if (!rs.ok()) {
          std::fprintf(stderr, "vectorized %s (batch %zu) failed: %s\n",
                       kShapes[s].name, kBatchSizes[b],
                       rs.status().ToString().c_str());
          return 1;
        }
        times.push_back(sw.ElapsedMs());
        if (it == 0 && !SameResult(ref_out, *rs)) {
          std::fprintf(stderr, "OUTPUT MISMATCH: %s at batch %zu\n",
                       kShapes[s].name, kBatchSizes[b]);
          identical = false;
        }
      }
      vec_ms[s][b] = Median(std::move(times));
    }

    std::printf("%-12s reference %9.3f ms | vectorized(1024) %9.3f ms | "
                "speedup %.2fx\n",
                kShapes[s].name, ref_ms[s], vec_ms[s][kDefaultBatchIndex],
                ref_ms[s] / vec_ms[s][kDefaultBatchIndex]);
  }

  double join_speedup =
      ref_ms[2] / vec_ms[2][kDefaultBatchIndex];  // join_4way
  double scan_speedup =
      ref_ms[4] / vec_ms[4][kDefaultBatchIndex];  // ntuple_scan
  bool pass = identical && join_speedup >= 3.0 && scan_speedup >= 3.0;

  std::printf("\njoin_4way speedup %.2fx (need >= 3x), ntuple_scan speedup "
              "%.2fx (need >= 3x), outputs %s => %s\n",
              join_speedup, scan_speedup,
              identical ? "identical" : "DIVERGED", pass ? "PASS" : "FAIL");

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"vectorized\",\n");
  std::fprintf(f, "  \"chunk_rows\": %zu,\n  \"ntuple_rows\": %zu,\n"
              "  \"ntuple_cols\": %zu,\n", kChunkRows, kNtupleRows,
              kNtupleCols);
  std::fprintf(f, "  \"batch_sizes\": [1, 4, 16, 64, 256, 1024, 4096],\n");
  std::fprintf(f, "  \"shapes\": [\n");
  for (size_t s = 0; s < kNumShapes; ++s) {
    std::fprintf(f, "    {\"name\": \"%s\", \"reference_ms\": %.3f, "
                "\"vectorized_ms\": [", kShapes[s].name, ref_ms[s]);
    for (size_t b = 0; b < kNumBatchSizes; ++b) {
      std::fprintf(f, "%s%.3f", b ? ", " : "", vec_ms[s][b]);
    }
    std::fprintf(f, "], \"speedup_1024\": %.3f}%s\n",
                 ref_ms[s] / vec_ms[s][kDefaultBatchIndex],
                 s + 1 < kNumShapes ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"join_4way_speedup\": %.3f,\n", join_speedup);
  std::fprintf(f, "  \"ntuple_scan_speedup\": %.3f,\n", scan_speedup);
  std::fprintf(f, "  \"outputs_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  return pass ? 0 : 1;
}
