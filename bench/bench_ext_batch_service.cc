// Extension: crash-safe asynchronous batch-query service (core/batch).
//
// Two legs, one acceptance story (see EXPERIMENTS.md):
//
//   interactive — the batch lane must be invisible to foreground
//       traffic. Two "atlas" threads run a closed loop of interactive
//       aggregations against an admission-enabled testbed server twice:
//       once with the batch service idle (batch0) and once while a
//       feeder keeps 8 "cms" full-table batch scans outstanding
//       (batch8). Batch chunks are admitted strictly out of idle
//       capacity, so the interactive per-query cost must not move:
//       gate p99 per-query CPU (batch8 / batch0) <= 1.25x. Like the
//       overload and tenant benches, CPU time is the scheduler-
//       independent proxy for added work — the whole federation shares
//       one process, so wall clock also measures the kernel dividing
//       cores among bench + batch worker threads; wall p99 is reported
//       alongside.
//
//   recovery — resuming must beat restarting. A 40-chunk scan is
//       killed at its 20th durable checkpoint (the crash-injection
//       seam, exactly as a process kill: no further journal or stage
//       writes). A fresh manager over the same journal directory
//       replays, resumes at the first missing chunk and completes.
//       Wasted work is counted from the journal itself: a chunk id
//       checkpointed more than once was re-executed. Gates: resumed
//       result byte-identical to an uninterrupted baseline run;
//       wasted_resume / wasted_restart <= 0.1 where wasted_restart is
//       the durable chunk count a from-scratch rerun would redo
//       (resume should waste exactly 0).
//
// Emits machine-readable BENCH_batch_service.json (path = argv[1]).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/testbed.h"
#include "griddb/storage/stage_file.h"
#include "griddb/util/journal.h"
#include "griddb/util/stopwatch.h"

using namespace griddb;

namespace {

// Same shape as the tenant bench: a real scan + aggregation inside the
// ticketed execution window, a one-row response on the wire.
const char* kInteractiveSql =
    "SELECT COUNT(*) AS n, AVG(pt) AS avg_pt, MAX(e_total) AS max_e "
    "FROM ntuple_my_a1 WHERE pt > 0.1";
// Pageable full-table scan: 10,000 rows / 256-row chunks = 40 durable
// checkpoints per job.
const char* kBatchSql = "SELECT * FROM ntuple_my_a2";

constexpr size_t kSlots = 4;   // admission.max_concurrent
constexpr size_t kQueue = 4;   // admission.max_queued
constexpr size_t kBatchChunkRows = 256;
constexpr size_t kBatchOutstanding = 8;
constexpr size_t kInteractiveThreads = 2;
constexpr int kInteractiveQueries = 60;  // per thread, retried until served
constexpr int kMaxRetries = 200;
constexpr size_t kCrashChunk = 20;  // recovery leg: die at this checkpoint
constexpr size_t kTotalChunks = 40;

// Per-thread CPU milliseconds consumed so far (scheduler-independent).
double ThreadCpuMs() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(values.size()));
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

/// Checkpoint records per chunk id in an on-disk journal, for `job`.
/// Any chunk counted more than once was sub-query work re-executed.
std::map<size_t, int> CheckpointCounts(const std::string& journal_dir,
                                       uint64_t job) {
  std::map<size_t, int> counts;
  auto replay = util::ReadJournal(journal_dir + "/batch_jobs.journal");
  if (!replay.ok()) {
    std::fprintf(stderr, "journal read failed: %s\n",
                 replay.status().ToString().c_str());
    return counts;
  }
  for (const std::string& record : replay->records) {
    std::istringstream in(record);
    std::string kind;
    std::getline(in, kind);
    if (kind != "checkpoint") continue;
    uint64_t id = 0;
    size_t chunk = 0;
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream fields(line);
      std::string key;
      fields >> key;
      if (key == "id") fields >> id;
      if (key == "chunk") fields >> chunk;
    }
    if (id == job) ++counts[chunk];
  }
  return counts;
}

/// Canonical bytes of a whole materialized result, via the paged fetch
/// surface (what a client would reassemble).
std::string FetchAllCanonical(core::BatchJobManager& mgr,
                              const std::string& tenant, uint64_t id) {
  std::string out;
  for (size_t page = 0;; ++page) {
    auto rs = mgr.Fetch(tenant, id, page);
    if (!rs.ok()) {
      std::fprintf(stderr, "fetch failed: %s\n",
                   rs.status().ToString().c_str());
      return "<fetch-error>";
    }
    if (page == 0) {
      for (const std::string& column : rs->columns) out += column + "|";
      out += "\n";
    }
    if (rs->rows.empty()) break;
    out += storage::EncodeRowBlock(rs->rows);
  }
  return out;
}

struct Scenario {
  std::string name;
  size_t served = 0;
  size_t sheds = 0;   // hinted rejects absorbed by the retry loop
  size_t errors = 0;  // anything that is not served or properly shed
  double cpu_ms_p50 = 0;  // per served query, incl. its retries
  double cpu_ms_p99 = 0;
  double real_ms_p50 = 0;
  double real_ms_p99 = 0;
  double wall_ms = 0;
  size_t batch_jobs_done = 0;      // feeder-side completions during the run
  size_t batch_chunks_done = 0;    // durable checkpoints those jobs reached
};

Scenario RunInteractive(bench::Testbed& bed, const std::string& name,
                        size_t batch_outstanding) {
  Scenario out;
  out.name = name;

  core::BatchJobManager* mgr = bed.server_a->batch();
  std::atomic<bool> stop{false};
  std::atomic<size_t> jobs_done{0};
  std::atomic<size_t> chunks_done{0};
  std::thread feeder;
  std::vector<uint64_t> outstanding;
  std::mutex outstanding_mu;
  if (batch_outstanding > 0) {
    feeder = std::thread([&] {
      std::vector<uint64_t> live;
      while (!stop.load()) {
        while (live.size() < batch_outstanding) {
          auto id = mgr->Submit("cms", kBatchSql);
          if (!id.ok()) break;
          live.push_back(*id);
        }
        for (size_t i = 0; i < live.size();) {
          auto info = mgr->Poll("cms", live[i]);
          if (info.ok() && core::IsTerminal(info->state)) {
            jobs_done.fetch_add(1);
            chunks_done.fetch_add(info->chunks_done);
            live[i] = live.back();
            live.pop_back();
          } else {
            ++i;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Credit the durable progress of jobs still in flight at stop:
      // the measurement cares that batch work advanced, not that whole
      // jobs finished inside the interactive window.
      for (uint64_t id : live) {
        auto info = mgr->Poll("cms", id);
        if (info.ok()) chunks_done.fetch_add(info->chunks_done);
      }
      std::lock_guard<std::mutex> lock(outstanding_mu);
      outstanding = live;
    });
  }

  std::mutex mu;
  std::vector<double> real_ms;
  std::vector<double> cpu_ms;
  std::atomic<size_t> served{0};
  std::atomic<size_t> sheds{0};
  std::atomic<size_t> errors{0};

  Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kInteractiveThreads; ++t) {
    threads.emplace_back([&] {
      rpc::RpcClient client(&bed.transport, "client",
                            "clarens://pentium4-a:8080/clarens");
      client.set_tenant("atlas");
      std::vector<double> local_real, local_cpu;
      for (int q = 0; q < kInteractiveQueries; ++q) {
        // Closed loop with retry-until-served: any shed the batch lane
        // leaks into the foreground shows up as added latency AND added
        // CPU on the query that absorbed it.
        Stopwatch call;
        const double cpu_before = ThreadCpuMs();
        bool ok = false;
        for (int attempt = 0; attempt < kMaxRetries && !ok; ++attempt) {
          rpc::XmlRpcArray params;
          params.emplace_back(std::string(kInteractiveSql));
          auto response =
              client.Call("dataaccess.query", std::move(params), nullptr);
          if (response.ok()) {
            ok = true;
          } else if (response.status().code() ==
                         StatusCode::kResourceExhausted &&
                     rpc::RetryAfterHintMs(response.status().message()) > 0) {
            sheds.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          } else {
            errors.fetch_add(1);
            std::fprintf(stderr, "interactive failure: %s\n",
                         response.status().ToString().c_str());
            break;
          }
        }
        if (ok) {
          served.fetch_add(1);
          local_real.push_back(call.ElapsedMs());
          local_cpu.push_back(ThreadCpuMs() - cpu_before);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      real_ms.insert(real_ms.end(), local_real.begin(), local_real.end());
      cpu_ms.insert(cpu_ms.end(), local_cpu.begin(), local_cpu.end());
    });
  }
  for (std::thread& thread : threads) thread.join();
  out.wall_ms = wall.ElapsedMs();
  stop.store(true);
  if (feeder.joinable()) {
    feeder.join();
    // Quiesce: the measurement is over, so stop paying for scans that
    // will never be fetched.
    for (uint64_t id : outstanding) (void)mgr->Cancel("cms", id);
  }

  out.served = served.load();
  out.sheds = sheds.load();
  out.errors = errors.load();
  out.cpu_ms_p50 = Percentile(cpu_ms, 0.50);
  out.cpu_ms_p99 = Percentile(cpu_ms, 0.99);
  out.real_ms_p50 = Percentile(real_ms, 0.50);
  out.real_ms_p99 = Percentile(real_ms, 0.99);
  out.batch_jobs_done = jobs_done.load();
  out.batch_chunks_done = chunks_done.load();
  return out;
}

struct RecoveryResult {
  size_t durable_at_crash = 0;   // chunks a from-scratch rerun would redo
  size_t wasted_resume = 0;      // re-executed chunks after recovery
  size_t total_chunks = 0;
  bool recovered_flag = false;
  bool byte_identical = false;
  double ratio = 1.0;
};

RecoveryResult RunRecoveryLeg(bench::Testbed& bed, const std::string& dir) {
  RecoveryResult out;
  core::DataAccessService* service = &bed.server_a->service();

  core::BatchConfig cfg;
  cfg.chunk_rows = kBatchChunkRows;
  cfg.workers = 1;
  cfg.autostart = false;

  // Uninterrupted baseline run (its own tenant, so scratch marts and
  // result tables never collide with the crashed job's).
  std::string baseline_bytes;
  {
    core::BatchConfig base_cfg = cfg;
    base_cfg.journal_dir = dir + "/baseline";
    core::BatchJobManager baseline(service, &bed.catalog, base_cfg);
    auto id = baseline.Submit("bench_base", kBatchSql);
    if (!id.ok()) {
      std::fprintf(stderr, "baseline submit: %s\n",
                   id.status().ToString().c_str());
      return out;
    }
    baseline.Start();
    if (!baseline.WaitForTerminal(*id, 120.0)) {
      std::fprintf(stderr, "baseline run timed out\n");
      return out;
    }
    baseline_bytes = FetchAllCanonical(baseline, "bench_base", *id);
  }

  const std::string resume_dir = dir + "/resume";
  cfg.journal_dir = resume_dir;
  uint64_t job_id = 0;
  {
    core::BatchJobManager victim(service, &bed.catalog, cfg);
    victim.set_crash_hook([&victim](const char* point, uint64_t,
                                    size_t chunk) {
      if (std::string(point) == "checkpoint" && chunk == kCrashChunk) {
        victim.SimulateCrash();
      }
    });
    auto id = victim.Submit("bench_resume", kBatchSql);
    if (!id.ok()) return out;
    job_id = *id;
    victim.Start();
    for (int i = 0; i < 120000 && !victim.crashed(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!victim.crashed()) {
      std::fprintf(stderr, "recovery leg: crash point never fired\n");
      return out;
    }
    // Destroying the manager here is the process kill: the crashed
    // instance can no longer touch the journal or stage files.
  }
  out.durable_at_crash = CheckpointCounts(resume_dir, job_id).size();

  core::BatchJobManager resumed(service, &bed.catalog, cfg);
  Status recover = resumed.Recover();
  if (!recover.ok()) {
    std::fprintf(stderr, "recover: %s\n", recover.ToString().c_str());
    return out;
  }
  resumed.Start();
  if (!resumed.WaitForTerminal(job_id, 120.0)) {
    std::fprintf(stderr, "resumed run timed out\n");
    return out;
  }
  auto info = resumed.Poll("bench_resume", job_id);
  if (!info.ok() || info->state != core::BatchJobState::kDone) {
    std::fprintf(stderr, "resumed job not done: %s\n",
                 info.ok() ? info->error.c_str()
                           : info.status().ToString().c_str());
    return out;
  }
  out.recovered_flag = info->recovered;
  out.total_chunks = info->total_chunks;

  for (const auto& [chunk, count] : CheckpointCounts(resume_dir, job_id)) {
    (void)chunk;
    if (count > 1) out.wasted_resume += static_cast<size_t>(count - 1);
  }
  out.byte_identical =
      !baseline_bytes.empty() &&
      FetchAllCanonical(resumed, "bench_resume", job_id) == baseline_bytes;
  out.ratio = out.durable_at_crash > 0
                  ? static_cast<double>(out.wasted_resume) /
                        static_cast<double>(out.durable_at_crash)
                  : 1.0;
  return out;
}

void PrintScenario(const Scenario& s) {
  std::printf("%-7s interactive: served=%zu sheds=%zu errors=%zu "
              "cpu p50=%.3f p99=%.3f ms wall p50=%.2f p99=%.2f ms | "
              "batch: jobs_done=%zu chunks=%zu\n",
              s.name.c_str(), s.served, s.sheds, s.errors, s.cpu_ms_p50,
              s.cpu_ms_p99, s.real_ms_p50, s.real_ms_p99, s.batch_jobs_done,
              s.batch_chunks_done);
}

void WriteScenario(FILE* f, const Scenario& s, const char* suffix) {
  std::fprintf(f,
               "    {\"scenario\": \"%s\", \"served\": %zu, \"sheds\": %zu, "
               "\"errors\": %zu, \"cpu_ms_p50\": %.4f, \"cpu_ms_p99\": %.4f, "
               "\"real_ms_p50\": %.3f, \"real_ms_p99\": %.3f, "
               "\"wall_ms\": %.1f, \"batch_jobs_done\": %zu, "
               "\"batch_chunks_done\": %zu}%s\n",
               s.name.c_str(), s.served, s.sheds, s.errors, s.cpu_ms_p50,
               s.cpu_ms_p99, s.real_ms_p50, s.real_ms_p99, s.wall_ms,
               s.batch_jobs_done, s.batch_chunks_done, suffix);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_batch_service.json";
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("griddb_bench_batch_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);

  std::printf("=== Extension: asynchronous batch service — foreground "
              "invisibility and crash recovery ===\n");
  std::printf("building testbed (%zu slots, %zu queue, %zu outstanding "
              "batch scans, %zu-row chunks)...\n",
              kSlots, kQueue, kBatchOutstanding, kBatchChunkRows);

  bench::TestbedOptions options;
  options.main_table_rows = 60000;  // 10,000 rows per per-db ntuple table
  options.chunk_tables = 60;
  options.admission.max_concurrent = kSlots;
  options.admission.max_queued = kQueue;
  options.admission.retry_after_ms = 50.0;
  options.batch.journal_dir = dir + "/service";
  options.batch.chunk_rows = kBatchChunkRows;
  options.batch.workers = 2;
  options.batch.autostart = false;  // Build() registers databases last
  auto bed = bench::Testbed::Build(options);
  bed->server_a->batch()->Start();

  Scenario batch0 = RunInteractive(*bed, "batch0", 0);
  PrintScenario(batch0);
  Scenario batch8 = RunInteractive(*bed, "batch8", kBatchOutstanding);
  PrintScenario(batch8);

  std::printf("recovery leg: crash at checkpoint %zu of %zu...\n",
              kCrashChunk, kTotalChunks);
  RecoveryResult rec = RunRecoveryLeg(*bed, dir);
  std::printf("recovery: durable_at_crash=%zu wasted_resume=%zu "
              "total_chunks=%zu recovered=%s byte_identical=%s "
              "ratio=%.3f\n",
              rec.durable_at_crash, rec.wasted_resume, rec.total_chunks,
              rec.recovered_flag ? "true" : "false",
              rec.byte_identical ? "true" : "false", rec.ratio);

  const double cpu_p99_ratio =
      batch0.cpu_ms_p99 > 0 ? batch8.cpu_ms_p99 / batch0.cpu_ms_p99 : 0;
  const double real_p99_ratio =
      batch0.real_ms_p99 > 0 ? batch8.real_ms_p99 / batch0.real_ms_p99 : 0;
  std::printf("\ninteractive p99 cpu: batch0=%.3f ms, batch8=%.3f ms "
              "(%.2fx); wall p99 %.2f -> %.2f ms (%.2fx, informational)\n",
              batch0.cpu_ms_p99, batch8.cpu_ms_p99, cpu_p99_ratio,
              batch0.real_ms_p99, batch8.real_ms_p99, real_p99_ratio);

  bool ok = true;
  if (cpu_p99_ratio > 1.25) {
    std::fprintf(stderr,
                 "FAIL: interactive p99 cpu with %zu batch scans is %.2fx "
                 "the idle baseline (> 1.25x) — the batch lane is not "
                 "staying inside idle capacity\n",
                 kBatchOutstanding, cpu_p99_ratio);
    ok = false;
  }
  if (batch0.errors + batch8.errors > 0) {
    std::fprintf(stderr, "FAIL: interactive queries saw non-shed errors\n");
    ok = false;
  }
  const size_t expected =
      kInteractiveThreads * static_cast<size_t>(kInteractiveQueries);
  if (batch0.served < expected || batch8.served < expected) {
    std::fprintf(stderr,
                 "FAIL: interactive loop completed %zu/%zu (batch0) and "
                 "%zu/%zu (batch8) queries — retries exhausted\n",
                 batch0.served, expected, batch8.served, expected);
    ok = false;
  }
  if (batch8.batch_chunks_done == 0) {
    std::fprintf(stderr,
                 "FAIL: batch jobs made no durable progress during the "
                 "loaded run — the comparison is vacuous\n");
    ok = false;
  }
  if (!rec.byte_identical || !rec.recovered_flag ||
      rec.total_chunks != kTotalChunks) {
    std::fprintf(stderr,
                 "FAIL: recovered job is not a byte-identical, "
                 "journal-resumed completion (recovered=%d identical=%d "
                 "chunks=%zu/%zu)\n",
                 rec.recovered_flag, rec.byte_identical, rec.total_chunks,
                 kTotalChunks);
    ok = false;
  }
  if (rec.ratio > 0.1) {
    std::fprintf(stderr,
                 "FAIL: resume re-executed %zu of %zu durable chunks "
                 "(ratio %.3f > 0.1) — recovery is redoing checkpointed "
                 "work\n",
                 rec.wasted_resume, rec.durable_at_crash, rec.ratio);
    ok = false;
  }

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"batch_service\",\n");
    std::fprintf(f, "  \"slots\": %zu,\n  \"queue\": %zu,\n", kSlots, kQueue);
    std::fprintf(f, "  \"batch_outstanding\": %zu,\n", kBatchOutstanding);
    std::fprintf(f, "  \"chunk_rows\": %zu,\n", kBatchChunkRows);
    std::fprintf(f, "  \"scenarios\": [\n");
    WriteScenario(f, batch0, ",");
    WriteScenario(f, batch8, "");
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"interactive_cpu_p99_ratio\": %.4f,\n",
                 cpu_p99_ratio);
    std::fprintf(f, "  \"interactive_real_p99_ratio\": %.4f,\n",
                 real_p99_ratio);
    std::fprintf(f,
                 "  \"recovery\": {\"durable_at_crash\": %zu, "
                 "\"wasted_resume\": %zu, \"total_chunks\": %zu, "
                 "\"recovered\": %s, \"byte_identical\": %s, "
                 "\"wasted_ratio\": %.4f},\n",
                 rec.durable_at_crash, rec.wasted_resume, rec.total_chunks,
                 rec.recovered_flag ? "true" : "false",
                 rec.byte_identical ? "true" : "false", rec.ratio);
    std::fprintf(f, "  \"pass\": %s\n}\n", ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    ok = false;
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return ok ? 0 : 1;
}
