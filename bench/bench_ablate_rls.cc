// Ablation A3: RLS remote lookup + forwarding overhead vs local
// registration.
//
// The same single-table query served three ways: from a locally
// registered mart, from a remote server discovered through the RLS
// (whole-query forwarding), and the RLS lookup in isolation. Quantifies
// the §4.8 trade-off: hosting fewer databases per server distributes
// load, at the price of RLS + forwarding on cache-miss queries.
#include <cstdio>

#include "bench/testbed.h"

using namespace griddb;

int main() {
  std::printf("=== Ablation A3: local vs RLS-mediated remote access ===\n");
  bench::TestbedOptions options;
  options.main_table_rows = 12000;
  options.chunk_tables = 60;
  auto bed = bench::Testbed::Build(options);

  // Local: chunk on server A queried at server A.
  core::QueryStats local_stats;
  auto local = bed->server_a->service().Query(
      "SELECT id, value FROM chunk_my_a1_0", &local_stats);
  if (!local.ok()) {
    std::fprintf(stderr, "local query failed: %s\n",
                 local.status().ToString().c_str());
    return 1;
  }

  // Remote: chunk hosted on server B, queried at server A.
  core::QueryStats remote_stats;
  auto remote = bed->server_a->service().Query(
      "SELECT id, value FROM chunk_my_b1_0", &remote_stats);
  if (!remote.ok()) {
    std::fprintf(stderr, "remote query failed: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }

  // RLS lookup alone.
  rls::RlsClient rls_client(&bed->transport, "pentium4-a",
                            "rls://rls-host:39281/rls");
  net::Cost lookup_cost;
  auto urls = rls_client.Lookup("chunk_my_b1_0", &lookup_cost);
  if (!urls.ok() || urls->empty()) {
    std::fprintf(stderr, "RLS lookup failed\n");
    return 1;
  }

  std::printf("%-28s %14s\n", "path", "simulated (ms)");
  std::printf("%-28s %14.1f\n", "local mart", local_stats.simulated_ms);
  std::printf("%-28s %14.1f\n", "RLS lookup only",
              lookup_cost.total_ms());
  std::printf("%-28s %14.1f\n", "RLS + forward to remote",
              remote_stats.simulated_ms);
  std::printf("\nremote/local overhead: %.1fx; RLS share of remote cost: "
              "%.0f%%\n",
              remote_stats.simulated_ms / local_stats.simulated_ms,
              100.0 * lookup_cost.total_ms() / remote_stats.simulated_ms);

  bool shape_ok = remote_stats.simulated_ms > 3 * local_stats.simulated_ms &&
                  lookup_cost.total_ms() < remote_stats.simulated_ms;
  std::printf("shape check: remote >> local and lookup < total: %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
