// Extension: overload protection under an open-loop load sweep.
//
// Drives an admission-enabled testbed server (4 execution slots, 4 queue
// positions) with 4x`m` concurrent clients for m in {1, 2, 4, 8} — offered
// load from saturation to 8x capacity. Excess arrivals must be shed at
// the door with retryable kResourceExhausted (clients honour the
// retry-after hint), so the server keeps serving near capacity instead of
// convoying every client behind a full queue.
//
// Acceptance (see EXPERIMENTS.md):
//   - goodput at 4x offered load >= 70% of the saturated (1x) goodput —
//     graceful degradation, not congestion collapse;
//   - shedding is cheap: the p99 cost of a rejected call is < 5% of the
//     median cost of a served query (an O(1) decision before any parsing
//     or planning). Cost is measured as per-thread CPU time: on an
//     oversubscribed single-core host, wall-clock latency of a
//     sub-millisecond reject measures the kernel scheduler, not the shed
//     path, so CPU time is the faithful proxy for "no query work done";
//   - every non-served call fails precisely with kResourceExhausted
//     carrying a machine-parseable retry-after hint.
// Emits machine-readable BENCH_overload.json (path = argv[1]).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/testbed.h"
#include "griddb/util/stopwatch.h"

using namespace griddb;

namespace {

// An aggregation over a 10,000-row ntuple table: the scan and per-row
// evaluation burn real CPU inside the admission-ticketed execution
// window, while the one-row response keeps client-side encode/decode
// (which admission cannot protect) negligible.
const char* kWorkload =
    "SELECT COUNT(*) AS n, AVG(pt) AS avg_pt, MAX(e_total) AS max_e "
    "FROM ntuple_my_a1 WHERE pt > 0.1";

// Per-thread CPU milliseconds consumed so far (scheduler-independent).
double ThreadCpuMs() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

constexpr size_t kSlots = 4;         // admission.max_concurrent
constexpr size_t kQueue = 4;         // admission.max_queued
constexpr int kQueriesPerThread = 40;
constexpr int kMultipliers[4] = {1, 2, 4, 8};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(values.size()));
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

struct SweepResult {
  int multiplier = 0;
  size_t threads = 0;
  size_t offered = 0;
  size_t served = 0;
  size_t shed = 0;
  size_t errors = 0;  // anything that is neither served nor properly shed
  double wall_ms = 0;
  double goodput_qps = 0;
  double shed_rate = 0;
  double serve_real_ms_p50 = 0;
  double reject_real_ms_p99 = 0;
  double serve_cpu_ms_p50 = 0;
  double reject_cpu_ms_p99 = 0;
  std::vector<double> serve_real_ms;
  std::vector<double> reject_real_ms;
  std::vector<double> serve_cpu_ms;
  std::vector<double> reject_cpu_ms;
};

SweepResult RunSweep(bench::Testbed& bed, int multiplier) {
  SweepResult result;
  result.multiplier = multiplier;
  result.threads = kSlots * static_cast<size_t>(multiplier);
  result.offered = result.threads * kQueriesPerThread;

  std::mutex mu;
  std::atomic<size_t> served{0};
  std::atomic<size_t> shed{0};
  std::atomic<size_t> errors{0};

  Stopwatch wall;
  std::vector<std::thread> clients;
  for (size_t t = 0; t < result.threads; ++t) {
    clients.emplace_back([&, t] {
      rpc::RpcClient client(&bed.transport, "client",
                            "clarens://pentium4-a:8080/clarens");
      std::vector<double> serve_real, serve_cpu, reject_real, reject_cpu;
      for (int q = 0; q < kQueriesPerThread; ++q) {
        rpc::XmlRpcArray params;
        params.emplace_back(std::string(kWorkload));
        // Odd threads present themselves as scan-class traffic, so the
        // priority-shedding path is exercised under load too.
        if (t % 2 == 1) params.emplace_back(std::string("scan"));
        Stopwatch call;
        const double cpu_before = ThreadCpuMs();
        auto response = client.Call("dataaccess.query", std::move(params),
                                    nullptr);
        const double cpu_ms = ThreadCpuMs() - cpu_before;
        const double real_ms = call.ElapsedMs();
        if (response.ok()) {
          served.fetch_add(1);
          serve_real.push_back(real_ms);
          serve_cpu.push_back(cpu_ms);
        } else if (response.status().code() == StatusCode::kResourceExhausted &&
                   rpc::RetryAfterHintMs(response.status().message()) > 0) {
          shed.fetch_add(1);
          reject_real.push_back(real_ms);
          reject_cpu.push_back(cpu_ms);
          // An open-loop client honours the hint before re-offering; the
          // virtual hint is scaled down so the bench finishes promptly.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        } else {
          errors.fetch_add(1);
          std::fprintf(stderr, "unexpected failure: %s\n",
                       response.status().ToString().c_str());
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      auto append = [](std::vector<double>& dst, const std::vector<double>& s) {
        dst.insert(dst.end(), s.begin(), s.end());
      };
      append(result.serve_real_ms, serve_real);
      append(result.serve_cpu_ms, serve_cpu);
      append(result.reject_real_ms, reject_real);
      append(result.reject_cpu_ms, reject_cpu);
    });
  }
  for (std::thread& client : clients) client.join();

  result.wall_ms = wall.ElapsedMs();
  result.served = served.load();
  result.shed = shed.load();
  result.errors = errors.load();
  result.goodput_qps =
      result.wall_ms > 0 ? result.served / (result.wall_ms / 1000.0) : 0;
  result.shed_rate =
      result.offered > 0
          ? static_cast<double>(result.shed) / static_cast<double>(result.offered)
          : 0;
  result.serve_real_ms_p50 = Percentile(result.serve_real_ms, 0.50);
  result.reject_real_ms_p99 = Percentile(result.reject_real_ms, 0.99);
  result.serve_cpu_ms_p50 = Percentile(result.serve_cpu_ms, 0.50);
  result.reject_cpu_ms_p99 = Percentile(result.reject_cpu_ms, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_overload.json";

  std::printf("=== Extension: admission control under an open-loop load "
              "sweep ===\n");
  bench::TestbedOptions options;
  options.main_table_rows = 60000;  // 10,000 rows in the aggregated table
  options.chunk_tables = 60;        // enough for a realistic catalog
  options.admission.max_concurrent = kSlots;
  options.admission.max_queued = kQueue;
  options.admission.interactive_reserve = 1;
  options.admission.retry_after_ms = 50.0;
  std::printf("building admission-enabled testbed (%zu slots, %zu queue)...\n",
              kSlots, kQueue);
  auto bed = bench::Testbed::Build(options);

  std::printf("sweeping offered load 1x-8x, %d queries per client...\n",
              kQueriesPerThread);
  std::vector<SweepResult> sweep;
  for (int multiplier : kMultipliers) {
    sweep.push_back(RunSweep(*bed, multiplier));
    const SweepResult& r = sweep.back();
    std::printf("%dx: threads=%zu offered=%zu served=%zu shed=%zu "
                "errors=%zu goodput=%.0f q/s shed_rate=%.2f "
                "serve_p50=%.3f ms (cpu %.3f) reject_p99=%.3f ms "
                "(cpu %.3f)\n",
                r.multiplier, r.threads, r.offered, r.served, r.shed,
                r.errors, r.goodput_qps, r.shed_rate, r.serve_real_ms_p50,
                r.serve_cpu_ms_p50, r.reject_real_ms_p99,
                r.reject_cpu_ms_p99);
  }

  const SweepResult& saturated = sweep[0];   // 1x
  const SweepResult& overloaded = sweep[2];  // 4x
  const double goodput_ratio =
      saturated.goodput_qps > 0
          ? overloaded.goodput_qps / saturated.goodput_qps
          : 0;

  // Reject cost across the whole sweep vs the serve cost at saturation,
  // both in per-thread CPU time (see the header comment: wall-clock on a
  // saturated single core measures the scheduler, not the shed path).
  std::vector<double> all_reject_cpu;
  size_t total_errors = 0;
  for (const SweepResult& r : sweep) {
    all_reject_cpu.insert(all_reject_cpu.end(), r.reject_cpu_ms.begin(),
                          r.reject_cpu_ms.end());
    total_errors += r.errors;
  }
  const double reject_p99 = Percentile(all_reject_cpu, 0.99);
  const double serve_p50 = saturated.serve_cpu_ms_p50;
  const double reject_ratio = serve_p50 > 0 ? reject_p99 / serve_p50 : 1.0;

  std::printf("\ngoodput at 4x = %.0f q/s (%.0f%% of 1x %.0f q/s)\n",
              overloaded.goodput_qps, goodput_ratio * 100,
              saturated.goodput_qps);
  std::printf("reject p99 = %.3f cpu-ms vs serve p50 = %.3f cpu-ms "
              "(%.1f%%)\n",
              reject_p99, serve_p50, reject_ratio * 100);

  bool ok = true;
  if (goodput_ratio < 0.70) {
    std::fprintf(stderr,
                 "FAIL: goodput at 4x offered load is %.0f%% of capacity "
                 "(< 70%%) — overload is collapsing throughput\n",
                 goodput_ratio * 100);
    ok = false;
  }
  if (reject_ratio >= 0.05) {
    std::fprintf(stderr,
                 "FAIL: p99 reject cost %.3f cpu-ms is %.1f%% of a served "
                 "query (>= 5%%) — shedding is not cheap\n",
                 reject_p99, reject_ratio * 100);
    ok = false;
  }
  if (total_errors > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu calls failed with something other than a "
                 "hinted kResourceExhausted shed\n",
                 total_errors);
    ok = false;
  }
  if (sweep.back().shed == 0) {
    std::fprintf(stderr, "FAIL: 8x offered load shed nothing — admission "
                         "control is not engaging\n");
    ok = false;
  }

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"overload\",\n");
    std::fprintf(f, "  \"slots\": %zu,\n  \"queue\": %zu,\n", kSlots, kQueue);
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepResult& r = sweep[i];
      std::fprintf(f,
                   "    {\"multiplier\": %d, \"threads\": %zu, "
                   "\"offered\": %zu, \"served\": %zu, \"shed\": %zu, "
                   "\"errors\": %zu, \"goodput_qps\": %.1f, "
                   "\"shed_rate\": %.4f, \"serve_real_ms_p50\": %.4f, "
                   "\"serve_cpu_ms_p50\": %.4f, "
                   "\"reject_real_ms_p99\": %.4f, "
                   "\"reject_cpu_ms_p99\": %.4f}%s\n",
                   r.multiplier, r.threads, r.offered, r.served, r.shed,
                   r.errors, r.goodput_qps, r.shed_rate,
                   r.serve_real_ms_p50, r.serve_cpu_ms_p50,
                   r.reject_real_ms_p99, r.reject_cpu_ms_p99,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"goodput_ratio_4x\": %.4f,\n", goodput_ratio);
    std::fprintf(f, "  \"reject_p99_cpu_ms\": %.4f,\n", reject_p99);
    std::fprintf(f, "  \"serve_p50_cpu_ms\": %.4f,\n", serve_p50);
    std::fprintf(f, "  \"reject_to_serve_ratio\": %.4f,\n", reject_ratio);
    std::fprintf(f, "  \"pass\": %s\n}\n", ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    ok = false;
  }

  return ok ? 0 : 1;
}
