// Extension: observability overhead on the paper's Table 1 query mix.
//
// Runs the three Table 1 queries against two identically-seeded testbeds
// — server-side tracing off (the paper configuration) vs on — and
// compares the median real (CPU) time of the mix. Acceptance (see
// EXPERIMENTS.md): median overhead below 5%, the virtual-clock cost
// byte-identical between the runs (an untraced client puts no trace
// context on the wire, so the traced servers add no wire bytes and no
// simulated cost — only CPU), and a zero-allocation metrics fast path.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench/testbed.h"
#include "griddb/obs/metrics.h"
#include "griddb/util/stopwatch.h"

// Counting global operator new so the fast-path claim is measured, not
// assumed (mirrors tests/obs_test.cc).
static std::atomic<uint64_t> g_news{0};

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace griddb;

namespace {

// The three Table 1 queries plus a Fig 6-style row-heavy scan. The
// chunk queries alone return 6 rows each and finish in microseconds of
// CPU, which would measure span bookkeeping against near-zero work; the
// scan gives the mix a realistic result size (a few thousand rows), as
// in the paper's Fig 6 sweep.
const char* kQueries[4] = {
    "SELECT id, value FROM chunk_my_a1_0",
    "SELECT a.id, a.value, b.value FROM chunk_my_a1_0 a "
    "JOIN chunk_ms_a1_0 b ON a.id = b.id",
    "SELECT a.id, a.value, b.value, c.value, d.value "
    "FROM chunk_my_a1_0 a JOIN chunk_ms_a1_0 b ON a.id = b.id "
    "JOIN chunk_my_b1_0 c ON a.id = c.id "
    "JOIN chunk_ms_b1_0 d ON a.id = d.id",
    "SELECT * FROM ntuple_my_a1",
};

struct MixRun {
  std::vector<double> real_ms;  ///< Per-iteration wall time of the mix.
  double simulated_ms = 0;      ///< Virtual cost of one mix pass.
};

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2;
}

MixRun RunMix(bool tracing, int iterations) {
  bench::TestbedOptions options;
  options.main_table_rows = 20000;  // the mix touches chunk tables only
  options.tracing = tracing;
  auto bed = bench::Testbed::Build(options);

  rpc::RpcClient client(&bed->transport, "client",
                        "clarens://pentium4-a:8080/clarens");
  (void)client.Call("dataaccess.listTables", {}, nullptr);  // warm session

  auto run_once = [&](net::Cost* cost) {
    for (const char* sql : kQueries) {
      rpc::XmlRpcArray params;
      params.emplace_back(std::string(sql));
      auto response =
          client.Call("dataaccess.query", std::move(params), cost);
      if (!response.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     response.status().ToString().c_str());
        std::exit(1);
      }
    }
  };

  run_once(nullptr);  // warm-up: per-database connect/auth paid once

  MixRun run;
  for (int i = 0; i < iterations; ++i) {
    net::Cost cost;
    Stopwatch wall;
    run_once(&cost);
    run.real_ms.push_back(wall.ElapsedMs());
    if (i == 0) run.simulated_ms = cost.total_ms();
  }
  return run;
}

// The virtual cost of a mix pass is not bit-stable: the encoded length
// of doubles in the response wobbles the message size, and the parallel
// sub-query fan-out interleaves on the shared virtual clock, moving the
// total by fractions of a millisecond between processes. Anything beyond
// this bound would mean tracing actually added wire bytes.
constexpr double kSimulatedToleranceMs = 2.0;

bool CheckMetricsFastPath() {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench.fastpath.counter");
  obs::Histogram* histogram =
      registry.GetHistogram("bench.fastpath.histogram");
  const uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    counter->Add(1);
    histogram->Observe(static_cast<double>(i % 1009));
  }
  const uint64_t allocations =
      g_news.load(std::memory_order_relaxed) - before;
  std::printf("metrics fast path: 200000 operations, %llu allocations\n",
              static_cast<unsigned long long>(allocations));
  return allocations == 0;
}

}  // namespace

int main() {
  std::printf("=== Extension: trace/metrics overhead on the Table 1 mix "
              "===\n");
  constexpr int kIterations = 25;

  std::printf("building untraced testbed and running %d mix passes...\n",
              kIterations);
  MixRun off = RunMix(/*tracing=*/false, kIterations);
  std::printf("building traced testbed and running %d mix passes...\n",
              kIterations);
  MixRun on = RunMix(/*tracing=*/true, kIterations);

  const double median_off = Median(off.real_ms);
  const double median_on = Median(on.real_ms);
  const double overhead = (median_on - median_off) / median_off * 100.0;

  std::printf("\n%-24s %16s %16s\n", "", "tracing off", "tracing on");
  std::printf("%-24s %16.3f %16.3f\n", "median real (ms/mix)", median_off,
              median_on);
  std::printf("%-24s %16.3f %16.3f\n", "simulated (ms/mix)", off.simulated_ms,
              on.simulated_ms);
  std::printf("%-24s %15.2f%%\n", "median overhead", overhead);

  bool ok = true;
  if (std::abs(off.simulated_ms - on.simulated_ms) > kSimulatedToleranceMs) {
    std::fprintf(stderr,
                 "FAIL: tracing changed the virtual-clock cost "
                 "(%.6f -> %.6f ms) — wire bytes are no longer "
                 "identical\n",
                 off.simulated_ms, on.simulated_ms);
    ok = false;
  }
  if (overhead >= 5.0) {
    std::fprintf(stderr, "FAIL: median overhead %.2f%% >= 5%%\n", overhead);
    ok = false;
  }
  if (!CheckMetricsFastPath()) {
    std::fprintf(stderr, "FAIL: metrics fast path allocated\n");
    ok = false;
  }
  std::printf(ok ? "\nPASS\n" : "\nFAIL\n");
  return ok ? 0 : 1;
}
