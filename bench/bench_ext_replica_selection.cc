// Extension A6 (paper §6 future work): "the design of a system that could
// decide the closest available database (in terms of network connectivity)
// from a set of replicated databases."
//
// A table replicated in two marts — one on the querying server's own host,
// one across a WAN — queried under three replica-selection policies:
// always-remote, always-first (naive), and prefer-local (the planner's
// default). The prefer-local policy should win by roughly the WAN round
// trip + shipping delta.
#include <cstdio>

#include "griddb/unity/driver.h"
#include "griddb/unity/xspec.h"

using namespace griddb;

namespace {

std::unique_ptr<engine::Database> MakeMart(const char* name,
                                           sql::Vendor vendor, int rows) {
  auto db = std::make_unique<engine::Database>(name, vendor);
  storage::TableSchema schema(
      "hits", {{"hit_id", storage::DataType::kInt64, true, true},
               {"adc", storage::DataType::kDouble, false, false}});
  if (!db->CreateTable(schema).ok()) std::abort();
  std::vector<storage::Row> data;
  for (int i = 0; i < rows; ++i) {
    data.push_back({storage::Value(int64_t{i}), storage::Value(i * 0.5)});
  }
  if (!db->InsertRows("hits", std::move(data)).ok()) std::abort();
  return db;
}

double MeasureWithSelector(ral::DatabaseCatalog* catalog,
                           net::Network* network,
                           const unity::ReplicaSelector& selector,
                           engine::Database* local_db,
                           engine::Database* remote_db) {
  unity::UnityDriverOptions options;
  options.client_host = "caltech-tier2";
  unity::UnityDriver driver(catalog, network, net::ServiceCosts::Default(),
                            options);
  // The WAN replica registers first, so a naive first-registered policy
  // lands on it.
  if (!driver.AddDatabase({"mart_remote", "mysql://cern-tier1/mart_remote",
                           "mysql-jdbc", ""},
                          unity::GenerateXSpec(*remote_db))
           .ok() ||
      !driver.AddDatabase({"mart_local", "sqlite://caltech-tier2/mart_local",
                           "sqlite-jdbc", ""},
                          unity::GenerateXSpec(*local_db))
           .ok()) {
    std::abort();
  }

  auto stmt = sql::ParseSelect("SELECT hit_id, adc FROM hits WHERE adc > 100",
                               sql::Dialect::For(sql::Vendor::kSqlite));
  unity::PlannerOptions planner_options;
  planner_options.prefer_host = options.client_host;
  if (selector) planner_options.selector = selector;
  auto plan = unity::PlanSelect(**stmt, driver.dictionary(), planner_options);
  if (!plan.ok()) std::abort();

  net::Cost cost;
  auto rs = driver.ExecuteDirect(*plan, &cost);
  if (!rs.ok()) {
    std::fprintf(stderr, "query failed: %s\n", rs.status().ToString().c_str());
    std::exit(1);
  }
  return cost.total_ms();
}

}  // namespace

int main() {
  std::printf("=== Extension A6: replica selection (closest database) ===\n");
  net::Network network;
  network.AddHost("caltech-tier2");
  network.AddHost("cern-tier1");
  // Transatlantic link between the replica sites.
  (void)network.SetLink("caltech-tier2", "cern-tier1", net::LinkSpec::Wan());

  auto local_db = MakeMart("mart_local", sql::Vendor::kSqlite, 5000);
  auto remote_db = MakeMart("mart_remote", sql::Vendor::kMySql, 5000);
  ral::DatabaseCatalog catalog;
  if (!catalog.Add({"sqlite://caltech-tier2/mart_local", local_db.get(),
                    "caltech-tier2", "", ""})
           .ok() ||
      !catalog.Add({"mysql://cern-tier1/mart_remote", remote_db.get(),
                    "cern-tier1", "", ""})
           .ok()) {
    return 1;
  }

  // Policy 1: always the WAN replica.
  unity::ReplicaSelector always_remote =
      [](const std::vector<unity::TableBinding>& replicas)
      -> const unity::TableBinding* {
    for (const unity::TableBinding& b : replicas) {
      if (b.database_name == "mart_remote") return &b;
    }
    return &replicas.front();
  };
  // Policy 2: first registered (registration-order accident).
  unity::ReplicaSelector first =
      [](const std::vector<unity::TableBinding>& replicas)
      -> const unity::TableBinding* { return &replicas.front(); };

  double remote_ms = MeasureWithSelector(&catalog, &network, always_remote,
                                         local_db.get(), remote_db.get());
  double first_ms = MeasureWithSelector(&catalog, &network, first,
                                        local_db.get(), remote_db.get());
  double local_ms = MeasureWithSelector(&catalog, &network, nullptr,
                                        local_db.get(), remote_db.get());

  std::printf("%-34s %14s\n", "policy", "simulated (ms)");
  std::printf("%-34s %14.1f\n", "always remote (WAN replica)", remote_ms);
  std::printf("%-34s %14.1f\n", "first registered", first_ms);
  std::printf("%-34s %14.1f\n", "prefer local host (default)", local_ms);
  std::printf("\nprefer-local advantage over WAN: %.1fx\n",
              remote_ms / local_ms);

  bool shape_ok = local_ms < remote_ms;
  std::printf("shape check: local replica cheaper than WAN replica: %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
