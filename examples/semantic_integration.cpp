// Semantic table integration (paper §6 future work) in action: three
// sites describe the same physics data with different table and column
// names; the matcher mines the federation's data dictionary for
// integration candidates and prints a ranked report with per-column
// match details — the groundwork an administrator needs before declaring
// two tables replicas of each other.
//
// Run: ./build/examples/semantic_integration
#include <cstdio>

#include "griddb/unity/semantic.h"

using namespace griddb;
using storage::DataType;

int main() {
  unity::DataDictionary dictionary;

  // CERN: canonical names.
  unity::LowerXSpec cern;
  cern.database_name = "cern_cond";
  cern.vendor = "oracle";
  cern.tables.push_back(
      {"RUN_CONDITIONS", "run_conditions",
       {{"RUN_ID", "run_id", DataType::kInt64, true, true},
        {"TEMPERATURE", "temperature", DataType::kDouble, false, false},
        {"PRESSURE", "pressure", DataType::kDouble, false, false},
        {"MAGNET_CURRENT", "magnet_current", DataType::kDouble, false,
         false}}});
  cern.tables.push_back(
      {"EVENT_SUMMARY", "event_summary",
       {{"EVENT_ID", "event_id", DataType::kInt64, true, true},
        {"RUN_ID", "run_id", DataType::kInt64, false, false},
        {"E_TOTAL", "e_total", DataType::kDouble, false, false}}});

  // Caltech: reordered/renamed variants of the same concepts.
  unity::LowerXSpec caltech;
  caltech.database_name = "caltech_mart";
  caltech.vendor = "mysql";
  caltech.tables.push_back(
      {"conditions_run", "conditions_run",
       {{"run_id", "run_id", DataType::kInt64, true, true},
        {"temperature", "temperature", DataType::kDouble, false, false},
        {"pressure", "pressure", DataType::kDouble, false, false}}});
  caltech.tables.push_back(
      {"summary_event", "summary_event",
       {{"event_id", "event_id", DataType::kInt64, true, true},
        {"run_id", "run_id", DataType::kInt64, false, false},
        {"total_energy", "total_energy", DataType::kDouble, false, false}}});

  // A laptop mart with something genuinely different.
  unity::LowerXSpec laptop;
  laptop.database_name = "laptop_notes";
  laptop.vendor = "sqlite";
  laptop.tables.push_back(
      {"shift_notes", "shift_notes",
       {{"note_id", "note_id", DataType::kInt64, true, true},
        {"author", "author", DataType::kString, false, false},
        {"body", "body", DataType::kString, false, false}}});

  (void)dictionary.AddDatabase(
      {"cern_cond", "oracle://t0/cern_cond", "oracle-oci", ""}, cern);
  (void)dictionary.AddDatabase(
      {"caltech_mart", "mysql://t2/caltech_mart", "mysql-jdbc", ""}, caltech);
  (void)dictionary.AddDatabase(
      {"laptop_notes", "sqlite://laptop/laptop_notes", "sqlite-jdbc", ""},
      laptop);

  unity::SemanticMatcher matcher;
  std::vector<unity::TableSimilarity> candidates =
      matcher.FindIntegrationCandidates(dictionary, 0.45);

  std::printf("integration candidates (threshold 0.45):\n\n");
  for (const unity::TableSimilarity& c : candidates) {
    std::printf("%.2f  %s.%s  <->  %s.%s\n", c.score, c.database_a.c_str(),
                c.table_a.c_str(), c.database_b.c_str(), c.table_b.c_str());
    std::printf("      name %.2f | columns %.2f | types %.2f\n",
                c.name_score, c.column_score, c.type_score);
    for (const unity::ColumnMatch& m : c.matches) {
      std::printf("      %-16s ~ %-16s (%.2f%s)\n", m.column_a.c_str(),
                  m.column_b.c_str(), m.name_score,
                  m.types_compatible ? "" : ", TYPE MISMATCH");
    }
    std::printf("\n");
  }
  if (candidates.empty()) {
    std::printf("(none)\n");
    return 1;
  }
  std::printf("unrelated tables (e.g. shift_notes) are correctly absent.\n");
  return 0;
}
