// End-to-end HEP analysis session — the scenario the paper's introduction
// motivates: a physicist's client (the Java Analysis Studio plug-in
// analogue) submits logical-schema queries to a JClarens server, which
// federates data marts spread over two sites, and the returned rows are
// filled into HBOOK-style histograms.
//
// Run: ./build/examples/hep_analysis
#include <cstdio>

#include "griddb/core/jclarens_server.h"
#include "griddb/ntuple/histogram.h"
#include "griddb/ntuple/ntuple.h"

using namespace griddb;

int main() {
  // --- grid fabric: two tiers + RLS -------------------------------------
  net::Network network;
  for (const char* host : {"cern-tier1", "caltech-tier2", "rls-host",
                           "physicist"}) {
    network.AddHost(host);
  }
  (void)network.SetLink("cern-tier1", "caltech-tier2", net::LinkSpec::Wan());
  rpc::Transport transport(&network, net::ServiceCosts::Default());
  rls::RlsServer rls("rls://rls-host:39281/rls", &transport);

  // --- data: one ntuple dataset split into two marts --------------------
  ntuple::GeneratorOptions gen;
  gen.num_events = 30000;
  gen.nvar = 8;
  ntuple::Ntuple nt = ntuple::GenerateNtuple(gen);
  std::vector<ntuple::RunInfo> runs = ntuple::GenerateRuns(gen);
  std::vector<storage::Row> rows = ntuple::DenormalizedRows(nt, runs);

  engine::Database cern_mart("cern_mart", sql::Vendor::kOracle);
  engine::Database caltech_mart("caltech_mart", sql::Vendor::kMySql);
  storage::TableSchema cern_schema = ntuple::DenormalizedSchema(nt, "ntuple_cern");
  storage::TableSchema caltech_schema =
      ntuple::DenormalizedSchema(nt, "ntuple_caltech");
  if (!cern_mart.CreateTable(cern_schema).ok() ||
      !caltech_mart.CreateTable(caltech_schema).ok()) {
    return 1;
  }
  std::vector<storage::Row> cern_rows, caltech_rows;
  for (size_t i = 0; i < rows.size(); ++i) {
    (i % 2 == 0 ? cern_rows : caltech_rows).push_back(rows[i]);
  }
  if (!cern_mart.InsertRows("ntuple_cern", std::move(cern_rows)).ok() ||
      !caltech_mart.InsertRows("ntuple_caltech", std::move(caltech_rows))
           .ok()) {
    return 1;
  }
  // Run metadata lives only at CERN.
  storage::TableSchema run_schema(
      "runs", {{"run_id", storage::DataType::kInt64, true, true},
               {"detector", storage::DataType::kString, true, false}});
  if (!cern_mart.CreateTable(run_schema).ok()) return 1;
  for (const ntuple::RunInfo& run : runs) {
    if (!cern_mart
             .InsertRows("runs", {{storage::Value(run.run_id),
                                   storage::Value(run.detector)}})
             .ok()) {
      return 1;
    }
  }

  ral::DatabaseCatalog catalog;
  (void)catalog.Add({"oracle://cern-tier1/cern_mart", &cern_mart,
                     "cern-tier1", "", ""});
  (void)catalog.Add({"mysql://caltech-tier2/caltech_mart", &caltech_mart,
                     "caltech-tier2", "", ""});

  // --- one JClarens server per site --------------------------------------
  auto make_server = [&](const char* name, const char* host) {
    core::DataAccessConfig config;
    config.server_name = name;
    config.host = host;
    config.server_url = std::string("clarens://") + host + ":8080/clarens";
    config.rls_url = "rls://rls-host:39281/rls";
    return std::make_unique<core::JClarensServer>(config, &catalog,
                                                  &transport);
  };
  auto cern_server = make_server("jclarens-cern", "cern-tier1");
  auto caltech_server = make_server("jclarens-caltech", "caltech-tier2");
  (void)cern_server->service().RegisterLiveDatabase(
      "oracle://cern-tier1/cern_mart", "oracle-oci");
  (void)caltech_server->service().RegisterLiveDatabase(
      "mysql://caltech-tier2/caltech_mart", "mysql-jdbc");

  // --- the physicist works against the *nearest* server -----------------
  rpc::RpcClient jas(&transport, "physicist",
                     "clarens://caltech-tier2:8080/clarens");
  auto query = [&](const std::string& sql) -> storage::ResultSet {
    rpc::XmlRpcArray params;
    params.emplace_back(sql);
    net::Cost cost;
    auto response = jas.Call("dataaccess.query", std::move(params), &cost);
    if (!response.ok()) {
      std::printf("query failed: %s\n", response.status().ToString().c_str());
      std::exit(1);
    }
    auto rs = rpc::RpcToResultSet(**response->Member("result"));
    core::QueryStats stats = core::StatsFromRpc(**response->Member("stats"));
    std::printf("  -> %zu rows in %.0f ms (servers=%zu, rls=%s)\n",
                stats.rows, cost.total_ms(), stats.servers_contacted,
                stats.used_rls ? "yes" : "no");
    return std::move(*rs);
  };

  // Local-mart histogram: the Caltech slice of the dataset.
  std::printf("1) pT spectrum from the local (Caltech) mart:\n");
  storage::ResultSet local = query(
      "SELECT pt FROM ntuple_caltech WHERE pt < 80");
  ntuple::Histogram1D pt_hist("pT (GeV), local slice", 16, 0.0, 80.0);
  (void)ntuple::FillFromResultSet(pt_hist, local, "pt");
  std::printf("%s\n", pt_hist.ToAscii(42).c_str());

  // Remote-table analysis: the CERN slice arrives through RLS discovery.
  std::printf("2) invariant mass peak from the remote (CERN) slice:\n");
  storage::ResultSet remote = query(
      "SELECT mass FROM ntuple_cern WHERE mass BETWEEN 60 AND 120");
  ntuple::Histogram1D mass_hist("mass (GeV), remote slice", 15, 60.0, 120.0);
  (void)ntuple::FillFromResultSet(mass_hist, remote, "mass");
  std::printf("%s\n", mass_hist.ToAscii(42).c_str());
  std::printf("   peak mean %.1f GeV, rms %.1f GeV\n\n", mass_hist.Mean(),
              mass_hist.StdDev());

  // Cross-site join: per-detector event counts combine the remote runs
  // dimension with the local ntuple slice.
  std::printf("3) per-detector yield (cross-site join):\n");
  storage::ResultSet yield = query(
      "SELECT r.detector, COUNT(*) AS n FROM ntuple_caltech e "
      "JOIN runs r ON e.run_id = r.run_id GROUP BY r.detector ORDER BY n "
      "DESC");
  std::printf("%s\n", yield.ToText().c_str());
  return 0;
}
