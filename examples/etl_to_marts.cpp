// The full data-logistics pipeline of the paper (figure 1, lower half):
//
//   normalized sources --ETL(stage file)--> Oracle warehouse (star schema)
//   warehouse views --materialization--> vendor-diverse data marts
//
// Prints the per-stage statistics the paper plots in figures 4 and 5.
//
// Run: ./build/examples/etl_to_marts
#include <cstdio>
#include <map>

#include "griddb/ntuple/ntuple.h"
#include "griddb/warehouse/etl.h"
#include "griddb/warehouse/materialize.h"
#include "griddb/warehouse/warehouse.h"

using namespace griddb;

int main() {
  net::Network network;
  for (const char* host : {"cern-src", "cern-tier1", "caltech-tier2",
                           "laptop"}) {
    network.AddHost(host);
  }

  // --- stage 0: a normalized ntuple source at CERN ----------------------
  std::printf("== stage 0: generating & loading the normalized source ==\n");
  ntuple::GeneratorOptions gen;
  gen.num_events = 20000;
  gen.nvar = 8;
  ntuple::Ntuple nt = ntuple::GenerateNtuple(gen);
  std::vector<ntuple::RunInfo> runs = ntuple::GenerateRuns(gen);

  engine::Database source("cms_source", sql::Vendor::kMySql);
  if (!ntuple::CreateNormalizedSchema(source).ok() ||
      !ntuple::LoadNormalized(nt, runs, source).ok()) {
    return 1;
  }
  std::printf("source rows: events=%zu event_values=%zu\n\n",
              source.RowCount("events"), source.RowCount("event_values"));

  // --- stage 1: ETL into the warehouse star schema ----------------------
  std::printf("== stage 1: ETL source -> warehouse (via staging file) ==\n");
  warehouse::DataWarehouse wh("cms_warehouse", "cern-tier1");
  warehouse::StarSchemaSpec star;
  star.fact = ntuple::DenormalizedSchema(nt, "fact_event");
  star.dimensions.push_back(
      {storage::TableSchema(
           "dim_run", {{"run_id", storage::DataType::kInt64, true, true},
                       {"detector", storage::DataType::kString, true, false}}),
       "run_id"});
  if (!wh.DefineStarSchema(star).ok()) return 1;

  warehouse::EtlPipeline pipeline(&network, net::ServiceCosts::Default(),
                                  warehouse::EtlCosts::Default(), "cern-tier1",
                                  "/tmp/griddb_example_etl");

  // Denormalizing transform: join the per-event variables back in.
  std::map<int64_t, const ntuple::NtupleEvent*> by_id;
  for (const ntuple::NtupleEvent& e : nt.events()) by_id[e.event_id] = &e;
  std::map<int64_t, std::string> detector_of;
  for (const ntuple::RunInfo& r : runs) detector_of[r.run_id] = r.detector;

  warehouse::EtlPipeline::Job job;
  job.source = &source;
  job.source_host = "cern-src";
  job.extract_sql = "SELECT event_id, run_id FROM events";
  job.target = &wh.db();
  job.target_host = "cern-tier1";
  job.target_table = "fact_event";
  job.transform = [&](const storage::Row& row) -> Result<storage::Row> {
    GRIDDB_ASSIGN_OR_RETURN(int64_t event_id, row[0].AsInt64());
    GRIDDB_ASSIGN_OR_RETURN(int64_t run_id, row[1].AsInt64());
    storage::Row out = {storage::Value(event_id), storage::Value(run_id),
                        storage::Value(detector_of[run_id])};
    for (double v : by_id[event_id]->values) out.push_back(storage::Value(v));
    return out;
  };

  auto stage1 = pipeline.Run(job);
  if (!stage1.ok()) {
    std::printf("stage 1 failed: %s\n", stage1.status().ToString().c_str());
    return 1;
  }
  std::printf("rows=%zu staged=%.2f MB extract=%.2f s load=%.2f s\n\n",
              stage1->rows, stage1->staged_bytes / 1e6,
              stage1->extract_ms / 1000, stage1->load_ms / 1000);

  // --- stage 2: views materialized into marts ---------------------------
  std::printf("== stage 2: warehouse views -> data marts ==\n");
  if (!wh.CreateAnalysisView("v_muon_candidates",
                             "SELECT event_id, run_id, e_total, pt, eta "
                             "FROM fact_event WHERE pt > 25")
           .ok() ||
      !wh.CreateAnalysisView("v_run_summary",
                             "SELECT run_id, COUNT(*) AS n_events, "
                             "AVG(e_total) AS avg_e FROM fact_event "
                             "GROUP BY run_id")
           .ok()) {
    return 1;
  }

  warehouse::DataMart mysql_mart("t2_mart", sql::Vendor::kMySql,
                                 "caltech-tier2");
  warehouse::DataMart laptop_mart("laptop_mart", sql::Vendor::kSqlite,
                                  "laptop");

  for (auto& [view, mart] :
       std::vector<std::pair<std::string, warehouse::DataMart*>>{
           {"v_muon_candidates", &mysql_mart},
           {"v_run_summary", &laptop_mart}}) {
    auto stats = warehouse::MaterializeView(wh, view, *mart, pipeline);
    if (!stats.ok()) {
      std::printf("materialization of %s failed: %s\n", view.c_str(),
                  stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%-20s -> %-12s rows=%-7zu %6.2f MB  extract=%.2f s "
                "load=%.2f s\n",
                view.c_str(), mart->db().name().c_str(), stats->rows,
                stats->staged_bytes / 1e6, stats->extract_ms / 1000,
                stats->load_ms / 1000);
  }

  // --- the marts answer locally in their own dialects -------------------
  std::printf("\n== the marts answer locally ==\n");
  auto top = laptop_mart.db().Execute(
      "SELECT run_id, n_events, avg_e FROM v_run_summary "
      "ORDER BY n_events DESC LIMIT 3");
  if (!top.ok()) return 1;
  std::printf("laptop (SQLite) top runs:\n%s", top->ToText().c_str());

  auto muons = mysql_mart.db().Execute(
      "SELECT COUNT(*) FROM v_muon_candidates");
  if (!muons.ok()) return 1;
  std::printf("tier-2 (MySQL) muon candidates: %s\n",
              muons->rows[0][0].ToString().c_str());
  return 0;
}
