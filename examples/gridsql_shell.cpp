// gridsql: an interactive shell over the federation — the command-line
// counterpart of the paper's JAS plug-in. Reads logical-schema SQL from
// stdin, sends it to a JClarens server over XML-RPC, and pretty-prints
// the merged result with the per-query statistics.
//
// A demo federation (two vendor marts pre-loaded with ntuple data plus a
// runs dimension) is built at startup, so the shell works out of the box:
//
//   echo "SELECT tag, COUNT(*) FROM events GROUP BY tag" |
//       ./build/examples/gridsql_shell
//
// Shell commands: \tables   list logical tables
//                 \describe <table>
//                 \explain <sql>   show the federated plan
//                 \quit
#include <cstdio>
#include <iostream>
#include <string>

#include "griddb/core/jclarens_server.h"
#include "griddb/ntuple/ntuple.h"
#include "griddb/util/strings.h"

using namespace griddb;

namespace {

struct DemoGrid {
  net::Network network;
  std::unique_ptr<rpc::Transport> transport;
  std::unique_ptr<rls::RlsServer> rls;
  std::unique_ptr<engine::Database> events_db;
  std::unique_ptr<engine::Database> runs_db;
  ral::DatabaseCatalog catalog;
  std::unique_ptr<core::JClarensServer> server;

  static std::unique_ptr<DemoGrid> Build() {
    auto grid = std::make_unique<DemoGrid>();
    grid->network.AddHost("demo-node");
    grid->network.AddHost("shell");
    grid->network.AddHost("rls-host");
    grid->transport = std::make_unique<rpc::Transport>(
        &grid->network, net::ServiceCosts::Default());
    grid->rls = std::make_unique<rls::RlsServer>("rls://rls-host:39281/rls",
                                                 grid->transport.get());

    // Mart 1: MySQL with 5000 ntuple events (logical table "events").
    ntuple::GeneratorOptions gen;
    gen.num_events = 5000;
    gen.nvar = 8;
    ntuple::Ntuple nt = ntuple::GenerateNtuple(gen);
    std::vector<ntuple::RunInfo> runs = ntuple::GenerateRuns(gen);
    grid->events_db = std::make_unique<engine::Database>(
        "events_mart", sql::Vendor::kMySql);
    if (!grid->events_db->CreateTable(ntuple::DenormalizedSchema(nt, "events"))
             .ok() ||
        !grid->events_db
             ->InsertRows("events", ntuple::DenormalizedRows(nt, runs))
             .ok()) {
      return nullptr;
    }

    // Mart 2: MS-SQL with the runs dimension.
    grid->runs_db = std::make_unique<engine::Database>("runs_mart",
                                                       sql::Vendor::kMsSql);
    storage::TableSchema run_schema(
        "runs", {{"run_id", storage::DataType::kInt64, true, true},
                 {"detector", storage::DataType::kString, true, false}});
    if (!grid->runs_db->CreateTable(run_schema).ok()) return nullptr;
    for (const ntuple::RunInfo& run : runs) {
      if (!grid->runs_db
               ->InsertRows("runs", {{storage::Value(run.run_id),
                                      storage::Value(run.detector)}})
               .ok()) {
        return nullptr;
      }
    }

    if (!grid->catalog
             .Add({"mysql://demo-node/events_mart", grid->events_db.get(),
                   "demo-node", "", ""})
             .ok() ||
        !grid->catalog
             .Add({"mssql://demo-node/runs_mart", grid->runs_db.get(),
                   "demo-node", "", ""})
             .ok()) {
      return nullptr;
    }

    core::DataAccessConfig config;
    config.server_name = "gridsql-demo";
    config.host = "demo-node";
    config.server_url = "clarens://demo-node:8080/clarens";
    config.rls_url = "rls://rls-host:39281/rls";
    grid->server = std::make_unique<core::JClarensServer>(
        config, &grid->catalog, grid->transport.get());
    if (!grid->server->service()
             .RegisterLiveDatabase("mysql://demo-node/events_mart", "")
             .ok() ||
        !grid->server->service()
             .RegisterLiveDatabase("mssql://demo-node/runs_mart", "")
             .ok()) {
      return nullptr;
    }
    return grid;
  }
};

}  // namespace

int main() {
  auto grid = DemoGrid::Build();
  if (!grid) {
    std::fprintf(stderr, "failed to build the demo federation\n");
    return 1;
  }
  rpc::RpcClient client(grid->transport.get(), "shell",
                        "clarens://demo-node:8080/clarens");

  bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("gridsql — federated SQL over 2 marts "
                "(MySQL: events, MS-SQL: runs)\n"
                "type \\tables, \\describe <t>, \\explain <sql>, \\quit, "
                "or SQL ending with ';'\n");
  }

  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) std::printf(buffer.empty() ? "gridsql> " : "   ...> ");
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;

    if (trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      if (trimmed == "\\tables") {
        auto tables = client.Call("dataaccess.listTables", {}, nullptr);
        if (!tables.ok()) {
          std::printf("error: %s\n", tables.status().ToString().c_str());
          continue;
        }
        for (const rpc::XmlRpcValue& t : *tables->AsArray().value()) {
          std::printf("  %s\n", t.AsString().value().c_str());
        }
        continue;
      }
      if (StartsWith(trimmed, "\\explain ")) {
        rpc::XmlRpcArray params;
        params.emplace_back(std::string(Trim(trimmed.substr(9))));
        auto plan = client.Call("dataaccess.explain", std::move(params),
                                nullptr);
        if (!plan.ok()) {
          std::printf("error: %s\n", plan.status().ToString().c_str());
        } else {
          std::printf("%s", plan->AsString().value().c_str());
        }
        continue;
      }
      if (StartsWith(trimmed, "\\describe ")) {
        rpc::XmlRpcArray params;
        params.emplace_back(std::string(Trim(trimmed.substr(10))));
        auto description = client.Call("dataaccess.describeTable",
                                       std::move(params), nullptr);
        if (!description.ok()) {
          std::printf("error: %s\n", description.status().ToString().c_str());
          continue;
        }
        auto columns = description->Member("columns");
        if (columns.ok()) {
          for (const rpc::XmlRpcValue& col : *(*columns)->AsArray().value()) {
            std::printf("  %-20s %s\n",
                        (*col.Member("name"))->AsString().value().c_str(),
                        (*col.Member("type"))->AsString().value().c_str());
          }
        }
        continue;
      }
      std::printf("unknown command\n");
      continue;
    }

    buffer += std::string(trimmed) + " ";
    if (trimmed.back() != ';') continue;  // accumulate multi-line SQL

    std::string sql = buffer;
    buffer.clear();
    rpc::XmlRpcArray params;
    params.emplace_back(sql);
    net::Cost cost;
    auto response = client.Call("dataaccess.query", std::move(params), &cost);
    if (!response.ok()) {
      std::printf("error: %s\n", response.status().ToString().c_str());
      continue;
    }
    auto rs = rpc::RpcToResultSet(**response->Member("result"));
    if (!rs.ok()) {
      std::printf("decode error: %s\n", rs.status().ToString().c_str());
      continue;
    }
    core::QueryStats stats = core::StatsFromRpc(**response->Member("stats"));
    std::printf("%s", rs->ToText(40).c_str());
    std::printf("(%zu rows; %.1f ms simulated; %zu database%s%s)\n\n",
                stats.rows, cost.total_ms(), stats.databases,
                stats.databases == 1 ? "" : "s",
                stats.distributed ? ", distributed" : "");
  }
  return 0;
}
