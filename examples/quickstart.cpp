// Quickstart: one JClarens server in front of two heterogeneous marts.
//
// Shows the 90-second version of the system: create two vendor-flavoured
// databases (MySQL and MS-SQL, different physical naming), register them
// with a JClarens data-access server, and run logical-schema queries —
// including a join that spans both databases — through the Clarens
// web-service interface.
//
// Run: ./build/examples/quickstart
#include <cstdio>

#include "griddb/core/jclarens_server.h"

using namespace griddb;

int main() {
  // --- the grid fabric: hosts on a 100 Mbps LAN -------------------------
  net::Network network;
  network.AddHost("tier2-node");
  network.AddHost("client");
  rpc::Transport transport(&network, net::ServiceCosts::Default());

  // --- two marts with different vendors and physical schemas ------------
  engine::Database events_db("events_mart", sql::Vendor::kMySql);
  if (!events_db
           .Execute("CREATE TABLE EVENTS (EVENT_ID INT PRIMARY KEY, "
                    "RUN_ID INT, ENERGY DOUBLE, TAG VARCHAR(16))")
           .ok() ||
      !events_db
           .Execute("INSERT INTO EVENTS (EVENT_ID, RUN_ID, ENERGY, TAG) "
                    "VALUES (1, 1, 45.5, 'muon'), (2, 1, 12.0, 'electron'), "
                    "(3, 2, 99.2, 'muon'), (4, 2, 7.5, 'photon')")
           .ok()) {
    return 1;
  }

  engine::Database runs_db("runs_mart", sql::Vendor::kMsSql);
  if (!runs_db
           .Execute("CREATE TABLE RUNS (RUN_ID BIGINT, DETECTOR NVARCHAR(16))")
           .ok() ||
      !runs_db
           .Execute("INSERT INTO RUNS (RUN_ID, DETECTOR) VALUES "
                    "(1, 'ECAL'), (2, 'HCAL')")
           .ok()) {
    return 1;
  }

  // --- the grid database catalog (connection strings -> servers) --------
  ral::DatabaseCatalog catalog;
  (void)catalog.Add(
      {"mysql://tier2-node/events_mart", &events_db, "tier2-node", "", ""});
  (void)catalog.Add(
      {"mssql://tier2-node/runs_mart", &runs_db, "tier2-node", "", ""});

  // --- a JClarens server with the data access service -------------------
  core::DataAccessConfig config;
  config.server_name = "jclarens-demo";
  config.host = "tier2-node";
  config.server_url = "clarens://tier2-node:8080/clarens";
  core::JClarensServer server(config, &catalog, &transport);
  (void)server.service().RegisterLiveDatabase("mysql://tier2-node/events_mart",
                                              "mysql-jdbc");
  (void)server.service().RegisterLiveDatabase("mssql://tier2-node/runs_mart",
                                              "mssql-jdbc");

  std::printf("registered logical tables:");
  for (const std::string& table : server.service().LocalTables()) {
    std::printf(" %s", table.c_str());
  }
  std::printf("\n\n");

  // --- query the *logical* schema over the web-service interface --------
  rpc::RpcClient client(&transport, "client",
                        "clarens://tier2-node:8080/clarens");
  auto run_query = [&](const std::string& sql) {
    std::printf("SQL> %s\n", sql.c_str());
    rpc::XmlRpcArray params;
    params.emplace_back(sql);
    net::Cost cost;
    auto response = client.Call("dataaccess.query", std::move(params), &cost);
    if (!response.ok()) {
      std::printf("  error: %s\n\n", response.status().ToString().c_str());
      return;
    }
    auto rs = rpc::RpcToResultSet(**response->Member("result"));
    core::QueryStats stats = core::StatsFromRpc(**response->Member("stats"));
    std::printf("%s", rs->ToText().c_str());
    std::printf("  [%zu rows, %.1f ms simulated, distributed=%s]\n\n",
                stats.rows, cost.total_ms(),
                stats.distributed ? "yes" : "no");
  };

  // Single-database query (POOL-RAL fast path).
  run_query("SELECT event_id, energy, tag FROM events WHERE energy > 10 "
            "ORDER BY energy DESC");

  // Cross-database join: EVENTS lives in MySQL, RUNS in MS-SQL — the
  // middleware decomposes, fetches in parallel and merges.
  run_query("SELECT e.event_id, e.tag, r.detector FROM events e "
            "JOIN runs r ON e.run_id = r.run_id ORDER BY e.event_id");

  // Aggregation over the federation.
  run_query("SELECT r.detector, COUNT(*) AS n, AVG(e.energy) AS avg_energy "
            "FROM events e JOIN runs r ON e.run_id = r.run_id "
            "GROUP BY r.detector ORDER BY n DESC");
  return 0;
}
