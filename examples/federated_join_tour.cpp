// A tour of what the federation layer actually does under the hood:
// four marts with four different vendors (Oracle, MySQL, MS-SQL, SQLite),
// deliberately different physical naming, one logical query — and a look
// at the per-vendor sub-query SQL the planner emits, plus the baseline
// Unity driver failing where the enhanced driver succeeds.
//
// Run: ./build/examples/federated_join_tour
#include <cstdio>

#include "griddb/sql/render.h"
#include "griddb/unity/driver.h"

using namespace griddb;

namespace {

void MustOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  net::Network network;
  for (const char* host : {"t0", "t1", "t2", "laptop"}) network.AddHost(host);

  // --- four vendors, four naming conventions ----------------------------
  engine::Database oracle("tier0_conditions", sql::Vendor::kOracle);
  MustOk(oracle
             .Execute("CREATE TABLE COND_RUNS (RUN_ID NUMBER(19) PRIMARY "
                      "KEY, DETECTOR VARCHAR2(32), T_START NUMBER(19))")
             .status());
  MustOk(oracle
             .Execute("INSERT INTO COND_RUNS (RUN_ID, DETECTOR, T_START) "
                      "VALUES (1, 'ECAL', 1000), (2, 'HCAL', 2000), "
                      "(3, 'TRACKER', 3000)")
             .status());

  engine::Database mysql("tier1_events", sql::Vendor::kMySql);
  MustOk(mysql
             .Execute("CREATE TABLE evt_summary (evt_id INT PRIMARY KEY, "
                      "run_id INT, n_tracks INT)")
             .status());
  MustOk(mysql
             .Execute("INSERT INTO evt_summary (evt_id, run_id, n_tracks) "
                      "VALUES (1, 1, 12), (2, 1, 7), (3, 2, 22), (4, 3, 4)")
             .status());

  engine::Database mssql("tier2_quality", sql::Vendor::kMsSql);
  MustOk(mssql
             .Execute("CREATE TABLE RunQuality (run_id BIGINT, grade "
                      "NVARCHAR(8))")
             .status());
  MustOk(mssql
             .Execute("INSERT INTO RunQuality (run_id, grade) VALUES "
                      "(1, 'GOLD'), (2, 'SILVER'), (3, 'BAD')")
             .status());

  engine::Database sqlite("laptop_notes", sql::Vendor::kSqlite);
  MustOk(sqlite
             .Execute("CREATE TABLE shift_notes (run_id INTEGER, note TEXT)")
             .status());
  MustOk(sqlite
             .Execute("INSERT INTO shift_notes (run_id, note) VALUES "
                      "(1, 'smooth'), (2, 'HV trip at 02:14'), "
                      "(3, 'cooling failure')")
             .status());

  ral::DatabaseCatalog catalog;
  MustOk(catalog.Add({"oracle://t0/tier0_conditions", &oracle, "t0", "", ""}));
  MustOk(catalog.Add({"mysql://t1/tier1_events", &mysql, "t1", "", ""}));
  MustOk(catalog.Add({"mssql://t2/tier2_quality", &mssql, "t2", "", ""}));
  MustOk(catalog.Add({"sqlite://laptop/laptop_notes", &sqlite, "laptop", "",
                      ""}));

  auto add_all = [&](unity::UnityDriver& driver) {
    MustOk(driver.AddDatabase({"tier0_conditions",
                               "oracle://t0/tier0_conditions", "oracle-oci",
                               ""},
                              unity::GenerateXSpec(oracle)));
    MustOk(driver.AddDatabase(
        {"tier1_events", "mysql://t1/tier1_events", "mysql-jdbc", ""},
        unity::GenerateXSpec(mysql)));
    MustOk(driver.AddDatabase(
        {"tier2_quality", "mssql://t2/tier2_quality", "mssql-jdbc", ""},
        unity::GenerateXSpec(mssql)));
    MustOk(driver.AddDatabase(
        {"laptop_notes", "sqlite://laptop/laptop_notes", "sqlite-jdbc", ""},
        unity::GenerateXSpec(sqlite)));
  };

  const std::string query =
      "SELECT e.evt_id, e.n_tracks, c.detector, q.grade, s.note "
      "FROM evt_summary e "
      "JOIN cond_runs c ON e.run_id = c.run_id "
      "JOIN runquality q ON e.run_id = q.run_id "
      "JOIN shift_notes s ON e.run_id = s.run_id "
      "WHERE q.grade <> 'BAD' AND e.n_tracks > 5 "
      "ORDER BY e.evt_id";

  std::printf("logical query:\n  %s\n\n", query.c_str());

  // --- baseline Unity: no cross-database joins ---------------------------
  {
    unity::UnityDriverOptions options;
    options.enhanced = false;
    unity::UnityDriver baseline(&catalog, &network,
                                net::ServiceCosts::Default(), options);
    add_all(baseline);
    auto plan = baseline.Plan(query);
    std::printf("baseline Unity driver: %s\n\n",
                plan.ok() ? "unexpectedly planned?!"
                          : plan.status().ToString().c_str());
  }

  // --- enhanced driver: decompose, render per-vendor, merge --------------
  unity::UnityDriverOptions options;
  options.enhanced = true;
  options.client_host = "t1";
  unity::UnityDriver driver(&catalog, &network, net::ServiceCosts::Default(),
                            options);
  add_all(driver);

  auto plan = driver.Plan(query);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("enhanced driver decomposition (%zu sub-queries):\n",
              plan->subqueries.size());
  for (const unity::SubQuery& sub : plan->subqueries) {
    auto conn = ral::ConnectionString::Parse(sub.table.connection);
    const sql::Dialect& dialect = sql::Dialect::For(conn->vendor);
    std::printf("  [%s @ %s]\n    %s\n", dialect.name().c_str(),
                conn->host.c_str(), sub.RenderSql(dialect).c_str());
  }
  std::printf("  [merge @ middleware]\n    %s\n\n",
              sql::RenderSelect(*plan->merge_stmt,
                                sql::Dialect::For(sql::Vendor::kSqlite))
                  .c_str());

  net::Cost cost;
  auto rs = driver.Query(query, &cost);
  if (!rs.ok()) {
    std::fprintf(stderr, "query failed: %s\n", rs.status().ToString().c_str());
    return 1;
  }
  std::printf("merged result (%.0f ms simulated):\n%s", cost.total_ms(),
              rs->ToText().c_str());
  return 0;
}
