// Runtime evolution features: plug-in databases (paper §4.10) and schema
// change tracking (paper §4.9).
//
// A JClarens server is running; a brand-new SQLite database appears and is
// plugged in from its published XSpec URL without a restart; then its
// schema changes behind the middleware's back and the tracker thread
// notices via the size-then-MD5 comparison and hot-swaps the metadata.
//
// Run: ./build/examples/plugin_and_schema_tracking
#include <chrono>
#include <cstdio>
#include <thread>

#include "griddb/core/jclarens_server.h"
#include "griddb/core/schema_tracker.h"

using namespace griddb;

int main() {
  net::Network network;
  network.AddHost("tier3-node");
  network.AddHost("client");
  rpc::Transport transport(&network, net::ServiceCosts::Default());

  ral::DatabaseCatalog catalog;
  core::XSpecRepository xspec_repo;

  core::DataAccessConfig config;
  config.server_name = "jclarens-t3";
  config.host = "tier3-node";
  config.server_url = "clarens://tier3-node:8080/clarens";
  core::JClarensServer server(config, &catalog, &transport, &xspec_repo);
  std::printf("JClarens server up at %s with %zu tables\n\n",
              server.url().c_str(), server.service().LocalTables().size());

  // --- a new database appears at runtime --------------------------------
  std::printf("== plug-in database (paper 4.10) ==\n");
  engine::Database lumi_db("lumi_db", sql::Vendor::kSqlite);
  if (!lumi_db
           .Execute("CREATE TABLE LUMI_BLOCKS (BLOCK_ID INTEGER PRIMARY KEY, "
                    "RUN_ID INTEGER, LUMINOSITY REAL)")
           .ok() ||
      !lumi_db
           .Execute("INSERT INTO LUMI_BLOCKS (BLOCK_ID, RUN_ID, LUMINOSITY) "
                    "VALUES (1, 1, 0.52), (2, 1, 0.61), (3, 2, 0.48)")
           .ok()) {
    return 1;
  }
  (void)catalog.Add(
      {"sqlite://tier3-node/lumi_db", &lumi_db, "tier3-node", "", ""});

  // Its administrator publishes the XSpec at a URL...
  xspec_repo.Put("http://tools.example/xspec/lumi_db.xspec",
                 unity::GenerateXSpec(lumi_db).ToXml());

  // ...and any client plugs it in over the web-service interface.
  rpc::RpcClient client(&transport, "client",
                        "clarens://tier3-node:8080/clarens");
  rpc::XmlRpcArray plugin_params;
  plugin_params.emplace_back("http://tools.example/xspec/lumi_db.xspec");
  plugin_params.emplace_back("sqlite-jdbc");
  plugin_params.emplace_back("sqlite://tier3-node/lumi_db");
  auto plugged = client.Call("dataaccess.pluginDatabase",
                             std::move(plugin_params), nullptr);
  if (!plugged.ok()) {
    std::printf("plug-in failed: %s\n", plugged.status().ToString().c_str());
    return 1;
  }
  std::printf("plugged in; tables now:");
  for (const std::string& t : server.service().LocalTables()) {
    std::printf(" %s", t.c_str());
  }
  std::printf("\n");

  auto rs = server.service().Query(
      "SELECT run_id, SUM(luminosity) AS lumi FROM lumi_blocks "
      "GROUP BY run_id ORDER BY run_id",
      nullptr);
  if (!rs.ok()) return 1;
  std::printf("%s\n", rs->ToText().c_str());

  // --- schema changes are tracked in the background ---------------------
  std::printf("== schema tracking (paper 4.9) ==\n");
  core::SchemaTracker tracker(&server.service());
  tracker.RunOnceAll();  // establish the XSpec baselines
  tracker.Start(std::chrono::milliseconds(10));
  std::printf("tracker running every 10 ms (size-then-MD5 comparison)\n");

  // A DBA adds a table directly on the backend.
  if (!lumi_db.Execute("CREATE TABLE BEAM_STATUS (TICK INTEGER PRIMARY KEY, "
                       "STABLE BOOLEAN)")
           .ok() ||
      !lumi_db.Execute("INSERT INTO BEAM_STATUS (TICK, STABLE) VALUES "
                       "(1, TRUE), (2, FALSE)")
           .ok()) {
    return 1;
  }
  std::printf("backend DBA created BEAM_STATUS behind the middleware...\n");

  for (int i = 0; i < 300 && tracker.changes_applied() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  tracker.Stop();
  std::printf("tracker applied %zu change(s) after %zu check(s)\n",
              tracker.changes_applied(), tracker.checks_run());

  auto beam = server.service().Query(
      "SELECT tick, stable FROM beam_status ORDER BY tick", nullptr);
  if (!beam.ok()) {
    std::printf("query failed: %s\n", beam.status().ToString().c_str());
    return 1;
  }
  std::printf("new table queryable without restart:\n%s",
              beam->ToText().c_str());
  return 0;
}
