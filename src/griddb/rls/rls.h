// Replica Location Service (paper §4.8).
//
// A central catalog mapping logical table names to the URLs of the
// JClarens servers hosting them. Each data-access service instance
// publishes its tables here; the data access layer consults it whenever a
// query references a table that is not locally registered, then forwards
// the sub-query to the returned server. Modeled after the Globus RLS used
// by the prototype, reduced to the publish / unpublish / lookup surface
// the paper actually exercises.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "griddb/rpc/server.h"
#include "griddb/util/status.h"

namespace griddb::rls {

/// The central RLS server: in-memory catalog + RPC binding.
class RlsServer {
 public:
  /// Binds "rls.publish", "rls.unpublish", "rls.lookup", "rls.list" at
  /// `url` on the transport.
  RlsServer(const std::string& url, rpc::Transport* transport);

  // Direct (in-process) catalog access — also used by the RPC handlers.
  Status Publish(const std::string& logical_name,
                 const std::string& server_url);
  Status Unpublish(const std::string& logical_name,
                   const std::string& server_url);
  /// Server URLs hosting `logical_name`; empty when unknown.
  std::vector<std::string> Lookup(const std::string& logical_name) const;
  /// Every mapping, sorted by logical name.
  std::vector<std::pair<std::string, std::string>> Dump() const;
  size_t NumMappings() const;

  const std::string& url() const { return server_.url(); }

 private:
  void RegisterMethods();

  mutable std::shared_mutex mu_;
  std::map<std::string, std::set<std::string>> catalog_;
  rpc::RpcServer server_;
};

/// Client-side helper used by JClarens instances.
class RlsClient {
 public:
  RlsClient(rpc::Transport* transport, std::string client_host,
            std::string rls_url);

  /// Publishes one table -> server mapping (figure 3's flow).
  Status Publish(const std::string& logical_name,
                 const std::string& server_url, net::Cost* cost = nullptr);
  Status PublishAll(const std::vector<std::string>& logical_names,
                    const std::string& server_url, net::Cost* cost = nullptr);
  Status Unpublish(const std::string& logical_name,
                   const std::string& server_url, net::Cost* cost = nullptr);

  /// Hosting servers for a logical table. Charges the RLS lookup cost the
  /// paper identifies as part of the distributed-query penalty (cache hits
  /// charge nothing: the answer is local). `cancel` bounds the lookup by
  /// the querying client's remaining budget (see rpc::RpcClient::Call).
  Result<std::vector<std::string>> Lookup(const std::string& logical_name,
                                          net::Cost* cost = nullptr,
                                          const CancelToken* cancel = nullptr);

  /// Opt-in lookup cache. Off by default so the paper's per-query RLS
  /// charge stays in the measured numbers; switch on to survive RLS
  /// outages (served stale) and to cut repeat-lookup cost.
  void set_cache_enabled(bool enabled);
  bool cache_enabled() const;
  /// Drops one cached mapping — called when a server the cache named
  /// turned out dead, so the next lookup re-consults the live catalog.
  void InvalidateCache(const std::string& logical_name);
  void ClearCache();
  size_t cache_hits() const;

  /// Retry behaviour of the underlying RPC client.
  void set_retry_policy(const rpc::RetryPolicy& policy) {
    client_.set_retry_policy(policy);
  }

  /// Tracer for the underlying RPC client (lookups become "rpc.call"
  /// spans under whatever span is current on the calling thread).
  void set_tracer(obs::Tracer* tracer) { client_.set_tracer(tracer); }

 private:
  rpc::RpcClient client_;
  mutable std::mutex cache_mu_;
  bool cache_enabled_ = false;
  size_t cache_hits_ = 0;
  std::map<std::string, std::vector<std::string>> cache_;  // logical -> urls
};

}  // namespace griddb::rls
