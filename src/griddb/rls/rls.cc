#include "griddb/rls/rls.h"

#include <mutex>

#include "griddb/obs/metrics.h"
#include "griddb/util/strings.h"

namespace griddb::rls {

using rpc::XmlRpcArray;
using rpc::XmlRpcValue;

namespace {
obs::Counter& LookupCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.rls.lookups");
  return *c;
}
obs::Counter& CacheHitCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.rls.cache_hits");
  return *c;
}
obs::Counter& CacheInvalidationCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.rls.cache_invalidations");
  return *c;
}
obs::Counter& PublishCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.rls.publishes");
  return *c;
}
}  // namespace

RlsServer::RlsServer(const std::string& url, rpc::Transport* transport)
    : server_(url, transport) {
  RegisterMethods();
}

void RlsServer::RegisterMethods() {
  auto expect_strings = [](const XmlRpcArray& params,
                           size_t n) -> Result<std::vector<std::string>> {
    if (params.size() != n) {
      return InvalidArgument("expected " + std::to_string(n) + " parameters");
    }
    std::vector<std::string> out;
    out.reserve(n);
    for (const XmlRpcValue& p : params) {
      GRIDDB_ASSIGN_OR_RETURN(std::string s, p.AsString());
      out.push_back(std::move(s));
    }
    return out;
  };

  (void)server_.RegisterMethod(
      "rls.publish",
      [this, expect_strings](const XmlRpcArray& params,
                             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)ctx;
        GRIDDB_ASSIGN_OR_RETURN(std::vector<std::string> args,
                                expect_strings(params, 2));
        GRIDDB_RETURN_IF_ERROR(Publish(args[0], args[1]));
        return XmlRpcValue(true);
      });

  (void)server_.RegisterMethod(
      "rls.unpublish",
      [this, expect_strings](const XmlRpcArray& params,
                             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)ctx;
        GRIDDB_ASSIGN_OR_RETURN(std::vector<std::string> args,
                                expect_strings(params, 2));
        GRIDDB_RETURN_IF_ERROR(Unpublish(args[0], args[1]));
        return XmlRpcValue(true);
      });

  (void)server_.RegisterMethod(
      "rls.lookup",
      [this, expect_strings](const XmlRpcArray& params,
                             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        GRIDDB_ASSIGN_OR_RETURN(std::vector<std::string> args,
                                expect_strings(params, 1));
        // Catalog probe cost (index access on the RLS backend).
        ctx.cost.AddMs(ctx.transport->costs().rls_lookup_ms);
        XmlRpcArray urls;
        for (const std::string& url : Lookup(args[0])) urls.emplace_back(url);
        return XmlRpcValue(std::move(urls));
      });

  (void)server_.RegisterMethod(
      "rls.list",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)params;
        (void)ctx;
        XmlRpcArray rows;
        for (const auto& [logical, url] : Dump()) {
          rpc::XmlRpcStruct row;
          row["logical"] = logical;
          row["url"] = url;
          rows.emplace_back(std::move(row));
        }
        return XmlRpcValue(std::move(rows));
      });
}

Status RlsServer::Publish(const std::string& logical_name,
                          const std::string& server_url) {
  if (logical_name.empty()) return InvalidArgument("empty logical name");
  GRIDDB_ASSIGN_OR_RETURN(rpc::Url parsed, rpc::Url::Parse(server_url));
  (void)parsed;
  std::unique_lock lock(mu_);
  catalog_[ToLower(logical_name)].insert(server_url);
  return Status::Ok();
}

Status RlsServer::Unpublish(const std::string& logical_name,
                            const std::string& server_url) {
  std::unique_lock lock(mu_);
  auto it = catalog_.find(ToLower(logical_name));
  if (it == catalog_.end() || it->second.erase(server_url) == 0) {
    return NotFound("no mapping " + logical_name + " -> " + server_url);
  }
  if (it->second.empty()) catalog_.erase(it);
  return Status::Ok();
}

std::vector<std::string> RlsServer::Lookup(
    const std::string& logical_name) const {
  std::shared_lock lock(mu_);
  auto it = catalog_.find(ToLower(logical_name));
  if (it == catalog_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::pair<std::string, std::string>> RlsServer::Dump() const {
  std::shared_lock lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [logical, urls] : catalog_) {
    for (const std::string& url : urls) out.emplace_back(logical, url);
  }
  return out;
}

size_t RlsServer::NumMappings() const {
  std::shared_lock lock(mu_);
  size_t n = 0;
  for (const auto& [logical, urls] : catalog_) {
    (void)logical;
    n += urls.size();
  }
  return n;
}

// ---------- RlsClient ----------

RlsClient::RlsClient(rpc::Transport* transport, std::string client_host,
                     std::string rls_url)
    : client_(transport, std::move(client_host), std::move(rls_url)) {
  // RLS speaks a lightweight connectionless catalog protocol; there is no
  // heavyweight connect/auth handshake, only the per-lookup charge.
  client_.set_connect_cost_ms(0.0);
}

Status RlsClient::Publish(const std::string& logical_name,
                          const std::string& server_url, net::Cost* cost) {
  XmlRpcArray params;
  params.emplace_back(logical_name);
  params.emplace_back(server_url);
  GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue result,
                          client_.Call("rls.publish", std::move(params), cost));
  (void)result;
  PublishCounter().Add(1);
  InvalidateCache(logical_name);  // a cached miss/mapping is now stale
  return Status::Ok();
}

Status RlsClient::PublishAll(const std::vector<std::string>& logical_names,
                             const std::string& server_url, net::Cost* cost) {
  for (const std::string& name : logical_names) {
    GRIDDB_RETURN_IF_ERROR(Publish(name, server_url, cost));
  }
  return Status::Ok();
}

Status RlsClient::Unpublish(const std::string& logical_name,
                            const std::string& server_url, net::Cost* cost) {
  XmlRpcArray params;
  params.emplace_back(logical_name);
  params.emplace_back(server_url);
  GRIDDB_ASSIGN_OR_RETURN(
      XmlRpcValue result, client_.Call("rls.unpublish", std::move(params), cost));
  (void)result;
  InvalidateCache(logical_name);
  return Status::Ok();
}

Result<std::vector<std::string>> RlsClient::Lookup(
    const std::string& logical_name, net::Cost* cost,
    const CancelToken* cancel) {
  const std::string key = ToLower(logical_name);
  LookupCounter().Add(1);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_enabled_) {
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++cache_hits_;
        CacheHitCounter().Add(1);
        return it->second;
      }
    }
  }
  XmlRpcArray params;
  params.emplace_back(logical_name);
  GRIDDB_ASSIGN_OR_RETURN(
      XmlRpcValue result,
      client_.Call("rls.lookup", std::move(params), cost, /*forward_depth=*/0,
                   /*forward_path=*/"", /*call_stats=*/nullptr, cancel));
  GRIDDB_ASSIGN_OR_RETURN(const XmlRpcArray* urls, result.AsArray());
  std::vector<std::string> out;
  out.reserve(urls->size());
  for (const XmlRpcValue& url : *urls) {
    GRIDDB_ASSIGN_OR_RETURN(std::string s, url.AsString());
    out.push_back(std::move(s));
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_enabled_) cache_[key] = out;
  }
  return out;
}

void RlsClient::set_cache_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_enabled_ = enabled;
  if (!enabled) cache_.clear();
}

bool RlsClient::cache_enabled() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_enabled_;
}

void RlsClient::InvalidateCache(const std::string& logical_name) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (cache_.erase(ToLower(logical_name)) > 0) {
    CacheInvalidationCounter().Add(1);
  }
}

void RlsClient::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
}

size_t RlsClient::cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_hits_;
}

}  // namespace griddb::rls
