// HBOOK-style histograms (paper ref [11]) and the JAS-plug-in bridge.
//
// The prototype ships a Java Analysis Studio plug-in that submits queries
// through the web service and visualizes the returned rows as histograms
// (paper §6). Histogram1D/2D provide the booking/filling/statistics
// surface; FillFromResultSet is the bridge from a query result.
#pragma once

#include <string>
#include <vector>

#include "griddb/storage/result_set.h"
#include "griddb/util/status.h"

namespace griddb::ntuple {

class Histogram1D {
 public:
  Histogram1D(std::string title, int nbins, double lo, double hi);

  void Fill(double x, double weight = 1.0);

  const std::string& title() const { return title_; }
  int nbins() const { return static_cast<int>(bins_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double BinContent(int bin) const { return bins_[static_cast<size_t>(bin)]; }
  double BinCenter(int bin) const;
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }

  /// Weighted entry count inside the axis range.
  double entries() const { return entries_; }
  double Mean() const;
  double StdDev() const;
  double MaxBinContent() const;

  /// Simple terminal rendering (bar per bin).
  std::string ToAscii(int width = 50) const;

 private:
  std::string title_;
  double lo_, hi_, bin_width_;
  std::vector<double> bins_;
  double underflow_ = 0, overflow_ = 0;
  double entries_ = 0, sum_ = 0, sum_sq_ = 0;
};

class Histogram2D {
 public:
  Histogram2D(std::string title, int nx, double xlo, double xhi, int ny,
              double ylo, double yhi);

  void Fill(double x, double y, double weight = 1.0);
  double BinContent(int ix, int iy) const;
  double entries() const { return entries_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }

 private:
  std::string title_;
  int nx_, ny_;
  double xlo_, xhi_, ylo_, yhi_;
  std::vector<double> bins_;  // row-major [iy * nx + ix]
  double entries_ = 0;
};

/// Fills `hist` from a named numeric column of a query result — what the
/// JAS plug-in does with rows returned by the data access service.
Status FillFromResultSet(Histogram1D& hist, const storage::ResultSet& rs,
                         const std::string& column);

}  // namespace griddb::ntuple
