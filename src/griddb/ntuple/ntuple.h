// HBOOK-style ntuples (paper §4.1) and their relational loading.
//
// "Suppose that a dataset contains 10000 events and each event consists
// of many variables (say NVAR=200), then an Ntuple is like a table where
// these 200 variables are the columns and each event is a row."
//
// The generator produces physics-flavoured synthetic events (the paper's
// CMS test data is not public); LoadNormalized writes them into the
// normalized source-database schema, and DenormalizedRows produces the
// wide star-schema fact rows the ETL transform emits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "griddb/engine/database.h"
#include "griddb/storage/value.h"
#include "griddb/util/status.h"

namespace griddb::ntuple {

struct NtupleEvent {
  int64_t event_id = 0;
  int64_t run_id = 0;
  std::vector<double> values;  ///< One per variable.
};

class Ntuple {
 public:
  Ntuple(std::vector<std::string> variable_names, int64_t first_event_id = 1)
      : variables_(std::move(variable_names)), next_id_(first_event_id) {}

  const std::vector<std::string>& variables() const { return variables_; }
  size_t nvar() const { return variables_.size(); }
  const std::vector<NtupleEvent>& events() const { return events_; }
  size_t num_events() const { return events_.size(); }

  /// Appends an event; `values` must have nvar entries.
  Status Append(int64_t run_id, std::vector<double> values);

  /// Index of a variable by name, or -1.
  int VariableIndex(std::string_view name) const;

 private:
  std::vector<std::string> variables_;
  std::vector<NtupleEvent> events_;
  int64_t next_id_;
};

struct GeneratorOptions {
  size_t num_events = 1000;
  size_t nvar = 8;       ///< >= 8; extra variables are Gaussian "var_N".
  size_t num_runs = 4;
  uint64_t seed = 2005;  ///< Deterministic workloads for benches.
  int64_t first_event_id = 1;
};

/// Synthesizes an ntuple. The first eight variables are physics-flavoured
/// (e_total, pt, eta, phi, nhits, charge, chi2, mass) with plausible
/// distributions; the remainder are var_8, var_9, ... Gaussians.
Ntuple GenerateNtuple(const GeneratorOptions& options);

/// The run metadata that accompanies generated events.
struct RunInfo {
  int64_t run_id;
  std::string detector;
};
std::vector<RunInfo> GenerateRuns(const GeneratorOptions& options);

// ---- relational loading ----

/// Creates the normalized source schema (runs / events / variables /
/// event_values) in `db`, using the dialect-appropriate DDL, with an
/// optional table-name prefix for hosting several datasets side by side.
Status CreateNormalizedSchema(engine::Database& db,
                              const std::string& prefix = "");

/// Loads an ntuple into the normalized schema. One row per (event,
/// variable) lands in event_values — the shape the ETL must denormalize.
Status LoadNormalized(const Ntuple& nt, const std::vector<RunInfo>& runs,
                      engine::Database& db, const std::string& prefix = "");

/// The denormalized (star fact) schema matching this ntuple: one column
/// per variable plus event_id / run_id / detector.
storage::TableSchema DenormalizedSchema(const Ntuple& nt,
                                        const std::string& table_name);

/// Wide fact rows for the warehouse (the ETL transform's output shape).
std::vector<storage::Row> DenormalizedRows(const Ntuple& nt,
                                           const std::vector<RunInfo>& runs);

}  // namespace griddb::ntuple
