#include "griddb/ntuple/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace griddb::ntuple {

Histogram1D::Histogram1D(std::string title, int nbins, double lo, double hi)
    : title_(std::move(title)), lo_(lo), hi_(hi) {
  assert(nbins > 0 && hi > lo);
  bins_.assign(static_cast<size_t>(nbins), 0.0);
  bin_width_ = (hi_ - lo_) / nbins;
}

void Histogram1D::Fill(double x, double weight) {
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  size_t bin = static_cast<size_t>((x - lo_) / bin_width_);
  bin = std::min(bin, bins_.size() - 1);
  bins_[bin] += weight;
  entries_ += weight;
  sum_ += weight * x;
  sum_sq_ += weight * x * x;
}

double Histogram1D::BinCenter(int bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width_;
}

double Histogram1D::Mean() const {
  return entries_ > 0 ? sum_ / entries_ : 0.0;
}

double Histogram1D::StdDev() const {
  if (entries_ <= 0) return 0.0;
  double mean = Mean();
  double var = sum_sq_ / entries_ - mean * mean;
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Histogram1D::MaxBinContent() const {
  double best = 0;
  for (double b : bins_) best = std::max(best, b);
  return best;
}

std::string Histogram1D::ToAscii(int width) const {
  std::string out = title_ + "  (entries=" + std::to_string(entries_) +
                    ", mean=" + std::to_string(Mean()) +
                    ", rms=" + std::to_string(StdDev()) + ")\n";
  double max = MaxBinContent();
  for (size_t i = 0; i < bins_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "%10.3f | ",
                  BinCenter(static_cast<int>(i)));
    out += label;
    int bar = max > 0 ? static_cast<int>(bins_[i] / max * width) : 0;
    out.append(static_cast<size_t>(bar), '#');
    out += "  " + std::to_string(static_cast<long long>(bins_[i]));
    out += '\n';
  }
  return out;
}

Histogram2D::Histogram2D(std::string title, int nx, double xlo, double xhi,
                         int ny, double ylo, double yhi)
    : title_(std::move(title)),
      nx_(nx),
      ny_(ny),
      xlo_(xlo),
      xhi_(xhi),
      ylo_(ylo),
      yhi_(yhi) {
  assert(nx > 0 && ny > 0 && xhi > xlo && yhi > ylo);
  bins_.assign(static_cast<size_t>(nx) * static_cast<size_t>(ny), 0.0);
}

void Histogram2D::Fill(double x, double y, double weight) {
  if (x < xlo_ || x >= xhi_ || y < ylo_ || y >= yhi_) return;
  size_t ix = std::min(static_cast<size_t>((x - xlo_) / (xhi_ - xlo_) *
                                           static_cast<double>(nx_)),
                       static_cast<size_t>(nx_ - 1));
  size_t iy = std::min(static_cast<size_t>((y - ylo_) / (yhi_ - ylo_) *
                                           static_cast<double>(ny_)),
                       static_cast<size_t>(ny_ - 1));
  bins_[iy * static_cast<size_t>(nx_) + ix] += weight;
  entries_ += weight;
}

double Histogram2D::BinContent(int ix, int iy) const {
  return bins_[static_cast<size_t>(iy) * static_cast<size_t>(nx_) +
               static_cast<size_t>(ix)];
}

Status FillFromResultSet(Histogram1D& hist, const storage::ResultSet& rs,
                         const std::string& column) {
  int idx = rs.ColumnIndex(column);
  if (idx < 0) {
    return NotFound("result set has no column '" + column + "'");
  }
  for (const storage::Row& row : rs.rows) {
    const storage::Value& cell = row[static_cast<size_t>(idx)];
    if (cell.is_null()) continue;
    GRIDDB_ASSIGN_OR_RETURN(double v, cell.AsDouble());
    hist.Fill(v);
  }
  return Status::Ok();
}

}  // namespace griddb::ntuple
