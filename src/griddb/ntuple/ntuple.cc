#include "griddb/ntuple/ntuple.h"

#include <cmath>

#include "griddb/util/rng.h"
#include "griddb/util/strings.h"

namespace griddb::ntuple {

using storage::DataType;
using storage::Row;
using storage::TableSchema;
using storage::Value;

Status Ntuple::Append(int64_t run_id, std::vector<double> values) {
  if (values.size() != variables_.size()) {
    return InvalidArgument("event has " + std::to_string(values.size()) +
                           " values, ntuple declares " +
                           std::to_string(variables_.size()) + " variables");
  }
  NtupleEvent event;
  event.event_id = next_id_++;
  event.run_id = run_id;
  event.values = std::move(values);
  events_.push_back(std::move(event));
  return Status::Ok();
}

int Ntuple::VariableIndex(std::string_view name) const {
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (EqualsIgnoreCase(variables_[i], name)) return static_cast<int>(i);
  }
  return -1;
}

namespace {
const char* kPhysicsVars[8] = {"e_total", "pt",     "eta",  "phi",
                               "nhits",   "charge", "chi2", "mass"};
const char* kDetectors[] = {"ECAL", "HCAL", "TRACKER", "MUON_CH"};
}  // namespace

std::vector<RunInfo> GenerateRuns(const GeneratorOptions& options) {
  std::vector<RunInfo> runs;
  size_t n = std::max<size_t>(1, options.num_runs);
  runs.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    runs.push_back({static_cast<int64_t>(r + 1),
                    kDetectors[r % (sizeof(kDetectors) / sizeof(*kDetectors))]});
  }
  return runs;
}

Ntuple GenerateNtuple(const GeneratorOptions& options) {
  size_t nvar = std::max<size_t>(8, options.nvar);
  std::vector<std::string> names;
  names.reserve(nvar);
  for (size_t i = 0; i < nvar; ++i) {
    names.push_back(i < 8 ? kPhysicsVars[i] : "var_" + std::to_string(i));
  }
  Ntuple nt(std::move(names), options.first_event_id);

  Rng rng(options.seed);
  size_t num_runs = std::max<size_t>(1, options.num_runs);
  for (size_t e = 0; e < options.num_events; ++e) {
    std::vector<double> v(nvar);
    double pt = rng.Exponential(1.0 / 18.0);            // ~18 GeV mean
    double eta = rng.Gaussian(0.0, 1.6);
    double phi = rng.Uniform(-M_PI, M_PI);
    double mass = std::fabs(rng.Gaussian(91.0, 6.0));   // Z-ish peak
    v[0] = pt * std::cosh(eta) + rng.Exponential(0.5);  // e_total
    v[1] = pt;
    v[2] = eta;
    v[3] = phi;
    v[4] = static_cast<double>(rng.UniformInt(4, 48));  // nhits
    v[5] = rng.NextDouble() < 0.5 ? -1.0 : 1.0;         // charge
    v[6] = rng.Exponential(1.0);                        // chi2
    v[7] = mass;
    for (size_t i = 8; i < nvar; ++i) v[i] = rng.Gaussian(0.0, 1.0);
    int64_t run_id = rng.UniformInt(1, static_cast<int64_t>(num_runs));
    (void)nt.Append(run_id, std::move(v));
  }
  return nt;
}

Status CreateNormalizedSchema(engine::Database& db, const std::string& prefix) {
  GRIDDB_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      prefix + "runs", {{"run_id", DataType::kInt64, true, true},
                        {"detector", DataType::kString, true, false}})));
  GRIDDB_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      prefix + "events", {{"event_id", DataType::kInt64, true, true},
                          {"run_id", DataType::kInt64, true, false}},
      {{{"run_id"}, prefix + "runs", {"run_id"}}})));
  GRIDDB_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      prefix + "variables", {{"var_id", DataType::kInt64, true, true},
                             {"name", DataType::kString, true, false}})));
  GRIDDB_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      prefix + "event_values",
      {{"event_id", DataType::kInt64, true, false},
       {"var_id", DataType::kInt64, true, false},
       {"value", DataType::kDouble, false, false}},
      {{{"event_id"}, prefix + "events", {"event_id"}},
       {{"var_id"}, prefix + "variables", {"var_id"}}})));
  return Status::Ok();
}

Status LoadNormalized(const Ntuple& nt, const std::vector<RunInfo>& runs,
                      engine::Database& db, const std::string& prefix) {
  std::vector<Row> run_rows;
  run_rows.reserve(runs.size());
  for (const RunInfo& run : runs) {
    run_rows.push_back({Value(run.run_id), Value(run.detector)});
  }
  GRIDDB_RETURN_IF_ERROR(db.InsertRows(prefix + "runs", std::move(run_rows)));

  std::vector<Row> var_rows;
  var_rows.reserve(nt.nvar());
  for (size_t i = 0; i < nt.nvar(); ++i) {
    var_rows.push_back(
        {Value(static_cast<int64_t>(i)), Value(nt.variables()[i])});
  }
  GRIDDB_RETURN_IF_ERROR(
      db.InsertRows(prefix + "variables", std::move(var_rows)));

  std::vector<Row> event_rows;
  std::vector<Row> value_rows;
  event_rows.reserve(nt.num_events());
  value_rows.reserve(nt.num_events() * nt.nvar());
  for (const NtupleEvent& event : nt.events()) {
    event_rows.push_back({Value(event.event_id), Value(event.run_id)});
    for (size_t i = 0; i < event.values.size(); ++i) {
      value_rows.push_back({Value(event.event_id),
                            Value(static_cast<int64_t>(i)),
                            Value(event.values[i])});
    }
  }
  GRIDDB_RETURN_IF_ERROR(
      db.InsertRows(prefix + "events", std::move(event_rows)));
  return db.InsertRows(prefix + "event_values", std::move(value_rows));
}

TableSchema DenormalizedSchema(const Ntuple& nt,
                               const std::string& table_name) {
  std::vector<storage::ColumnDef> columns = {
      {"event_id", DataType::kInt64, true, true},
      {"run_id", DataType::kInt64, true, false},
      {"detector", DataType::kString, false, false}};
  for (const std::string& var : nt.variables()) {
    columns.push_back({var, DataType::kDouble, false, false});
  }
  return TableSchema(table_name, std::move(columns));
}

std::vector<Row> DenormalizedRows(const Ntuple& nt,
                                  const std::vector<RunInfo>& runs) {
  std::vector<Row> out;
  out.reserve(nt.num_events());
  for (const NtupleEvent& event : nt.events()) {
    Row row;
    row.reserve(3 + event.values.size());
    row.push_back(Value(event.event_id));
    row.push_back(Value(event.run_id));
    std::string detector;
    for (const RunInfo& run : runs) {
      if (run.run_id == event.run_id) {
        detector = run.detector;
        break;
      }
    }
    row.push_back(detector.empty() ? Value::Null() : Value(detector));
    for (double v : event.values) row.push_back(Value(v));
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace griddb::ntuple
