#include "griddb/util/journal.h"

#include <sstream>

#include "griddb/util/fs.h"
#include "griddb/util/md5.h"

namespace griddb::util {

namespace {

constexpr std::string_view kMagic = "griddb-journal v1\n";

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  Status st = Fs().WriteTruncate(tmp, content);
  if (st.ok()) st = Fs().Fsync(tmp);
  if (!st.ok()) {
    // Best-effort cleanup; the write/fsync error is what the caller needs.
    (void)Fs().Unlink(tmp);
    return st;
  }
  st = Fs().Rename(tmp, path);
  if (!st.ok()) {
    (void)Fs().Unlink(tmp);
    return st;
  }
  Fs().SyncParentDir(path);
  return Status::Ok();
}

Status FsyncFile(const std::string& path) { return Fs().Fsync(path); }

JournalWriter::~JournalWriter() = default;

void JournalWriter::Close() {
  // Every Append is a complete open-append-fsync-close unit through the
  // FileSystem seam, so there is no descriptor to release any more. Kept
  // because crash tests call it to model "the process let go of the file".
}

Status JournalWriter::TruncateTo(uint64_t bytes) {
  Status st = Fs().Truncate(path_, bytes);
  if (st.code() == StatusCode::kNotFound) return Status::Ok();  // no repair
  GRIDDB_RETURN_IF_ERROR(st);
  return Fs().Fsync(path_);
}

Status JournalWriter::Append(std::string_view payload) {
  auto size = Fs().FileSize(path_);
  bool fresh = false;
  if (!size.ok()) {
    if (size.status().code() != StatusCode::kNotFound) return size.status();
    fresh = true;
  } else {
    fresh = *size == 0;
  }

  std::string frame;
  if (fresh) frame.append(kMagic);
  frame += "rec " + std::to_string(payload.size()) + " md5 " +
           Md5Hex(payload) + "\n";
  frame.append(payload);
  frame += "\n";

  if (Status appended = Fs().Append(path_, frame); !appended.ok()) {
    // The append may have torn: a prefix of the frame can be on disk
    // (short write, ENOSPC mid-write). Appends are O_APPEND, so a
    // retried record would land after those bytes — beyond where every
    // replay stops — and be acknowledged yet invisible forever. Repair
    // the tear now so the caller's retry lands on a decodable boundary.
    if (auto replay = ReadJournal(path_);
        replay.ok() && replay->truncated) {
      (void)TruncateTo(replay->intact_bytes);
    }
    return appended;
  }
  GRIDDB_RETURN_IF_ERROR(Fs().Fsync(path_));
  if (fresh) Fs().SyncParentDir(path_);
  return Status::Ok();
}

Result<JournalReplay> ReadJournal(const std::string& path) {
  JournalReplay replay;
  auto content_or = Fs().ReadFile(path);
  if (!content_or.ok()) {
    if (content_or.status().code() == StatusCode::kNotFound) {
      return replay;  // empty journal
    }
    return content_or.status();
  }
  const std::string& content = *content_or;
  if (content.empty()) return replay;  // created but never appended
  if (content.size() < kMagic.size() ||
      std::string_view(content).substr(0, kMagic.size()) != kMagic) {
    if (kMagic.substr(0, content.size()) == content) {
      // A strict prefix of the magic: the very first append (which
      // writes header + frame in one go) was torn by a crash. An empty
      // journal with a torn tail, not a foreign file.
      replay.truncated = true;
      return replay;
    }
    return Corruption("journal '" + path + "': bad magic header");
  }

  size_t pos = kMagic.size();
  while (pos < content.size()) {
    // Header line: "rec <payload_bytes> md5 <hex>\n". Any decode failure
    // from here to EOF is a torn tail: keep the intact prefix.
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) break;
    std::istringstream hdr(content.substr(pos, eol - pos));
    std::string rec_kw, md5_kw, digest;
    uint64_t len = 0;
    hdr >> rec_kw >> len >> md5_kw >> digest;
    if (rec_kw != "rec" || md5_kw != "md5" || digest.size() != 32) break;
    size_t body = eol + 1;
    if (body + len + 1 > content.size()) break;  // short payload
    if (content[body + len] != '\n') break;
    std::string_view payload(content.data() + body, len);
    if (Md5Hex(payload) != digest) break;  // damaged record
    replay.records.emplace_back(payload);
    pos = body + len + 1;
  }
  replay.truncated = pos < content.size();
  replay.intact_bytes = pos;
  return replay;
}

}  // namespace griddb::util
