#include "griddb/util/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "griddb/util/md5.h"

namespace griddb::util {

namespace {

constexpr std::string_view kMagic = "griddb-journal v1\n";

Status Errno(const std::string& op, const std::string& path) {
  return Unavailable(op + " '" + path + "': " + std::strerror(errno));
}

/// Writes all of `data` to `fd`, retrying short writes / EINTR.
Status WriteAll(int fd, std::string_view data, const std::string& path) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Best-effort fsync of the directory containing `path`, so a freshly
/// created or renamed entry survives a crash of the directory itself.
void SyncParentDir(const std::string& path) {
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status st = WriteAll(fd, content, tmp);
  if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync", tmp);
  if (::close(fd) != 0 && st.ok()) st = Errno("close", tmp);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    return Unavailable("cannot rename '" + tmp + "' into place: " +
                       ec.message());
  }
  SyncParentDir(path);
  return Status::Ok();
}

Status FsyncFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Errno("open", path);
  Status st = Status::Ok();
  if (::fsync(fd) != 0) st = Errno("fsync", path);
  ::close(fd);
  return st;
}

JournalWriter::~JournalWriter() { Close(); }

void JournalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status JournalWriter::TruncateTo(uint64_t bytes) {
  // O_APPEND positioning is per-write, so the open descriptor could be
  // kept; close anyway so the repair path has no interaction with lazy
  // reopen state.
  Close();
  if (::truncate(path_.c_str(), static_cast<off_t>(bytes)) != 0) {
    if (errno == ENOENT) return Status::Ok();  // nothing to repair
    return Errno("truncate", path_);
  }
  return FsyncFile(path_);
}

Status JournalWriter::Append(std::string_view payload) {
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) return Errno("open", path_);
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) return Errno("fstat", path_);

  std::string frame;
  if (st.st_size == 0) frame.append(kMagic);
  frame += "rec " + std::to_string(payload.size()) + " md5 " +
           Md5Hex(payload) + "\n";
  frame.append(payload);
  frame += "\n";

  GRIDDB_RETURN_IF_ERROR(WriteAll(fd_, frame, path_));
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  if (st.st_size == 0) SyncParentDir(path_);
  return Status::Ok();
}

Result<JournalReplay> ReadJournal(const std::string& path) {
  JournalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return replay;  // empty journal
    return Unavailable("cannot open journal '" + path + "'");
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (content.empty()) return replay;  // created but never appended
  if (content.size() < kMagic.size() ||
      std::string_view(content).substr(0, kMagic.size()) != kMagic) {
    if (kMagic.substr(0, content.size()) == content) {
      // A strict prefix of the magic: the very first append (which
      // writes header + frame in one go) was torn by a crash. An empty
      // journal with a torn tail, not a foreign file.
      replay.truncated = true;
      return replay;
    }
    return Corruption("journal '" + path + "': bad magic header");
  }

  size_t pos = kMagic.size();
  while (pos < content.size()) {
    // Header line: "rec <payload_bytes> md5 <hex>\n". Any decode failure
    // from here to EOF is a torn tail: keep the intact prefix.
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) break;
    std::istringstream hdr(content.substr(pos, eol - pos));
    std::string rec_kw, md5_kw, digest;
    uint64_t len = 0;
    hdr >> rec_kw >> len >> md5_kw >> digest;
    if (rec_kw != "rec" || md5_kw != "md5" || digest.size() != 32) break;
    size_t body = eol + 1;
    if (body + len + 1 > content.size()) break;  // short payload
    if (content[body + len] != '\n') break;
    std::string_view payload(content.data() + body, len);
    if (Md5Hex(payload) != digest) break;  // damaged record
    replay.records.emplace_back(payload);
    pos = body + len + 1;
  }
  replay.truncated = pos < content.size();
  replay.intact_bytes = pos;
  return replay;
}

}  // namespace griddb::util
