#include "griddb/util/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace griddb::util {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  if (err == ENOENT) {
    return NotFound(op + " '" + path + "': " + std::strerror(err));
  }
  return IoError(op + " '" + path + "': " + std::strerror(err));
}

/// Writes all of `data` to `fd`, retrying short writes / EINTR.
Status WriteAllFd(int fd, std::string_view data, const std::string& path) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path, errno);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status OpenWriteClose(const std::string& path, int flags,
                      std::string_view data) {
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  Status st = WriteAllFd(fd, data, path);
  // close() errors matter on write paths: a deferred-write failure
  // (NFS, quota, dying disk) can first surface here, and swallowing it
  // would acknowledge bytes that never landed.
  if (::close(fd) != 0 && st.ok()) st = ErrnoStatus("close", path, errno);
  return st;
}

}  // namespace

Status FileSystem::Append(const std::string& path, std::string_view data) {
  return OpenWriteClose(path, O_WRONLY | O_CREAT | O_APPEND, data);
}

Status FileSystem::WriteTruncate(const std::string& path,
                                 std::string_view data) {
  return OpenWriteClose(path, O_WRONLY | O_CREAT | O_TRUNC, data);
}

Status FileSystem::Fsync(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  Status st = Status::Ok();
  if (::fsync(fd) != 0) st = ErrnoStatus("fsync", path, errno);
  if (::close(fd) != 0 && st.ok()) st = ErrnoStatus("close", path, errno);
  return st;
}

Status FileSystem::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + "' -> '" + to, errno);
  }
  return Status::Ok();
}

Status FileSystem::Unlink(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    return ErrnoStatus("unlink", path, errno);
  }
  return Status::Ok();
}

Status FileSystem::Truncate(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate", path, errno);
  }
  return Status::Ok();
}

Result<std::string> FileSystem::ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  std::string content;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("read", path, errno);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    content.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return content;
}

Result<uint64_t> FileSystem::FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    return ErrnoStatus("stat", path, errno);
  }
  return static_cast<uint64_t>(st.st_size);
}

void FileSystem::SyncParentDir(const std::string& path) {
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

namespace {

FileSystem& RealFileSystem() {
  static FileSystem fs;
  return fs;
}

std::atomic<FileSystem*>& ActiveFileSystem() {
  static std::atomic<FileSystem*> active{nullptr};
  return active;
}

}  // namespace

FileSystem& Fs() {
  FileSystem* active = ActiveFileSystem().load(std::memory_order_acquire);
  return active != nullptr ? *active : RealFileSystem();
}

FileSystem* SetFileSystem(FileSystem* fs) {
  return ActiveFileSystem().exchange(fs, std::memory_order_acq_rel);
}

}  // namespace griddb::util
