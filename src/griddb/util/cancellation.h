// Cooperative cancellation and end-to-end query deadlines.
//
// A CancelToken is a cheap, copyable handle on shared cancellation state.
// Every sub-query spawned on behalf of one client query carries a copy of
// the same token, so a deadline expiry (or client abort) observed by any
// branch cancels all of its siblings: the first Check() that notices the
// deadline has passed latches the cancelled state, and every later Check()
// on any copy fails fast without consulting the clock again.
//
// Deadlines are expressed on the simulation's virtual clock. The clock is
// injected as a callback because util/ sits below net/ in the layering
// (net::Network owns the virtual clock); a token built without a clock can
// still be cancelled explicitly but never expires on its own.
//
// A default-constructed token is inert: active() is false, Check() is
// always OK, and no allocation or atomic traffic happens anywhere it is
// passed. This keeps the seed fast paths byte-for-byte unaffected when no
// deadline or admission config is set.
#pragma once

#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "griddb/util/status.h"

namespace griddb {

class CancelToken {
 public:
  /// Inert token: never cancelled, no deadline.
  CancelToken() = default;

  /// Cancellable token with no deadline (client-abort use case).
  static CancelToken Cancellable() {
    CancelToken token;
    token.state_ = std::make_shared<State>();
    return token;
  }

  /// Token that expires `budget_ms` virtual milliseconds from now as told
  /// by `clock` (a now-in-ms callback, typically net::Network::NowMs).
  static CancelToken WithBudget(std::function<double()> clock,
                                double budget_ms) {
    CancelToken token;
    token.state_ = std::make_shared<State>();
    token.state_->clock = std::move(clock);
    token.state_->deadline_ms.store(token.state_->clock() + budget_ms,
                                    std::memory_order_relaxed);
    return token;
  }

  bool active() const { return state_ != nullptr; }

  bool has_deadline() const {
    return state_ && std::isfinite(state_->deadline_ms.load(
                         std::memory_order_relaxed));
  }

  /// Absolute virtual instant the token expires; +inf when none.
  double deadline_ms() const {
    if (!state_) return std::numeric_limits<double>::infinity();
    return state_->deadline_ms.load(std::memory_order_relaxed);
  }

  /// Virtual milliseconds left before expiry; +inf when no deadline.
  /// Never negative: an expired token reports 0.
  double remaining_ms() const {
    if (!has_deadline()) return std::numeric_limits<double>::infinity();
    double left =
        state_->deadline_ms.load(std::memory_order_relaxed) - state_->clock();
    return left > 0 ? left : 0;
  }

  /// Tightens the deadline to `budget_ms` from now if that is sooner than
  /// the current deadline (a server applying its own cap to a forwarded
  /// budget). No-op on an inert token.
  void TightenBudget(std::function<double()> clock, double budget_ms) {
    if (!state_) return;
    if (!state_->clock) state_->clock = std::move(clock);
    double candidate = state_->clock() + budget_ms;
    double current = state_->deadline_ms.load(std::memory_order_relaxed);
    while (candidate < current &&
           !state_->deadline_ms.compare_exchange_weak(
               current, candidate, std::memory_order_relaxed)) {
    }
  }

  /// Latches the cancelled state. Idempotent; the first reason wins.
  void Cancel(Status reason = Status(StatusCode::kDeadlineExceeded,
                                     "query cancelled")) const {
    if (!state_) return;
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->cancelled.load(std::memory_order_relaxed)) return;
    state_->reason = std::move(reason);
    state_->cancelled.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return state_ && state_->cancelled.load(std::memory_order_acquire);
  }

  /// OK while the query may keep running; the cancellation reason once it
  /// may not. Observing an expired deadline here cancels the shared state,
  /// so sibling sub-queries fail fast on their next Check().
  Status Check() const {
    if (!state_) return Status::Ok();
    if (state_->cancelled.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(state_->mu);
      return state_->reason;
    }
    double deadline = state_->deadline_ms.load(std::memory_order_relaxed);
    if (std::isfinite(deadline) && state_->clock &&
        state_->clock() >= deadline) {
      Cancel(DeadlineExceeded("query deadline exceeded"));
      std::lock_guard<std::mutex> lock(state_->mu);
      return state_->reason;
    }
    return Status::Ok();
  }

 private:
  struct State {
    std::function<double()> clock;  // set once at construction, then read-only
    std::atomic<double> deadline_ms{std::numeric_limits<double>::infinity()};
    std::atomic<bool> cancelled{false};
    std::mutex mu;      // guards `reason`
    Status reason;
  };

  std::shared_ptr<State> state_;
};

/// Scheduling class used by admission control: interactive queries keep a
/// reserved slice of the concurrency budget; scans are shed first. Batch
/// work (the asynchronous batch-query service) runs strictly out of idle
/// capacity: it never queues and is shed the moment interactive or scan
/// load wants the slot back.
enum class QueryPriority {
  kInteractive = 0,
  kScan = 1,
  kBatch = 2,
};

inline const char* QueryPriorityName(QueryPriority priority) noexcept {
  switch (priority) {
    case QueryPriority::kScan: return "scan";
    case QueryPriority::kBatch: return "batch";
    case QueryPriority::kInteractive: break;
  }
  return "interactive";
}

/// Per-query execution context threaded from the service entry point down
/// through planning, fan-out, remote forwards and the merge join.
struct QueryContext {
  CancelToken cancel;
  QueryPriority priority = QueryPriority::kInteractive;
  /// Requesting tenant identity ("" = the default anonymous tenant).
  /// Checked against the RBAC catalog at plan time and used to pick the
  /// admission lane; forwarded hop-by-hop in the sparse <tenant> header.
  std::string tenant;
};

}  // namespace griddb
