// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace griddb {

/// Lower-cases ASCII characters; non-ASCII bytes pass through untouched.
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on a single-character separator. "a,,b" -> {"a", "", "b"}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits and trims each piece, dropping empty pieces.
std::vector<std::string> SplitTrimmed(std::string_view s, char sep);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Parses a whole string as a signed 64-bit integer. Rejects partial parses.
bool ParseInt64(std::string_view s, int64_t* out);
/// Parses a whole string as a double. Rejects partial parses.
bool ParseDouble(std::string_view s, double* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace griddb
