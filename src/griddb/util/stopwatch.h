// Wall-clock stopwatch for the real-time component of measurements.
#pragma once

#include <chrono>

namespace griddb {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace griddb
