// Status / Result<T>: the error-handling vocabulary used across griddb.
//
// All fallible library operations return either a Status (when there is no
// payload) or a Result<T>. Exceptions are reserved for programmer errors
// (precondition violations), matching the C++ Core Guidelines split between
// recoverable conditions and bugs.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace griddb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kPermissionDenied,
  kUnavailable,
  kInternal,
  kUnsupported,
  kTimeout,
  kFailedPrecondition,
  // Appended (not inserted) so the numeric XML-RPC fault codes of older
  // peers still decode to the same enumerators.
  kCorruption,
  kDeadlineExceeded,
  kResourceExhausted,
  /// A local durable-storage operation failed (write, fsync, rename,
  /// ENOSPC, ...). Distinct from kUnavailable (a remote peer problem):
  /// callers that own durability degrade differently — the batch service
  /// pauses instead of failing jobs, journal writers fail-stop.
  kIoError,
};

/// Human-readable name of a StatusCode ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code) noexcept;

/// A success-or-error discriminant carrying an error message on failure.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "error status requires non-OK code");
  }

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "NOT_FOUND: table 'x' does not exist" or "OK".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status ParseError(std::string msg) {
  return {StatusCode::kParseError, std::move(msg)};
}
inline Status TypeError(std::string msg) {
  return {StatusCode::kTypeError, std::move(msg)};
}
inline Status PermissionDenied(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status Unsupported(std::string msg) {
  return {StatusCode::kUnsupported, std::move(msg)};
}
inline Status Timeout(std::string msg) {
  return {StatusCode::kTimeout, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status Corruption(std::string msg) {
  return {StatusCode::kCorruption, std::move(msg)};
}
inline Status DeadlineExceeded(std::string msg) {
  return {StatusCode::kDeadlineExceeded, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status IoError(std::string msg) {
  return {StatusCode::kIoError, std::move(msg)};
}

/// Value-or-Status. Access to value() on an error result asserts.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The error status; Status::Ok() when the result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

// Propagate errors up the call stack without exceptions.
#define GRIDDB_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::griddb::Status _griddb_status = (expr);         \
    if (!_griddb_status.ok()) return _griddb_status;  \
  } while (false)

#define GRIDDB_ASSIGN_OR_RETURN(lhs, expr)        \
  auto GRIDDB_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!GRIDDB_CONCAT_(_res_, __LINE__).ok())      \
    return GRIDDB_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(GRIDDB_CONCAT_(_res_, __LINE__)).value()

#define GRIDDB_CONCAT_INNER_(a, b) a##b
#define GRIDDB_CONCAT_(a, b) GRIDDB_CONCAT_INNER_(a, b)

}  // namespace griddb
