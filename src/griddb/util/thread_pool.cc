#include "griddb/util/thread_pool.h"

#include <algorithm>

namespace griddb {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace griddb
