#include "griddb/util/thread_pool.h"

#include <algorithm>

namespace griddb {

ThreadPool::ThreadPool(size_t num_threads, ThreadPoolOptions options)
    : options_(options) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  // Workers drain the queue before exiting (WorkerLoop only returns once the
  // queue is empty), so every accepted task runs.
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::Enqueue(std::function<void()> task) {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.max_queue > 0 &&
      options_.overflow == ThreadPoolOptions::Overflow::kBlock) {
    space_cv_.wait(lock, [this] {
      return shutting_down_ || queue_.size() < options_.max_queue;
    });
  }
  if (shutting_down_ ||
      (options_.max_queue > 0 && queue_.size() >= options_.max_queue)) {
    ++rejected_;
    return false;
  }
  queue_.push_back(std::move(task));
  return true;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t ThreadPool::rejected_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();
    task();
  }
}

}  // namespace griddb
