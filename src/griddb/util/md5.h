// MD5 message digest (RFC 1321), implemented from scratch.
//
// The schema-change tracker (paper §4.9) compares XSpec files first by size
// and then by MD5 sum; this is the digest it uses.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace griddb {

/// Incremental MD5 hasher.
class Md5 {
 public:
  Md5();

  /// Feeds more bytes into the digest. May be called repeatedly.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the 16-byte digest. The hasher must not be
  /// updated afterwards; construct a fresh Md5 for a new message.
  std::array<uint8_t, 16> Digest();

  /// Finalizes and returns the digest as 32 lowercase hex characters.
  std::string HexDigest();

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[4];
  uint64_t bit_count_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  bool finalized_ = false;
};

/// One-shot convenience: MD5 of a buffer as lowercase hex.
std::string Md5Hex(std::string_view data);

}  // namespace griddb
