// Fixed-size thread pool used for parallel sub-query execution.
//
// The enhanced Unity driver and the core data access layer fan a federated
// query out to every involved data mart concurrently (the improvement the
// paper makes over the baseline Unity driver, which executes serially).
//
// The queue may be bounded (ThreadPoolOptions::max_queue) so a server under
// overload exerts backpressure instead of buffering an unbounded backlog:
// with kBlock the submitting thread waits for a slot (natural backpressure
// on the fan-out path), with kReject the task is refused immediately and
// the returned future reports std::future_errc::broken_promise. The default
// options keep the seed behaviour exactly: unbounded queue, never blocks,
// never rejects.
//
// Shutdown drains: tasks accepted before the destructor ran are guaranteed
// to execute; only tasks submitted after shutdown began are rejected.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace griddb {

struct ThreadPoolOptions {
  /// Queue overflow behaviour when `max_queue` is reached.
  enum class Overflow {
    kBlock,   ///< Submit waits until a slot frees (or shutdown begins).
    kReject,  ///< Submit returns a broken-promise future immediately.
  };

  /// Maximum tasks waiting to run (executing tasks do not count);
  /// 0 = unbounded, the seed behaviour.
  size_t max_queue = 0;
  Overflow overflow = Overflow::kBlock;
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1 enforced).
  explicit ThreadPool(size_t num_threads, ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result. Safe to call from
  /// multiple threads. Tasks submitted after shutdown began, or refused by
  /// a full kReject queue, are rejected with a broken promise (the future's
  /// get() throws std::future_error{broken_promise}).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    if (Enqueue([task] { (*task)(); })) cv_.notify_one();
    return result;
  }

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently waiting to run (excludes executing tasks). A
  /// backpressure signal for metrics/gauges; racy by nature.
  size_t queue_depth() const;

  /// Tasks refused because the bounded queue was full (kReject policy) or
  /// shutdown had begun.
  size_t rejected_count() const;

 private:
  /// Places the task on the queue, honouring the bound; returns false when
  /// the task was rejected instead.
  bool Enqueue(std::function<void()> task);
  void WorkerLoop();

  const ThreadPoolOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        // workers wait: work available/shutdown
  std::condition_variable space_cv_;  // submitters wait: queue slot freed
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  size_t rejected_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace griddb
