// Fixed-size thread pool used for parallel sub-query execution.
//
// The enhanced Unity driver and the core data access layer fan a federated
// query out to every involved data mart concurrently (the improvement the
// paper makes over the baseline Unity driver, which executes serially).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace griddb {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1 enforced).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result. Safe to call from
  /// multiple threads. Tasks submitted after shutdown began are rejected
  /// with a broken promise.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!shutting_down_) {
        queue_.emplace_back([task] { (*task)(); });
      }
    }
    cv_.notify_one();
    return result;
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace griddb
