// Deterministic pseudo-random generator (xoshiro256**) for synthetic data.
//
// Benches and tests must be reproducible run-to-run, so all synthetic
// workloads (ntuple generation, workload sampling) draw from this instead
// of std::random_device.
#pragma once

#include <cstdint>

namespace griddb {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (lambda > 0).
  double Exponential(double lambda);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace griddb
