#include "griddb/util/status.h"

namespace griddb {

const char* StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kTypeError: return "TYPE_ERROR";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnsupported: return "UNSUPPORTED";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kIoError: return "IO_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace griddb
