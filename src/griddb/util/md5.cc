#include "griddb/util/md5.h"

#include <cassert>
#include <cstring>

namespace griddb {
namespace {

constexpr uint32_t kInitState[4] = {0x67452301u, 0xefcdab89u, 0x98badcfeu,
                                    0x10325476u};

// Per-round shift amounts (RFC 1321 section 3.4).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i + 1))).
constexpr uint32_t kSine[64] = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu, 0xf57c0fafu,
    0x4787c62au, 0xa8304613u, 0xfd469501u, 0x698098d8u, 0x8b44f7afu,
    0xffff5bb1u, 0x895cd7beu, 0x6b901122u, 0xfd987193u, 0xa679438eu,
    0x49b40821u, 0xf61e2562u, 0xc040b340u, 0x265e5a51u, 0xe9b6c7aau,
    0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u, 0x21e1cde6u,
    0xc33707d6u, 0xf4d50d87u, 0x455a14edu, 0xa9e3e905u, 0xfcefa3f8u,
    0x676f02d9u, 0x8d2a4c8au, 0xfffa3942u, 0x8771f681u, 0x6d9d6122u,
    0xfde5380cu, 0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u,
    0x289b7ec6u, 0xeaa127fau, 0xd4ef3085u, 0x04881d05u, 0xd9d4d039u,
    0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u, 0xf4292244u, 0x432aff97u,
    0xab9423a7u, 0xfc93a039u, 0x655b59c3u, 0x8f0ccc92u, 0xffeff47du,
    0x85845dd1u, 0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u};

inline uint32_t RotateLeft(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

Md5::Md5() { std::memcpy(state_, kInitState, sizeof(state_)); }

void Md5::ProcessBlock(const uint8_t block[64]) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<uint32_t>(block[i * 4]) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 3]) << 24);
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    uint32_t tmp = d;
    d = c;
    c = b;
    b = b + RotateLeft(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::Update(const void* data, size_t len) {
  assert(!finalized_ && "Md5::Update after Digest()");
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  bit_count_ += static_cast<uint64_t>(len) * 8;
  while (len > 0) {
    size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, bytes, take);
    buffer_len_ += take;
    bytes += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

std::array<uint8_t, 16> Md5::Digest() {
  assert(!finalized_ && "Md5::Digest called twice");
  finalized_ = true;
  uint64_t final_bits = bit_count_;
  // Padding: a single 0x80 byte, zeros to 56 mod 64, then the 64-bit length.
  uint8_t pad = 0x80;
  std::memcpy(buffer_ + buffer_len_, &pad, 1);
  ++buffer_len_;
  if (buffer_len_ > 56) {
    std::memset(buffer_ + buffer_len_, 0, sizeof(buffer_) - buffer_len_);
    ProcessBlock(buffer_);
    buffer_len_ = 0;
  }
  std::memset(buffer_ + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<uint8_t>((final_bits >> (8 * i)) & 0xff);
  }
  ProcessBlock(buffer_);

  std::array<uint8_t, 16> out{};
  for (int i = 0; i < 4; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] & 0xff);
    out[i * 4 + 1] = static_cast<uint8_t>((state_[i] >> 8) & 0xff);
    out[i * 4 + 2] = static_cast<uint8_t>((state_[i] >> 16) & 0xff);
    out[i * 4 + 3] = static_cast<uint8_t>((state_[i] >> 24) & 0xff);
  }
  return out;
}

std::string Md5::HexDigest() {
  static constexpr char kHex[] = "0123456789abcdef";
  std::array<uint8_t, 16> digest = Digest();
  std::string out;
  out.reserve(32);
  for (uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

std::string Md5Hex(std::string_view data) {
  Md5 hasher;
  hasher.Update(data);
  return hasher.HexDigest();
}

}  // namespace griddb
