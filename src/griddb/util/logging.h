// Minimal leveled logger. Thread-safe; writes to stderr by default.
//
// Usage: GRIDDB_LOG(Info) << "loaded " << n << " rows";
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace griddb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level) noexcept;

/// Global log configuration. Messages below the threshold are dropped.
class Logger {
 public:
  static Logger& Instance();

  void set_threshold(LogLevel level) { threshold_ = level; }
  LogLevel threshold() const { return threshold_; }

  /// When true (default), messages go to stderr; captured messages are
  /// always appended to the in-memory tail for tests.
  void set_to_stderr(bool v) { to_stderr_ = v; }

  void Write(LogLevel level, const std::string& message);

  /// Last few captured messages (for tests); newest last.
  std::vector<std::string> Tail() const;
  void ClearTail();

 private:
  Logger() = default;
  LogLevel threshold_ = LogLevel::kWarn;
  bool to_stderr_ = true;
  mutable std::mutex mu_;
  std::vector<std::string> tail_;
};

/// RAII statement builder behind GRIDDB_LOG.
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { Logger::Instance().Write(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define GRIDDB_LOG(level) ::griddb::LogStatement(::griddb::LogLevel::k##level)

}  // namespace griddb
