// The file-system seam every durable writer goes through.
//
// griddb's durability story (util/journal, storage/stage_file, the batch
// scratch marts, ETL manifests) is only as good as its handling of the
// unhappy file-system paths: short writes, fsyncs that lie, ENOSPC,
// rename failures, bit rot on read. Those paths cannot be exercised
// against a real disk deterministically, so all durable file I/O funnels
// through this one narrow interface. The default implementation is plain
// POSIX; storage/fault_fs installs a seed-driven injecting implementation
// (mirroring net::FaultPlan for the simulated network), which is how the
// chaos harness composes storage faults with net faults and crash kills.
//
// The interface is deliberately path-based (no file-descriptor handles):
// every operation is a complete open-act-close unit with its errors
// checked, which keeps the injector's per-file durable-byte bookkeeping
// trivial and makes call sites impossible to get half-checked. All
// failures surface as typed kIoError Status (missing files as kNotFound),
// never as ignored returns.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "griddb/util/status.h"

namespace griddb::util {

/// Narrow file-system interface. The base class IS the real POSIX
/// implementation; subclasses (storage::FaultFs) override to inject
/// faults and delegate to the base for the actual I/O.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Appends `data` to `path`, creating it (0644) when absent. The bytes
  /// are written but NOT fsync'd; pair with Fsync for durability.
  virtual Status Append(const std::string& path, std::string_view data);

  /// Replaces `path`'s content with `data` (truncate + write, create when
  /// absent). Not fsync'd; pair with Fsync (AtomicWriteFile does).
  virtual Status WriteTruncate(const std::string& path,
                               std::string_view data);

  /// fsyncs `path` in place. After OK the file's current bytes survive a
  /// crash (modulo a lying injected fsync — which is the point).
  virtual Status Fsync(const std::string& path);

  /// Atomically renames `from` onto `to` (same filesystem).
  virtual Status Rename(const std::string& from, const std::string& to);

  /// Removes `path`. A missing file is kNotFound (callers that only need
  /// best-effort cleanup ignore it).
  virtual Status Unlink(const std::string& path);

  /// Truncates `path` to its first `size` bytes.
  virtual Status Truncate(const std::string& path, uint64_t size);

  /// Whole-file read. Missing file is kNotFound; other failures kIoError.
  virtual Result<std::string> ReadFile(const std::string& path);

  /// Size in bytes. Missing file is kNotFound.
  virtual Result<uint64_t> FileSize(const std::string& path);

  /// Best-effort fsync of the directory containing `path`, so a freshly
  /// created or renamed entry survives a crash of the directory itself.
  virtual void SyncParentDir(const std::string& path);
};

/// The active file system all durable writers use. Defaults to the real
/// POSIX implementation; SetFileSystem swaps in an injector.
FileSystem& Fs();

/// Installs `fs` as the active file system (nullptr restores the real
/// one). Returns the previously active injector (nullptr = real). Not
/// synchronized against in-flight operations: install before the writers
/// under test start, uninstall after they stop.
FileSystem* SetFileSystem(FileSystem* fs);

}  // namespace griddb::util
