#include "griddb/util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace griddb {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitTrimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : Split(s, sep)) {
    std::string_view trimmed = Trim(piece);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

bool ParseInt64(std::string_view s, int64_t* out) {
  std::string buf(Trim(s));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  std::string buf(Trim(s));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace griddb
