// Crash-consistent file primitives shared by every durable artefact in
// griddb: the ETL stage manifest (storage/stage_file) and the batch job
// journal (core/batch) both ride on this one implementation.
//
// Two idioms live here:
//
//  1. AtomicWriteFile — the write-temp, flush+fsync, rename-into-place
//     replacement originally embedded in the ETL manifest writer. After
//     it returns OK the file at `path` is atomically either the old or
//     the new content, never a torn mixture, even across a crash.
//
//  2. JournalWriter / ReadJournal — an append-only record journal with
//     framed, digest-verified records:
//
//         griddb-journal v1\n
//         rec <payload_bytes> md5 <hex>\n
//         <payload bytes>\n
//         rec ...
//
//     Append() fsyncs before returning, so a record is durable once the
//     caller sees OK — the write-ahead contract the batch service's
//     recovery protocol depends on. A crash mid-append leaves a torn
//     frame at the tail; ReadJournal stops at the first frame that does
//     not decode (short header, short payload, digest mismatch), returns
//     the intact prefix and reports `truncated` plus the byte length of
//     that prefix — torn tails are an expected crash artefact, not an
//     error. A torn tail MUST be repaired (JournalWriter::TruncateTo the
//     intact prefix) before the journal is appended to again: appends
//     are O_APPEND and would otherwise land after the torn bytes, where
//     the next replay — which stops at the tear — can never see them.
//     Payloads are arbitrary bytes (newlines included): frames are
//     delimited by byte count, not by line structure.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "griddb/util/status.h"

namespace griddb::util {

/// Atomically replaces `path` with `content` via temp + fsync + rename.
Status AtomicWriteFile(const std::string& path, std::string_view content);

/// fsyncs an existing file in place (used after appends that must be
/// durable before a dependent journal record is written — e.g. a stage
/// chunk must hit disk before its checkpoint record does, or recovery
/// could trust a checkpoint whose data vanished with the page cache).
Status FsyncFile(const std::string& path);

/// Append-only journal of framed records (see the header comment for the
/// on-disk format). Not internally synchronized: callers serialize
/// appends (the batch manager appends under its job mutex).
class JournalWriter {
 public:
  explicit JournalWriter(std::string path) : path_(std::move(path)) {}
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one framed record and fsyncs. The record is durable (and
  /// will be returned by ReadJournal after any later crash) once this
  /// returns OK. Writes the magic header first on a fresh file.
  Status Append(std::string_view payload);

  /// Historical no-op: appends are complete open-append-fsync-close
  /// units through util::Fs(), so no descriptor is kept between calls.
  /// Retained because crash tests call it to model releasing the file.
  void Close();

  /// Truncates the journal to its first `bytes` bytes and fsyncs —
  /// the torn-tail repair step: after a replay reports `truncated`,
  /// call this with JournalReplay::intact_bytes so the next Append
  /// lands where the next replay will read it. A missing file is OK
  /// (nothing to repair).
  Status TruncateTo(uint64_t bytes);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Result of replaying a journal file.
struct JournalReplay {
  std::vector<std::string> records;  ///< Intact records, append order.
  /// True when the file ends in a frame that does not decode (torn or
  /// truncated by a crash, or externally damaged): the frame and
  /// everything after it were dropped, `records` is the intact prefix.
  bool truncated = false;
  /// Byte length of the intact prefix (magic header + decoded frames).
  /// When `truncated`, pass this to JournalWriter::TruncateTo before
  /// appending again, or the new records land beyond the tear and are
  /// invisible to every later replay.
  uint64_t intact_bytes = 0;
};

/// Replays `path`. A missing file is an empty journal (no error); a file
/// holding a strict prefix of the magic header is a first append torn by
/// a crash (empty journal, `truncated`); a file whose start otherwise
/// mismatches the magic fails with kCorruption.
Result<JournalReplay> ReadJournal(const std::string& path);

}  // namespace griddb::util
