#include "griddb/util/logging.h"

#include <cstdio>
#include <vector>

namespace griddb {

namespace {
constexpr size_t kTailCapacity = 256;
}

const char* LogLevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (level < threshold_) return;
  std::string line = std::string("[") + LogLevelName(level) + "] " + message;
  std::lock_guard<std::mutex> lock(mu_);
  if (to_stderr_) {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  tail_.push_back(std::move(line));
  if (tail_.size() > kTailCapacity) {
    tail_.erase(tail_.begin(), tail_.begin() + (tail_.size() - kTailCapacity));
  }
}

std::vector<std::string> Logger::Tail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tail_;
}

void Logger::ClearTail() {
  std::lock_guard<std::mutex> lock(mu_);
  tail_.clear();
}

}  // namespace griddb
