#include "griddb/util/rng.h"

#include <cassert>
#include <cmath>

namespace griddb {
namespace {

inline uint64_t RotateLeft(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotateLeft(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotateLeft(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Gaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return mean + stddev * radius * std::cos(theta);
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

}  // namespace griddb
