#include "griddb/storage/schema.h"

#include "griddb/util/strings.h"

namespace griddb::storage {

std::optional<size_t> TableSchema::ColumnIndex(
    std::string_view column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, column_name)) return i;
  }
  return std::nullopt;
}

const ColumnDef* TableSchema::FindColumn(std::string_view column_name) const {
  auto idx = ColumnIndex(column_name);
  return idx ? &columns_[*idx] : nullptr;
}

std::vector<size_t> TableSchema::PrimaryKeyIndexes() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) out.push_back(i);
  }
  return out;
}

bool TableSchema::HasPrimaryKey() const {
  for (const ColumnDef& col : columns_) {
    if (col.primary_key) return true;
  }
  return false;
}

namespace {

bool TypeAccepts(DataType column, DataType value) {
  if (value == DataType::kNull) return true;  // NOT NULL checked separately
  if (column == value) return true;
  // Numeric flexibility matching typical RDBMS implicit casts.
  if (column == DataType::kDouble &&
      (value == DataType::kInt64 || value == DataType::kBool)) {
    return true;
  }
  if (column == DataType::kInt64 &&
      (value == DataType::kBool || value == DataType::kDouble)) {
    return true;
  }
  if (column == DataType::kBool && value == DataType::kInt64) return true;
  return false;
}

}  // namespace

Status TableSchema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return InvalidArgument("row arity " + std::to_string(row.size()) +
                           " does not match table '" + name_ + "' arity " +
                           std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = columns_[i];
    if (row[i].is_null()) {
      if (col.not_null || col.primary_key) {
        return InvalidArgument("NULL in NOT NULL column '" + col.name +
                               "' of table '" + name_ + "'");
      }
      continue;
    }
    if (!TypeAccepts(col.type, row[i].type())) {
      return TypeError(std::string("value of type ") +
                       DataTypeName(row[i].type()) + " not accepted by column '" +
                       col.name + "' (" + DataTypeName(col.type) + ")");
    }
  }
  return Status::Ok();
}

Status TableSchema::CoerceRow(Row& row) const {
  GRIDDB_RETURN_IF_ERROR(ValidateRow(row));
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = columns_[i];
    if (row[i].is_null() || row[i].type() == col.type) continue;
    switch (col.type) {
      case DataType::kDouble: {
        GRIDDB_ASSIGN_OR_RETURN(double v, row[i].AsDouble());
        row[i] = Value(v);
        break;
      }
      case DataType::kInt64: {
        GRIDDB_ASSIGN_OR_RETURN(int64_t v, row[i].AsInt64());
        row[i] = Value(v);
        break;
      }
      case DataType::kBool: {
        GRIDDB_ASSIGN_OR_RETURN(bool v, row[i].AsBool());
        row[i] = Value(v);
        break;
      }
      default:
        break;
    }
  }
  return Status::Ok();
}

}  // namespace griddb::storage
