// ResultSet: the 2-D result the paper's wrapper methods return.
//
// Every query path in the system (engine, POOL-RAL wrapper, Unity driver,
// web-service response) terminates in this shape: a list of column names
// plus a vector of rows ("a single 2-D vector", paper §4.6).
#pragma once

#include <string>
#include <vector>

#include "griddb/storage/value.h"

namespace griddb::storage {

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return columns.size(); }
  bool empty() const { return rows.empty(); }

  /// Index of a column by case-insensitive name, or -1.
  int ColumnIndex(std::string_view name) const;

  /// Total bytes when serialized on the simulated wire.
  size_t WireSize() const;

  /// Pretty-prints an ASCII table (for examples and debugging).
  std::string ToText(size_t max_rows = 25) const;
};

}  // namespace griddb::storage
