#include "griddb/storage/digest.h"

#include <array>
#include <cstdint>

#include "griddb/storage/stage_file.h"
#include "griddb/util/md5.h"

namespace griddb::storage {

std::string TableDigest::ToString() const {
  return "rows=" + std::to_string(rows) + " md5=" + md5;
}

std::string CanonicalRowEncoding(const Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += '\t';
    out += EscapeCell(row[i]);
  }
  return out;
}

TableDigest DigestRows(const std::vector<Row>& rows) {
  // 128-bit byte-wise addition with carry over the per-row digests.
  std::array<uint8_t, 16> sum{};
  for (const Row& row : rows) {
    Md5 hasher;
    hasher.Update(CanonicalRowEncoding(row));
    std::array<uint8_t, 16> digest = hasher.Digest();
    unsigned carry = 0;
    for (int i = 15; i >= 0; --i) {
      unsigned v = static_cast<unsigned>(sum[i]) + digest[i] + carry;
      sum[i] = static_cast<uint8_t>(v & 0xff);
      carry = v >> 8;
    }
  }
  TableDigest out;
  out.rows = rows.size();
  static const char* hex = "0123456789abcdef";
  out.md5.reserve(32);
  for (uint8_t byte : sum) {
    out.md5 += hex[byte >> 4];
    out.md5 += hex[byte & 0xf];
  }
  return out;
}

}  // namespace griddb::storage
