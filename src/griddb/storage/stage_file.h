// Temporary staging files for the ETL pipeline.
//
// The paper's prototype stages every transfer through a temporary file:
// "every time data was retrieved from a database it was first placed into
// a temporary file (data extraction) and then from this temporary file,
// data was stored into the other databases (data loading)" (§5.1). This
// module defines that file format: a line-oriented text format carrying
// the schema header and tab-separated, escaped rows.
#pragma once

#include <string>

#include "griddb/storage/result_set.h"
#include "griddb/storage/schema.h"
#include "griddb/util/status.h"

namespace griddb::storage {

/// A parsed staging file: schema plus rows.
struct StagedData {
  TableSchema schema;
  std::vector<Row> rows;

  /// Bytes the staged representation occupies (what actually crosses the
  /// disk / simulated wire during extraction and loading).
  size_t EncodedSize() const;
};

/// Encodes schema + rows into the staging format.
std::string EncodeStage(const TableSchema& schema, const std::vector<Row>& rows);

/// Decodes a staging buffer. Fails on malformed headers or cells that do
/// not parse as their declared column type.
Result<StagedData> DecodeStage(std::string_view buffer);

/// Writes a staging buffer to `path` (overwrites).
Status WriteStageFile(const std::string& path, const TableSchema& schema,
                      const std::vector<Row>& rows);

/// Reads and decodes a staging file.
Result<StagedData> ReadStageFile(const std::string& path);

/// Escapes one cell: backslash, tab, newline escaped; NULL encoded as \N.
std::string EscapeCell(const Value& value);
Result<Value> UnescapeCell(std::string_view cell, DataType type);

// ---------------------------------------------------------------------
// Chunked (v2) stage files — crash-consistent ETL.
//
// A v2 stage file carries the same header as v1 but its rows arrive in
// framed chunks, each introduced by "chunk <id> rows <n> md5 <hex>"
// where the digest covers the chunk's encoded row lines. Chunks are
// appended as they are staged, so a crash mid-extraction leaves a
// prefix of intact frames. A frame re-staged after corruption is simply
// appended again: readers take the LAST frame per id, and the sidecar
// manifest's digest is authoritative.
//
// The manifest journal ("<run>.manifest", written via temp+rename so it
// is atomically either the old or the new version) records which chunks
// have been committed to the stage file and which have already been
// loaded into the target, making an interrupted run resumable.
// ---------------------------------------------------------------------

/// One committed frame of a chunked stage file.
struct StageChunk {
  size_t id = 0;     ///< Dense, 0-based chunk index.
  size_t rows = 0;
  std::string md5;   ///< MD5 of the chunk's encoded row block.
};

/// A fully parsed chunked stage file (digests verified).
struct ChunkedStage {
  TableSchema schema;
  std::vector<StageChunk> chunks;      ///< By id, last frame per id.
  std::vector<std::vector<Row>> rows;  ///< rows[i] belongs to chunks[i].
};

/// Encodes rows as stage-file row lines (one per row, trailing newline).
/// This is the byte block a chunk digest covers.
std::string EncodeRowBlock(const std::vector<Row>& rows);

/// Appends one framed chunk; writes the v2 magic + schema header first
/// when the file does not exist yet.
Status AppendStageChunk(const std::string& path, const TableSchema& schema,
                        const StageChunk& chunk,
                        const std::string& encoded_rows);

/// Reads a chunked stage file. Each frame's recomputed digest must match
/// its declared one; a mismatch fails with kCorruption naming the chunk.
Result<ChunkedStage> ReadChunkedStageFile(const std::string& path);

/// Structural damage found (and survived) by the tolerant reader.
struct StageDamage {
  /// The file ends in bytes that do not decode as frames — a tail torn
  /// by a crash or a lying fsync. Everything before `intact_bytes` was
  /// parsed normally and is in the result.
  bool torn = false;
  /// Byte length of the intact prefix. The caller MUST truncate the file
  /// to this length before appending again (appends are positioned at
  /// the physical end of file, so new frames would otherwise land after
  /// the tear, where readers — which stop at the tear — never see them).
  uint64_t intact_bytes = 0;
};

/// Like ReadChunkedStageFile, but a frame whose digest fails is reported
/// in `corrupt_ids` (and omitted from the result) instead of failing the
/// whole read; an id is corrupt iff its LAST frame is. With `damage` set,
/// structural damage at the tail (torn frame, unterminated line, even a
/// torn magic/schema header) is also survived: the intact prefix is
/// returned and `damage` reports where it ends. Without `damage`,
/// structural problems fail with kParseError as before.
Result<ChunkedStage> ReadChunkedStageFileTolerant(
    const std::string& path, std::vector<size_t>* corrupt_ids,
    StageDamage* damage = nullptr);

/// Sidecar journal of a resumable ETL run.
struct StageManifest {
  size_t total_chunks = 0;           ///< Expected chunk count of the run.
  std::vector<StageChunk> committed; ///< Frames durably in the stage file.
  std::vector<size_t> loaded;        ///< Chunk ids applied to the target.

  const StageChunk* FindCommitted(size_t id) const;
  bool IsLoaded(size_t id) const;
};

std::string EncodeManifest(const StageManifest& manifest);
Result<StageManifest> DecodeManifest(std::string_view buffer);

/// Writes the manifest via write-temp-then-rename (atomic replace).
Status WriteManifestFile(const std::string& path,
                         const StageManifest& manifest);
Result<StageManifest> ReadManifestFile(const std::string& path);

}  // namespace griddb::storage
