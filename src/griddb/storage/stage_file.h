// Temporary staging files for the ETL pipeline.
//
// The paper's prototype stages every transfer through a temporary file:
// "every time data was retrieved from a database it was first placed into
// a temporary file (data extraction) and then from this temporary file,
// data was stored into the other databases (data loading)" (§5.1). This
// module defines that file format: a line-oriented text format carrying
// the schema header and tab-separated, escaped rows.
#pragma once

#include <string>

#include "griddb/storage/result_set.h"
#include "griddb/storage/schema.h"
#include "griddb/util/status.h"

namespace griddb::storage {

/// A parsed staging file: schema plus rows.
struct StagedData {
  TableSchema schema;
  std::vector<Row> rows;

  /// Bytes the staged representation occupies (what actually crosses the
  /// disk / simulated wire during extraction and loading).
  size_t EncodedSize() const;
};

/// Encodes schema + rows into the staging format.
std::string EncodeStage(const TableSchema& schema, const std::vector<Row>& rows);

/// Decodes a staging buffer. Fails on malformed headers or cells that do
/// not parse as their declared column type.
Result<StagedData> DecodeStage(std::string_view buffer);

/// Writes a staging buffer to `path` (overwrites).
Status WriteStageFile(const std::string& path, const TableSchema& schema,
                      const std::vector<Row>& rows);

/// Reads and decodes a staging file.
Result<StagedData> ReadStageFile(const std::string& path);

/// Escapes one cell: backslash, tab, newline escaped; NULL encoded as \N.
std::string EscapeCell(const Value& value);
Result<Value> UnescapeCell(std::string_view cell, DataType type);

}  // namespace griddb::storage
