#include "griddb/storage/fault_fs.h"

#include <algorithm>

#include "griddb/obs/metrics.h"

namespace griddb::storage {

namespace {

void Count(const char* name) {
  if (obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(name)) {
    c->Add();
  }
}

}  // namespace

FaultFs::FaultFs(uint64_t seed) : rng_(seed) {}

void FaultFs::SetSpec(FsFaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
}

void FaultFs::AddEnospcWindow(uint64_t start_op, uint64_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  enospc_windows_.push_back({start_op, length});
}

void FaultFs::ArmEnospc(uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_enospc_ += count;
}

void FaultFs::ArmTornWrite(uint64_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_torn_keep_ = static_cast<int64_t>(keep_bytes);
}

void FaultFs::ArmLyingFsync() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_lying_fsync_ = true;
}

void FaultFs::SetPathFilter(std::function<bool(const std::string&)> filter) {
  std::lock_guard<std::mutex> lock(mu_);
  path_filter_ = std::move(filter);
}

void FaultFs::SetBitFlipFilter(std::function<bool(const std::string&)> filter) {
  std::lock_guard<std::mutex> lock(mu_);
  bit_flip_filter_ = std::move(filter);
}

void FaultFs::Quiesce() {
  std::lock_guard<std::mutex> lock(mu_);
  quiesced_ = true;
}

FsFaultCounters FaultFs::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

uint64_t FaultFs::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_count_;
}

bool FaultFs::Matches(const std::string& path) const {
  return !path_filter_ || path_filter_(path);
}

uint64_t FaultFs::NextOp() { return op_count_++; }

bool FaultFs::InEnospc(uint64_t op) {
  if (armed_enospc_ > 0) {
    --armed_enospc_;
    return true;
  }
  for (const Window& w : enospc_windows_) {
    if (op >= w.start && op < w.start + w.length) return true;
  }
  return false;
}

uint64_t& FaultFs::DurableMark(const std::string& path) {
  auto it = durable_.find(path);
  if (it != durable_.end()) return it->second;
  // Bytes that existed before injection began were presumably synced by
  // whoever wrote them; treat the current size as the durable baseline.
  auto size = FileSystem::FileSize(path);
  return durable_[path] = size.ok() ? *size : 0;
}

void FaultFs::CrashDropUnsynced() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [path, durable] : durable_) {
    auto size = FileSystem::FileSize(path);
    if (!size.ok() || *size <= durable) continue;
    (void)FileSystem::Truncate(path, durable);
    ++counters_.crash_dropped_files;
    Count("griddb.fsfault.crash_dropped_files");
  }
}

Status FaultFs::Append(const std::string& path, std::string_view data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t op = NextOp();
    if (!quiesced_ && Matches(path)) {
      if (InEnospc(op)) {
        ++counters_.enospc;
        Count("griddb.fsfault.enospc");
        return IoError("append '" + path + "': no space left on device (injected)");
      }
      bool torn = armed_torn_keep_ >= 0;
      uint64_t keep = torn ? static_cast<uint64_t>(armed_torn_keep_) : 0;
      if (torn) {
        armed_torn_keep_ = -1;
      } else if (spec_.torn_write_probability > 0 && !data.empty() &&
                 rng_.NextDouble() < spec_.torn_write_probability) {
        torn = true;
        keep = static_cast<uint64_t>(
            rng_.UniformInt(0, static_cast<int64_t>(data.size()) - 1));
      }
      if (torn) {
        ++counters_.torn_writes;
        Count("griddb.fsfault.torn_writes");
        DurableMark(path);  // pin the pre-write durable baseline
        (void)FileSystem::Append(path, data.substr(0, std::min<size_t>(
                                           keep, data.size())));
        return IoError("append '" + path + "': torn write (injected)");
      }
      DurableMark(path);  // pin the pre-write durable baseline
      return FileSystem::Append(path, data);
    }
  }
  return FileSystem::Append(path, data);
}

Status FaultFs::WriteTruncate(const std::string& path, std::string_view data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t op = NextOp();
    if (!quiesced_ && Matches(path)) {
      if (InEnospc(op)) {
        ++counters_.enospc;
        Count("griddb.fsfault.enospc");
        return IoError("write '" + path + "': no space left on device (injected)");
      }
      bool torn = armed_torn_keep_ >= 0;
      uint64_t keep = torn ? static_cast<uint64_t>(armed_torn_keep_) : 0;
      if (torn) {
        armed_torn_keep_ = -1;
      } else if (spec_.torn_write_probability > 0 && !data.empty() &&
                 rng_.NextDouble() < spec_.torn_write_probability) {
        torn = true;
        keep = static_cast<uint64_t>(
            rng_.UniformInt(0, static_cast<int64_t>(data.size()) - 1));
      }
      // A truncate-write replaces the content: whatever was durable
      // before is gone from the new generation.
      DurableMark(path) = 0;
      if (torn) {
        ++counters_.torn_writes;
        Count("griddb.fsfault.torn_writes");
        (void)FileSystem::WriteTruncate(
            path, data.substr(0, std::min<size_t>(keep, data.size())));
        return IoError("write '" + path + "': torn write (injected)");
      }
      return FileSystem::WriteTruncate(path, data);
    }
  }
  return FileSystem::WriteTruncate(path, data);
}

Status FaultFs::Fsync(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    NextOp();
    if (!quiesced_ && Matches(path)) {
      bool lie = armed_lying_fsync_;
      armed_lying_fsync_ = false;
      if (!lie && spec_.lying_fsync_probability > 0 &&
          rng_.NextDouble() < spec_.lying_fsync_probability) {
        lie = true;
      }
      if (lie) {
        ++counters_.lying_fsyncs;
        Count("griddb.fsfault.lying_fsyncs");
        DurableMark(path);  // frozen at its pre-existing value
        return Status::Ok();
      }
      Status st = FileSystem::Fsync(path);
      if (st.ok()) {
        auto size = FileSystem::FileSize(path);
        if (size.ok()) durable_[path] = *size;
      }
      return st;
    }
  }
  // Pass-through still advances the durable mark: an honest fsync makes
  // the whole file durable whether or not injection is scoped to it.
  Status st = FileSystem::Fsync(path);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto size = FileSystem::FileSize(path);
    if (size.ok()) durable_[path] = *size;
  }
  return st;
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    NextOp();
    if (!quiesced_ && Matches(to) && spec_.rename_fail_probability > 0 &&
        rng_.NextDouble() < spec_.rename_fail_probability) {
      ++counters_.rename_fails;
      Count("griddb.fsfault.rename_fails");
      return IoError("rename '" + from + "' -> '" + to + "': injected failure");
    }
    Status st = FileSystem::Rename(from, to);
    if (st.ok()) {
      // The target inherits the source's durable mark: if the source's
      // bytes never hit disk, a crash after the rename still loses them.
      uint64_t mark = DurableMark(from);
      durable_.erase(from);
      durable_[to] = mark;
    }
    return st;
  }
}

Status FaultFs::Unlink(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    NextOp();
    if (!quiesced_ && Matches(path) && spec_.unlink_fail_probability > 0 &&
        rng_.NextDouble() < spec_.unlink_fail_probability) {
      ++counters_.unlink_fails;
      Count("griddb.fsfault.unlink_fails");
      return IoError("unlink '" + path + "': injected failure");
    }
    Status st = FileSystem::Unlink(path);
    if (st.ok()) durable_.erase(path);
    return st;
  }
}

Status FaultFs::Truncate(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  NextOp();
  Status st = FileSystem::Truncate(path, size);
  if (st.ok()) {
    uint64_t& mark = DurableMark(path);
    mark = std::min(mark, size);
  }
  return st;
}

Result<std::string> FaultFs::ReadFile(const std::string& path) {
  auto content = FileSystem::ReadFile(path);
  std::lock_guard<std::mutex> lock(mu_);
  NextOp();
  if (content.ok() && !content->empty() && !quiesced_ && Matches(path) &&
      (!bit_flip_filter_ || bit_flip_filter_(path)) &&
      spec_.bit_flip_probability > 0 &&
      rng_.NextDouble() < spec_.bit_flip_probability) {
    size_t at = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(content->size()) - 1));
    (*content)[at] = static_cast<char>((*content)[at] ^ 0x20);
    ++counters_.bit_flips;
    Count("griddb.fsfault.bit_flips");
  }
  return content;
}

Result<uint64_t> FaultFs::FileSize(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    NextOp();
  }
  return FileSystem::FileSize(path);
}

}  // namespace griddb::storage
