// Deterministic storage fault injection for the util::FileSystem seam.
//
// The grid setting assumes storage nodes as unreliable as the WAN links
// between them: disks fill mid-checkpoint, fsyncs acknowledge bytes the
// page cache later drops, media rots under committed stage chunks. None
// of that is reachable against a real disk deterministically, so FaultFs
// subclasses the util::FileSystem seam every durable writer goes through
// (util/journal, storage/stage_file, batch scratch marts, ETL manifests)
// and injects those failures from a seeded RNG, mirroring the schedule
// style of net::FaultPlan for the simulated network:
//
//   - torn writes: a prefix of the data lands, the call fails — the tail
//     the journal/stage readers must survive;
//   - lying fsyncs: the call returns OK but the file's durable mark does
//     not advance; a later CrashDropUnsynced() truncates the real file to
//     its durable mark, exactly what a power cut does to a page cache;
//   - ENOSPC windows: write ops in a chosen global-op-count interval fail
//     with kIoError, then space "comes back" — the degradation the batch
//     service must ride out by pausing, not failing, jobs;
//   - read bit flips: one byte of the returned content is flipped (the
//     file itself is untouched) — what stage-chunk digests must catch;
//   - rename/unlink failures for the atomic-replace and cleanup paths.
//
// Fates are drawn from one RNG stream keyed only on the global operation
// order, so a given (seed, op sequence) replays identically. Injection is
// scoped by an optional path filter; Quiesce() turns all injection off so
// a chaos run can drain to a faultless steady state before checking
// invariants.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "griddb/util/fs.h"
#include "griddb/util/rng.h"

namespace griddb::storage {

/// Per-operation fault probabilities. Each matching operation draws its
/// fate independently from the shared RNG stream.
struct FsFaultSpec {
  double torn_write_probability = 0;   ///< Prefix lands, call fails kIoError.
  double lying_fsync_probability = 0;  ///< OK returned, durable mark frozen.
  double bit_flip_probability = 0;     ///< One byte of a read flipped.
  double rename_fail_probability = 0;
  double unlink_fail_probability = 0;

  bool Faulty() const {
    return torn_write_probability > 0 || lying_fsync_probability > 0 ||
           bit_flip_probability > 0 || rename_fail_probability > 0 ||
           unlink_fail_probability > 0;
  }
};

/// Running totals of injected faults, surfaced for assertions.
struct FsFaultCounters {
  size_t torn_writes = 0;
  size_t lying_fsyncs = 0;
  size_t bit_flips = 0;
  size_t enospc = 0;
  size_t rename_fails = 0;
  size_t unlink_fails = 0;
  size_t crash_dropped_files = 0;  ///< Files truncated by CrashDropUnsynced.

  size_t total() const {
    return torn_writes + lying_fsyncs + bit_flips + enospc + rename_fails +
           unlink_fails;
  }
};

/// A fault-injecting util::FileSystem. Install with util::SetFileSystem;
/// real I/O is delegated to the base-class POSIX implementation. Thread-
/// safe; fates depend only on the global operation order (like
/// net::FaultPlan's message order).
class FaultFs : public util::FileSystem {
 public:
  explicit FaultFs(uint64_t seed = 2005);

  void SetSpec(FsFaultSpec spec);

  /// Write operations (Append / WriteTruncate) whose global op index
  /// falls in [start_op, start_op + length) fail with kIoError ENOSPC.
  /// Windows are in op space, not wall time, so a paused-and-retried
  /// workload deterministically escapes them.
  void AddEnospcWindow(uint64_t start_op, uint64_t length);

  /// The next `count` matching write operations fail with ENOSPC
  /// (counter-based arming for unit tests).
  void ArmEnospc(uint64_t count);

  /// The next matching write operation persists only the first
  /// `keep_bytes` of its data and fails (one-shot torn write).
  void ArmTornWrite(uint64_t keep_bytes);

  /// The next matching Fsync lies (one-shot).
  void ArmLyingFsync();

  /// Injection applies only to paths the filter accepts (default: all).
  void SetPathFilter(std::function<bool(const std::string&)> filter);

  /// Bit flips additionally require this filter (default: all). Lets a
  /// harness rot stage chunks while leaving the self-healing journal
  /// alone so its invariants stay crisp.
  void SetBitFlipFilter(std::function<bool(const std::string&)> filter);

  /// Simulated power cut: every file touched through this instance is
  /// truncated (for real, via the base class) to its durable mark — the
  /// size last covered by an honest fsync. Call between "kill" and
  /// "restart" in a crash schedule.
  void CrashDropUnsynced();

  /// Turns all injection off (pass-through). Counters keep their totals.
  /// Used to drain a chaos workload to a faultless steady state.
  void Quiesce();

  FsFaultCounters counters() const;
  uint64_t ops() const;

  // util::FileSystem:
  Status Append(const std::string& path, std::string_view data) override;
  Status WriteTruncate(const std::string& path,
                       std::string_view data) override;
  Status Fsync(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Unlink(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;

 private:
  struct Window {
    uint64_t start = 0;
    uint64_t length = 0;
  };

  bool Matches(const std::string& path) const;  // callers hold mu_
  uint64_t NextOp();                            // callers hold mu_
  bool InEnospc(uint64_t op);                   // callers hold mu_
  /// Durable mark of `path`, lazily initialised to the file's current
  /// size (bytes that existed before injection began are durable).
  uint64_t& DurableMark(const std::string& path);  // callers hold mu_

  mutable std::mutex mu_;
  Rng rng_;
  FsFaultSpec spec_;
  std::vector<Window> enospc_windows_;
  uint64_t armed_enospc_ = 0;
  int64_t armed_torn_keep_ = -1;  ///< >= 0 when a torn write is armed.
  bool armed_lying_fsync_ = false;
  bool quiesced_ = false;
  std::function<bool(const std::string&)> path_filter_;
  std::function<bool(const std::string&)> bit_flip_filter_;
  uint64_t op_count_ = 0;
  std::map<std::string, uint64_t> durable_;
  FsFaultCounters counters_;
};

}  // namespace griddb::storage
