#include "griddb/storage/result_set.h"

#include <algorithm>

#include "griddb/util/strings.h"

namespace griddb::storage {

int ResultSet::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i], name)) return static_cast<int>(i);
  }
  return -1;
}

size_t ResultSet::WireSize() const {
  size_t total = 16;  // header
  for (const std::string& c : columns) total += 4 + c.size();
  for (const Row& row : rows) total += RowWireSize(row);
  return total;
}

std::string ResultSet::ToText(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  size_t shown = std::min(max_rows, rows.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(columns.size());
    for (size_t c = 0; c < columns.size() && c < rows[r].size(); ++c) {
      cells[r][c] = rows[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  auto rule = [&] {
    std::string line = "+";
    for (size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  std::string out = rule();
  out += "|";
  for (size_t c = 0; c < columns.size(); ++c) {
    out += " " + columns[c] + std::string(widths[c] - columns[c].size(), ' ') + " |";
  }
  out += "\n" + rule();
  for (size_t r = 0; r < shown; ++r) {
    out += "|";
    for (size_t c = 0; c < columns.size(); ++c) {
      const std::string& cell = c < cells[r].size() ? cells[r][c] : std::string();
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
  }
  out += rule();
  if (rows.size() > shown) {
    out += "(" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace griddb::storage
