// In-memory table storage with primary-key and secondary hash indexes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "griddb/storage/schema.h"
#include "griddb/storage/value.h"
#include "griddb/util/status.h"

namespace griddb::storage {

/// A heap of rows plus optional hash indexes. Not internally synchronized;
/// the owning engine::Database serializes access.
class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Validates, coerces and appends. Enforces primary-key uniqueness.
  Status Insert(Row row);

  /// Bulk insert; stops at the first failure (already-inserted rows stay).
  Status InsertAll(std::vector<Row> rows);

  /// Replaces the row at `index` (validated/coerced; PK updates re-indexed).
  Status UpdateRow(size_t index, Row row);

  /// Deletes the rows at the given indexes (sorted ascending internally).
  void DeleteRows(std::vector<size_t> indexes);

  /// Drops all rows (keeps schema and index definitions).
  void Truncate();

  /// Builds a secondary hash index on one column. Idempotent.
  Status CreateIndex(std::string_view column);
  bool HasIndexOn(std::string_view column) const;

  /// Row indexes matching `value` in `column`; uses the hash index when
  /// available, otherwise scans.
  std::vector<size_t> Lookup(std::string_view column, const Value& value) const;

  /// Approximate in-memory / on-the-wire footprint of the stored rows.
  size_t DataWireSize() const;

 private:
  struct HashIndex {
    size_t column_index;
    std::unordered_multimap<Value, size_t, ValueHasher> map;
  };

  Status CheckPrimaryKeyUnique(const Row& row, size_t ignore_index) const;
  void ReindexAll();
  std::string PkKey(const Row& row) const;

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<size_t> pk_indexes_;
  std::unordered_map<std::string, size_t> pk_map_;  // pk key -> row index
  std::vector<HashIndex> indexes_;
};

}  // namespace griddb::storage
