#include "griddb/storage/table.h"

#include <algorithm>

#include "griddb/util/strings.h"

namespace griddb::storage {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  pk_indexes_ = schema_.PrimaryKeyIndexes();
}

std::string Table::PkKey(const Row& row) const {
  std::string key;
  for (size_t idx : pk_indexes_) {
    key += row[idx].ToString();
    key += '\x1f';
  }
  return key;
}

Status Table::CheckPrimaryKeyUnique(const Row& row, size_t ignore_index) const {
  if (pk_indexes_.empty()) return Status::Ok();
  auto it = pk_map_.find(PkKey(row));
  if (it != pk_map_.end() && it->second != ignore_index) {
    return AlreadyExists("duplicate primary key in table '" + name() + "'");
  }
  return Status::Ok();
}

Status Table::Insert(Row row) {
  GRIDDB_RETURN_IF_ERROR(schema_.CoerceRow(row));
  GRIDDB_RETURN_IF_ERROR(CheckPrimaryKeyUnique(row, rows_.size()));
  size_t new_index = rows_.size();
  if (!pk_indexes_.empty()) pk_map_[PkKey(row)] = new_index;
  for (HashIndex& index : indexes_) {
    index.map.emplace(row[index.column_index], new_index);
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

Status Table::InsertAll(std::vector<Row> new_rows) {
  for (Row& row : new_rows) {
    GRIDDB_RETURN_IF_ERROR(Insert(std::move(row)));
  }
  return Status::Ok();
}

Status Table::UpdateRow(size_t index, Row row) {
  if (index >= rows_.size()) {
    return InvalidArgument("row index out of range");
  }
  GRIDDB_RETURN_IF_ERROR(schema_.CoerceRow(row));
  GRIDDB_RETURN_IF_ERROR(CheckPrimaryKeyUnique(row, index));
  rows_[index] = std::move(row);
  ReindexAll();
  return Status::Ok();
}

void Table::DeleteRows(std::vector<size_t> indexes) {
  if (indexes.empty()) return;
  std::sort(indexes.begin(), indexes.end());
  indexes.erase(std::unique(indexes.begin(), indexes.end()), indexes.end());
  // Erase from the back so earlier indexes stay valid.
  for (auto it = indexes.rbegin(); it != indexes.rend(); ++it) {
    if (*it < rows_.size()) rows_.erase(rows_.begin() + static_cast<long>(*it));
  }
  ReindexAll();
}

void Table::Truncate() {
  rows_.clear();
  ReindexAll();
}

void Table::ReindexAll() {
  pk_map_.clear();
  for (HashIndex& index : indexes_) index.map.clear();
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (!pk_indexes_.empty()) pk_map_[PkKey(rows_[r])] = r;
    for (HashIndex& index : indexes_) {
      index.map.emplace(rows_[r][index.column_index], r);
    }
  }
}

Status Table::CreateIndex(std::string_view column) {
  auto col = schema_.ColumnIndex(column);
  if (!col) {
    return NotFound("no column '" + std::string(column) + "' in table '" +
                    name() + "'");
  }
  if (HasIndexOn(column)) return Status::Ok();
  HashIndex index;
  index.column_index = *col;
  for (size_t r = 0; r < rows_.size(); ++r) {
    index.map.emplace(rows_[r][*col], r);
  }
  indexes_.push_back(std::move(index));
  return Status::Ok();
}

bool Table::HasIndexOn(std::string_view column) const {
  auto col = schema_.ColumnIndex(column);
  if (!col) return false;
  for (const HashIndex& index : indexes_) {
    if (index.column_index == *col) return true;
  }
  return false;
}

std::vector<size_t> Table::Lookup(std::string_view column,
                                  const Value& value) const {
  std::vector<size_t> out;
  auto col = schema_.ColumnIndex(column);
  if (!col) return out;
  for (const HashIndex& index : indexes_) {
    if (index.column_index == *col) {
      auto [begin, end] = index.map.equal_range(value);
      for (auto it = begin; it != end; ++it) out.push_back(it->second);
      std::sort(out.begin(), out.end());
      return out;
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    const Value& cell = rows_[r][*col];
    if (!cell.is_null() && !value.is_null() && cell == value) out.push_back(r);
  }
  return out;
}

size_t Table::DataWireSize() const {
  size_t total = 0;
  for (const Row& row : rows_) total += RowWireSize(row);
  return total;
}

}  // namespace griddb::storage
