// Order-insensitive table content digests for anti-entropy verification.
//
// A replica of a warehouse view must hold exactly the same multiset of
// rows as the warehouse, but row order is an artefact of load order and
// must not matter. Each row is hashed individually (MD5 over its
// canonical stage-file encoding) and the per-row digests are combined
// with 128-bit addition: commutative (order-insensitive) but, unlike
// XOR, duplicate-sensitive — a row inserted twice changes the digest.
#pragma once

#include <string>
#include <vector>

#include "griddb/storage/value.h"

namespace griddb::storage {

/// Row count + combined MD5; two tables with equal digests hold the same
/// multiset of rows (up to MD5 collision).
struct TableDigest {
  size_t rows = 0;
  std::string md5;  ///< 32 lowercase hex chars.

  friend bool operator==(const TableDigest& a, const TableDigest& b) {
    return a.rows == b.rows && a.md5 == b.md5;
  }
  friend bool operator!=(const TableDigest& a, const TableDigest& b) {
    return !(a == b);
  }

  /// "rows=120 md5=0123..." (diagnostics).
  std::string ToString() const;
};

/// Canonical encoding of one row: stage-file escaped cells joined by
/// tabs. Shared by the digest and the chunked stage format so a staged
/// chunk's digest is comparable end to end.
std::string CanonicalRowEncoding(const Row& row);

/// Digest of a multiset of rows (order-insensitive).
TableDigest DigestRows(const std::vector<Row>& rows);

}  // namespace griddb::storage
