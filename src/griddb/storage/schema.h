// Table schemas: column definitions, primary keys, foreign keys.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "griddb/storage/value.h"
#include "griddb/util/status.h"

namespace griddb::storage {

struct ColumnDef {
  std::string name;
  DataType type = DataType::kString;
  bool not_null = false;
  bool primary_key = false;
};

struct ForeignKey {
  std::vector<std::string> columns;
  std::string referenced_table;
  std::vector<std::string> referenced_columns;
};

class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns,
              std::vector<ForeignKey> foreign_keys = {})
      : name_(std::move(name)),
        columns_(std::move(columns)),
        foreign_keys_(std::move(foreign_keys)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }
  size_t num_columns() const { return columns_.size(); }

  /// Case-insensitive column lookup; nullopt when absent.
  std::optional<size_t> ColumnIndex(std::string_view column_name) const;
  const ColumnDef* FindColumn(std::string_view column_name) const;

  /// Indexes of the primary-key columns, in declaration order.
  std::vector<size_t> PrimaryKeyIndexes() const;
  bool HasPrimaryKey() const;

  /// Validates a row against this schema: arity, NOT NULL, type
  /// compatibility (int64 accepted into double columns and vice versa when
  /// integral; bool accepted into numeric).
  Status ValidateRow(const Row& row) const;

  /// Coerces a row in place to the declared column types where a lossless
  /// coercion exists (e.g. int64 literal into a DOUBLE column).
  Status CoerceRow(Row& row) const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace griddb::storage
