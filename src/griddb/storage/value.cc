#include "griddb/storage/value.h"

#include <cmath>
#include <functional>

#include "griddb/util/strings.h"

namespace griddb::storage {

const char* DataTypeName(DataType type) noexcept {
  switch (type) {
    case DataType::kNull: return "NULL";
    case DataType::kInt64: return "INT64";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "STRING";
    case DataType::kBool: return "BOOL";
  }
  return "?";
}

DataType Value::type() const noexcept {
  switch (data_.index()) {
    case 0: return DataType::kNull;
    case 1: return DataType::kInt64;
    case 2: return DataType::kDouble;
    case 3: return DataType::kString;
    case 4: return DataType::kBool;
  }
  return DataType::kNull;
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case DataType::kInt64: return static_cast<double>(AsInt64Strict());
    case DataType::kDouble: return AsDoubleStrict();
    case DataType::kBool: return AsBoolStrict() ? 1.0 : 0.0;
    default:
      return TypeError(std::string("cannot coerce ") + DataTypeName(type()) +
                       " to DOUBLE");
  }
}

Result<int64_t> Value::AsInt64() const {
  switch (type()) {
    case DataType::kInt64: return AsInt64Strict();
    case DataType::kBool: return static_cast<int64_t>(AsBoolStrict());
    case DataType::kDouble: {
      double d = AsDoubleStrict();
      if (std::floor(d) == d) return static_cast<int64_t>(d);
      return TypeError("non-integral DOUBLE cannot coerce to INT64");
    }
    default:
      return TypeError(std::string("cannot coerce ") + DataTypeName(type()) +
                       " to INT64");
  }
}

Result<bool> Value::AsBool() const {
  switch (type()) {
    case DataType::kBool: return AsBoolStrict();
    case DataType::kInt64: return AsInt64Strict() != 0;
    case DataType::kDouble: return AsDoubleStrict() != 0.0;
    default:
      return TypeError(std::string("cannot coerce ") + DataTypeName(type()) +
                       " to BOOL");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull: return "NULL";
    case DataType::kInt64: return std::to_string(AsInt64Strict());
    case DataType::kDouble: {
      std::string s = StrFormat("%.17g", AsDoubleStrict());
      return s;
    }
    case DataType::kString: return AsStringStrict();
    case DataType::kBool: return AsBoolStrict() ? "TRUE" : "FALSE";
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (type() == DataType::kString) {
    return "'" + ReplaceAll(AsStringStrict(), "'", "''") + "'";
  }
  return ToString();
}

size_t Value::WireSize() const noexcept {
  switch (type()) {
    case DataType::kNull: return 1;
    case DataType::kInt64: return 9;
    case DataType::kDouble: return 9;
    case DataType::kBool: return 2;
    case DataType::kString: return 5 + AsStringStrict().size();
  }
  return 1;
}

namespace {
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull: return 0;
    case DataType::kBool: return 1;
    case DataType::kInt64: return 2;   // numerics share a rank via coercion
    case DataType::kDouble: return 2;
    case DataType::kString: return 3;
  }
  return 4;
}
}  // namespace

int Value::Compare(const Value& other) const {
  DataType a = type(), b = other.type();
  if (a == DataType::kNull || b == DataType::kNull) {
    return (a == b) ? 0 : (a == DataType::kNull ? -1 : 1);
  }
  bool a_num = (a == DataType::kInt64 || a == DataType::kDouble ||
                a == DataType::kBool);
  bool b_num = (b == DataType::kInt64 || b == DataType::kDouble ||
                b == DataType::kBool);
  if (a_num && b_num) {
    if (a == DataType::kInt64 && b == DataType::kInt64) {
      int64_t x = AsInt64Strict(), y = other.AsInt64Strict();
      return (x < y) ? -1 : (x > y ? 1 : 0);
    }
    double x = AsDouble().value(), y = other.AsDouble().value();
    return (x < y) ? -1 : (x > y ? 1 : 0);
  }
  if (a == DataType::kString && b == DataType::kString) {
    return AsStringStrict().compare(other.AsStringStrict());
  }
  int ra = TypeRank(a), rb = TypeRank(b);
  return (ra < rb) ? -1 : (ra > rb ? 1 : 0);
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9ae16a3b2f90404full;
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kDouble: {
      // Hash all numerics through double so 1 == 1.0 hash-agrees.
      double d = AsDouble().value();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return std::hash<double>{}(d);
    }
    case DataType::kString:
      return std::hash<std::string>{}(AsStringStrict());
  }
  return 0;
}

Result<Value> Value::FromText(std::string_view text, DataType type) {
  switch (type) {
    case DataType::kInt64: {
      int64_t v = 0;
      if (!ParseInt64(text, &v)) {
        return TypeError("cannot parse '" + std::string(text) + "' as INT64");
      }
      return Value(v);
    }
    case DataType::kDouble: {
      double v = 0;
      if (!ParseDouble(text, &v)) {
        return TypeError("cannot parse '" + std::string(text) + "' as DOUBLE");
      }
      return Value(v);
    }
    case DataType::kBool: {
      if (EqualsIgnoreCase(text, "true") || text == "1") return Value(true);
      if (EqualsIgnoreCase(text, "false") || text == "0") return Value(false);
      return TypeError("cannot parse '" + std::string(text) + "' as BOOL");
    }
    case DataType::kString:
      return Value(std::string(text));
    case DataType::kNull:
      return Value::Null();
  }
  return TypeError("unknown data type");
}

size_t RowWireSize(const Row& row) noexcept {
  size_t total = 4;  // row header
  for (const Value& v : row) total += v.WireSize();
  return total;
}

}  // namespace griddb::storage
