#include "griddb/storage/stage_file.h"

#include <map>
#include <set>

#include "griddb/util/fs.h"
#include "griddb/util/journal.h"
#include "griddb/util/md5.h"
#include "griddb/util/strings.h"

namespace griddb::storage {

namespace {
constexpr std::string_view kMagic = "# griddb-stage v1";
constexpr std::string_view kChunkedMagic = "# griddb-stage v2";
constexpr std::string_view kManifestMagic = "# griddb-manifest v1";

const char* TypeTag(DataType type) {
  switch (type) {
    case DataType::kInt64: return "INT64";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "STRING";
    case DataType::kBool: return "BOOL";
    case DataType::kNull: return "NULL";
  }
  return "?";
}

Result<DataType> TypeFromTag(std::string_view tag) {
  if (tag == "INT64") return DataType::kInt64;
  if (tag == "DOUBLE") return DataType::kDouble;
  if (tag == "STRING") return DataType::kString;
  if (tag == "BOOL") return DataType::kBool;
  return ParseError("unknown stage column type '" + std::string(tag) + "'");
}
}  // namespace

std::string EscapeCell(const Value& value) {
  if (value.is_null()) return "\\N";
  std::string raw = value.ToString();
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

Result<Value> UnescapeCell(std::string_view cell, DataType type) {
  if (cell == "\\N") return Value::Null();
  std::string raw;
  raw.reserve(cell.size());
  for (size_t i = 0; i < cell.size(); ++i) {
    if (cell[i] != '\\') {
      raw += cell[i];
      continue;
    }
    if (i + 1 >= cell.size()) return ParseError("dangling escape in cell");
    ++i;
    switch (cell[i]) {
      case '\\': raw += '\\'; break;
      case 't': raw += '\t'; break;
      case 'n': raw += '\n'; break;
      case 'r': raw += '\r'; break;
      case 'N': return ParseError("\\N must be the whole cell");
      default: return ParseError("unknown escape in cell");
    }
  }
  return Value::FromText(raw, type);
}

std::string EncodeStage(const TableSchema& schema,
                        const std::vector<Row>& rows) {
  std::string out(kMagic);
  out += "\ntable ";
  out += schema.name();
  out += '\n';
  for (const ColumnDef& col : schema.columns()) {
    out += "column ";
    out += col.name;
    out += ' ';
    out += TypeTag(col.type);
    if (col.primary_key) out += " pk";
    if (col.not_null) out += " notnull";
    out += '\n';
  }
  out += "rows " + std::to_string(rows.size()) + "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += '\t';
      out += EscapeCell(row[i]);
    }
    out += '\n';
  }
  return out;
}

size_t StagedData::EncodedSize() const {
  return EncodeStage(schema, rows).size();
}

Result<StagedData> DecodeStage(std::string_view buffer) {
  std::vector<std::string> lines = Split(buffer, '\n');
  size_t line_no = 0;
  auto next_line = [&]() -> std::string_view {
    while (line_no < lines.size()) {
      return lines[line_no++];
    }
    return {};
  };

  std::string_view magic = next_line();
  if (magic != kMagic) return ParseError("bad stage file magic");

  std::string_view table_line = next_line();
  if (!StartsWith(table_line, "table ")) {
    return ParseError("expected 'table <name>' header");
  }
  std::string table_name(Trim(table_line.substr(6)));

  std::vector<ColumnDef> columns;
  size_t declared_rows = 0;
  while (true) {
    if (line_no >= lines.size()) return ParseError("missing 'rows' header");
    std::string_view line = lines[line_no++];
    if (StartsWith(line, "column ")) {
      std::vector<std::string> parts = SplitTrimmed(line.substr(7), ' ');
      if (parts.size() < 2) return ParseError("malformed column header");
      ColumnDef col;
      col.name = parts[0];
      GRIDDB_ASSIGN_OR_RETURN(col.type, TypeFromTag(parts[1]));
      for (size_t i = 2; i < parts.size(); ++i) {
        if (parts[i] == "pk") col.primary_key = true;
        else if (parts[i] == "notnull") col.not_null = true;
        else return ParseError("unknown column flag '" + parts[i] + "'");
      }
      columns.push_back(std::move(col));
      continue;
    }
    if (StartsWith(line, "rows ")) {
      int64_t n = 0;
      if (!ParseInt64(line.substr(5), &n) || n < 0) {
        return ParseError("malformed rows header");
      }
      declared_rows = static_cast<size_t>(n);
      break;
    }
    return ParseError("unexpected header line in stage file");
  }
  if (columns.empty()) return ParseError("stage file declares no columns");

  StagedData staged;
  staged.schema = TableSchema(table_name, columns);
  staged.rows.reserve(declared_rows);
  for (size_t r = 0; r < declared_rows; ++r) {
    if (line_no >= lines.size()) {
      return ParseError("stage file truncated: expected " +
                        std::to_string(declared_rows) + " rows, found " +
                        std::to_string(r));
    }
    std::string_view line = lines[line_no++];
    std::vector<std::string> cells = Split(line, '\t');
    if (cells.size() != columns.size()) {
      return ParseError("row " + std::to_string(r) + " has " +
                        std::to_string(cells.size()) + " cells, expected " +
                        std::to_string(columns.size()));
    }
    Row row;
    row.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      GRIDDB_ASSIGN_OR_RETURN(Value v, UnescapeCell(cells[c], columns[c].type));
      row.push_back(std::move(v));
    }
    staged.rows.push_back(std::move(row));
  }
  return staged;
}

Status WriteStageFile(const std::string& path, const TableSchema& schema,
                      const std::vector<Row>& rows) {
  return util::Fs().WriteTruncate(path, EncodeStage(schema, rows));
}

Result<StagedData> ReadStageFile(const std::string& path) {
  GRIDDB_ASSIGN_OR_RETURN(std::string content, util::Fs().ReadFile(path));
  return DecodeStage(content);
}

// ---------- chunked (v2) stage files ----------

namespace {

std::string EncodeSchemaHeader(const TableSchema& schema) {
  std::string out = "table ";
  out += schema.name();
  out += '\n';
  for (const ColumnDef& col : schema.columns()) {
    out += "column ";
    out += col.name;
    out += ' ';
    out += TypeTag(col.type);
    if (col.primary_key) out += " pk";
    if (col.not_null) out += " notnull";
    out += '\n';
  }
  // Frame digests cover row blocks only; without this line a flipped
  // bit in a column name stays parseable and silently renames the
  // column in every table rebuilt from the file.
  out += "header_md5 " + Md5Hex(out) + '\n';
  return out;
}

Result<ColumnDef> ParseColumnLine(std::string_view line) {
  std::vector<std::string> parts = SplitTrimmed(line.substr(7), ' ');
  if (parts.size() < 2) return ParseError("malformed column header");
  ColumnDef col;
  col.name = parts[0];
  GRIDDB_ASSIGN_OR_RETURN(col.type, TypeFromTag(parts[1]));
  for (size_t i = 2; i < parts.size(); ++i) {
    if (parts[i] == "pk") col.primary_key = true;
    else if (parts[i] == "notnull") col.not_null = true;
    else return ParseError("unknown column flag '" + parts[i] + "'");
  }
  return col;
}

}  // namespace

std::string EncodeRowBlock(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += '\t';
      out += EscapeCell(row[i]);
    }
    out += '\n';
  }
  return out;
}

Status AppendStageChunk(const std::string& path, const TableSchema& schema,
                        const StageChunk& chunk,
                        const std::string& encoded_rows) {
  // An empty file counts as fresh (a tear repaired by truncating to zero
  // must get its magic + schema header back with the next frame).
  auto size = util::Fs().FileSize(path);
  if (!size.ok() && size.status().code() != StatusCode::kNotFound) {
    return size.status();
  }
  bool fresh = !size.ok() || *size == 0;
  std::string frame;
  if (fresh) {
    frame += kChunkedMagic;
    frame += '\n';
    frame += EncodeSchemaHeader(schema);
  }
  frame += "chunk " + std::to_string(chunk.id) + " rows " +
           std::to_string(chunk.rows) + " md5 " + chunk.md5 + "\n";
  frame += encoded_rows;
  return util::Fs().Append(path, frame);
}

namespace {

/// Shared reader: strict mode (corrupt_ids == nullptr) fails on the first
/// digest mismatch; tolerant mode collects the offending ids instead. An
/// id counts as corrupt only when its LAST frame fails (a re-staged good
/// frame supersedes an earlier corrupt one and vice versa).
///
/// With `damage` set, structural problems at the tail become survivable:
/// parsing stops at the tear, the intact prefix is returned, and
/// `damage->intact_bytes` tells the caller where to truncate before the
/// next append. The prefix is measured in complete FRAMES: until one
/// whole frame decodes structurally, the prefix is zero bytes — a tear
/// inside the magic/schema header (which is written together with the
/// first frame) wipes the file back to empty, so the next append rewrites
/// a complete header instead of extending a half-written one.
Result<ChunkedStage> ReadChunkedImpl(const std::string& path,
                                     std::vector<size_t>* corrupt_ids,
                                     StageDamage* damage) {
  GRIDDB_ASSIGN_OR_RETURN(std::string content, util::Fs().ReadFile(path));

  // Positional scanner: byte offsets are tracked so a tear is reportable
  // as a truncate length. Lines must be '\n'-terminated (every writer
  // emits them that way); an unterminated tail is a torn write.
  size_t pos = 0;
  auto next_line = [&](std::string_view* line) -> bool {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) return false;
    *line = std::string_view(content).substr(pos, eol - pos);
    pos = eol + 1;
    return true;
  };
  // End of the last structurally complete frame (0 until one exists).
  uint64_t intact = 0;
  auto torn_at_intact = [&]() -> bool {
    if (damage == nullptr) return false;
    damage->torn = true;
    damage->intact_bytes = intact;
    return true;
  };

  ChunkedStage empty_stage;  // what a header-torn file decodes to

  if (content.empty()) {
    // Exists but holds nothing: a tear repaired back to zero bytes. The
    // next append treats it as fresh; nothing to report.
    if (damage != nullptr) return empty_stage;
    return ParseError("bad chunked stage file magic");
  }

  std::string_view line;
  if (!next_line(&line) || line != kChunkedMagic) {
    if (torn_at_intact()) return empty_stage;
    return ParseError("bad chunked stage file magic");
  }
  const size_t schema_start = pos;
  if (!next_line(&line) || !StartsWith(line, "table ")) {
    if (torn_at_intact()) return empty_stage;
    return ParseError("expected 'table <name>' header");
  }
  std::string table_name(Trim(line.substr(6)));

  std::vector<ColumnDef> columns;
  while (pos < content.size()) {
    size_t mark = pos;
    if (!next_line(&line)) {
      if (torn_at_intact()) return empty_stage;
      return ParseError("unterminated header line in stage file");
    }
    if (!StartsWith(line, "column ")) {
      pos = mark;  // first chunk frame; re-read below
      break;
    }
    auto col = ParseColumnLine(line);
    if (!col.ok()) {
      if (torn_at_intact()) return empty_stage;
      return col.status();
    }
    columns.push_back(std::move(*col));
  }
  if (columns.empty()) {
    if (torn_at_intact()) return empty_stage;
    return ParseError("stage file declares no columns");
  }

  // Header digest: frame digests cover row blocks only, so without
  // this check a flipped bit in a column name stays parseable and
  // every table rebuilt from the file silently carries the rotted
  // schema. A rotted header poisons everything after it — treat it
  // like a tear at byte zero: the caller truncates the file away and
  // re-stages from the source. (Absence is tolerated: a file from a
  // writer predating the digest line is accepted unverified.)
  if (pos < content.size()) {
    const size_t mark = pos;
    if (next_line(&line) && StartsWith(line, "header_md5 ")) {
      const std::string_view want = Trim(line.substr(11));
      if (Md5Hex(std::string_view(content).substr(
              schema_start, mark - schema_start)) != want) {
        if (damage != nullptr) {
          damage->torn = true;
          damage->intact_bytes = 0;
          return empty_stage;
        }
        return Corruption("stage header of '" + path +
                          "' fails digest verification");
      }
    } else {
      pos = mark;  // legacy header without a digest line
    }
  }

  // Frames, in file order; re-staged chunks supersede earlier frames
  // with the same id.
  struct Frame {
    StageChunk chunk;
    std::vector<Row> rows;
  };
  std::map<size_t, Frame> frames;
  std::set<size_t> corrupt;
  while (pos < content.size()) {
    if (!next_line(&line)) {
      if (torn_at_intact()) break;
      return ParseError("unterminated frame in stage file '" + path + "'");
    }
    if (!StartsWith(line, "chunk ")) {
      if (torn_at_intact()) break;
      return ParseError("expected chunk frame header, got '" +
                        std::string(line) + "'");
    }
    std::vector<std::string> parts = SplitTrimmed(line, ' ');
    int64_t id = -1, declared_rows = -1;
    if (parts.size() != 6 || parts[2] != "rows" || parts[4] != "md5" ||
        !ParseInt64(parts[1], &id) || !ParseInt64(parts[3], &declared_rows) ||
        id < 0 || declared_rows < 0) {
      if (torn_at_intact()) break;
      return ParseError("malformed chunk frame header");
    }
    Frame frame;
    frame.chunk.id = static_cast<size_t>(id);
    frame.chunk.rows = static_cast<size_t>(declared_rows);
    frame.chunk.md5 = parts[5];

    // Digest first, cells second: a corrupt block must be detected (and,
    // in tolerant mode, skipped) before any cell-level parsing runs on
    // its damaged bytes.
    std::string block;
    std::vector<std::string_view> row_lines;
    row_lines.reserve(frame.chunk.rows);
    bool torn_frame = false;
    for (size_t r = 0; r < frame.chunk.rows; ++r) {
      std::string_view row_line;
      if (!next_line(&row_line)) {
        torn_frame = true;
        break;
      }
      block += row_line;
      block += '\n';
      row_lines.push_back(row_line);
    }
    if (torn_frame) {
      if (torn_at_intact()) break;
      return ParseError("chunk " + std::to_string(id) +
                        " truncated: expected " +
                        std::to_string(declared_rows) + " rows, found " +
                        std::to_string(row_lines.size()));
    }
    intact = pos;  // frame structurally complete, digest-good or not
    if (Md5Hex(block) != frame.chunk.md5) {
      if (corrupt_ids == nullptr) {
        return Corruption("chunk " + std::to_string(id) + " of '" + path +
                          "' fails digest verification");
      }
      corrupt.insert(frame.chunk.id);
      frames.erase(frame.chunk.id);
      continue;
    }
    frame.rows.reserve(frame.chunk.rows);
    for (size_t r = 0; r < row_lines.size(); ++r) {
      std::vector<std::string> cells = Split(row_lines[r], '\t');
      if (cells.size() != columns.size()) {
        return ParseError("chunk " + std::to_string(id) + " row " +
                          std::to_string(r) + " has " +
                          std::to_string(cells.size()) + " cells, expected " +
                          std::to_string(columns.size()));
      }
      Row row;
      row.reserve(cells.size());
      for (size_t c = 0; c < cells.size(); ++c) {
        GRIDDB_ASSIGN_OR_RETURN(Value v,
                                UnescapeCell(cells[c], columns[c].type));
        row.push_back(std::move(v));
      }
      frame.rows.push_back(std::move(row));
    }
    corrupt.erase(frame.chunk.id);
    frames[frame.chunk.id] = std::move(frame);
  }
  if (corrupt_ids != nullptr) {
    corrupt_ids->assign(corrupt.begin(), corrupt.end());
  }

  ChunkedStage stage;
  stage.schema = TableSchema(table_name, columns);
  for (auto& [id, frame] : frames) {
    (void)id;
    stage.chunks.push_back(frame.chunk);
    stage.rows.push_back(std::move(frame.rows));
  }
  return stage;
}

}  // namespace

Result<ChunkedStage> ReadChunkedStageFile(const std::string& path) {
  return ReadChunkedImpl(path, nullptr, nullptr);
}

Result<ChunkedStage> ReadChunkedStageFileTolerant(
    const std::string& path, std::vector<size_t>* corrupt_ids,
    StageDamage* damage) {
  return ReadChunkedImpl(path, corrupt_ids, damage);
}

// ---------- manifest journal ----------

const StageChunk* StageManifest::FindCommitted(size_t id) const {
  for (const StageChunk& chunk : committed) {
    if (chunk.id == id) return &chunk;
  }
  return nullptr;
}

bool StageManifest::IsLoaded(size_t id) const {
  for (size_t loaded_id : loaded) {
    if (loaded_id == id) return true;
  }
  return false;
}

std::string EncodeManifest(const StageManifest& manifest) {
  std::string out(kManifestMagic);
  out += "\ntotal_chunks " + std::to_string(manifest.total_chunks) + "\n";
  for (const StageChunk& chunk : manifest.committed) {
    out += "committed " + std::to_string(chunk.id) + " " +
           std::to_string(chunk.rows) + " " + chunk.md5 + "\n";
  }
  for (size_t id : manifest.loaded) {
    out += "loaded " + std::to_string(id) + "\n";
  }
  return out;
}

Result<StageManifest> DecodeManifest(std::string_view buffer) {
  std::vector<std::string> lines = Split(buffer, '\n');
  size_t line_no = 0;
  if (line_no >= lines.size() || lines[line_no++] != kManifestMagic) {
    return ParseError("bad manifest magic");
  }
  StageManifest manifest;
  bool saw_total = false;
  for (; line_no < lines.size(); ++line_no) {
    std::string_view line = lines[line_no];
    if (line.empty()) continue;
    std::vector<std::string> parts = SplitTrimmed(line, ' ');
    if (parts[0] == "total_chunks" && parts.size() == 2) {
      int64_t n = 0;
      if (!ParseInt64(parts[1], &n) || n < 0) {
        return ParseError("malformed total_chunks line");
      }
      manifest.total_chunks = static_cast<size_t>(n);
      saw_total = true;
    } else if (parts[0] == "committed" && parts.size() == 4) {
      StageChunk chunk;
      int64_t id = 0, rows = 0;
      if (!ParseInt64(parts[1], &id) || !ParseInt64(parts[2], &rows) ||
          id < 0 || rows < 0) {
        return ParseError("malformed committed line");
      }
      chunk.id = static_cast<size_t>(id);
      chunk.rows = static_cast<size_t>(rows);
      chunk.md5 = parts[3];
      manifest.committed.push_back(std::move(chunk));
    } else if (parts[0] == "loaded" && parts.size() == 2) {
      int64_t id = 0;
      if (!ParseInt64(parts[1], &id) || id < 0) {
        return ParseError("malformed loaded line");
      }
      manifest.loaded.push_back(static_cast<size_t>(id));
    } else {
      return ParseError("unknown manifest line '" + std::string(line) + "'");
    }
  }
  if (!saw_total) return ParseError("manifest missing total_chunks");
  return manifest;
}

Status WriteManifestFile(const std::string& path,
                         const StageManifest& manifest) {
  // Crash consistency (temp + fsync + rename) lives in util::AtomicWriteFile,
  // shared with the batch job journal.
  return util::AtomicWriteFile(path, EncodeManifest(manifest));
}

Result<StageManifest> ReadManifestFile(const std::string& path) {
  GRIDDB_ASSIGN_OR_RETURN(std::string content, util::Fs().ReadFile(path));
  return DecodeManifest(content);
}

}  // namespace griddb::storage
