#include "griddb/storage/stage_file.h"

#include <fstream>
#include <sstream>

#include "griddb/util/strings.h"

namespace griddb::storage {

namespace {
constexpr std::string_view kMagic = "# griddb-stage v1";

const char* TypeTag(DataType type) {
  switch (type) {
    case DataType::kInt64: return "INT64";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "STRING";
    case DataType::kBool: return "BOOL";
    case DataType::kNull: return "NULL";
  }
  return "?";
}

Result<DataType> TypeFromTag(std::string_view tag) {
  if (tag == "INT64") return DataType::kInt64;
  if (tag == "DOUBLE") return DataType::kDouble;
  if (tag == "STRING") return DataType::kString;
  if (tag == "BOOL") return DataType::kBool;
  return ParseError("unknown stage column type '" + std::string(tag) + "'");
}
}  // namespace

std::string EscapeCell(const Value& value) {
  if (value.is_null()) return "\\N";
  std::string raw = value.ToString();
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

Result<Value> UnescapeCell(std::string_view cell, DataType type) {
  if (cell == "\\N") return Value::Null();
  std::string raw;
  raw.reserve(cell.size());
  for (size_t i = 0; i < cell.size(); ++i) {
    if (cell[i] != '\\') {
      raw += cell[i];
      continue;
    }
    if (i + 1 >= cell.size()) return ParseError("dangling escape in cell");
    ++i;
    switch (cell[i]) {
      case '\\': raw += '\\'; break;
      case 't': raw += '\t'; break;
      case 'n': raw += '\n'; break;
      case 'r': raw += '\r'; break;
      case 'N': return ParseError("\\N must be the whole cell");
      default: return ParseError("unknown escape in cell");
    }
  }
  return Value::FromText(raw, type);
}

std::string EncodeStage(const TableSchema& schema,
                        const std::vector<Row>& rows) {
  std::string out(kMagic);
  out += "\ntable ";
  out += schema.name();
  out += '\n';
  for (const ColumnDef& col : schema.columns()) {
    out += "column ";
    out += col.name;
    out += ' ';
    out += TypeTag(col.type);
    if (col.primary_key) out += " pk";
    if (col.not_null) out += " notnull";
    out += '\n';
  }
  out += "rows " + std::to_string(rows.size()) + "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += '\t';
      out += EscapeCell(row[i]);
    }
    out += '\n';
  }
  return out;
}

size_t StagedData::EncodedSize() const {
  return EncodeStage(schema, rows).size();
}

Result<StagedData> DecodeStage(std::string_view buffer) {
  std::vector<std::string> lines = Split(buffer, '\n');
  size_t line_no = 0;
  auto next_line = [&]() -> std::string_view {
    while (line_no < lines.size()) {
      return lines[line_no++];
    }
    return {};
  };

  std::string_view magic = next_line();
  if (magic != kMagic) return ParseError("bad stage file magic");

  std::string_view table_line = next_line();
  if (!StartsWith(table_line, "table ")) {
    return ParseError("expected 'table <name>' header");
  }
  std::string table_name(Trim(table_line.substr(6)));

  std::vector<ColumnDef> columns;
  size_t declared_rows = 0;
  while (true) {
    if (line_no >= lines.size()) return ParseError("missing 'rows' header");
    std::string_view line = lines[line_no++];
    if (StartsWith(line, "column ")) {
      std::vector<std::string> parts = SplitTrimmed(line.substr(7), ' ');
      if (parts.size() < 2) return ParseError("malformed column header");
      ColumnDef col;
      col.name = parts[0];
      GRIDDB_ASSIGN_OR_RETURN(col.type, TypeFromTag(parts[1]));
      for (size_t i = 2; i < parts.size(); ++i) {
        if (parts[i] == "pk") col.primary_key = true;
        else if (parts[i] == "notnull") col.not_null = true;
        else return ParseError("unknown column flag '" + parts[i] + "'");
      }
      columns.push_back(std::move(col));
      continue;
    }
    if (StartsWith(line, "rows ")) {
      int64_t n = 0;
      if (!ParseInt64(line.substr(5), &n) || n < 0) {
        return ParseError("malformed rows header");
      }
      declared_rows = static_cast<size_t>(n);
      break;
    }
    return ParseError("unexpected header line in stage file");
  }
  if (columns.empty()) return ParseError("stage file declares no columns");

  StagedData staged;
  staged.schema = TableSchema(table_name, columns);
  staged.rows.reserve(declared_rows);
  for (size_t r = 0; r < declared_rows; ++r) {
    if (line_no >= lines.size()) {
      return ParseError("stage file truncated: expected " +
                        std::to_string(declared_rows) + " rows, found " +
                        std::to_string(r));
    }
    std::string_view line = lines[line_no++];
    std::vector<std::string> cells = Split(line, '\t');
    if (cells.size() != columns.size()) {
      return ParseError("row " + std::to_string(r) + " has " +
                        std::to_string(cells.size()) + " cells, expected " +
                        std::to_string(columns.size()));
    }
    Row row;
    row.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      GRIDDB_ASSIGN_OR_RETURN(Value v, UnescapeCell(cells[c], columns[c].type));
      row.push_back(std::move(v));
    }
    staged.rows.push_back(std::move(row));
  }
  return staged;
}

Status WriteStageFile(const std::string& path, const TableSchema& schema,
                      const std::vector<Row>& rows) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Unavailable("cannot open stage file '" + path + "' for write");
  std::string encoded = EncodeStage(schema, rows);
  out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  if (!out) return Unavailable("short write to stage file '" + path + "'");
  return Status::Ok();
}

Result<StagedData> ReadStageFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Unavailable("cannot open stage file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DecodeStage(buffer.str());
}

}  // namespace griddb::storage
