// Value: the dynamically-typed cell used throughout the system.
//
// SQL NULL is modelled as a distinct state (std::monostate). Comparisons
// between integer and double coerce to double, matching the permissive
// behaviour of the vendor engines the prototype federates.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "griddb/util/status.h"

namespace griddb::storage {

enum class DataType {
  kNull,    ///< Only ever the type of a NULL value, never a column type.
  kInt64,
  kDouble,
  kString,
  kBool,
};

const char* DataTypeName(DataType type) noexcept;

class Value {
 public:
  Value() : data_(std::monostate{}) {}  // NULL
  Value(int64_t v) : data_(v) {}        // NOLINT(google-explicit-constructor)
  Value(int v) : data_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : data_(v) {}         // NOLINT
  Value(bool v) : data_(v) {}           // NOLINT
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  DataType type() const noexcept;
  bool is_null() const noexcept {
    return std::holds_alternative<std::monostate>(data_);
  }

  /// Typed accessors assert on mismatch; use the As* coercers for lenient
  /// access.
  int64_t AsInt64Strict() const { return std::get<int64_t>(data_); }
  double AsDoubleStrict() const { return std::get<double>(data_); }
  const std::string& AsStringStrict() const { return std::get<std::string>(data_); }
  bool AsBoolStrict() const { return std::get<bool>(data_); }

  /// Numeric coercion: int64/double/bool -> double. Fails on string/null.
  Result<double> AsDouble() const;
  /// int64/bool -> int64; double only when integral. Fails otherwise.
  Result<int64_t> AsInt64() const;
  /// Truthiness: bool as-is, numbers != 0, fails on string/null.
  Result<bool> AsBool() const;

  /// SQL-style rendering: NULL, 42, 3.5, 'text' unquoted, TRUE/FALSE.
  std::string ToString() const;
  /// Rendering as a SQL literal: strings quoted with '' doubling.
  std::string ToSqlLiteral() const;

  /// Serialized size in bytes as transported on the simulated wire
  /// (type tag + payload), used by the network accounting.
  size_t WireSize() const noexcept;

  /// Three-way comparison with numeric coercion. NULL sorts before
  /// everything and equals only NULL (SQL semantics are handled by the
  /// expression evaluator, which checks is_null() first).
  /// Returns <0, 0, >0; type-incomparable pairs order by type rank.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numeric values hash by double value).
  size_t Hash() const;

  /// Parses `text` into a value of column type `type` ("" is NULL only for
  /// explicit \N marker; empty string stays a string).
  static Result<Value> FromText(std::string_view text, DataType type);

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> data_;
};

using Row = std::vector<Value>;

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct RowHasher {
  size_t operator()(const Row& row) const {
    size_t h = 1469598103934665603ull;
    for (const Value& v : row) {
      h ^= v.Hash();
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Total wire size of a row.
size_t RowWireSize(const Row& row) noexcept;

}  // namespace griddb::storage
