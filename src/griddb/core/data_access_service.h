// The data access layer (paper §4.5) — the system's core contribution.
//
// One instance runs inside each JClarens server. It:
//  - registers databases (XSpec pairs) into the Unity data dictionary;
//  - answers SQL queries over the *logical* schema: queries whose tables
//    are all locally registered are decomposed into per-mart sub-queries,
//    routed to the POOL-RAL wrapper (POOL-supported vendors) or the
//    JDBC/Unity path (everything else), executed in parallel, and merged
//    (cross-database joins included) into a single 2-D result;
//  - falls back to the Replica Location Service for tables that are NOT
//    locally registered, forwarding (sub-)queries to the remote JClarens
//    servers that host them and integrating the returned rows.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "griddb/cache/query_cache.h"
#include "griddb/core/admission.h"
#include "griddb/core/rbac.h"
#include "griddb/obs/trace.h"
#include "griddb/ral/catalog.h"
#include "griddb/ral/pool_ral.h"
#include "griddb/rls/rls.h"
#include "griddb/rpc/server.h"
#include "griddb/storage/digest.h"
#include "griddb/unity/driver.h"
#include "griddb/util/thread_pool.h"

namespace griddb::core {

struct DataAccessConfig {
  std::string server_name = "jclarens";
  std::string host = "localhost";
  std::string server_url;  ///< This service's public URL.
  std::string rls_url;     ///< Empty = no RLS (lookups fail as NotFound).

  // Driver behaviour (the paper's enhancements; switch off for baselines).
  bool enhanced_driver = true;
  bool parallel_subqueries = true;
  bool projection_pushdown = true;
  bool predicate_pushdown = true;
  size_t max_threads = 8;

  std::string db_user;  ///< Credentials presented to backend databases.
  std::string db_password;

  // Fault tolerance. The defaults preserve the seed's fail-fast behaviour
  // (and the paper-calibrated measurements): no retries, no RLS caching,
  // whole-query failure on any sub-query error.
  /// How many times a query may be forwarded between JClarens servers
  /// before the loop guard trips with kFailedPrecondition.
  int max_forward_depth = 3;
  /// Retry/deadline behaviour of every outbound RPC (remote JClarens
  /// peers and the RLS).
  rpc::RetryPolicy retry_policy = rpc::RetryPolicy::None();
  /// Cache RLS lookups locally; entries are invalidated when the server
  /// they name fails, forcing a fresh catalog consultation.
  bool rls_cache = false;
  /// Return rows from healthy marts plus a per-sub-query error report
  /// (QueryStats::subquery_errors) instead of failing the whole query.
  bool partial_results = false;
  /// Circuit breaker: skip a peer after this many consecutive failures...
  int breaker_failure_threshold = 3;
  /// ...until this much virtual time has passed (half-open afterwards).
  double breaker_cooldown_ms = 5000.0;

  // Query caching (cache/). Off by default: cache-cold behaviour, the
  // wire bytes of every response and the paper-calibrated measurements
  // are all unchanged until an operator opts in.
  /// Enable the plan + result cache on this server's read path.
  bool query_cache = false;
  /// Plan-cache capacity (entries, LRU).
  size_t plan_cache_entries = 128;
  /// Result-cache byte budget (ResultSet wire size, LRU).
  size_t result_cache_bytes = 8u << 20;
  /// Stale-while-revalidate: when execution fails with a transient error
  /// (replicas down, breaker open), serve the last-known-good cached
  /// result of the same query and schema epoch, tagged stale=true in
  /// QueryStats. Requires query_cache; off by default like
  /// partial_results.
  bool serve_stale_results = false;

  // Observability (obs/). Off by default: an untraced request and its
  // response are byte-identical to the pre-tracing wire format, which
  // keeps the Table 1 / Fig 4-6 measurements unchanged.
  /// Emit hierarchical spans for query processing; forwarded queries
  /// continue the caller's trace and ship their spans back.
  bool tracing = false;
  /// Span/trace-id seed. 0 derives a per-server seed from server_url so
  /// two servers never mint colliding span ids.
  uint64_t trace_seed = 0;
  /// Queries whose simulated response time reaches this many ms get their
  /// span tree dumped to the log (requires tracing). <= 0 disables.
  double slow_query_ms = 0;

  // Overload protection (core/admission, util/cancellation). All defaults
  // off: no deadline, no admission control, unbounded worker queue —
  // byte-identical seed behaviour until an operator opts in.
  /// Per-query budget (virtual ms) applied at this server's entry point.
  /// Combined with any budget the caller sent on the wire by taking the
  /// minimum; the remaining budget is forwarded on every outbound hop
  /// (sparse <deadlineMs> request member). <= 0 disables.
  double default_deadline_ms = 0;
  /// When a deadline expires (or the client aborts) mid-fan-out, return
  /// the rows already fetched plus per-sub-query error lines instead of
  /// kDeadlineExceeded. Reuses the partial_results plumbing; truncated
  /// responses are never cached. Off = whole-query kDeadlineExceeded.
  bool partial_on_deadline = false;
  /// Concurrency / queueing / priority-shedding / merge-memory bounds.
  AdmissionConfig admission;
  /// Bounds the fan-out worker pool's task queue; overflow tasks are
  /// rejected and the sub-query fails with retryable kResourceExhausted.
  /// 0 = unbounded (seed behaviour).
  size_t worker_queue_limit = 0;

  // Binary wire protocol (rpc/wire, DESIGN.md §16).
  /// Codec outbound sub-query/forward RPCs ask for: "" (default) follows
  /// the GRIDDB_WIRE environment toggle, "binary" requests the full
  /// binary/lz4/stream capability set, "xmlrpc" pins the text codec. The
  /// connect-time handshake still falls back to XML-RPC when the peer
  /// does not agree, so this is a preference, not a requirement.
  std::string wire_protocol;
  /// Flow-control window for streamed responses: chunk frames in flight
  /// before the next transfer waits for merge credit. Also sizes the
  /// per-window merge-memory lease taken while a stream is in progress.
  size_t stream_window = 4;

  // Multi-tenant isolation (core/rbac). Null = no RBAC: every tenant may
  // read every table, the seed behaviour.
  /// Grant catalog consulted at planning time: every referenced logical
  /// table must be covered by the requesting tenant's grants BEFORE any
  /// plan executes or any sub-query RPC fans out; a denied table fails
  /// fast with non-retryable kPermissionDenied. Shared so one catalog can
  /// serve several servers (one federation-wide grant set).
  std::shared_ptr<RbacCatalog> rbac;
};

/// Per-query measurements surfaced to clients and benches.
struct QueryStats {
  double simulated_ms = 0;   ///< Virtual-clock response time.
  bool distributed = false;  ///< Data fetched from more than one database.
  bool used_rls = false;     ///< RLS lookup was needed.
  size_t servers_contacted = 1;  ///< JClarens servers involved (incl. this).
  size_t databases = 0;
  size_t tables = 0;
  size_t rows = 0;
  size_t pool_ral_subqueries = 0;
  size_t jdbc_subqueries = 0;

  // Fault-recovery counters (aggregated across forwarding hops).
  size_t retries = 0;            ///< RPC attempts beyond each first try.
  size_t failovers = 0;          ///< Replica switches after a peer failed.
  size_t subqueries_failed = 0;  ///< Sub-queries dropped (partial mode).
  size_t breaker_skips = 0;      ///< Peers skipped by an open breaker.
  size_t replans = 0;            ///< Plans rebuilt after a schema-epoch
                                 ///< change landed mid-query.
  /// Partial-results error report: one "<subquery>: <status>" line per
  /// failed sub-query.
  std::vector<std::string> subquery_errors;

  // Cache counters (sparse on the wire, like the recovery counters: a
  // cache-cold or cache-off response serializes exactly as before).
  size_t plan_cache_hits = 0;    ///< Plans reused (parse/plan/render skipped).
  size_t result_cache_hits = 0;  ///< Whole-query results served from cache.
  size_t subquery_cache_hits = 0;  ///< Per-sub-query partials reused.
  /// Result served from the cache past a failure (stale-while-revalidate).
  bool stale = false;

  // Overload counters (sparse on the wire, same rule as above).
  size_t cancelled_subqueries = 0;  ///< Branches stopped by the cancel token.
};

class DataAccessService {
 public:
  DataAccessService(DataAccessConfig config, ral::DatabaseCatalog* catalog,
                    rpc::Transport* transport);

  const DataAccessConfig& config() const { return config_; }

  // ---- database registration ----

  /// Registers a database from an XSpec pair; publishes its logical
  /// tables to the RLS when one is configured.
  Status RegisterDatabase(const unity::UpperXSpecEntry& upper,
                          const unity::LowerXSpec& lower);
  /// Generates the lower XSpec from the live database behind
  /// `connection_string` and registers it (plug-in path, §4.10).
  Status RegisterLiveDatabase(const std::string& connection_string,
                              const std::string& driver_name);
  Status UnregisterDatabase(const std::string& database_name);

  /// Swaps a database's schema after a change (schema tracker, §4.9):
  /// dictionary entries are replaced and RLS publications reconciled.
  Status ReloadDatabase(const unity::UpperXSpecEntry& upper,
                        const unity::LowerXSpec& lower);

  /// Regenerates the lower XSpec for a registered database from the live
  /// engine (what the tracker thread runs periodically).
  Result<unity::LowerXSpec> GenerateXSpecFor(const std::string& database_name);
  /// Re-derives a registered database's XSpec from its live engine and
  /// reloads it, publishing tables created since registration. The batch
  /// service calls this when a finished job's result table lands in a
  /// tenant scratch mart, making it visible to follow-up queries.
  Status RefreshRegisteredDatabase(const std::string& database_name);
  Result<unity::UpperXSpecEntry> UpperEntryFor(
      const std::string& database_name);
  std::vector<std::string> RegisteredDatabases() const;

  /// Sorted logical tables registered locally.
  std::vector<std::string> LocalTables() const;
  /// Schema (logical names) of a locally registered table.
  Result<unity::TableBinding> DescribeTable(const std::string& logical) const;

  // ---- anti-entropy integrity (core/integrity_monitor) ----

  /// Order-insensitive content digest of a locally registered replica of
  /// `logical_table`. With an empty `database_name` the first replica
  /// wins; otherwise only that database's replica is digested. Exposed
  /// over RPC as dataaccess.tableDigest.
  Result<storage::TableDigest> TableDigest(const std::string& logical_table,
                                           const std::string& database_name);

  /// Takes a registered database out of query routing: the planner's
  /// replica filter hides its bindings, so queries fail over to healthy
  /// replicas (or fail with "no usable replica" when none remain).
  Status QuarantineDatabase(const std::string& database_name,
                            const std::string& reason);
  /// Puts a repaired database back into routing.
  Status ReinstateDatabase(const std::string& database_name);
  bool IsQuarantined(const std::string& database_name) const;
  std::vector<std::string> QuarantinedDatabases() const;

  // ---- query cache (cache/query_cache) ----

  cache::QueryCache& query_cache() { return cache_; }

  /// Feeds an observed content digest of a logical table into the cache's
  /// invalidation machinery (IntegrityMonitor calls this on every sweep;
  /// a digest change marks dependent cached results stale).
  void ObserveTableDigest(const std::string& logical_table,
                          const std::string& md5);

  /// Admin invalidation (dataaccess.cacheInvalidate): drops cached
  /// results for one logical table, or everything (plans included) when
  /// `logical_table` is empty. Returns the number of entries touched.
  size_t CacheInvalidate(const std::string& logical_table);

  // ---- query processing ----

  /// `forward_depth` counts how many times this query has already been
  /// forwarded between JClarens servers (loop guard); `forward_path`
  /// carries the visited server URLs for loop diagnostics. `ctx` carries
  /// the caller's cancel token / deadline budget and scheduling priority;
  /// the default (inert token, interactive) preserves seed behaviour.
  Result<storage::ResultSet> Query(const std::string& sql_text,
                                   QueryStats* stats = nullptr,
                                   int forward_depth = 0,
                                   const std::string& forward_path = "",
                                   QueryContext ctx = {});

  /// Admission controller (introspection for tests and benches).
  AdmissionController& admission() { return admission_; }

  unity::UnityDriver& driver() { return driver_; }
  ral::PoolRal& pool_ral() { return pool_; }

  /// This service's tracer (enabled iff config.tracing). The RPC handler
  /// opens its server-side span here so Query's spans nest under it.
  obs::Tracer& tracer() { return tracer_; }

  /// Test seam: runs after a local plan is built and before it executes,
  /// the window a concurrent schema change races into.
  void set_post_plan_hook(std::function<void()> hook) {
    post_plan_hook_ = std::move(hook);
  }

 private:
  /// kFailedPrecondition when the dictionary moved past `plan`'s epoch.
  Status CheckPlanEpoch(const unity::QueryPlan& plan) const;
  /// Builds the caching artefact for a fresh plan: takes ownership of the
  /// plan and pre-renders every per-dialect SQL string execution needs.
  std::shared_ptr<const cache::CachedPlan> PrerenderPlan(
      unity::QueryPlan plan) const;
  /// `fingerprint` is empty when the query cache is off for this query.
  /// `cancel` (nullable) is the query's shared cancellation token; it is
  /// checked at row-batch granularity in the executor and before every
  /// sub-query branch starts work.
  Result<storage::ResultSet> QueryLocal(const sql::SelectStmt& stmt,
                                        const std::string& fingerprint,
                                        net::Cost* cost, QueryStats* stats,
                                        const CancelToken* cancel,
                                        const std::string& tenant);
  Result<storage::ResultSet> QueryWithRemote(
      const sql::SelectStmt& stmt,
      const std::vector<const sql::TableRef*>& missing, net::Cost* cost,
      QueryStats* stats, int forward_depth, const std::string& forward_path,
      const CancelToken* cancel, const std::string& tenant);

  /// Plan-time grant check: Ok when no RBAC catalog is configured,
  /// otherwise CheckSelect against `tenant` with mart resolution through
  /// the Unity dictionary. Runs before cache serves and before any plan
  /// or RPC fan-out, so a revoked grant takes effect on the next request
  /// and an unauthorized query costs no sub-query work.
  Status CheckTenantGrants(const std::string& tenant,
                           const std::vector<std::string>& tables) const;

  /// Routes one planned sub-query: POOL-RAL for supported vendors, JDBC
  /// otherwise (paper §4.6/§4.7). `render` carries the pre-rendered
  /// dialect strings from the (possibly cached) plan.
  Result<storage::ResultSet> ExecuteSubQueryRouted(
      const unity::SubQuery& sub, const cache::RenderedSubQuery& render,
      net::Cost* cost, QueryStats* stats, const CancelToken* cancel);

  /// Runs a query on a remote JClarens server over RPC. The remaining
  /// deadline budget (if `cancel` carries one) rides the request as the
  /// sparse <deadlineMs> member, so the remote side inherits a budget
  /// already shrunk by this hop's network latency.
  Result<storage::ResultSet> RemoteQuery(const std::string& server_url,
                                         const std::string& sql_text,
                                         net::Cost* cost, QueryStats* stats,
                                         int forward_depth,
                                         const std::string& forward_path,
                                         const CancelToken* cancel,
                                         const std::string& tenant);

  /// Runs `sql_text` against the first candidate the circuit breaker
  /// allows; on a transient failure (kUnavailable/kTimeout, or kNotFound
  /// from a stale mapping) moves on to the next replica, re-consulting
  /// the RLS cache-invalidation machinery so later queries see fresh
  /// mappings. Counts breaker skips and failover switches into `stats`.
  Result<storage::ResultSet> RemoteQueryFailover(
      const std::vector<std::string>& candidates, const std::string& table,
      const std::string& sql_text, net::Cost* cost, QueryStats* stats,
      int forward_depth, const std::string& forward_path,
      const CancelToken* cancel, const std::string& tenant);

  /// Circuit breaker bookkeeping (per server URL, virtual-clock cooldown).
  bool BreakerAllows(const std::string& server_url);
  void RecordPeerOutcome(const std::string& server_url, bool success);

  rpc::RpcClient* ClientFor(const std::string& server_url);

  DataAccessConfig config_;
  ral::DatabaseCatalog* catalog_;
  rpc::Transport* transport_;
  unity::UnityDriver driver_;
  ral::PoolRal pool_;
  obs::Tracer tracer_;
  std::unique_ptr<rls::RlsClient> rls_;
  ThreadPool workers_;
  cache::QueryCache cache_;
  AdmissionController admission_;
  /// Bumped whenever replica routing eligibility changes (quarantine /
  /// reinstate); part of the plan-cache validity token, since cached
  /// plans bake in a replica choice the epoch alone does not cover.
  std::atomic<uint64_t> routing_gen_{1};

  struct BreakerState {
    int consecutive_failures = 0;
    double open_until_ms = -1;  ///< Virtual-clock instant; <0 = closed.
  };

  mutable std::mutex mu_;
  std::map<std::string, unity::UpperXSpecEntry> registered_;  // by db name
  std::map<std::string, std::vector<std::string>> published_;  // db -> tables
  std::map<std::string, std::unique_ptr<rpc::RpcClient>> remote_clients_;
  std::map<std::string, BreakerState> breakers_;  // by server URL

  // Quarantine set under its own lock: the planner's replica filter reads
  // it on every plan, and must never contend with mu_ (held across RPC).
  mutable std::mutex quarantine_mu_;
  std::map<std::string, std::string> quarantined_;  // db name -> reason

  std::function<void()> post_plan_hook_;
};

/// True when `status` is the stale-schema-epoch failure raised between
/// planning and execution; callers replan (bounded) instead of failing.
bool IsEpochStale(const Status& status);

/// Converts a service QueryStats to/from the RPC struct form.
rpc::XmlRpcValue StatsToRpc(const QueryStats& stats);
QueryStats StatsFromRpc(const rpc::XmlRpcValue& value);

/// Span records cross the wire as an array of structs (ids as hex
/// strings; the error field is encoded sparsely). Shipped only for
/// requests that carried trace context, so untraced responses keep the
/// pre-tracing wire bytes.
rpc::XmlRpcValue SpansToRpc(const std::vector<obs::SpanRecord>& spans);
std::vector<obs::SpanRecord> SpansFromRpc(const rpc::XmlRpcValue& value);

}  // namespace griddb::core
