// Schema-change tracking (paper §4.9).
//
// "After a fixed interval of time, a thread is run against the back-end
// databases to generate a new XSpec for each database. The size of the
// newly created XSpec is compared against the size of the older XSpec
// file. If the sizes are equal, the files are compared using their md5
// sums. If there is any change ... the older version of the XSpec is
// replaced by the new one [and] the server then uses the new XSpec file."
//
// CheckOnce/RunOnceAll expose the same logic deterministically for tests
// and benches; Start spawns the periodic background thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "griddb/core/data_access_service.h"
#include "griddb/core/xspec_repository.h"

namespace griddb::core {

class SchemaTracker {
 public:
  /// With a repository, every applied schema change re-publishes the
  /// regenerated lower XSpec (under the upper entry's lower_spec name,
  /// falling back to "xspec://<database>"), stamping the repository's
  /// monotonically increasing epoch on it — the durable record of which
  /// schema version is current.
  explicit SchemaTracker(DataAccessService* service,
                         XSpecRepository* repository = nullptr);
  ~SchemaTracker();

  SchemaTracker(const SchemaTracker&) = delete;
  SchemaTracker& operator=(const SchemaTracker&) = delete;

  /// Regenerates the XSpec for one registered database and applies it if
  /// the size-then-md5 comparison detects a change. Returns true when a
  /// change was applied.
  Result<bool> CheckOnce(const std::string& database_name);

  /// Runs CheckOnce over every registered database; returns how many
  /// schemas changed.
  size_t RunOnceAll();

  /// Starts the periodic thread; Stop (or destruction) joins it.
  void Start(std::chrono::milliseconds interval);
  void Stop();
  bool running() const { return running_.load(); }

  /// How many change-applications have happened since construction.
  size_t changes_applied() const { return changes_applied_.load(); }
  size_t checks_run() const { return checks_run_.load(); }

 private:
  void Loop(std::chrono::milliseconds interval);

  DataAccessService* service_;
  XSpecRepository* repository_;  ///< Optional; may be null.
  std::mutex cache_mu_;
  struct Snapshot {
    size_t size = 0;
    std::string md5;
  };
  std::map<std::string, Snapshot> snapshots_;

  std::atomic<bool> running_{false};
  std::atomic<size_t> changes_applied_{0};
  std::atomic<size_t> checks_run_{0};
  std::mutex thread_mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace griddb::core
